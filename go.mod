module hotpotato

go 1.22
