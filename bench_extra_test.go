package hotpotato_test

// Benchmarks for the extension experiments E11-E16 (see DESIGN.md), one
// per reproduced table, mirroring bench_test.go's coverage of E1-E10.

import (
	"fmt"
	"math/rand"
	"testing"

	"hotpotato/internal/core"
	"hotpotato/internal/mesh"
	"hotpotato/internal/message"
	"hotpotato/internal/routing"
	"hotpotato/internal/sim"
	"hotpotato/internal/storefwd"
	"hotpotato/internal/structured"
	"hotpotato/internal/trace"
	"hotpotato/internal/traffic"
	"hotpotato/internal/workload"
)

// BenchmarkE11StoreForward times the buffered baseline on the E11 hotspot
// configuration (its most contended cell).
func BenchmarkE11StoreForward(b *testing.B) {
	m := mesh.MustNew(2, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		packets, err := workload.HotSpot(m, 128, 0.5, rng)
		if err != nil {
			b.Fatal(err)
		}
		e, err := storefwd.New(m, packets, storefwd.Options{BufferCap: 2})
		if err != nil {
			b.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			b.Fatal(err)
		}
		if res.Delivered != res.Total {
			b.Fatal("undelivered")
		}
	}
}

// BenchmarkE12Dynamic times a full generate+drain steady-state run at 10%
// load on the 16x16 mesh.
func BenchmarkE12Dynamic(b *testing.B) {
	m := mesh.MustNew(2, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		src, err := traffic.NewBernoulli(0.10, 200)
		if err != nil {
			b.Fatal(err)
		}
		e, err := sim.New(m, core.NewRestrictedPriority(), nil, sim.Options{
			Seed: int64(i), Validation: sim.ValidateGreedy, MaxSteps: 4000,
		})
		if err != nil {
			b.Fatal(err)
		}
		e.SetInjector(src)
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE13Hypercube times a full permutation on the 8-cube.
func BenchmarkE13Hypercube(b *testing.B) {
	m := mesh.MustNew(8, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		packets := workload.Permutation(m, rng)
		runOnce(b, m, core.NewFewestGoodFirst(), packets, sim.ValidateGreedy, false)
	}
}

// BenchmarkE14Torus times the torus half of the mesh-vs-torus comparison.
func BenchmarkE14Torus(b *testing.B) {
	m := mesh.MustNewTorus(2, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		packets := freshUniform(b, m, 128, int64(i))
		runOnce(b, m, core.NewRestrictedPriority(), packets, sim.ValidateRestricted, false)
	}
}

// BenchmarkE15SinglePass times the single-pass matching ablation variant.
func BenchmarkE15SinglePass(b *testing.B) {
	m := mesh.MustNew(2, 16)
	mk := func() sim.Policy {
		return routing.NewCustomSinglePass("bench-single-pass", nil, true, routing.DeflectRandom)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		packets, err := workload.FullLoad(m, 2, rng)
		if err != nil {
			b.Fatal(err)
		}
		runOnce(b, m, mk(), packets, sim.ValidateGreedy, false)
	}
}

// BenchmarkE16AdversarialStep times one hill-climbing objective evaluation
// (route a full permutation deterministically), the unit of work of the
// E16 search.
func BenchmarkE16AdversarialStep(b *testing.B) {
	m := mesh.MustNew(2, 10)
	rng := rand.New(rand.NewSource(16))
	perm := rng.Perm(m.Size())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		packets := make([]*sim.Packet, len(perm))
		for j, d := range perm {
			packets[j] = sim.NewPacket(j, mesh.NodeID(j), mesh.NodeID(d))
		}
		runOnce(b, m, core.NewRestrictedPriorityDeterministic(), packets, sim.ValidateRestricted, false)
	}
}

// BenchmarkE17Structured times the two-phase structured comparator on the
// E17 local-traffic cell where the overstructuring penalty is largest.
func BenchmarkE17Structured(b *testing.B) {
	m := mesh.MustNew(2, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		packets, err := workload.LocalRandom(m, 128, 2, rng)
		if err != nil {
			b.Fatal(err)
		}
		runOnce(b, m, structured.NewTwoPhase(), packets, sim.ValidateBasic, false)
	}
}

// BenchmarkTraceRecordVerify times recording plus independent verification
// of a run (the trace substrate's full round trip).
func BenchmarkTraceRecordVerify(b *testing.B) {
	m := mesh.MustNew(2, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		packets := freshUniform(b, m, 128, int64(i))
		e, err := sim.New(m, core.NewRestrictedPriority(), packets, sim.Options{
			Seed: int64(i), Validation: sim.ValidateOff,
		})
		if err != nil {
			b.Fatal(err)
		}
		rec := trace.NewRecorder(m, packets)
		e.AddObserver(rec)
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
		if _, err := rec.Trace().Verify(true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE18PotentialVariant times a tracked d=3 run under the
// class-based spare rules (the E18 design-space cell).
func BenchmarkE18PotentialVariant(b *testing.B) {
	m := mesh.MustNew(3, 6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		packets, err := workload.UniformRandom(m, m.Size(), rng)
		if err != nil {
			b.Fatal(err)
		}
		e, err := sim.New(m, core.NewFewestGoodFirst(), packets, sim.Options{
			Seed: int64(i), Validation: sim.ValidateGreedy,
		})
		if err != nil {
			b.Fatal(err)
		}
		e.AddObserver(core.NewTracker(m, packets, core.TrackerOptions{BurnAll: true, Burn: 4, Spare0: 4 * 3 * 6}))
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE19Messages times a multi-flit batch (64 messages x 8 flits).
func BenchmarkE19Messages(b *testing.B) {
	m := mesh.MustNew(2, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		msgs, err := message.RandomBatch(m, 64, 8, rng)
		if err != nil {
			b.Fatal(err)
		}
		src, err := message.NewSource(m, msgs)
		if err != nil {
			b.Fatal(err)
		}
		e, err := sim.New(m, core.NewRestrictedPriority(), nil, sim.Options{
			Seed: int64(i), Validation: sim.ValidateGreedy, MaxSteps: 100000,
		})
		if err != nil {
			b.Fatal(err)
		}
		e.SetInjector(src)
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE20Classes times the class-priority continuous run at 20% load.
func BenchmarkE20Classes(b *testing.B) {
	m := mesh.MustNew(2, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		src, err := traffic.NewBernoulli(0.20, 150)
		if err != nil {
			b.Fatal(err)
		}
		src.HighFrac = 0.2
		e, err := sim.New(m, routing.NewClassPriority(), nil, sim.Options{
			Seed: int64(i), Validation: sim.ValidateGreedy, MaxSteps: 6000,
		})
		if err != nil {
			b.Fatal(err)
		}
		e.SetInjector(src)
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE21Fairness times the oldest-first fairness run configuration.
func BenchmarkE21Fairness(b *testing.B) {
	m := mesh.MustNew(2, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		src, err := traffic.NewBernoulli(0.25, 150)
		if err != nil {
			b.Fatal(err)
		}
		e, err := sim.New(m, routing.NewOldestFirst(), nil, sim.Options{
			Seed: int64(i), Validation: sim.ValidateGreedy, MaxSteps: 8000,
		})
		if err != nil {
			b.Fatal(err)
		}
		e.SetInjector(src)
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelWorkers compares serial and parallel routing on a dense
// instance (informative mostly on multi-core hosts).
func BenchmarkParallelWorkers(b *testing.B) {
	m := mesh.MustNew(2, 32)
	for _, workers := range []int{0, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewSource(int64(i)))
				packets, err := workload.FullLoad(m, 2, rng)
				if err != nil {
					b.Fatal(err)
				}
				e, err := sim.New(m, core.NewRestrictedPriority(), packets, sim.Options{
					Seed: int64(i), Validation: sim.ValidateOff, Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := e.Run()
				if err != nil {
					b.Fatal(err)
				}
				if res.Delivered != res.Total {
					b.Fatal("undelivered")
				}
			}
		})
	}
}
