package hotpotato_test

// Benchmarks for the crash-safety layer: engine snapshot capture, restore,
// the checkpoint codec in both encodings, and the end-to-end overhead of
// running with periodic checkpointing enabled. These quantify the cost a
// long run pays for being resumable.

import (
	"bytes"
	"context"
	"io"
	"testing"

	"hotpotato/internal/checkpoint"
	"hotpotato/internal/core"
	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
)

// midRunEngine builds the standard 16x16 uniform instance and steps it to
// the middle of the run, where queues are at their fullest and a snapshot
// is most expensive.
func midRunEngine(b *testing.B) *sim.Engine {
	b.Helper()
	m := mesh.MustNew(2, 16)
	packets := freshUniform(b, m, 128, 7)
	e, err := sim.New(m, core.NewRestrictedPriority(), packets, sim.Options{
		Seed: 7, Validation: sim.ValidateGreedy, DetectLivelock: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := e.Step(); err != nil {
			b.Fatal(err)
		}
	}
	return e
}

// BenchmarkSnapshot times capturing the full engine state mid-run.
func BenchmarkSnapshot(b *testing.B) {
	e := midRunEngine(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Snapshot(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRestore times rebuilding a runnable engine from a snapshot —
// the cost a resumed process pays once at startup.
func BenchmarkRestore(b *testing.B) {
	e := midRunEngine(b)
	snap, err := e.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	m := mesh.MustNew(2, 16)
	restoreOnce := func() {
		fresh, err := sim.New(m, core.NewRestrictedPriority(), nil, sim.Options{
			Seed: 7, Validation: sim.ValidateGreedy, DetectLivelock: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := fresh.Restore(snap); err != nil {
			b.Fatal(err)
		}
	}
	restoreOnce() // warm up the mesh's lazily built topology tables
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		restoreOnce()
	}
}

// BenchmarkCheckpointEncode times serializing a snapshot in each encoding.
func BenchmarkCheckpointEncode(b *testing.B) {
	e := midRunEngine(b)
	snap, err := e.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	for _, f := range []struct {
		name   string
		format checkpoint.Format
	}{{"json", checkpoint.JSON}, {"binary", checkpoint.Binary}} {
		b.Run(f.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := checkpoint.Write(io.Discard, snap, f.format); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCheckpointDecode times parsing and verifying a checkpoint in
// each encoding.
func BenchmarkCheckpointDecode(b *testing.B) {
	e := midRunEngine(b)
	snap, err := e.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	for _, f := range []struct {
		name   string
		format checkpoint.Format
	}{{"json", checkpoint.JSON}, {"binary", checkpoint.Binary}} {
		b.Run(f.name, func(b *testing.B) {
			var buf bytes.Buffer
			if err := checkpoint.Write(&buf, snap, f.format); err != nil {
				b.Fatal(err)
			}
			data := buf.Bytes()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := checkpoint.Read(bytes.NewReader(data)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRunCheckpointed times a complete run that snapshots and encodes
// its state every 16 steps, against BenchmarkRunPlain's uncheckpointed
// baseline of the same instance — the steady-state cost of crash safety.
func BenchmarkRunCheckpointed(b *testing.B) {
	m := mesh.MustNew(2, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		packets := freshUniform(b, m, 128, int64(i))
		e, err := sim.New(m, core.NewRestrictedPriority(), packets, sim.Options{
			Seed: int64(i), Validation: sim.ValidateGreedy, DetectLivelock: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		save := func(s *sim.Snapshot) error { return checkpoint.Write(io.Discard, s, checkpoint.Binary) }
		res, err := e.RunCheckpointed(context.Background(), 16, save)
		if err != nil {
			b.Fatal(err)
		}
		if res.Delivered != res.Total {
			b.Fatal("undelivered")
		}
	}
}

// BenchmarkRunPlain is the baseline for BenchmarkRunCheckpointed: the same
// instance with checkpointing off.
func BenchmarkRunPlain(b *testing.B) {
	m := mesh.MustNew(2, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		packets := freshUniform(b, m, 128, int64(i))
		e, err := sim.New(m, core.NewRestrictedPriority(), packets, sim.Options{
			Seed: int64(i), Validation: sim.ValidateGreedy, DetectLivelock: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			b.Fatal(err)
		}
		if res.Delivered != res.Total {
			b.Fatal("undelivered")
		}
	}
}
