// Command policylab is the decision-analysis front end over
// internal/policylab: record conflict-level decision traces, replay
// recorded windows under alternative priority orders, and search the
// parameterized weighted policy family.
//
// Usage:
//
//	policylab trace -n 12 -policy restricted -workload none \
//	    -arrivals 'adversary:rho=3,sigma=6,until=200' \
//	    -o /tmp/conflicts.jsonl -checkpoint /tmp/mid.ckpt -checkpoint-at 100
//	policylab trace -dump /tmp/conflicts.jsonl
//	policylab counterfactual -checkpoint /tmp/mid.ckpt -policy restricted \
//	    -arrivals 'adversary:rho=3,sigma=6,until=200' \
//	    -alt oldest,nearest,'weighted:age=1,restrict=2' -steps 128
//	policylab search -n 10 -generations 5 -population 12 -seed 7 -verify-steps 2000
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"

	"hotpotato/internal/checkpoint"
	"hotpotato/internal/mesh"
	"hotpotato/internal/policylab"
	"hotpotato/internal/policylab/search"
	"hotpotato/internal/sim"
	"hotpotato/internal/spec"
	"hotpotato/internal/version"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "policylab:", err)
		os.Exit(1)
	}
}

const usage = `usage: policylab <command> [flags]

commands:
  trace           run a simulation recording its routing conflicts
  counterfactual  replay a checkpointed window under alternative policies
  search          search the weighted policy family against a workload panel

run 'policylab <command> -h' for the command's flags`

func run(args []string) error {
	if len(args) == 0 {
		fmt.Println(usage)
		return nil
	}
	switch args[0] {
	case "trace":
		return runTrace(args[1:])
	case "counterfactual":
		return runCounterfactual(args[1:])
	case "search":
		return runSearch(args[1:])
	case "-version", "version":
		fmt.Println(version.String("policylab"))
		return nil
	case "-h", "-help", "--help", "help":
		fmt.Println(usage)
		return nil
	default:
		return fmt.Errorf("unknown command %q\n%s", args[0], usage)
	}
}

// runTrace runs one problem with the conflict tap attached, spilling every
// conflict to -o and optionally checkpointing mid-run (the seed for a later
// counterfactual). With -dump it decodes an existing trace instead.
func runTrace(args []string) error {
	fs := flag.NewFlagSet("policylab trace", flag.ContinueOnError)
	var (
		dim      = fs.Int("d", 2, "mesh dimension")
		side     = fs.Int("n", 12, "mesh side length")
		k        = fs.Int("k", 64, "packet count (where the workload takes one)")
		policy   = fs.String("policy", "restricted", "routing policy spec")
		wl       = fs.String("workload", "uniform", "workload spec")
		arrivals = fs.String("arrivals", "", "arrival spec (proc[:key=val,...][;...])")
		seed     = fs.Int64("seed", 1, "random seed")
		maxSteps = fs.Int("max-steps", 0, "step budget (0 = default)")
		out      = fs.String("o", "", "write the conflict trace to this file")
		ckpt     = fs.String("checkpoint", "", "save a checkpoint to this file at -checkpoint-at")
		ckptAt   = fs.Int("checkpoint-at", 0, "step to checkpoint at (with -checkpoint)")
		top      = fs.Int("top", 5, "print the N most contended recorded conflicts")
		dump     = fs.String("dump", "", "decode an existing trace file and print its summary (other flags ignored)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dump != "" {
		return dumpTrace(*dump, *top)
	}
	if *ckpt == "" && *ckptAt > 0 {
		return fmt.Errorf("-checkpoint-at needs -checkpoint")
	}

	m, err := mesh.New(*dim, *side)
	if err != nil {
		return err
	}
	pol, err := spec.NewPolicy(*policy)
	if err != nil {
		return err
	}
	pkts, err := spec.NewWorkload(*wl, m, *k, rand.New(rand.NewSource(*seed)))
	if err != nil {
		return err
	}
	e, err := sim.New(m, pol, pkts, sim.Options{Seed: *seed + 1, MaxSteps: *maxSteps, Validation: sim.ValidateGreedy})
	if err != nil {
		return err
	}
	as, err := spec.ParseArrivalSpec(*arrivals)
	if err != nil {
		return err
	}
	src, err := spec.BuildArrivals(as, m)
	if err != nil {
		return err
	}
	if src != nil {
		e.SetInjector(src)
	}

	rec := policylab.NewRecorder(0)
	var flush func() error
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		cw, err := policylab.NewWriter(f, policylab.TraceHeader{
			Dim: *dim, Side: *side, Policy: pol.Name(), Seed: *seed,
		})
		if err != nil {
			f.Close()
			return err
		}
		rec.Spill(cw)
		flush = func() error {
			if err := cw.Flush(); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}
	}
	e.SetConflictObserver(rec)

	// Step manually so the checkpoint lands exactly at -checkpoint-at.
	budget := *maxSteps
	if budget == 0 {
		budget = sim.DefaultMaxSteps
	}
	for e.Time() < budget && !e.Livelocked() {
		if e.Done() && src == nil {
			break
		}
		if *ckpt != "" && e.Time() == *ckptAt {
			snap, err := e.Snapshot()
			if err != nil {
				return err
			}
			if err := checkpoint.Save(*ckpt, snap, checkpoint.Binary); err != nil {
				return err
			}
			fmt.Printf("checkpoint:  step %d, %d in flight -> %s\n", e.Time(), e.Live(), *ckpt)
		}
		if e.Done() && src != nil && src.Exhausted(e.Time()) {
			// Arrival-driven run fully drained and the source is done.
			break
		}
		if err := e.Step(); err != nil {
			return err
		}
	}
	if rec.Err() != nil {
		return rec.Err()
	}
	if flush != nil {
		if err := flush(); err != nil {
			return err
		}
	}

	delivered := 0
	for _, p := range e.Packets() {
		if p.Arrived() {
			delivered++
		}
	}
	total, contenders, deflected, db, da := rec.Stats()
	fmt.Printf("run:         policy %s, %s, %d steps, %d delivered\n", pol.Name(), m, e.Time(), delivered)
	fmt.Printf("conflicts:   %d (%d contenders, %d deflected, potential drop %d)\n", total, contenders, deflected, db-da)
	if *out != "" {
		fmt.Printf("trace:       written to %s\n", *out)
	}
	printTopConflicts(rec.Records(), *top)
	return nil
}

// dumpTrace decodes a trace file and prints its summary and top conflicts.
func dumpTrace(path string, top int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	hdr, recs, err := policylab.ReadTrace(f)
	if err != nil {
		return err
	}
	var contenders, deflected, drop int64
	for i := range recs {
		contenders += int64(len(recs[i].Contenders))
		deflected += int64(recs[i].Deflected)
		drop += int64(recs[i].DistBefore - recs[i].DistAfter)
	}
	fmt.Printf("trace:       %s v%d, mesh(d=%d, n=%d), policy %s, seed %d\n",
		path, hdr.Version, hdr.Dim, hdr.Side, hdr.Policy, hdr.Seed)
	fmt.Printf("conflicts:   %d (%d contenders, %d deflected, potential drop %d)\n",
		len(recs), contenders, deflected, drop)
	printTopConflicts(recs, top)
	return nil
}

// printTopConflicts prints the most contended conflicts of the window.
func printTopConflicts(recs []sim.ConflictRecord, top int) {
	if top <= 0 || len(recs) == 0 {
		return
	}
	idx := make([]int, len(recs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ra, rb := &recs[idx[a]], &recs[idx[b]]
		if len(ra.Contenders) != len(rb.Contenders) {
			return len(ra.Contenders) > len(rb.Contenders)
		}
		return ra.Time < rb.Time
	})
	if top > len(idx) {
		top = len(idx)
	}
	fmt.Printf("\nmost contended conflicts (of the retained window):\n")
	fmt.Println("    t   node  pkts  defl  dPhi  contenders (id age dist good R; * = advanced)")
	for _, i := range idx[:top] {
		r := &recs[i]
		parts := make([]string, len(r.Contenders))
		for j, c := range r.Contenders {
			star, rr := " ", " "
			if c.Advanced {
				star = "*"
			}
			if c.Restricted {
				rr = "R"
			}
			parts[j] = fmt.Sprintf("%s#%d(a%d d%d g%d%s)", star, c.ID, c.Age, c.Dist, c.GoodCount, rr)
		}
		fmt.Printf("%5d %6d %5d %5d %5d  %s\n",
			r.Time, r.Node, len(r.Contenders), r.Deflected, r.DistBefore-r.DistAfter, strings.Join(parts, " "))
	}
}

// runCounterfactual loads a checkpoint and replays the window under the
// baseline and each alternative, printing the divergence table.
func runCounterfactual(args []string) error {
	fs := flag.NewFlagSet("policylab counterfactual", flag.ContinueOnError)
	var (
		ckpt     = fs.String("checkpoint", "", "checkpoint file to replay from (required)")
		policy   = fs.String("policy", "restricted", "the original run's policy spec (must match the checkpoint)")
		alts     = fs.String("alt", "oldest,nearest", "comma-separated alternative policy specs")
		steps    = fs.Int("steps", policylab.DefaultReplaySteps, "window length in steps")
		arrivals = fs.String("arrivals", "", "the original run's arrival spec (required iff it had one)")
		jsonOut  = fs.String("json", "", "also write the full report as JSON to this file ('-' = stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *ckpt == "" {
		return fmt.Errorf("-checkpoint is required")
	}
	snap, err := checkpoint.Load(*ckpt)
	if err != nil {
		return err
	}
	as, err := spec.ParseArrivalSpec(*arrivals)
	if err != nil {
		return err
	}
	rep, err := policylab.Replay(snap, policylab.ReplayConfig{
		Baseline:     *policy,
		Alternatives: spec.SplitSpecList(*alts),
		Steps:        *steps,
		Arrivals:     as,
	})
	if err != nil {
		return err
	}
	printReplay(rep)
	if *jsonOut != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if *jsonOut == "-" {
			fmt.Println(string(data))
		} else if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// printReplay renders the divergence table.
func printReplay(rep *policylab.Report) {
	fmt.Printf("checkpoint:  step %d, %d packets in flight\n", rep.CheckpointTime, rep.Live)
	fmt.Printf("window:      %d steps\n\n", rep.Baseline.Steps)
	fmt.Println("  policy                                    delivered   defl   mean-delay   phi-L1   diverge@")
	b := rep.Baseline
	fmt.Printf("  %-40s %9d %6d %12.2f %8s %10s\n", b.Policy+" (baseline)", b.Delivered, b.Deflections, b.MeanDelay, "-", "-")
	for _, d := range rep.Alternatives {
		div := "never"
		if d.FirstDiverge >= 0 {
			div = "t+" + strconv.Itoa(d.FirstDiverge)
		}
		fmt.Printf("  %-40s %9d %6d %12.2f %8.1f %10s\n",
			d.Policy, d.Delivered, d.Deflections, d.MeanDelay, d.PotentialL1, div)
	}
}

// runSearch drives the evolutionary policy search and prints the result.
func runSearch(args []string) error {
	fs := flag.NewFlagSet("policylab search", flag.ContinueOnError)
	var (
		side     = fs.Int("n", 10, "mesh side length (2-D)")
		seedsF   = fs.String("seeds", "1,2", "comma-separated per-trial seeds")
		pop      = fs.Int("population", 12, "candidates per generation")
		gens     = fs.Int("generations", 5, "generations")
		elite    = fs.Int("elite", 3, "elites carried over per generation")
		immigr   = fs.Int("immigrants", 2, "fresh random candidates per generation")
		mut      = fs.Float64("mutation", 0.5, "Gaussian mutation scale")
		baseline = fs.String("baseline", "restricted", "baseline policy spec to beat")
		seed     = fs.Int64("seed", 1, "search RNG seed (full run is reproducible from it)")
		verify   = fs.Int("verify-steps", 4000, "verification-pass step budget (0 = skip)")
		jsonOut  = fs.String("json", "", "also write the full report as JSON to this file ('-' = stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var seeds []int64
	for _, s := range strings.Split(*seedsF, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return fmt.Errorf("bad -seeds entry %q: %w", s, err)
		}
		seeds = append(seeds, v)
	}
	rep, err := search.Run(search.Config{
		Side:          *side,
		Seeds:         seeds,
		Population:    *pop,
		Generations:   *gens,
		Elite:         *elite,
		Immigrants:    *immigr,
		MutationScale: *mut,
		Baseline:      *baseline,
		Seed:          *seed,
		VerifySteps:   *verify,
	})
	if err != nil {
		return err
	}
	printSearch(rep)
	if *jsonOut != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if *jsonOut == "-" {
			fmt.Println(string(data))
		} else if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// printSearch renders the search report.
func printSearch(rep *search.Report) {
	fmt.Printf("search:      %d generations x %d candidates on a %dx%d mesh, %d unique policies evaluated (seed %d)\n",
		rep.Config.Generations, rep.Config.Population, rep.Config.Side, rep.Config.Side, rep.Evaluated, rep.Config.Seed)
	for _, g := range rep.History {
		fmt.Printf("  gen %2d  best fitness %.4f  %s\n", g.Gen, g.Fitness, g.Best)
	}
	fmt.Printf("\nbaseline:    %s\n", rep.Baseline.Spec)
	fmt.Printf("best:        %s (fitness %.4f; < 1 beats the baseline on average)\n\n", rep.Best.Spec, rep.Best.Fitness)
	fmt.Println("  panel entry          best        baseline")
	for _, e := range rep.Config.Panel {
		fmt.Printf("  %-18s %9.2f %14.2f\n", e.Name, rep.Best.Scores[e.Name], rep.Baseline.Scores[e.Name])
	}
	if len(rep.Wins) == 0 {
		fmt.Println("\nno workload/metric pair beat the baseline")
	} else {
		fmt.Println()
		for _, w := range rep.Wins {
			fmt.Printf("beats baseline on %s: %.2f < %.2f (%+.1f%%)\n",
				w.Entry, w.Score, w.Baseline, 100*(w.Score-w.Baseline)/w.Baseline)
		}
	}
	if v := rep.Verification; v != nil {
		held := "HELD"
		if !v.Property8Held {
			held = fmt.Sprintf("VIOLATED %d times", v.Property8Violations)
		}
		fmt.Printf("\nverification: Property 8 (potential decrease) %s for %s over %d steps (%s)\n",
			held, v.Policy, v.Steps, v.Violations)
	}
}
