// Command shardworker is one worker process of a distributed sharded run.
// It dials the coordinator (cmd/shardcoord, or anything built on
// internal/dshard), announces itself, and then executes whatever subgrid of
// the mesh the coordinator assigns: route, exchange halos, apply, repeat.
//
// Usage:
//
//	shardworker -addr 127.0.0.1:7411 -token secret
//
// The worker holds no durable state of its own — if it is killed the
// coordinator re-spawns or re-admits a replacement and reloads it from the
// last coordinated checkpoint. If the connection drops mid-run the worker
// dials back in and rejoins under a fresh epoch.
//
// The -fault-* flags wrap the worker's outbound link in the transport fault
// injector (frame drops, duplicates, delays, corruption) for demos and
// chaos testing; corrupted frames must surface on the coordinator as
// ErrFrameCorrupt, never as silent divergence.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hotpotato/internal/dshard"
	"hotpotato/internal/spec"
	"hotpotato/internal/version"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "shardworker:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("shardworker", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "", "coordinator address: host:port for TCP, a path for a unix socket (required)")
		token    = fs.String("token", "", "shared secret the coordinator expects in the HELLO")
		slot     = fs.Int("slot", -1, "worker slot to request (-1 = any open slot)")
		maxFrame = fs.Int("max-frame", 0, "inbound frame payload cap in bytes (0 = 64 MiB default)")
		quiet    = fs.Bool("quiet", false, "suppress per-event log lines on stderr")
		stepDel  = fs.Duration("step-delay", 0, "sleep this long before routing each step (slows demos so kills land mid-run)")
		showVer  = fs.Bool("version", false, "print the build version and exit")

		faultSeed    = fs.Int64("fault-seed", 1, "RNG seed for the transport fault injector")
		corruptEvery = fs.Int("fault-corrupt-every", 0, "corrupt every Nth outbound frame (0 = off)")
		dropEvery    = fs.Int("fault-drop-every", 0, "drop every Nth outbound frame (0 = off)")
		dupEvery     = fs.Int("fault-dup-every", 0, "duplicate every Nth outbound frame (0 = off)")
		delayEvery   = fs.Int("fault-delay-every", 0, "delay every Nth outbound frame (0 = off)")
		delay        = fs.Duration("fault-delay", 5*time.Millisecond, "how long -fault-delay-every stalls a frame")
		maxFaults    = fs.Int("fault-max", 0, "total fault budget across all -fault-* schedules (0 = unlimited)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVer {
		fmt.Println(version.String("shardworker"))
		return nil
	}
	if *addr == "" {
		return errors.New("-addr is required (the coordinator's listen address)")
	}

	opts := dshard.WorkerOptions{
		Token:    *token,
		Slot:     *slot,
		Policies: spec.NewPolicy,
		MaxFrame: *maxFrame,
	}
	if !*quiet {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "shardworker: "+format+"\n", args...)
		}
	}
	if *stepDel > 0 {
		opts.TestHookPreRoute = func(int) { time.Sleep(*stepDel) }
	}
	if *corruptEvery > 0 || *dropEvery > 0 || *dupEvery > 0 || *delayEvery > 0 {
		opts.Faults = &dshard.FaultPlan{
			Seed:         *faultSeed,
			CorruptEvery: *corruptEvery,
			DropEvery:    *dropEvery,
			DupEvery:     *dupEvery,
			DelayEvery:   *delayEvery,
			Delay:        *delay,
			MaxFaults:    *maxFaults,
		}
	}

	// Serve until the coordinator broadcasts SHUTDOWN (clean exit). A broken
	// connection is not the end: the coordinator may have restarted, or
	// declared us dead during a transient stall — dialing back in and
	// rejoining under the new epoch is the worker's half of the recovery
	// protocol. An unreachable coordinator (ErrDial exhausts its own retry
	// budget) or a string of immediate serve failures gives up.
	failures := 0
	for {
		start := time.Now()
		err := dshard.RunWorker(ctx, *addr, opts)
		if err == nil || ctx.Err() != nil || errors.Is(err, dshard.ErrDial) {
			return err
		}
		if time.Since(start) > time.Second {
			failures = 0 // it served for a while; the failure is fresh
		}
		failures++
		if failures >= 5 {
			return err
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "shardworker: connection lost (%v); rejoining\n", err)
		}
	}
}
