package main

import (
	"context"
	"strings"
	"testing"
)

func TestRunRequiresAddr(t *testing.T) {
	err := run(context.Background(), nil)
	if err == nil || !strings.Contains(err.Error(), "-addr") {
		t.Fatalf("missing -addr: err %v, want a mention of -addr", err)
	}
}

func TestRunRejectsUnknownFlag(t *testing.T) {
	if err := run(context.Background(), []string{"-no-such-flag"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

// TestRunDialFailureIsBounded proves the rejoin loop gives up when the
// coordinator is truly gone rather than spinning forever: a dial against a
// dead address must return an error promptly.
func TestRunDialFailureIsBounded(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- run(ctx, []string{"-addr", "127.0.0.1:1", "-quiet"}) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("dial against a dead address succeeded")
		}
	case <-ctx.Done():
	}
}
