// Command experiments regenerates the reproduction tables E1-E10 listed in
// DESIGN.md: one table (or table group) per claim of the paper, printed as
// aligned text or CSV.
//
// Usage:
//
//	experiments                 # run everything, full size
//	experiments -quick          # CI-sized runs
//	experiments -exp E1,E5      # a subset
//	experiments -csv            # CSV instead of text
//	experiments -list           # list experiments and claims
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"hotpotato/internal/analysis"
	"hotpotato/internal/profiling"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		quick    = fs.Bool("quick", false, "smaller meshes and fewer trials")
		exp      = fs.String("exp", "all", "comma-separated experiment ids (e.g. E1,E7) or 'all'")
		seed     = fs.Int64("seed", 1, "base seed for all trials")
		csv      = fs.Bool("csv", false, "emit CSV instead of aligned text")
		markdown = fs.Bool("markdown", false, "emit GitHub-flavored markdown tables")
		list     = fs.Bool("list", false, "list available experiments and exit")
		outDir   = fs.String("out", "", "also write one file per experiment into this directory")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuProf != "" || *memProf != "" {
		stopProf, err := profiling.Start(*cpuProf, *memProf)
		if err != nil {
			return err
		}
		defer func() {
			if err := stopProf(); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
			}
		}()
	}

	if *list {
		for _, e := range analysis.Experiments() {
			fmt.Printf("%-4s %s\n     claim: %s\n", e.ID, e.Title, e.Claim)
		}
		return nil
	}

	var selected []analysis.Experiment
	if *exp == "all" {
		selected = analysis.Experiments()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			e, ok := analysis.Lookup(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			selected = append(selected, e)
		}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}

	cfg := analysis.Config{Quick: *quick, SeedBase: *seed}
	for _, e := range selected {
		start := time.Now()
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		fmt.Printf("claim: %s\n\n", e.Claim)
		tables, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		var fileBuf strings.Builder
		fmt.Fprintf(&fileBuf, "%s: %s\nclaim: %s\n\n", e.ID, e.Title, e.Claim)
		for _, tb := range tables {
			var werr error
			switch {
			case *csv:
				werr = tb.WriteCSV(os.Stdout)
			case *markdown:
				werr = tb.WriteMarkdown(os.Stdout)
			default:
				werr = tb.WriteText(os.Stdout)
			}
			if werr != nil {
				return werr
			}
			fmt.Println()
			if *outDir != "" {
				if err := tb.WriteText(&fileBuf); err != nil {
					return err
				}
				fileBuf.WriteByte('\n')
			}
		}
		if *outDir != "" {
			path := filepath.Join(*outDir, e.ID+".txt")
			if err := os.WriteFile(path, []byte(fileBuf.String()), 0o644); err != nil {
				return err
			}
		}
		fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
