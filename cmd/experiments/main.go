// Command experiments regenerates the reproduction tables E1-E10 listed in
// DESIGN.md: one table (or table group) per claim of the paper, printed as
// aligned text or CSV.
//
// Experiments run under the internal/run supervisor: a failing experiment
// is retried and then recorded without sinking the others, and with
// -journal each finished experiment is persisted so an interrupted batch
// (SIGINT/SIGTERM, crash, OOM) can be continued with -resume, rerunning
// only the experiments that are missing.
//
// Usage:
//
//	experiments                 # run everything, full size
//	experiments -quick          # CI-sized runs
//	experiments -exp E1,E5      # a subset
//	experiments -csv            # CSV instead of text
//	experiments -list           # list experiments and claims
//	experiments -journal e.jsonl          # record fates; interrupted...
//	experiments -journal e.jsonl -resume  # ...finish the remainder
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"hotpotato/internal/analysis"
	"hotpotato/internal/profiling"
	runner "hotpotato/internal/run"
	"hotpotato/internal/version"
)

func main() {
	// First SIGINT/SIGTERM: stop dispatching experiments, finish in-flight
	// ones, flush the journal. Second signal: default disposition (kill).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := runCtx(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// run keeps the historical signature for tests and non-interruptible use.
func run(args []string) error { return runCtx(context.Background(), args) }

// expPayload is one experiment's journaled result: the exact bytes for
// stdout in the selected format, plus the text dump for -out files. A
// resumed experiment replays both without recomputation.
type expPayload struct {
	Stdout string `json:"stdout"`
	File   string `json:"file"`
}

func runCtx(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		quick       = fs.Bool("quick", false, "smaller meshes and fewer trials")
		exp         = fs.String("exp", "all", "comma-separated experiment ids (e.g. E1,E7) or 'all'")
		seed        = fs.Int64("seed", 1, "base seed for all trials")
		csv         = fs.Bool("csv", false, "emit CSV instead of aligned text")
		markdown    = fs.Bool("markdown", false, "emit GitHub-flavored markdown tables")
		list        = fs.Bool("list", false, "list available experiments and exit")
		outDir      = fs.String("out", "", "also write one file per experiment into this directory")
		journalPath = fs.String("journal", "", "record finished experiments to this JSONL journal")
		resume      = fs.Bool("resume", false, "with -journal, replay experiments the journal already records")
		parallel    = fs.Int("parallel", 1, "experiments run concurrently")
		retries     = fs.Int("retries", 1, "retries per failing experiment (attempts = retries + 1)")
		cellTimeout = fs.Duration("cell-timeout", 0, "per-attempt wall-clock budget per experiment (0 = unlimited)")
		cpuProf     = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf     = fs.String("memprofile", "", "write a heap profile to this file on exit")
		showVer     = fs.Bool("version", false, "print the build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVer {
		fmt.Println(version.String("experiments"))
		return nil
	}
	if *resume && *journalPath == "" {
		return errors.New("-resume needs -journal")
	}
	if *cpuProf != "" || *memProf != "" {
		stopProf, err := profiling.Start(*cpuProf, *memProf)
		if err != nil {
			return err
		}
		defer func() {
			if err := stopProf(); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
			}
		}()
	}

	if *list {
		for _, e := range analysis.Experiments() {
			fmt.Printf("%-4s %s\n     claim: %s\n", e.ID, e.Title, e.Claim)
		}
		return nil
	}

	var selected []analysis.Experiment
	if *exp == "all" {
		selected = analysis.Experiments()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			e, ok := analysis.Lookup(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			selected = append(selected, e)
		}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}

	cfg := analysis.Config{Quick: *quick, SeedBase: *seed}
	cells := make([]runner.Cell, len(selected))
	for i, e := range selected {
		e := e
		cells[i] = runner.Cell{
			Key: e.ID,
			Work: func(context.Context) (json.RawMessage, error) {
				start := time.Now()
				tables, err := e.Run(cfg)
				if err != nil {
					return nil, err
				}
				var stdout, file strings.Builder
				fmt.Fprintf(&stdout, "=== %s: %s ===\n", e.ID, e.Title)
				fmt.Fprintf(&stdout, "claim: %s\n\n", e.Claim)
				fmt.Fprintf(&file, "%s: %s\nclaim: %s\n\n", e.ID, e.Title, e.Claim)
				for _, tb := range tables {
					var werr error
					switch {
					case *csv:
						werr = tb.WriteCSV(&stdout)
					case *markdown:
						werr = tb.WriteMarkdown(&stdout)
					default:
						werr = tb.WriteText(&stdout)
					}
					if werr != nil {
						return nil, werr
					}
					stdout.WriteByte('\n')
					if err := tb.WriteText(&file); err != nil {
						return nil, err
					}
					file.WriteByte('\n')
				}
				fmt.Fprintf(&stdout, "(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
				return json.Marshal(expPayload{Stdout: stdout.String(), File: file.String()})
			},
		}
	}

	// Tie the journal to every flag that shapes an experiment's output, so
	// -resume cannot replay tables computed under different settings.
	label := fmt.Sprintf("experiments quick=%t seed=%d csv=%t markdown=%t", *quick, *seed, *csv, *markdown)

	opts := runner.Options{
		Workers:     *parallel,
		CellTimeout: *cellTimeout,
		MaxAttempts: *retries + 1,
		Seed:        *seed,
		Log:         os.Stderr,
	}
	if *journalPath != "" {
		var (
			j   *runner.Journal
			err error
		)
		if *resume {
			j, err = runner.ResumeJournal(*journalPath, label)
		} else {
			j, err = runner.OpenJournal(*journalPath, label)
		}
		if err != nil {
			return err
		}
		defer j.Close()
		opts.Journal = j
	}

	report, execErr := runner.Execute(ctx, cells, opts)
	if report == nil {
		return execErr
	}

	for i, c := range report.Cells {
		if c == nil || c.Status != runner.StatusOK {
			continue
		}
		var p expPayload
		if err := json.Unmarshal(c.Result, &p); err != nil {
			return fmt.Errorf("%s: corrupt payload: %w", c.Key, err)
		}
		os.Stdout.WriteString(p.Stdout)
		if *outDir != "" {
			path := filepath.Join(*outDir, selected[i].ID+".txt")
			if err := os.WriteFile(path, []byte(p.File), 0o644); err != nil {
				return err
			}
		}
	}

	for _, f := range report.Failures() {
		fmt.Fprintf(os.Stderr, "experiments: %s FAILED after %d attempt(s): %s\n", f.Key, f.Attempts, f.Err)
	}
	if execErr != nil {
		if errors.Is(execErr, runner.ErrInterrupted) && *journalPath != "" {
			fmt.Fprintf(os.Stderr, "experiments: interrupted with %d/%d done; journal flushed — rerun with -resume to finish\n",
				report.OK, len(cells))
		}
		return execErr
	}
	if n := report.Failed; n > 0 {
		return fmt.Errorf("%d of %d experiments failed", n, len(cells))
	}
	return nil
}
