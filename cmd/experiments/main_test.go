package main

import (
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var sb strings.Builder
		tmp := make([]byte, 4096)
		for {
			n, rerr := r.Read(tmp)
			sb.Write(tmp[:n])
			if rerr != nil {
				break
			}
		}
		done <- sb.String()
	}()
	runErr := f()
	w.Close()
	os.Stdout = old
	return <-done, runErr
}

func TestList(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-list"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"E1", "E7", "E10", "E13"} {
		if !strings.Contains(out, id) {
			t.Errorf("list missing %s:\n%s", id, out)
		}
	}
}

func TestSingleExperimentText(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-quick", "-exp", "E7"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"=== E7", "claim:", "completed in"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestCSVOutput(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-quick", "-exp", "E7", "-csv"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "d,shape,volumes") {
		t.Errorf("CSV header missing:\n%s", out)
	}
}

func TestMultipleExperiments(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-quick", "-exp", "E2, E3"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "=== E2") || !strings.Contains(out, "=== E3") {
		t.Error("expected both E2 and E3")
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := capture(t, func() error { return run([]string{"-exp", "E99"}) }); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestOutDir(t *testing.T) {
	dir := t.TempDir()
	if _, err := capture(t, func() error { return run([]string{"-quick", "-exp", "E7", "-out", dir}) }); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dir + "/E7.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "E7 (Claim 13)") {
		t.Errorf("E7.txt content wrong:\n%s", data)
	}
}

func TestMarkdownOutput(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-quick", "-exp", "E7", "-markdown"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "| d | shape |") {
		t.Errorf("markdown header missing:\n%s", out)
	}
}

// TestJournalResume: a journaled experiment replays on resume without
// recomputation, and experiments missing from the journal still run.
func TestJournalResume(t *testing.T) {
	journal := t.TempDir() + "/exp.jsonl"
	out, err := capture(t, func() error {
		return run([]string{"-quick", "-exp", "E7", "-journal", journal})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "=== E7") {
		t.Fatalf("first run missing E7:\n%s", out)
	}

	out, err = capture(t, func() error {
		return run([]string{"-quick", "-exp", "E7, E3", "-journal", journal, "-resume"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "=== E7") || !strings.Contains(out, "=== E3") {
		t.Errorf("resumed run should replay E7 and compute E3:\n%s", out)
	}

	// A journal recorded under different output settings must be refused.
	if _, err := capture(t, func() error {
		return run([]string{"-quick", "-exp", "E7", "-journal", journal, "-resume", "-csv"})
	}); err == nil {
		t.Error("format mismatch accepted on resume")
	}
}
