package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs f with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var sb strings.Builder
		tmp := make([]byte, 4096)
		for {
			n, rerr := r.Read(tmp)
			sb.Write(tmp[:n])
			if rerr != nil {
				break
			}
		}
		done <- sb.String()
	}()
	runErr := f()
	w.Close()
	os.Stdout = old
	return <-done, runErr
}

func TestRunBasic(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-n", "8", "-k", "20", "-seed", "3"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"mesh(d=2, n=8)", "delivered:   20/20", "theorem 20"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunTracked(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-n", "8", "-k", "20", "-track", "-series", "-validate", "restricted"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"no violations", "Phi(t+1)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunDDim(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-d", "3", "-n", "4", "-k", "30", "-policy", "fewest-good"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "section 5") {
		t.Errorf("3-D run missing section-5 bound:\n%s", out)
	}
}

func TestRunAllPoliciesAndWorkloads(t *testing.T) {
	for _, pol := range []string{"restricted", "restricted-det", "restricted-bfirst", "fewest-good", "random", "fixed", "dest-order", "farthest", "nearest"} {
		if _, err := capture(t, func() error {
			return run([]string{"-n", "6", "-k", "10", "-policy", pol})
		}); err != nil {
			t.Errorf("policy %s: %v", pol, err)
		}
	}
	for _, wl := range []string{"uniform", "partial-perm", "single-target", "hotspot", "local", "corner-rush"} {
		if _, err := capture(t, func() error {
			return run([]string{"-n", "6", "-k", "10", "-workload", wl})
		}); err != nil {
			t.Errorf("workload %s: %v", wl, err)
		}
	}
	// Fixed-size workloads derive k from the mesh and reject an explicit -k.
	for _, wl := range []string{"permutation", "transpose", "full-load"} {
		if _, err := capture(t, func() error {
			return run([]string{"-n", "6", "-workload", wl})
		}); err != nil {
			t.Errorf("workload %s: %v", wl, err)
		}
		if _, err := capture(t, func() error {
			return run([]string{"-n", "6", "-k", "10", "-workload", wl})
		}); err == nil {
			t.Errorf("workload %s: explicit -k accepted for a fixed-size workload", wl)
		}
	}
	// bit-reversal needs a power-of-two side.
	if _, err := capture(t, func() error {
		return run([]string{"-n", "8", "-workload", "bit-reversal"})
	}); err != nil {
		t.Errorf("bit-reversal: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-policy", "bogus"},
		{"-workload", "bogus"},
		{"-validate", "bogus"},
		{"-d", "0"},
		{"-n", "1"},
		{"-workload", "bit-reversal", "-n", "6"},
	}
	for _, args := range cases {
		if _, err := capture(t, func() error { return run(args) }); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestTraceRoundTripCLI(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.trace")
	if _, err := capture(t, func() error {
		return run([]string{"-n", "8", "-k", "30", "-trace-out", path})
	}); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error {
		return run([]string{"-verify-trace", path})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "trace OK") {
		t.Errorf("verify output: %s", out)
	}
	// Corrupt the trace and expect failure.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := capture(t, func() error {
		return run([]string{"-verify-trace", path})
	}); err == nil {
		t.Error("corrupted trace accepted")
	}
	if _, err := capture(t, func() error {
		return run([]string{"-verify-trace", "/does/not/exist"})
	}); err == nil {
		t.Error("missing trace accepted")
	}
}

func TestRunAnimate(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-n", "6", "-k", "8", "-animate", "2"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "t=0:") || !strings.Contains(out, "t=1:") {
		t.Errorf("animation frames missing:\n%s", out)
	}
	if _, err := capture(t, func() error {
		return run([]string{"-d", "3", "-n", "4", "-animate", "2"})
	}); err == nil {
		t.Error("3-D animate accepted")
	}
}

func TestRunHeatmap(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-n", "8", "-workload", "corner-rush", "-k", "20", "-heatmap"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "deflection heat map") {
		t.Errorf("heatmap missing:\n%s", out)
	}
	if _, err := capture(t, func() error {
		return run([]string{"-d", "3", "-n", "4", "-heatmap"})
	}); err == nil {
		t.Error("3-D heatmap accepted")
	}
}

func TestRunWorkers(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-n", "8", "-k", "30", "-workers", "3"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "delivered:   30/30") {
		t.Errorf("parallel run wrong:\n%s", out)
	}
}

// TestCheckpointResume proves the CLI kill-and-resume round trip: a run
// checkpointed periodically, then a second invocation restored from the
// last checkpoint, must finish with the identical outcome.
func TestCheckpointResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	base := []string{"-n", "8", "-k", "48", "-seed", "5", "-policy", "restricted"}

	full, err := capture(t, func() error {
		return run(append([]string{"-checkpoint", ckpt, "-checkpoint-every", "4"}, base...))
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("periodic checkpoint missing: %v", err)
	}

	resumed, err := capture(t, func() error {
		return run(append([]string{"-resume", "-checkpoint", ckpt, "-checkpoint-every", "4"}, base...))
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resumed, "resumed:") {
		t.Fatalf("resume did not restore from the checkpoint:\n%s", resumed)
	}
	// The resumed remainder must land on the same totals as the full run.
	for _, line := range []string{"delivered:", "deflections:", "max load:"} {
		want := lineWith(t, full, line)
		got := lineWith(t, resumed, line)
		if want != got {
			t.Errorf("%s differs after resume:\nfull:    %s\nresumed: %s", line, want, got)
		}
	}
}

// TestCheckpointJSONFormat exercises the human-readable encoding end to end.
func TestCheckpointJSONFormat(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	args := []string{"-n", "6", "-k", "16", "-seed", "2",
		"-checkpoint", ckpt, "-checkpoint-every", "2", "-checkpoint-format", "json"}
	if _, err := capture(t, func() error { return run(args) }); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"packets"`) {
		t.Errorf("JSON checkpoint not human-readable:\n%.200s", data)
	}
}

// TestCheckpointFlagErrors: inconsistent checkpoint flags fail fast.
func TestCheckpointFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-resume"},                // -resume without -checkpoint
		{"-checkpoint-every", "5"}, // periodic saves with nowhere to go
		{"-checkpoint", "x", "-checkpoint-format", "xml"},
		{"-resume", "-checkpoint", "nope.ckpt", "-track"}, // observers need t=0
	}
	for _, args := range cases {
		if _, err := capture(t, func() error { return run(args) }); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestResumeRejectsFlagMismatch: restoring under different engine flags
// must fail with the snapshot guard, not silently diverge.
func TestResumeRejectsFlagMismatch(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	if _, err := capture(t, func() error {
		return run([]string{"-n", "8", "-k", "48", "-seed", "5", "-checkpoint", ckpt, "-checkpoint-every", "4"})
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := capture(t, func() error {
		return run([]string{"-n", "8", "-k", "48", "-seed", "6", "-resume", "-checkpoint", ckpt})
	}); err == nil || !strings.Contains(err.Error(), "pass the same flags") {
		t.Errorf("seed mismatch on resume: err = %v", err)
	}
}

// lineWith returns the first output line containing substr.
func lineWith(t *testing.T, out, substr string) string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, substr) {
			return line
		}
	}
	t.Fatalf("output has no line containing %q:\n%s", substr, out)
	return ""
}

// TestRunArrivals: continuous traffic through the -arrivals flag, plus the
// stats line it prints.
func TestRunArrivals(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-n", "8", "-workload", "none",
			"-arrivals", "poisson:rate=0.05,until=40", "-seed", "3"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "arrivals:") {
		t.Errorf("arrivals stats line missing:\n%s", out)
	}
}

// TestRunParameterizedWorkload: the name:key=val,... syntax reaches the
// generator (and bad values die with the spec error format).
func TestRunParameterizedWorkload(t *testing.T) {
	if _, err := capture(t, func() error {
		return run([]string{"-n", "8", "-k", "10", "-workload", "hotspot:frac=0.9"})
	}); err != nil {
		t.Fatal(err)
	}
	_, err := capture(t, func() error {
		return run([]string{"-n", "8", "-k", "10", "-workload", "hotspot:frac=1.5"})
	})
	if err == nil || !strings.Contains(err.Error(), `parameter "frac"`) {
		t.Errorf("out-of-range frac: err = %v", err)
	}
}

// TestListWorkloads: the discovery flag prints every registry with schemas.
func TestListWorkloads(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-list-workloads"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"hotspot", "frac", "adversary", "rho", "restricted", "poisson"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list-workloads output missing %q", want)
		}
	}
}

// TestArrivalsRecordReplay: every injection recorded to a trace, then
// replayed via the replay arrival process, must reproduce the run exactly.
func TestArrivalsRecordReplay(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "inj.trace")
	base := []string{"-n", "8", "-workload", "none", "-seed", "9"}
	rec, err := capture(t, func() error {
		return run(append([]string{"-arrivals", "bernoulli:rate=0.05,until=30",
			"-arrivals-record", trace}, base...))
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := capture(t, func() error {
		return run(append([]string{"-arrivals", "replay:file=" + trace}, base...))
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{"delivered:", "arrivals:"} {
		if lineWith(t, rec, line) != lineWith(t, rep, line) {
			t.Errorf("%s differs under replay:\nrecorded: %s\nreplayed: %s",
				line, lineWith(t, rec, line), lineWith(t, rep, line))
		}
	}
}

// TestArrivalsFlagErrors: inconsistent arrival flags fail fast.
func TestArrivalsFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-n", "8", "-arrivals", "poisson:rate=0.05", "-track"},
		{"-n", "8", "-arrivals-record", "x.trace"},
		{"-n", "8", "-arrivals", "bogus:rate=1"},
		{"-n", "8", "-arrivals", "poisson:rate=-2"},
	}
	for _, args := range cases {
		if _, err := capture(t, func() error { return run(args) }); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
