// Command hotpotato runs one hot-potato routing problem on a d-dimensional
// mesh and reports the outcome, optionally with full potential-function
// tracking.
//
// Usage:
//
//	hotpotato -d 2 -n 16 -workload uniform -k 128 -policy restricted -seed 1 -track
//	hotpotato -workload hotspot:frac=0.7 -arrivals "poisson:rate=0.02;adversary:rho=1"
//
// Workloads and arrival processes take parameters with the
// name:key=val,... syntax; run with -list-workloads for every registered
// policy, workload and arrival process with its parameter schema.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"syscall"

	"hotpotato/internal/analysis"
	"hotpotato/internal/bound"
	"hotpotato/internal/checkpoint"
	"hotpotato/internal/core"
	"hotpotato/internal/dshard"
	"hotpotato/internal/mesh"
	"hotpotato/internal/policylab"
	"hotpotato/internal/shard"
	"hotpotato/internal/sim"
	"hotpotato/internal/spec"
	"hotpotato/internal/trace"
	"hotpotato/internal/traffic"
	"hotpotato/internal/version"
	"hotpotato/internal/viz"
	"hotpotato/internal/workload"
)

// verifyTrace independently replays a recorded trace file.
func verifyTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		return err
	}
	rep, err := tr.Verify(true)
	if err != nil {
		return fmt.Errorf("trace INVALID: %w", err)
	}
	fmt.Printf("trace OK: mesh(d=%d, n=%d), %d packets, %d steps, %d delivered, %d deflections\n",
		tr.Dim, tr.Side, len(tr.Packets), rep.Steps, rep.Delivered, rep.Deflections)
	fmt.Println("checks passed: hot-potato compliance, arc capacity, on-mesh moves, greediness (Definition 6)")
	return nil
}

func main() {
	// First SIGINT/SIGTERM: stop stepping and, with -checkpoint set, save a
	// final snapshot so the run continues later with -resume. Second
	// signal: default disposition (kill).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := runCtx(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hotpotato:", err)
		os.Exit(1)
	}
}

// run keeps the historical signature for tests and non-interruptible use.
func run(args []string) error { return runCtx(context.Background(), args) }

// printParams renders one catalog entry's parameter schema.
func printParams(params []spec.ParamDef) {
	for _, p := range params {
		constraint := ""
		switch {
		case len(p.Enum) > 0:
			constraint = " (" + joinComma(p.Enum) + ")"
		case p.Min != nil && p.Max != nil:
			lo := "["
			if p.MinExcl {
				lo = "("
			}
			constraint = fmt.Sprintf(" in %s%v, %v]", lo, *p.Min, *p.Max)
		case p.Min != nil && p.MinExcl:
			constraint = fmt.Sprintf(" > %v", *p.Min)
		case p.Min != nil:
			constraint = fmt.Sprintf(" >= %v", *p.Min)
		}
		def := "required"
		if !p.Required {
			def = "default " + p.Default
		}
		fmt.Printf("      %-8s %-6s %s%s — %s\n", p.Name, p.Type, def, constraint, p.Doc)
	}
}

func joinComma(xs []string) string {
	out := ""
	for i, x := range xs {
		if i > 0 {
			out += ", "
		}
		out += x
	}
	return out
}

// listPolicies prints just the policy section of the catalog: every
// registered policy with its parameter schema (the parameterized families
// take -policy name:key=val,...).
func listPolicies() {
	c := spec.Catalog()
	fmt.Println("policies (-policy name[:key=val,...]):")
	for _, e := range c.Policies {
		fmt.Printf("  %-18s %s\n", e.Name, e.Doc)
		printParams(e.Params)
	}
}

// listWorkloads prints the discovery catalog: every registered policy,
// workload and arrival process with parameter schemas and defaults.
func listWorkloads() {
	c := spec.Catalog()
	fmt.Println("policies (-policy name[:key=val,...]):")
	for _, e := range c.Policies {
		fmt.Printf("  %-18s %s\n", e.Name, e.Doc)
		printParams(e.Params)
	}
	fmt.Println("\nworkloads (-workload name[:key=val,...]):")
	for _, e := range c.Workloads {
		suffix := ""
		if e.FixedSize {
			suffix = " [fixed size: rejects -k]"
		}
		fmt.Printf("  %-18s %s%s\n", e.Name, e.Doc, suffix)
		printParams(e.Params)
	}
	fmt.Println("\narrival processes (-arrivals \"proc[:key=val,...][;proc2:...]\"):")
	for _, e := range c.Arrivals {
		fmt.Printf("  %-18s %s\n", e.Name, e.Doc)
		printParams(e.Params)
	}
	fmt.Printf("\nvalidation levels: %s\n", joinComma(c.Validation))
	fmt.Printf("fault fates:       %s\n", joinComma(c.Fates))
}

// buildFaults assembles the fault model from the command-line knobs via the
// shared spec registry, reading the scripted schedule (if any) from disk.
func buildFaults(m *mesh.Mesh, rate, repair float64, maxDown int, crash float64, script string) (sim.FaultModel, error) {
	cfg := spec.FaultConfig{Rate: rate, Repair: repair, MaxDown: maxDown, CrashRate: crash}
	if script != "" {
		text, err := os.ReadFile(script)
		if err != nil {
			return nil, err
		}
		cfg.Script = string(text)
	}
	model, err := spec.NewFaults(m, cfg)
	if err != nil && script != "" {
		return nil, fmt.Errorf("fault script %s: %w", script, err)
	}
	return model, err
}

// report prints the summary shared by the single-engine and sharded paths.
// extra, when non-nil, prints additional sections (the fault report) in the
// middle of the layout.
func report(m *mesh.Mesh, pol sim.Policy, res *sim.Result, runErr error,
	resumed bool, wl string, packets []*sim.Packet, ckptPath string, dim, side int, extra func()) {
	fmt.Printf("mesh:        %v (diameter %d)\n", m, m.Diameter())
	fmt.Printf("policy:      %s\n", pol.Name())
	if resumed {
		// The initial configuration is gone; distance-derived statistics
		// would be relative to the restore point, not the original run.
		fmt.Printf("workload:    %s (resumed), k=%d\n", wl, res.Total)
		fmt.Printf("steps:       %d\n", res.Steps)
	} else {
		fmt.Printf("workload:    %s, k=%d, dmax=%d\n", wl, res.Total, workload.MaxDistance(m, packets))
		fmt.Printf("steps:       %d (instance lower bound %d)\n", res.Steps, bound.Instance(m, packets))
	}
	fmt.Printf("delivered:   %d/%d\n", res.Delivered, res.Total)
	fmt.Printf("deflections: %d (of %d hops)\n", res.TotalDeflections, res.TotalHops)
	fmt.Printf("max load:    %d packets in one node\n", res.MaxNodeLoad)
	if extra != nil {
		extra()
	}
	if res.Livelocked {
		fmt.Println("LIVELOCK detected: the configuration repeated")
	}
	if res.HitMaxSteps {
		fmt.Println("step budget exhausted before completion")
	}
	if res.DeadlineExceeded {
		fmt.Println("wall-clock budget exhausted before completion")
	}
	if runErr != nil { // context cancelled: a signal stopped the run
		if ckptPath != "" {
			fmt.Printf("interrupted at step %d; state saved to %s — rerun with -resume to continue\n", res.Steps, ckptPath)
		} else {
			fmt.Printf("interrupted at step %d (no -checkpoint set, progress not saved)\n", res.Steps)
		}
	}
	if dim == 2 {
		b := analysis.Theorem20Bound(side, res.Total)
		fmt.Printf("theorem 20:  bound %.0f, measured/bound = %.4f\n", b, float64(res.Steps)/b)
	} else {
		b := analysis.Section5Bound(dim, side, res.Total)
		fmt.Printf("section 5:   bound %.0f, measured/bound = %.6f\n", b, float64(res.Steps)/b)
	}
}

func runCtx(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("hotpotato", flag.ContinueOnError)
	var (
		dim            = fs.Int("d", 2, "mesh dimension")
		side           = fs.Int("n", 16, "mesh side length")
		k              = fs.Int("k", 64, "packet count (where the workload takes one)")
		policy         = fs.String("policy", "restricted", "routing policy")
		wl             = fs.String("workload", "uniform", "workload generator")
		seed           = fs.Int64("seed", 1, "random seed")
		maxSteps       = fs.Int("max-steps", 0, "step budget (0 = default)")
		track          = fs.Bool("track", false, "attach the potential tracker and report invariant checks")
		series         = fs.Bool("series", false, "with -track, print the per-step Phi/G/B/F series")
		validate       = fs.String("validate", "greedy", "validation level: off, basic, greedy, restricted")
		livelock       = fs.Bool("detect-livelock", true, "detect repeated configurations (deterministic policies)")
		traceOut       = fs.String("trace-out", "", "record the run to this trace file")
		verify         = fs.String("verify-trace", "", "verify a recorded trace file and exit (other flags ignored)")
		heatmap        = fs.Bool("heatmap", false, "print a per-node deflection heat map after the run (2-D only)")
		animate        = fs.Int("animate", 0, "print the first N steps as text frames (2-D only)")
		workers        = fs.Int("workers", 0, "route nodes concurrently on this many goroutines (0 = serial)")
		arrivals       = fs.String("arrivals", "", "continuous arrival traffic: proc[:key=val,...][;proc2:...], e.g. poisson:rate=0.02 (see -list-workloads)")
		arrivalsRecord = fs.String("arrivals-record", "", "with -arrivals, record every injection to this file (replay with -arrivals replay:file=...)")
		listWl         = fs.Bool("list-workloads", false, "print every registered policy, workload and arrival process with its parameter schema, then exit")
		listPol        = fs.Bool("list-policies", false, "print every registered policy with its parameter schema, then exit")
		conflictTrace  = fs.String("conflict-trace", "", "record every routing conflict (contenders, features, winner, deflections) to this CRC-framed JSONL file (see cmd/policylab)")
		shards         = fs.String("shards", "", "run the sharded engine with a PxQ spatial decomposition, e.g. 4x2 (2-D only; -checkpoint becomes a directory)")
		dist           = fs.Int("dist", 0, "with -shards, run distributed: this many worker processes over loopback TCP instead of shard goroutines (see cmd/shardcoord for real multi-process runs)")

		faultRate    = fs.Float64("fault-rate", 0, "per-link per-step failure probability (0 = no link flaps)")
		faultRepair  = fs.Float64("fault-repair", 0.05, "per-link per-step repair probability for downed links")
		faultMaxDown = fs.Int("fault-max-down", 0, "cap on concurrently failed links/nodes (0 = unlimited)")
		crashRate    = fs.Float64("crash-rate", 0, "per-node per-step crash probability (0 = no crashes)")
		faultScript  = fs.String("fault-script", "", "scripted fault events file (lines: <step> <link-down|link-up|node-down|node-up> <node> [dir])")
		faultFate    = fs.String("fault-fate", "drop", "fate of packets inside a crashing node: drop or absorb")
		maxWall      = fs.Duration("max-wall", 0, "wall-clock budget for the run (0 = unlimited)")

		ckptPath   = fs.String("checkpoint", "", "checkpoint file: saved periodically (-checkpoint-every) and on SIGINT/SIGTERM")
		ckptEvery  = fs.Int("checkpoint-every", 0, "with -checkpoint, save every N steps (0 = only on interrupt)")
		ckptFormat = fs.String("checkpoint-format", "binary", "checkpoint encoding: binary or json")
		resume     = fs.Bool("resume", false, "restore state from -checkpoint before running (pass the same flags as the original run)")
		showVer    = fs.Bool("version", false, "print the build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *showVer {
		fmt.Println(version.String("hotpotato"))
		return nil
	}
	if *listWl {
		listWorkloads()
		return nil
	}
	if *listPol {
		listPolicies()
		return nil
	}
	if *verify != "" {
		return verifyTrace(*verify)
	}
	var format checkpoint.Format
	switch *ckptFormat {
	case "binary":
		format = checkpoint.Binary
	case "json":
		format = checkpoint.JSON
	default:
		return fmt.Errorf("unknown checkpoint format %q (want binary or json)", *ckptFormat)
	}
	if (*ckptEvery != 0 || *resume) && *ckptPath == "" {
		return fmt.Errorf("-checkpoint-every and -resume need -checkpoint")
	}
	if *resume && (*track || *traceOut != "" || *heatmap || *animate > 0) {
		// These observers reconstruct per-packet state from the initial
		// configuration, which a mid-run snapshot no longer has.
		return fmt.Errorf("-resume cannot be combined with -track, -trace-out, -heatmap or -animate")
	}

	m, err := mesh.New(*dim, *side)
	if err != nil {
		return err
	}
	pol, err := spec.NewPolicy(*policy)
	if err != nil {
		return err
	}
	ws, err := spec.ParseWorkloadSpec(*wl)
	if err != nil {
		return err
	}
	ws.Arrivals, err = spec.ParseArrivalSpec(*arrivals)
	if err != nil {
		return err
	}
	if err := ws.Validate(); err != nil {
		return err
	}
	kSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "k" {
			kSet = true
		}
	})
	if kSet && ws.FixedSize() {
		return fmt.Errorf("workload %q derives its packet count from the mesh; drop -k (parameters go in the workload spec, e.g. full-load:per-node=2)", ws.Name)
	}
	if ws.Arrivals != nil && (*track || *traceOut != "") {
		return fmt.Errorf("-arrivals cannot be combined with -track or -trace-out (both reconstruct runs from the initial batch)")
	}
	if *arrivalsRecord != "" && ws.Arrivals == nil {
		return fmt.Errorf("-arrivals-record needs -arrivals")
	}
	var packets []*sim.Packet
	if !*resume { // a resumed run takes its packets from the snapshot
		rng := rand.New(rand.NewSource(*seed))
		packets, err = spec.BuildWorkload(ws, m, *k, rng)
		if err != nil {
			return err
		}
	}
	// The injector is built resume or not: Restore reinstates its state, so
	// it must be installed first, mirroring the packets-from-snapshot rule.
	src, err := spec.BuildArrivals(ws.Arrivals, m)
	if err != nil {
		return err
	}
	var arrivalsFlush func() error
	if *arrivalsRecord != "" {
		f, err := os.Create(*arrivalsRecord)
		if err != nil {
			return err
		}
		tw, err := traffic.NewTraceWriter(f, m)
		if err != nil {
			f.Close()
			return err
		}
		src.SetTrace(tw)
		arrivalsFlush = func() error {
			if err := tw.Flush(); err != nil {
				f.Close()
				return fmt.Errorf("arrivals trace %s: %w", *arrivalsRecord, err)
			}
			return f.Close()
		}
	}
	lvl, err := spec.ParseValidation(*validate)
	if err != nil {
		return err
	}

	if *shards != "" {
		if *track || *traceOut != "" || *heatmap || *animate > 0 {
			return fmt.Errorf("-shards cannot be combined with -track, -trace-out, -heatmap or -animate (observers see one engine's move stream)")
		}
		if *conflictTrace != "" {
			return fmt.Errorf("-shards cannot be combined with -conflict-trace (the conflict tap sees one engine's move stream)")
		}
		if *workers > 0 {
			return fmt.Errorf("-shards and -workers are alternative parallelization schemes; pick one")
		}
		if *faultRate > 0 || *crashRate > 0 || *faultScript != "" {
			return fmt.Errorf("-shards does not support fault injection yet")
		}
		grid, err := shard.ParseGrid(*shards)
		if err != nil {
			return err
		}
		if *dist > 0 {
			if *dim != 2 {
				return fmt.Errorf("-dist needs a 2-dimensional mesh, got -d %d", *dim)
			}
			if src != nil {
				return fmt.Errorf("-dist does not support -arrivals (distributed workers route a closed batch)")
			}
			var resumeCK *shard.Checkpoint
			if *resume {
				resumeCK, err = shard.LoadDir(*ckptPath)
				if err != nil {
					return err
				}
			}
			c, err := dshard.New(dshard.Spec{
				Side:           *side,
				Policy:         *policy,
				Grid:           grid,
				Seed:           *seed + 1,
				MaxSteps:       *maxSteps,
				Validation:     lvl,
				DetectLivelock: *livelock,
			}, packets, dshard.Options{
				Workers:          *dist,
				Policies:         spec.NewPolicy,
				Spawn:            dshard.InProcessSpawner(dshard.WorkerOptions{Policies: spec.NewPolicy}),
				CheckpointEvery:  *ckptEvery,
				CheckpointDir:    *ckptPath,
				CheckpointFormat: format,
				Resume:           resumeCK,
				MaxWallTime:      *maxWall,
			})
			if err != nil {
				if *resume {
					return fmt.Errorf("resume from %s: %w (pass the same flags as the original run)", *ckptPath, err)
				}
				return err
			}
			defer c.Close()
			if resumeCK != nil {
				fmt.Printf("resumed:     %s at step %d, %d packets in flight\n",
					*ckptPath, resumeCK.Manifest.Time, resumeCK.Manifest.Live)
			}
			res, runErr := c.Run(ctx)
			if runErr != nil && !errors.Is(runErr, context.Canceled) {
				return runErr
			}
			fmt.Printf("shards:      %s across %d loopback worker processes\n", grid, *dist)
			report(m, pol, res, runErr, *resume, *wl, packets, *ckptPath, *dim, *side, nil)
			return runErr
		}
		se, err := shard.New(m, pol, packets, shard.Options{
			Grid:           grid,
			Seed:           *seed + 1,
			Validation:     lvl,
			MaxSteps:       *maxSteps,
			DetectLivelock: *livelock,
			MaxWallTime:    *maxWall,
		})
		if err != nil {
			return err
		}
		defer se.Close()
		if src != nil {
			se.SetInjector(src)
		}
		if *resume {
			ck, err := shard.LoadDir(*ckptPath)
			if err != nil {
				return err
			}
			if err := se.Restore(ck); err != nil {
				return fmt.Errorf("resume from %s: %w (pass the same flags as the original run)", *ckptPath, err)
			}
			fmt.Printf("resumed:     %s at step %d, %d packets in flight\n", *ckptPath, ck.Manifest.Time, ck.Manifest.Live)
		}
		var save func(*shard.Checkpoint) error
		if *ckptPath != "" {
			save = func(ck *shard.Checkpoint) error { return shard.SaveDir(*ckptPath, ck, format) }
		}
		res, runErr := se.RunCheckpointed(ctx, *ckptEvery, save)
		if runErr != nil && !errors.Is(runErr, context.Canceled) {
			return runErr
		}
		fmt.Printf("shards:      %s (%d shard goroutines)\n", grid, grid.Count())
		report(m, pol, res, runErr, *resume, *wl, packets, *ckptPath, *dim, *side, nil)
		if src != nil {
			fmt.Printf("arrivals:    %d generated, %d injected, backlog %d (max %d)\n",
				src.Generated(), src.Injected(), src.Backlog(), src.MaxBacklog())
			if arrivalsFlush != nil {
				if err := arrivalsFlush(); err != nil {
					return err
				}
				fmt.Printf("inj trace:   written to %s\n", *arrivalsRecord)
			}
		}
		return runErr
	}

	e, err := sim.New(m, pol, packets, sim.Options{
		Seed:           *seed + 1,
		Validation:     lvl,
		MaxSteps:       *maxSteps,
		DetectLivelock: *livelock,
		Workers:        *workers,
		MaxWallTime:    *maxWall,
	})
	if err != nil {
		return err
	}
	if src != nil {
		e.SetInjector(src)
	}
	faults, err := buildFaults(m, *faultRate, *faultRepair, *faultMaxDown, *crashRate, *faultScript)
	if err != nil {
		return err
	}
	if faults != nil {
		fate, err := spec.ParseFate(*faultFate)
		if err != nil {
			return err
		}
		e.SetFaults(faults, fate)
	}
	var conflictRec *policylab.Recorder
	var conflictFlush func() error
	if *conflictTrace != "" {
		f, err := os.Create(*conflictTrace)
		if err != nil {
			return err
		}
		cw, err := policylab.NewWriter(f, policylab.TraceHeader{
			Dim: *dim, Side: *side, Policy: pol.Name(), Seed: *seed,
		})
		if err != nil {
			f.Close()
			return err
		}
		conflictRec = policylab.NewRecorder(0)
		conflictRec.Spill(cw)
		e.SetConflictObserver(conflictRec)
		conflictFlush = func() error {
			if err := cw.Flush(); err != nil {
				f.Close()
				return fmt.Errorf("conflict trace %s: %w", *conflictTrace, err)
			}
			return f.Close()
		}
	}
	var tracker *core.Tracker
	if *track {
		tracker = core.NewTracker(m, packets, core.TrackerOptions{RecordSeries: *series, SelfCheckEvery: 64})
		e.AddObserver(tracker)
	}
	var recorder *trace.Recorder
	if *traceOut != "" {
		recorder = trace.NewRecorder(m, packets)
		e.AddObserver(recorder)
	}
	var deflections *viz.DeflectionCounter
	if *heatmap {
		if *dim != 2 {
			return fmt.Errorf("-heatmap needs a 2-dimensional mesh")
		}
		deflections = viz.NewDeflectionCounter(m)
		e.AddObserver(deflections)
	}
	var animator *viz.Animator
	if *animate > 0 {
		animator, err = viz.NewAnimator(m, os.Stdout, *animate)
		if err != nil {
			return err
		}
		e.AddObserver(animator)
	}
	if *resume {
		snap, err := checkpoint.Load(*ckptPath)
		if err != nil {
			return err
		}
		if err := e.Restore(snap); err != nil {
			return fmt.Errorf("resume from %s: %w (pass the same flags as the original run)", *ckptPath, err)
		}
		fmt.Printf("resumed:     %s at step %d, %d packets in flight\n", *ckptPath, snap.Time, len(snap.Packets))
	}
	var save func(*sim.Snapshot) error
	if *ckptPath != "" {
		save = func(s *sim.Snapshot) error { return checkpoint.Save(*ckptPath, s, format) }
	}
	res, runErr := e.RunCheckpointed(ctx, *ckptEvery, save)
	if runErr != nil && !errors.Is(runErr, context.Canceled) {
		return runErr
	}
	if runErr == nil && animator != nil && animator.Err() != nil {
		return animator.Err()
	}
	if recorder != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		if err := recorder.Trace().Write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace:       written to %s\n", *traceOut)
	}
	if conflictRec != nil {
		if err := conflictRec.Err(); err != nil {
			return fmt.Errorf("conflict trace %s: %w", *conflictTrace, err)
		}
		if err := conflictFlush(); err != nil {
			return err
		}
		total, contenders, deflected, db, da := conflictRec.Stats()
		fmt.Printf("conflicts:   %d recorded to %s (%d contenders, %d deflected, potential drop %d)\n",
			total, *conflictTrace, contenders, deflected, db-da)
	}

	if faults != nil {
		report(m, pol, res, runErr, *resume, *wl, packets, *ckptPath, *dim, *side, func() {
			fmt.Printf("faults:      %d link failures, %d node failures over the run\n",
				res.LinkFailures, res.NodeFailures)
			fmt.Printf("degraded:    %d dropped (%d crash, %d unreachable, %d stranded, %d at injection), %d absorbed\n",
				res.Dropped, res.DroppedCrash, res.DroppedUnreachable, res.DroppedStranded, res.DroppedInject,
				res.Absorbed)
			fmt.Printf("reroutes:    %d packet-steps with no surviving good arc\n", res.Reroutes)
		})
	} else {
		report(m, pol, res, runErr, *resume, *wl, packets, *ckptPath, *dim, *side, nil)
	}
	if src != nil {
		fmt.Printf("arrivals:    %d generated, %d injected, backlog %d (max %d)\n",
			src.Generated(), src.Injected(), src.Backlog(), src.MaxBacklog())
		if arrivalsFlush != nil {
			if err := arrivalsFlush(); err != nil {
				return err
			}
			fmt.Printf("inj trace:   written to %s\n", *arrivalsRecord)
		}
	}
	if tracker != nil {
		v := tracker.Violations()
		fmt.Printf("potential:   Phi(0)=%d, M=%d, final Phi=%d\n", tracker.Phi0(), tracker.M(), tracker.Phi())
		fmt.Printf("invariants:  %s\n", v.String())
		fmt.Printf("min phi:     %d, min spare: %d\n", tracker.MinPhi(), tracker.MinSpare())
		if *series {
			fmt.Println("\n  t     Phi(t+1)   G(t)   B(t)   F(t)   adv   defl")
			for _, s := range tracker.Series() {
				fmt.Printf("%5d %10d %6d %6d %6d %5d %6d\n",
					s.Time, s.PhiAfter, s.Good, s.Bad, s.SurfaceArcs, s.Advanced, s.Deflected)
			}
		}
	}
	if deflections != nil {
		out, err := viz.Heatmap(m, deflections.Counts(),
			fmt.Sprintf("\ndeflection heat map (%d deflections total):", deflections.Total()))
		if err != nil {
			return err
		}
		fmt.Print(out)
	}
	return runErr // non-nil exactly when a signal interrupted the run
}
