package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReproQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("repro run skipped in -short mode")
	}
	dir := t.TempDir()
	if err := run([]string{"-quick", "-dir", dir}); err != nil {
		t.Fatal(err)
	}
	report, err := os.ReadFile(filepath.Join(dir, "REPORT.md"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"## E1 —", "## E21 —", "no violations", "| n | k |"} {
		if !strings.Contains(string(report), want) {
			t.Errorf("report missing %q", want)
		}
	}
	figs, err := os.ReadFile(filepath.Join(dir, "figures.txt"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 6; i++ {
		if !strings.Contains(string(figs), "Figure "+string(rune('0'+i))) {
			t.Errorf("figures.txt missing figure %d", i)
		}
	}
}

func TestReproBadDir(t *testing.T) {
	if err := run([]string{"-dir", "/dev/null/nope"}); err == nil {
		t.Error("unwritable dir accepted")
	}
}

func TestRenderFigureUnknown(t *testing.T) {
	if _, err := renderFigure(9); err == nil {
		t.Error("figure 9 accepted")
	}
}
