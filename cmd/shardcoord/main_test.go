package main

import (
	"context"
	"strings"
	"testing"
)

func TestRunRejectsBadFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"bad format", []string{"-checkpoint-format", "yaml"}, "unknown checkpoint format"},
		{"resume without checkpoint", []string{"-resume"}, "-resume needs -checkpoint"},
		{"bad grid", []string{"-shards", "0x2"}, "grid"},
		{"bad policy", []string{"-policy", "nope", "-shards", "2x1"}, "policy"},
		{"bad workload", []string{"-workload", "nope"}, "workload"},
		{"too many workers", []string{"-shards", "2x1", "-workers", "3"}, "workers"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(context.Background(), tc.args, nil)
			if err == nil {
				t.Fatalf("args %v accepted", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("args %v: error %q does not mention %q", tc.args, err, tc.want)
			}
		})
	}
}
