package main

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"os/signal"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"hotpotato/internal/dshard"
	"hotpotato/internal/mesh"
	"hotpotato/internal/shard"
	"hotpotato/internal/sim"
	"hotpotato/internal/spec"
)

const chaosToken = "chaos-token"

// TestHelperWorker is not a test: it is the worker body for the SIGKILL
// chaos harness. The coordinator side re-executes this test binary with
// SHARDWORKER_HELPER=1 and "-- <addr> <slot>", then kills the process for
// real — the only way to exercise recovery from an actual kill -9 rather
// than an in-process simulation.
func TestHelperWorker(t *testing.T) {
	if os.Getenv("SHARDWORKER_HELPER") != "1" {
		t.Skip("helper process body; only runs when re-executed by the chaos test")
	}
	var args []string
	for i, a := range os.Args {
		if a == "--" {
			args = os.Args[i+1:]
			break
		}
	}
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "helper worker: want -- <addr> <slot>")
		os.Exit(2)
	}
	slot, err := strconv.Atoi(args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "helper worker: bad slot:", err)
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	opts := dshard.WorkerOptions{
		Token:    chaosToken,
		Slot:     slot,
		Policies: spec.NewPolicy,
		// Slow each step so the run is long enough for kills to land mid-run
		// on a loopback link that would otherwise finish in milliseconds.
		TestHookPreRoute: func(int) { time.Sleep(5 * time.Millisecond) },
	}
	if err := dshard.RunWorker(ctx, args[0], opts); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "helper worker:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// chaosSpawner spawns real worker processes (re-execing the test binary)
// and remembers their PIDs so the killer can SIGKILL them behind the
// coordinator's back.
type chaosSpawner struct {
	mu    sync.Mutex
	procs map[int]*exec.Cmd
}

func (s *chaosSpawner) spawn(slot int, addr string) (dshard.WorkerProc, error) {
	cmd := exec.Command(os.Args[0], "-test.run=^TestHelperWorker$", "--", addr, strconv.Itoa(slot))
	cmd.Env = append(os.Environ(), "SHARDWORKER_HELPER=1")
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	p := &execProc{cmd: cmd, done: make(chan struct{})}
	go func() {
		cmd.Wait() //nolint:errcheck // killed workers exit non-zero by design
		close(p.done)
	}()
	s.mu.Lock()
	s.procs[slot] = cmd
	s.mu.Unlock()
	return p, nil
}

// kill SIGKILLs the current incarnation of a slot — no warning, no flush.
func (s *chaosSpawner) kill(slot int) bool {
	s.mu.Lock()
	cmd := s.procs[slot]
	s.mu.Unlock()
	if cmd == nil {
		return false
	}
	return cmd.Process.Kill() == nil
}

// TestDistChaosSIGKILL is the distributed-durability proof at the process
// level: a coordinator drives four real worker processes, a killer SIGKILLs
// one of them every few steps, and the finished run must be bit-identical —
// every Result field and the final state hash — to the same problem on the
// in-process sharded engine with no kills at all. SHARDCOORD_CHAOS_KILLS
// overrides the kill count (default 5); `make chaos` runs it higher.
func TestDistChaosSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level chaos harness; skipped in -short")
	}
	kills := 5
	if v := os.Getenv("SHARDCOORD_CHAOS_KILLS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("bad SHARDCOORD_CHAOS_KILLS %q", v)
		}
		kills = n
	}

	const (
		side     = 8
		seed     = 9
		maxSteps = 400
		workers  = 4
	)
	grid := shard.Grid{P: 2, Q: 2}
	m, err := mesh.NewTorus(2, side)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := spec.NewPolicy("random")
	if err != nil {
		t.Fatal(err)
	}
	lvl, err := spec.ParseValidation("greedy")
	if err != nil {
		t.Fatal(err)
	}
	// The workload generator is deterministic: two draws with the same seed
	// give two independent, identical packet populations.
	newPackets := func() []*sim.Packet {
		pkts, err := spec.NewWorkload("full-load", m, 0, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		return pkts
	}

	// Reference: the in-process sharded engine, never interrupted.
	se, err := shard.New(m, pol, newPackets(), shard.Options{
		Grid: grid, Seed: seed + 1, Validation: lvl,
		MaxSteps: maxSteps, DetectLivelock: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := se.Run()
	if err != nil {
		t.Fatal(err)
	}
	refHash := se.StateHash()
	se.Close()

	// The kill-scarred distributed run of the same problem.
	sp := &chaosSpawner{procs: map[int]*exec.Cmd{}}
	c, err := dshard.New(dshard.Spec{
		Side: side, Wrap: true, Policy: "random", Grid: grid,
		Seed: seed + 1, MaxSteps: maxSteps, Validation: lvl, DetectLivelock: true,
	}, newPackets(), dshard.Options{
		Workers:          workers,
		Token:            chaosToken,
		Policies:         spec.NewPolicy,
		Spawn:            sp.spawn,
		StepTimeout:      5 * time.Second,
		MaxRetries:       3,
		BackoffBase:      5 * time.Millisecond,
		BackoffMax:       50 * time.Millisecond,
		HeartbeatEvery:   25 * time.Millisecond,
		HeartbeatTimeout: time.Second,
		RejoinTimeout:    30 * time.Second,
		MaxRecoveries:    8 * kills,
		CheckpointEvery:  4,
		Logf: func(f string, args ...any) {
			fmt.Fprintf(os.Stderr, "chaos coord: "+f+"\n", args...)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var stepEvents atomic.Int64
	c.StepHook = func(t, live int) { stepEvents.Add(1) }

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	killErr := make(chan error, 1)
	var killsDone atomic.Int64
	go func() {
		for i := 0; i < kills; i++ {
			// Wait for forward progress since the last kill, so every kill
			// lands on a run that is genuinely mid-flight.
			base := stepEvents.Load()
			deadline := time.Now().Add(60 * time.Second)
			for stepEvents.Load() < base+3 {
				if time.Now().After(deadline) {
					killErr <- fmt.Errorf("kill %d: no forward progress within 60s", i+1)
					cancel()
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
			slot := i % workers
			if !sp.kill(slot) {
				killErr <- fmt.Errorf("kill %d: slot %d had no process", i+1, slot)
				cancel()
				return
			}
			killsDone.Add(1)
		}
		killErr <- nil
	}()

	res, runErr := c.Run(ctx)
	if err := <-killErr; err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatalf("distributed run failed after %d kills: %v", killsDone.Load(), runErr)
	}
	if got := killsDone.Load(); got != int64(kills) {
		t.Fatalf("run finished after only %d of %d kills — not enough mid-run exposure", got, kills)
	}
	if c.Recoveries() < kills {
		t.Errorf("recoveries = %d, want >= %d (every SIGKILL must force a rollback)", c.Recoveries(), kills)
	}

	// Bit-identity with the uninterrupted reference.
	if *res != *refRes {
		t.Errorf("result diverged after kills:\n  got  %+v\n  want %+v", *res, *refRes)
	}
	if got := c.StateHash(); got != refHash {
		t.Errorf("final state hash %016x != uninterrupted %016x", got, refHash)
	}
	t.Logf("survived %d SIGKILLs with %d recoveries; %d steps, hash %016x",
		kills, c.Recoveries(), res.Steps, c.StateHash())
}
