// Command shardcoord runs one hot-potato routing problem distributed across
// worker processes. It listens for workers (cmd/shardworker), assigns each a
// contiguous band of the PxQ shard grid, and drives the two-phase step
// barrier — relaying receiver-keyed halo buckets between workers — until the
// run completes. The result is bit-identical to the same problem on the
// in-process engines: same per-step state hashes, same livelock step, same
// summary.
//
// Workers are expendable. With -worker-bin the coordinator spawns (and after
// a kill, re-spawns) them itself; without it, workers are external and dial
// in. Either way a failure rolls every worker back to the last coordinated
// checkpoint and the run continues.
//
// Usage:
//
//	shardcoord -n 16 -workload permutation -policy random -shards 2x2 \
//	    -workers 2 -worker-bin ./shardworker
//
// With no -worker-bin it prints "listening on <addr>" and waits for
//
//	shardworker -addr <addr>
//
// to connect (one per -workers slot).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hotpotato/internal/checkpoint"
	"hotpotato/internal/dshard"
	"hotpotato/internal/mesh"
	"hotpotato/internal/shard"
	"hotpotato/internal/sim"
	"hotpotato/internal/spec"
	"hotpotato/internal/version"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "shardcoord:", err)
		os.Exit(1)
	}
}

// execProc is the WorkerProc for a worker the coordinator exec'ed itself.
type execProc struct {
	cmd  *exec.Cmd
	done chan struct{}
}

// Stop kills and reaps the worker; safe on one that is already dead.
func (p *execProc) Stop() {
	p.cmd.Process.Kill() //nolint:errcheck // already-dead is fine
	<-p.done
}

// execSpawner launches bin as the worker for a slot. Worker stderr is
// inherited so its log lines land next to the coordinator's.
func execSpawner(bin, token string, quiet bool, extra []string) func(slot int, addr string) (dshard.WorkerProc, error) {
	return func(slot int, addr string) (dshard.WorkerProc, error) {
		args := []string{"-addr", addr, "-token", token, "-slot", strconv.Itoa(slot)}
		if quiet {
			args = append(args, "-quiet")
		}
		args = append(args, extra...)
		cmd := exec.Command(bin, args...)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return nil, err
		}
		p := &execProc{cmd: cmd, done: make(chan struct{})}
		go func() {
			cmd.Wait() //nolint:errcheck // a SIGKILLed worker "fails"; the exit status is noise
			close(p.done)
		}()
		return p, nil
	}
}

func run(ctx context.Context, args []string, out *os.File) error {
	fs := flag.NewFlagSet("shardcoord", flag.ContinueOnError)
	var (
		side     = fs.Int("n", 16, "mesh side length (the mesh is 2-dimensional)")
		torus    = fs.Bool("torus", false, "torus (wraparound) connectivity instead of a mesh")
		k        = fs.Int("k", 64, "packet count (where the workload takes one)")
		policy   = fs.String("policy", "restricted", "routing policy")
		wl       = fs.String("workload", "uniform", "workload generator")
		seed     = fs.Int64("seed", 1, "random seed")
		maxSteps = fs.Int("max-steps", 0, "step budget (0 = default)")
		validate = fs.String("validate", "greedy", "validation level: off, basic, greedy, restricted")
		livelock = fs.Bool("detect-livelock", true, "detect repeated configurations (deterministic policies)")
		shards   = fs.String("shards", "2x1", "PxQ spatial decomposition, e.g. 4x2")
		workers  = fs.Int("workers", 2, "worker processes sharing the grid (each owns a band of shards)")

		listen     = fs.String("listen", "127.0.0.1:0", "address to listen on: host:port for TCP, a path for a unix socket")
		token      = fs.String("token", "", "shared secret workers must present")
		workerBin  = fs.String("worker-bin", "", "shardworker binary to spawn per slot (empty = wait for external workers)")
		workerArgs = fs.String("worker-flags", "", "extra flags passed to each spawned worker, e.g. \"-step-delay 20ms\"")

		stepTimeout   = fs.Duration("step-timeout", 10*time.Second, "deadline for one phase attempt per worker")
		retries       = fs.Int("retries", 2, "retries per phase exchange before a worker is declared failed")
		hbTimeout     = fs.Duration("heartbeat-timeout", 2*time.Second, "silence after which a worker is declared dead")
		rejoinTimeout = fs.Duration("rejoin-timeout", 15*time.Second, "how long a recovery waits for a replacement worker")
		maxRecover    = fs.Int("max-recoveries", 0, "checkpoint rollbacks tolerated across the run (0 = default, negative = fail on first)")
		maxWall       = fs.Duration("max-wall", 0, "wall-clock budget for the run (0 = unlimited)")

		ckptPath   = fs.String("checkpoint", "", "checkpoint directory: coordinated snapshots saved every -checkpoint-every steps")
		ckptEvery  = fs.Int("checkpoint-every", 0, "rollback/save cadence in steps (0 = default 256)")
		ckptFormat = fs.String("checkpoint-format", "binary", "checkpoint encoding: binary or json")
		resume     = fs.Bool("resume", false, "restore state from -checkpoint before running (grid and worker count may differ from the original run)")
		quiet      = fs.Bool("quiet", false, "suppress per-event log lines on stderr")
		showVer    = fs.Bool("version", false, "print the build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVer {
		fmt.Println(version.String("shardcoord"))
		return nil
	}
	var format checkpoint.Format
	switch *ckptFormat {
	case "binary":
		format = checkpoint.Binary
	case "json":
		format = checkpoint.JSON
	default:
		return fmt.Errorf("unknown checkpoint format %q (want binary or json)", *ckptFormat)
	}
	if *resume && *ckptPath == "" {
		return fmt.Errorf("-resume needs -checkpoint")
	}

	grid, err := shard.ParseGrid(*shards)
	if err != nil {
		return err
	}
	var m *mesh.Mesh
	if *torus {
		m, err = mesh.NewTorus(2, *side)
	} else {
		m, err = mesh.New(2, *side)
	}
	if err != nil {
		return err
	}
	lvl, err := spec.ParseValidation(*validate)
	if err != nil {
		return err
	}
	var packets []*sim.Packet
	var resumeCK *shard.Checkpoint
	if *resume { // a resumed run takes its packets from the snapshot
		resumeCK, err = shard.LoadDir(*ckptPath)
		if err != nil {
			return err
		}
	} else {
		rng := rand.New(rand.NewSource(*seed))
		packets, err = spec.NewWorkload(*wl, m, *k, rng)
		if err != nil {
			return err
		}
	}

	dspec := dshard.Spec{
		Side:           *side,
		Wrap:           *torus,
		Policy:         *policy,
		Grid:           grid,
		Seed:           *seed + 1, // engine seed, offset exactly like cmd/hotpotato
		MaxSteps:       *maxSteps,
		Validation:     lvl,
		DetectLivelock: *livelock,
	}
	opts := dshard.Options{
		Workers:          *workers,
		Listen:           *listen,
		Token:            *token,
		Policies:         spec.NewPolicy,
		StepTimeout:      *stepTimeout,
		MaxRetries:       *retries,
		HeartbeatTimeout: *hbTimeout,
		RejoinTimeout:    *rejoinTimeout,
		MaxRecoveries:    *maxRecover,
		CheckpointEvery:  *ckptEvery,
		CheckpointDir:    *ckptPath,
		CheckpointFormat: format,
		Resume:           resumeCK,
		MaxWallTime:      *maxWall,
	}
	if *workerBin != "" {
		opts.Spawn = execSpawner(*workerBin, *token, *quiet, strings.Fields(*workerArgs))
	}
	if !*quiet {
		opts.Logf = func(f string, args ...any) {
			fmt.Fprintf(os.Stderr, "shardcoord: "+f+"\n", args...)
		}
	}

	c, err := dshard.New(dspec, packets, opts)
	if err != nil {
		return err
	}
	defer c.Close()
	fmt.Fprintf(out, "listening on %s\n", c.Addr())
	if resumeCK != nil {
		fmt.Fprintf(out, "resumed:     %s at step %d, %d packets in flight\n",
			*ckptPath, resumeCK.Manifest.Time, resumeCK.Manifest.Live)
	}

	res, runErr := c.Run(ctx)
	if runErr != nil && !errors.Is(runErr, context.Canceled) {
		return runErr
	}

	fmt.Fprintf(out, "mesh:        %v (diameter %d)\n", m, m.Diameter())
	fmt.Fprintf(out, "policy:      %s\n", *policy)
	fmt.Fprintf(out, "shards:      %s across %d worker processes\n", grid, *workers)
	if *resume {
		fmt.Fprintf(out, "workload:    %s (resumed), k=%d\n", *wl, res.Total)
	} else {
		fmt.Fprintf(out, "workload:    %s, k=%d\n", *wl, res.Total)
	}
	fmt.Fprintf(out, "steps:       %d\n", res.Steps)
	fmt.Fprintf(out, "delivered:   %d/%d\n", res.Delivered, res.Total)
	fmt.Fprintf(out, "deflections: %d (of %d hops)\n", res.TotalDeflections, res.TotalHops)
	fmt.Fprintf(out, "max load:    %d packets in one node\n", res.MaxNodeLoad)
	fmt.Fprintf(out, "recoveries:  %d\n", c.Recoveries())
	fmt.Fprintf(out, "state hash:  %016x\n", c.StateHash())
	if res.Livelocked {
		fmt.Fprintln(out, "LIVELOCK detected: the configuration repeated")
	}
	if res.HitMaxSteps {
		fmt.Fprintln(out, "step budget exhausted before completion")
	}
	if res.DeadlineExceeded {
		fmt.Fprintln(out, "wall-clock budget exhausted before completion")
	}
	if runErr != nil { // context cancelled: a signal stopped the run
		if *ckptPath != "" {
			fmt.Fprintf(out, "interrupted at step %d; state saved to %s — rerun with -resume to continue\n", res.Steps, *ckptPath)
		} else {
			fmt.Fprintf(out, "interrupted at step %d (no -checkpoint set, progress not saved)\n", res.Steps)
		}
	}
	return runErr
}
