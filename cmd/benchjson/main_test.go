package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hotpotato/internal/benchfmt"
)

// writeReport marshals a minimal committed report to disk, in the order
// the map iterates — compareReports must not depend on report order.
func writeReport(t *testing.T, dir, name string, benches map[string]float64) string {
	t.Helper()
	rep := &benchfmt.Report{}
	for bn, ns := range benches {
		rep.Benchmarks = append(rep.Benchmarks, benchfmt.Benchmark{
			Name: bn, Procs: 1, Iterations: 100, Metrics: map[string]float64{"ns/op": ns},
		})
	}
	buf, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareReportsPassesWithinThreshold(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", map[string]float64{"A": 1000, "B": 2000})
	newPath := writeReport(t, dir, "new.json", map[string]float64{"A": 1080, "B": 1500})

	var sb strings.Builder
	if err := compareReports(&sb, oldPath, newPath, 0.10); err != nil {
		t.Fatalf("compare: %v\n%s", err, sb.String())
	}
	out := sb.String()
	for _, want := range []string{"A", "+8.0%", "B", "-25.0%", "no ns/op regressions"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "REGRESSED") {
		t.Errorf("no row should be marked REGRESSED:\n%s", out)
	}
}

func TestCompareReportsFailsOnRegression(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", map[string]float64{"A": 1000, "B": 2000})
	newPath := writeReport(t, dir, "new.json", map[string]float64{"A": 1300, "B": 2001})

	var sb strings.Builder
	err := compareReports(&sb, oldPath, newPath, 0.10)
	if err == nil {
		t.Fatalf("want regression error, got nil:\n%s", sb.String())
	}
	if !strings.Contains(err.Error(), "1 benchmark(s) regressed") {
		t.Errorf("error = %v, want exactly one regression", err)
	}
	out := sb.String()
	if !strings.Contains(out, "+30.0%  REGRESSED") {
		t.Errorf("A's row not marked REGRESSED:\n%s", out)
	}
	if strings.Count(out, "REGRESSED") != 1 {
		t.Errorf("B (+0.05%%) must stay within threshold:\n%s", out)
	}
}

// TestCompareReportsSetDrift: benchmarks present in only one report are
// listed as new/removed but never fail the exit status.
func TestCompareReportsSetDrift(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", map[string]float64{"A": 1000, "Gone": 500})
	newPath := writeReport(t, dir, "new.json", map[string]float64{"A": 1000, "Added": 700})

	var sb strings.Builder
	if err := compareReports(&sb, oldPath, newPath, 0.10); err != nil {
		t.Fatalf("set drift must not fail the comparison: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "Gone") || !strings.Contains(out, "removed") {
		t.Errorf("removed benchmark not reported:\n%s", out)
	}
	if !strings.Contains(out, "Added") || !strings.Contains(out, "new") {
		t.Errorf("new benchmark not reported:\n%s", out)
	}
}

// TestCompareReportsNewOnlyBenchmark locks the contract bench-smoke relies
// on when a PR introduces a benchmark: a name present only in the new record
// is reported as "new" and never counts as a regression, even at threshold
// zero (where any comparison at all would fail).
func TestCompareReportsNewOnlyBenchmark(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", map[string]float64{"BenchmarkStep": 1000})
	newPath := writeReport(t, dir, "new.json", map[string]float64{
		"BenchmarkStep":                1000,
		"BenchmarkDistributedFullLoad": 123456,
	})

	var sb strings.Builder
	if err := compareReports(&sb, oldPath, newPath, 0); err != nil {
		t.Fatalf("a new-only benchmark must not fail -compare: %v\n%s", err, sb.String())
	}
	out := sb.String()
	row := ""
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "BenchmarkDistributedFullLoad") {
			row = line
		}
	}
	if !strings.Contains(row, "123456") || !strings.Contains(row, "new") {
		t.Errorf("new benchmark row missing or malformed: %q\n%s", row, out)
	}
	if strings.Contains(out, "REGRESSED") {
		t.Errorf("nothing should be marked REGRESSED:\n%s", out)
	}
}

func TestCompareReportsBadInputs(t *testing.T) {
	dir := t.TempDir()
	good := writeReport(t, dir, "good.json", map[string]float64{"A": 1000})
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := compareReports(&sb, good, bad, 0.10); err == nil {
		t.Error("malformed new report: want error")
	}
	if err := compareReports(&sb, filepath.Join(dir, "missing.json"), good, 0.10); err == nil {
		t.Error("missing old report: want error")
	}
	// Flag-level arity check: -compare demands exactly two paths.
	if err := run([]string{"-compare", good}); err == nil {
		t.Error("one path: want error")
	}
	if err := run([]string{"-compare", good, good, good}); err == nil {
		t.Error("three paths: want error")
	}
	// And the happy path through run(), self-compare: identical, passes.
	if err := run([]string{"-compare", good, good}); err != nil {
		t.Errorf("self-compare: %v", err)
	}
}

// mkReport builds an in-memory report with explicit allocs/op metrics.
func mkReport(benches map[string]float64) *benchfmt.Report {
	rep := &benchfmt.Report{}
	for bn, allocs := range benches {
		m := map[string]float64{"ns/op": 100}
		if allocs >= 0 {
			m["allocs/op"] = allocs
		}
		rep.Benchmarks = append(rep.Benchmarks, benchfmt.Benchmark{
			Name: bn, Procs: 1, Iterations: 100, Metrics: m,
		})
	}
	return rep
}

func TestAssertZeroAllocs(t *testing.T) {
	// All matching benchmarks allocation-free: pass.
	rep := mkReport(map[string]float64{"EngineStepSteadyState-8": 0, "Other-8": 5})
	if err := assertZeroAllocs(rep, "EngineStep"); err != nil {
		t.Fatalf("clean report failed: %v", err)
	}
	// A matching benchmark allocates: fail.
	rep = mkReport(map[string]float64{"EngineStepSteadyState-8": 2})
	if err := assertZeroAllocs(rep, "EngineStep"); err == nil {
		t.Fatal("allocating benchmark passed the zero-alloc gate")
	}
	// Matching benchmark lacks the allocs/op metric (-benchmem missing): fail.
	rep = mkReport(map[string]float64{"EngineStepSteadyState-8": -1})
	if err := assertZeroAllocs(rep, "EngineStep"); err == nil {
		t.Fatal("missing allocs/op metric passed the zero-alloc gate")
	}
	// Nothing matches: fail loudly, a renamed benchmark must not void the gate.
	rep = mkReport(map[string]float64{"Other-8": 0})
	if err := assertZeroAllocs(rep, "EngineStep"); err == nil {
		t.Fatal("empty match set passed the zero-alloc gate")
	}
	// Bad pattern: fail.
	if err := assertZeroAllocs(rep, "("); err == nil {
		t.Fatal("invalid regexp accepted")
	}
}
