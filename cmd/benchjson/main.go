// Command benchjson converts `go test -bench` text output into the JSON
// benchmark record committed alongside each performance PR (for example
// BENCH_PR2.json). It reads the raw test output on stdin and writes a
// structured report, so the usual invocation is
//
//	go test -run '^$' -bench . -benchmem . | benchjson -o BENCH_PR2.json
//
// With -baseline it additionally compares ns/op against a previously
// committed report and prints one line per regressed benchmark, exiting
// nonzero when any exceeds the threshold — that is the CI smoke mode.
//
// With -compare it skips stdin entirely and diffs two committed reports:
//
//	benchjson -compare -threshold 0.10 BENCH_PR3.json BENCH_PR7.json
//
// printing a delta table for every benchmark in both files and exiting
// nonzero when any ns/op grew by more than the threshold fraction.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"text/tabwriter"

	"hotpotato/internal/benchfmt"
	"hotpotato/internal/version"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	var (
		out       = fs.String("o", "", "write JSON here instead of stdout")
		baseline  = fs.String("baseline", "", "committed report to compare ns/op against")
		tol       = fs.Float64("tolerance", 1.30, "fail when ns/op exceeds baseline by this factor")
		compare   = fs.Bool("compare", false, "diff two committed reports (old.json new.json) instead of parsing stdin")
		threshold = fs.Float64("threshold", 0.10, "with -compare, fail when ns/op grows by more than this fraction")
		zeroAlloc = fs.String("assert-zero-allocs", "", "regexp of benchmarks that must report 0 allocs/op (needs -benchmem output)")
		ver       = fs.Bool("version", false, "print the build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *ver {
		fmt.Println(version.String("benchjson"))
		return nil
	}
	if *compare {
		if fs.NArg() != 2 {
			return fmt.Errorf("-compare takes exactly two reports (old.json new.json), got %d argument(s)", fs.NArg())
		}
		return compareReports(os.Stdout, fs.Arg(0), fs.Arg(1), *threshold)
	}

	rep, err := benchfmt.Parse(os.Stdin)
	if err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark results on stdin")
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
	} else {
		os.Stdout.Write(buf)
	}

	if *zeroAlloc != "" {
		if err := assertZeroAllocs(rep, *zeroAlloc); err != nil {
			return err
		}
	}

	if *baseline == "" {
		return nil
	}
	base, err := loadReport(*baseline)
	if err != nil {
		return err
	}
	regressed := 0
	for _, b := range rep.Benchmarks {
		ref, ok := base.Lookup(b.Name)
		if !ok {
			continue // new benchmark, nothing to compare
		}
		now, was := b.Metrics["ns/op"], ref.Metrics["ns/op"]
		if was <= 0 || now <= was*(*tol) {
			continue
		}
		regressed++
		fmt.Fprintf(os.Stderr, "benchjson: %s regressed: %.0f ns/op vs baseline %.0f (%.2fx, tolerance %.2fx)\n",
			b.Name, now, was, now/was, *tol)
	}
	if regressed > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond %.2fx", regressed, *tol)
	}
	fmt.Fprintf(os.Stderr, "benchjson: no regressions beyond %.2fx against %s\n", *tol, *baseline)
	return nil
}

// assertZeroAllocs enforces an allocation-free contract: every benchmark
// whose name matches the pattern must report exactly 0 allocs/op. A pattern
// matching no benchmark is an error too — a renamed benchmark must not
// silently void the gate.
func assertZeroAllocs(rep *benchfmt.Report, pattern string) error {
	re, err := regexp.Compile(pattern)
	if err != nil {
		return fmt.Errorf("-assert-zero-allocs: %w", err)
	}
	matched, failed := 0, 0
	for _, b := range rep.Benchmarks {
		if !re.MatchString(b.Name) {
			continue
		}
		matched++
		allocs, ok := b.Metrics["allocs/op"]
		if !ok {
			failed++
			fmt.Fprintf(os.Stderr, "benchjson: %s has no allocs/op metric (run with -benchmem)\n", b.Name)
			continue
		}
		if allocs != 0 {
			failed++
			fmt.Fprintf(os.Stderr, "benchjson: %s allocates: %.0f allocs/op, want 0\n", b.Name, allocs)
		}
	}
	if matched == 0 {
		return fmt.Errorf("-assert-zero-allocs: no benchmark matches %q", pattern)
	}
	if failed > 0 {
		return fmt.Errorf("%d benchmark(s) violate the zero-allocation contract", failed)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) allocation-free (pattern %q)\n", matched, pattern)
	return nil
}

// compareReports diffs two committed reports benchmark by benchmark,
// writing one aligned table row per name. Benchmarks present in only one
// report are listed but never fail the comparison (benchmark sets drift
// across PRs); a shared benchmark whose ns/op grew by more than the
// threshold fraction is a regression and makes the exit status nonzero.
func compareReports(w io.Writer, oldPath, newPath string, threshold float64) error {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		return err
	}

	names := make([]string, 0, len(newRep.Benchmarks))
	seen := make(map[string]bool)
	for _, b := range newRep.Benchmarks {
		if !seen[b.Name] {
			seen[b.Name] = true
			names = append(names, b.Name)
		}
	}
	for _, b := range oldRep.Benchmarks {
		if !seen[b.Name] {
			seen[b.Name] = true
			names = append(names, b.Name)
		}
	}
	sort.Strings(names)

	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintf(tw, "benchmark\told ns/op\tnew ns/op\tdelta\t\n")
	regressed := 0
	for _, name := range names {
		ob, inOld := oldRep.Lookup(name)
		nb, inNew := newRep.Lookup(name)
		switch {
		case !inOld:
			fmt.Fprintf(tw, "%s\t-\t%.0f\tnew\t\n", name, nb.Metrics["ns/op"])
		case !inNew:
			fmt.Fprintf(tw, "%s\t%.0f\t-\tremoved\t\n", name, ob.Metrics["ns/op"])
		default:
			was, now := ob.Metrics["ns/op"], nb.Metrics["ns/op"]
			if was <= 0 {
				fmt.Fprintf(tw, "%s\t%.0f\t%.0f\tno baseline\t\n", name, was, now)
				continue
			}
			delta := now/was - 1
			mark := ""
			if delta > threshold {
				regressed++
				mark = "  REGRESSED"
			}
			fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%+.1f%%%s\t\n", name, was, now, delta*100, mark)
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if regressed > 0 {
		return fmt.Errorf("%d benchmark(s) regressed by more than %.0f%% (%s -> %s)",
			regressed, threshold*100, oldPath, newPath)
	}
	fmt.Fprintf(w, "no ns/op regressions beyond %.0f%% (%s -> %s)\n", threshold*100, oldPath, newPath)
	return nil
}

func loadReport(path string) (*benchfmt.Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &benchfmt.Report{}
	if err := json.Unmarshal(buf, rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}
