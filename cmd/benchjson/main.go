// Command benchjson converts `go test -bench` text output into the JSON
// benchmark record committed alongside each performance PR (for example
// BENCH_PR2.json). It reads the raw test output on stdin and writes a
// structured report, so the usual invocation is
//
//	go test -run '^$' -bench . -benchmem . | benchjson -o BENCH_PR2.json
//
// With -baseline it additionally compares ns/op against a previously
// committed report and prints one line per regressed benchmark, exiting
// nonzero when any exceeds the threshold — that is the CI smoke mode.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"hotpotato/internal/benchfmt"
	"hotpotato/internal/version"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	var (
		out      = fs.String("o", "", "write JSON here instead of stdout")
		baseline = fs.String("baseline", "", "committed report to compare ns/op against")
		tol      = fs.Float64("tolerance", 1.30, "fail when ns/op exceeds baseline by this factor")
		ver      = fs.Bool("version", false, "print the build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *ver {
		fmt.Println(version.String("benchjson"))
		return nil
	}

	rep, err := benchfmt.Parse(os.Stdin)
	if err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark results on stdin")
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
	} else {
		os.Stdout.Write(buf)
	}

	if *baseline == "" {
		return nil
	}
	base, err := loadReport(*baseline)
	if err != nil {
		return err
	}
	regressed := 0
	for _, b := range rep.Benchmarks {
		ref, ok := base.Lookup(b.Name)
		if !ok {
			continue // new benchmark, nothing to compare
		}
		now, was := b.Metrics["ns/op"], ref.Metrics["ns/op"]
		if was <= 0 || now <= was*(*tol) {
			continue
		}
		regressed++
		fmt.Fprintf(os.Stderr, "benchjson: %s regressed: %.0f ns/op vs baseline %.0f (%.2fx, tolerance %.2fx)\n",
			b.Name, now, was, now/was, *tol)
	}
	if regressed > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond %.2fx", regressed, *tol)
	}
	fmt.Fprintf(os.Stderr, "benchjson: no regressions beyond %.2fx against %s\n", *tol, *baseline)
	return nil
}

func loadReport(path string) (*benchfmt.Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &benchfmt.Report{}
	if err := json.Unmarshal(buf, rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}
