// Command figures renders ASCII versions of the paper's six definitional
// figures. Figures 3 and 4 are rendered from a live snapshot of a
// congested simulation so the bad-node areas and surface arcs are real.
//
// Usage:
//
//	figures           # all figures
//	figures -fig 4    # one figure
//	figures -n 12     # mesh side for figures 1-4
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"hotpotato/internal/core"
	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
	"hotpotato/internal/version"
	"hotpotato/internal/viz"
	"hotpotato/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	var (
		fig  = fs.Int("fig", 0, "figure number 1-6 (0 = all)")
		n    = fs.Int("n", 8, "mesh side for figures 1-4")
		seed = fs.Int64("seed", 3, "seed for the live snapshot of figures 3-4")
		ver  = fs.Bool("version", false, "print the build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *ver {
		fmt.Println(version.String("figures"))
		return nil
	}
	want := func(i int) bool { return *fig == 0 || *fig == i }

	if want(1) {
		out, err := viz.Figure1(*n)
		if err != nil {
			return err
		}
		fmt.Println(out)
	}
	if want(2) {
		out, err := viz.Figure2(*n)
		if err != nil {
			return err
		}
		fmt.Println(out)
	}
	if want(3) || want(4) {
		m, loads, t, err := congestedSnapshot(*n, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("(live snapshot of a corner-rush run at step %d)\n\n", t)
		if want(3) {
			out, err := viz.Figure3(m, loads)
			if err != nil {
				return err
			}
			fmt.Println(out)
		}
		if want(4) {
			out, err := viz.Figure4(m, loads)
			if err != nil {
				return err
			}
			fmt.Println(out)
		}
	}
	if want(5) {
		fmt.Println(viz.Figure5())
	}
	if want(6) {
		fmt.Println(viz.Figure6())
	}
	return nil
}

// congestedSnapshot runs a corner-rush instance until the first step with a
// maximal number of bad nodes (within a small horizon) and returns the
// per-node loads at that point.
func congestedSnapshot(n int, seed int64) (*mesh.Mesh, []int, int, error) {
	m, err := mesh.New(2, n)
	if err != nil {
		return nil, nil, 0, err
	}
	rng := rand.New(rand.NewSource(seed))
	packets, err := workload.CornerRush(m, n*n/3, rng)
	if err != nil {
		return nil, nil, 0, err
	}
	e, err := sim.New(m, core.NewRestrictedPriority(), packets, sim.Options{
		Seed:       seed,
		Validation: sim.ValidateRestricted,
	})
	if err != nil {
		return nil, nil, 0, err
	}
	best := make([]int, m.Size())
	bestBad, bestT := -1, 0
	horizon := 4 * n
	for t := 0; t < horizon && !e.Done(); t++ {
		loads := make([]int, m.Size())
		bad := 0
		for id := mesh.NodeID(0); int(id) < m.Size(); id++ {
			l := len(e.PacketsAt(id))
			loads[id] = l
			if l > m.Dim() {
				bad++
			}
		}
		if bad > bestBad {
			bestBad, bestT, best = bad, t, loads
		}
		if err := e.Step(); err != nil {
			return nil, nil, 0, err
		}
	}
	return m, best, bestT, nil
}
