package main

import (
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var sb strings.Builder
		tmp := make([]byte, 4096)
		for {
			n, rerr := r.Read(tmp)
			sb.Write(tmp[:n])
			if rerr != nil {
				break
			}
		}
		done <- sb.String()
	}()
	runErr := f()
	w.Close()
	os.Stdout = old
	return <-done, runErr
}

func TestAllFigures(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-n", "8"}) })
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 6; i++ {
		if !strings.Contains(out, "Figure "+string(rune('0'+i))) {
			t.Errorf("figure %d missing", i)
		}
	}
	if !strings.Contains(out, "live snapshot") {
		t.Error("figures 3-4 snapshot header missing")
	}
}

func TestSingleFigure(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-fig", "2", "-n", "6"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Figure 2") || strings.Contains(out, "Figure 1") {
		t.Errorf("unexpected figures:\n%s", out)
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	run1, err := capture(t, func() error { return run([]string{"-fig", "4", "-n", "10", "-seed", "5"}) })
	if err != nil {
		t.Fatal(err)
	}
	run2, err := capture(t, func() error { return run([]string{"-fig", "4", "-n", "10", "-seed", "5"}) })
	if err != nil {
		t.Fatal(err)
	}
	if run1 != run2 {
		t.Error("snapshot figures not deterministic under a fixed seed")
	}
}

func TestBadMeshSize(t *testing.T) {
	if _, err := capture(t, func() error { return run([]string{"-fig", "1", "-n", "1"}) }); err == nil {
		t.Error("n=1 accepted")
	}
}
