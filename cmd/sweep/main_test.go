package main

import (
	"context"
	"errors"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	runner "hotpotato/internal/run"
)

func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var sb strings.Builder
		tmp := make([]byte, 4096)
		for {
			n, rerr := r.Read(tmp)
			sb.Write(tmp[:n])
			if rerr != nil {
				break
			}
		}
		done <- sb.String()
	}()
	runErr := f()
	w.Close()
	os.Stdout = old
	return <-done, runErr
}

func TestSweepBasicGrid(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-n", "6,8", "-k", "16,32", "-policy", "restricted,random",
			"-workload", "uniform", "-trials", "2"})
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2 sizes x 2 ks x 1 workload x 2 policies = 8 rows.
	if got := strings.Count(out, "mesh(d=2"); got != 8 {
		t.Errorf("expected 8 grid rows, found %d:\n%s", got, out)
	}
}

func TestSweepTorusTracked(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-torus", "-n", "6", "-k", "16", "-trials", "2", "-track", "-strict"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "torus(d=2, n=6)") {
		t.Errorf("torus row missing:\n%s", out)
	}
}

func TestSweepParallelMatchesSerial(t *testing.T) {
	args := []string{"-n", "8", "-k", "40", "-policy", "restricted", "-trials", "4"}
	serial, err := capture(t, func() error { return run(args) })
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := capture(t, func() error { return run(append(args, "-parallel", "3")) })
	if err != nil {
		t.Fatal(err)
	}
	if serial != parallel {
		t.Errorf("parallel sweep output differs from serial:\n%s\nvs\n%s", serial, parallel)
	}
}

func TestSweepCSV(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-n", "6", "-k", "10", "-trials", "1", "-csv"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "network,n,k,") {
		t.Errorf("CSV header missing:\n%s", out)
	}
}

func TestSweepErrors(t *testing.T) {
	cases := [][]string{
		{"-policy", "bogus"},
		{"-workload", "bogus"},
		{"-n", "abc"},
		{"-k", "1,x"},
		{"-d", "0"},
		{"-torus", "-n", "2"},
	}
	for _, args := range cases {
		if _, err := capture(t, func() error { return run(args) }); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestSweepEngineWorkers(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-n", "8", "-k", "40", "-trials", "2", "-workers", "3"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "mesh(d=2, n=8)") {
		t.Errorf("workers sweep output wrong:\n%s", out)
	}
}

// TestSweepSIGTERMJournalResume is the end-to-end crash-safety check: a
// journaled sweep receives SIGTERM mid-grid, must exit with the journal
// flushed (every finished cell on disk, in-flight cells completed), and a
// second invocation with -resume must produce the full table while
// rerunning only the missing cells.
func TestSweepSIGTERMJournalResume(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "sweep.jsonl")
	grid := []string{"-n", "32", "-k", "2048,3000",
		"-policy", "restricted,random,dest-order,fewest-good",
		"-workload", "uniform,hotspot", "-trials", "20",
		"-journal", journal, "-quiet-cells"}
	const cellCount = 2 * 4 * 2

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()

	// Fire SIGTERM at ourselves once the journal shows real progress, so
	// the interrupt always lands mid-grid regardless of machine speed.
	watcherDone := make(chan struct{})
	runDone := make(chan struct{})
	go func() {
		defer close(watcherDone)
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			select {
			case <-runDone:
				return
			case <-time.After(10 * time.Millisecond):
			}
			if countLines(journal) >= 3 { // header + two finished cells
				break
			}
		}
		syscall.Kill(os.Getpid(), syscall.SIGTERM)
	}()

	_, err := capture(t, func() error { return runCtx(ctx, grid) })
	close(runDone)
	<-watcherDone
	if !errors.Is(err, runner.ErrInterrupted) {
		t.Fatalf("interrupted sweep err = %v, want ErrInterrupted", err)
	}
	entries := countLines(journal) - 1
	if entries < 1 || entries >= cellCount {
		t.Fatalf("journal has %d entries after SIGTERM, want partial progress", entries)
	}

	out, err := capture(t, func() error {
		return runCtx(context.Background(), append(grid, "-resume"))
	})
	if err != nil {
		t.Fatal(err)
	}
	if rows := strings.Count(out, "mesh(d=2"); rows != cellCount {
		t.Errorf("resumed sweep printed %d rows, want %d:\n%s", rows, cellCount, out)
	}
	if got := countLines(journal) - 1; got < cellCount {
		t.Errorf("journal has %d entries after resume, want >= %d", got, cellCount)
	}
}

// TestSweepResumeRejectsDifferentGrid: -resume against the journal of a
// different sweep must fail instead of mixing results.
func TestSweepResumeRejectsDifferentGrid(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "sweep.jsonl")
	if _, err := capture(t, func() error {
		return run([]string{"-n", "6", "-k", "10", "-trials", "1", "-journal", journal, "-quiet-cells"})
	}); err != nil {
		t.Fatal(err)
	}
	_, err := capture(t, func() error {
		return run([]string{"-n", "8", "-k", "10", "-trials", "1", "-journal", journal, "-resume", "-quiet-cells"})
	})
	if !errors.Is(err, runner.ErrBadJournal) {
		t.Errorf("grid mismatch err = %v, want ErrBadJournal", err)
	}
}

// countLines returns the number of newline-terminated lines in path, or 0
// if the file does not exist yet.
func countLines(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	return strings.Count(string(data), "\n")
}

// TestSweepParameterizedWorkloads: the workload list accepts the
// name:key=val,... syntax, with commas inside parameter lists kept intact.
func TestSweepParameterizedWorkloads(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-n", "6", "-k", "8", "-trials", "2",
			"-workload", "hotspot:frac=0.9,local:radius=2"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out, "mesh(d=2"); got != 2 {
		t.Errorf("expected 2 rows (one per parameterized workload), found %d:\n%s", got, out)
	}
}

// TestSweepArrivals: cells can run under continuous traffic.
func TestSweepArrivals(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-n", "6", "-trials", "2", "-workload", "none",
			"-arrivals", "poisson:rate=0.05,until=30", "-max-steps", "4000"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "mesh(d=2") {
		t.Errorf("arrivals sweep produced no rows:\n%s", out)
	}
}

// TestSweepArrivalErrors: bad arrival specs and conflicting flags fail.
func TestSweepArrivalErrors(t *testing.T) {
	cases := [][]string{
		{"-n", "6", "-arrivals", "bogus:rate=1"},
		{"-n", "6", "-arrivals", "poisson:rate=0.05", "-track"},
		{"-n", "6", "-k", "8", "-workload", "full-load"},
		{"-n", "6", "-workload", "hotspot:frac=2"},
	}
	for _, args := range cases {
		if _, err := capture(t, func() error { return run(args) }); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
