package main

import (
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var sb strings.Builder
		tmp := make([]byte, 4096)
		for {
			n, rerr := r.Read(tmp)
			sb.Write(tmp[:n])
			if rerr != nil {
				break
			}
		}
		done <- sb.String()
	}()
	runErr := f()
	w.Close()
	os.Stdout = old
	return <-done, runErr
}

func TestSweepBasicGrid(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-n", "6,8", "-k", "16,32", "-policy", "restricted,random",
			"-workload", "uniform", "-trials", "2"})
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2 sizes x 2 ks x 1 workload x 2 policies = 8 rows.
	if got := strings.Count(out, "mesh(d=2"); got != 8 {
		t.Errorf("expected 8 grid rows, found %d:\n%s", got, out)
	}
}

func TestSweepTorusTracked(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-torus", "-n", "6", "-k", "16", "-trials", "2", "-track", "-strict"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "torus(d=2, n=6)") {
		t.Errorf("torus row missing:\n%s", out)
	}
}

func TestSweepParallelMatchesSerial(t *testing.T) {
	args := []string{"-n", "8", "-k", "40", "-policy", "restricted", "-trials", "4"}
	serial, err := capture(t, func() error { return run(args) })
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := capture(t, func() error { return run(append(args, "-parallel", "3")) })
	if err != nil {
		t.Fatal(err)
	}
	if serial != parallel {
		t.Errorf("parallel sweep output differs from serial:\n%s\nvs\n%s", serial, parallel)
	}
}

func TestSweepCSV(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-n", "6", "-k", "10", "-trials", "1", "-csv"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "network,n,k,") {
		t.Errorf("CSV header missing:\n%s", out)
	}
}

func TestSweepErrors(t *testing.T) {
	cases := [][]string{
		{"-policy", "bogus"},
		{"-workload", "bogus"},
		{"-n", "abc"},
		{"-k", "1,x"},
		{"-d", "0"},
		{"-torus", "-n", "2"},
	}
	for _, args := range cases {
		if _, err := capture(t, func() error { return run(args) }); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestSweepEngineWorkers(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-n", "8", "-k", "40", "-trials", "2", "-workers", "3"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "mesh(d=2, n=8)") {
		t.Errorf("workers sweep output wrong:\n%s", out)
	}
}
