// Command sweep runs a full parameter grid — policies x workloads x mesh
// sizes x packet counts — and prints one row per cell, with the relevant
// paper bound alongside. It is the free-form companion to cmd/experiments:
// where experiments regenerates the fixed tables of EXPERIMENTS.md, sweep
// lets you explore any slice of the parameter space.
//
// Grids run under the internal/run supervisor: each cell is retried on
// failure, a panicking or failing cell is recorded and skipped rather than
// aborting the grid, and with -journal every finished cell is persisted as
// one JSONL line. A sweep interrupted by SIGINT/SIGTERM (or a crash) can
// then be continued with -resume, rerunning only the missing cells.
//
// Example:
//
//	sweep -d 2 -n 8,16 -k 64,256 -policy restricted,random -workload uniform,permutation -trials 5
//	sweep -n 32 -k 1024 -trials 20 -journal sweep.jsonl   # interrupted...
//	sweep -n 32 -k 1024 -trials 20 -journal sweep.jsonl -resume
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"hotpotato/internal/analysis"
	"hotpotato/internal/fault"
	"hotpotato/internal/mesh"
	"hotpotato/internal/profiling"
	runner "hotpotato/internal/run"
	"hotpotato/internal/shard"
	"hotpotato/internal/sim"
	"hotpotato/internal/spec"
	"hotpotato/internal/stats"
	"hotpotato/internal/version"
)

func main() {
	// The first SIGINT/SIGTERM cancels the context: the supervisor stops
	// dispatching, finishes in-flight cells, and flushes the journal. A
	// second signal restores the default disposition and kills immediately
	// — safe, because every completed cell is already on disk.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := runCtx(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

// run keeps the historical signature for tests and non-interruptible use.
func run(args []string) error { return runCtx(context.Background(), args) }

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad integer list %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad float list %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// workloadBySpec adapts the shared spec registry to the trial runner's
// generator shape, binding the mesh and packet count once per cell. kSet
// reports whether the user set -k explicitly, which fixed-size workloads
// reject.
func workloadBySpec(ws spec.WorkloadSpec, m *mesh.Mesh, k int, kSet bool) (func(rng *rand.Rand) ([]*sim.Packet, error), error) {
	if err := ws.Validate(); err != nil {
		return nil, err
	}
	if kSet && ws.FixedSize() {
		return nil, fmt.Errorf("workload %q derives its packet count from the mesh; drop -k", ws.Name)
	}
	return func(rng *rand.Rand) ([]*sim.Packet, error) { return spec.BuildWorkload(ws, m, k, rng) }, nil
}

// cellRow is the JSON payload one grid cell produces: everything needed to
// print its table row. It round-trips through the journal, so resumed cells
// render identically to freshly computed ones.
type cellRow struct {
	Network    string  `json:"network"`
	N          int     `json:"n"`
	K          int     `json:"k"`
	Workload   string  `json:"workload"`
	Policy     string  `json:"policy"`
	FaultRate  float64 `json:"fault_rate"`
	Delivered  int     `json:"delivered"`
	Dropped    int     `json:"dropped"`
	StepsMean  float64 `json:"steps_mean"`
	StepsStd   float64 `json:"steps_std"`
	StepsMax   int     `json:"steps_max"`
	DeflMean   float64 `json:"defl_mean"`
	Bound      float64 `json:"bound"`
	Violations string  `json:"violations"`
}

func runCtx(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var (
		dim           = fs.Int("d", 2, "mesh dimension")
		nsFlag        = fs.String("n", "8,16", "comma-separated mesh side lengths")
		ksFlag        = fs.String("k", "64", "comma-separated packet counts (for workloads that take one)")
		polFlag       = fs.String("policy", "restricted", "comma-separated policies")
		wlFlag        = fs.String("workload", "uniform", "comma-separated workload specs, each name[:key=val,...]")
		arrFlag       = fs.String("arrivals", "", "arrival traffic added to every cell: proc[:key=val,...][;proc2:...] (see hotpotato -list-workloads)")
		maxSteps      = fs.Int("max-steps", 0, "per-trial step budget (0 = engine default; bound this for open-ended arrivals)")
		trials        = fs.Int("trials", 3, "trials per cell")
		seed          = fs.Int64("seed", 1, "base seed")
		torus         = fs.Bool("torus", false, "use a torus instead of a mesh")
		track         = fs.Bool("track", false, "attach the potential tracker and report violations")
		workers       = fs.Int("parallel", 1, "worker goroutines per cell")
		engineWorkers = fs.Int("workers", 0, "in-engine routing goroutines per run (0 = serial)")
		shardsFlag    = fs.String("shards", "", "run each trial on the sharded engine with this PxQ grid (2-D only, bit-identical results)")
		csvOut        = fs.Bool("csv", false, "emit CSV")
		validate      = fs.Bool("strict", false, "validate Definition 18 (restricted preference) too")
		frFlag        = fs.String("fault-rate", "0", "comma-separated per-link per-step failure probabilities (0 = intact mesh)")
		faultRepair   = fs.Float64("fault-repair", 0.05, "per-link per-step repair probability for downed links")
		faultMaxDown  = fs.Int("fault-max-down", 0, "cap on concurrently failed links (0 = unlimited)")
		journalPath   = fs.String("journal", "", "record finished cells to this JSONL journal")
		resume        = fs.Bool("resume", false, "with -journal, skip cells the journal already records")
		cellsParallel = fs.Int("cells-parallel", 1, "grid cells run concurrently")
		retries       = fs.Int("retries", 1, "retries per failing cell (attempts = retries + 1)")
		cellTimeout   = fs.Duration("cell-timeout", 0, "per-attempt wall-clock budget per cell (0 = unlimited)")
		quietCells    = fs.Bool("quiet-cells", false, "suppress per-cell progress lines on stderr")
		cpuProfile    = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile    = fs.String("memprofile", "", "write a heap profile to this file on exit")
		showVer       = fs.Bool("version", false, "print the build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVer {
		fmt.Println(version.String("sweep"))
		return nil
	}
	if *resume && *journalPath == "" {
		return errors.New("-resume needs -journal")
	}
	if *cpuProfile != "" || *memProfile != "" {
		stopProf, err := profiling.Start(*cpuProfile, *memProfile)
		if err != nil {
			return err
		}
		defer func() {
			if err := stopProf(); err != nil {
				fmt.Fprintln(os.Stderr, "sweep:", err)
			}
		}()
	}
	ns, err := parseInts(*nsFlag)
	if err != nil {
		return err
	}
	ks, err := parseInts(*ksFlag)
	if err != nil {
		return err
	}
	kSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "k" {
			kSet = true
		}
	})
	arrSpec, err := spec.ParseArrivalSpec(*arrFlag)
	if err != nil {
		return err
	}
	if arrSpec != nil {
		if err := arrSpec.Validate(); err != nil {
			return err
		}
		if *track {
			return errors.New("-arrivals and -track are mutually exclusive (the tracker reconstructs runs from the initial batch)")
		}
	}
	faultRates, err := parseFloats(*frFlag)
	if err != nil {
		return err
	}
	if *shardsFlag != "" {
		// Fail the whole sweep up front rather than erroring every cell: the
		// sharded engine is 2-D only and does not compose with the tracker,
		// in-engine workers, or fault injection (see analysis.TrialSpec).
		if _, err := shard.ParseGrid(*shardsFlag); err != nil {
			return err
		}
		switch {
		case *dim != 2:
			return errors.New("-shards needs -d 2 (the sharded engine decomposes 2-D meshes)")
		case *track:
			return errors.New("-shards and -track are mutually exclusive")
		case *engineWorkers != 0:
			return errors.New("-shards and -workers are alternative parallelization schemes; pick one")
		}
		for _, frate := range faultRates {
			if frate != 0 {
				return errors.New("-shards does not support fault injection (-fault-rate)")
			}
		}
	}

	lvl := sim.ValidateGreedy
	if *validate {
		lvl = sim.ValidateRestricted
	}

	// Build the grid eagerly so bad flags fail before anything runs, and so
	// cells carry everything they need without touching shared state.
	var cells []runner.Cell
	for _, n := range ns {
		var m *mesh.Mesh
		if *torus {
			m, err = mesh.NewTorus(*dim, n)
		} else {
			m, err = mesh.New(*dim, n)
		}
		if err != nil {
			return err
		}
		for _, k := range ks {
			for _, wlName := range spec.SplitSpecList(*wlFlag) {
				ws, err := spec.ParseWorkloadSpec(wlName)
				if err != nil {
					return err
				}
				mkWl, err := workloadBySpec(ws, m, k, kSet)
				if err != nil {
					return err
				}
				// SplitSpecList keeps parameterized policy specs
				// ("weighted:age=1,dist=-0.5") in one piece: a bare key=val
				// segment belongs to the spec before it.
				for _, polName := range spec.SplitSpecList(*polFlag) {
					mkPol, err := spec.PolicyFactory(polName)
					if err != nil {
						return err
					}
					for _, frate := range faultRates {
						ts := analysis.TrialSpec{
							Mesh:        m,
							NewPolicy:   mkPol,
							NewWorkload: mkWl,
							Track:       *track,
							Validation:  lvl,
							MaxSteps:    *maxSteps,
							Workers:     *engineWorkers,
							Shards:      *shardsFlag,
						}
						if arrSpec != nil {
							m := m
							ts.NewInjector = func() (sim.Injector, error) {
								return spec.BuildArrivals(arrSpec, m)
							}
						}
						if frate != 0 { // negative rates reach the validator below
							// Validate the rates here; NewFaults runs inside
							// the trial, too late for a clean flag error.
							if _, err := fault.NewLinkFlaps(frate, *faultRepair); err != nil {
								return err
							}
							frate := frate
							ts.NewFaults = func() sim.FaultModel {
								f, _ := fault.NewLinkFlaps(frate, *faultRepair)
								f.MaxDown = *faultMaxDown
								return f
							}
						}
						m, n, k, wlName, polName, frate := m, n, k, wlName, polName, frate
						cells = append(cells, runner.Cell{
							Key: fmt.Sprintf("n=%d/k=%d/%s/%s/fr=%g", n, k, wlName, polName, frate),
							Work: func(context.Context) (json.RawMessage, error) {
								results, err := analysis.RunTrialsParallel(ts, *trials, *seed, *workers)
								if err != nil {
									return nil, err
								}
								sm := stats.SummarizeInts(analysis.Steps(results))
								var deflSum float64
								kAct, delivered, dropped := 0, 0, 0
								for _, r := range results {
									deflSum += float64(r.Result.TotalDeflections)
									kAct = r.Result.Total
									delivered += r.Result.Delivered
									dropped += r.Result.Dropped + r.Result.Absorbed
								}
								var bound float64
								if *dim == 2 && !*torus {
									bound = analysis.Theorem20Bound(n, kAct)
								} else {
									bound = analysis.Section5Bound(*dim, n, kAct)
								}
								viol := "-"
								if *track {
									viol = analysis.TotalViolations(results).String()
								}
								return json.Marshal(cellRow{
									Network: m.String(), N: n, K: kAct, Workload: wlName,
									Policy: polName, FaultRate: frate, Delivered: delivered,
									Dropped: dropped, StepsMean: sm.Mean, StepsStd: sm.Std,
									StepsMax: int(sm.Max), DeflMean: deflSum / float64(len(results)),
									Bound: bound, Violations: viol,
								})
							},
						})
					}
				}
			}
		}
	}

	// The label ties a journal to one exact grid: every flag that shapes
	// cell keys or results is part of it, so -resume against the journal of
	// a different sweep fails loudly instead of mixing data.
	label := fmt.Sprintf("sweep d=%d n=%s k=%s policy=%s workload=%s arrivals=%s max-steps=%d fault-rate=%s fault-repair=%g fault-max-down=%d trials=%d seed=%d torus=%t track=%t strict=%t workers=%d shards=%s",
		*dim, *nsFlag, *ksFlag, *polFlag, *wlFlag, *arrFlag, *maxSteps, *frFlag, *faultRepair, *faultMaxDown,
		*trials, *seed, *torus, *track, *validate, *engineWorkers, *shardsFlag)

	opts := runner.Options{
		Workers:     *cellsParallel,
		CellTimeout: *cellTimeout,
		MaxAttempts: *retries + 1,
		Seed:        *seed,
	}
	if !*quietCells {
		opts.Log = os.Stderr
	}
	if *journalPath != "" {
		var j *runner.Journal
		if *resume {
			j, err = runner.ResumeJournal(*journalPath, label)
		} else {
			j, err = runner.OpenJournal(*journalPath, label)
		}
		if err != nil {
			return err
		}
		defer j.Close()
		opts.Journal = j
	}

	report, execErr := runner.Execute(ctx, cells, opts)
	if report == nil {
		return execErr
	}

	tb := stats.NewTable(
		fmt.Sprintf("sweep: d=%d, %d trials per cell", *dim, *trials),
		"network", "n", "k", "workload", "policy", "fault_rate", "delivered", "dropped",
		"steps_mean", "steps_std", "steps_max", "defl_mean", "bound", "max/bound", "violations")
	for _, c := range report.Cells {
		if c == nil || c.Status != runner.StatusOK {
			continue
		}
		var row cellRow
		if err := json.Unmarshal(c.Result, &row); err != nil {
			return fmt.Errorf("cell %s: corrupt payload: %w", c.Key, err)
		}
		tb.AddRow(row.Network, row.N, row.K, row.Workload, row.Policy, row.FaultRate,
			row.Delivered, row.Dropped, row.StepsMean, row.StepsStd, row.StepsMax,
			row.DeflMean, row.Bound, float64(row.StepsMax)/row.Bound, row.Violations)
	}
	if *csvOut {
		err = tb.WriteCSV(os.Stdout)
	} else {
		err = tb.WriteText(os.Stdout)
	}
	if err != nil {
		return err
	}

	for _, f := range report.Failures() {
		fmt.Fprintf(os.Stderr, "sweep: cell %s FAILED after %d attempt(s): %s\n", f.Key, f.Attempts, f.Err)
	}
	if execErr != nil {
		if errors.Is(execErr, runner.ErrInterrupted) && *journalPath != "" {
			fmt.Fprintf(os.Stderr, "sweep: interrupted with %d/%d cells done; journal flushed — rerun with -resume to finish\n",
				report.OK, len(cells))
		}
		return execErr
	}
	if n := report.Failed; n > 0 {
		return fmt.Errorf("%d of %d cells failed", n, len(cells))
	}
	if report.Resumed > 0 {
		fmt.Fprintf(os.Stderr, "sweep: %d of %d cells replayed from %s\n",
			report.Resumed, len(cells), *journalPath)
	}
	return nil
}
