// Command hotpotatod is the long-running simulation service: a job queue,
// worker pool and HTTP API over the same engine the CLIs drive.
//
// Usage:
//
//	hotpotatod -addr :8080 -workers 4 -queue 32 -checkpoint-dir /var/lib/hotpotato
//
// Endpoints:
//
//	POST /v1/jobs             submit a job spec (JSON); 202 + id, 429 when full
//	GET  /v1/jobs             list jobs
//	GET  /v1/jobs/{id}        job status
//	GET  /v1/jobs/{id}/stream NDJSON progress + final summary
//	GET  /metrics             Prometheus text format
//	GET  /healthz, /readyz    liveness / readiness
//
// SIGINT/SIGTERM drains gracefully: admission stops, in-flight jobs get
// -drain-grace to finish, stragglers checkpoint into -checkpoint-dir, and
// the process exits 0 with no accepted job lost.
//
// With -wal the job store is durable: every lifecycle transition is fsynced
// into the write-ahead log before the client sees it, so even kill -9 loses
// no accepted job — the next start replays the log, re-enqueues unfinished
// jobs, and (with -checkpoint-dir and -checkpoint-every) resumes them from
// their last periodic checkpoint. -tenant-rate/-tenant-burst add per-tenant
// token-bucket admission (429 + Retry-After), and -quarantine-after stops
// poison jobs that repeatedly panic or take the daemon down.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hotpotato/internal/server"
	"hotpotato/internal/version"
)

// notifyListen, when non-nil, receives the bound listener address. Tests
// hook it to discover the port behind ":0".
var notifyListen func(net.Addr)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hotpotatod:", err)
		os.Exit(1)
	}
}

// run parses flags and serves until ctx is cancelled (the signal handler),
// then drains and returns.
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hotpotatod", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", ":8080", "listen address")
		queue    = fs.Int("queue", 16, "admission queue depth (full queue answers 429)")
		workers  = fs.Int("workers", 2, "jobs executed concurrently")
		jobTO    = fs.Duration("job-timeout", 0, "per-job wall-time budget (0 = unlimited); over-budget jobs checkpoint")
		attempts = fs.Int("max-attempts", 1, "attempts per job before it is reported failed")
		ckptDir  = fs.String("checkpoint-dir", "", "directory for drained/timed-out job checkpoints (empty = no checkpointing)")
		ckptEach = fs.Int("checkpoint-every", 0, "also checkpoint running jobs every N engine steps (0 = only on stop; needs -checkpoint-dir)")
		wal      = fs.String("wal", "", "write-ahead log for the durable job store (empty = jobs do not survive restarts)")
		tenRate  = fs.Float64("tenant-rate", 0, "per-tenant admission tokens per second (0 = no per-tenant limiting)")
		tenBurst = fs.Int("tenant-burst", 1, "per-tenant admission burst")
		quarant  = fs.Int("quarantine-after", 3, "quarantine a job after this many starts without finishing (negative = never)")
		grace    = fs.Duration("drain-grace", 5*time.Second, "how long a drain lets jobs finish before checkpointing them")
		drainTO  = fs.Duration("drain-timeout", 60*time.Second, "hard bound on the whole drain")
		maxNodes = fs.Int("max-nodes", 1<<20, "largest accepted mesh, in nodes")
		maxK     = fs.Int("max-k", 1<<20, "largest accepted packet count")
		ver      = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *ver {
		fmt.Fprintln(out, version.String("hotpotatod"))
		return nil
	}

	logger := log.New(out, "hotpotatod: ", log.LstdFlags)
	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			return err
		}
	}
	srv, err := server.New(server.Config{
		QueueDepth:      *queue,
		Workers:         *workers,
		JobTimeout:      *jobTO,
		MaxAttempts:     *attempts,
		CheckpointDir:   *ckptDir,
		CheckpointEvery: *ckptEach,
		WALPath:         *wal,
		TenantRate:      *tenRate,
		TenantBurst:     *tenBurst,
		QuarantineAfter: *quarant,
		DrainGrace:      *grace,
		MaxNodes:        *maxNodes,
		MaxK:            *maxK,
		Logf:            logger.Printf,
	})
	if err != nil {
		return err
	}
	srv.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if notifyListen != nil {
		notifyListen(ln.Addr())
	}
	logger.Printf("listening on %s", ln.Addr())

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err // the listener died; nothing to drain for
	case <-ctx.Done():
	}

	logger.Printf("signal received, draining (grace %s, bound %s)", *grace, *drainTO)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	drainErr := srv.Drain(drainCtx)
	// Jobs are settled (or abandoned); now close the listener and let
	// in-flight HTTP exchanges — status polls, stream tails — finish.
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("http shutdown: %v", err)
	}
	if drainErr != nil {
		return drainErr
	}
	logger.Printf("drained, exiting")
	return nil
}
