package main

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestVersionFlag(t *testing.T) {
	var buf strings.Builder
	if err := run(context.Background(), []string{"-version"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "hotpotatod ") {
		t.Errorf("-version output = %q", buf.String())
	}
}

func TestBadFlag(t *testing.T) {
	// ContinueOnError writes usage to the flag set's default output
	// (stderr); the error return is what matters here.
	if err := run(context.Background(), []string{"-no-such-flag"}, io.Discard); err == nil {
		t.Fatal("unknown flag did not error")
	}
}

// TestSignalDrain is the daemon-level shutdown test: serve, accept a long
// job, cancel the signal context mid-run, and expect a clean exit with the
// job's state checkpointed on disk.
func TestSignalDrain(t *testing.T) {
	dir := t.TempDir()
	addrCh := make(chan net.Addr, 1)
	notifyListen = func(a net.Addr) { addrCh <- a }
	defer func() { notifyListen = nil }()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-workers", "1",
			"-checkpoint-dir", dir,
			"-drain-grace", "30ms",
			"-drain-timeout", "30s",
		}, io.Discard)
	}()

	var base string
	select {
	case a := <-addrCh:
		base = "http://" + a.String()
	case err := <-errCh:
		t.Fatalf("daemon exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never bound its listener")
	}

	spec := `{"side": 6, "k": 24, "seed": 9, "progress_every": 1, "step_delay": "5ms", "max_steps": 100000}`
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || st.ID == "" {
		t.Fatalf("POST = %d, id %q", resp.StatusCode, st.ID)
	}

	// Wait until the job is stepping so the drain interrupts real work.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("job never started making progress")
		}
		r, err := http.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		var status struct {
			State    string `json:"state"`
			Progress *struct {
				Time int `json:"time"`
			} `json:"progress"`
		}
		err = json.NewDecoder(r.Body).Decode(&status)
		r.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if status.State == "running" && status.Progress != nil && status.Progress.Time > 0 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	cancel() // stands in for SIGTERM: same context path as the signal handler
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("daemon exited with %v, want clean drain", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after cancellation")
	}

	ckpt := filepath.Join(dir, st.ID+".hpck")
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("drained job left no checkpoint: %v", err)
	}
}

// TestListenFailure covers an unusable address.
func TestListenFailure(t *testing.T) {
	err := run(context.Background(), []string{"-addr", "256.0.0.1:bad"}, io.Discard)
	if err == nil {
		t.Fatal("bad listen address did not error")
	}
}
