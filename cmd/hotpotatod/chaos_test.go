package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestHelperProcess is not a test: it is the daemon body for the SIGKILL
// chaos harness. The parent re-executes this test binary with
// HOTPOTATOD_HELPER=1 and the daemon flags after "--", and then kills the
// process for real — the only way to exercise recovery from an actual
// kill -9 rather than an in-process simulation.
func TestHelperProcess(t *testing.T) {
	if os.Getenv("HOTPOTATOD_HELPER") != "1" {
		t.Skip("helper process body; only runs when re-executed by the chaos test")
	}
	var args []string
	for i, a := range os.Args {
		if a == "--" {
			args = os.Args[i+1:]
			break
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, args, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "helper daemon:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// chaosDaemon is one life of the re-executed daemon.
type chaosDaemon struct {
	cmd  *exec.Cmd
	base string // http://host:port
	done chan error
}

// startChaosDaemon re-execs the test binary as a daemon and waits for its
// "listening on" line.
func startChaosDaemon(t *testing.T, daemonArgs ...string) *chaosDaemon {
	t.Helper()
	args := []string{"-test.run=^TestHelperProcess$", "--"}
	args = append(args, daemonArgs...)
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "HOTPOTATOD_HELPER=1")
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				select {
				case addrCh <- strings.TrimSpace(line[i+len("listening on "):]):
				default:
				}
			}
		}
	}()
	d := &chaosDaemon{cmd: cmd, done: make(chan error, 1)}
	go func() { d.done <- cmd.Wait() }()
	select {
	case addr := <-addrCh:
		d.base = "http://" + addr
	case err := <-d.done:
		t.Fatalf("daemon exited before listening: %v", err)
	case <-time.After(20 * time.Second):
		cmd.Process.Kill() //nolint:errcheck
		t.Fatal("daemon never announced its listener")
	}
	return d
}

// kill SIGKILLs the daemon — no warning, no flush, no drain.
func (d *chaosDaemon) kill(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	<-d.done // reap; the error is the kill signal, expected
}

// term SIGTERMs the daemon and expects a clean drain (exit 0).
func (d *chaosDaemon) term(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-d.done:
		if err != nil {
			t.Fatalf("daemon exited uncleanly after SIGTERM: %v", err)
		}
	case <-time.After(60 * time.Second):
		d.cmd.Process.Kill() //nolint:errcheck
		t.Fatal("daemon did not exit after SIGTERM")
	}
}

// chaosStatus is the slice of job status the harness cares about.
type chaosStatus struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Recovered bool   `json:"recovered"`
	FinalHash string `json:"final_state_hash"`
}

func submitChaosJob(t *testing.T, base string, seed int64) chaosStatus {
	t.Helper()
	spec := fmt.Sprintf(`{"side": 8, "k": 48, "seed": %d, "progress_every": 1, "step_delay": "2ms"}`, seed)
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST = %d, want 202", resp.StatusCode)
	}
	var st chaosStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func getChaosStatus(t *testing.T, base, id string) chaosStatus {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", id, resp.StatusCode)
	}
	var st chaosStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestChaosSIGKILLRecovery is the end-to-end durability proof: a real
// daemon process is SIGKILLed repeatedly while accepting jobs, and after
// the final restart every accepted job must be present and done, with a
// final engine-state hash identical to a fresh, uninterrupted run of the
// same spec. HOTPOTATOD_CHAOS_CYCLES overrides the kill count (default 5);
// `make chaos` runs this with more cycles.
func TestChaosSIGKILLRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level chaos harness; skipped in -short")
	}
	cycles := 5
	if v := os.Getenv("HOTPOTATOD_CHAOS_CYCLES"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("bad HOTPOTATOD_CHAOS_CYCLES %q", v)
		}
		cycles = n
	}

	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ckpt")
	if err := os.MkdirAll(ckpt, 0o755); err != nil {
		t.Fatal(err)
	}
	daemonArgs := []string{
		"-addr", "127.0.0.1:0",
		"-workers", "2",
		"-queue", "64",
		"-wal", filepath.Join(dir, "jobs.wal"),
		"-checkpoint-dir", ckpt,
		"-checkpoint-every", "3",
		"-quarantine-after", "-1", // the kills are ours, not the jobs' fault
		"-drain-grace", "5s",
		"-drain-timeout", "60s",
	}

	submitted := make(map[string]int64) // job ID -> seed: the ledger
	seed := int64(0)
	for cycle := 0; cycle < cycles; cycle++ {
		d := startChaosDaemon(t, daemonArgs...)
		// Every job accepted in any earlier life must have survived.
		for id := range submitted {
			if st := getChaosStatus(t, d.base, id); st.ID != id {
				t.Fatalf("cycle %d: job %s lost across SIGKILL", cycle, id)
			}
		}
		for n := 0; n < 2; n++ {
			seed++
			st := submitChaosJob(t, d.base, seed)
			submitted[st.ID] = seed
		}
		// Let a different slice of the work happen each life, then kill -9.
		time.Sleep(time.Duration(20+40*cycle) * time.Millisecond)
		d.kill(t)
	}

	// Final life: everything recovers and runs to completion.
	d := startChaosDaemon(t, daemonArgs...)
	deadline := time.Now().Add(120 * time.Second)
	recoveredHash := make(map[string]string, len(submitted))
	for id, jobSeed := range submitted {
		for {
			st := getChaosStatus(t, d.base, id)
			if st.State == "done" {
				if st.FinalHash == "" {
					t.Fatalf("job %s done without a final state hash", id)
				}
				recoveredHash[id] = st.FinalHash
				break
			}
			if st.State != "queued" && st.State != "running" {
				t.Fatalf("job %s (seed %d) ended %q, want done", id, jobSeed, st.State)
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s still %q at deadline", id, st.State)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Bit-identity: a fresh, never-interrupted run of each seed on the same
	// daemon must report the same final engine-state hash as the recovered,
	// kill-scarred run of that seed.
	for id, jobSeed := range submitted {
		fresh := submitChaosJob(t, d.base, jobSeed)
		for {
			st := getChaosStatus(t, d.base, fresh.ID)
			if st.State == "done" {
				if st.FinalHash != recoveredHash[id] {
					t.Errorf("seed %d: recovered run %s hash %s != uninterrupted run %s hash %s",
						jobSeed, id, recoveredHash[id], fresh.ID, st.FinalHash)
				}
				break
			}
			if st.State != "queued" && st.State != "running" {
				t.Fatalf("baseline job %s ended %q", fresh.ID, st.State)
			}
			if time.Now().After(deadline) {
				t.Fatal("baseline runs did not finish in time")
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	d.term(t) // clean exit to finish: SIGTERM drains with nothing pending
}
