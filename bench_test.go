// Package hotpotato_test is the root benchmark harness: one benchmark per
// reproduced experiment (E1-E10, see DESIGN.md), so `go test -bench=.`
// regenerates a performance profile of every result in the paper, plus
// engine microbenchmarks. The full tables are produced by cmd/experiments;
// the benchmarks here time representative cells of each table.
package hotpotato_test

import (
	"math/rand"
	"testing"

	"hotpotato/internal/analysis"
	"hotpotato/internal/core"
	"hotpotato/internal/geometry"
	"hotpotato/internal/mesh"
	"hotpotato/internal/routing"
	"hotpotato/internal/sim"
	"hotpotato/internal/workload"
)

// runOnce routes one instance and reports steps as a custom metric.
func runOnce(b *testing.B, m *mesh.Mesh, pol sim.Policy, packets []*sim.Packet, lvl sim.ValidationLevel, track bool) *sim.Result {
	b.Helper()
	e, err := sim.New(m, pol, packets, sim.Options{Seed: 1, Validation: lvl})
	if err != nil {
		b.Fatal(err)
	}
	if track {
		e.AddObserver(core.NewTracker(m, packets, core.TrackerOptions{}))
	}
	res, err := e.Run()
	if err != nil {
		b.Fatal(err)
	}
	if res.Delivered != res.Total {
		b.Fatalf("%d/%d delivered", res.Delivered, res.Total)
	}
	return res
}

func freshUniform(b *testing.B, m *mesh.Mesh, k int, seed int64) []*sim.Packet {
	b.Helper()
	rng := rand.New(rand.NewSource(seed))
	packets, err := workload.UniformRandom(m, k, rng)
	if err != nil {
		b.Fatal(err)
	}
	return packets
}

// BenchmarkE1Theorem20 times the E1 cell n=16, k=256 (restricted-priority,
// strict validation) and checks the Theorem-20 bound each iteration.
func BenchmarkE1Theorem20(b *testing.B) {
	m := mesh.MustNew(2, 16)
	bound := analysis.Theorem20Bound(16, 256)
	steps := 0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		packets := freshUniform(b, m, 256, int64(i))
		res := runOnce(b, m, core.NewRestrictedPriority(), packets, sim.ValidateRestricted, false)
		if float64(res.Steps) > bound {
			b.Fatalf("bound violated: %d > %f", res.Steps, bound)
		}
		steps += res.Steps
	}
	b.ReportMetric(float64(steps)/float64(b.N), "steps/run")
}

// BenchmarkE2ScalingK times the largest-k cell of the E2 sweep.
func BenchmarkE2ScalingK(b *testing.B) {
	m := mesh.MustNew(2, 24)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		packets := freshUniform(b, m, 24*24, int64(i))
		runOnce(b, m, core.NewRestrictedPriority(), packets, sim.ValidateGreedy, false)
	}
}

// BenchmarkE3ScalingN times the largest-n cell of the E3 sweep.
func BenchmarkE3ScalingN(b *testing.B) {
	m := mesh.MustNew(2, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		packets := freshUniform(b, m, 32*32/4, int64(i))
		runOnce(b, m, core.NewRestrictedPriority(), packets, sim.ValidateGreedy, false)
	}
}

// BenchmarkE4DDim times the 3-dimensional cell of E4 (fewest-good-first)
// and checks the Section-5 bound.
func BenchmarkE4DDim(b *testing.B) {
	m := mesh.MustNew(3, 6)
	bound := analysis.Section5Bound(3, 6, 216)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		packets := freshUniform(b, m, 216, int64(i))
		res := runOnce(b, m, core.NewFewestGoodFirst(), packets, sim.ValidateGreedy, false)
		if float64(res.Steps) > bound {
			b.Fatalf("section-5 bound violated: %d > %f", res.Steps, bound)
		}
	}
}

// BenchmarkE5Property8 times a fully tracked run (potential function plus
// all invariant checks), the configuration E5 uses.
func BenchmarkE5Property8(b *testing.B) {
	m := mesh.MustNew(2, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		packets := freshUniform(b, m, 128, int64(i))
		runOnce(b, m, core.NewRestrictedPriority(), packets, sim.ValidateRestricted, true)
	}
}

// BenchmarkE6PhiDrop times the tracked run with the series recording E6
// uses for the decay-chain statistics.
func BenchmarkE6PhiDrop(b *testing.B) {
	m := mesh.MustNew(2, 16)
	rng := rand.New(rand.NewSource(5))
	base := workload.Permutation(m, rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		packets := make([]*sim.Packet, len(base))
		for j, p := range base {
			packets[j] = sim.NewPacket(p.ID, p.Src, p.Dst)
		}
		e, err := sim.New(m, core.NewRestrictedPriority(), packets, sim.Options{Seed: int64(i), Validation: sim.ValidateRestricted})
		if err != nil {
			b.Fatal(err)
		}
		tr := core.NewTracker(m, packets, core.TrackerOptions{RecordSeries: true})
		e.AddObserver(tr)
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
		if tr.Violations().Any() {
			b.Fatal("violations in benchmark run")
		}
	}
}

// BenchmarkE7Isoperimetric times the Claim-13 check pipeline on a random
// 3-D volume of 400 cells.
func BenchmarkE7Isoperimetric(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	v, err := geometry.RandomBlob(3, 400, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := v.CheckClaim13(); !ok {
			b.Fatal("claim 13 violated")
		}
		if lhs, rhs := v.ShearerEntropy(); lhs > rhs+1e-9 {
			b.Fatal("Shearer violated")
		}
	}
}

// BenchmarkE8FullLoad times a full random permutation (k = n^2) on the
// 16x16 mesh and checks the parity-split 8n^2 bound.
func BenchmarkE8FullLoad(b *testing.B) {
	m := mesh.MustNew(2, 16)
	bound := analysis.FullPermutationBound(16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		packets := workload.Permutation(m, rng)
		res := runOnce(b, m, core.NewRestrictedPriority(), packets, sim.ValidateGreedy, false)
		if float64(res.Steps) > bound {
			b.Fatalf("8n^2 bound violated: %d > %f", res.Steps, bound)
		}
	}
}

// BenchmarkE9Comparison times every policy of the comparison table on the
// same uniform instance shape.
func BenchmarkE9Comparison(b *testing.B) {
	m := mesh.MustNew(2, 16)
	policies := []struct {
		name string
		mk   func() sim.Policy
	}{
		{"restricted", core.NewRestrictedPriority},
		{"fewest-good", core.NewFewestGoodFirst},
		{"random", routing.NewRandomGreedy},
		{"dest-order", routing.NewDestOrderGreedy},
		{"farthest", routing.NewFarthestFirst},
		{"nearest", routing.NewNearestFirst},
	}
	for _, pol := range policies {
		b.Run(pol.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				packets := freshUniform(b, m, 256, int64(i))
				runOnce(b, m, pol.mk(), packets, sim.ValidateGreedy, false)
			}
		})
	}
}

// BenchmarkE10Livelock times the livelock-detecting run configuration on
// the 4x4 mesh used by the E10 search.
func BenchmarkE10Livelock(b *testing.B) {
	m := mesh.MustNew(2, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		packets, err := workload.UniformRandom(m, 16, rng)
		if err != nil {
			b.Fatal(err)
		}
		e, err := sim.New(m, routing.NewFixedPriority(), packets, sim.Options{
			Seed:           int64(i),
			Validation:     sim.ValidateGreedy,
			MaxSteps:       4000,
			DetectLivelock: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineThroughput measures raw simulation speed: packet-hops per
// second on a dense instance without validation or tracking.
func BenchmarkEngineThroughput(b *testing.B) {
	m := mesh.MustNew(2, 32)
	var hops int64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		packets, err := workload.FullLoad(m, 2, rng)
		if err != nil {
			b.Fatal(err)
		}
		e, err := sim.New(m, core.NewRestrictedPriority(), packets, sim.Options{Seed: int64(i), Validation: sim.ValidateOff})
		if err != nil {
			b.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			b.Fatal(err)
		}
		hops += res.TotalHops
	}
	b.ReportMetric(float64(hops)/b.Elapsed().Seconds(), "hops/s")
}

// BenchmarkEngineStepSteadyState times a single steady-state Step call with
// engine construction excluded from the timer, so allocs/op reports exactly
// what one synchronous routing step costs once the scratch buffers exist.
// The expected figure is 0 allocs/op.
func BenchmarkEngineStepSteadyState(b *testing.B) {
	m := mesh.MustNew(2, 32)
	rebuild := func(seed int64) *sim.Engine {
		rng := rand.New(rand.NewSource(seed))
		packets, err := workload.FullLoad(m, 2, rng)
		if err != nil {
			b.Fatal(err)
		}
		e, err := sim.New(m, core.NewRestrictedPriority(), packets, sim.Options{Seed: seed, Validation: sim.ValidateGreedy})
		if err != nil {
			b.Fatal(err)
		}
		// Prime the lazily grown buffers (move list, routing scratch) with
		// untimed steps until contention peaks, so even a -benchtime 1x run
		// measures the steady state the 0 allocs/op contract is stated for.
		for i := 0; i < 32 && !e.Done(); i++ {
			if err := e.Step(); err != nil {
				b.Fatal(err)
			}
		}
		return e
	}
	b.ReportAllocs()
	b.StopTimer()
	e, seed := rebuild(1), int64(1)
	b.StartTimer()
	for i := 0; i < b.N; i++ {
		if e.Done() {
			b.StopTimer()
			seed++
			e = rebuild(seed)
			b.StartTimer()
		}
		if err := e.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkValidationOverhead compares a validated against an unvalidated
// run of the same instance shape.
func BenchmarkValidationOverhead(b *testing.B) {
	m := mesh.MustNew(2, 16)
	for _, lvl := range []struct {
		name string
		lvl  sim.ValidationLevel
	}{
		{"off", sim.ValidateOff},
		{"basic", sim.ValidateBasic},
		{"greedy", sim.ValidateGreedy},
		{"restricted", sim.ValidateRestricted},
	} {
		b.Run(lvl.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				packets := freshUniform(b, m, 256, int64(i))
				runOnce(b, m, core.NewRestrictedPriority(), packets, lvl.lvl, false)
			}
		})
	}
}

// BenchmarkTrackerOverhead isolates the cost of the potential tracker.
func BenchmarkTrackerOverhead(b *testing.B) {
	m := mesh.MustNew(2, 16)
	for _, track := range []struct {
		name string
		on   bool
	}{{"without", false}, {"with", true}} {
		b.Run(track.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				packets := freshUniform(b, m, 256, int64(i))
				runOnce(b, m, core.NewRestrictedPriority(), packets, sim.ValidateOff, track.on)
			}
		})
	}
}
