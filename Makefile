# Developer entry points. Everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-short test-race vet fmt bench experiments experiments-quick figures cover clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# The concurrency-sensitive packages (parallel routing, fault injection)
# under the race detector.
test-race:
	$(GO) test -race ./internal/sim/... ./internal/fault/...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

bench:
	$(GO) test -bench=. -benchmem ./...

experiments:
	$(GO) run ./cmd/experiments

experiments-quick:
	$(GO) run ./cmd/experiments -quick

figures:
	$(GO) run ./cmd/figures

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

clean:
	rm -f cover.out test_output.txt bench_output.txt
