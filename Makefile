# Developer entry points. Everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-short test-race vet fmt bench bench-json bench-smoke experiments experiments-quick figures cover clean

# Output file for the committed benchmark record (see bench-json).
BENCH_JSON ?= BENCH_PR2.json

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# The concurrency-sensitive packages (parallel routing, fault injection)
# under the race detector.
test-race:
	$(GO) test -race ./internal/sim/... ./internal/fault/...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

bench:
	$(GO) test -bench=. -benchmem ./...

# Run the full root benchmark suite (experiment benchmarks E1-E21 plus the
# engine microbenchmarks) and commit the result as structured JSON.
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem -timeout 30m . | tee bench_output.txt | $(GO) run ./cmd/benchjson -o $(BENCH_JSON)

# CI smoke variant: one iteration per benchmark, compared non-blockingly
# against the committed record with a generous tolerance.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem -timeout 10m . | $(GO) run ./cmd/benchjson -o /dev/null -baseline $(BENCH_JSON) -tolerance 3.0

experiments:
	$(GO) run ./cmd/experiments

experiments-quick:
	$(GO) run ./cmd/experiments -quick

figures:
	$(GO) run ./cmd/figures

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

clean:
	rm -f cover.out test_output.txt bench_output.txt
