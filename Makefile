# Developer entry points. Everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-short test-race vet fmt fuzz-smoke bench bench-json bench-shard bench-dist bench-smoke shard-parity experiments experiments-quick figures cover sweep-resume-demo serve serve-smoke chaos chaos-smoke dist-chaos-smoke dist-demo policylab-demo clean

# Output file for the committed benchmark record (see bench-json).
BENCH_JSON ?= BENCH_PR10.json

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# The concurrency-sensitive packages (parallel routing, sharded engine,
# fault injection) under the race detector.
test-race:
	$(GO) test -race ./internal/sim/... ./internal/shard/... ./internal/fault/...

# Bit-identity of the sharded engine: the whole shard package — per-step
# state-hash parity across grids, seeds, workloads and policies, livelock
# parity, checkpoint resume across grids, panic recovery — under the race
# detector. Blocking in CI.
shard-parity:
	$(GO) test -race -count=1 ./internal/shard/

vet:
	$(GO) vet ./...

# Short fuzz pass over the untrusted-input parsers (CI runs this on every
# push; `go test -fuzz` with a longer -fuzztime digs deeper locally). The
# WAL decoder is fuzzed because it parses whatever a crash left on disk:
# torn writes, truncation, bit rot. The halo frame reader and wire decoders
# are fuzzed because they parse whatever a peer (or a corrupting link) sends
# over TCP.
fuzz-smoke:
	$(GO) test -fuzz FuzzParseBench -fuzztime 15s ./internal/benchfmt/
	$(GO) test -fuzz FuzzWAL -fuzztime 15s ./internal/server/store/
	$(GO) test -fuzz FuzzHaloFrame -fuzztime 15s ./internal/dshard/
	$(GO) test -fuzz FuzzParseWorkloadSpec -fuzztime 15s ./internal/spec/
	$(GO) test -fuzz FuzzParseArrivalSpec -fuzztime 15s ./internal/spec/
	$(GO) test -fuzz FuzzParsePolicySpec -fuzztime 15s ./internal/spec/
	$(GO) test -fuzz FuzzReadTrace -fuzztime 15s ./internal/policylab/

# Saturation smoke: the dynamic-traffic stack (renewal sources, the
# adversary, injector checkpointing, single and sharded engines) under the
# race detector, plus a short Bernoulli-vs-adversary sweep through the real
# CLI path.
saturation-smoke:
	$(GO) test -race -run 'TestInjector|TestAdversary|TestDynamic' ./internal/traffic/
	$(GO) run ./cmd/sweep -n 8 -trials 2 -workload none \
		-arrivals 'bernoulli:rate=0.05,until=60' -max-steps 5000
	$(GO) run ./cmd/sweep -n 8 -trials 2 -workload none \
		-arrivals 'adversary:rho=3,sigma=8,until=60' -max-steps 5000

fmt:
	gofmt -w .

bench:
	$(GO) test -bench=. -benchmem ./...

# Run the full root benchmark suite (experiment benchmarks E1-E21 plus the
# engine microbenchmarks) and commit the result as structured JSON.
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem -timeout 30m . | tee bench_output.txt | $(GO) run ./cmd/benchjson -o $(BENCH_JSON)

# Rerun just the sharded-engine benchmark and refresh its committed record
# (BENCH_PR7.json). -short in bench-smoke skips the 1024x1024 sizes; this
# target runs them all.
bench-shard:
	$(GO) test -run '^$$' -bench ShardedFullLoad -benchtime 5x -benchmem -timeout 60m . \
		| tee bench_shard_output.txt | $(GO) run ./cmd/benchjson -o BENCH_PR7.json

# Rerun just the distributed benchmark and refresh its committed record
# (BENCH_PR8.json): one coordinator driving two loopback worker processes
# vs the in-process 2x1 sharded engine on the same full-load problem — the
# committed number is the price of the wire.
bench-dist:
	$(GO) test -run '^$$' -bench DistributedFullLoad -benchtime 10x -benchmem -timeout 30m . \
		| tee bench_dist_output.txt | $(GO) run ./cmd/benchjson -o BENCH_PR8.json

# CI smoke variant: 100ms per benchmark (-short keeps the sharded
# benchmark to its 256x256 sizes) — time-based so microsecond-scale
# benchmarks get hundreds of iterations (a single iteration is too noisy
# to gate on) while the heavy sharded ones still run once — then a
# blocking delta-table comparison against the committed record, which is
# generated the same way. The 2.0 threshold (3x) absorbs shared-runner
# noise; benchmarks absent from the old record are listed as new, never
# failed. The zero-allocation contract for the engine hot path (Step with
# a nil ConflictObserver) is asserted on a dedicated amortized pass —
# 0 allocs/op is a steady-state claim, and a single iteration can catch a
# one-off buffer growth that 5000 iterations round away.
bench-smoke:
	$(GO) test -run '^$$' -bench 'EngineStepSteadyState|ConflictTraceOverhead' -benchtime 5000x -benchmem -timeout 10m . \
		| $(GO) run ./cmd/benchjson -o /dev/null \
			-assert-zero-allocs 'EngineStepSteadyState|ConflictTraceOverhead/off'
	$(GO) test -short -run '^$$' -bench . -benchtime 100ms -benchmem -timeout 15m . \
		| $(GO) run ./cmd/benchjson -o /tmp/bench-smoke.json
	$(GO) run ./cmd/benchjson -compare -threshold 2.0 $(BENCH_JSON) /tmp/bench-smoke.json

experiments:
	$(GO) run ./cmd/experiments

experiments-quick:
	$(GO) run ./cmd/experiments -quick

figures:
	$(GO) run ./cmd/figures

# Demonstrate crash-safe sweeps: start a journaled grid, kill it partway
# through with SIGTERM, then finish it with -resume. The resumed run reruns
# only the cells missing from the journal.
sweep-resume-demo:
	rm -f /tmp/sweep-demo.jsonl
	@echo "--- starting sweep, killing it after 3 seconds ---"
	-$(GO) run ./cmd/sweep -n 32 -k 2048,3000 -policy restricted,random,dest-order \
		-workload uniform,hotspot -trials 20 -journal /tmp/sweep-demo.jsonl & \
		pid=$$!; sleep 3; kill -TERM $$pid; wait $$pid || true
	@echo "--- journal after the kill ---"
	cat /tmp/sweep-demo.jsonl
	@echo "--- resuming ---"
	$(GO) run ./cmd/sweep -n 32 -k 2048,3000 -policy restricted,random,dest-order \
		-workload uniform,hotspot -trials 20 -journal /tmp/sweep-demo.jsonl -resume

# Run the simulation service locally with the durable job store: jobs
# survive kill -9 (the WAL replays on restart and interrupted runs resume
# from their periodic checkpoints); SIGINT/SIGTERM still drains gracefully.
serve:
	$(GO) run ./cmd/hotpotatod -addr :8080 \
		-checkpoint-dir /tmp/hotpotato-checkpoints -checkpoint-every 200 \
		-wal /tmp/hotpotato-jobs.wal

# CI smoke for the service: boot hotpotatod on a small queue, drive it with
# the example load generator (submit with backpressure retries, follow one
# NDJSON stream, poll every job to completion, scrape /metrics), then
# SIGTERM the daemon and require a clean drain and exit code 0.
serve-smoke:
	$(GO) build -o /tmp/hotpotatod-smoke ./cmd/hotpotatod
	rm -rf /tmp/hotpotato-smoke-ckpt /tmp/hotpotato-smoke.wal
	/tmp/hotpotatod-smoke -addr 127.0.0.1:18098 -workers 1 -queue 2 \
		-checkpoint-dir /tmp/hotpotato-smoke-ckpt -wal /tmp/hotpotato-smoke.wal & \
	pid=$$!; sleep 1; \
	$(GO) run ./examples/service -addr http://127.0.0.1:18098 \
		-submitters 4 -jobs 2 || { kill $$pid; exit 1; }; \
	kill -TERM $$pid; wait $$pid

# Chaos harness: repeatedly SIGKILL a real hotpotatod mid-work and prove
# recovery from the WAL — zero lost jobs, recovered runs bit-identical to
# uninterrupted ones. `chaos` runs a longer bounded session locally;
# `chaos-smoke` is the CI-sized pass (also exercises the in-process
# Kill()-based harness in internal/server).
chaos:
	HOTPOTATOD_CHAOS_CYCLES=15 $(GO) test -run TestChaosSIGKILLRecovery \
		-v -count=1 -timeout 10m ./cmd/hotpotatod/
	SHARDCOORD_CHAOS_KILLS=8 $(GO) test -run TestDistChaosSIGKILL \
		-v -count=1 -timeout 10m ./cmd/shardcoord/

chaos-smoke:
	HOTPOTATOD_CHAOS_CYCLES=6 $(GO) test -run 'TestChaos' -count=1 -timeout 5m \
		./cmd/hotpotatod/ ./internal/server/

# Distributed chaos: a coordinator drives real worker processes over TCP
# while the harness SIGKILLs them mid-step; the finished run must be
# bit-identical (every Result field plus the final state hash) to the same
# problem on the in-process sharded engine with no kills. Runs the whole
# dshard suite (transport faults, corrupt frames, kill/rejoin, cross-grid
# resume) plus the process-level harness, under the race detector. Blocking
# in CI.
dist-chaos-smoke:
	SHARDCOORD_CHAOS_KILLS=5 $(GO) test -race -count=1 -timeout 10m \
		./internal/dshard/ ./cmd/shardcoord/ ./cmd/shardworker/

# Distributed demo: a coordinator spawns two worker processes, one is
# SIGKILLed mid-run, and the run recovers from the last coordinated
# checkpoint and finishes — same summary as an uninterrupted run.
dist-demo:
	$(GO) build -o /tmp/hp-shardworker ./cmd/shardworker
	$(GO) build -o /tmp/hp-shardcoord ./cmd/shardcoord
	@echo "--- distributed run; kill -9 one worker after 2 seconds ---"
	/tmp/hp-shardcoord -n 24 -workload permutation -policy random -shards 2x2 \
		-workers 2 -worker-bin /tmp/hp-shardworker -checkpoint-every 8 \
		-worker-flags "-step-delay 50ms" & \
	pid=$$!; sleep 2; kill -9 $$(pgrep -x hp-shardworker | head -1); wait $$pid

# Policy-lab demo: record a conflict trace (with a mid-run checkpoint) on
# the (rho,sigma) column adversary, then replay the checkpointed window
# under alternative priority orders and print the divergence table.
policylab-demo:
	$(GO) run ./cmd/policylab trace -n 12 -policy restricted -workload none \
		-arrivals 'adversary:rho=3,sigma=6,until=200' -seed 7 \
		-o /tmp/policylab-conflicts.jsonl -checkpoint /tmp/policylab-mid.ckpt -checkpoint-at 100
	@echo "--- counterfactual replay from the checkpoint ---"
	$(GO) run ./cmd/policylab counterfactual -checkpoint /tmp/policylab-mid.ckpt \
		-policy restricted -arrivals 'adversary:rho=3,sigma=6,until=200' \
		-alt "oldest,nearest,weighted:age=1,restrict=2" -steps 120

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

clean:
	rm -f cover.out test_output.txt bench_output.txt bench_shard_output.txt bench_dist_output.txt
