package hotpotato_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"hotpotato/internal/dshard"
	"hotpotato/internal/mesh"
	"hotpotato/internal/shard"
	"hotpotato/internal/sim"
	"hotpotato/internal/spec"
	"hotpotato/internal/workload"
)

// BenchmarkDistributedFullLoad prices the distributed runtime against the
// in-process sharded engine it must match bit for bit: one op is one
// complete full-load run on a 2x1 grid, either through a dshard coordinator
// driving two loopback worker processes (spawn, TCP framing, barriers,
// shutdown — the whole distributed overhead) or through shard.Engine's two
// goroutines sharing memory. The gap between the two is the price of the
// wire; the ratio is what a deployment pays for kill -9 survival.
// Validation and livelock hashing are off — this times routing plus
// transport.
func BenchmarkDistributedFullLoad(b *testing.B) {
	const side, maxSteps = 64, 10000
	m := mesh.MustNewTorus(2, side)
	g := shard.Grid{P: 2, Q: 1}
	fresh := func(seed int64) []*sim.Packet {
		pkts, err := workload.FullLoad(m, 2, rand.New(rand.NewSource(seed)))
		if err != nil {
			b.Fatal(err)
		}
		return pkts
	}

	b.Run(fmt.Sprintf("%dx%d/coordinator-2workers", side, side), func(b *testing.B) {
		var steps int64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			seed := int64(i + 1)
			c, err := dshard.New(dshard.Spec{
				Side: side, Wrap: true, Policy: "fixed", Grid: g,
				Seed: seed, MaxSteps: maxSteps, Validation: sim.ValidateOff,
			}, fresh(seed), dshard.Options{
				Workers:  2,
				Token:    "bench",
				Policies: spec.NewPolicy,
				Spawn:    dshard.InProcessSpawner(dshard.WorkerOptions{Token: "bench", Policies: spec.NewPolicy}),
			})
			if err != nil {
				b.Fatal(err)
			}
			res, err := c.Run(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			steps += int64(res.Steps)
		}
		b.ReportMetric(float64(steps)/b.Elapsed().Seconds(), "steps/s")
	})

	b.Run(fmt.Sprintf("%dx%d/inprocess-%s", side, side, g), func(b *testing.B) {
		var steps int64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			seed := int64(i + 1)
			pol, err := spec.NewPolicy("fixed")
			if err != nil {
				b.Fatal(err)
			}
			e, err := shard.New(m, pol, fresh(seed), shard.Options{
				Grid: g, Seed: seed, MaxSteps: maxSteps, Validation: sim.ValidateOff,
			})
			if err != nil {
				b.Fatal(err)
			}
			res, err := e.Run()
			e.Close()
			if err != nil {
				b.Fatal(err)
			}
			steps += int64(res.Steps)
		}
		b.ReportMetric(float64(steps)/b.Elapsed().Seconds(), "steps/s")
	})
}
