package hotpotato_test

import (
	"fmt"
	"math/rand"
	"testing"

	"hotpotato/internal/mesh"
	"hotpotato/internal/routing"
	"hotpotato/internal/shard"
	"hotpotato/internal/sim"
	"hotpotato/internal/workload"
)

// BenchmarkShardedFullLoad measures per-step cost of the sharded engine on
// large full-load tori (two packets per node) across shard grids of 1, 2, 4
// and 8 goroutines, with the single engine's serial step as the 1x1-like
// reference. One op is one synchronous step of the whole network; engine
// construction is outside the timer, and an instance that drains mid-run is
// rebuilt off the clock. On a multi-core machine the grids separate; on one
// core they collapse onto the barrier overhead, which this benchmark then
// prices. Validation and livelock hashing are off — this times routing.
func BenchmarkShardedFullLoad(b *testing.B) {
	grids := []shard.Grid{{P: 1, Q: 1}, {P: 2, Q: 1}, {P: 2, Q: 2}, {P: 4, Q: 2}}
	for _, side := range []int{256, 1024} {
		if side > 256 && testing.Short() {
			continue // CI smoke times the 256 grid only; the committed record has both
		}
		m := mesh.MustNewTorus(2, side)
		fresh := func(seed int64) []*sim.Packet {
			pkts, err := workload.FullLoad(m, 2, rand.New(rand.NewSource(seed)))
			if err != nil {
				b.Fatal(err)
			}
			return pkts
		}
		b.Run(fmt.Sprintf("%dx%d/serial", side, side), func(b *testing.B) {
			seed := int64(1)
			e, err := sim.New(m, routing.NewFixedPriority(), fresh(seed), sim.Options{Seed: seed, Validation: sim.ValidateOff})
			if err != nil {
				b.Fatal(err)
			}
			var hops int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if e.Done() {
					b.StopTimer()
					seed++
					e, err = sim.New(m, routing.NewFixedPriority(), fresh(seed), sim.Options{Seed: seed, Validation: sim.ValidateOff})
					if err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
				}
				before := e.Progress().TotalHops
				if err := e.Step(); err != nil {
					b.Fatal(err)
				}
				hops += e.Progress().TotalHops - before
			}
			b.ReportMetric(float64(hops)/b.Elapsed().Seconds(), "hops/s")
		})
		for _, g := range grids {
			b.Run(fmt.Sprintf("%dx%d/%s", side, side, g), func(b *testing.B) {
				seed := int64(1)
				mk := func(seed int64) *shard.Engine {
					e, err := shard.New(m, routing.NewFixedPriority(), fresh(seed), shard.Options{Grid: g, Seed: seed, Validation: sim.ValidateOff})
					if err != nil {
						b.Fatal(err)
					}
					return e
				}
				e := mk(seed)
				defer func() { e.Close() }()
				var hops int64
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if e.Done() {
						b.StopTimer()
						e.Close()
						seed++
						e = mk(seed)
						b.StartTimer()
					}
					before := e.Progress().TotalHops
					if err := e.Step(); err != nil {
						b.Fatal(err)
					}
					hops += e.Progress().TotalHops - before
				}
				b.ReportMetric(float64(hops)/b.Elapsed().Seconds(), "hops/s")
			})
		}
	}
}
