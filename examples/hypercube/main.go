// Hypercube demonstrates that the d-dimensional side-2 mesh is exactly the
// d-cube — the network of the earliest greedy hot-potato results the paper
// builds on (Borodin-Hopcroft, Prager, Hajek) — and reproduces the classic
// observation that greedy deflection routing on the cube is near-optimal
// in practice: random permutations on the 256-node 8-cube route in about
// d steps, two orders of magnitude below Hajek's 2k+d worst-case bound.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hotpotato/internal/core"
	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
	"hotpotato/internal/stats"
	"hotpotato/internal/workload"
)

func main() {
	log.SetFlags(0)
	tb := stats.NewTable("greedy hot-potato routing on the d-cube (side-2 mesh)",
		"d", "nodes", "k", "steps_mean", "steps_max", "hajek_2k+d", "speedup")
	for _, d := range []int{4, 6, 8} {
		m, err := mesh.New(d, 2)
		if err != nil {
			log.Fatal(err)
		}
		var steps []int
		k := m.Size()
		for seed := int64(0); seed < 10; seed++ {
			rng := rand.New(rand.NewSource(seed))
			packets := workload.Permutation(m, rng)
			engine, err := sim.New(m, core.NewFewestGoodFirst(), packets, sim.Options{
				Seed:       seed,
				Validation: sim.ValidateGreedy,
			})
			if err != nil {
				log.Fatal(err)
			}
			res, err := engine.Run()
			if err != nil {
				log.Fatal(err)
			}
			if res.Delivered != res.Total {
				log.Fatalf("d=%d seed=%d: %d/%d delivered", d, seed, res.Delivered, res.Total)
			}
			steps = append(steps, res.Steps)
		}
		sm := stats.SummarizeInts(steps)
		hajek := 2*k + d
		tb.AddRow(d, m.Size(), k, sm.Mean, int(sm.Max), hajek, float64(hajek)/sm.Mean)
	}
	tb.AddNote("random full permutations, 10 seeds; hajek_2k+d is the worst-case bound for Hajek's algorithm")
	tb.AddNote("a packet on the cube is 'restricted' iff it differs from its destination in exactly one bit")
	if err := tb.WriteText(log.Writer()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nBorodin & Hopcroft (1985): \"experimentally the algorithm appears promising\" - confirmed.")
}
