// Quickstart: route a random permutation on a 16x16 mesh with the paper's
// restricted-priority greedy hot-potato algorithm, with full validation and
// potential tracking, and compare the measured routing time with the
// Theorem-20 bound.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hotpotato/internal/analysis"
	"hotpotato/internal/core"
	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
	"hotpotato/internal/workload"
)

func main() {
	log.SetFlags(0)

	// 1. Build the network: a 2-dimensional 16x16 mesh.
	m, err := mesh.New(2, 16)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Generate a routing problem: a random permutation (every node
	//    sends one packet, every node receives one packet).
	rng := rand.New(rand.NewSource(42))
	packets := workload.Permutation(m, rng)

	// 3. Pick the paper's algorithm: greedy, restricted packets first.
	policy := core.NewRestrictedPriority()

	// 4. Run under the strictest validation: the engine checks the
	//    hot-potato constraints, Definition 6 (greediness) and
	//    Definition 18 (restricted preference) at every node, every step.
	engine, err := sim.New(m, policy, packets, sim.Options{
		Seed:       42,
		Validation: sim.ValidateRestricted,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 5. Attach the potential tracker: it maintains phi_p = dist_p + C_p
	//    per Figure 6 and checks Property 8 and Lemmas 12/14/15 live.
	tracker := core.NewTracker(m, packets, core.TrackerOptions{SelfCheckEvery: 64})
	engine.AddObserver(tracker)

	result, err := engine.Run()
	if err != nil {
		log.Fatal(err)
	}

	bound := analysis.Theorem20Bound(m.Side(), result.Total)
	fmt.Printf("routed %d packets on %v in %d steps\n", result.Delivered, m, result.Steps)
	fmt.Printf("deflections: %d of %d hops (%.1f%%)\n",
		result.TotalDeflections, result.TotalHops,
		100*float64(result.TotalDeflections)/float64(result.TotalHops))
	fmt.Printf("theorem 20 bound: %.0f steps -> measured/bound = %.4f\n",
		bound, float64(result.Steps)/bound)
	fmt.Printf("potential: Phi(0) = %d, final = %d\n", tracker.Phi0(), tracker.Phi())
	fmt.Printf("invariant checks: %s\n", tracker.Violations())
}
