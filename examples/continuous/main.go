// Continuous demonstrates the dynamic-traffic API: Bernoulli sources
// inject packets every step through the engine's injection hook, the
// network runs in steady state, and the sources drain at the end. The
// program sweeps the offered load and prints the latency/backlog curve —
// the operating regime of the deflection networks that motivated the
// paper ([GG], [Ma], [ZA]).
package main

import (
	"fmt"
	"log"

	"hotpotato/internal/core"
	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
	"hotpotato/internal/stats"
	"hotpotato/internal/traffic"
)

func main() {
	log.SetFlags(0)
	const (
		n        = 16
		genSteps = 500
	)
	m, err := mesh.New(2, n)
	if err != nil {
		log.Fatal(err)
	}

	tb := stats.NewTable(
		fmt.Sprintf("steady-state deflection routing on %v (%d generation steps + drain)", m, genSteps),
		"rate/node", "generated", "lat_mean", "lat_p99", "max_backlog", "drain_steps")
	for _, rate := range []float64{0.02, 0.05, 0.10, 0.20, 0.35} {
		src, err := traffic.NewBernoulli(rate, genSteps)
		if err != nil {
			log.Fatal(err)
		}
		engine, err := sim.New(m, core.NewRestrictedPriority(), nil, sim.Options{
			Seed:       7,
			Validation: sim.ValidateGreedy,
			MaxSteps:   genSteps * 50,
		})
		if err != nil {
			log.Fatal(err)
		}
		engine.SetInjector(src)
		if _, err := engine.Run(); err != nil {
			log.Fatal(err)
		}

		var lats []float64
		for _, p := range engine.Packets() {
			if l := src.Latency(p); l >= 0 {
				lats = append(lats, float64(l))
			}
		}
		s := stats.Summarize(lats)
		tb.AddRow(rate, src.Generated(), s.Mean, s.P99, src.MaxBacklog(), engine.Time()-genSteps)
	}
	tb.AddNote("latency = generation to arrival (source queueing included)")
	tb.AddNote("when the backlog and drain time explode, the offered load has crossed the network's saturation throughput")
	if err := tb.WriteText(log.Writer()); err != nil {
		log.Fatal(err)
	}
}
