// Permutation reproduces the remark after Theorem 20: when every node is
// the origin of one packet (k = n^2), the routing problem splits into two
// independent sub-problems by origin parity — the parity of (coordinate sum
// + time) is invariant, so the classes never meet — and Theorem 20 applied
// to each half gives the strengthened bound 8n^2.
//
// The program routes full random permutations for several n, verifies the
// non-interaction invariant at runtime, and compares measured times with
// both the naive bound 8*sqrt(2)*n^2 and the parity-split bound 8n^2.
package main

import (
	"log"
	"math/rand"

	"hotpotato/internal/analysis"
	"hotpotato/internal/core"
	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
	"hotpotato/internal/stats"
	"hotpotato/internal/workload"
)

func main() {
	log.SetFlags(0)
	tb := stats.NewTable("full permutations (k = n^2), restricted-priority greedy",
		"n", "steps", "naive_bound", "parity_bound_8n2", "steps/8n2", "mixed_node_steps")
	for _, n := range []int{8, 16, 24, 32} {
		m, err := mesh.New(2, n)
		if err != nil {
			log.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(n)))
		packets := workload.Permutation(m, rng)

		// Origin parity of each packet: the class it stays in forever.
		parity := make(map[int]int, len(packets))
		for _, p := range packets {
			parity[p.ID] = (m.CoordAxis(p.Src, 0) + m.CoordAxis(p.Src, 1)) & 1
		}

		engine, err := sim.New(m, core.NewRestrictedPriority(), packets, sim.Options{
			Seed:       int64(n),
			Validation: sim.ValidateRestricted,
		})
		if err != nil {
			log.Fatal(err)
		}

		// Count node-steps where the two parity classes share a node; the
		// invariant says this never happens.
		mixed := 0
		engine.AddObserver(sim.ObserverFunc(func(rec *sim.StepRecord) {
			for lo := 0; lo < len(rec.Moves); {
				hi := lo + 1
				p0 := parity[rec.Moves[lo].Packet.ID]
				bad := false
				for hi < len(rec.Moves) && rec.Moves[hi].From == rec.Moves[lo].From {
					if parity[rec.Moves[hi].Packet.ID] != p0 {
						bad = true
					}
					hi++
				}
				if bad {
					mixed++
				}
				lo = hi
			}
		}))

		result, err := engine.Run()
		if err != nil {
			log.Fatal(err)
		}
		naive := analysis.Theorem20Bound(n, n*n)
		parityBound := analysis.FullPermutationBound(n)
		tb.AddRow(n, result.Steps, naive, parityBound,
			float64(result.Steps)/parityBound, mixed)
	}
	tb.AddNote("mixed_node_steps = node-steps where both parity classes were present (invariant: 0)")
	if err := tb.WriteText(log.Writer()); err != nil {
		log.Fatal(err)
	}
}
