// Optical models the motivating domain of Section 1: deflection routing in
// optical networks, where buffering a packet requires an expensive
// optical-electronic conversion, so blocked packets are deflected instead.
//
// The program routes a bursty hot-spot batch (half the traffic aimed at one
// "popular server" node) and reports what deflection costs in practice:
// the per-packet delay distribution against the ideal (shortest-path)
// delay, the deflection histogram, and the worst route stretch.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"hotpotato/internal/core"
	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
	"hotpotato/internal/stats"
	"hotpotato/internal/workload"
)

func main() {
	log.SetFlags(0)
	const (
		n       = 16
		packets = 192
		hotFrac = 0.5
		seed    = 7
	)
	m, err := mesh.New(2, n)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	batch, err := workload.HotSpot(m, packets, hotFrac, rng)
	if err != nil {
		log.Fatal(err)
	}

	engine, err := sim.New(m, core.NewRestrictedPriority(), batch, sim.Options{
		Seed:       seed,
		Validation: sim.ValidateRestricted,
	})
	if err != nil {
		log.Fatal(err)
	}
	result, err := engine.Run()
	if err != nil {
		log.Fatal(err)
	}

	// Per-packet delay vs ideal shortest-path delay.
	var delays, ideals, stretches []float64
	deflHist := stats.NewIntHistogram()
	maxStretchID := -1
	maxStretch := 0.0
	for _, p := range batch {
		ideal := float64(m.Dist(p.Src, p.Dst))
		delay := float64(p.Delay())
		delays = append(delays, delay)
		ideals = append(ideals, ideal)
		deflHist.Add(p.Deflections)
		if ideal > 0 {
			s := delay / ideal
			stretches = append(stretches, s)
			if s > maxStretch {
				maxStretch, maxStretchID = s, p.ID
			}
		}
	}
	dsum := stats.Summarize(delays)
	isum := stats.Summarize(ideals)
	ssum := stats.Summarize(stretches)

	fmt.Printf("bursty hot-spot batch on %v: %d packets, %.0f%% to one node\n",
		m, result.Total, 100*hotFrac)
	fmt.Printf("batch completed in %d steps; %d deflections over %d hops\n",
		result.Steps, result.TotalDeflections, result.TotalHops)
	fmt.Printf("delay:  mean %.1f  p90 %.0f  max %.0f   (ideal mean %.1f)\n",
		dsum.Mean, dsum.P90, dsum.Max, isum.Mean)
	fmt.Printf("route stretch (delay/ideal): mean %.2f  p90 %.2f  max %.2f (packet %d)\n",
		ssum.Mean, ssum.P90, maxStretch, maxStretchID)

	fmt.Println("\ndeflections per packet:")
	if err := deflHist.Write(os.Stdout, 40); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nno buffering was used anywhere: every packet moved every step,")
	fmt.Println("the deflection cost above is the whole price of bufferless routing.")
}
