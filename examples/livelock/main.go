// Livelock demonstrates why plain greediness is not enough (Section 1.2)
// and what the paper's restriction buys:
//
//  1. A policy that violates greediness is caught by the engine validator.
//  2. A malicious (non-greedy) deterministic policy drives two packets into
//     a provable livelock, which the engine's configuration-recurrence
//     detector reports.
//  3. The deterministic restricted-priority policy — a member of the class
//     Theorem 20 bounds — terminates within the bound on an adversarial
//     instance stream, with no livelock possible.
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"

	"hotpotato/internal/analysis"
	"hotpotato/internal/core"
	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
	"hotpotato/internal/workload"
)

// lazyPolicy is hot-potato legal but not greedy: it deflects every packet
// it can, using good arcs only when no bad arc is free.
type lazyPolicy struct{}

func (lazyPolicy) Name() string        { return "lazy" }
func (lazyPolicy) Deterministic() bool { return true }
func (lazyPolicy) Route(ns *sim.NodeState, out []mesh.Dir, rng *rand.Rand) {
	taken := make(map[mesh.Dir]bool)
	for i := range ns.Packets {
		// Prefer arcs that are NOT good for the packet.
		for pass := 0; pass < 2 && out[i] == mesh.NoDir; pass++ {
			for dir := mesh.Dir(0); int(dir) < ns.Mesh.DirCount(); dir++ {
				if taken[dir] || !ns.HasArc(dir) {
					continue
				}
				good := ns.Mesh.IsGoodDir(ns.Node, ns.Packets[i].Dst, dir)
				if (pass == 0 && !good) || pass == 1 {
					out[i] = dir
					taken[dir] = true
					break
				}
			}
		}
	}
}

// swapPolicy bounces any packet at x0=1 right and any packet at x0=2 left,
// forever, on a line. It is deterministic and hot-potato legal, so two
// packets caught between nodes 1 and 2 repeat their configuration every 2
// steps: a true livelock.
type swapPolicy struct{}

func (swapPolicy) Name() string        { return "swap" }
func (swapPolicy) Deterministic() bool { return true }
func (swapPolicy) Route(ns *sim.NodeState, out []mesh.Dir, rng *rand.Rand) {
	for i, p := range ns.Packets {
		if ns.Mesh.CoordAxis(p.Node, 0) == 1 {
			out[i] = mesh.DirPlus(0)
		} else {
			out[i] = mesh.DirMinus(0)
		}
	}
}

func main() {
	log.SetFlags(0)

	// Part 1: the validator rejects non-greedy behavior.
	m2, err := mesh.New(2, 8)
	if err != nil {
		log.Fatal(err)
	}
	p := sim.NewPacket(0, m2.ID([]int{1, 1}), m2.ID([]int{6, 1}))
	e, err := sim.New(m2, lazyPolicy{}, []*sim.Packet{p}, sim.Options{Validation: sim.ValidateGreedy})
	if err != nil {
		log.Fatal(err)
	}
	stepErr := e.Step()
	fmt.Println("1) lazy (non-greedy) policy under ValidateGreedy:")
	fmt.Printf("   engine says: %v\n", stepErr)
	if !errors.Is(stepErr, sim.ErrNotGreedy) {
		log.Fatal("expected a greediness violation")
	}

	// Part 2: a real livelock, detected by configuration recurrence.
	line, err := mesh.New(1, 4)
	if err != nil {
		log.Fatal(err)
	}
	a := sim.NewPacket(0, 1, 0)
	b := sim.NewPacket(1, 2, 3)
	e, err = sim.New(line, swapPolicy{}, []*sim.Packet{a, b}, sim.Options{
		Validation:     sim.ValidateBasic,
		DetectLivelock: true,
		MaxSteps:       1000,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n2) malicious swap policy on a 4-node line:")
	fmt.Printf("   livelocked=%v after %d steps, delivered %d/%d\n",
		res.Livelocked, e.Time(), res.Delivered, res.Total)
	if !res.Livelocked {
		log.Fatal("expected a livelock")
	}

	// Part 3: the section-4 class cannot livelock — Theorem 20 bounds every
	// member, even fully deterministic ones, on every instance.
	m, err := mesh.New(2, 8)
	if err != nil {
		log.Fatal(err)
	}
	worst := 0.0
	const trials = 200
	for seed := int64(0); seed < trials; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := 4 + rng.Intn(61)
		packets, err := workload.UniformRandom(m, k, rng)
		if err != nil {
			log.Fatal(err)
		}
		e, err := sim.New(m, core.NewRestrictedPriorityDeterministic(), packets, sim.Options{
			Seed:           seed,
			Validation:     sim.ValidateRestricted,
			DetectLivelock: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			log.Fatal(err)
		}
		if res.Livelocked {
			log.Fatalf("restricted-priority livelocked at seed %d: contradicts Theorem 20", seed)
		}
		if r := float64(res.Steps) / analysis.Theorem20Bound(m.Side(), k); r > worst {
			worst = r
		}
	}
	fmt.Println("\n3) deterministic restricted-priority on", trials, "random instances:")
	fmt.Printf("   zero livelocks; worst measured/bound ratio = %.4f (Theorem 20 guarantees <= 1)\n", worst)
}
