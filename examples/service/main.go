// Command service is a load generator for hotpotatod: N concurrent
// submitters push jobs at the daemon, honour its 429 backpressure
// (Retry-After), follow one job's NDJSON stream, poll every accepted job
// to a terminal state, and finish by scraping /metrics. It exits non-zero
// if any accepted job is lost or fails — which makes it double as the CI
// smoke client.
//
// Demonstrating backpressure needs a small queue on the daemon side:
//
//	hotpotatod -addr :8080 -workers 1 -queue 2 &
//	go run ./examples/service -addr http://localhost:8080 -submitters 8 -jobs 4
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

func main() {
	var (
		addr       = flag.String("addr", "http://localhost:8080", "hotpotatod base URL")
		submitters = flag.Int("submitters", 4, "concurrent submitter goroutines")
		jobs       = flag.Int("jobs", 3, "jobs per submitter")
		spec       = flag.String("spec", `{"side": 6, "k": 24, "progress_every": 10}`, "job spec template (seed is filled per job)")
		retries    = flag.Int("retries", 100, "429 retries per job before giving up")
		follow     = flag.Bool("follow", true, "print the first accepted job's NDJSON stream")
		timeout    = flag.Duration("timeout", 2*time.Minute, "overall budget for all jobs to finish")
	)
	flag.Parse()
	if err := loadgen(*addr, *submitters, *jobs, *spec, *retries, *follow, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "service:", err)
		os.Exit(1)
	}
}

type jobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Error string `json:"error"`
}

// submit POSTs one job, retrying on 429 as the Retry-After header asks.
// It returns the job ID and how many times it was pushed back.
func submit(addr, spec string, retries int) (id string, backoffs int, err error) {
	for attempt := 0; ; attempt++ {
		resp, err := http.Post(addr+"/v1/jobs", "application/json", strings.NewReader(spec))
		if err != nil {
			return "", backoffs, err
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			var st jobStatus
			if err := json.Unmarshal(body, &st); err != nil {
				return "", backoffs, err
			}
			return st.ID, backoffs, nil
		case http.StatusTooManyRequests:
			if attempt >= retries {
				return "", backoffs, fmt.Errorf("gave up after %d backpressure rejections", attempt)
			}
			backoffs++
			wait := time.Second
			if ra := resp.Header.Get("Retry-After"); ra != "" {
				if d, err := time.ParseDuration(ra + "s"); err == nil {
					wait = d
				}
			}
			// Jitter below the advertised wait keeps N submitters from
			// stampeding the queue in lockstep.
			time.Sleep(wait / time.Duration(2+attempt%3))
		default:
			return "", backoffs, fmt.Errorf("POST /v1/jobs: %d: %s", resp.StatusCode, body)
		}
	}
}

// stream tails one job's NDJSON to stdout, line-counted.
func stream(addr, id string) (lines int, err error) {
	resp, err := http.Get(addr + "/v1/jobs/" + id + "/stream")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		lines++
		fmt.Printf("stream %s: %s\n", id, sc.Text())
	}
	return lines, sc.Err()
}

func loadgen(addr string, submitters, jobs int, specTemplate string, retries int, follow bool, timeout time.Duration) error {
	var (
		mu       sync.Mutex
		accepted []string
		rejected atomic.Int64
		firstID  = make(chan string, 1)
		errs     = make(chan error, submitters)
		wg       sync.WaitGroup
	)

	start := time.Now()
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for j := 0; j < jobs; j++ {
				// Distinct seeds keep the runs distinct; everything else
				// comes from the template.
				var spec map[string]any
				if err := json.Unmarshal([]byte(specTemplate), &spec); err != nil {
					errs <- err
					return
				}
				spec["seed"] = s*1000 + j + 1
				body, _ := json.Marshal(spec)
				id, backoffs, err := submit(addr, string(body), retries)
				rejected.Add(int64(backoffs))
				if err != nil {
					errs <- fmt.Errorf("submitter %d: %w", s, err)
					return
				}
				select {
				case firstID <- id:
				default:
				}
				mu.Lock()
				accepted = append(accepted, id)
				mu.Unlock()
			}
		}(s)
	}

	var (
		swg       sync.WaitGroup
		followed  string
		streamed  int
		streamErr error
	)
	if follow {
		// Tail the first accepted job while the rest of the load runs. An
		// empty id is the sentinel for "nothing was ever accepted".
		swg.Add(1)
		go func() {
			defer swg.Done()
			id := <-firstID
			if id == "" {
				return
			}
			followed = id
			streamed, streamErr = stream(addr, id)
		}()
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}

	// Poll every accepted job to a terminal state.
	deadline := time.Now().Add(timeout)
	states := make(map[string]string)
	for _, id := range accepted {
		for {
			if time.Now().After(deadline) {
				return fmt.Errorf("job %s still %q at the deadline", id, states[id])
			}
			resp, err := http.Get(addr + "/v1/jobs/" + id)
			if err != nil {
				return err
			}
			var st jobStatus
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err != nil {
				return err
			}
			states[id] = st.State
			if st.State == "done" || st.State == "checkpointed" {
				break
			}
			if st.State == "failed" {
				return fmt.Errorf("job %s failed: %s", id, st.Error)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	fmt.Printf("submitted %d jobs from %d submitters in %s: %d accepted, %d backpressure rejections absorbed\n",
		submitters*jobs, submitters, time.Since(start).Round(time.Millisecond), len(accepted), rejected.Load())
	if follow {
		select {
		case firstID <- "": // unblock the tail goroutine if it never got a job
		default:
		}
		swg.Wait()
		if streamErr != nil {
			return fmt.Errorf("stream: %w", streamErr)
		}
		if followed != "" {
			fmt.Printf("streamed %d NDJSON events from job %s\n", streamed, followed)
		}
	}

	// Final scrape: the daemon's own accounting of what just happened.
	resp, err := http.Get(addr + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "hotpotatod_jobs_") || strings.HasPrefix(line, "hotpotatod_queue_") {
			fmt.Println("metrics:", line)
		}
	}
	return sc.Err()
}
