// Command service is a load generator for hotpotatod: N concurrent
// submitters push jobs at the daemon, honour its 429 backpressure
// (Retry-After), follow one job's NDJSON stream, poll every accepted job
// to a terminal state, and finish by scraping /metrics. It exits non-zero
// if any accepted job is lost or fails — which makes it double as the CI
// smoke client.
//
// Demonstrating backpressure needs a small queue on the daemon side:
//
//	hotpotatod -addr :8080 -workers 1 -queue 2 &
//	go run ./examples/service -addr http://localhost:8080 -submitters 8 -jobs 4
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

func main() {
	var (
		addr       = flag.String("addr", "http://localhost:8080", "hotpotatod base URL")
		submitters = flag.Int("submitters", 4, "concurrent submitter goroutines")
		jobs       = flag.Int("jobs", 3, "jobs per submitter")
		spec       = flag.String("spec", `{"side": 6, "k": 24, "progress_every": 10}`, "job spec template (seed is filled per job)")
		retries    = flag.Int("retries", 100, "429 retries per job before giving up")
		follow     = flag.Bool("follow", true, "print the first accepted job's NDJSON stream")
		timeout    = flag.Duration("timeout", 2*time.Minute, "overall budget for all jobs to finish")
	)
	flag.Parse()
	if err := loadgen(*addr, *submitters, *jobs, *spec, *retries, *follow, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "service:", err)
		os.Exit(1)
	}
}

type jobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Error string `json:"error"`
}

// submit POSTs one job, retrying on 429. The sleep honours the server's
// Retry-After header as a floor (the daemon computes the exact token wait
// for throttled tenants), plus a jittered exponential component so N
// submitters hitting the same full queue spread out instead of retrying in
// lockstep. It returns the job ID and how the pushbacks split between
// queue backpressure and tenant throttling.
func submit(addr, spec string, retries int, rng *rand.Rand) (id string, queue429, tenant429 int, err error) {
	backoff := 50 * time.Millisecond
	for attempt := 0; ; attempt++ {
		resp, err := http.Post(addr+"/v1/jobs", "application/json", strings.NewReader(spec))
		if err != nil {
			return "", queue429, tenant429, err
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			var st jobStatus
			if err := json.Unmarshal(body, &st); err != nil {
				return "", queue429, tenant429, err
			}
			return st.ID, queue429, tenant429, nil
		case http.StatusTooManyRequests:
			if attempt >= retries {
				return "", queue429, tenant429, fmt.Errorf("gave up after %d backpressure rejections", attempt)
			}
			if strings.Contains(string(body), "tenant") {
				tenant429++
			} else {
				queue429++
			}
			// Retry-After is whole seconds; treat it as the floor the server
			// asked for, never retry sooner.
			floor := time.Duration(0)
			if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
				floor = time.Duration(secs) * time.Second
			}
			// Jittered exponential component on top: 0.5-1.5x of a doubling
			// backoff, capped so a long queue never strands a submitter.
			sleep := floor + time.Duration(float64(backoff)*(0.5+rng.Float64()))
			if backoff < 2*time.Second {
				backoff *= 2
			}
			time.Sleep(sleep)
		default:
			return "", queue429, tenant429, fmt.Errorf("POST /v1/jobs: %d: %s", resp.StatusCode, body)
		}
	}
}

// stream tails one job's NDJSON to stdout, line-counted.
func stream(addr, id string) (lines int, err error) {
	resp, err := http.Get(addr + "/v1/jobs/" + id + "/stream")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		lines++
		fmt.Printf("stream %s: %s\n", id, sc.Text())
	}
	return lines, sc.Err()
}

func loadgen(addr string, submitters, jobs int, specTemplate string, retries int, follow bool, timeout time.Duration) error {
	var (
		mu        sync.Mutex
		accepted  []string
		queuePush atomic.Int64 // queue-full 429 retries absorbed
		throttled atomic.Int64 // tenant-quota 429 retries absorbed
		firstID   = make(chan string, 1)
		errs      = make(chan error, submitters)
		wg        sync.WaitGroup
	)

	start := time.Now()
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(s) + 1)) // per-submitter jitter
			for j := 0; j < jobs; j++ {
				// Distinct seeds keep the runs distinct; everything else
				// comes from the template.
				var spec map[string]any
				if err := json.Unmarshal([]byte(specTemplate), &spec); err != nil {
					errs <- err
					return
				}
				spec["seed"] = s*1000 + j + 1
				body, _ := json.Marshal(spec)
				id, q429, t429, err := submit(addr, string(body), retries, rng)
				queuePush.Add(int64(q429))
				throttled.Add(int64(t429))
				if err != nil {
					errs <- fmt.Errorf("submitter %d: %w", s, err)
					return
				}
				select {
				case firstID <- id:
				default:
				}
				mu.Lock()
				accepted = append(accepted, id)
				mu.Unlock()
			}
		}(s)
	}

	var (
		swg       sync.WaitGroup
		followed  string
		streamed  int
		streamErr error
	)
	if follow {
		// Tail the first accepted job while the rest of the load runs. An
		// empty id is the sentinel for "nothing was ever accepted".
		swg.Add(1)
		go func() {
			defer swg.Done()
			id := <-firstID
			if id == "" {
				return
			}
			followed = id
			streamed, streamErr = stream(addr, id)
		}()
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}

	// Poll every accepted job to a terminal state.
	deadline := time.Now().Add(timeout)
	states := make(map[string]string)
	for _, id := range accepted {
		for {
			if time.Now().After(deadline) {
				return fmt.Errorf("job %s still %q at the deadline", id, states[id])
			}
			resp, err := http.Get(addr + "/v1/jobs/" + id)
			if err != nil {
				return err
			}
			var st jobStatus
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err != nil {
				return err
			}
			states[id] = st.State
			if st.State == "done" || st.State == "checkpointed" {
				break
			}
			if st.State == "failed" || st.State == "quarantined" {
				return fmt.Errorf("job %s %s: %s", id, st.State, st.Error)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	fmt.Printf("submitted %d jobs from %d submitters in %s: %d accepted, %d queue-full retries, %d tenant-throttle retries absorbed\n",
		submitters*jobs, submitters, time.Since(start).Round(time.Millisecond), len(accepted), queuePush.Load(), throttled.Load())
	if follow {
		select {
		case firstID <- "": // unblock the tail goroutine if it never got a job
		default:
		}
		swg.Wait()
		if streamErr != nil {
			return fmt.Errorf("stream: %w", streamErr)
		}
		if followed != "" {
			fmt.Printf("streamed %d NDJSON events from job %s\n", streamed, followed)
		}
	}

	// Final scrape: the daemon's own accounting of what just happened.
	resp, err := http.Get(addr + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "hotpotatod_jobs_") || strings.HasPrefix(line, "hotpotatod_queue_") {
			fmt.Println("metrics:", line)
		}
	}
	return sc.Err()
}
