package hotpotato_test

import (
	"math/rand"
	"testing"

	"hotpotato/internal/core"
	"hotpotato/internal/mesh"
	"hotpotato/internal/policylab"
	"hotpotato/internal/policylab/search"
	"hotpotato/internal/sim"
	"hotpotato/internal/workload"
)

// BenchmarkConflictTraceOverhead prices the engine's conflict tap: the
// "off" variant is a steady-state Step with a nil ConflictObserver — the
// default every non-traced run pays — and must stay at 0 allocs/op and at
// the plain engine's ns/op (a single predicted branch; CI gates both via
// benchjson -assert-zero-allocs and the bench-smoke comparison). The "on"
// variant steps the same workload into a live Recorder, pricing what
// opting in costs.
func BenchmarkConflictTraceOverhead(b *testing.B) {
	m := mesh.MustNew(2, 32)
	for _, mode := range []struct {
		name   string
		traced bool
	}{
		{"off", false},
		{"on", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			rebuild := func(seed int64) *sim.Engine {
				rng := rand.New(rand.NewSource(seed))
				packets, err := workload.FullLoad(m, 2, rng)
				if err != nil {
					b.Fatal(err)
				}
				e, err := sim.New(m, core.NewRestrictedPriority(), packets, sim.Options{Seed: seed, Validation: sim.ValidateGreedy})
				if err != nil {
					b.Fatal(err)
				}
				if mode.traced {
					e.SetConflictObserver(policylab.NewRecorder(4096))
				}
				// Prime the lazily grown buffers with untimed steps until
				// contention peaks, so even a -benchtime 1x run measures the
				// steady state the 0 allocs/op contract is stated for.
				for i := 0; i < 32 && !e.Done(); i++ {
					if err := e.Step(); err != nil {
						b.Fatal(err)
					}
				}
				return e
			}
			b.ReportAllocs()
			b.StopTimer()
			e, seed := rebuild(1), int64(1)
			b.StartTimer()
			for i := 0; i < b.N; i++ {
				if e.Done() {
					b.StopTimer()
					seed++
					e = rebuild(seed)
					b.StartTimer()
				}
				if err := e.Step(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCounterfactualReplay times one full replay (baseline + one
// alternative arm over a 64-step window) from a mid-run checkpoint.
func BenchmarkCounterfactualReplay(b *testing.B) {
	m := mesh.MustNew(2, 16)
	rng := rand.New(rand.NewSource(1))
	packets, err := workload.FullLoad(m, 1, rng)
	if err != nil {
		b.Fatal(err)
	}
	e, err := sim.New(m, core.NewRestrictedPriority(), packets, sim.Options{Seed: 1, Validation: sim.ValidateGreedy})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := e.Step(); err != nil {
			b.Fatal(err)
		}
	}
	snap, err := e.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	cfg := policylab.ReplayConfig{
		Baseline:     "restricted",
		Alternatives: []string{"oldest"},
		Steps:        64,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := policylab.Replay(snap, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPolicySearchGeneration times one full fitness evaluation of a
// weighted-policy candidate over the default three-entry panel.
func BenchmarkPolicySearchGeneration(b *testing.B) {
	cfg := search.Config{
		Side:        8,
		Seeds:       []int64{1},
		Population:  4,
		Generations: 1,
		Seed:        1,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := search.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
