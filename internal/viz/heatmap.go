package viz

import (
	"fmt"
	"strings"

	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
)

// DeflectionCounter accumulates per-node deflection counts over a run. It
// implements sim.Observer; attach it and render with Heatmap afterwards to
// see where a policy pays its deflections (edge effects, hotspots,
// diagonal pressure under corner-rush traffic).
type DeflectionCounter struct {
	counts []int
	total  int
}

var _ sim.Observer = (*DeflectionCounter)(nil)

// NewDeflectionCounter builds a counter for the given network.
func NewDeflectionCounter(m *mesh.Mesh) *DeflectionCounter {
	return &DeflectionCounter{counts: make([]int, m.Size())}
}

// OnStep implements sim.Observer.
func (dc *DeflectionCounter) OnStep(rec *sim.StepRecord) {
	for i := range rec.Moves {
		if !rec.Moves[i].Advanced {
			dc.counts[rec.Moves[i].From]++
			dc.total++
		}
	}
}

// Counts returns the per-node deflection counts.
func (dc *DeflectionCounter) Counts() []int { return dc.counts }

// Total returns the total number of deflections observed.
func (dc *DeflectionCounter) Total() int { return dc.total }

// heatRunes maps intensity deciles to glyphs, light to heavy.
var heatRunes = []string{".", "1", "2", "3", "4", "5", "6", "7", "8", "9", "#"}

// Heatmap renders per-node counts on a 2-D network as a text heat map:
// '.' for zero, digits 1-9 for rising deciles of the maximum, '#' for the
// hottest nodes.
func Heatmap(m *mesh.Mesh, counts []int, title string) (string, error) {
	if len(counts) != m.Size() {
		return "", fmt.Errorf("viz: counts has %d entries for %d nodes", len(counts), m.Size())
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	grid, err := Grid2D(m, func(id mesh.NodeID) string {
		c := counts[id]
		if c == 0 {
			return heatRunes[0]
		}
		return heatRunes[1+c*9/maxCount]
	})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	fmt.Fprintf(&b, "(max per node: %d)\n\n", maxCount)
	b.WriteString(grid)
	return b.String(), nil
}
