package viz

import (
	"strings"
	"testing"

	"hotpotato/internal/mesh"
)

func TestGrid2D(t *testing.T) {
	m := mesh.MustNew(2, 3)
	out, err := Grid2D(m, func(id mesh.NodeID) string { return "x" })
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if strings.Count(out, "x") != 9 {
		t.Errorf("expected 9 labels:\n%s", out)
	}
}

func TestGrid2DOrientation(t *testing.T) {
	m := mesh.MustNew(2, 2)
	out, err := Grid2D(m, func(id mesh.NodeID) string {
		if id == m.ID([]int{0, 1}) {
			return "T" // top-left
		}
		if id == m.ID([]int{1, 0}) {
			return "R" // bottom-right
		}
		return "."
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if !strings.Contains(lines[0], "T") || !strings.Contains(lines[1], "R") {
		t.Errorf("orientation wrong:\n%s", out)
	}
}

func TestGrid2DRejectsOtherDims(t *testing.T) {
	m := mesh.MustNew(3, 3)
	if _, err := Grid2D(m, func(mesh.NodeID) string { return "" }); err == nil {
		t.Error("3-D mesh accepted")
	}
}

func TestGrid2DTruncatesLongLabels(t *testing.T) {
	m := mesh.MustNew(2, 2)
	out, err := Grid2D(m, func(mesh.NodeID) string { return "abcdef" })
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "abcd") {
		t.Errorf("label not truncated:\n%s", out)
	}
}

func TestFigure1(t *testing.T) {
	out, err := Figure1(4)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Figure 1") || strings.Count(out, "v") < 12 {
		t.Errorf("figure 1 content wrong:\n%s", out)
	}
	if _, err := Figure1(1); err == nil {
		t.Error("Figure1(1) accepted")
	}
}

func TestFigure2(t *testing.T) {
	out, err := Figure2(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, letter := range []string{"a", "b", "c", "d"} {
		if strings.Count(out, letter) < 4 {
			t.Errorf("class %q underrepresented:\n%s", letter, out)
		}
	}
}

func TestFigure3And4(t *testing.T) {
	m := mesh.MustNew(2, 4)
	loads := make([]int, m.Size())
	loads[m.ID([]int{1, 1})] = 3 // bad
	loads[m.ID([]int{2, 1})] = 4 // bad
	loads[m.ID([]int{0, 0})] = 1 // good
	f3, err := Figure3(m, loads)
	if err != nil {
		t.Fatal(err)
	}
	_, grid, found := strings.Cut(f3, "\n\n")
	if !found || strings.Count(grid, "B") != 2 || !strings.Contains(grid, "1") {
		t.Errorf("figure 3 wrong:\n%s", f3)
	}
	f4, err := Figure4(m, loads)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f4, "total surface arcs") {
		t.Errorf("figure 4 missing total:\n%s", f4)
	}
	// Both bad nodes are on the mesh edge in 2-neighbor terms: every one of
	// their 4 directions leads to a good or absent 2-neighbor, so F = 8.
	if !strings.Contains(f4, "F(t) = 8") {
		t.Errorf("figure 4 F(t) wrong:\n%s", f4)
	}
	if _, err := Figure3(m, []int{1}); err == nil {
		t.Error("short loads accepted by Figure3")
	}
	if _, err := Figure4(m, []int{1}); err == nil {
		t.Error("short loads accepted by Figure4")
	}
}

func TestFigure5And6Static(t *testing.T) {
	if !strings.Contains(Figure5(), "Type A") || !strings.Contains(Figure5(), "Type B") {
		t.Error("figure 5 missing type descriptions")
	}
	if !strings.Contains(Figure6(), "C_q(t-1) - 2") {
		t.Error("figure 6 missing the switch rule")
	}
}
