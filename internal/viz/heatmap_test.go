package viz

import (
	"math/rand"
	"strings"
	"testing"

	"hotpotato/internal/core"
	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
	"hotpotato/internal/workload"
)

func TestHeatmapRendering(t *testing.T) {
	m := mesh.MustNew(2, 4)
	counts := make([]int, m.Size())
	counts[m.ID([]int{1, 1})] = 100
	counts[m.ID([]int{2, 2})] = 10
	out, err := Heatmap(m, counts, "test heat")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "test heat") || !strings.Contains(out, "max per node: 100") {
		t.Errorf("header wrong:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Errorf("hottest glyph missing:\n%s", out)
	}
	if strings.Count(out, ".") < 10 {
		t.Errorf("cold nodes missing:\n%s", out)
	}
}

func TestHeatmapValidation(t *testing.T) {
	m := mesh.MustNew(2, 4)
	if _, err := Heatmap(m, []int{1, 2}, ""); err == nil {
		t.Error("short counts accepted")
	}
	if _, err := Heatmap(mesh.MustNew(3, 3), make([]int, 27), ""); err == nil {
		t.Error("3-D heatmap accepted")
	}
}

func TestHeatmapAllZero(t *testing.T) {
	m := mesh.MustNew(2, 3)
	out, err := Heatmap(m, make([]int, m.Size()), "")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out, ".") != 9 {
		t.Errorf("all-zero heatmap wrong:\n%s", out)
	}
}

// TestDeflectionCounterIntegration: the counter agrees with the engine's
// deflection total, and corner-rush deflections concentrate in the target
// quadrant (the congested half), demonstrating the intended use.
func TestDeflectionCounterIntegration(t *testing.T) {
	m := mesh.MustNew(2, 8)
	rng := rand.New(rand.NewSource(3))
	packets, err := workload.CornerRush(m, 24, rng)
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.New(m, core.NewRestrictedPriority(), packets, sim.Options{
		Seed: 3, Validation: sim.ValidateRestricted,
	})
	if err != nil {
		t.Fatal(err)
	}
	dc := NewDeflectionCounter(m)
	e.AddObserver(dc)
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if int64(dc.Total()) != res.TotalDeflections {
		t.Errorf("counter total %d != engine %d", dc.Total(), res.TotalDeflections)
	}
	sum := 0
	for _, c := range dc.Counts() {
		sum += c
	}
	if sum != dc.Total() {
		t.Errorf("counts sum %d != total %d", sum, dc.Total())
	}
	if _, err := Heatmap(m, dc.Counts(), "deflections"); err != nil {
		t.Fatal(err)
	}
}
