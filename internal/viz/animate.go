package viz

import (
	"fmt"
	"io"
	"strings"

	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
)

// Animator renders the first MaxFrames steps of a 2-D run as text frames:
// per node, the number of packets (or '.'), with bad nodes (more than d
// packets) highlighted as B, mirroring Figure 3's view live. It implements
// sim.Observer and writes each frame as it happens.
type Animator struct {
	mesh      *mesh.Mesh
	w         io.Writer
	maxFrames int
	frames    int
	err       error
}

var _ sim.Observer = (*Animator)(nil)

// NewAnimator builds an animator writing at most maxFrames frames to w.
// The mesh must be 2-dimensional.
func NewAnimator(m *mesh.Mesh, w io.Writer, maxFrames int) (*Animator, error) {
	if m.Dim() != 2 {
		return nil, fmt.Errorf("viz: animator needs a 2-dimensional mesh, got %v", m)
	}
	if maxFrames < 1 {
		return nil, fmt.Errorf("viz: animator needs at least one frame")
	}
	return &Animator{mesh: m, w: w, maxFrames: maxFrames}, nil
}

// Err returns the first write error, if any.
func (a *Animator) Err() error { return a.err }

// Frames returns the number of frames written.
func (a *Animator) Frames() int { return a.frames }

// OnStep implements sim.Observer: renders the configuration at the
// beginning of the step (the positions the moves depart from).
func (a *Animator) OnStep(rec *sim.StepRecord) {
	if a.frames >= a.maxFrames || a.err != nil {
		return
	}
	a.frames++
	loads := make([]int, a.mesh.Size())
	advanced, deflected := 0, 0
	for i := range rec.Moves {
		loads[rec.Moves[i].From]++
		if rec.Moves[i].Advanced {
			advanced++
		} else {
			deflected++
		}
	}
	grid, err := Grid2D(a.mesh, func(id mesh.NodeID) string {
		switch l := loads[id]; {
		case l > a.mesh.Dim():
			return "B"
		case l > 0:
			return fmt.Sprintf("%d", l)
		default:
			return "."
		}
	})
	if err != nil {
		a.err = err
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "t=%d: %d packets (%d advance, %d deflect)\n%s\n",
		rec.Time, len(rec.Moves), advanced, deflected, grid)
	if _, err := io.WriteString(a.w, b.String()); err != nil {
		a.err = err
	}
}
