// Package viz renders two-dimensional mesh states and the paper's six
// definitional figures as ASCII diagrams. The figures carry the same
// content as the paper's drawings: directions (Fig. 1), the 2-neighbor
// relation and its equivalence classes (Fig. 2), bad-node areas (Fig. 3),
// surface arcs (Fig. 4), restricted packet types (Fig. 5) and the
// potential-change rules (Fig. 6).
package viz

import (
	"fmt"
	"strings"

	"hotpotato/internal/mesh"
)

// Grid2D renders a 2-D mesh as a text grid using a caller-supplied label of
// up to three characters per node. Row 0 (the +x1 edge renders at the top
// so larger x1 is "up", matching the usual matrix-free orientation).
func Grid2D(m *mesh.Mesh, label func(id mesh.NodeID) string) (string, error) {
	if m.Dim() != 2 {
		return "", fmt.Errorf("viz: Grid2D needs a 2-dimensional mesh, got %v", m)
	}
	var b strings.Builder
	n := m.Side()
	for y := n - 1; y >= 0; y-- {
		for x := 0; x < n; x++ {
			if x > 0 {
				b.WriteByte(' ')
			}
			l := label(m.ID([]int{x, y}))
			if len(l) > 3 {
				l = l[:3]
			}
			fmt.Fprintf(&b, "%3s", l)
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// Figure1 renders direction "-" in the second coordinate of an n x n mesh:
// every node with x1 > 0 has an arc pointing down (decreasing x1), the set
// of arcs forming the direction class of Definition 3.
func Figure1(n int) (string, error) {
	if _, err := mesh.New(2, n); err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(fmt.Sprintf("Figure 1: direction \"-\" in coordinate 2 (here axis x1) on the %dx%d mesh.\n", n, n))
	b.WriteString("Every '|v' is one arc of the direction class; squares are nodes.\n\n")
	for y := n - 1; y >= 0; y-- {
		for x := 0; x < n; x++ {
			b.WriteString("[ ] ")
		}
		b.WriteByte('\n')
		if y > 0 {
			for x := 0; x < n; x++ {
				b.WriteString(" v  ")
			}
			b.WriteByte('\n')
		}
	}
	return b.String(), nil
}

// Figure2 renders the 2-neighbor equivalence classes of an n x n mesh: the
// transitive closure of the 2-neighbor relation partitions the nodes into
// 2^d = 4 classes (labelled a-d), each by coordinate parity; nodes with the
// same letter are mutually reachable by 2-neighbor hops.
func Figure2(n int) (string, error) {
	m, err := mesh.New(2, n)
	if err != nil {
		return "", err
	}
	letters := []string{"a", "b", "c", "d"}
	grid, err := Grid2D(m, func(id mesh.NodeID) string {
		return letters[m.ParityClass(id)]
	})
	if err != nil {
		return "", err
	}
	return "Figure 2: 2-neighbor equivalence classes (same letter = same class;\n" +
		"2-neighbors are two steps apart in one direction).\n\n" + grid, nil
}

// Figure3 renders a bad-node area: given per-node loads, bad nodes (more
// than d = 2 packets, Definition 9) print as 'B', occupied good nodes as
// their load, empty nodes as '.'.
func Figure3(m *mesh.Mesh, loads []int) (string, error) {
	if len(loads) != m.Size() {
		return "", fmt.Errorf("viz: loads has %d entries for %d nodes", len(loads), m.Size())
	}
	grid, err := Grid2D(m, func(id mesh.NodeID) string {
		switch l := loads[id]; {
		case l > m.Dim():
			return "B"
		case l > 0:
			return fmt.Sprintf("%d", l)
		default:
			return "."
		}
	})
	if err != nil {
		return "", err
	}
	return "Figure 3: an area of bad nodes ('B' holds more than d packets;\n" +
		"digits are good-node loads; '.' is empty).\n\n" + grid, nil
}

// Figure4 renders surface arcs: bad nodes print as 'B' and each bad node is
// annotated with the number of its surface arcs (Definition 11: arcs whose
// 2-neighbor is good or absent).
func Figure4(m *mesh.Mesh, loads []int) (string, error) {
	if len(loads) != m.Size() {
		return "", fmt.Errorf("viz: loads has %d entries for %d nodes", len(loads), m.Size())
	}
	surface := func(id mesh.NodeID) int {
		cnt := 0
		for dir := mesh.Dir(0); int(dir) < m.DirCount(); dir++ {
			n2, ok := m.TwoNeighbor(id, dir)
			if !ok || loads[n2] <= m.Dim() {
				cnt++
			}
		}
		return cnt
	}
	total := 0
	grid, err := Grid2D(m, func(id mesh.NodeID) string {
		if loads[id] > m.Dim() {
			s := surface(id)
			total += s
			return fmt.Sprintf("B%d", s)
		}
		if loads[id] > 0 {
			return fmt.Sprintf("%d", loads[id])
		}
		return "."
	})
	if err != nil {
		return "", err
	}
	return "Figure 4: surface arcs. 'B<f>' is a bad node with f surface arcs\n" +
		"(arcs toward a good or absent 2-neighbor, including mesh edges).\n\n" +
		grid + fmt.Sprintf("\ntotal surface arcs F(t) = %d\n", total), nil
}

// Figure5 renders the restricted-packet type classification (Section 4.1)
// on the scene of the paper's Figure 5: type A packets were restricted and
// advanced in the previous step; every other restricted packet is type B.
func Figure5() string {
	return `Figure 5: restricted packet types (Section 4.1).

A packet is *restricted* when it has exactly one good direction, i.e. it is
aligned with its destination on all axes but one.

  Type A: was restricted in the previous step AND advanced in it.
  Type B: every other restricted packet (just deflected, just became
          restricted, or just injected).

Scene (x0 to the right, packets marked at their node, dst in parens):

      . . . . . . . .
      . a>. . . . *a.      a: advanced along its row last step  -> type A
      . . b>. . *b. .      b: was deflected last step           -> type B
      . . . c^. . . .      c: restricted but moving on x1 after
      . . . (c) . . .         turning: had 2 good dirs before   -> type B
      . d>(d) . . . .      d: just injected beside its dst      -> type B

Only another restricted packet may deflect a restricted one (Definition 18),
and the deflector of a type-A packet is always type B.
`
}

// Figure6 renders the potential-change rules of Section 4.2.
func Figure6() string {
	return `Figure 6: changes in the potential of packets in one step (Section 4.2).

phi_p(t) = dist_p(t) + C_p(t), with C_p the "spare potential":

  state of p after step t          | new C_p
  ---------------------------------+---------------------------
  arrived at its destination       | 0
  not restricted                   | 2n
  restricted, type B               | 2n
  restricted, type A, and p did    |
    not deflect a type-A packet    | C_p(t-1) - 2
  restricted, type A, and p        |
    deflected the type-A packet q  | C_q(t-1) - 2   (the switch)

A type-A packet therefore burns 2 spare units per advancing step (total
step change: -1 distance - 2 spare = -3), and when a type-B packet deflects
a type-A packet they swap countdowns, so the pair's total potential changes
exactly as if the type-A packet had advanced.
`
}
