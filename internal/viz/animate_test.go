package viz

import (
	"math/rand"
	"strings"
	"testing"

	"hotpotato/internal/core"
	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
	"hotpotato/internal/workload"
)

func TestAnimatorValidation(t *testing.T) {
	if _, err := NewAnimator(mesh.MustNew(3, 3), &strings.Builder{}, 5); err == nil {
		t.Error("3-D mesh accepted")
	}
	if _, err := NewAnimator(mesh.MustNew(2, 4), &strings.Builder{}, 0); err == nil {
		t.Error("zero frames accepted")
	}
}

func TestAnimatorFrames(t *testing.T) {
	m := mesh.MustNew(2, 6)
	rng := rand.New(rand.NewSource(1))
	packets, err := workload.UniformRandom(m, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.New(m, core.NewRestrictedPriority(), packets, sim.Options{
		Seed: 1, Validation: sim.ValidateRestricted,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	anim, err := NewAnimator(m, &sb, 3)
	if err != nil {
		t.Fatal(err)
	}
	e.AddObserver(anim)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if anim.Err() != nil {
		t.Fatal(anim.Err())
	}
	if anim.Frames() != 3 {
		t.Errorf("Frames = %d, want 3 (capped)", anim.Frames())
	}
	out := sb.String()
	for _, want := range []string{"t=0:", "t=1:", "t=2:", "advance", "deflect"} {
		if !strings.Contains(out, want) {
			t.Errorf("animation missing %q", want)
		}
	}
	if strings.Contains(out, "t=3:") {
		t.Error("frame cap not honored")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) {
	return 0, strings.NewReader("").UnreadByte() // any error
}

func TestAnimatorWriteError(t *testing.T) {
	m := mesh.MustNew(2, 4)
	p := sim.NewPacket(0, 0, 15)
	e, err := sim.New(m, core.NewRestrictedPriority(), []*sim.Packet{p}, sim.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	anim, err := NewAnimator(m, failWriter{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	e.AddObserver(anim)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if anim.Err() == nil {
		t.Error("write error not surfaced")
	}
}
