package traffic

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"

	"hotpotato/internal/mesh"
)

// Injection-trace format: a line-oriented record of every injected packet,
// replayable deterministically on any engine.
//
//	hotpotato-inj v1
//	mesh <dim> <side> <wrap>
//	i <step> <src> <dst> <class>
//	...
//
// Steps are non-decreasing; src/dst are node IDs of the recorded mesh.
// Blank lines and lines starting with '#' are ignored on read.

const traceMagic = "hotpotato-inj v1"

// TraceEvent is one recorded injection.
type TraceEvent struct {
	Step  int
	Src   mesh.NodeID
	Dst   mesh.NodeID
	Class int
}

// TraceWriter streams injection events in the trace format. Errors are
// sticky: the first write failure is retained and reported by Err and
// Flush, so Record calls stay unchecked on the injection hot path.
type TraceWriter struct {
	w    *bufio.Writer
	last int
	err  error
}

// NewTraceWriter writes the trace header for mesh m and returns the writer.
func NewTraceWriter(w io.Writer, m *mesh.Mesh) (*TraceWriter, error) {
	bw := bufio.NewWriter(w)
	wrap := 0
	if m.Wrap() {
		wrap = 1
	}
	if _, err := fmt.Fprintf(bw, "%s\nmesh %d %d %d\n", traceMagic, m.Dim(), m.Side(), wrap); err != nil {
		return nil, fmt.Errorf("traffic: write trace header: %w", err)
	}
	return &TraceWriter{w: bw, last: -1}, nil
}

// Record appends one injection event.
func (tw *TraceWriter) Record(step int, src, dst mesh.NodeID, class int) {
	if tw.err != nil {
		return
	}
	if step < tw.last {
		tw.err = fmt.Errorf("traffic: trace step %d after %d (must be non-decreasing)", step, tw.last)
		return
	}
	tw.last = step
	if _, err := fmt.Fprintf(tw.w, "i %d %d %d %d\n", step, src, dst, class); err != nil {
		tw.err = err
	}
}

// Err returns the first error encountered, if any.
func (tw *TraceWriter) Err() error { return tw.err }

// Flush drains the buffer and returns the first error of the whole stream.
func (tw *TraceWriter) Flush() error {
	if tw.err != nil {
		return tw.err
	}
	tw.err = tw.w.Flush()
	return tw.err
}

// ReadTrace parses a trace and validates it against mesh m: the recorded
// geometry must match and every node ID must be in range.
func ReadTrace(r io.Reader, m *mesh.Mesh) ([]TraceEvent, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	next := func() (string, bool) {
		for sc.Scan() {
			line++
			s := sc.Text()
			if s == "" || s[0] == '#' {
				continue
			}
			return s, true
		}
		return "", false
	}

	s, ok := next()
	if !ok || s != traceMagic {
		return nil, fmt.Errorf("traffic: trace line %d: missing %q header", line, traceMagic)
	}
	s, ok = next()
	if !ok {
		return nil, fmt.Errorf("traffic: trace line %d: missing mesh line", line)
	}
	var dim, side, wrap int
	if n, err := fmt.Sscanf(s, "mesh %d %d %d", &dim, &side, &wrap); err != nil || n != 3 {
		return nil, fmt.Errorf("traffic: trace line %d: bad mesh line %q", line, s)
	}
	mwrap := 0
	if m.Wrap() {
		mwrap = 1
	}
	if dim != m.Dim() || side != m.Side() || wrap != mwrap {
		return nil, fmt.Errorf("traffic: trace recorded on mesh (dim=%d side=%d wrap=%d), replaying on (dim=%d side=%d wrap=%d)",
			dim, side, wrap, m.Dim(), m.Side(), mwrap)
	}

	var events []TraceEvent
	lastStep := -1
	for {
		s, ok = next()
		if !ok {
			break
		}
		var ev TraceEvent
		if n, err := fmt.Sscanf(s, "i %d %d %d %d", &ev.Step, &ev.Src, &ev.Dst, &ev.Class); err != nil || n != 4 {
			return nil, fmt.Errorf("traffic: trace line %d: bad event %q", line, s)
		}
		if ev.Step < lastStep {
			return nil, fmt.Errorf("traffic: trace line %d: step %d after %d (must be non-decreasing)", line, ev.Step, lastStep)
		}
		lastStep = ev.Step
		if ev.Src < 0 || int(ev.Src) >= m.Size() || ev.Dst < 0 || int(ev.Dst) >= m.Size() {
			return nil, fmt.Errorf("traffic: trace line %d: node out of range for %d-node mesh", line, m.Size())
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("traffic: read trace: %w", err)
	}
	return events, nil
}

// Replay regenerates a recorded trace: each event is emitted at its recorded
// step (events whose step already passed — e.g. a replay started late — are
// emitted immediately), so a recorded run's offered traffic is reproduced
// exactly. Combined with the engine's deterministic injection stream, a
// replayed run is bit-identical to the recorded one.
type Replay struct {
	events []TraceEvent
	cursor int
}

var _ StatefulGenerator = (*Replay)(nil)

// NewReplay builds a replay generator over parsed events (ordered by step,
// as ReadTrace guarantees).
func NewReplay(events []TraceEvent) *Replay {
	return &Replay{events: events}
}

// Generate implements Generator: emits every remaining event with Step <= t.
func (g *Replay) Generate(t int, m *mesh.Mesh, rng *rand.Rand, out []Gen) []Gen {
	for g.cursor < len(g.events) && g.events[g.cursor].Step <= t {
		ev := g.events[g.cursor]
		out = append(out, Gen{Src: ev.Src, Dst: ev.Dst, Class: ev.Class})
		g.cursor++
	}
	return out
}

// Done implements Generator.
func (g *Replay) Done(t int) bool { return g.cursor >= len(g.events) }

type replayState struct {
	Cursor int `json:"cursor"`
}

// SnapshotGenerator implements StatefulGenerator: the replay cursor.
func (g *Replay) SnapshotGenerator() (json.RawMessage, error) {
	return json.Marshal(replayState{Cursor: g.cursor})
}

// RestoreGenerator implements StatefulGenerator.
func (g *Replay) RestoreGenerator(data json.RawMessage) error {
	var st replayState
	if len(data) > 0 {
		if err := json.Unmarshal(data, &st); err != nil {
			return err
		}
	}
	if st.Cursor < 0 || st.Cursor > len(g.events) {
		return fmt.Errorf("traffic: replay cursor %d outside [0, %d]", st.Cursor, len(g.events))
	}
	g.cursor = st.Cursor
	return nil
}
