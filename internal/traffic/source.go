package traffic

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"

	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
)

// DestFunc draws a destination for a packet generated at src. A nil
// DestFunc means uniform over all nodes other than src.
type DestFunc func(src mesh.NodeID, m *mesh.Mesh, rng *rand.Rand) mesh.NodeID

// Gen is one generated (not yet injected) packet: the output unit of a
// Generator, before the source queue and the injection-capacity gate.
type Gen struct {
	Src   mesh.NodeID
	Dst   mesh.NodeID
	Class int
}

// Generator is one traffic process: at every step it decides which packets
// enter the source queues. Implementations must be deterministic given the
// rng (the engine's dedicated injection stream) and must not retain out.
// Generators compose: a Source drains any number of them — one per client,
// tenant or traffic class — into the shared per-node backlogs.
type Generator interface {
	// Generate appends the packets generated at step t on mesh m to out and
	// returns the extended slice. Called once per step, in client order.
	Generate(t int, m *mesh.Mesh, rng *rand.Rand, out []Gen) []Gen
	// Done reports that no packet will ever be generated at or after step t
	// (e.g. the generation window closed). Generators that never stop
	// always return false; the run then ends at the step budget.
	Done(t int) bool
}

// StatefulGenerator is implemented by generators whose behavior depends on
// internal state beyond the injection RNG (renewal clocks, on/off phases,
// token buckets, replay cursors). Source snapshots capture and reinstate
// that state, so checkpoint/resume is exact mid-burst.
type StatefulGenerator interface {
	Generator
	// SnapshotGenerator serializes the generator's internal state.
	SnapshotGenerator() (json.RawMessage, error)
	// RestoreGenerator reinstates state captured by SnapshotGenerator.
	RestoreGenerator(data json.RawMessage) error
}

// Source adapts any set of Generators into a sim.CheckpointableInjector:
// generated packets queue in per-node backlogs and are injected, in node
// order, whenever the hot-potato constraint leaves room. Generation order
// across clients is fixed (the NewSource order), so multi-client traffic is
// deterministic, and the generation time of every packet is recorded for
// end-to-end latency and backlog (saturation) measurement.
type Source struct {
	gens    []Generator
	backlog [][]pending
	scratch []Gen

	generated  int
	injected   int
	curBacklog int
	maxBacklog int
	genTime    map[int]int // packet ID -> generation step

	trace *TraceWriter
}

var _ sim.CheckpointableInjector = (*Source)(nil)

// NewSource composes the given generators into one injector. Generation
// runs in argument order each step.
func NewSource(gens ...Generator) (*Source, error) {
	if len(gens) == 0 {
		return nil, fmt.Errorf("traffic: source needs at least one generator")
	}
	for i, g := range gens {
		if g == nil {
			return nil, fmt.Errorf("traffic: nil generator at index %d", i)
		}
	}
	return &Source{gens: gens, genTime: make(map[int]int)}, nil
}

// Generators returns the composed generators, in generation order.
func (s *Source) Generators() []Generator { return s.gens }

// SetTrace installs an injection-trace recorder: every injected packet is
// appended as an (step, src, dst, class) event. Recording is orthogonal to
// checkpointing — a resumed run records from the resume point on.
func (s *Source) SetTrace(w *TraceWriter) { s.trace = w }

// Inject implements sim.Injector: run every generator, queue its output in
// the per-node backlogs, then drain the backlogs into the per-node
// injection room in node order.
func (s *Source) Inject(t int, host sim.InjectorHost, rng *rand.Rand) []*sim.Packet {
	m := host.Mesh()
	if s.backlog == nil {
		s.backlog = make([][]pending, m.Size())
	}

	s.scratch = s.scratch[:0]
	for _, g := range s.gens {
		s.scratch = g.Generate(t, m, rng, s.scratch)
	}
	for _, gp := range s.scratch {
		s.backlog[gp.Src] = append(s.backlog[gp.Src], pending{dst: gp.Dst, generatedAt: t, class: gp.Class})
		s.generated++
		s.curBacklog++
	}

	var out []*sim.Packet
	for node := mesh.NodeID(0); int(node) < m.Size(); node++ {
		q := s.backlog[node]
		if len(q) == 0 {
			continue
		}
		room := host.InjectionCapacity(node)
		take := len(q)
		if room < take {
			take = room
		}
		for i := 0; i < take; i++ {
			p := sim.NewPacket(host.NextPacketID(), node, q[i].dst)
			p.Class = q[i].class
			s.genTime[p.ID] = q[i].generatedAt
			out = append(out, p)
			s.injected++
			s.curBacklog--
			if s.trace != nil {
				s.trace.Record(t, node, q[i].dst, q[i].class)
			}
		}
		s.backlog[node] = q[take:]
	}
	if s.curBacklog > s.maxBacklog {
		s.maxBacklog = s.curBacklog
	}
	return out
}

// Exhausted implements sim.Injector: done once every generator is done and
// the backlogs have drained.
func (s *Source) Exhausted(t int) bool {
	if s.curBacklog > 0 {
		return false
	}
	for _, g := range s.gens {
		if !g.Done(t) {
			return false
		}
	}
	return true
}

// Generated returns the number of packets produced by all generators.
func (s *Source) Generated() int { return s.generated }

// Injected returns the number of packets actually injected so far.
func (s *Source) Injected() int { return s.injected }

// Backlog returns the current number of generated-but-not-injected packets.
func (s *Source) Backlog() int { return s.curBacklog }

// MaxBacklog returns the largest backlog observed.
func (s *Source) MaxBacklog() int { return s.maxBacklog }

// Latency returns the end-to-end latency (generation to arrival) of a
// delivered packet, or -1 if it has not arrived or is unknown.
func (s *Source) Latency(p *sim.Packet) int {
	gen, ok := s.genTime[p.ID]
	if !ok || !p.Arrived() {
		return -1
	}
	return p.ArrivedAt - gen
}

// Serialized source state. Maps are flattened into slices sorted by key so
// the bytes are deterministic (checkpoint parity is bit-level).

type pendingState struct {
	Dst   mesh.NodeID `json:"dst"`
	Gen   int         `json:"gen"`
	Class int         `json:"class,omitempty"`
}

type backlogState struct {
	Node mesh.NodeID    `json:"node"`
	Pend []pendingState `json:"pend"`
}

type idStep struct {
	ID   int `json:"id"`
	Step int `json:"step"`
}

type sourceState struct {
	Nodes      int               `json:"nodes"` // len(backlog); 0 = not yet sized
	Backlog    []backlogState    `json:"backlog,omitempty"`
	Generated  int               `json:"generated"`
	Injected   int               `json:"injected"`
	CurBacklog int               `json:"cur_backlog"`
	MaxBacklog int               `json:"max_backlog"`
	GenTime    []idStep          `json:"gen_time,omitempty"`
	Gens       []json.RawMessage `json:"gens,omitempty"`
}

func captureBacklog(backlog [][]pending) []backlogState {
	var out []backlogState
	for node, q := range backlog {
		if len(q) == 0 {
			continue
		}
		bs := backlogState{Node: mesh.NodeID(node), Pend: make([]pendingState, len(q))}
		for i, p := range q {
			bs.Pend[i] = pendingState{Dst: p.dst, Gen: p.generatedAt, Class: p.class}
		}
		out = append(out, bs)
	}
	return out
}

func restoreBacklog(states []backlogState, nodes int) ([][]pending, int, error) {
	if nodes == 0 {
		if len(states) > 0 {
			return nil, 0, fmt.Errorf("traffic: backlog entries without a node count")
		}
		return nil, 0, nil
	}
	backlog := make([][]pending, nodes)
	count := 0
	for _, bs := range states {
		if bs.Node < 0 || int(bs.Node) >= nodes {
			return nil, 0, fmt.Errorf("traffic: backlog node %d outside [0, %d)", bs.Node, nodes)
		}
		q := make([]pending, len(bs.Pend))
		for i, ps := range bs.Pend {
			q[i] = pending{dst: ps.Dst, generatedAt: ps.Gen, class: ps.Class}
		}
		backlog[bs.Node] = q
		count += len(q)
	}
	return backlog, count, nil
}

func captureGenTime(genTime map[int]int) []idStep {
	out := make([]idStep, 0, len(genTime))
	for id, step := range genTime {
		out = append(out, idStep{ID: id, Step: step})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SnapshotState implements sim.CheckpointableInjector.
func (s *Source) SnapshotState() ([]byte, error) {
	st := sourceState{
		Nodes:      len(s.backlog),
		Backlog:    captureBacklog(s.backlog),
		Generated:  s.generated,
		Injected:   s.injected,
		CurBacklog: s.curBacklog,
		MaxBacklog: s.maxBacklog,
		GenTime:    captureGenTime(s.genTime),
	}
	st.Gens = make([]json.RawMessage, len(s.gens))
	for i, g := range s.gens {
		if sg, ok := g.(StatefulGenerator); ok {
			raw, err := sg.SnapshotGenerator()
			if err != nil {
				return nil, fmt.Errorf("traffic: snapshot generator %d: %w", i, err)
			}
			st.Gens[i] = raw
		}
	}
	return json.Marshal(&st)
}

// RestoreState implements sim.CheckpointableInjector. The source must be
// freshly built with the same generators (same kinds, same order) as the
// snapshotted one.
func (s *Source) RestoreState(data []byte) error {
	var st sourceState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("traffic: restore source state: %w", err)
	}
	if len(st.Gens) != len(s.gens) {
		return fmt.Errorf("traffic: snapshot has %d generators, source has %d", len(st.Gens), len(s.gens))
	}
	backlog, count, err := restoreBacklog(st.Backlog, st.Nodes)
	if err != nil {
		return err
	}
	if count != st.CurBacklog {
		return fmt.Errorf("traffic: backlog carries %d packets, state says %d", count, st.CurBacklog)
	}
	s.backlog = backlog
	s.generated = st.Generated
	s.injected = st.Injected
	s.curBacklog = st.CurBacklog
	s.maxBacklog = st.MaxBacklog
	s.genTime = make(map[int]int, len(st.GenTime))
	for _, e := range st.GenTime {
		s.genTime[e.ID] = e.Step
	}
	for i, g := range s.gens {
		sg, ok := g.(StatefulGenerator)
		if !ok {
			if len(st.Gens[i]) > 0 && string(st.Gens[i]) != "null" {
				return fmt.Errorf("traffic: snapshot carries state for generator %d (%T), which is stateless", i, g)
			}
			continue
		}
		if err := sg.RestoreGenerator(st.Gens[i]); err != nil {
			return fmt.Errorf("traffic: restore generator %d: %w", i, err)
		}
	}
	return nil
}

// uniformDest draws a uniform destination other than src.
func uniformDest(src mesh.NodeID, m *mesh.Mesh, rng *rand.Rand) mesh.NodeID {
	for {
		dst := mesh.NodeID(rng.Intn(m.Size()))
		if dst != src {
			return dst
		}
	}
}

func drawDest(dest DestFunc, src mesh.NodeID, m *mesh.Mesh, rng *rand.Rand) mesh.NodeID {
	if dest != nil {
		return dest(src, m, rng)
	}
	return uniformDest(src, m, rng)
}
