// Package traffic provides continuous packet sources for the sim engine's
// injection hook, modeling the steady-state deflection-network regime of
// the studies the paper cites ([GG], [Ma], [ZA]): every node generates
// packets over time, holds them in a local source queue, and injects
// whenever the hot-potato constraint leaves room (a node may never hold
// more packets than its out-degree).
//
// Two layers coexist. Bernoulli is the original standalone injector (fixed
// per-node rate, optional hot-spot destinations and QoS split). The
// Generator/Source layer composes richer processes — renewal interarrivals
// (Renewal: Poisson/Gamma/Weibull), bursty and diurnal client profiles
// (OnOff, Diurnal), a (ρ,σ)-admissible adversary (Adversary), and trace
// replay (Replay) — behind one sim.CheckpointableInjector, so multi-client
// workloads snapshot/restore exactly and run bit-identically on the single
// and sharded engines.
//
// Sources record the generation time of every packet, so end-to-end
// latency (source queueing + network time) and backlog growth can be
// measured; the load at which the backlog stops being stable is the
// network's saturation throughput.
package traffic

import (
	"encoding/json"
	"fmt"
	"math/rand"

	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
)

// pending is one generated-but-not-yet-injected packet.
type pending struct {
	dst         mesh.NodeID
	generatedAt int
	class       int
}

// Bernoulli is a continuous source: at every step, every node generates a
// packet with probability Rate, destined to a node drawn by Dest. It
// implements sim.Injector and is deterministic given the engine RNG.
type Bernoulli struct {
	// Rate is the per-node per-step generation probability in [0, 1].
	Rate float64
	// Dest draws a destination for a packet generated at src. Nil means
	// uniform over all nodes other than src.
	Dest func(src mesh.NodeID, m *mesh.Mesh, rng *rand.Rand) mesh.NodeID
	// Until stops generation at this step (0 = never stop); after it, the
	// network and source queues drain, which is how experiments terminate.
	Until int
	// HighFrac marks this fraction of generated packets as traffic class 1
	// (the rest stay class 0), for QoS experiments with class-priority
	// policies. Zero disables.
	HighFrac float64

	backlog    [][]pending // indexed by node, allocated on first Inject
	generated  int
	injected   int
	maxBacklog int
	curBacklog int
	genTime    map[int]int // packet ID -> generation step
}

var _ sim.CheckpointableInjector = (*Bernoulli)(nil)

// NewBernoulli returns a source with uniform destinations.
func NewBernoulli(rate float64, until int) (*Bernoulli, error) {
	if rate < 0 || rate > 1 {
		return nil, fmt.Errorf("traffic: rate %v outside [0, 1]", rate)
	}
	return &Bernoulli{
		Rate:    rate,
		Until:   until,
		genTime: make(map[int]int),
	}, nil
}

// Inject implements sim.Injector.
func (b *Bernoulli) Inject(t int, e sim.InjectorHost, rng *rand.Rand) []*sim.Packet {
	m := e.Mesh()
	if b.backlog == nil {
		b.backlog = make([][]pending, m.Size())
	}

	// Generation phase.
	if b.Until == 0 || t < b.Until {
		for node := mesh.NodeID(0); int(node) < m.Size(); node++ {
			if rng.Float64() >= b.Rate {
				continue
			}
			dst := b.drawDest(node, m, rng)
			class := 0
			if b.HighFrac > 0 && rng.Float64() < b.HighFrac {
				class = 1
			}
			b.backlog[node] = append(b.backlog[node], pending{dst: dst, generatedAt: t, class: class})
			b.generated++
			b.curBacklog++
		}
	}

	// Injection phase: drain each source queue into the node's free slots,
	// in node order (deterministic).
	var out []*sim.Packet
	for node := mesh.NodeID(0); int(node) < m.Size(); node++ {
		q := b.backlog[node]
		if len(q) == 0 {
			continue
		}
		room := e.InjectionCapacity(node)
		take := len(q)
		if room < take {
			take = room
		}
		for i := 0; i < take; i++ {
			p := sim.NewPacket(e.NextPacketID(), node, q[i].dst)
			p.Class = q[i].class
			b.genTime[p.ID] = q[i].generatedAt
			out = append(out, p)
			b.injected++
			b.curBacklog--
		}
		b.backlog[node] = q[take:]
	}
	if b.curBacklog > b.maxBacklog {
		b.maxBacklog = b.curBacklog
	}
	return out
}

func (b *Bernoulli) drawDest(src mesh.NodeID, m *mesh.Mesh, rng *rand.Rand) mesh.NodeID {
	if b.Dest != nil {
		return b.Dest(src, m, rng)
	}
	for {
		dst := mesh.NodeID(rng.Intn(m.Size()))
		if dst != src {
			return dst
		}
	}
}

// Exhausted implements sim.Injector: the source is done once its
// generation window has closed and its backlog has drained.
func (b *Bernoulli) Exhausted(t int) bool {
	return b.Until > 0 && t >= b.Until && b.curBacklog == 0
}

// Generated returns the number of packets produced by the source.
func (b *Bernoulli) Generated() int { return b.generated }

// Injected returns the number of packets actually injected so far.
func (b *Bernoulli) Injected() int { return b.injected }

// Backlog returns the current number of generated-but-not-injected packets.
func (b *Bernoulli) Backlog() int { return b.curBacklog }

// MaxBacklog returns the largest backlog observed.
func (b *Bernoulli) MaxBacklog() int { return b.maxBacklog }

// Latency returns the end-to-end latency (generation to arrival) of a
// delivered packet, or -1 if it has not arrived or is unknown.
func (b *Bernoulli) Latency(p *sim.Packet) int {
	gen, ok := b.genTime[p.ID]
	if !ok || !p.Arrived() {
		return -1
	}
	return p.ArrivedAt - gen
}

// bernoulliState is the serialized Bernoulli checkpoint payload; it shares
// the Source layout (minus generators) so both round-trip identically.
type bernoulliState struct {
	Nodes      int            `json:"nodes"`
	Backlog    []backlogState `json:"backlog,omitempty"`
	Generated  int            `json:"generated"`
	Injected   int            `json:"injected"`
	CurBacklog int            `json:"cur_backlog"`
	MaxBacklog int            `json:"max_backlog"`
	GenTime    []idStep       `json:"gen_time,omitempty"`
}

// SnapshotState implements sim.CheckpointableInjector.
func (b *Bernoulli) SnapshotState() ([]byte, error) {
	return json.Marshal(&bernoulliState{
		Nodes:      len(b.backlog),
		Backlog:    captureBacklog(b.backlog),
		Generated:  b.generated,
		Injected:   b.injected,
		CurBacklog: b.curBacklog,
		MaxBacklog: b.maxBacklog,
		GenTime:    captureGenTime(b.genTime),
	})
}

// RestoreState implements sim.CheckpointableInjector. The receiver must be
// configured (Rate, Dest, Until, HighFrac) like the snapshotted source.
func (b *Bernoulli) RestoreState(data []byte) error {
	var st bernoulliState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("traffic: restore bernoulli state: %w", err)
	}
	backlog, count, err := restoreBacklog(st.Backlog, st.Nodes)
	if err != nil {
		return err
	}
	if count != st.CurBacklog {
		return fmt.Errorf("traffic: backlog carries %d packets, state says %d", count, st.CurBacklog)
	}
	b.backlog = backlog
	b.generated = st.Generated
	b.injected = st.Injected
	b.curBacklog = st.CurBacklog
	b.maxBacklog = st.MaxBacklog
	b.genTime = make(map[int]int, len(st.GenTime))
	for _, e := range st.GenTime {
		b.genTime[e.ID] = e.Step
	}
	return nil
}

// HotSpotDest returns a Dest function that targets `hot` with probability
// frac and a uniform node otherwise — the hot-spot traffic of [ZA].
func HotSpotDest(hot mesh.NodeID, frac float64) func(mesh.NodeID, *mesh.Mesh, *rand.Rand) mesh.NodeID {
	return func(src mesh.NodeID, m *mesh.Mesh, rng *rand.Rand) mesh.NodeID {
		if rng.Float64() < frac && hot != src {
			return hot
		}
		for {
			dst := mesh.NodeID(rng.Intn(m.Size()))
			if dst != src {
				return dst
			}
		}
	}
}
