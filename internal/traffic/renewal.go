package traffic

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"

	"hotpotato/internal/mesh"
)

// Interarrival distributions for Renewal sources. All are normalized so
// that the mean interarrival time is 1/rate steps, i.e. rate is always the
// mean arrivals per node per step regardless of the distribution shape.
const (
	// KindExp is exponential interarrivals: the discrete-time Poisson
	// process (memoryless, coefficient of variation 1).
	KindExp = "exp"
	// KindGamma is Gamma(shape) interarrivals: shape > 1 is smoother than
	// Poisson, shape < 1 burstier.
	KindGamma = "gamma"
	// KindWeibull is Weibull(shape) interarrivals: heavy-tailed bursts for
	// shape < 1, aging sources for shape > 1.
	KindWeibull = "weibull"
)

// minInterarrival floors every sampled gap so a pathological draw (underflow
// to zero) can never spin the per-step arrival loop forever.
const minInterarrival = 1e-6

// Renewal generates traffic as an independent renewal process per node:
// each node draws successive interarrival times from the configured
// distribution and emits one packet per arrival epoch. This is the
// ServeGen-style generative arrival model — Poisson is the memoryless
// baseline, Gamma and Weibull bend the burstiness knob either way while
// holding the mean rate fixed.
type Renewal struct {
	// Kind selects the interarrival distribution (KindExp, KindGamma,
	// KindWeibull).
	Kind string
	// Rate is the mean arrivals per node per step (> 0).
	Rate float64
	// Shape is the Gamma/Weibull shape parameter (> 0; ignored by KindExp).
	Shape float64
	// Until stops generation at this step (0 = never stop).
	Until int
	// Class tags every generated packet (tenant/QoS class).
	Class int
	// Dest draws destinations; nil means uniform over other nodes.
	Dest DestFunc

	scale float64   // precomputed distribution scale for the mean-1/rate normalization
	next  []float64 // per-node next arrival epoch, lazily sized to the mesh
}

var _ StatefulGenerator = (*Renewal)(nil)

// NewRenewal builds a renewal generator; see the Kind constants. rate must
// be positive and shape positive for the shaped distributions.
func NewRenewal(kind string, rate, shape float64, until int) (*Renewal, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("traffic: renewal rate %v must be positive", rate)
	}
	if until < 0 {
		return nil, fmt.Errorf("traffic: renewal until %d must be >= 0", until)
	}
	g := &Renewal{Kind: kind, Rate: rate, Shape: shape, Until: until}
	switch kind {
	case KindExp:
		g.Shape = 1
		g.scale = 1 / rate
	case KindGamma:
		if shape <= 0 {
			return nil, fmt.Errorf("traffic: gamma shape %v must be positive", shape)
		}
		// Gamma(shape, 1) has mean shape; divide by shape*rate for mean 1/rate.
		g.scale = 1 / (shape * rate)
	case KindWeibull:
		if shape <= 0 {
			return nil, fmt.Errorf("traffic: weibull shape %v must be positive", shape)
		}
		// Weibull(shape, scale) has mean scale*Gamma(1+1/shape).
		g.scale = 1 / (rate * math.Gamma(1+1/shape))
	default:
		return nil, fmt.Errorf("traffic: unknown renewal kind %q (have: %s, %s, %s)", kind, KindExp, KindGamma, KindWeibull)
	}
	return g, nil
}

// NewPoisson is the Poisson (exponential-interarrival) renewal source.
func NewPoisson(rate float64, until int) (*Renewal, error) {
	return NewRenewal(KindExp, rate, 1, until)
}

func (g *Renewal) sample(rng *rand.Rand) float64 {
	var x float64
	switch g.Kind {
	case KindGamma:
		x = sampleGamma(rng, g.Shape) * g.scale
	case KindWeibull:
		x = g.scale * math.Pow(-math.Log(1-rng.Float64()), 1/g.Shape)
	default:
		x = rng.ExpFloat64() * g.scale
	}
	if x < minInterarrival {
		x = minInterarrival
	}
	return x
}

// sampleGamma draws Gamma(shape, 1) via Marsaglia–Tsang, deterministic
// given the rng; shapes below 1 use the standard U^(1/shape) boost.
func sampleGamma(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		u := rng.Float64()
		return sampleGamma(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Generate implements Generator: every node emits one packet per renewal
// epoch that falls inside [t, t+1), in node order.
func (g *Renewal) Generate(t int, m *mesh.Mesh, rng *rand.Rand, out []Gen) []Gen {
	if g.next == nil {
		g.next = make([]float64, m.Size())
		for i := range g.next {
			g.next[i] = g.sample(rng)
		}
	}
	if g.Until > 0 && t >= g.Until {
		return out
	}
	limit := float64(t) + 1
	for node := mesh.NodeID(0); int(node) < m.Size(); node++ {
		for g.next[node] < limit {
			out = append(out, Gen{Src: node, Dst: drawDest(g.Dest, node, m, rng), Class: g.Class})
			g.next[node] += g.sample(rng)
		}
	}
	return out
}

// Done implements Generator.
func (g *Renewal) Done(t int) bool { return g.Until > 0 && t >= g.Until }

type renewalState struct {
	Next []float64 `json:"next,omitempty"`
}

// SnapshotGenerator implements StatefulGenerator: the per-node renewal
// clocks (float64s round-trip exactly through JSON).
func (g *Renewal) SnapshotGenerator() (json.RawMessage, error) {
	return json.Marshal(renewalState{Next: g.next})
}

// RestoreGenerator implements StatefulGenerator.
func (g *Renewal) RestoreGenerator(data json.RawMessage) error {
	var st renewalState
	if len(data) > 0 {
		if err := json.Unmarshal(data, &st); err != nil {
			return err
		}
	}
	g.next = st.Next
	return nil
}
