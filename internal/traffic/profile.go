package traffic

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"

	"hotpotato/internal/mesh"
)

// OnOff is a bursty multi-client profile: every node is an independent
// two-state Markov chain (ON/OFF) with geometric sojourn times, emitting
// Bernoulli(Rate) traffic while ON and nothing while OFF. Mean burst length
// is MeanOn steps, mean silence MeanOff steps, so the long-run offered load
// is Rate * MeanOn / (MeanOn + MeanOff) per node per step.
type OnOff struct {
	// Rate is the per-step generation probability while ON, in [0, 1].
	Rate float64
	// MeanOn and MeanOff are the mean sojourn times in steps (>= 1).
	MeanOn, MeanOff float64
	// Until stops generation at this step (0 = never stop).
	Until int
	// Class tags every generated packet.
	Class int
	// Dest draws destinations; nil means uniform over other nodes.
	Dest DestFunc

	on      []bool // per-node chain state, lazily sized; nodes start OFF
	started bool
}

var _ StatefulGenerator = (*OnOff)(nil)

// NewOnOff builds a bursty on/off generator.
func NewOnOff(rate, meanOn, meanOff float64, until int) (*OnOff, error) {
	if rate < 0 || rate > 1 {
		return nil, fmt.Errorf("traffic: on/off rate %v outside [0, 1]", rate)
	}
	if meanOn < 1 || meanOff < 1 {
		return nil, fmt.Errorf("traffic: on/off sojourns (%v, %v) must be >= 1 step", meanOn, meanOff)
	}
	if until < 0 {
		return nil, fmt.Errorf("traffic: on/off until %d must be >= 0", until)
	}
	return &OnOff{Rate: rate, MeanOn: meanOn, MeanOff: meanOff, Until: until}, nil
}

// Generate implements Generator: per node, one chain transition draw, then
// (while ON) one emission draw — a fixed draw order, so the stream is
// deterministic and checkpoint-stable.
func (g *OnOff) Generate(t int, m *mesh.Mesh, rng *rand.Rand, out []Gen) []Gen {
	if g.on == nil {
		g.on = make([]bool, m.Size())
	}
	if g.Until > 0 && t >= g.Until {
		return out
	}
	for node := mesh.NodeID(0); int(node) < m.Size(); node++ {
		if g.on[node] {
			if rng.Float64() < 1/g.MeanOn {
				g.on[node] = false
			}
		} else if rng.Float64() < 1/g.MeanOff {
			g.on[node] = true
		}
		if g.on[node] && rng.Float64() < g.Rate {
			out = append(out, Gen{Src: node, Dst: drawDest(g.Dest, node, m, rng), Class: g.Class})
		}
	}
	return out
}

// Done implements Generator.
func (g *OnOff) Done(t int) bool { return g.Until > 0 && t >= g.Until }

type onOffState struct {
	On []bool `json:"on,omitempty"`
}

// SnapshotGenerator implements StatefulGenerator: the per-node chain states.
func (g *OnOff) SnapshotGenerator() (json.RawMessage, error) {
	return json.Marshal(onOffState{On: g.on})
}

// RestoreGenerator implements StatefulGenerator.
func (g *OnOff) RestoreGenerator(data json.RawMessage) error {
	var st onOffState
	if len(data) > 0 {
		if err := json.Unmarshal(data, &st); err != nil {
			return err
		}
	}
	g.on = st.On
	return nil
}

// Diurnal is a rate-envelope profile: Bernoulli generation whose per-step
// probability follows a sinusoidal day/night cycle,
//
//	rate(t) = Rate * (1 + Amp*sin(2π*(t/Period + Phase)))
//
// clamped to [0, 1]. Rate is the mean offered load; Amp the relative swing.
// The envelope is a pure function of t, so the generator is stateless and
// trivially checkpoint-exact.
type Diurnal struct {
	// Rate is the mean per-node per-step generation probability, in [0, 1].
	Rate float64
	// Amp is the relative amplitude of the swing, in [0, 1].
	Amp float64
	// Period is the cycle length in steps (>= 1).
	Period int
	// Phase offsets the cycle as a fraction of the period, so multiple
	// diurnal clients (tenants in different timezones) can be composed.
	Phase float64
	// Until stops generation at this step (0 = never stop).
	Until int
	// Class tags every generated packet.
	Class int
	// Dest draws destinations; nil means uniform over other nodes.
	Dest DestFunc
}

var _ Generator = (*Diurnal)(nil)

// NewDiurnal builds a sinusoidal rate-envelope generator.
func NewDiurnal(rate, amp float64, period, until int) (*Diurnal, error) {
	if rate < 0 || rate > 1 {
		return nil, fmt.Errorf("traffic: diurnal rate %v outside [0, 1]", rate)
	}
	if amp < 0 || amp > 1 {
		return nil, fmt.Errorf("traffic: diurnal amplitude %v outside [0, 1]", amp)
	}
	if period < 1 {
		return nil, fmt.Errorf("traffic: diurnal period %d must be >= 1", period)
	}
	if until < 0 {
		return nil, fmt.Errorf("traffic: diurnal until %d must be >= 0", until)
	}
	return &Diurnal{Rate: rate, Amp: amp, Period: period, Until: until}, nil
}

// RateAt returns the envelope's generation probability at step t.
func (g *Diurnal) RateAt(t int) float64 {
	r := g.Rate * (1 + g.Amp*math.Sin(2*math.Pi*(float64(t)/float64(g.Period)+g.Phase)))
	return math.Min(1, math.Max(0, r))
}

// Generate implements Generator.
func (g *Diurnal) Generate(t int, m *mesh.Mesh, rng *rand.Rand, out []Gen) []Gen {
	if g.Until > 0 && t >= g.Until {
		return out
	}
	rate := g.RateAt(t)
	for node := mesh.NodeID(0); int(node) < m.Size(); node++ {
		if rng.Float64() < rate {
			out = append(out, Gen{Src: node, Dst: drawDest(g.Dest, node, m, rng), Class: g.Class})
		}
	}
	return out
}

// Done implements Generator.
func (g *Diurnal) Done(t int) bool { return g.Until > 0 && t >= g.Until }

// BernoulliGen is the memoryless per-node profile (the classic [GG]/[ZA]
// regime) as a composable Generator: every node generates a packet with
// probability Rate each step. The standalone Bernoulli injector predates
// the Generator interface and remains for direct API use; this is the same
// process in composable form.
type BernoulliGen struct {
	// Rate is the per-node per-step generation probability, in [0, 1].
	Rate float64
	// Until stops generation at this step (0 = never stop).
	Until int
	// Class tags every generated packet.
	Class int
	// Dest draws destinations; nil means uniform over other nodes.
	Dest DestFunc
}

var _ Generator = (*BernoulliGen)(nil)

// NewBernoulliGen builds a Bernoulli generator.
func NewBernoulliGen(rate float64, until int) (*BernoulliGen, error) {
	if rate < 0 || rate > 1 {
		return nil, fmt.Errorf("traffic: rate %v outside [0, 1]", rate)
	}
	if until < 0 {
		return nil, fmt.Errorf("traffic: bernoulli until %d must be >= 0", until)
	}
	return &BernoulliGen{Rate: rate, Until: until}, nil
}

// Generate implements Generator.
func (g *BernoulliGen) Generate(t int, m *mesh.Mesh, rng *rand.Rand, out []Gen) []Gen {
	if g.Until > 0 && t >= g.Until {
		return out
	}
	for node := mesh.NodeID(0); int(node) < m.Size(); node++ {
		if rng.Float64() < g.Rate {
			out = append(out, Gen{Src: node, Dst: drawDest(g.Dest, node, m, rng), Class: g.Class})
		}
	}
	return out
}

// Done implements Generator.
func (g *BernoulliGen) Done(t int) bool { return g.Until > 0 && t >= g.Until }
