package traffic

import (
	"testing"

	"hotpotato/internal/core"
	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
)

func TestNewBernoulliValidation(t *testing.T) {
	if _, err := NewBernoulli(-0.1, 0); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := NewBernoulli(1.1, 0); err == nil {
		t.Error("rate > 1 accepted")
	}
	if _, err := NewBernoulli(0.5, 100); err != nil {
		t.Error(err)
	}
}

// runDynamic drives a continuous simulation: generate until `until`, then
// drain until empty or the budget runs out.
func runDynamic(t *testing.T, rate float64, until, maxSteps int) (*sim.Engine, *Bernoulli, *sim.Result) {
	t.Helper()
	m := mesh.MustNew(2, 8)
	src, err := NewBernoulli(rate, until)
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.New(m, core.NewRestrictedPriority(), nil, sim.Options{
		Seed:       1,
		Validation: sim.ValidateRestricted,
		MaxSteps:   maxSteps,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.SetInjector(src)
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return e, src, res
}

func TestDynamicGenerateAndDrain(t *testing.T) {
	e, src, _ := runDynamic(t, 0.05, 200, 1000)
	if src.Generated() == 0 {
		t.Fatal("nothing generated")
	}
	if src.Injected() != src.Generated() {
		t.Errorf("injected %d != generated %d after drain", src.Injected(), src.Generated())
	}
	if src.Backlog() != 0 {
		t.Errorf("backlog %d after drain", src.Backlog())
	}
	// Everything generated must eventually arrive.
	delivered := 0
	for _, p := range e.Packets() {
		if p.Arrived() {
			delivered++
			if lat := src.Latency(p); lat < m1Dist(e, p) {
				t.Errorf("packet %d latency %d below network distance %d", p.ID, lat, m1Dist(e, p))
			}
		}
	}
	if delivered != src.Generated() {
		t.Errorf("delivered %d of %d generated", delivered, src.Generated())
	}
}

func m1Dist(e *sim.Engine, p *sim.Packet) int {
	return e.Mesh().Dist(p.Src, p.Dst)
}

func TestDynamicLowLoadStable(t *testing.T) {
	_, src, _ := runDynamic(t, 0.02, 400, 2000)
	// At 2% load per node the network is far from saturation: the source
	// backlog should stay tiny.
	if src.MaxBacklog() > 20 {
		t.Errorf("max backlog %d at 2%% load", src.MaxBacklog())
	}
}

func TestDynamicOverloadBacklogGrows(t *testing.T) {
	// At rate 1.0 every node generates every step: far beyond capacity,
	// the backlog must grow roughly linearly with time.
	_, src, _ := runDynamic(t, 1.0, 300, 300)
	if src.Backlog() < src.Generated()/4 {
		t.Errorf("backlog %d of %d generated: expected clear saturation", src.Backlog(), src.Generated())
	}
}

func TestLatencyUnknownPacket(t *testing.T) {
	src, err := NewBernoulli(0.1, 10)
	if err != nil {
		t.Fatal(err)
	}
	p := sim.NewPacket(999, 0, 1)
	if src.Latency(p) != -1 {
		t.Error("latency of unknown packet != -1")
	}
}

func TestHotSpotDest(t *testing.T) {
	m := mesh.MustNew(2, 8)
	src, err := NewBernoulli(0.05, 100)
	if err != nil {
		t.Fatal(err)
	}
	hot := m.ID([]int{4, 4})
	src.Dest = HotSpotDest(hot, 0.8)
	e, err := sim.New(m, core.NewRestrictedPriority(), nil, sim.Options{
		Seed: 2, Validation: sim.ValidateRestricted, MaxSteps: 1500,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.SetInjector(src)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	toHot := 0
	for _, p := range e.Packets() {
		if p.Dst == hot {
			toHot++
		}
	}
	if total := len(e.Packets()); total == 0 || float64(toHot)/float64(total) < 0.5 {
		t.Errorf("only %d/%d packets to hot node at 80%% heat", toHot, total)
	}
}

// TestInjectionRespectsCapacity: even at overload, no injection error
// occurs because the source respects InjectionCapacity.
func TestInjectionRespectsCapacity(t *testing.T) {
	m := mesh.MustNew(2, 4)
	src, err := NewBernoulli(1.0, 50)
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.New(m, core.NewRestrictedPriority(), nil, sim.Options{
		Seed: 3, Validation: sim.ValidateRestricted, MaxSteps: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.SetInjector(src)
	if _, err := e.Run(); err != nil {
		t.Fatalf("overload run failed: %v", err)
	}
}

// TestDynamicDeterminism: identical seeds produce identical traffic.
func TestDynamicDeterminism(t *testing.T) {
	run := func() (int, int) {
		_, src, res := runDynamic(t, 0.1, 100, 600)
		return src.Generated(), res.Delivered
	}
	g1, d1 := run()
	g2, d2 := run()
	if g1 != g2 || d1 != d2 {
		t.Errorf("non-deterministic: (%d,%d) vs (%d,%d)", g1, d1, g2, d2)
	}
}
