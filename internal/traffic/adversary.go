package traffic

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"

	"hotpotato/internal/mesh"
)

// Axis names for the Adversary's target lane.
const (
	// AxisCol targets a column: every packet's destination has x == lane.
	AxisCol = "col"
	// AxisRow targets a row: every packet's destination has y == lane.
	AxisRow = "row"
)

// Adversary is a (ρ,σ)-admissible worst-case injector in the Even–Medina
// online-routing model: over every window of w consecutive steps it injects
// at most ρ·w + σ packets — a sustained rate ρ with burst budget σ —
// enforced by a token bucket (capacity σ, refill ρ per step), which makes
// admissibility a structural property rather than a tuning accident.
//
// Targeting maximizes contention on one mesh cut: every injected packet is
// destined to a node of the target lane (a column for AxisCol, a row for
// AxisRow) and sourced uniformly off the lane, so all adversarial traffic
// must cross into the lane through its 2·side incoming arcs. The targeted
// lane is therefore the maximally contended one by construction; Lane
// selects it (default: the center lane, the worst case for mean distance
// on an unwrapped mesh).
//
// The adversary needs a 2-dimensional mesh (the spec layer validates this;
// on other meshes the axis falls back to dimension 0).
type Adversary struct {
	// Rho is the sustained injection rate in packets per step (> 0).
	Rho float64
	// Sigma is the burst budget in packets (>= 0): the reserve carried
	// across steps on top of the per-step allowance Rho. With Sigma and Rho
	// both < 1 the bucket can take several steps to accumulate a whole
	// packet, which is the admissible behavior, not a bug.
	Sigma float64
	// Axis selects the lane orientation (AxisCol or AxisRow).
	Axis string
	// Lane is the lane's coordinate; negative means side/2 (center).
	Lane int
	// Until stops generation at this step (0 = never stop).
	Until int
	// Class tags every generated packet.
	Class int

	tokens  float64
	started bool
	emitted int
}

var _ StatefulGenerator = (*Adversary)(nil)

// NewAdversary builds a (ρ,σ)-admissible adversarial generator.
func NewAdversary(rho, sigma float64, axis string, lane, until int) (*Adversary, error) {
	if rho <= 0 {
		return nil, fmt.Errorf("traffic: adversary rho %v must be positive", rho)
	}
	if sigma < 0 {
		return nil, fmt.Errorf("traffic: adversary sigma %v must be >= 0", sigma)
	}
	if axis != AxisCol && axis != AxisRow {
		return nil, fmt.Errorf("traffic: adversary axis %q (want %q or %q)", axis, AxisCol, AxisRow)
	}
	if until < 0 {
		return nil, fmt.Errorf("traffic: adversary until %d must be >= 0", until)
	}
	return &Adversary{Rho: rho, Sigma: sigma, Axis: axis, Lane: lane, Until: until}, nil
}

// lane resolves the target coordinate for the mesh.
func (g *Adversary) lane(m *mesh.Mesh) int {
	l := g.Lane
	if l < 0 || l >= m.Side() {
		l = m.Side() / 2
	}
	return l
}

// axisDim maps the axis name to a mesh dimension index.
func (g *Adversary) axisDim(m *mesh.Mesh) int {
	if g.Axis == AxisRow && m.Dim() >= 2 {
		return 1
	}
	return 0
}

// Generate implements Generator. The carried-over reserve is capped at σ,
// then this step's allowance ρ is added and ⌊tokens⌋ packets are emitted
// and debited. Over any window of w steps the emissions total at most
// σ + ρ·w (reserve at entry ≤ σ, plus w refills), the (ρ,σ) admissibility
// bound — and unlike a bucket capped at σ outright, a rate ρ > σ is
// sustained rather than silently throttled.
func (g *Adversary) Generate(t int, m *mesh.Mesh, rng *rand.Rand, out []Gen) []Gen {
	if g.Until > 0 && t >= g.Until {
		return out
	}
	if !g.started { // the burst reserve starts full
		g.tokens = g.Sigma
		g.started = true
	}
	g.tokens = math.Min(g.Sigma, g.tokens) + g.Rho
	n := int(g.tokens)
	g.tokens -= float64(n)

	lane := g.lane(m)
	dim := g.axisDim(m)
	var coord [mesh.MaxDim]int
	for i := 0; i < n; i++ {
		// Destination on the lane, remaining coordinates uniform.
		c := coord[:m.Dim()]
		for d := range c {
			c[d] = rng.Intn(m.Side())
		}
		c[dim] = lane
		dst := m.ID(c)
		// Source uniform off the lane, so the packet must cross into it.
		var src mesh.NodeID
		if m.Side() < 2 {
			src = uniformDest(dst, m, rng)
		} else {
			for {
				src = mesh.NodeID(rng.Intn(m.Size()))
				if m.CoordAxis(src, dim) != lane {
					break
				}
			}
		}
		out = append(out, Gen{Src: src, Dst: dst, Class: g.Class})
		g.emitted++
	}
	return out
}

// Done implements Generator.
func (g *Adversary) Done(t int) bool { return g.Until > 0 && t >= g.Until }

// Emitted returns the total packets the adversary has generated.
func (g *Adversary) Emitted() int { return g.emitted }

type adversaryState struct {
	Tokens  float64 `json:"tokens"`
	Started bool    `json:"started"`
	Emitted int     `json:"emitted"`
}

// SnapshotGenerator implements StatefulGenerator: the token bucket.
func (g *Adversary) SnapshotGenerator() (json.RawMessage, error) {
	return json.Marshal(adversaryState{Tokens: g.tokens, Started: g.started, Emitted: g.emitted})
}

// RestoreGenerator implements StatefulGenerator.
func (g *Adversary) RestoreGenerator(data json.RawMessage) error {
	var st adversaryState
	if len(data) > 0 {
		if err := json.Unmarshal(data, &st); err != nil {
			return err
		}
	}
	g.tokens, g.started, g.emitted = st.Tokens, st.Started, st.Emitted
	return nil
}
