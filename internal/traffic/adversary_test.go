package traffic

import (
	"math/rand"
	"testing"

	"hotpotato/internal/mesh"
)

// TestAdversaryAdmissibility is the property test for the (ρ,σ) budget:
// over EVERY window of consecutive steps [i, j), the adversary's emissions
// must total at most ρ·(j−i) + σ. Checked exhaustively over all O(T²)
// windows for several (ρ, σ) shapes, including ρ > σ (sustained rate above
// the burst reserve) and fractional rates that need several steps per
// packet.
func TestAdversaryAdmissibility(t *testing.T) {
	m, err := mesh.New(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	const T = 400
	// minTotal is the utilization floor: the strict every-window bound
	// itself caps what any admissible adversary can emit. With sigma >= 1
	// the fractional rate carries over and ~rho*T is achievable; with
	// sigma = 0 a step may never exceed floor(rho) (a 3-packet step would
	// breach rho*1+0), so floor(rho)*T is the optimum; with rho+sigma < 1
	// every single-step window forbids even one packet — zero is correct.
	cases := []struct {
		name       string
		rho, sigma float64
		minTotal   float64
	}{
		{"fractional", 0.3, 2, 0.3*T - 3},
		{"unit", 1, 1, 1*T - 2},
		{"bursty", 0.5, 16, 0.5*T - 17},
		{"rate-above-burst", 5, 2, 5*T - 3},
		{"no-burst", 2.5, 0, 2*T - 1},
		{"sub-packet", 0.09, 0.4, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, err := NewAdversary(tc.rho, tc.sigma, AxisCol, -1, 0)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(42))
			counts := make([]int, T)
			for step := 0; step < T; step++ {
				counts[step] = len(g.Generate(step, m, rng, nil))
			}
			// Prefix sums make every window check O(1).
			prefix := make([]int, T+1)
			for i, c := range counts {
				prefix[i+1] = prefix[i] + c
			}
			const eps = 1e-9
			for i := 0; i < T; i++ {
				for j := i + 1; j <= T; j++ {
					got := float64(prefix[j] - prefix[i])
					budget := tc.rho*float64(j-i) + tc.sigma
					if got > budget+eps {
						t.Fatalf("window [%d, %d): %v packets exceeds budget %.4f (rho=%v sigma=%v)",
							i, j, got, budget, tc.rho, tc.sigma)
					}
				}
			}
			// The budget must also be USED: a throttled adversary that stays
			// below what admissibility permits is useless as a worst case.
			if total := float64(prefix[T]); total < tc.minTotal {
				t.Errorf("adversary underdrives: %v packets over %d steps, want at least %.1f (rho=%v sigma=%v)",
					total, T, tc.minTotal, tc.rho, tc.sigma)
			}
		})
	}
}

// TestAdversaryTargeting: every packet lands on the target lane and starts
// off it, for both axes and an explicit lane choice.
func TestAdversaryTargeting(t *testing.T) {
	m, err := mesh.New(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		axis string
		lane int
		dim  int
	}{
		{AxisCol, -1, 0}, // default lane = side/2
		{AxisCol, 2, 0},
		{AxisRow, 5, 1},
	} {
		g, err := NewAdversary(3, 4, tc.axis, tc.lane, 0)
		if err != nil {
			t.Fatal(err)
		}
		wantLane := tc.lane
		if wantLane < 0 {
			wantLane = m.Side() / 2
		}
		rng := rand.New(rand.NewSource(9))
		for step := 0; step < 50; step++ {
			for _, gen := range g.Generate(step, m, rng, nil) {
				if got := m.CoordAxis(gen.Dst, tc.dim); got != wantLane {
					t.Fatalf("axis %s: destination %d on lane %d, want %d", tc.axis, gen.Dst, got, wantLane)
				}
				if got := m.CoordAxis(gen.Src, tc.dim); got == wantLane {
					t.Fatalf("axis %s: source %d already on the target lane", tc.axis, gen.Src)
				}
			}
		}
		if g.Emitted() == 0 {
			t.Fatalf("axis %s: adversary emitted nothing", tc.axis)
		}
	}
}

// TestAdversaryValidation: constructor rejections.
func TestAdversaryValidation(t *testing.T) {
	bad := []struct {
		rho, sigma float64
		axis       string
		until      int
	}{
		{0, 1, AxisCol, 0},
		{-1, 1, AxisCol, 0},
		{1, -0.5, AxisCol, 0},
		{1, 1, "diagonal", 0},
		{1, 1, AxisRow, -3},
	}
	for _, tc := range bad {
		if _, err := NewAdversary(tc.rho, tc.sigma, tc.axis, 0, tc.until); err == nil {
			t.Errorf("NewAdversary(%v, %v, %q, until=%d) accepted", tc.rho, tc.sigma, tc.axis, tc.until)
		}
	}
}

// TestAdversaryRestoreMidBurst: the token bucket survives snapshot/restore
// exactly — a generator restored mid-burst continues the same stream of
// emission counts as the original (the count sequence is rng-independent,
// so this isolates the bucket state from destination draws).
func TestAdversaryRestoreMidBurst(t *testing.T) {
	m, err := mesh.New(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *Adversary {
		g, err := NewAdversary(0.7, 3, AxisCol, -1, 0)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	ref := mk()
	rngRef := rand.New(rand.NewSource(1))
	var want []int
	for step := 0; step < 60; step++ {
		want = append(want, len(ref.Generate(step, m, rngRef, nil)))
	}

	a := mk()
	rngA := rand.New(rand.NewSource(1))
	for step := 0; step < 23; step++ {
		a.Generate(step, m, rngA, nil)
	}
	state, err := a.SnapshotGenerator()
	if err != nil {
		t.Fatal(err)
	}
	b := mk()
	if err := b.RestoreGenerator(state); err != nil {
		t.Fatal(err)
	}
	for step := 23; step < 60; step++ {
		if got := len(b.Generate(step, m, rngA, nil)); got != want[step] {
			t.Fatalf("step %d after restore: %d packets, want %d", step, got, want[step])
		}
	}
}
