package traffic

import (
	"testing"

	"hotpotato/internal/core"
	"hotpotato/internal/mesh"
	"hotpotato/internal/shard"
	"hotpotato/internal/sim"
)

// injectorCases builds one fresh Source per stateful-injector configuration;
// every registered generator kind appears. Each call returns new instances
// (sources are stateful, engines must not share them).
func injectorCases(t *testing.T, m *mesh.Mesh) map[string]func() *Source {
	t.Helper()
	// Replay events: a deterministic diagonal trickle.
	var events []TraceEvent
	for s := 0; s < 40; s += 2 {
		events = append(events, TraceEvent{Step: s, Src: mesh.NodeID(s % m.Size()), Dst: mesh.NodeID((s*7 + 3) % m.Size()), Class: 1})
	}
	cases := map[string]func() *Source{}
	build := []struct {
		name string
		gen  func() (Generator, error)
	}{
		{"bernoulli", func() (Generator, error) { return NewBernoulliGen(0.1, 60) }},
		{"poisson", func() (Generator, error) { return NewPoisson(0.1, 60) }},
		{"gamma", func() (Generator, error) { return NewRenewal(KindGamma, 0.1, 2.5, 60) }},
		{"weibull", func() (Generator, error) { return NewRenewal(KindWeibull, 0.1, 0.7, 60) }},
		{"onoff", func() (Generator, error) { return NewOnOff(0.4, 8, 16, 60) }},
		{"diurnal", func() (Generator, error) { return NewDiurnal(0.2, 0.8, 32, 60) }},
		{"adversary", func() (Generator, error) { return NewAdversary(2.5, 6, AxisCol, -1, 60) }},
		{"replay", func() (Generator, error) { return NewReplay(events), nil }},
	}
	for _, b := range build {
		b := b
		cases[b.name] = func() *Source {
			g, err := b.gen()
			if err != nil {
				t.Fatal(err)
			}
			src, err := NewSource(g)
			if err != nil {
				t.Fatal(err)
			}
			return src
		}
	}
	// A multi-client composite, since Source state is per generator.
	cases["composite"] = func() *Source {
		g1, err := NewPoisson(0.05, 60)
		if err != nil {
			t.Fatal(err)
		}
		g2, err := NewAdversary(1.5, 4, AxisRow, 2, 50)
		if err != nil {
			t.Fatal(err)
		}
		src, err := NewSource(g1, g2)
		if err != nil {
			t.Fatal(err)
		}
		return src
	}
	return cases
}

func newEngine(t *testing.T, m *mesh.Mesh, seed int64) *sim.Engine {
	t.Helper()
	e, err := sim.New(m, core.NewRestrictedPriority(), nil, sim.Options{
		Seed: seed, Validation: sim.ValidateGreedy, MaxSteps: 5000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestInjectorCheckpointRestoreParity: for every stateful injector, a run
// snapshotted mid-burst and resumed on a fresh engine + fresh source must
// finish bit-identical (same final state hash, time and delivery count) to
// the uninterrupted run.
func TestInjectorCheckpointRestoreParity(t *testing.T) {
	m, err := mesh.New(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	for name, mkSrc := range injectorCases(t, m) {
		t.Run(name, func(t *testing.T) {
			// Reference: uninterrupted run.
			ref := newEngine(t, m, 11)
			ref.SetInjector(mkSrc())
			refRes, err := ref.Run()
			if err != nil {
				t.Fatal(err)
			}

			// Interrupted run: snapshot mid-generation (t=25 is inside every
			// case's generation window), resume on a fresh engine.
			a := newEngine(t, m, 11)
			srcA := mkSrc()
			a.SetInjector(srcA)
			for i := 0; i < 25; i++ {
				if err := a.Step(); err != nil {
					t.Fatal(err)
				}
			}
			snap, err := a.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if !snap.HasInjector || len(snap.InjectorState) == 0 {
				t.Fatalf("snapshot missing injector state (has=%v, %d bytes)", snap.HasInjector, len(snap.InjectorState))
			}

			b := newEngine(t, m, 11)
			b.SetInjector(mkSrc())
			if err := b.Restore(snap); err != nil {
				t.Fatal(err)
			}
			bRes, err := b.Run()
			if err != nil {
				t.Fatal(err)
			}

			if bRes.Delivered != refRes.Delivered || bRes.Steps != refRes.Steps {
				t.Errorf("resumed run diverged: delivered %d/%d steps %d, want %d/%d steps %d",
					bRes.Delivered, bRes.Total, bRes.Steps, refRes.Delivered, refRes.Total, refRes.Steps)
			}
			if bh, rh := b.StateHash(), ref.StateHash(); bh != rh {
				t.Errorf("final state hash %016x != reference %016x", bh, rh)
			}
		})
	}
}

// TestInjectorShardParity: the sharded engine, fed the same source
// configuration and seed, must reproduce the single engine's run exactly —
// injection is part of the bit-identity contract.
func TestInjectorShardParity(t *testing.T) {
	m, err := mesh.New(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := shard.ParseGrid("2x2")
	if err != nil {
		t.Fatal(err)
	}
	for name, mkSrc := range injectorCases(t, m) {
		t.Run(name, func(t *testing.T) {
			// Workers > 1, so tie-breaks come from per-(seed, step, node)
			// streams and the serial stream feeds injection alone — the
			// regime the sharded engine's parity contract is defined on.
			single, err := sim.New(m, core.NewRestrictedPriority(), nil, sim.Options{
				Seed: 7, Validation: sim.ValidateGreedy, MaxSteps: 5000, Workers: 2,
			})
			if err != nil {
				t.Fatal(err)
			}
			single.SetInjector(mkSrc())
			sres, err := single.Run()
			if err != nil {
				t.Fatal(err)
			}

			se, err := shard.New(m, core.NewRestrictedPriority(), nil, shard.Options{
				Grid: grid, Seed: 7, Validation: sim.ValidateGreedy, MaxSteps: 5000,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer se.Close()
			se.SetInjector(mkSrc())
			shres, err := se.Run()
			if err != nil {
				t.Fatal(err)
			}

			if shres.Delivered != sres.Delivered || shres.Steps != sres.Steps {
				t.Errorf("sharded run diverged: delivered %d steps %d, want %d steps %d",
					shres.Delivered, shres.Steps, sres.Delivered, sres.Steps)
			}
			if sh, uh := se.StateHash(), single.StateHash(); sh != uh {
				t.Errorf("final state hash %016x != single engine %016x", sh, uh)
			}
		})
	}
}

// TestInjectorShardCheckpointParity: snapshot/restore bit-identity under the
// sharded engine — resume mid-burst from a manifest, land on the same hash.
func TestInjectorShardCheckpointParity(t *testing.T) {
	m, err := mesh.New(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := shard.ParseGrid("2x2")
	if err != nil {
		t.Fatal(err)
	}
	newShard := func(src *Source) *shard.Engine {
		e, err := shard.New(m, core.NewRestrictedPriority(), nil, shard.Options{
			Grid: grid, Seed: 13, Validation: sim.ValidateGreedy, MaxSteps: 5000,
		})
		if err != nil {
			t.Fatal(err)
		}
		e.SetInjector(src)
		return e
	}
	for name, mkSrc := range injectorCases(t, m) {
		t.Run(name, func(t *testing.T) {
			ref := newShard(mkSrc())
			defer ref.Close()
			refRes, err := ref.Run()
			if err != nil {
				t.Fatal(err)
			}

			a := newShard(mkSrc())
			defer a.Close()
			for i := 0; i < 25; i++ {
				if err := a.Step(); err != nil {
					t.Fatal(err)
				}
			}
			ck, err := a.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			if !ck.Manifest.HasInjector || len(ck.Manifest.InjectorState) == 0 {
				t.Fatal("manifest missing injector state")
			}

			b := newShard(mkSrc())
			defer b.Close()
			if err := b.Restore(ck); err != nil {
				t.Fatal(err)
			}
			bRes, err := b.Run()
			if err != nil {
				t.Fatal(err)
			}
			if bRes.Delivered != refRes.Delivered || bRes.Steps != refRes.Steps {
				t.Errorf("resumed sharded run diverged: delivered %d steps %d, want %d steps %d",
					bRes.Delivered, bRes.Steps, refRes.Delivered, refRes.Steps)
			}
			if bh, rh := b.StateHash(), ref.StateHash(); bh != rh {
				t.Errorf("final state hash %016x != reference %016x", bh, rh)
			}
		})
	}
}

// TestRestoreRejectsWrongShape: restoring a source with a different
// generator count is a spec mismatch, not silent corruption.
func TestRestoreRejectsWrongShape(t *testing.T) {
	g1, _ := NewPoisson(0.1, 10)
	g2, _ := NewPoisson(0.1, 10)
	two, err := NewSource(g1, g2)
	if err != nil {
		t.Fatal(err)
	}
	state, err := two.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	g3, _ := NewPoisson(0.1, 10)
	one, err := NewSource(g3)
	if err != nil {
		t.Fatal(err)
	}
	if err := one.RestoreState(state); err == nil {
		t.Error("restore with mismatched generator count accepted")
	}
}
