package dshard_test

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hotpotato/internal/dshard"
	"hotpotato/internal/mesh"
	"hotpotato/internal/shard"
	"hotpotato/internal/sim"
	"hotpotato/internal/spec"
	"hotpotato/internal/workload"
)

// bouncerPolicy deliberately livelocks: a packet always exits back through
// the arc it entered. It pins the bit-identical-livelock requirement for
// distributed runs (same repeated hash, same detection step).
type bouncerPolicy struct{}

func (bouncerPolicy) Name() string        { return "bouncer" }
func (bouncerPolicy) Deterministic() bool { return true }
func (bouncerPolicy) Clone() sim.Policy   { return bouncerPolicy{} }
func (bouncerPolicy) Route(ns *sim.NodeState, out []mesh.Dir, _ *rand.Rand) {
	for i, p := range ns.Packets {
		if p.EnteredVia != mesh.NoDir {
			out[i] = p.EnteredVia.Opposite()
		} else {
			out[i] = ns.Info(i).Good()[0]
		}
	}
}

// testPolicies is the registry the test coordinator and workers share: the
// real one plus the adversarial bouncer.
func testPolicies(name string) (sim.Policy, error) {
	if name == "bouncer" {
		return bouncerPolicy{}, nil
	}
	return spec.NewPolicy(name)
}

func clonePackets(pkts []*sim.Packet) []*sim.Packet {
	out := make([]*sim.Packet, len(pkts))
	for i, p := range pkts {
		ps := sim.CapturePacket(p)
		out[i] = ps.Packet()
	}
	return out
}

// trace is the reference single-engine run: per-step hashes and live
// counts, the final result and the final state hash.
type trace struct {
	hashes map[int]uint64
	lives  map[int]int
	result *sim.Result
	final  uint64
}

// runRef executes the reference sim.Engine (Workers: 2, so randomized
// policies draw the same per-node streams the shards do) and records its
// whole trajectory.
func runRef(t *testing.T, side int, wrap bool, policy string, pkts []*sim.Packet, seed int64, maxSteps int) *trace {
	t.Helper()
	var m *mesh.Mesh
	if wrap {
		m = mesh.MustNewTorus(2, side)
	} else {
		m = mesh.MustNew(2, side)
	}
	pol, err := testPolicies(policy)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := sim.New(m, pol, clonePackets(pkts), sim.Options{
		Seed: seed, MaxSteps: maxSteps, DetectLivelock: true, Workers: 2,
	})
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	defer ref.Close()
	tr := &trace{hashes: map[int]uint64{}, lives: map[int]int{}}
	for ref.Live() > 0 && !ref.Livelocked() && ref.Time() < maxSteps {
		if err := ref.Step(); err != nil {
			t.Fatalf("sim step %d: %v", ref.Time(), err)
		}
		tr.hashes[ref.Time()] = ref.StateHash()
		tr.lives[ref.Time()] = ref.Live()
	}
	tr.final = ref.StateHash()
	tr.result, err = ref.Run()
	if err != nil {
		t.Fatalf("sim result: %v", err)
	}
	return tr
}

// distOptions returns fast-timeout options for tests; tests override what
// they need.
func distOptions(workers int) dshard.Options {
	return dshard.Options{
		Workers:          workers,
		Token:            "test-token",
		Policies:         testPolicies,
		StepTimeout:      3 * time.Second,
		MaxRetries:       3,
		BackoffBase:      5 * time.Millisecond,
		BackoffMax:       50 * time.Millisecond,
		HeartbeatEvery:   25 * time.Millisecond,
		HeartbeatTimeout: time.Second,
		RejoinTimeout:    10 * time.Second,
		CheckpointEvery:  5,
	}
}

// checkAgainst wires a coordinator's hooks to compare every step against
// the reference trace. Returns a func to call after Run for the final
// comparison.
func checkAgainst(t *testing.T, c *dshard.Coordinator, tr *trace) func(res *sim.Result) {
	t.Helper()
	var mismatches atomic.Int32
	c.StepHook = func(step, live int) {
		if want, ok := tr.lives[step]; ok && live != want && mismatches.Add(1) <= 5 {
			t.Errorf("step %d: live %d, reference %d", step, live, want)
		}
	}
	c.HashHook = func(step int, h uint64) {
		want, ok := tr.hashes[step]
		if !ok {
			if mismatches.Add(1) <= 5 {
				t.Errorf("step %d: distributed hash %#x, reference never reached this step", step, h)
			}
			return
		}
		if h != want && mismatches.Add(1) <= 5 {
			t.Errorf("step %d: state hash diverged: distributed %#x, reference %#x", step, h, want)
		}
	}
	return func(res *sim.Result) {
		t.Helper()
		rr := tr.result
		if res.Steps != rr.Steps || res.Delivered != rr.Delivered || res.Total != rr.Total ||
			res.Livelocked != rr.Livelocked || res.HitMaxSteps != rr.HitMaxSteps ||
			res.TotalDeflections != rr.TotalDeflections || res.TotalHops != rr.TotalHops ||
			res.MaxNodeLoad != rr.MaxNodeLoad || res.Reroutes != rr.Reroutes {
			t.Errorf("results diverged:\n  distributed %+v\n  reference   %+v", res, rr)
		}
		if got := c.StateHash(); got != tr.final {
			t.Errorf("final state hash: distributed %#x, reference %#x", got, tr.final)
		}
	}
}

// TestDistributedParity is the tentpole contract: a coordinator driving
// real worker endpoints over TCP produces a bit-identical trajectory to the
// single engine — per-step state hash, live counts, and the full summary.
func TestDistributedParity(t *testing.T) {
	cases := []struct {
		name    string
		side    int
		wrap    bool
		policy  string
		seed    int64
		grid    shard.Grid
		workers int
	}{
		{"torus6/random/2x2/w2", 6, true, "random", 7, shard.Grid{P: 2, Q: 2}, 2},
		{"torus6/random/2x2/w4", 6, true, "random", 7, shard.Grid{P: 2, Q: 2}, 4},
		{"mesh6/fixed/3x2/w3", 6, false, "fixed", 1, shard.Grid{P: 3, Q: 2}, 3},
		{"torus6/restricted/1x6/w2", 6, true, "restricted", 42, shard.Grid{P: 1, Q: 6}, 2},
		{"mesh8/random/4x2/w3", 8, false, "random", 11, shard.Grid{P: 4, Q: 2}, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var m *mesh.Mesh
			if tc.wrap {
				m = mesh.MustNewTorus(2, tc.side)
			} else {
				m = mesh.MustNew(2, tc.side)
			}
			pkts := workload.Permutation(m, rand.New(rand.NewSource(tc.seed)))
			tr := runRef(t, tc.side, tc.wrap, tc.policy, pkts, tc.seed, 300)

			opts := distOptions(tc.workers)
			opts.Spawn = dshard.InProcessSpawner(dshard.WorkerOptions{Token: opts.Token, Policies: testPolicies})
			c, err := dshard.New(dshard.Spec{
				Side: tc.side, Wrap: tc.wrap, Policy: tc.policy, Grid: tc.grid,
				Seed: tc.seed, MaxSteps: 300, DetectLivelock: true,
			}, clonePackets(pkts), opts)
			if err != nil {
				t.Fatalf("dshard.New: %v", err)
			}
			final := checkAgainst(t, c, tr)
			res, err := c.Run(context.Background())
			if err != nil {
				t.Fatalf("distributed run: %v", err)
			}
			final(res)
		})
	}
}

// TestDistributedLivelockParity pins the livelock contract across the
// process boundary: the distributed run must detect the same repeated hash
// at the same step as the reference.
func TestDistributedLivelockParity(t *testing.T) {
	m := mesh.MustNewTorus(2, 4)
	pkts := []*sim.Packet{
		sim.NewPacket(0, m.ID([]int{0, 0}), m.ID([]int{2, 0})),
		sim.NewPacket(1, m.ID([]int{1, 1}), m.ID([]int{3, 1})),
		sim.NewPacket(2, m.ID([]int{3, 2}), m.ID([]int{1, 2})),
	}
	tr := runRef(t, 4, true, "bouncer", pkts, 5, 200)
	if !tr.result.Livelocked {
		t.Fatal("the fixture must livelock")
	}
	opts := distOptions(2)
	opts.Spawn = dshard.InProcessSpawner(dshard.WorkerOptions{Token: opts.Token, Policies: testPolicies})
	c, err := dshard.New(dshard.Spec{
		Side: 4, Wrap: true, Policy: "bouncer", Grid: shard.Grid{P: 2, Q: 2},
		Seed: 5, MaxSteps: 200, DetectLivelock: true,
	}, clonePackets(pkts), opts)
	if err != nil {
		t.Fatal(err)
	}
	final := checkAgainst(t, c, tr)
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatalf("distributed run: %v", err)
	}
	if !res.Livelocked {
		t.Error("distributed run did not detect the livelock")
	}
	final(res)
}

// killableSpawner wraps InProcessSpawner and remembers each slot's current
// proc so the test can kill workers mid-run.
type killableSpawner struct {
	inner func(slot int, addr string) (dshard.WorkerProc, error)
	mu    sync.Mutex
	procs map[int]dshard.WorkerProc
}

func newKillableSpawner(base dshard.WorkerOptions) *killableSpawner {
	return &killableSpawner{inner: dshard.InProcessSpawner(base), procs: map[int]dshard.WorkerProc{}}
}

func (k *killableSpawner) spawn(slot int, addr string) (dshard.WorkerProc, error) {
	p, err := k.inner(slot, addr)
	if err != nil {
		return nil, err
	}
	k.mu.Lock()
	k.procs[slot] = p
	k.mu.Unlock()
	return p, nil
}

func (k *killableSpawner) kill(slot int) {
	k.mu.Lock()
	p := k.procs[slot]
	k.mu.Unlock()
	if p != nil {
		p.Stop()
	}
}

// TestDistributedKillRejoin is the headline robustness test: five separate
// worker kills across the run, each after fresh forward progress, and the
// recovered run's trajectory must remain bit-identical to the reference —
// per-step hashes, live counts, final summary, final state hash. Zero lost
// state, five rejoins.
func TestDistributedKillRejoin(t *testing.T) {
	const side, seed, maxSteps, kills = 8, 9, 400, 5
	m := mesh.MustNewTorus(2, side)
	pkts, err := workload.FullLoad(m, 2, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	tr := runRef(t, side, true, "random", pkts, seed, maxSteps)

	// Slow each step down so the kills land mid-run: loopback steps take
	// microseconds, and a kill after Run has finished tests nothing.
	sp := newKillableSpawner(dshard.WorkerOptions{
		Token: "test-token", Policies: testPolicies,
		TestHookPreRoute: func(int) { time.Sleep(5 * time.Millisecond) },
	})
	opts := distOptions(4)
	opts.Spawn = sp.spawn
	opts.CheckpointEvery = 4
	opts.MaxRecoveries = 40
	c, err := dshard.New(dshard.Spec{
		Side: side, Wrap: true, Policy: "random", Grid: shard.Grid{P: 2, Q: 2},
		Seed: seed, MaxSteps: maxSteps, DetectLivelock: true,
	}, clonePackets(pkts), opts)
	if err != nil {
		t.Fatal(err)
	}
	final := checkAgainst(t, c, tr)

	// The killer waits for three completed steps of forward progress, then
	// kills a worker — so every kill lands on a healthy, advancing fleet
	// and each must force its own recovery.
	var stepEvents atomic.Int64
	inner := c.StepHook
	c.StepHook = func(step, live int) {
		stepEvents.Add(1)
		inner(step, live)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		last := int64(0)
		for i := 0; i < kills; i++ {
			deadline := time.Now().Add(30 * time.Second)
			for stepEvents.Load() < last+3 {
				if time.Now().After(deadline) {
					t.Errorf("kill %d: no forward progress", i)
					return
				}
				time.Sleep(5 * time.Millisecond)
			}
			sp.kill(i % opts.Workers)
			last = stepEvents.Load()
		}
	}()

	res, err := c.Run(context.Background())
	<-done
	if err != nil {
		t.Fatalf("distributed run with kills: %v", err)
	}
	final(res)
	if got := c.Recoveries(); got < kills {
		t.Errorf("recoveries: %d, want >= %d (every kill must force a rejoin)", got, kills)
	}
	t.Logf("survived %d kills with %d recoveries", kills, c.Recoveries())
}

// TestDistributedTransportFaults runs with a lossy transport on every
// worker — drops, duplicates, delays — and requires the retry/idempotency
// machinery to absorb all of it: same trajectory, same summary.
func TestDistributedTransportFaults(t *testing.T) {
	const side, seed, maxSteps = 6, 3, 300
	m := mesh.MustNewTorus(2, side)
	pkts := workload.Permutation(m, rand.New(rand.NewSource(seed)))
	tr := runRef(t, side, true, "random", pkts, seed, maxSteps)

	opts := distOptions(2)
	opts.Spawn = dshard.InProcessSpawner(dshard.WorkerOptions{
		Token: opts.Token, Policies: testPolicies,
		Faults: &dshard.FaultPlan{Seed: 21, DropEvery: 13, DupEvery: 7, DelayEvery: 9, Delay: 10 * time.Millisecond},
	})
	c, err := dshard.New(dshard.Spec{
		Side: side, Wrap: true, Policy: "random", Grid: shard.Grid{P: 2, Q: 2},
		Seed: seed, MaxSteps: maxSteps, DetectLivelock: true,
	}, clonePackets(pkts), opts)
	if err != nil {
		t.Fatal(err)
	}
	final := checkAgainst(t, c, tr)
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatalf("run under transport faults: %v", err)
	}
	final(res)
	t.Logf("lossy transport absorbed with %d recoveries", c.Recoveries())
}

// TestDistributedCorruptFrameRecovery injects frame corruption into one
// worker's stream: the CRC must catch it (never a silent misparse), the
// coordinator must declare the worker failed and recover, and the healed
// run must stay bit-identical.
func TestDistributedCorruptFrameRecovery(t *testing.T) {
	const side, seed, maxSteps = 6, 17, 300
	m := mesh.MustNewTorus(2, side)
	pkts := workload.Permutation(m, rand.New(rand.NewSource(seed)))
	tr := runRef(t, side, true, "fixed", pkts, seed, maxSteps)

	// Only slot 0's first incarnation is faulty; its respawn is clean, so
	// the run heals rather than looping corrupt forever.
	clean := dshard.WorkerOptions{Token: "test-token", Policies: testPolicies}
	faulty := clean
	// Frame 10 of slot 0's stream (an APPLIED around step 4) gets mangled —
	// early enough that even a short run is guaranteed to reach it.
	faulty.Faults = &dshard.FaultPlan{Seed: 2, CorruptEvery: 10, MaxFaults: 1}
	cleanSpawn := dshard.InProcessSpawner(clean)
	faultySpawn := dshard.InProcessSpawner(faulty)
	var first atomic.Bool
	first.Store(true)
	opts := distOptions(2)
	opts.Spawn = func(slot int, addr string) (dshard.WorkerProc, error) {
		if slot == 0 && first.CompareAndSwap(true, false) {
			return faultySpawn(slot, addr)
		}
		return cleanSpawn(slot, addr)
	}
	c, err := dshard.New(dshard.Spec{
		Side: side, Wrap: true, Policy: "fixed", Grid: shard.Grid{P: 2, Q: 1},
		Seed: seed, MaxSteps: maxSteps, DetectLivelock: true,
	}, clonePackets(pkts), opts)
	if err != nil {
		t.Fatal(err)
	}
	final := checkAgainst(t, c, tr)
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatalf("run with corrupt frames: %v", err)
	}
	final(res)
	if c.Recoveries() < 1 {
		t.Error("corruption never triggered a recovery — the fault did not fire")
	}
}

// TestDistributedResumeAcrossGrids stops a distributed 2x2 run mid-flight
// (context cancel), then resumes the saved checkpoint on a different grid
// (4x1) with a different worker count — and the stitched-together run must
// land on exactly the reference's final summary and state hash.
func TestDistributedResumeAcrossGrids(t *testing.T) {
	const side, seed, maxSteps = 6, 29, 300
	m := mesh.MustNewTorus(2, side)
	pkts, err := workload.FullLoad(m, 2, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	tr := runRef(t, side, true, "random", pkts, seed, maxSteps)
	dir := t.TempDir()

	// Phase 1: run on 2x2, cancel after step 10. The pre-route sleep keeps
	// the run alive long enough for the cancellation to land mid-flight.
	opts := distOptions(2)
	opts.Spawn = dshard.InProcessSpawner(dshard.WorkerOptions{
		Token: opts.Token, Policies: testPolicies,
		TestHookPreRoute: func(int) { time.Sleep(5 * time.Millisecond) },
	})
	opts.CheckpointDir = dir
	opts.CheckpointEvery = 2
	sp := dshard.Spec{
		Side: side, Wrap: true, Policy: "random", Grid: shard.Grid{P: 2, Q: 2},
		Seed: seed, MaxSteps: maxSteps, DetectLivelock: true,
	}
	c1, err := dshard.New(sp, clonePackets(pkts), opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	c1.StepHook = func(step, live int) {
		if step >= 4 {
			cancel()
		}
	}
	if _, err := c1.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("phase 1: err %v, want context.Canceled", err)
	}
	if c1.Time() < 4 {
		t.Fatalf("phase 1 stopped at step %d, want >= 4", c1.Time())
	}

	// Phase 2: load the saved checkpoint and finish on 4x1 with 4 workers.
	ck, err := shard.LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	sp2 := sp
	sp2.Grid = shard.Grid{P: 4, Q: 1}
	opts2 := distOptions(4)
	opts2.Spawn = dshard.InProcessSpawner(dshard.WorkerOptions{Token: opts2.Token, Policies: testPolicies})
	opts2.Resume = ck
	c2, err := dshard.New(sp2, nil, opts2)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	final := checkAgainst(t, c2, tr)
	res, err := c2.Run(context.Background())
	if err != nil {
		t.Fatalf("phase 2: %v", err)
	}
	final(res)
	t.Logf("resumed %s checkpoint of step %d on %s, finished at step %d",
		sp.Grid, ck.Manifest.Time, sp2.Grid, c2.Time())
}

// TestDistributedDegenerateGridRestore resumes a mid-flight 2x2 checkpoint
// on the degenerate grids — 1xk (a single row of column strips) and kx1 (a
// single column of row strips) — while every worker runs a lossy transport
// for the whole resumed leg. Degenerate grids are where the halo exchange
// is most asymmetric (each shard borders at most two neighbours, and the
// strip edges carry the entire cross-shard traffic), so a restore bug that
// mis-partitions boundary packets shows up here first. The fault overlay
// stays active throughout: retries and duplicate-skipping must absorb it
// without perturbing the trajectory.
func TestDistributedDegenerateGridRestore(t *testing.T) {
	const side, seed, maxSteps = 6, 41, 300
	m := mesh.MustNewTorus(2, side)
	pkts, err := workload.FullLoad(m, 2, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	tr := runRef(t, side, true, "random", pkts, seed, maxSteps)
	dir := t.TempDir()

	// Phase 1: an intact 2x2 run cancelled mid-flight leaves a coordinated
	// checkpoint behind.
	opts := distOptions(2)
	opts.Spawn = dshard.InProcessSpawner(dshard.WorkerOptions{
		Token: opts.Token, Policies: testPolicies,
		TestHookPreRoute: func(int) { time.Sleep(5 * time.Millisecond) },
	})
	opts.CheckpointDir = dir
	opts.CheckpointEvery = 2
	sp := dshard.Spec{
		Side: side, Wrap: true, Policy: "random", Grid: shard.Grid{P: 2, Q: 2},
		Seed: seed, MaxSteps: maxSteps, DetectLivelock: true,
	}
	c1, err := dshard.New(sp, clonePackets(pkts), opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	c1.StepHook = func(step, live int) {
		if step >= 4 {
			cancel()
		}
	}
	if _, err := c1.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("phase 1: err %v, want context.Canceled", err)
	}

	for _, tc := range []struct {
		name string
		grid shard.Grid
	}{
		{"1xk", shard.Grid{P: 1, Q: 4}},
		{"kx1", shard.Grid{P: 4, Q: 1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ck, err := shard.LoadDir(dir)
			if err != nil {
				t.Fatalf("LoadDir: %v", err)
			}
			sp2 := sp
			sp2.Grid = tc.grid
			opts2 := distOptions(2)
			opts2.Spawn = dshard.InProcessSpawner(dshard.WorkerOptions{
				Token: opts2.Token, Policies: testPolicies,
				Faults: &dshard.FaultPlan{Seed: 5, DropEvery: 11, DupEvery: 5, DelayEvery: 8, Delay: 5 * time.Millisecond},
			})
			opts2.Resume = ck
			c2, err := dshard.New(sp2, nil, opts2)
			if err != nil {
				t.Fatalf("resume on %s: %v", tc.grid, err)
			}
			final := checkAgainst(t, c2, tr)
			res, err := c2.Run(context.Background())
			if err != nil {
				t.Fatalf("resumed run on %s under faults: %v", tc.grid, err)
			}
			final(res)
			t.Logf("resumed step-%d checkpoint on %s under lossy transport; finished at step %d",
				ck.Manifest.Time, tc.grid, c2.Time())
		})
	}
}

// TestDistributedRejects covers coordinator constructor validation.
func TestDistributedRejects(t *testing.T) {
	good := dshard.Spec{Side: 6, Policy: "random", Grid: shard.Grid{P: 2, Q: 2}}
	if _, err := dshard.New(good, nil, dshard.Options{Workers: 1}); err == nil {
		t.Error("missing Policies: want error")
	}
	if _, err := dshard.New(good, nil, distOptions(5)); err == nil {
		t.Error("more workers than shards: want error")
	}
	if _, err := dshard.New(good, nil, distOptions(0)); err == nil {
		t.Error("zero workers: want error")
	}
	bad := good
	bad.Policy = "no-such-policy"
	if _, err := dshard.New(bad, nil, distOptions(2)); err == nil {
		t.Error("unknown policy: want error")
	}
	m := mesh.MustNew(2, 6)
	dup := []*sim.Packet{sim.NewPacket(0, 0, 5), sim.NewPacket(0, 1, 6)}
	_ = m
	if _, err := dshard.New(good, dup, distOptions(2)); !errors.Is(err, sim.ErrBadInjection) {
		t.Errorf("duplicate ids: err %v, want ErrBadInjection", err)
	}
}
