package dshard

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"hotpotato/internal/mesh"
	"hotpotato/internal/run"
	"hotpotato/internal/shard"
	"hotpotato/internal/sim"
)

// WorkerOptions configures one worker endpoint.
type WorkerOptions struct {
	// Token must match the coordinator's; HELLO carries it.
	Token string
	// Slot is the barrier slot to request: a respawned worker reclaims its
	// old slot, -1 lets the coordinator pick.
	Slot int
	// Policies resolves the policy name from ASSIGN; typically
	// spec.NewPolicy. Required.
	Policies func(name string) (sim.Policy, error)
	// MaxFrame caps inbound frame payloads; <= 0 means DefaultMaxFrame.
	MaxFrame int
	// Faults, when non-nil, injects transport faults into every outbound
	// frame (test and chaos rigs only).
	Faults *FaultPlan
	// Logf, when non-nil, receives one line per notable event.
	Logf func(format string, args ...any)
	// TestHookPreRoute, when non-nil, runs before each route phase — the
	// chaos tests hang or crash a worker here at a chosen step.
	TestHookPreRoute func(t int)
}

func (o *WorkerOptions) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// defaultHeartbeat is the heartbeat interval when ASSIGN does not set one.
const defaultHeartbeat = 200 * time.Millisecond

// worker is the per-connection protocol state machine.
type worker struct {
	opts WorkerOptions
	conn net.Conn
	br   *bufio.Reader
	out  io.Writer // conn, possibly behind a faultWriter
	wmu  sync.Mutex

	epoch   uint64
	node    *shard.Node
	hashing bool
	curT    int
	routedT int
	// needLoad latches after any step failure: the worker's state may be
	// torn mid-phase, so ROUTE/APPLY are refused until the coordinator
	// reloads it from a checkpoint.
	needLoad bool

	egressCache  cachedFrame
	appliedCache cachedFrame

	hbOnce sync.Once
	hbStop chan struct{}
}

// cachedFrame is the worker's idempotency device: the encoded response of
// the last completed request of one kind, keyed by (epoch, step). A retried
// request resends these exact bytes instead of re-executing — re-routing a
// step would double-count Reroutes/MaxNodeLoad and re-applying would
// corrupt state, so the cache is what makes the coordinator's retries safe.
type cachedFrame struct {
	ok      bool
	epoch   uint64
	t       int
	typ     byte
	payload []byte
}

func (c *cachedFrame) hit(epoch uint64, t int) bool {
	return c.ok && c.epoch == epoch && c.t == t
}

func (c *cachedFrame) store(epoch uint64, t int, typ byte, payload []byte) {
	*c = cachedFrame{ok: true, epoch: epoch, t: t, typ: typ, payload: payload}
}

// ServeWorker speaks the worker side of the protocol on conn until the
// coordinator sends SHUTDOWN (nil return), the context is cancelled, or the
// connection fails. The caller owns conn's lifetime on error paths.
func ServeWorker(ctx context.Context, conn net.Conn, opts WorkerOptions) error {
	if opts.Policies == nil {
		return errors.New("dshard: WorkerOptions.Policies is required")
	}
	w := &worker{
		opts:    opts,
		conn:    conn,
		br:      bufio.NewReaderSize(conn, 64<<10),
		out:     newFaultWriter(conn, opts.Faults),
		routedT: -1,
		hbStop:  make(chan struct{}),
	}
	defer close(w.hbStop)

	// Unblock the read loop when the context dies.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			conn.SetDeadline(time.Now())
			conn.Close()
		case <-watchDone:
		}
	}()

	hello := msgHello{Proto: protoVersion, Token: opts.Token, Slot: opts.Slot}
	if err := w.send(mtHello, hello.encode()); err != nil {
		return fmt.Errorf("dshard: hello: %w", err)
	}
	for {
		typ, payload, err := ReadFrame(w.br, opts.MaxFrame)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("dshard: worker read: %w", err)
		}
		done, err := w.dispatch(typ, payload)
		if done || err != nil {
			return err
		}
	}
}

func (w *worker) send(typ byte, payload []byte) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	return WriteFrame(w.out, typ, payload)
}

// sendError reports a failed request. Non-fatal errors additionally latch
// needLoad: the worker's shard state may be torn, so only a LOAD can
// re-enter the barrier.
func (w *worker) sendError(fatal bool, err error) error {
	if !fatal {
		w.needLoad = true
	}
	w.opts.logf("worker slot %d: step error (fatal=%v): %v", w.opts.Slot, fatal, err)
	m := msgError{Epoch: w.epoch, Fatal: fatal, Msg: err.Error()}
	return w.send(mtError, m.encode())
}

func (w *worker) dispatch(typ byte, payload []byte) (done bool, err error) {
	switch typ {
	case mtAssign:
		return false, w.onAssign(payload)
	case mtLoad:
		return false, w.onLoad(payload)
	case mtRoute:
		return false, w.onRoute(payload)
	case mtApply:
		return false, w.onApply(payload)
	case mtCkpt:
		return false, w.onCkpt(payload)
	case mtShutdown:
		return true, nil
	default:
		// Unknown but CRC-valid frame: a newer coordinator speaking an
		// extension this build does not know. Ignoring it is safer than
		// dying — the coordinator will time out and recover if it mattered.
		w.opts.logf("worker slot %d: ignoring unknown frame type %d", w.opts.Slot, typ)
		return false, nil
	}
}

func (w *worker) onAssign(payload []byte) error {
	a, err := decodeAssign(payload)
	if err != nil {
		return err
	}
	var m *mesh.Mesh
	if a.Wrap {
		m, err = mesh.NewTorus(2, a.Side)
	} else {
		m, err = mesh.New(2, a.Side)
	}
	if err != nil {
		return w.sendError(true, fmt.Errorf("assign: %w", err))
	}
	policy, err := w.opts.Policies(a.Policy)
	if err != nil {
		return w.sendError(true, fmt.Errorf("assign: %w", err))
	}
	node, err := shard.NewNode(m, policy, shard.Grid{P: a.GridP, Q: a.GridQ}, a.Owned, a.Seed, sim.ValidationLevel(a.Validation))
	if err != nil {
		return w.sendError(true, fmt.Errorf("assign: %w", err))
	}
	w.node = node
	w.hashing = a.HashWords
	w.epoch = a.Epoch
	w.needLoad = true
	w.routedT = -1
	w.egressCache.ok = false
	w.appliedCache.ok = false

	hb := time.Duration(a.HeartbeatMillis) * time.Millisecond
	if hb <= 0 {
		hb = defaultHeartbeat
	}
	w.hbOnce.Do(func() { go w.heartbeat(hb) })
	return nil
}

// heartbeat sends spontaneous liveness beacons. It runs concurrently with
// the dispatch loop (the write mutex interleaves the frames), so the
// coordinator can distinguish a dead or frozen process — beacons stop —
// from one that is merely computing a long phase, where they keep flowing.
func (w *worker) heartbeat(every time.Duration) {
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-w.hbStop:
			return
		case <-tick.C:
			if w.send(mtHeartbeat, nil) != nil {
				return
			}
		}
	}
}

func (w *worker) onLoad(payload []byte) error {
	l, err := decodeLoad(payload)
	if err != nil {
		return err
	}
	if l.Epoch < w.epoch {
		return nil // stale request from before a recovery; drop it
	}
	if w.node == nil {
		return w.sendError(true, errors.New("load before assign"))
	}
	w.epoch = l.Epoch
	loaded := make(map[int]bool, len(l.Shards))
	for i := range l.Shards {
		if err := w.node.LoadShard(l.Shards[i].Index, l.Shards[i].Packets); err != nil {
			return w.sendError(true, fmt.Errorf("load: %w", err))
		}
		loaded[l.Shards[i].Index] = true
	}
	// Shards the message omitted are empty at this step; clear them too so
	// a rollback never leaves stale packets behind.
	for _, idx := range w.node.Owned() {
		if !loaded[idx] {
			if err := w.node.LoadShard(idx, nil); err != nil {
				return w.sendError(true, fmt.Errorf("load: %w", err))
			}
		}
	}
	w.curT = l.T
	w.routedT = -1
	w.needLoad = false
	w.egressCache.ok = false
	w.appliedCache.ok = false
	ack := msgStep{Epoch: w.epoch, T: l.T}
	return w.send(mtLoaded, ack.encode())
}

// stepGate applies the shared request admission rules for ROUTE/APPLY/CKPT:
// stale epochs are dropped, future epochs mean a missed LOAD, and a latched
// failure refuses everything until reload. It returns (proceed, err).
func (w *worker) stepGate(epoch uint64, what string) (bool, error) {
	if epoch < w.epoch {
		return false, nil
	}
	if epoch > w.epoch {
		return false, w.sendError(false, fmt.Errorf("%s: epoch %d ahead of worker epoch %d (missed load)", what, epoch, w.epoch))
	}
	if w.node == nil || w.needLoad {
		return false, w.sendError(false, fmt.Errorf("%s: worker needs reload", what))
	}
	return true, nil
}

func (w *worker) onRoute(payload []byte) error {
	s, err := decodeStep(payload)
	if err != nil {
		return err
	}
	if w.egressCache.hit(s.Epoch, s.T) {
		return w.send(w.egressCache.typ, w.egressCache.payload)
	}
	ok, err := w.stepGate(s.Epoch, "route")
	if !ok {
		return err
	}
	if s.T != w.curT {
		return w.sendError(false, fmt.Errorf("route: step %d, worker at step %d", s.T, w.curT))
	}
	if w.opts.TestHookPreRoute != nil {
		w.opts.TestHookPreRoute(s.T)
	}
	buckets, err := w.node.Route(s.T)
	if err != nil {
		return w.sendError(!errors.Is(err, sim.ErrPolicyPanic), err)
	}
	w.routedT = s.T
	resp := msgEgress{Epoch: w.epoch, T: s.T, Buckets: buckets}
	w.egressCache.store(w.epoch, s.T, mtEgress, resp.encode())
	return w.send(mtEgress, w.egressCache.payload)
}

func (w *worker) onApply(payload []byte) error {
	a, err := decodeEgress(payload)
	if err != nil {
		return err
	}
	if w.appliedCache.hit(a.Epoch, a.T) {
		return w.send(w.appliedCache.typ, w.appliedCache.payload)
	}
	ok, err := w.stepGate(a.Epoch, "apply")
	if !ok {
		return err
	}
	if a.T != w.curT || w.routedT != a.T {
		return w.sendError(false, fmt.Errorf("apply: step %d, worker at step %d (routed %d)", a.T, w.curT, w.routedT))
	}
	rep, err := w.node.Apply(a.T, a.Buckets)
	if err != nil {
		return w.sendError(false, err)
	}
	resp := msgApplied{
		Epoch: w.epoch, T: a.T,
		Hops: rep.Hops, Deflections: rep.Deflections,
		Arrivals: rep.Arrivals, LastArrival: rep.LastArrival,
		Reroutes: rep.Reroutes, MaxNodeLoad: rep.MaxNodeLoad,
		Finalized: rep.Finalized,
	}
	if w.hashing {
		for _, idx := range w.node.Owned() {
			words, err := w.node.HashWords(idx, nil)
			if err != nil {
				return w.sendError(false, err)
			}
			resp.Blocks = append(resp.Blocks, hashBlock{Shard: idx, Words: words})
		}
	}
	w.curT = a.T + 1
	w.routedT = -1
	w.appliedCache.store(w.epoch, a.T, mtApplied, resp.encode())
	return w.send(mtApplied, w.appliedCache.payload)
}

func (w *worker) onCkpt(payload []byte) error {
	s, err := decodeStep(payload)
	if err != nil {
		return err
	}
	ok, err := w.stepGate(s.Epoch, "ckpt")
	if !ok {
		return err
	}
	if s.T != w.curT {
		return w.sendError(false, fmt.Errorf("ckpt: step %d, worker at step %d", s.T, w.curT))
	}
	resp := msgParts{Epoch: w.epoch, T: s.T}
	for _, idx := range w.node.Owned() {
		part, err := w.node.Part(idx, s.T)
		if err != nil {
			return w.sendError(false, err)
		}
		resp.Parts = append(resp.Parts, part)
	}
	// Checkpoint capture is read-only, hence naturally idempotent: a
	// retried CKPT just recaptures the same state. No cache needed.
	return w.send(mtParts, resp.encode())
}

// Dial connects to a coordinator address: paths (containing a '/') dial
// unix sockets, everything else TCP.
func Dial(addr string) (net.Conn, error) {
	if strings.Contains(addr, "/") {
		return net.Dial("unix", addr)
	}
	return net.Dial("tcp", addr)
}

// Listen is Dial's listener counterpart, used by the coordinator.
func Listen(addr string) (net.Listener, error) {
	if strings.Contains(addr, "/") {
		return net.Listen("unix", addr)
	}
	return net.Listen("tcp", addr)
}

// ErrDial reports that RunWorker never reached the coordinator at all — as
// opposed to losing an established connection, which a worker should answer
// by dialing back in. Callers use the distinction to decide between
// rejoining and giving up.
var ErrDial = errors.New("dshard: coordinator unreachable")

// RunWorker dials the coordinator (with jittered-backoff retries, since a
// freshly spawned worker often races the listener) and serves the protocol
// until shutdown. This is cmd/shardworker's whole job.
func RunWorker(ctx context.Context, addr string, opts WorkerOptions) error {
	var conn net.Conn
	var err error
	for attempt := 1; ; attempt++ {
		conn, err = Dial(addr)
		if err == nil {
			break
		}
		if attempt >= 8 {
			return fmt.Errorf("%w: dial %s: %v", ErrDial, addr, err)
		}
		delay := run.BackoffDelay(50*time.Millisecond, time.Second, 0, fmt.Sprintf("dial-%d", opts.Slot), attempt)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(delay):
		}
	}
	defer conn.Close()
	return ServeWorker(ctx, conn, opts)
}
