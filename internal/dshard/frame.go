// Package dshard executes one PxQ sharded routing run across OS processes:
// a coordinator (cmd/shardcoord, or a hotpotatod job in distributed mode)
// drives the step barrier, and each worker process (cmd/shardworker) hosts a
// subset of the decomposition's shards through shard.Node. The halo exchange
// — PR 7's receiver-keyed egress buckets — travels over a length-prefixed,
// CRC-framed protocol on TCP or unix sockets.
//
// Robustness is the package's headline: the coordinator enforces per-step
// deadlines with bounded, jitter-backoff retries (requests are idempotent —
// workers cache their last response per step and resend it, so a retried
// ROUTE never re-routes and never double-counts); worker liveness is
// tracked by spontaneous heartbeats; and on worker death (kill -9, hang,
// corrupt stream) the coordinator pauses the barrier, re-spawns or
// re-admits the worker, bumps the protocol epoch, and rolls every worker
// back to the last coordinated checkpoint. Determinism is inherited from
// internal/shard, so a recovered distributed run stays bit-identical to a
// single-engine run: same per-step state hash, same livelock step, same
// summary. See DESIGN.md §11.
package dshard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame layout: a fixed 14-byte header followed by the payload.
//
//	offset 0  magic "HPWF" (hot-potato wire frame)
//	offset 4  protocol version (1 byte)
//	offset 5  message type (1 byte)
//	offset 6  payload length, uint32 little-endian
//	offset 10 CRC-32 (IEEE) over version, type and payload, uint32 LE
//
// The CRC covers the type and version bytes so a corrupted type cannot
// redirect a valid payload, and the length field is capped before any
// allocation so a corrupted length cannot OOM the reader. Any mismatch
// surfaces as ErrFrameCorrupt — corruption is always loud, never a silent
// misparse.
const (
	frameHeaderLen = 14
	frameVersion   = 1
)

var frameMagic = [4]byte{'H', 'P', 'W', 'F'}

// DefaultMaxFrame is the default cap on one frame's payload length. Halo
// buckets scale with boundary traffic, not mesh size, so even huge runs sit
// far below this.
const DefaultMaxFrame = 64 << 20

// ErrFrameCorrupt reports a frame that failed structural validation: bad
// magic, unknown version, oversized length, or CRC mismatch. It is the
// transport's loud corruption signal; the coordinator treats it as a worker
// failure and recovers via checkpoint rollback rather than guessing at a
// resync.
var ErrFrameCorrupt = errors.New("dshard: corrupt frame")

// AppendFrame appends one encoded frame to dst and returns it.
func AppendFrame(dst []byte, typ byte, payload []byte) []byte {
	off := len(dst)
	dst = append(dst, frameMagic[:]...)
	dst = append(dst, frameVersion, typ)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	crc := crc32.NewIEEE()
	crc.Write(dst[off+4 : off+6])
	crc.Write(payload)
	dst = binary.LittleEndian.AppendUint32(dst, crc.Sum32())
	return append(dst, payload...)
}

// WriteFrame writes one frame as a single Write call — the granularity the
// fault injector (and TCP packet boundaries under it) observes.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	buf := AppendFrame(make([]byte, 0, frameHeaderLen+len(payload)), typ, payload)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads one frame. Transport errors (EOF, timeouts) pass through
// verbatim; structural violations return ErrFrameCorrupt. maxFrame <= 0
// means DefaultMaxFrame.
func ReadFrame(r io.Reader, maxFrame int) (typ byte, payload []byte, err error) {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	if [4]byte(hdr[:4]) != frameMagic {
		return 0, nil, fmt.Errorf("%w: bad magic %q", ErrFrameCorrupt, hdr[:4])
	}
	if hdr[4] != frameVersion {
		return 0, nil, fmt.Errorf("%w: version %d, this build speaks %d", ErrFrameCorrupt, hdr[4], frameVersion)
	}
	typ = hdr[5]
	n := binary.LittleEndian.Uint32(hdr[6:10])
	if n > uint32(maxFrame) {
		return 0, nil, fmt.Errorf("%w: payload length %d exceeds cap %d", ErrFrameCorrupt, n, maxFrame)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, fmt.Errorf("%w: truncated payload: %v", ErrFrameCorrupt, err)
		}
		return 0, nil, err
	}
	crc := crc32.NewIEEE()
	crc.Write(hdr[4:6])
	crc.Write(payload)
	if got, want := crc.Sum32(), binary.LittleEndian.Uint32(hdr[10:14]); got != want {
		return 0, nil, fmt.Errorf("%w: CRC mismatch (frame %#08x, computed %#08x)", ErrFrameCorrupt, want, got)
	}
	return typ, payload, nil
}
