package dshard

import (
	"io"
	"sync"
	"time"

	"hotpotato/internal/rng"
)

// FaultPlan schedules deterministic transport faults at frame granularity,
// in the spirit of internal/fault's scripted link schedules: every Nth
// outbound frame is dropped, duplicated, corrupted, or delayed. Each fault
// class exercises a different recovery layer — drops and delays are
// absorbed by the coordinator's bounded retry (workers resend cached
// responses), duplicates by its stale-frame skipping, and corruption must
// surface as ErrFrameCorrupt and trigger checkpoint rollback, never silent
// divergence.
type FaultPlan struct {
	// Seed drives the corrupted-byte choice; the schedule itself is purely
	// counter-based so a plan is reproducible frame-for-frame.
	Seed int64
	// Every Nth frame (1-based count of frames written) suffers the fault;
	// 0 disables the class. When several classes land on the same frame,
	// exactly one fires: corrupt > drop > dup > delay.
	CorruptEvery int
	DropEvery    int
	DupEvery     int
	DelayEvery   int
	// Delay is how long a delayed frame is held back.
	Delay time.Duration
	// MaxFaults stops injecting after that many faults fired, so a faulty
	// run still terminates. 0 means unlimited.
	MaxFaults int
}

// active reports whether the plan injects anything.
func (fp *FaultPlan) active() bool {
	return fp != nil && (fp.CorruptEvery > 0 || fp.DropEvery > 0 || fp.DupEvery > 0 || fp.DelayEvery > 0)
}

// faultWriter applies a FaultPlan to a frame stream. It relies on
// WriteFrame's one-Write-per-frame contract: each Write call is one frame,
// so faults land on frame boundaries exactly like a lossy transport.
type faultWriter struct {
	w    io.Writer
	plan FaultPlan

	mu     sync.Mutex
	n      int // frames seen
	fired  int // faults injected
	src    rng.SplitMix64
	seeded bool
}

// newFaultWriter wraps w; a nil or inactive plan returns w unchanged.
func newFaultWriter(w io.Writer, plan *FaultPlan) io.Writer {
	if !plan.active() {
		return w
	}
	return &faultWriter{w: w, plan: *plan}
}

func (f *faultWriter) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.seeded {
		f.src.Seed(f.plan.Seed)
		f.seeded = true
	}
	f.n++
	if f.plan.MaxFaults > 0 && f.fired >= f.plan.MaxFaults {
		return f.w.Write(p)
	}
	hit := func(every int) bool { return every > 0 && f.n%every == 0 }
	switch {
	case hit(f.plan.CorruptEvery):
		f.fired++
		buf := make([]byte, len(p))
		copy(buf, p)
		if len(buf) > 0 {
			buf[f.src.Uint64()%uint64(len(buf))] ^= byte(1 + f.src.Uint64()%255)
		}
		if _, err := f.w.Write(buf); err != nil {
			return 0, err
		}
		return len(p), nil
	case hit(f.plan.DropEvery):
		f.fired++
		return len(p), nil // swallowed whole: the reader never sees it
	case hit(f.plan.DupEvery):
		f.fired++
		if _, err := f.w.Write(p); err != nil {
			return 0, err
		}
		return f.w.Write(p)
	case hit(f.plan.DelayEvery):
		f.fired++
		time.Sleep(f.plan.Delay)
		return f.w.Write(p)
	}
	return f.w.Write(p)
}
