package dshard

import (
	"bytes"
	"testing"

	"hotpotato/internal/shard"
	"hotpotato/internal/sim"
)

// FuzzHaloFrame fuzzes the whole inbound path a coordinator or worker
// exposes to the network: the frame reader and every message decoder. The
// invariants are (1) no input panics or over-allocates, (2) a frame that
// parses re-encodes to exactly the bytes consumed, and (3) every decoder
// failure is the typed ErrBadMessage/ErrFrameCorrupt — hostile bytes are
// loud, never silently misparsed.
func FuzzHaloFrame(f *testing.F) {
	f.Add(AppendFrame(nil, mtHello, (&msgHello{Proto: 1, Token: "t", Slot: -1}).encode()))
	f.Add(AppendFrame(nil, mtAssign, (&msgAssign{Epoch: 1, Side: 8, GridP: 2, GridQ: 2, Policy: "random", Owned: []int{0, 1}, HeartbeatMillis: 200}).encode()))
	ps := sim.PacketState{ID: 1, Src: 0, Dst: 9, Node: 4, EnteredVia: -1, ArrivedAt: -1, DroppedAt: -1}
	mv := sim.Move{Packet: ps.Packet(), From: 4, To: 5, Dir: 1, Advanced: true}
	f.Add(AppendFrame(nil, mtEgress, (&msgEgress{Epoch: 1, T: 3, Buckets: []shard.Bucket{{From: 0, To: 1, Moves: []sim.Move{mv}}}}).encode()))
	f.Add(AppendFrame(nil, mtApplied, (&msgApplied{Epoch: 1, T: 3, Hops: 7, Finalized: []sim.PacketState{ps}, Blocks: []hashBlock{{Shard: 0, Words: []uint64{1, 2}}}}).encode()))
	f.Add(AppendFrame(nil, mtLoad, (&msgLoad{Epoch: 1, Shards: []shardLoad{{Index: 0, Packets: []sim.PacketState{ps}}}}).encode()))
	f.Add(AppendFrame(nil, mtParts, (&msgParts{Epoch: 1, T: 5, Parts: []shard.ShardPart{{Version: 1, Packets: []sim.PacketState{ps}}}}).encode()))
	f.Add([]byte("HPWF garbage"))
	f.Add(bytes.Repeat([]byte{0xFF}, 40))

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := ReadFrame(bytes.NewReader(data), 1<<20)
		if err == nil {
			consumed := frameHeaderLen + len(payload)
			if !bytes.Equal(AppendFrame(nil, typ, payload), data[:consumed]) {
				t.Fatalf("re-encoded frame differs from input prefix")
			}
		}
		// Feed the raw data to every decoder regardless of framing: the
		// decoders must survive arbitrary payloads on their own.
		decodeHello(data)
		decodeAssign(data)
		decodeLoad(data)
		decodeStep(data)
		decodeEgress(data)
		decodeApplied(data)
		decodeParts(data)
		decodeError(data)
	})
}
