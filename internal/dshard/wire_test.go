package dshard

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"hotpotato/internal/shard"
	"hotpotato/internal/sim"
)

func testPackets() []sim.PacketState {
	return []sim.PacketState{
		{ID: 1, Src: 3, Dst: 60, Node: 12, EnteredVia: 2, InjectedAt: 0, ArrivedAt: -1, DroppedAt: -1, Hops: 4, Deflections: 1, AdvancedPrev: true, GoodPrev: 2},
		{ID: 9, Src: 0, Dst: 7, Node: 7, EnteredVia: -1, ArrivedAt: 11, DroppedAt: -1, RestrictedPrev: true},
	}
}

// TestWireRoundTrip pushes every message type through encode → decode →
// re-encode and requires byte-identical output: the codec is canonical, so
// equality of bytes is equality of meaning.
func TestWireRoundTrip(t *testing.T) {
	mv := func(id int) sim.Move {
		ps := testPackets()[0]
		ps.ID = id
		return sim.Move{Packet: ps.Packet(), From: 12, To: 13, Dir: 1, GoodCount: 2, Advanced: true, ArrivedNow: id%2 == 0}
	}
	cases := []struct {
		name string
		enc  func() []byte
		dec  func(p []byte) (any, []byte, error)
	}{
		{"hello", (&msgHello{Proto: 1, Token: "secret", Slot: -1}).encode, func(p []byte) (any, []byte, error) {
			m, err := decodeHello(p)
			return m, m.encode(), err
		}},
		{"assign", (&msgAssign{Epoch: 3, Side: 8, Wrap: true, GridP: 2, GridQ: 2, Policy: "random", Seed: -7, Validation: 1, HashWords: true, Owned: []int{1, 3}, HeartbeatMillis: 200}).encode, func(p []byte) (any, []byte, error) {
			m, err := decodeAssign(p)
			return m, m.encode(), err
		}},
		{"load", (&msgLoad{Epoch: 2, T: 40, Shards: []shardLoad{{Index: 0, Packets: testPackets()}, {Index: 2}}}).encode, func(p []byte) (any, []byte, error) {
			m, err := decodeLoad(p)
			return m, m.encode(), err
		}},
		{"step", (&msgStep{Epoch: 9, T: 123}).encode, func(p []byte) (any, []byte, error) {
			m, err := decodeStep(p)
			return m, m.encode(), err
		}},
		{"egress", (&msgEgress{Epoch: 1, T: 5, Buckets: []shard.Bucket{
			{From: 0, To: 1, Moves: []sim.Move{mv(1), mv(2)}},
			{From: 3, To: 0, Moves: []sim.Move{mv(4)}},
		}}).encode, func(p []byte) (any, []byte, error) {
			m, err := decodeEgress(p)
			return m, m.encode(), err
		}},
		{"applied", (&msgApplied{Epoch: 4, T: 17, Hops: 100, Deflections: 3, Arrivals: 2, LastArrival: 17, Reroutes: 5, MaxNodeLoad: 4,
			Finalized: testPackets(), Blocks: []hashBlock{{Shard: 0, Words: []uint64{1, 2, 3, 4}}, {Shard: 1}},
		}).encode, func(p []byte) (any, []byte, error) {
			m, err := decodeApplied(p)
			return m, m.encode(), err
		}},
		{"parts", (&msgParts{Epoch: 2, T: 8, Parts: []shard.ShardPart{
			{Version: 1, Index: 0, Time: 8, Packets: testPackets()},
			{Version: 1, Index: 1, Time: 8},
		}}).encode, func(p []byte) (any, []byte, error) {
			m, err := decodeParts(p)
			return m, m.encode(), err
		}},
		{"error", (&msgError{Epoch: 6, Fatal: true, Msg: "policy panicked"}).encode, func(p []byte) (any, []byte, error) {
			m, err := decodeError(p)
			return m, m.encode(), err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wire := tc.enc()
			_, rewire, err := tc.dec(wire)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !bytes.Equal(wire, rewire) {
				t.Fatalf("re-encode differs:\n  first  %x\n  second %x", wire, rewire)
			}
		})
	}
}

// TestWireMoveFidelity checks the field-level contract of the halo move
// record: the receiver-side materialized packet and transfer flags must
// reproduce the sender's exactly.
func TestWireMoveFidelity(t *testing.T) {
	ps := testPackets()[0]
	in := sim.Move{Packet: ps.Packet(), From: 12, To: 13, Dir: 3, GoodCount: 2, Advanced: true, WasRestricted: true, WasTypeA: true, ArrivedNow: true}
	var e enc
	e.move(&in)
	d := dec{b: e.b}
	var out sim.Move
	d.move(&out)
	if err := d.done(); err != nil {
		t.Fatal(err)
	}
	if out.From != in.From || out.To != in.To || out.Dir != in.Dir || out.GoodCount != in.GoodCount ||
		!out.Advanced || !out.WasRestricted || !out.WasTypeA || !out.ArrivedNow {
		t.Fatalf("transfer fields diverged: %+v vs %+v", out, in)
	}
	if got := sim.CapturePacket(out.Packet); !reflect.DeepEqual(got, ps) {
		t.Fatalf("packet state diverged:\n  got  %+v\n  want %+v", got, ps)
	}
}

// TestWireTruncationsAreLoud truncates each message at every byte offset:
// every prefix must decode with ErrBadMessage, never panic or succeed.
func TestWireTruncationsAreLoud(t *testing.T) {
	full := (&msgApplied{Epoch: 4, T: 17, Hops: 1, Finalized: testPackets(), Blocks: []hashBlock{{Shard: 0, Words: []uint64{1, 2}}}}).encode()
	for n := 0; n < len(full); n++ {
		if _, err := decodeApplied(full[:n]); !errors.Is(err, ErrBadMessage) {
			t.Fatalf("prefix of %d bytes: err %v, want ErrBadMessage", n, err)
		}
	}
	if _, err := decodeApplied(append(append([]byte(nil), full...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}
