package dshard

import (
	"encoding/binary"
	"errors"
	"fmt"

	"hotpotato/internal/mesh"
	"hotpotato/internal/shard"
	"hotpotato/internal/sim"
)

// Message types. Requests flow coordinator→worker, responses worker→
// coordinator; heartbeats and errors are spontaneous worker→coordinator.
const (
	mtHello     byte = 1  // worker → coordinator: handshake
	mtAssign    byte = 2  // coordinator → worker: problem + owned shards
	mtLoad      byte = 3  // coordinator → worker: (re)load shard state
	mtLoaded    byte = 4  // worker → coordinator: load acknowledged
	mtRoute     byte = 5  // coordinator → worker: route step t
	mtEgress    byte = 6  // worker → coordinator: cross-shard buckets of t
	mtApply     byte = 7  // coordinator → worker: apply step t with ingress
	mtApplied   byte = 8  // worker → coordinator: counters, finalized, hash words
	mtCkpt      byte = 9  // coordinator → worker: capture checkpoint parts
	mtParts     byte = 10 // worker → coordinator: checkpoint parts
	mtShutdown  byte = 11 // coordinator → worker: clean exit
	mtHeartbeat byte = 12 // worker → coordinator: liveness beacon
	mtError     byte = 13 // worker → coordinator: step failed
)

// protoVersion is the handshake protocol number carried inside HELLO
// (distinct from the frame-layer version byte).
const protoVersion = 1

// ErrBadMessage reports a structurally valid frame whose payload does not
// decode as its message type — like ErrFrameCorrupt, it is loud and typed,
// and the coordinator treats it as a worker failure.
var ErrBadMessage = errors.New("dshard: malformed message")

// ----- primitive codec ---------------------------------------------------
//
// Payloads are hand-rolled varint streams: append-only writers, and a
// bounds-checked reader that accumulates the first error and returns zero
// values afterwards, so decode paths need no per-field error handling and
// fuzzed inputs cannot panic.

type enc struct{ b []byte }

func (e *enc) u64(v uint64) { e.b = binary.AppendUvarint(e.b, v) }
func (e *enc) i64(v int64)  { e.b = binary.AppendVarint(e.b, v) }
func (e *enc) num(v int)    { e.i64(int64(v)) }
func (e *enc) boolean(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}
func (e *enc) str(s string) {
	e.u64(uint64(len(s)))
	e.b = append(e.b, s...)
}

type dec struct {
	b   []byte
	err error
}

func (d *dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrBadMessage, what)
	}
}

func (d *dec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("truncated uvarint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) i64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail("truncated varint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) num() int { return int(d.i64()) }

func (d *dec) boolean() bool {
	if d.err != nil {
		return false
	}
	if len(d.b) == 0 {
		d.fail("truncated bool")
		return false
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v != 0
}

func (d *dec) str() string {
	n := d.u64()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)) {
		d.fail("string length exceeds payload")
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

// count reads a collection length and guards it against the bytes left in
// the payload (each element costs at least one byte), so a corrupted count
// cannot drive a huge allocation.
func (d *dec) count(what string) int {
	n := d.u64()
	if d.err != nil {
		return 0
	}
	if n > uint64(len(d.b)) {
		d.fail(what + " count exceeds payload")
		return 0
	}
	return int(n)
}

func (d *dec) done() error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadMessage, len(d.b))
	}
	return nil
}

// ----- shared sub-records ------------------------------------------------

func (e *enc) packet(ps *sim.PacketState) {
	e.num(ps.ID)
	e.i64(int64(ps.Src))
	e.i64(int64(ps.Dst))
	e.i64(int64(ps.Node))
	e.i64(int64(ps.EnteredVia))
	e.num(ps.InjectedAt)
	e.num(ps.Class)
	e.num(ps.ArrivedAt)
	e.num(ps.DroppedAt)
	e.i64(int64(ps.Cause))
	e.num(ps.Hops)
	e.num(ps.Deflections)
	var flags byte
	if ps.AdvancedPrev {
		flags |= 1
	}
	if ps.RestrictedPrev {
		flags |= 2
	}
	e.b = append(e.b, flags)
	e.num(ps.GoodPrev)
}

func (d *dec) packet(ps *sim.PacketState) {
	ps.ID = d.num()
	ps.Src = mesh.NodeID(d.i64())
	ps.Dst = mesh.NodeID(d.i64())
	ps.Node = mesh.NodeID(d.i64())
	ps.EnteredVia = mesh.Dir(d.i64())
	ps.InjectedAt = d.num()
	ps.Class = d.num()
	ps.ArrivedAt = d.num()
	ps.DroppedAt = d.num()
	ps.Cause = sim.DropCause(d.i64())
	ps.Hops = d.num()
	ps.Deflections = d.num()
	if d.err == nil {
		if len(d.b) == 0 {
			d.fail("truncated packet flags")
		} else {
			ps.AdvancedPrev = d.b[0]&1 != 0
			ps.RestrictedPrev = d.b[0]&2 != 0
			d.b = d.b[1:]
		}
	}
	ps.GoodPrev = d.num()
}

func (e *enc) packets(pkts []sim.PacketState) {
	e.u64(uint64(len(pkts)))
	for i := range pkts {
		e.packet(&pkts[i])
	}
}

func (d *dec) packets(what string) []sim.PacketState {
	n := d.count(what)
	if n == 0 {
		return nil
	}
	pkts := make([]sim.PacketState, n)
	for i := range pkts {
		d.packet(&pkts[i])
	}
	return pkts
}

// move serializes one halo move: the packet's pre-move state plus the
// transfer record. The receiver materializes a fresh packet from it — the
// sender's object never travels, so applying the move on the receiver
// reproduces exactly the in-process mutation.
func (e *enc) move(mv *sim.Move) {
	ps := sim.CapturePacket(mv.Packet)
	e.packet(&ps)
	e.i64(int64(mv.From))
	e.i64(int64(mv.To))
	e.i64(int64(mv.Dir))
	e.num(mv.GoodCount)
	var flags byte
	if mv.Advanced {
		flags |= 1
	}
	if mv.WasRestricted {
		flags |= 2
	}
	if mv.WasTypeA {
		flags |= 4
	}
	if mv.ArrivedNow {
		flags |= 8
	}
	e.b = append(e.b, flags)
}

func (d *dec) move(mv *sim.Move) {
	var ps sim.PacketState
	d.packet(&ps)
	mv.From = mesh.NodeID(d.i64())
	mv.To = mesh.NodeID(d.i64())
	mv.Dir = mesh.Dir(d.i64())
	mv.GoodCount = d.num()
	if d.err == nil {
		if len(d.b) == 0 {
			d.fail("truncated move flags")
			return
		}
		flags := d.b[0]
		d.b = d.b[1:]
		mv.Advanced = flags&1 != 0
		mv.WasRestricted = flags&2 != 0
		mv.WasTypeA = flags&4 != 0
		mv.ArrivedNow = flags&8 != 0
		mv.Packet = ps.Packet()
	}
}

func (e *enc) buckets(bs []shard.Bucket) {
	e.u64(uint64(len(bs)))
	for i := range bs {
		e.num(bs[i].From)
		e.num(bs[i].To)
		e.u64(uint64(len(bs[i].Moves)))
		for j := range bs[i].Moves {
			e.move(&bs[i].Moves[j])
		}
	}
}

func (d *dec) buckets() []shard.Bucket {
	n := d.count("bucket")
	if n == 0 {
		return nil
	}
	bs := make([]shard.Bucket, n)
	for i := range bs {
		bs[i].From = d.num()
		bs[i].To = d.num()
		k := d.count("move")
		if k == 0 {
			continue
		}
		bs[i].Moves = make([]sim.Move, k)
		for j := range bs[i].Moves {
			d.move(&bs[i].Moves[j])
		}
	}
	return bs
}

// ----- messages ----------------------------------------------------------

// msgHello is the worker's handshake: protocol number, shared-secret token,
// and the slot it wants (-1 = any; a respawned worker reclaims its slot).
type msgHello struct {
	Proto uint64
	Token string
	Slot  int
}

func (m *msgHello) encode() []byte {
	var e enc
	e.u64(m.Proto)
	e.str(m.Token)
	e.num(m.Slot)
	return e.b
}

func decodeHello(p []byte) (msgHello, error) {
	d := dec{b: p}
	m := msgHello{Proto: d.u64(), Token: d.str(), Slot: d.num()}
	return m, d.done()
}

// msgAssign binds a worker to its share of the problem. Epoch is the
// coordinator's recovery generation: every request carries it, every
// response echoes it, and the coordinator bumps it on each rollback so
// frames from before a recovery are recognizably stale.
type msgAssign struct {
	Epoch           uint64
	Side            int
	Wrap            bool
	GridP           int
	GridQ           int
	Policy          string
	Seed            int64
	Validation      int
	HashWords       bool // ship per-step hash words in APPLIED (DetectLivelock)
	Owned           []int
	HeartbeatMillis int64
}

func (m *msgAssign) encode() []byte {
	var e enc
	e.u64(m.Epoch)
	e.num(m.Side)
	e.boolean(m.Wrap)
	e.num(m.GridP)
	e.num(m.GridQ)
	e.str(m.Policy)
	e.i64(m.Seed)
	e.num(m.Validation)
	e.boolean(m.HashWords)
	e.u64(uint64(len(m.Owned)))
	for _, idx := range m.Owned {
		e.num(idx)
	}
	e.i64(m.HeartbeatMillis)
	return e.b
}

func decodeAssign(p []byte) (msgAssign, error) {
	d := dec{b: p}
	m := msgAssign{
		Epoch: d.u64(), Side: d.num(), Wrap: d.boolean(),
		GridP: d.num(), GridQ: d.num(), Policy: d.str(),
		Seed: d.i64(), Validation: d.num(), HashWords: d.boolean(),
	}
	n := d.count("owned shard")
	for i := 0; i < n; i++ {
		m.Owned = append(m.Owned, d.num())
	}
	m.HeartbeatMillis = d.i64()
	return m, d.done()
}

// shardLoad is one shard's worth of state in a LOAD: live packets in the
// exact enqueue order of a checkpoint part re-partitioned to this shard.
type shardLoad struct {
	Index   int
	Packets []sim.PacketState
}

// msgLoad (re)initializes a worker's shards to the state of step T — the
// initial distribution and every post-failure rollback use the same path.
type msgLoad struct {
	Epoch  uint64
	T      int
	Shards []shardLoad
}

func (m *msgLoad) encode() []byte {
	var e enc
	e.u64(m.Epoch)
	e.num(m.T)
	e.u64(uint64(len(m.Shards)))
	for i := range m.Shards {
		e.num(m.Shards[i].Index)
		e.packets(m.Shards[i].Packets)
	}
	return e.b
}

func decodeLoad(p []byte) (msgLoad, error) {
	d := dec{b: p}
	m := msgLoad{Epoch: d.u64(), T: d.num()}
	n := d.count("shard load")
	for i := 0; i < n; i++ {
		m.Shards = append(m.Shards, shardLoad{Index: d.num(), Packets: d.packets("packet")})
	}
	return m, d.done()
}

// msgStep is the shared shape of the bare (epoch, t) messages: LOADED,
// ROUTE and CKPT.
type msgStep struct {
	Epoch uint64
	T     int
}

func (m *msgStep) encode() []byte {
	var e enc
	e.u64(m.Epoch)
	e.num(m.T)
	return e.b
}

func decodeStep(p []byte) (msgStep, error) {
	d := dec{b: p}
	m := msgStep{Epoch: d.u64(), T: d.num()}
	return m, d.done()
}

// msgEgress is a worker's route-phase result: every cross-shard bucket its
// shards produced for step T. msgApply reuses the shape for the return
// trip: the buckets addressed to the worker's shards.
type msgEgress struct {
	Epoch   uint64
	T       int
	Buckets []shard.Bucket
}

func (m *msgEgress) encode() []byte {
	var e enc
	e.u64(m.Epoch)
	e.num(m.T)
	e.buckets(m.Buckets)
	return e.b
}

func decodeEgress(p []byte) (msgEgress, error) {
	d := dec{b: p}
	m := msgEgress{Epoch: d.u64(), T: d.num(), Buckets: d.buckets()}
	return m, d.done()
}

// hashBlock carries one shard's configuration-hash word pairs for the
// step's global fold (shard.Node.HashWords).
type hashBlock struct {
	Shard int
	Words []uint64
}

// msgApplied is a worker's apply-phase result: counter deltas, packets that
// arrived this step, and (when livelock detection is on) the hash words of
// its live packets.
type msgApplied struct {
	Epoch       uint64
	T           int
	Hops        int64
	Deflections int64
	Arrivals    int
	LastArrival int
	Reroutes    int64
	MaxNodeLoad int
	Finalized   []sim.PacketState
	Blocks      []hashBlock
}

func (m *msgApplied) encode() []byte {
	var e enc
	e.u64(m.Epoch)
	e.num(m.T)
	e.i64(m.Hops)
	e.i64(m.Deflections)
	e.num(m.Arrivals)
	e.num(m.LastArrival)
	e.i64(m.Reroutes)
	e.num(m.MaxNodeLoad)
	e.packets(m.Finalized)
	e.u64(uint64(len(m.Blocks)))
	for i := range m.Blocks {
		e.num(m.Blocks[i].Shard)
		e.u64(uint64(len(m.Blocks[i].Words)))
		for _, w := range m.Blocks[i].Words {
			e.u64(w)
		}
	}
	return e.b
}

func decodeApplied(p []byte) (msgApplied, error) {
	d := dec{b: p}
	m := msgApplied{
		Epoch: d.u64(), T: d.num(),
		Hops: d.i64(), Deflections: d.i64(),
		Arrivals: d.num(), LastArrival: d.num(),
		Reroutes: d.i64(), MaxNodeLoad: d.num(),
		Finalized: d.packets("finalized packet"),
	}
	n := d.count("hash block")
	for i := 0; i < n; i++ {
		b := hashBlock{Shard: d.num()}
		k := d.count("hash word")
		if k%2 != 0 {
			d.fail("odd hash word count")
		}
		for j := 0; j < k && d.err == nil; j++ {
			b.Words = append(b.Words, d.u64())
		}
		m.Blocks = append(m.Blocks, b)
	}
	return m, d.done()
}

// msgParts is a worker's checkpoint contribution: one ShardPart per owned
// shard, all captured at the same barrier.
type msgParts struct {
	Epoch uint64
	T     int
	Parts []shard.ShardPart
}

func (m *msgParts) encode() []byte {
	var e enc
	e.u64(m.Epoch)
	e.num(m.T)
	e.u64(uint64(len(m.Parts)))
	for i := range m.Parts {
		e.num(m.Parts[i].Version)
		e.num(m.Parts[i].Index)
		e.num(m.Parts[i].Time)
		e.packets(m.Parts[i].Packets)
	}
	return e.b
}

func decodeParts(p []byte) (msgParts, error) {
	d := dec{b: p}
	m := msgParts{Epoch: d.u64(), T: d.num()}
	n := d.count("part")
	for i := 0; i < n; i++ {
		m.Parts = append(m.Parts, shard.ShardPart{
			Version: d.num(), Index: d.num(), Time: d.num(),
			Packets: d.packets("part packet"),
		})
	}
	return m, d.done()
}

// msgError reports a failed request. Fatal errors (unknown policy,
// validation failure — deterministic, would repeat on replay) abort the
// run; non-fatal ones (policy panic, desync) trigger checkpoint rollback.
// After sending a non-fatal error the worker refuses ROUTE/APPLY until the
// next LOAD.
type msgError struct {
	Epoch uint64
	Fatal bool
	Msg   string
}

func (m *msgError) encode() []byte {
	var e enc
	e.u64(m.Epoch)
	e.boolean(m.Fatal)
	e.str(m.Msg)
	return e.b
}

func decodeError(p []byte) (msgError, error) {
	d := dec{b: p}
	m := msgError{Epoch: d.u64(), Fatal: d.boolean(), Msg: d.str()}
	return m, d.done()
}
