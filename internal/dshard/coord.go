package dshard

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hotpotato/internal/checkpoint"
	"hotpotato/internal/mesh"
	"hotpotato/internal/run"
	"hotpotato/internal/shard"
	"hotpotato/internal/sim"
)

// Spec is the routing problem a distributed run executes — the subset of
// shard.Options a worker needs to rebuild its share from an ASSIGN message.
type Spec struct {
	// Side is the mesh side (the mesh is always 2-dimensional: the
	// partition requires it); Wrap selects torus connectivity.
	Side int
	Wrap bool
	// Policy is the routing policy name, resolved on each worker (and once
	// on the coordinator, to validate it and read Deterministic).
	Policy string
	// Grid is the PxQ shard decomposition.
	Grid shard.Grid
	// Seed, MaxSteps, Validation, DetectLivelock mean what they do in
	// shard.Options.
	Seed           int64
	MaxSteps       int
	Validation     sim.ValidationLevel
	DetectLivelock bool
}

// WorkerProc is the coordinator's handle to a worker process it spawned.
// Stop kills the worker and reaps it; it must be safe to call on an
// already-dead worker.
type WorkerProc interface {
	Stop()
}

// Options configures a Coordinator.
type Options struct {
	// Workers is how many worker processes share the grid; each owns a
	// contiguous range of shard indices. 1 <= Workers <= Grid.Count().
	Workers int
	// Listen is the address workers dial: host:port for TCP (default
	// "127.0.0.1:0"), a path for a unix socket.
	Listen string
	// Token is the shared secret a HELLO must present.
	Token string
	// Policies resolves Spec.Policy; typically spec.NewPolicy. Required.
	Policies func(name string) (sim.Policy, error)
	// Spawn starts the worker for a slot, pointing it at addr; it is also
	// how a dead worker is re-spawned. Nil means workers are external: the
	// coordinator waits for them to dial in (and re-dial after a failure).
	Spawn func(slot int, addr string) (WorkerProc, error)

	// StepTimeout bounds one attempt of one phase request per worker
	// (default 10s); a worker that misses it MaxRetries+1 times is declared
	// failed. MaxRetries defaults to 2; retries are safe because workers
	// cache and resend their per-step responses.
	StepTimeout time.Duration
	MaxRetries  int
	// BackoffBase/BackoffMax space the retries (run.BackoffDelay; defaults
	// 50ms / 2s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// HeartbeatEvery is the beacon interval assigned to workers (default
	// 200ms); a worker silent for HeartbeatTimeout (default 2s) is declared
	// dead without waiting out the step deadline.
	HeartbeatEvery   time.Duration
	HeartbeatTimeout time.Duration
	// RejoinTimeout is how long a recovery waits for a failed worker to be
	// re-spawned or to dial back in (default 15s).
	RejoinTimeout time.Duration
	// MaxRecoveries caps checkpoint rollbacks across the run. 0 means
	// DefaultMaxRecoveries; negative disables recovery (first failure
	// aborts).
	MaxRecoveries int

	// CheckpointEvery is the rollback/save cadence in steps (default 256).
	// CheckpointDir, when set, additionally persists each checkpoint with
	// shard.SaveDir — the directory interoperates with the in-process
	// engine's (a distributed run can resume an Engine checkpoint and vice
	// versa). CheckpointFormat defaults to checkpoint.Binary.
	CheckpointEvery  int
	CheckpointDir    string
	CheckpointFormat checkpoint.Format
	// Resume, when non-nil, starts the run from a coordinated checkpoint
	// instead of an initial packet population. Grid-flexible: the
	// checkpoint's grid need not match Spec.Grid.
	Resume *shard.Checkpoint

	// MaxWallTime bounds Run's wall-clock duration; 0 means no limit.
	MaxWallTime time.Duration
	// MaxFrame caps inbound frame payloads; <= 0 means DefaultMaxFrame.
	MaxFrame int
	// Logf, when non-nil, receives one line per notable event (worker
	// failures, recoveries, rejoins).
	Logf func(format string, args ...any)
}

// DefaultMaxRecoveries is how many checkpoint rollbacks a run tolerates
// when Options.MaxRecoveries is zero. Distributed runs exist to survive
// worker failures, so unlike the in-process engine the default is not "fail
// on first crash".
const DefaultMaxRecoveries = 8

const (
	defaultStepTimeout      = 10 * time.Second
	defaultHeartbeatTimeout = 2 * time.Second
	defaultRejoinTimeout    = 15 * time.Second
	defaultCheckpointEvery  = 256
)

// Failure classification sentinels for one phase exchange.
var (
	errAttemptTimeout = errors.New("dshard: phase attempt timed out")
	errWorkerDead     = errors.New("dshard: worker connection dead")
	errNeedsLoad      = errors.New("dshard: worker demands reload")
	errFatalWorker    = errors.New("dshard: fatal worker error")
)

// ErrRunLost is returned when the coordinator cannot restore a full worker
// set within its recovery budget: the run is lost (though its checkpoint
// directory, if any, still allows a later resume).
var ErrRunLost = errors.New("dshard: run lost")

// workerFailure is one worker's failure in one phase.
type workerFailure struct {
	slot    int
	err     error
	respawn bool // connection/process unusable: tear down and re-admit
	fatal   bool // deterministic error: recovery would replay it
}

// workerSlot is the coordinator's per-worker state. A slot's connection is
// only touched by the slot's own phase goroutine during a phase and by the
// coordinator loop between phases, so it needs no lock.
type workerSlot struct {
	slot     int
	owned    []int
	conn     net.Conn
	br       *bufio.Reader
	lastSeen time.Time
	proc     WorkerProc
}

type admission struct {
	conn     net.Conn
	wantSlot int
}

// Coordinator drives one distributed sharded run: it owns the global
// simulation state (time, live count, counters, livelock detector,
// finalized packets), the worker set, and the last coordinated checkpoint,
// while the packet queues themselves live only on the workers.
//
// Not safe for concurrent use; one goroutine calls Run.
type Coordinator struct {
	spec Spec
	opts Options

	m       *mesh.Mesh
	part    *shard.Partition
	grid    shard.Grid
	ln      net.Listener
	admitCh chan admission
	workers []*workerSlot
	// workerOfShard maps a shard index to its owning slot.
	workerOfShard []int

	epoch        uint64
	time         int
	live         int
	lastArrival  int
	nextID       int
	total        int
	livelock     bool
	livelockable bool
	// polName is the resolved policy's display name — what shard.Engine
	// records in checkpoint manifests, so the directories interoperate even
	// when the registry key differs (e.g. "random" vs "greedy-random").
	polName string
	seen    map[uint64]int

	totalHops        int64
	totalDeflections int64
	reroutes         int64
	maxNodeLoad      int
	recoveries       int
	deadlineExceeded bool
	finalized        []sim.PacketState

	lastCK    *shard.Checkpoint
	finalHash uint64

	// StepHook, when set before Run, is called after every completed step
	// with the new time and live count. HashHook additionally receives each
	// step's global state hash (livelock detection must be on) — the
	// lockstep parity tests ride on it.
	StepHook func(t, live int)
	HashHook func(t int, h uint64)

	shutdownOnce sync.Once
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

// New validates the spec and the initial packet population (or the resume
// checkpoint), binds the listener, and returns a coordinator ready to Run.
// The admission rules for packets are shard.New's. Callers running external
// workers read Addr after New.
func New(spec Spec, packets []*sim.Packet, opts Options) (*Coordinator, error) {
	if opts.Policies == nil {
		return nil, errors.New("dshard: Options.Policies is required")
	}
	if spec.MaxSteps <= 0 {
		spec.MaxSteps = sim.DefaultMaxSteps
	}
	spec.Grid = shard.Grid{P: spec.Grid.P, Q: spec.Grid.Q}
	var m *mesh.Mesh
	var err error
	if spec.Wrap {
		m, err = mesh.NewTorus(2, spec.Side)
	} else {
		m, err = mesh.New(2, spec.Side)
	}
	if err != nil {
		return nil, err
	}
	part, err := shard.NewPartition(m, spec.Grid)
	if err != nil {
		return nil, err
	}
	grid := part.Grid()
	spec.Grid = grid
	policy, err := opts.Policies(spec.Policy)
	if err != nil {
		return nil, err
	}
	if opts.Workers < 1 || opts.Workers > grid.Count() {
		return nil, fmt.Errorf("dshard: %d workers for %d shards (need 1 <= workers <= shards)", opts.Workers, grid.Count())
	}
	if opts.StepTimeout <= 0 {
		opts.StepTimeout = defaultStepTimeout
	}
	if opts.MaxRetries <= 0 {
		opts.MaxRetries = 2
	}
	if opts.BackoffBase <= 0 {
		opts.BackoffBase = 50 * time.Millisecond
	}
	if opts.BackoffMax <= 0 {
		opts.BackoffMax = 2 * time.Second
	}
	if opts.HeartbeatEvery <= 0 {
		opts.HeartbeatEvery = defaultHeartbeat
	}
	if opts.HeartbeatTimeout <= 0 {
		opts.HeartbeatTimeout = defaultHeartbeatTimeout
	}
	if opts.RejoinTimeout <= 0 {
		opts.RejoinTimeout = defaultRejoinTimeout
	}
	switch {
	case opts.MaxRecoveries == 0:
		opts.MaxRecoveries = DefaultMaxRecoveries
	case opts.MaxRecoveries < 0:
		opts.MaxRecoveries = 0
	}
	if opts.CheckpointEvery <= 0 {
		opts.CheckpointEvery = defaultCheckpointEvery
	}
	if opts.CheckpointFormat == 0 {
		opts.CheckpointFormat = checkpoint.Binary
	}
	if opts.Listen == "" {
		opts.Listen = "127.0.0.1:0"
	}

	c := &Coordinator{
		spec:          spec,
		opts:          opts,
		m:             m,
		part:          part,
		grid:          grid,
		admitCh:       make(chan admission, 2*opts.Workers),
		workers:       make([]*workerSlot, opts.Workers),
		workerOfShard: make([]int, grid.Count()),
		polName:       policy.Name(),
		livelockable:  spec.DetectLivelock && policy.Deterministic(),
	}
	if c.livelockable {
		c.seen = make(map[uint64]int)
	}
	// Contiguous shard ranges per slot: slot i owns count/W shards, the
	// first count%W slots one extra.
	count, w := grid.Count(), opts.Workers
	next := 0
	for slot := 0; slot < w; slot++ {
		n := count / w
		if slot < count%w {
			n++
		}
		ws := &workerSlot{slot: slot}
		for j := 0; j < n; j++ {
			ws.owned = append(ws.owned, next)
			c.workerOfShard[next] = slot
			next++
		}
		c.workers[slot] = ws
	}

	if opts.Resume != nil {
		if err := c.adoptCheckpoint(opts.Resume); err != nil {
			return nil, err
		}
	} else if err := c.admit(packets); err != nil {
		return nil, err
	}

	c.ln, err = Listen(opts.Listen)
	if err != nil {
		return nil, fmt.Errorf("dshard: listen: %w", err)
	}
	go c.acceptLoop()
	return c, nil
}

// Addr returns the address workers must dial.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Grid returns the shard decomposition.
func (c *Coordinator) Grid() shard.Grid { return c.grid }

// Time, Live, Livelocked, Recoveries mirror shard.Engine's accessors.
func (c *Coordinator) Time() int        { return c.time }
func (c *Coordinator) Live() int        { return c.live }
func (c *Coordinator) Livelocked() bool { return c.livelock }
func (c *Coordinator) Recoveries() int  { return c.recoveries }

// Progress mirrors shard.Engine.Progress, so frontends report distributed
// runs through the same code path.
func (c *Coordinator) Progress() sim.Progress {
	return sim.Progress{
		Time:             c.time,
		Live:             c.live,
		Delivered:        c.total - c.live,
		Total:            c.total,
		TotalHops:        c.totalHops,
		TotalDeflections: c.totalDeflections,
		MaxNodeLoad:      c.maxNodeLoad,
	}
}

// StateHash returns the final configuration hash, bit-identical to the
// equivalent single engine's StateHash at the same point — valid once Run
// has returned (the coordinator captures it from the workers' final
// checkpoint parts before shutting them down).
func (c *Coordinator) StateHash() uint64 { return c.finalHash }

// admit validates the initial packets and builds the t=0 coordinated
// checkpoint — recovery's permanent floor: a worker killed on the very
// first step still rejoins from somewhere.
func (c *Coordinator) admit(packets []*sim.Packet) error {
	ids := make(map[int]struct{}, len(packets))
	perNode := make(map[mesh.NodeID]int)
	type staged struct {
		seq int
		ps  sim.PacketState
	}
	byShard := make([][]staged, c.grid.Count())
	for seq, p := range packets {
		if p == nil {
			return fmt.Errorf("%w: nil packet", sim.ErrBadInjection)
		}
		if err := c.m.CheckID(p.Src); err != nil {
			return fmt.Errorf("%w: packet %d source: %v", sim.ErrBadInjection, p.ID, err)
		}
		if err := c.m.CheckID(p.Dst); err != nil {
			return fmt.Errorf("%w: packet %d destination: %v", sim.ErrBadInjection, p.ID, err)
		}
		if p.Node != p.Src {
			return fmt.Errorf("%w: packet %d not at its source", sim.ErrBadInjection, p.ID)
		}
		if _, dup := ids[p.ID]; dup {
			return fmt.Errorf("%w: duplicate packet id %d", sim.ErrBadInjection, p.ID)
		}
		ids[p.ID] = struct{}{}
		if p.ID >= c.nextID {
			c.nextID = p.ID + 1
		}
		ps := sim.CapturePacket(p)
		ps.Cause = sim.DropNone
		ps.DroppedAt = -1
		if p.Src == p.Dst {
			ps.ArrivedAt = 0
			c.finalized = append(c.finalized, ps)
			continue
		}
		ps.ArrivedAt = -1
		if perNode[p.Src]++; perNode[p.Src] > c.m.Degree(p.Src) {
			return fmt.Errorf("%w: node %d originates %d packets, out-degree %d",
				sim.ErrBadInjection, p.Src, perNode[p.Src], c.m.Degree(p.Src))
		}
		owner := c.part.Owner(p.Src)
		byShard[owner] = append(byShard[owner], staged{seq: seq, ps: ps})
		c.live++
	}
	c.total = len(packets)

	ck := &shard.Checkpoint{Parts: make([]shard.ShardPart, c.grid.Count())}
	for i := range byShard {
		// Checkpoint parts hold packets in queue order over ascending
		// nodes; a stable sort by node keeps injection order within one
		// node, which is the queue order shard.New produces.
		sort.SliceStable(byShard[i], func(a, b int) bool { return byShard[i][a].ps.Node < byShard[i][b].ps.Node })
		part := shard.ShardPart{Version: shard.CheckpointVersion, Index: i, Time: 0}
		for _, st := range byShard[i] {
			part.Packets = append(part.Packets, st.ps)
		}
		ck.Parts[i] = part
	}
	ck.Manifest = c.manifest()
	c.lastCK = ck
	return nil
}

// adoptCheckpoint resumes from a coordinated checkpoint, applying the same
// configuration guards as shard.Engine.Restore. The writer's grid need not
// match: parts are re-partitioned by current ownership at load time.
func (c *Coordinator) adoptCheckpoint(ck *shard.Checkpoint) error {
	m := &ck.Manifest
	switch {
	case m.Version > shard.CheckpointVersion:
		return fmt.Errorf("%w: schema v%d, this build reads up to v%d", shard.ErrBadCheckpoint, m.Version, shard.CheckpointVersion)
	case m.MeshDim != 2 || m.MeshSide != c.spec.Side || m.MeshWrap != c.spec.Wrap:
		return fmt.Errorf("%w: mesh mismatch: checkpoint dim=%d side=%d wrap=%v, spec side=%d wrap=%v",
			shard.ErrBadCheckpoint, m.MeshDim, m.MeshSide, m.MeshWrap, c.spec.Side, c.spec.Wrap)
	case m.PolicyName != c.polName:
		return fmt.Errorf("%w: policy mismatch: checkpoint %q, spec %q", shard.ErrBadCheckpoint, m.PolicyName, c.polName)
	case m.Seed != c.spec.Seed:
		return fmt.Errorf("%w: seed mismatch: checkpoint %d, spec %d", shard.ErrBadCheckpoint, m.Seed, c.spec.Seed)
	case m.Validation != c.spec.Validation:
		return fmt.Errorf("%w: validation mismatch", shard.ErrBadCheckpoint)
	case m.DetectLive != c.spec.DetectLivelock:
		return fmt.Errorf("%w: livelock detection mismatch", shard.ErrBadCheckpoint)
	case m.Shards != len(ck.Parts):
		return fmt.Errorf("%w: manifest lists %d shards, checkpoint has %d parts", shard.ErrBadCheckpoint, m.Shards, len(ck.Parts))
	case m.HasInjector:
		return fmt.Errorf("%w: checkpoint carries injector state; distributed runs do not support arrival-driven traffic", shard.ErrBadCheckpoint)
	}
	live := 0
	for i := range ck.Parts {
		if ck.Parts[i].Time != m.Time {
			return fmt.Errorf("%w: part %d is from step %d, manifest from step %d (torn checkpoint)",
				shard.ErrBadCheckpoint, ck.Parts[i].Index, ck.Parts[i].Time, m.Time)
		}
		live += len(ck.Parts[i].Packets)
	}
	if live != m.Live {
		return fmt.Errorf("%w: manifest says %d live packets, parts carry %d", shard.ErrBadCheckpoint, m.Live, live)
	}
	c.lastCK = ck
	c.restoreState(m)
	c.total = live + len(m.Finalized)
	return nil
}

// restoreState resets the coordinator's global state to a manifest — the
// resume path and every rollback go through it.
func (c *Coordinator) restoreState(m *shard.Manifest) {
	c.time = m.Time
	c.live = m.Live
	c.lastArrival = m.LastArrival
	c.nextID = m.NextID
	c.livelock = m.Livelocked
	c.totalDeflections = m.TotalDeflections
	c.totalHops = m.TotalHops
	c.maxNodeLoad = m.MaxNodeLoad
	c.reroutes = m.Reroutes
	c.deadlineExceeded = false
	c.finalized = append(c.finalized[:0], m.Finalized...)
	if c.livelockable {
		c.seen = make(map[uint64]int, len(m.Seen))
		for _, sn := range m.Seen {
			c.seen[sn.Hash] = sn.Time
		}
	}
}

// manifest snapshots the coordinator's global state.
func (c *Coordinator) manifest() shard.Manifest {
	m := shard.Manifest{
		Version:          shard.CheckpointVersion,
		MeshDim:          2,
		MeshSide:         c.spec.Side,
		MeshWrap:         c.spec.Wrap,
		PolicyName:       c.polName,
		Seed:             c.spec.Seed,
		MaxSteps:         c.spec.MaxSteps,
		Validation:       c.spec.Validation,
		DetectLive:       c.spec.DetectLivelock,
		Grid:             c.grid.String(),
		Time:             c.time,
		LastArrival:      c.lastArrival,
		NextID:           c.nextID,
		Live:             c.live,
		Livelocked:       c.livelock,
		Shards:           c.grid.Count(),
		TotalDeflections: c.totalDeflections,
		TotalHops:        c.totalHops,
		MaxNodeLoad:      c.maxNodeLoad,
		Reroutes:         c.reroutes,
		Recoveries:       c.recoveries,
	}
	if c.seen != nil {
		m.Seen = make([]sim.SeenState, 0, len(c.seen))
		for h, t := range c.seen {
			m.Seen = append(m.Seen, sim.SeenState{Hash: h, Time: t})
		}
		sort.Slice(m.Seen, func(i, j int) bool { return m.Seen[i].Time < m.Seen[j].Time })
	}
	m.Finalized = append([]sim.PacketState(nil), c.finalized...)
	return m
}

// ----- admission ---------------------------------------------------------

func (c *Coordinator) acceptLoop() {
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		go c.handshake(conn)
	}
}

// handshake validates a dialing worker's HELLO and queues it for adoption.
func (c *Coordinator) handshake(conn net.Conn) {
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	typ, payload, err := ReadFrame(conn, c.opts.MaxFrame)
	if err != nil || typ != mtHello {
		conn.Close()
		return
	}
	h, err := decodeHello(payload)
	if err != nil || h.Proto != protoVersion || h.Token != c.opts.Token {
		c.logf("coordinator: rejecting worker handshake: err=%v proto=%d", err, h.Proto)
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	select {
	case c.admitCh <- admission{conn: conn, wantSlot: h.Slot}:
	default:
		conn.Close()
	}
}

// adopt binds admitted connections to the needed slots, honoring requested
// slots, until all are filled or the timeout expires.
func (c *Coordinator) adopt(slots []int) error {
	need := make(map[int]bool, len(slots))
	for _, s := range slots {
		need[s] = true
	}
	deadline := time.Now().Add(c.opts.RejoinTimeout)
	for len(need) > 0 {
		wait := time.Until(deadline)
		if wait <= 0 {
			break
		}
		select {
		case ad := <-c.admitCh:
			slot := -1
			switch {
			case ad.wantSlot >= 0 && need[ad.wantSlot]:
				slot = ad.wantSlot
			case ad.wantSlot < 0:
				for s := range need {
					if slot < 0 || s < slot {
						slot = s
					}
				}
			}
			if slot < 0 {
				ad.conn.Close() // claims a slot that is not open
				continue
			}
			ws := c.workers[slot]
			ws.conn = ad.conn
			ws.br = bufio.NewReaderSize(ad.conn, 64<<10)
			ws.lastSeen = time.Now()
			delete(need, slot)
			c.logf("coordinator: worker joined slot %d (shards %v)", slot, ws.owned)
		case <-time.After(wait):
		}
	}
	if len(need) > 0 {
		missing := make([]int, 0, len(need))
		for s := range need {
			missing = append(missing, s)
		}
		sort.Ints(missing)
		return fmt.Errorf("%w: slots %v did not join within %s", ErrRunLost, missing, c.opts.RejoinTimeout)
	}
	return nil
}

// ----- transport ---------------------------------------------------------

func (ws *workerSlot) send(timeout time.Duration, typ byte, payload []byte) error {
	if ws.conn == nil {
		return fmt.Errorf("%w: slot %d has no connection", errWorkerDead, ws.slot)
	}
	ws.conn.SetWriteDeadline(time.Now().Add(timeout))
	return WriteFrame(ws.conn, typ, payload)
}

// awaitFrame reads until the wanted response of (epoch, wantT) arrives.
// Heartbeats refresh liveness; stale frames (duplicates, responses from
// before a recovery, late responses of earlier phases) are skipped; worker
// ERROR frames and transport failures classify via the sentinel errors.
func (c *Coordinator) awaitFrame(ws *workerSlot, wantTyp byte, wantT int, deadline time.Time) ([]byte, error) {
	if ws.conn == nil {
		return nil, fmt.Errorf("%w: slot %d has no connection", errWorkerDead, ws.slot)
	}
	skips := 0
	for {
		now := time.Now()
		if !now.Before(deadline) {
			return nil, errAttemptTimeout
		}
		hbDeadline := ws.lastSeen.Add(c.opts.HeartbeatTimeout)
		if !now.Before(hbDeadline) {
			return nil, fmt.Errorf("%w: slot %d silent for %s", errWorkerDead, ws.slot, now.Sub(ws.lastSeen).Round(time.Millisecond))
		}
		rd := deadline
		if hbDeadline.Before(rd) {
			rd = hbDeadline
		}
		ws.conn.SetReadDeadline(rd)
		typ, payload, err := ReadFrame(ws.br, c.opts.MaxFrame)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue // loop re-evaluates attempt deadline vs heartbeat
			}
			if errors.Is(err, ErrFrameCorrupt) {
				return nil, err // loud and typed; recovery, never a guess
			}
			return nil, fmt.Errorf("%w: slot %d: %v", errWorkerDead, ws.slot, err)
		}
		ws.lastSeen = time.Now()
		switch typ {
		case mtHeartbeat:
			continue
		case mtError:
			m, derr := decodeError(payload)
			if derr != nil {
				return nil, derr
			}
			if m.Epoch < c.epoch {
				continue // from before a recovery
			}
			if m.Fatal {
				return nil, fmt.Errorf("%w: slot %d: %s", errFatalWorker, ws.slot, m.Msg)
			}
			return nil, fmt.Errorf("%w: slot %d: %s", errNeedsLoad, ws.slot, m.Msg)
		case wantTyp:
			// Every response payload leads with (epoch, t); peek them.
			d := dec{b: payload}
			epoch, t := d.u64(), d.num()
			if d.err != nil {
				return nil, d.err
			}
			if epoch == c.epoch && t == wantT {
				return payload, nil
			}
		}
		// A stale or cross-phase frame (retry duplicate, pre-recovery
		// leftovers): skip, boundedly.
		if skips++; skips > 256 {
			return nil, fmt.Errorf("%w: slot %d flooding stale frames", errWorkerDead, ws.slot)
		}
	}
}

// exchange performs one phase request against one worker with bounded,
// jitter-backoff retries. Retries are safe by construction: workers cache
// their last response per (epoch, step) and resend it, so a request lost to
// the network or a response lost mid-flight is recovered without
// re-executing the phase.
func (c *Coordinator) exchange(ws *workerSlot, reqTyp byte, reqPayload []byte, wantTyp byte, wantT int) ([]byte, *workerFailure) {
	var lastErr error
	for attempt := 1; attempt <= c.opts.MaxRetries+1; attempt++ {
		if attempt > 1 {
			key := fmt.Sprintf("slot-%d", ws.slot)
			time.Sleep(run.BackoffDelay(c.opts.BackoffBase, c.opts.BackoffMax, c.spec.Seed, key, attempt-1))
			c.logf("coordinator: slot %d retry %d after %v", ws.slot, attempt-1, lastErr)
		}
		if err := ws.send(c.opts.StepTimeout, reqTyp, reqPayload); err != nil {
			return nil, &workerFailure{slot: ws.slot, err: err, respawn: true}
		}
		payload, err := c.awaitFrame(ws, wantTyp, wantT, time.Now().Add(c.opts.StepTimeout))
		switch {
		case err == nil:
			return payload, nil
		case errors.Is(err, errAttemptTimeout):
			lastErr = err
			continue
		case errors.Is(err, errFatalWorker):
			return nil, &workerFailure{slot: ws.slot, err: err, fatal: true}
		case errors.Is(err, errNeedsLoad):
			return nil, &workerFailure{slot: ws.slot, err: err}
		default: // dead, corrupt, malformed
			return nil, &workerFailure{slot: ws.slot, err: err, respawn: true}
		}
	}
	return nil, &workerFailure{
		slot:    ws.slot,
		err:     fmt.Errorf("slot %d unresponsive after %d attempts: %w", ws.slot, c.opts.MaxRetries+1, lastErr),
		respawn: true,
	}
}

// fanout runs one phase function against every worker concurrently and
// collects failures ordered by slot.
func (c *Coordinator) fanout(fn func(ws *workerSlot) *workerFailure) []workerFailure {
	var mu sync.Mutex
	var fails []workerFailure
	var wg sync.WaitGroup
	for _, ws := range c.workers {
		wg.Add(1)
		go func(ws *workerSlot) {
			defer wg.Done()
			if f := fn(ws); f != nil {
				mu.Lock()
				fails = append(fails, *f)
				mu.Unlock()
			}
		}(ws)
	}
	wg.Wait()
	sort.Slice(fails, func(i, j int) bool { return fails[i].slot < fails[j].slot })
	return fails
}

// ----- phases ------------------------------------------------------------

// partitionParts splits a checkpoint's live packets by current shard
// ownership, preserving part order then packet order — the exact enqueue
// order shard.Engine's grid-flexible restore uses, which is what keeps a
// rebalanced or differently-sharded resume bit-identical.
func (c *Coordinator) partitionParts(ck *shard.Checkpoint) [][]sim.PacketState {
	parts := make([][]sim.PacketState, c.grid.Count())
	for i := range ck.Parts {
		for j := range ck.Parts[i].Packets {
			ps := ck.Parts[i].Packets[j]
			owner := c.part.Owner(ps.Node)
			parts[owner] = append(parts[owner], ps)
		}
	}
	return parts
}

// phaseLoad pushes a checkpoint's state to every worker: ASSIGN for slots
// whose connection is new (they need the problem definition), then LOAD
// with each owned shard's packets.
func (c *Coordinator) phaseLoad(ck *shard.Checkpoint, assign map[int]bool) []workerFailure {
	parts := c.partitionParts(ck)
	t := ck.Manifest.Time
	return c.fanout(func(ws *workerSlot) *workerFailure {
		if assign[ws.slot] {
			a := msgAssign{
				Epoch: c.epoch, Side: c.spec.Side, Wrap: c.spec.Wrap,
				GridP: c.grid.P, GridQ: c.grid.Q, Policy: c.spec.Policy,
				Seed: c.spec.Seed, Validation: int(c.spec.Validation),
				HashWords: c.livelockable, Owned: ws.owned,
				HeartbeatMillis: c.opts.HeartbeatEvery.Milliseconds(),
			}
			if err := ws.send(c.opts.StepTimeout, mtAssign, a.encode()); err != nil {
				return &workerFailure{slot: ws.slot, err: err, respawn: true}
			}
		}
		l := msgLoad{Epoch: c.epoch, T: t}
		for _, idx := range ws.owned {
			l.Shards = append(l.Shards, shardLoad{Index: idx, Packets: parts[idx]})
		}
		_, f := c.exchange(ws, mtLoad, l.encode(), mtLoaded, t)
		return f
	})
}

// phaseRoute drives the route barrier for step t and returns each slot's
// egress buckets.
func (c *Coordinator) phaseRoute(t int) ([][]shard.Bucket, []workerFailure) {
	results := make([][]shard.Bucket, len(c.workers))
	req := (&msgStep{Epoch: c.epoch, T: t}).encode()
	fails := c.fanout(func(ws *workerSlot) *workerFailure {
		payload, f := c.exchange(ws, mtRoute, req, mtEgress, t)
		if f != nil {
			return f
		}
		m, err := decodeEgress(payload)
		if err != nil {
			return &workerFailure{slot: ws.slot, err: err, respawn: true}
		}
		results[ws.slot] = m.Buckets
		return nil
	})
	return results, fails
}

// phaseApply delivers each slot's ingress buckets and collects the applied
// reports.
func (c *Coordinator) phaseApply(t int, ingress [][]shard.Bucket) ([]msgApplied, []workerFailure) {
	results := make([]msgApplied, len(c.workers))
	fails := c.fanout(func(ws *workerSlot) *workerFailure {
		m := msgEgress{Epoch: c.epoch, T: t, Buckets: ingress[ws.slot]}
		payload, f := c.exchange(ws, mtApply, m.encode(), mtApplied, t)
		if f != nil {
			return f
		}
		ap, err := decodeApplied(payload)
		if err != nil {
			return &workerFailure{slot: ws.slot, err: err, respawn: true}
		}
		results[ws.slot] = ap
		return nil
	})
	return results, fails
}

// collectCheckpoint captures a coordinated checkpoint at the current
// barrier: every worker contributes its shards' parts, the coordinator adds
// the manifest.
func (c *Coordinator) collectCheckpoint() (*shard.Checkpoint, []workerFailure) {
	req := (&msgStep{Epoch: c.epoch, T: c.time}).encode()
	parts := make([]shard.ShardPart, c.grid.Count())
	got := make([]bool, c.grid.Count())
	var mu sync.Mutex
	fails := c.fanout(func(ws *workerSlot) *workerFailure {
		payload, f := c.exchange(ws, mtCkpt, req, mtParts, c.time)
		if f != nil {
			return f
		}
		m, err := decodeParts(payload)
		if err != nil {
			return &workerFailure{slot: ws.slot, err: err, respawn: true}
		}
		mu.Lock()
		defer mu.Unlock()
		for i := range m.Parts {
			idx := m.Parts[i].Index
			if idx < 0 || idx >= len(parts) || m.Parts[i].Time != c.time {
				return &workerFailure{slot: ws.slot, err: fmt.Errorf("%w: bad part %d@%d", ErrBadMessage, idx, m.Parts[i].Time), respawn: true}
			}
			parts[idx] = m.Parts[i]
			got[idx] = true
		}
		return nil
	})
	if len(fails) > 0 {
		return nil, fails
	}
	for idx, ok := range got {
		if !ok {
			return nil, []workerFailure{{slot: c.workerOfShard[idx], err: fmt.Errorf("%w: shard %d part missing", ErrBadMessage, idx), respawn: true}}
		}
	}
	return &shard.Checkpoint{Manifest: c.manifest(), Parts: parts}, nil
}

// ----- hashing -----------------------------------------------------------

// foldRows walks the global row order — shard rows ascending, mesh rows
// within the band, shard columns left to right — calling emit for each
// (shard, mesh row) pair until emit's cursor exhausts that shard's stream.
// It reproduces exactly the visit order of shard.Engine.stateHash.
func (c *Coordinator) foldRows(emit func(shardIdx, y int)) {
	for r := 0; r < c.grid.Q; r++ {
		_, y0, _, bh := c.part.Bounds(r * c.grid.P)
		for y := y0; y < y0+bh; y++ {
			for col := 0; col < c.grid.P; col++ {
				emit(r*c.grid.P+col, y)
			}
		}
	}
}

// foldBlocks folds per-shard hash-word streams (each in ascending node
// order) into the global configuration hash.
func (c *Coordinator) foldBlocks(blocks [][]uint64) uint64 {
	h := sim.ConfigHashSeed
	cur := make([]int, len(blocks))
	side := c.spec.Side
	c.foldRows(func(si, y int) {
		b := blocks[si]
		i := cur[si]
		for i+1 < len(b) && int(b[i+1]>>32)/side == y {
			h = sim.ConfigHashFold(h, b[i], b[i+1])
			i += 2
		}
		cur[si] = i
	})
	return h
}

// foldParts is foldBlocks over checkpoint parts: the end-of-run state hash
// is computed from the final parts so it exists even when livelock
// detection (and therefore per-step word shipping) is off.
func (c *Coordinator) foldParts(parts []shard.ShardPart) uint64 {
	h := sim.ConfigHashSeed
	cur := make([]int, len(parts))
	side := c.spec.Side
	c.foldRows(func(si, y int) {
		pkts := parts[si].Packets
		i := cur[si]
		for i < len(pkts) && int(pkts[i].Node)/side == y {
			p := pkts[i].Packet()
			id, pos := sim.ConfigHashPacketWords(p)
			h = sim.ConfigHashFold(h, id, pos)
			i++
		}
		cur[si] = i
	})
	return h
}

// ----- run loop ----------------------------------------------------------

func (c *Coordinator) runnable() bool {
	return c.live > 0 && !c.livelock && c.time < c.spec.MaxSteps
}

// step drives one barrier: route everywhere, regroup the egress buckets by
// receiving worker, apply everywhere, then fold the applied reports into
// the global state. Any failure leaves the global state untouched — the
// step either completes on every worker or is re-executed from a rollback.
func (c *Coordinator) step() []workerFailure {
	t := c.time
	egress, fails := c.phaseRoute(t)
	if len(fails) > 0 {
		return fails
	}
	ingress := make([][]shard.Bucket, len(c.workers))
	for slot := range egress {
		for _, b := range egress[slot] {
			dst := c.workerOfShard[b.To]
			ingress[dst] = append(ingress[dst], b)
		}
	}
	applied, fails := c.phaseApply(t, ingress)
	if len(fails) > 0 {
		return fails
	}

	c.time = t + 1
	var blocks [][]uint64
	if c.livelockable {
		blocks = make([][]uint64, c.grid.Count())
	}
	for slot := range applied {
		ap := &applied[slot]
		c.totalHops += ap.Hops
		c.totalDeflections += ap.Deflections
		c.live -= ap.Arrivals
		if ap.LastArrival > c.lastArrival {
			c.lastArrival = ap.LastArrival
		}
		c.reroutes += ap.Reroutes
		if ap.MaxNodeLoad > c.maxNodeLoad {
			c.maxNodeLoad = ap.MaxNodeLoad
		}
		c.finalized = append(c.finalized, ap.Finalized...)
		for i := range ap.Blocks {
			if b := &ap.Blocks[i]; b.Shard >= 0 && b.Shard < len(blocks) {
				blocks[b.Shard] = b.Words
			}
		}
	}
	if c.StepHook != nil {
		c.StepHook(c.time, c.live)
	}
	if c.livelockable && c.live > 0 {
		h := c.foldBlocks(blocks)
		if c.HashHook != nil {
			c.HashHook(c.time, h)
		}
		if _, dup := c.seen[h]; dup {
			c.livelock = true
		} else {
			c.seen[h] = c.time
		}
	}
	return nil
}

// ensureWorkers spawns (when a spawner is configured) and adopts workers
// for the given slots.
func (c *Coordinator) ensureWorkers(slots []int) error {
	if c.opts.Spawn != nil {
		for _, slot := range slots {
			proc, err := c.opts.Spawn(slot, c.Addr())
			if err != nil {
				return fmt.Errorf("%w: spawn slot %d: %v", ErrRunLost, slot, err)
			}
			c.workers[slot].proc = proc
		}
	}
	return c.adopt(slots)
}

// recoverFrom is the rejoin state machine: tear down failed workers,
// re-spawn or await their replacements, bump the epoch so every in-flight
// frame from before the failure is recognizably stale, reload every worker
// (failed and healthy alike) from the last coordinated checkpoint, and roll
// the coordinator's own state back to its manifest. It loops until a load
// completes cleanly or the recovery budget is exhausted.
func (c *Coordinator) recoverFrom(fails []workerFailure) error {
	for {
		for _, f := range fails {
			if f.fatal {
				return f.err
			}
		}
		c.recoveries++
		if c.recoveries > c.opts.MaxRecoveries {
			errs := make([]error, 0, len(fails)+1)
			errs = append(errs, fmt.Errorf("%w: recovery budget (%d) exhausted", ErrRunLost, c.opts.MaxRecoveries))
			for _, f := range fails {
				errs = append(errs, f.err)
			}
			return errors.Join(errs...)
		}

		var respawn []int
		newConn := make(map[int]bool)
		for _, f := range fails {
			c.logf("coordinator: worker slot %d failed (recovery %d/%d): %v", f.slot, c.recoveries, c.opts.MaxRecoveries, f.err)
			if !f.respawn {
				continue
			}
			ws := c.workers[f.slot]
			if ws.conn != nil {
				ws.conn.Close()
				ws.conn = nil
				ws.br = nil
			}
			if ws.proc != nil {
				ws.proc.Stop()
				ws.proc = nil
			}
			respawn = append(respawn, f.slot)
			newConn[f.slot] = true
		}
		c.epoch++
		if len(respawn) > 0 {
			if err := c.ensureWorkers(respawn); err != nil {
				return err
			}
		}
		c.logf("coordinator: rolling back to checkpoint of step %d (epoch %d)", c.lastCK.Manifest.Time, c.epoch)
		fails = c.phaseLoad(c.lastCK, newConn)
		if len(fails) == 0 {
			c.restoreState(&c.lastCK.Manifest)
			return nil
		}
	}
}

// Run executes the distributed run to completion: spawn/await the workers,
// distribute the initial (or resumed) state, drive the step barrier with
// periodic coordinated checkpoints, recover from worker failures, capture
// the final state hash, and shut the workers down. The Result contract is
// sim's, exactly as for shard.Engine.
func (c *Coordinator) Run(ctx context.Context) (*sim.Result, error) {
	defer c.Close()

	var stop atomic.Bool
	if c.opts.MaxWallTime > 0 {
		timer := time.AfterFunc(c.opts.MaxWallTime, func() { stop.Store(true) })
		defer timer.Stop()
	}
	if done := ctx.Done(); done != nil {
		quit := make(chan struct{})
		defer close(quit)
		go func() {
			select {
			case <-done:
				stop.Store(true)
			case <-quit:
			}
		}()
	}

	// Bring up the fleet and distribute the starting state.
	slots := make([]int, len(c.workers))
	assign := make(map[int]bool, len(c.workers))
	for i := range slots {
		slots[i] = i
		assign[i] = true
	}
	c.epoch = 1
	if err := c.ensureWorkers(slots); err != nil {
		return nil, err
	}
	if fails := c.phaseLoad(c.lastCK, assign); len(fails) > 0 {
		if err := c.recoverFrom(fails); err != nil {
			return nil, err
		}
	}

	wrote := false
	save := func(ck *shard.Checkpoint) error {
		if c.opts.CheckpointDir == "" {
			return nil
		}
		if err := shard.SaveDir(c.opts.CheckpointDir, ck, c.opts.CheckpointFormat); err != nil {
			return err
		}
		wrote = true
		return nil
	}
	sinceCK, sinceDisk := 0, 0
	var runErr error
	for {
		for c.runnable() && !stop.Load() {
			if fails := c.step(); len(fails) > 0 {
				if err := c.recoverFrom(fails); err != nil {
					return nil, err
				}
				sinceCK = 0
				continue
			}
			sinceCK++
			sinceDisk++
			if sinceCK >= c.opts.CheckpointEvery {
				ck, fails := c.collectCheckpoint()
				if len(fails) > 0 {
					if err := c.recoverFrom(fails); err != nil {
						return nil, err
					}
					sinceCK = 0
					continue
				}
				if err := save(ck); err != nil {
					return nil, fmt.Errorf("dshard: checkpoint save: %w", err)
				}
				c.lastCK = ck
				sinceCK, sinceDisk = 0, 0
			}
		}
		runErr = nil
		if c.runnable() { // stopped early: resolve the cause
			if err := ctx.Err(); errors.Is(err, context.Canceled) {
				runErr = err
			} else {
				c.deadlineExceeded = true
			}
		}
		// Capture the final state: the run's state hash (for parity and
		// fingerprinting) and, when stopping early with unsaved progress,
		// the resume checkpoint. A worker dying between the last step and
		// this capture must not lose the run either: recover and loop back
		// — the rollback reopens the step loop, which re-runs to the end.
		ck, fails := c.collectCheckpoint()
		if len(fails) == 0 {
			c.finalHash = c.foldParts(ck.Parts)
			// An early stop persists its progress; even one cancelled before
			// the first step saves the initial state — that is the job itself.
			if c.runnable() && (sinceDisk > 0 || !wrote) {
				if err := save(ck); err != nil && runErr == nil {
					runErr = fmt.Errorf("dshard: final checkpoint save: %w", err)
				}
			}
			break
		}
		if err := c.recoverFrom(fails); err != nil {
			c.logf("coordinator: final state capture failed: %v", err)
			break
		}
		sinceCK = 0
	}
	c.shutdownWorkers()
	return c.result(), runErr
}

func (c *Coordinator) result() *sim.Result {
	return &sim.Result{
		Steps:            c.lastArrival,
		Delivered:        c.total - c.live,
		Total:            c.total,
		Livelocked:       c.livelock,
		HitMaxSteps:      c.live > 0 && !c.livelock && !c.deadlineExceeded && c.time >= c.spec.MaxSteps,
		TotalDeflections: c.totalDeflections,
		TotalHops:        c.totalHops,
		MaxNodeLoad:      c.maxNodeLoad,
		Reroutes:         c.reroutes,
		DeadlineExceeded: c.deadlineExceeded,
	}
}

// shutdownWorkers asks every worker to exit cleanly, then severs.
func (c *Coordinator) shutdownWorkers() {
	for _, ws := range c.workers {
		if ws.conn != nil {
			m := msgStep{Epoch: c.epoch}
			ws.send(time.Second, mtShutdown, m.encode())
		}
	}
	for _, ws := range c.workers {
		if ws.conn != nil {
			ws.conn.Close()
			ws.conn = nil
		}
		if ws.proc != nil {
			ws.proc.Stop()
			ws.proc = nil
		}
	}
}

// Close releases the listener and any remaining workers. Safe to call more
// than once; Run calls it on exit.
func (c *Coordinator) Close() {
	c.shutdownOnce.Do(func() {
		c.shutdownWorkers()
		c.ln.Close()
	})
}
