package dshard

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, {0}, []byte("hello"), bytes.Repeat([]byte{0xAB}, 4096)}
	var stream []byte
	for i, p := range payloads {
		stream = AppendFrame(stream, byte(i+1), p)
	}
	r := bytes.NewReader(stream)
	for i, p := range payloads {
		typ, got, err := ReadFrame(r, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if typ != byte(i+1) {
			t.Fatalf("frame %d: type %d, want %d", i, typ, i+1)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame %d: payload mismatch (%d bytes vs %d)", i, len(got), len(p))
		}
	}
	if _, _, err := ReadFrame(r, 0); err != io.EOF {
		t.Fatalf("after last frame: want io.EOF, got %v", err)
	}
}

// TestFrameEveryFlipDetected flips every single byte of an encoded frame in
// turn: no flip may yield a successful parse of the original frame — each
// must surface as ErrFrameCorrupt. This is the "corruption is loud, never
// silent" acceptance criterion at its sharpest.
func TestFrameEveryFlipDetected(t *testing.T) {
	frame := AppendFrame(nil, mtEgress, []byte("the payload under test"))
	for i := range frame {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), frame...)
			mut[i] ^= 1 << bit
			_, _, err := ReadFrame(bytes.NewReader(mut), 0)
			if err == nil {
				t.Fatalf("flip byte %d bit %d: parsed successfully", i, bit)
			}
			if !errors.Is(err, ErrFrameCorrupt) {
				t.Fatalf("flip byte %d bit %d: err %v, want ErrFrameCorrupt", i, bit, err)
			}
		}
	}
}

func TestFrameLengthCap(t *testing.T) {
	frame := AppendFrame(nil, 1, bytes.Repeat([]byte{1}, 100))
	_, _, err := ReadFrame(bytes.NewReader(frame), 50)
	if !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("oversized frame: err %v, want ErrFrameCorrupt", err)
	}
	if _, _, err := ReadFrame(bytes.NewReader(frame), 100); err != nil {
		t.Fatalf("frame at exactly the cap: %v", err)
	}
}

func TestFrameTruncated(t *testing.T) {
	frame := AppendFrame(nil, 1, []byte("abcdef"))
	// Truncated payload: structural corruption, loud.
	if _, _, err := ReadFrame(bytes.NewReader(frame[:len(frame)-2]), 0); !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("truncated payload: err %v, want ErrFrameCorrupt", err)
	}
	// Truncated header: a transport-level short read, passes through.
	if _, _, err := ReadFrame(bytes.NewReader(frame[:5]), 0); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated header: err %v, want io.ErrUnexpectedEOF", err)
	}
}

// countFrames reads frames until EOF, returning payloads of good frames and
// the count of corrupt ones.
func countFrames(t *testing.T, stream []byte) (good [][]byte, corrupt int) {
	t.Helper()
	r := bytes.NewReader(stream)
	for {
		_, p, err := ReadFrame(r, 0)
		if err == io.EOF {
			return good, corrupt
		}
		if errors.Is(err, ErrFrameCorrupt) {
			corrupt++
			continue
		}
		if err != nil {
			t.Fatalf("unexpected read error: %v", err)
		}
		good = append(good, p)
	}
}

func TestFaultWriterSchedule(t *testing.T) {
	write := func(plan *FaultPlan, frames int) []byte {
		var buf bytes.Buffer
		w := newFaultWriter(&buf, plan)
		for i := 0; i < frames; i++ {
			if err := WriteFrame(w, 1, []byte{byte(i)}); err != nil {
				t.Fatalf("frame %d: %v", i, err)
			}
		}
		return buf.Bytes()
	}

	// Drop: every 3rd of 9 frames vanishes.
	good, corrupt := countFrames(t, write(&FaultPlan{DropEvery: 3}, 9))
	if len(good) != 6 || corrupt != 0 {
		t.Errorf("drop: %d good, %d corrupt; want 6, 0", len(good), corrupt)
	}

	// Dup: every 3rd frame appears twice; duplicates are byte-identical.
	good, corrupt = countFrames(t, write(&FaultPlan{DupEvery: 3}, 9))
	if len(good) != 12 || corrupt != 0 {
		t.Errorf("dup: %d good, %d corrupt; want 12, 0", len(good), corrupt)
	}

	// Corrupt: the 4th frame must fail validation loudly, whichever byte
	// the injector hit. (Only the last frame is corrupted here: a mangled
	// length field desyncs everything after it, exactly as on a real link.)
	r := bytes.NewReader(write(&FaultPlan{Seed: 9, CorruptEvery: 4}, 4))
	for i := 0; i < 3; i++ {
		if _, _, err := ReadFrame(r, 0); err != nil {
			t.Fatalf("corrupt schedule, clean frame %d: %v", i, err)
		}
	}
	if _, _, err := ReadFrame(r, 0); !errors.Is(err, ErrFrameCorrupt) {
		t.Errorf("corrupted frame: err %v, want ErrFrameCorrupt", err)
	}

	// MaxFaults caps the injection.
	good, _ = countFrames(t, write(&FaultPlan{DropEvery: 2, MaxFaults: 2}, 10))
	if len(good) != 8 {
		t.Errorf("capped drop: %d good frames, want 8", len(good))
	}

	// Inactive plan must return the writer unchanged.
	var buf bytes.Buffer
	if w := newFaultWriter(&buf, nil); w != &buf {
		t.Error("nil plan: writer was wrapped")
	}
	if w := newFaultWriter(&buf, &FaultPlan{}); w != &buf {
		t.Error("inactive plan: writer was wrapped")
	}
}
