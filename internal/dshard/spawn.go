package dshard

import (
	"context"
	"time"
)

// goProc is the WorkerProc of an in-process worker goroutine.
type goProc struct {
	cancel context.CancelFunc
	done   chan struct{}
}

// Stop kills the worker abruptly — the context watcher slams its
// connection shut, so from the coordinator's side it looks just like a
// process death.
func (p *goProc) Stop() {
	p.cancel()
	select {
	case <-p.done:
	case <-time.After(5 * time.Second):
	}
}

// InProcessSpawner returns a Spawn function that runs each worker as a
// goroutine in this process, dialing the coordinator over loopback. It is
// the default distributed mode for hotpotatod jobs (no worker binary to
// manage) and the substrate of the transport-fault tests: base.Faults, if
// set, applies to every spawned worker's outbound stream.
//
// base.Slot is ignored; each spawn stamps its own slot.
func InProcessSpawner(base WorkerOptions) func(slot int, addr string) (WorkerProc, error) {
	return func(slot int, addr string) (WorkerProc, error) {
		opts := base
		opts.Slot = slot
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			defer close(done)
			if err := RunWorker(ctx, addr, opts); err != nil && ctx.Err() == nil && opts.Logf != nil {
				opts.Logf("worker %d: %v", slot, err)
			}
		}()
		return &goProc{cancel: cancel, done: done}, nil
	}
}
