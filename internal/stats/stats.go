// Package stats provides the small statistics toolkit the benchmark
// harness uses: summaries over repeated trials, percentiles, least-squares
// fits (for scaling-exponent estimation on log-log data), and plain-text /
// CSV table rendering.
package stats

import (
	"fmt"
	"math"
	"slices"
)

// Summary describes a sample of float64 observations.
type Summary struct {
	N                int
	Sum              float64
	Mean, Std        float64
	Min, Median, Max float64
	P90, P99         float64
}

// Summarize computes a Summary. An empty sample yields the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs)}
	sorted := append([]float64(nil), xs...)
	slices.Sort(sorted)
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	s.Median = Percentile(sorted, 50)
	s.P90 = Percentile(sorted, 90)
	s.P99 = Percentile(sorted, 99)
	var sum float64
	for _, x := range sorted {
		sum += x
	}
	s.Sum = sum
	s.Mean = sum / float64(len(sorted))
	if len(sorted) > 1 {
		var ss float64
		for _, x := range sorted {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(sorted)-1))
	}
	return s
}

// Percentile returns the p-th percentile (0-100) of an already sorted
// sample using linear interpolation. It panics on an empty sample.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("stats: percentile of empty sample")
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// SummarizeInts is Summarize over integer observations.
func SummarizeInts(xs []int) Summary {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Summarize(fs)
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f std=%.2f min=%g med=%g p90=%g max=%g",
		s.N, s.Mean, s.Std, s.Min, s.Median, s.P90, s.Max)
}

// Fit is a least-squares line y = Slope*x + Intercept with its coefficient
// of determination.
type Fit struct {
	Slope, Intercept, R2 float64
}

// LinearFit fits a least-squares line through (xs[i], ys[i]). It requires
// at least two points with distinct x values.
func LinearFit(xs, ys []float64) (Fit, error) {
	if len(xs) != len(ys) {
		return Fit{}, fmt.Errorf("stats: mismatched lengths %d, %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return Fit{}, fmt.Errorf("stats: need at least 2 points, got %d", len(xs))
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Fit{}, fmt.Errorf("stats: all x values identical")
	}
	f := Fit{Slope: sxy / sxx}
	f.Intercept = my - f.Slope*mx
	if syy == 0 {
		f.R2 = 1
	} else {
		f.R2 = sxy * sxy / (sxx * syy)
	}
	return f, nil
}

// PowerLawFit fits y = c * x^alpha by least squares on log-log axes and
// returns (alpha, c, R2). All inputs must be positive.
func PowerLawFit(xs, ys []float64) (alpha, c, r2 float64, err error) {
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if i >= len(ys) {
			break
		}
		if xs[i] <= 0 || ys[i] <= 0 {
			return 0, 0, 0, fmt.Errorf("stats: power-law fit needs positive data, got (%g, %g)", xs[i], ys[i])
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	f, err := LinearFit(lx, ly)
	if err != nil {
		return 0, 0, 0, err
	}
	return f.Slope, math.Exp(f.Intercept), f.R2, nil
}
