package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders them as an aligned text table or CSV.
// It is the uniform output format of the experiment harness, one Table per
// reproduced result.
type Table struct {
	title   string
	headers []string
	rows    [][]string
	notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; values are rendered with %v (floats with %g).
func (t *Table) AddRow(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", x)
		case float32:
			row[i] = fmt.Sprintf("%.3g", x)
		case string:
			row[i] = x
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// AddNote appends a free-text footnote printed under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

// Title returns the table title.
func (t *Table) Title() string { return t.title }

// Rows returns the rendered row count.
func (t *Table) Rows() int { return len(t.rows) }

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "%s\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	rule := make([]string, len(t.headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range t.rows {
		writeRow(row)
	}
	for _, n := range t.notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteMarkdown renders the table as a GitHub-flavored markdown table,
// with notes as a trailing list.
func (t *Table) WriteMarkdown(w io.Writer) error {
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.title)
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for _, cell := range cells {
			b.WriteString(" " + strings.ReplaceAll(cell, "|", "\\|") + " |")
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	rule := make([]string, len(t.headers))
	for i := range rule {
		rule[i] = "---"
	}
	writeRow(rule)
	for _, row := range t.rows {
		writeRow(row)
	}
	for _, n := range t.notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as CSV (RFC-4180-style quoting for cells
// containing commas or quotes).
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(cell, `"`, `""`) + `"`)
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
