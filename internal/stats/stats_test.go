package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 {
		t.Errorf("basic fields wrong: %+v", s)
	}
	if s.Mean != 2.5 {
		t.Errorf("Mean = %v", s.Mean)
	}
	if math.Abs(s.Std-math.Sqrt(5.0/3.0)) > 1e-12 {
		t.Errorf("Std = %v", s.Std)
	}
	if s.Median != 2.5 {
		t.Errorf("Median = %v", s.Median)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.Std != 0 || s.Min != 7 || s.Max != 7 || s.Median != 7 {
		t.Errorf("singleton summary = %+v", s)
	}
	if got := SummarizeInts([]int{1, 2, 3}); got.Mean != 2 {
		t.Errorf("SummarizeInts mean = %v", got.Mean)
	}
	if !strings.Contains(s.String(), "mean=7.00") {
		t.Errorf("String() = %q", s.String())
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40, 50}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {-5, 10}, {100, 50}, {200, 50},
		{50, 30}, {25, 20}, {75, 40}, {90, 46},
	}
	for _, tt := range tests {
		if got := Percentile(sorted, tt.p); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Percentile of empty sample did not panic")
		}
	}()
	Percentile(nil, 50)
}

func TestLinearFit(t *testing.T) {
	f, err := LinearFit([]float64{0, 1, 2, 3}, []float64{1, 3, 5, 7})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Slope-2) > 1e-12 || math.Abs(f.Intercept-1) > 1e-12 || math.Abs(f.R2-1) > 1e-12 {
		t.Errorf("fit = %+v", f)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := LinearFit([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Error("degenerate x accepted")
	}
}

func TestLinearFitConstantY(t *testing.T) {
	f, err := LinearFit([]float64{1, 2, 3}, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if f.Slope != 0 || f.Intercept != 5 || f.R2 != 1 {
		t.Errorf("constant fit = %+v", f)
	}
}

func TestPowerLawFit(t *testing.T) {
	// y = 3 x^0.5 exactly.
	xs := []float64{1, 4, 9, 16, 100}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * math.Sqrt(x)
	}
	alpha, c, r2, err := PowerLawFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(alpha-0.5) > 1e-9 || math.Abs(c-3) > 1e-9 || math.Abs(r2-1) > 1e-9 {
		t.Errorf("power fit = (%v, %v, %v)", alpha, c, r2)
	}
	if _, _, _, err := PowerLawFit([]float64{0, 1}, []float64{1, 2}); err == nil {
		t.Error("nonpositive x accepted")
	}
}

func TestQuickLinearFitRecoversLine(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		slope := rng.Float64()*10 - 5
		icept := rng.Float64()*10 - 5
		xs := make([]float64, 10)
		ys := make([]float64, 10)
		for i := range xs {
			xs[i] = float64(i)
			ys[i] = slope*xs[i] + icept
		}
		fit, err := LinearFit(xs, ys)
		return err == nil && math.Abs(fit.Slope-slope) < 1e-9 && math.Abs(fit.Intercept-icept) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableText(t *testing.T) {
	tb := NewTable("T1: example", "n", "k", "ratio")
	tb.AddRow(8, 64, 0.25)
	tb.AddRow(16, "256", 0.125)
	tb.AddNote("seeds: %d", 5)
	var sb strings.Builder
	if err := tb.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"T1: example", "n", "ratio", "0.25", "256", "note: seeds: 5", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	if tb.Rows() != 2 || tb.Title() != "T1: example" {
		t.Errorf("accessors: rows=%d title=%q", tb.Rows(), tb.Title())
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("x", "a", "b")
	tb.AddRow("plain", `with "quote", comma`)
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "a,b\nplain,\"with \"\"quote\"\", comma\"\n"
	if sb.String() != want {
		t.Errorf("CSV = %q, want %q", sb.String(), want)
	}
}
