package stats

import (
	"fmt"
	"io"
	"math"
	"slices"
	"strings"
)

// Histogram is a fixed-bucket histogram with an ASCII bar rendering, used
// by the examples and the steady-state experiments for delay and
// deflection distributions.
type Histogram struct {
	buckets []int
	lo, hi  float64
	width   float64
	under   int
	over    int
	n       int
	sum     float64
}

// NewHistogram builds a histogram with `buckets` equal-width buckets
// covering [lo, hi). Values outside the range are counted separately.
func NewHistogram(lo, hi float64, buckets int) (*Histogram, error) {
	if buckets < 1 {
		return nil, fmt.Errorf("stats: histogram needs at least one bucket, got %d", buckets)
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("stats: histogram range [%v, %v) empty", lo, hi)
	}
	return &Histogram{
		buckets: make([]int, buckets),
		lo:      lo,
		hi:      hi,
		width:   (hi - lo) / float64(buckets),
	}, nil
}

// Add records one observation.
func (h *Histogram) Add(v float64) {
	h.n++
	h.sum += v
	switch {
	case v < h.lo:
		h.under++
	case v >= h.hi:
		h.over++
	default:
		idx := int((v - h.lo) / h.width)
		if idx >= len(h.buckets) { // float edge
			idx = len(h.buckets) - 1
		}
		h.buckets[idx]++
	}
}

// AddInts records a batch of integer observations.
func (h *Histogram) AddInts(vs []int) {
	for _, v := range vs {
		h.Add(float64(v))
	}
}

// N returns the number of observations.
func (h *Histogram) N() int { return h.n }

// Sum returns the sum of all observations, including out-of-range ones.
func (h *Histogram) Sum() float64 { return h.sum }

// Under and Over return the observation counts below lo and at or above hi.
func (h *Histogram) Under() int { return h.under }
func (h *Histogram) Over() int  { return h.over }

// Buckets returns the in-range bucket upper bounds and counts: counts[i]
// observations fell in [bounds[i]-width, bounds[i]). Both slices are fresh
// copies. Together with Under/Over/Sum/N this is everything an exporter
// needs to re-encode the histogram (e.g. as Prometheus cumulative buckets).
func (h *Histogram) Buckets() (bounds []float64, counts []int) {
	bounds = make([]float64, len(h.buckets))
	counts = make([]int, len(h.buckets))
	for i, c := range h.buckets {
		bounds[i] = h.lo + float64(i+1)*h.width
		counts[i] = c
	}
	// The last bound is exactly hi, not lo + n*width with float error.
	bounds[len(bounds)-1] = h.hi
	return bounds, counts
}

// Quantile returns an approximate quantile (0..1) from the bucket
// midpoints; out-of-range mass is clamped to the bounds.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return math.NaN()
	}
	target := int(math.Ceil(q * float64(h.n)))
	if target < 1 {
		target = 1
	}
	cum := h.under
	if cum >= target {
		return h.lo
	}
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			return h.lo + (float64(i)+0.5)*h.width
		}
	}
	return h.hi
}

// Write renders the histogram as ASCII bars, widest bar `barWidth` chars.
func (h *Histogram) Write(w io.Writer, barWidth int) error {
	if barWidth < 1 {
		barWidth = 40
	}
	maxCount := h.under
	for _, c := range h.buckets {
		if c > maxCount {
			maxCount = c
		}
	}
	if h.over > maxCount {
		maxCount = h.over
	}
	var b strings.Builder
	bar := func(c int) string {
		if maxCount == 0 {
			return ""
		}
		return strings.Repeat("#", c*barWidth/maxCount)
	}
	if h.under > 0 {
		fmt.Fprintf(&b, "%12s  %6d %s\n", fmt.Sprintf("< %g", h.lo), h.under, bar(h.under))
	}
	for i, c := range h.buckets {
		lo := h.lo + float64(i)*h.width
		fmt.Fprintf(&b, "%12s  %6d %s\n", fmt.Sprintf("[%g,%g)", lo, lo+h.width), c, bar(c))
	}
	if h.over > 0 {
		fmt.Fprintf(&b, "%12s  %6d %s\n", fmt.Sprintf(">= %g", h.hi), h.over, bar(h.over))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// IntHistogram tallies exact small integer observations (e.g. deflections
// per packet) without bucketing.
type IntHistogram struct {
	counts map[int]int
	n      int
}

// NewIntHistogram returns an empty exact-count histogram.
func NewIntHistogram() *IntHistogram {
	return &IntHistogram{counts: make(map[int]int)}
}

// Add records one observation.
func (h *IntHistogram) Add(v int) {
	h.counts[v]++
	h.n++
}

// N returns the number of observations.
func (h *IntHistogram) N() int { return h.n }

// Count returns the tally for an exact value.
func (h *IntHistogram) Count(v int) int { return h.counts[v] }

// Write renders sorted value/count lines with ASCII bars.
func (h *IntHistogram) Write(w io.Writer, barWidth int) error {
	if barWidth < 1 {
		barWidth = 40
	}
	keys := make([]int, 0, len(h.counts))
	maxCount := 0
	for k, c := range h.counts {
		keys = append(keys, k)
		if c > maxCount {
			maxCount = c
		}
	}
	slices.Sort(keys)
	var b strings.Builder
	for _, k := range keys {
		c := h.counts[k]
		bar := ""
		if maxCount > 0 {
			bar = strings.Repeat("#", c*barWidth/maxCount)
		}
		fmt.Fprintf(&b, "%6d  %6d %s\n", k, c, bar)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
