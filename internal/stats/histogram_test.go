package stats

import (
	"math"
	"strings"
	"testing"
)

func TestNewHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("zero buckets accepted")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := NewHistogram(10, 5, 3); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	h.AddInts([]int{-1, 0, 1, 2, 3, 9, 10, 50})
	if h.N() != 8 {
		t.Errorf("N = %d", h.N())
	}
	if h.under != 1 || h.over != 2 {
		t.Errorf("under=%d over=%d, want 1, 2", h.under, h.over)
	}
	// Buckets: [0,2):{0,1} [2,4):{2,3} [8,10):{9}.
	if h.buckets[0] != 2 || h.buckets[1] != 2 || h.buckets[4] != 1 {
		t.Errorf("buckets = %v", h.buckets)
	}
	var sb strings.Builder
	if err := h.Write(&sb, 20); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"< 0", "[0,2)", ">= 10", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h, err := NewHistogram(0, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	if q := h.Quantile(0.5); math.Abs(q-49.5) > 1 {
		t.Errorf("median = %v", q)
	}
	if q := h.Quantile(0.99); math.Abs(q-98.5) > 1.5 {
		t.Errorf("p99 = %v", q)
	}
	empty, err := NewHistogram(0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Error("empty quantile not NaN")
	}
}

func TestHistogramEdgeValueGoesToLastBucket(t *testing.T) {
	h, err := NewHistogram(0, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(0.999999999999) // float edge case
	sum := 0
	for _, c := range h.buckets {
		sum += c
	}
	if sum != 1 || h.over != 0 {
		t.Errorf("edge value mishandled: buckets=%v over=%d", h.buckets, h.over)
	}
}

func TestIntHistogram(t *testing.T) {
	h := NewIntHistogram()
	for _, v := range []int{0, 0, 0, 1, 2, 2, 7} {
		h.Add(v)
	}
	if h.N() != 7 || h.Count(0) != 3 || h.Count(2) != 2 || h.Count(5) != 0 {
		t.Errorf("counts wrong: %+v", h)
	}
	var sb strings.Builder
	if err := h.Write(&sb, 10); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Errorf("expected 4 value lines:\n%s", sb.String())
	}
	if !strings.HasPrefix(strings.TrimSpace(lines[0]), "0") {
		t.Errorf("values not sorted:\n%s", sb.String())
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("T", "a", "b")
	tb.AddRow("x|y", 2)
	tb.AddNote("a note")
	var sb strings.Builder
	if err := tb.WriteMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"**T**", "| a | b |", "| --- | --- |", `x\|y`, "*a note*"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramExportAccessors(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{-1, 0, 1.5, 2, 4, 9.9, 10, 42} {
		h.Add(v)
	}
	if got, want := h.N(), 8; got != want {
		t.Errorf("N = %d, want %d", got, want)
	}
	if got, want := h.Sum(), -1+0+1.5+2+4+9.9+10+42.0; got != want {
		t.Errorf("Sum = %v, want %v", got, want)
	}
	if h.Under() != 1 || h.Over() != 2 {
		t.Errorf("Under/Over = %d/%d, want 1/2", h.Under(), h.Over())
	}
	bounds, counts := h.Buckets()
	wantBounds := []float64{2, 4, 6, 8, 10}
	// [0,2): 0, 1.5   [2,4): 2   [4,6): 4   [6,8): —   [8,10): 9.9
	wantCounts := []int{2, 1, 1, 0, 1}
	for i := range wantBounds {
		if bounds[i] != wantBounds[i] {
			t.Errorf("bounds[%d] = %v, want %v", i, bounds[i], wantBounds[i])
		}
		if counts[i] != wantCounts[i] {
			t.Errorf("counts[%d] = %d, want %d", i, counts[i], wantCounts[i])
		}
	}
	total := h.Under() + h.Over()
	for _, c := range counts {
		total += c
	}
	if total != h.N() {
		t.Errorf("counts sum to %d, want N = %d", total, h.N())
	}
}
