package mesh

import (
	"math/rand"
	"testing"
)

func TestNewTorusValidation(t *testing.T) {
	if _, err := NewTorus(2, 2); err == nil {
		t.Error("torus side 2 accepted")
	}
	if _, err := NewTorus(0, 4); err == nil {
		t.Error("torus dim 0 accepted")
	}
	m, err := NewTorus(2, 6)
	if err != nil || !m.Wrap() {
		t.Fatalf("NewTorus = %v, %v", m, err)
	}
	if MustNew(2, 6).Wrap() {
		t.Error("mesh reports Wrap")
	}
	if m.String() != "torus(d=2, n=6)" {
		t.Errorf("String() = %q", m.String())
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNewTorus(0,0) did not panic")
		}
	}()
	MustNewTorus(0, 0)
}

func TestTorusBasicProperties(t *testing.T) {
	m := MustNewTorus(2, 6)
	if got, want := m.Diameter(), 6; got != want {
		t.Errorf("Diameter = %d, want %d", got, want)
	}
	if got, want := m.ArcCount(), 2*2*36; got != want {
		t.Errorf("ArcCount = %d, want %d", got, want)
	}
	for id := NodeID(0); int(id) < m.Size(); id++ {
		if m.Degree(id) != 4 {
			t.Fatalf("torus node %d degree %d", id, m.Degree(id))
		}
		for dir := Dir(0); dir < Dir(m.DirCount()); dir++ {
			if !m.HasArc(id, dir) {
				t.Fatalf("torus node %d missing arc %v", id, dir)
			}
		}
	}
}

func TestTorusNeighborWraps(t *testing.T) {
	m := MustNewTorus(2, 5)
	corner := m.ID([]int{0, 0})
	if nb, ok := m.Neighbor(corner, DirMinus(0)); !ok || nb != m.ID([]int{4, 0}) {
		t.Errorf("Neighbor((0,0), -x0) = %d, %v", nb, ok)
	}
	if nb, ok := m.Neighbor(m.ID([]int{4, 2}), DirPlus(0)); !ok || nb != m.ID([]int{0, 2}) {
		t.Errorf("wrap +x0 = %d, %v", nb, ok)
	}
	// Reciprocity holds through the wrap.
	for id := NodeID(0); int(id) < m.Size(); id++ {
		for dir := Dir(0); dir < Dir(m.DirCount()); dir++ {
			nb, _ := m.Neighbor(id, dir)
			back, _ := m.Neighbor(nb, dir.Opposite())
			if back != id {
				t.Fatalf("reciprocity broken at %d %v", id, dir)
			}
		}
	}
}

func TestTorusDist(t *testing.T) {
	m := MustNewTorus(2, 6)
	tests := []struct {
		a, b []int
		want int
	}{
		{[]int{0, 0}, []int{5, 0}, 1}, // wrap beats the long way
		{[]int{0, 0}, []int{3, 0}, 3}, // exactly opposite
		{[]int{0, 0}, []int{2, 0}, 2}, // forward shorter
		{[]int{1, 1}, []int{4, 5}, 5}, // 3 + 2 via wrap
		{[]int{0, 0}, []int{3, 3}, 6}, // both axes opposite
	}
	for _, tt := range tests {
		if got := m.Dist(m.ID(tt.a), m.ID(tt.b)); got != tt.want {
			t.Errorf("Dist(%v, %v) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestTorusDistMatchesBFS(t *testing.T) {
	m := MustNewTorus(2, 5)
	src := m.ID([]int{2, 3})
	distBFS := make([]int, m.Size())
	for i := range distBFS {
		distBFS[i] = -1
	}
	distBFS[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for dir := Dir(0); dir < Dir(m.DirCount()); dir++ {
			nb, _ := m.Neighbor(cur, dir)
			if distBFS[nb] < 0 {
				distBFS[nb] = distBFS[cur] + 1
				queue = append(queue, nb)
			}
		}
	}
	for id := NodeID(0); int(id) < m.Size(); id++ {
		if m.Dist(src, id) != distBFS[id] {
			t.Fatalf("Dist(%d, %d) = %d, BFS %d", src, id, m.Dist(src, id), distBFS[id])
		}
	}
}

func TestTorusGoodDirs(t *testing.T) {
	m := MustNewTorus(2, 6)
	from := m.ID([]int{0, 0})

	// Wrap direction is good when shorter.
	got := m.GoodDirs(from, m.ID([]int{5, 0}), nil)
	if len(got) != 1 || got[0] != DirMinus(0) {
		t.Errorf("GoodDirs to (5,0) = %v, want [-x0]", got)
	}
	// Exactly opposite: both directions good on that axis.
	got = m.GoodDirs(from, m.ID([]int{3, 0}), nil)
	if len(got) != 2 || got[0] != DirPlus(0) || got[1] != DirMinus(0) {
		t.Errorf("GoodDirs to (3,0) = %v, want [+x0 -x0]", got)
	}
	if m.GoodDirCount(from, m.ID([]int{3, 3})) != 4 {
		t.Errorf("GoodDirCount to (3,3) = %d, want 4", m.GoodDirCount(from, m.ID([]int{3, 3})))
	}
	// IsGoodDir consistency with distance.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a := NodeID(rng.Intn(m.Size()))
		b := NodeID(rng.Intn(m.Size()))
		for dir := Dir(0); dir < Dir(m.DirCount()); dir++ {
			nb, _ := m.Neighbor(a, dir)
			want := a != b && m.Dist(nb, b) == m.Dist(a, b)-1
			if m.IsGoodDir(a, b, dir) != want {
				t.Fatalf("IsGoodDir(%d->%d, %v) = %v, distance says %v", a, b, dir, m.IsGoodDir(a, b, dir), want)
			}
		}
	}
}

func TestTorusTwoNeighbor(t *testing.T) {
	m := MustNewTorus(2, 6)
	// 2-neighbors always exist and wrap.
	if nb, ok := m.TwoNeighbor(m.ID([]int{5, 0}), DirPlus(0)); !ok || nb != m.ID([]int{1, 0}) {
		t.Errorf("TwoNeighbor((5,0), +x0) = %d, %v", nb, ok)
	}
	// Symmetry on the even torus.
	for id := NodeID(0); int(id) < m.Size(); id++ {
		for dir := Dir(0); dir < Dir(m.DirCount()); dir++ {
			nb, ok := m.TwoNeighbor(id, dir)
			if !ok {
				t.Fatalf("torus missing 2-neighbor at %d %v", id, dir)
			}
			back, _ := m.TwoNeighbor(nb, dir.Opposite())
			if back != id {
				t.Fatalf("2-neighbor symmetry broken at %d %v", id, dir)
			}
			if m.ParityClass(nb) != m.ParityClass(id) {
				t.Fatalf("even-torus 2-neighbors cross parity classes at %d", id)
			}
		}
	}
}

// TestTorusShrinksDistances: the mean pairwise distance on the torus is
// strictly below the mesh's.
func TestTorusShrinksDistances(t *testing.T) {
	mm := MustNew(2, 8)
	mt := MustNewTorus(2, 8)
	var sumM, sumT int64
	for a := NodeID(0); int(a) < mm.Size(); a++ {
		for b := NodeID(0); int(b) < mm.Size(); b++ {
			sumM += int64(mm.Dist(a, b))
			sumT += int64(mt.Dist(a, b))
			if mt.Dist(a, b) > mm.Dist(a, b) {
				t.Fatalf("torus distance exceeds mesh distance for %d,%d", a, b)
			}
		}
	}
	if sumT >= sumM {
		t.Errorf("torus mean distance %d not below mesh %d", sumT, sumM)
	}
}
