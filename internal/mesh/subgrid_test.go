package mesh

import (
	"fmt"
	"testing"
)

// subgridCases enumerates rectangle shapes worth exercising on an 8x8 base:
// interior and corner blocks, non-square slabs, degenerate 1xk and kx1
// strips, single cells, and the whole mesh.
var subgridCases = []struct {
	name         string
	x0, y0, w, h int
}{
	{"interior", 2, 3, 3, 2},
	{"corner-origin", 0, 0, 4, 4},
	{"corner-far", 4, 4, 4, 4},
	{"non-square-wide", 0, 2, 8, 3},
	{"non-square-tall", 5, 0, 2, 8},
	{"strip-1xk", 0, 3, 8, 1},
	{"strip-kx1", 3, 0, 1, 8},
	{"single-cell-interior", 4, 5, 1, 1},
	{"single-cell-corner", 7, 7, 1, 1},
	{"whole-mesh", 0, 0, 8, 8},
}

func subgridBases(t *testing.T) []*Mesh {
	t.Helper()
	return []*Mesh{MustNew(2, 8), MustNewTorus(2, 8), MustNewTorus(2, 9)}
}

// TestSubgridMatchesBase cross-checks every Topology primitive of every
// rectangle against the base mesh for all owned nodes (and all destinations
// for the good-direction primitives on a sampled set).
func TestSubgridMatchesBase(t *testing.T) {
	for _, m := range subgridBases(t) {
		for _, tc := range subgridCases {
			if tc.x0+tc.w > m.Side() || tc.y0+tc.h > m.Side() {
				continue
			}
			t.Run(fmt.Sprintf("%s/%s", m, tc.name), func(t *testing.T) {
				g, err := m.Subgrid(tc.x0, tc.y0, tc.w, tc.h)
				if err != nil {
					t.Fatalf("Subgrid: %v", err)
				}
				if got := g.Len(); got != tc.w*tc.h {
					t.Fatalf("Len = %d, want %d", got, tc.w*tc.h)
				}
				checkSubgridAgainstBase(t, m, g)
			})
		}
	}
}

func checkSubgridAgainstBase(t *testing.T, m *Mesh, g *Subgrid) {
	t.Helper()
	x0, y0, w, h := g.Bounds()
	var bufG, bufM [2 * MaxDim]Dir
	var cbufG, cbufM [MaxDim]int
	prev := -1
	for local := 0; local < g.Len(); local++ {
		id := g.GlobalID(local)
		// Local row-major order must be monotone in global id within the
		// rectangle's rows; across a row boundary it jumps but stays
		// increasing because y dominates the id.
		if int(id) <= prev {
			t.Fatalf("GlobalID(%d) = %d not increasing (prev %d)", local, id, prev)
		}
		prev = int(id)
		if !g.Owns(id) {
			t.Fatalf("Owns(%d) = false for owned node", id)
		}
		if got := g.LocalID(id); got != local {
			t.Fatalf("LocalID(GlobalID(%d)) = %d", local, got)
		}
		cg := g.Coord(id, cbufG[:])
		cm := m.Coord(id, cbufM[:])
		if cg[0] != cm[0] || cg[1] != cm[1] {
			t.Fatalf("Coord(%d) = %v, base %v", id, cg, cm)
		}
		if cg[0] < x0 || cg[0] >= x0+w || cg[1] < y0 || cg[1] >= y0+h {
			t.Fatalf("owned node %d coord %v outside rectangle", id, cg)
		}
		if got, want := g.Degree(id), m.Degree(id); got != want {
			t.Fatalf("Degree(%d) = %d, base %d", id, got, want)
		}
		if got, want := g.DegreeLocal(local), m.Degree(id); got != want {
			t.Fatalf("DegreeLocal(%d) = %d, base %d", local, got, want)
		}
		for d := 0; d < m.DirCount(); d++ {
			dir := Dir(d)
			gTo, gOK := g.Neighbor(id, dir)
			mTo, mOK := m.Neighbor(id, dir)
			if gOK != mOK || (gOK && gTo != mTo) {
				t.Fatalf("Neighbor(%d, %v) = (%d, %v), base (%d, %v)", id, dir, gTo, gOK, mTo, mOK)
			}
			if g.HasArc(id, dir) != m.HasArc(id, dir) {
				t.Fatalf("HasArc(%d, %v) mismatch", id, dir)
			}
			lTo, lOwned, lOK := g.NeighborLocal(local, dir)
			if lOK != mOK {
				t.Fatalf("NeighborLocal(%d, %v) ok = %v, base %v", local, dir, lOK, mOK)
			}
			if lOK {
				if lTo != mTo {
					t.Fatalf("NeighborLocal(%d, %v) = %d, base %d", local, dir, lTo, mTo)
				}
				if lOwned != g.Owns(mTo) {
					t.Fatalf("NeighborLocal(%d, %v) owned = %v, Owns(%d) = %v",
						local, dir, lOwned, mTo, g.Owns(mTo))
				}
			}
			g2, g2OK := g.TwoNeighbor(id, dir)
			m2, m2OK := m.TwoNeighbor(id, dir)
			if g2OK != m2OK || (g2OK && g2 != m2) {
				t.Fatalf("TwoNeighbor(%d, %v) mismatch", id, dir)
			}
		}
		// Good-direction primitives against a sampled destination set:
		// corners, centre, and a diagonal sweep (covers the torus
		// exactly-opposite tie for even sides).
		side := m.Side()
		for _, dst := range []NodeID{
			0,
			NodeID(side - 1),
			NodeID((side - 1) * side),
			NodeID(side*side - 1),
			NodeID((side/2)*side + side/2),
			id,
			m.step(m.step(id, DirPlus(0), side/2), DirPlus(1), side/2),
		} {
			if !m.Wrap() && dst == m.step(m.step(id, DirPlus(0), side/2), DirPlus(1), side/2) {
				continue // step() wraps; only meaningful on the torus
			}
			ng := g.GoodDirsInto(id, dst, &bufG)
			nm := m.Tables().GoodDirsInto(id, dst, &bufM)
			if ng != nm {
				t.Fatalf("GoodDirsInto(%d, %d) count = %d, tables %d", id, dst, ng, nm)
			}
			for i := 0; i < ng; i++ {
				if bufG[i] != bufM[i] {
					t.Fatalf("GoodDirsInto(%d, %d)[%d] = %v, tables %v", id, dst, i, bufG[i], bufM[i])
				}
			}
			if gd := g.GoodDirs(id, dst, nil); len(gd) != ng {
				t.Fatalf("GoodDirs(%d, %d) len = %d, want %d", id, dst, len(gd), ng)
			}
			if got, want := g.GoodDirCount(id, dst), m.GoodDirCount(id, dst); got != want {
				t.Fatalf("GoodDirCount(%d, %d) = %d, base %d", id, dst, got, want)
			}
			for d := 0; d < m.DirCount(); d++ {
				if g.IsGoodDir(id, dst, Dir(d)) != m.IsGoodDir(id, dst, Dir(d)) {
					t.Fatalf("IsGoodDir(%d, %d, %v) mismatch", id, dst, Dir(d))
				}
			}
			if got, want := g.Dist(id, dst), m.Dist(id, dst); got != want {
				t.Fatalf("Dist(%d, %d) = %d, base %d", id, dst, got, want)
			}
		}
		if got, want := g.SnakeRank(id), m.SnakeRank(id); got != want {
			t.Fatalf("SnakeRank(%d) = %d, base %d", id, got, want)
		}
		if got, want := g.ParityClass(id), m.ParityClass(id); got != want {
			t.Fatalf("ParityClass(%d) = %d, base %d", id, got, want)
		}
	}
	// Geometry accessors are those of the base mesh, never the rectangle.
	if g.Dim() != 2 || g.Side() != m.Side() || g.Size() != m.Size() ||
		g.Wrap() != m.Wrap() || g.DirCount() != m.DirCount() || g.Diameter() != m.Diameter() {
		t.Fatalf("geometry accessors diverge from base: %v vs %v", g, m)
	}
}

// TestSubgridBoundaryEdges pins the halo semantics down explicitly: on a
// torus every rectangle-boundary arc wraps to the node on the far side of
// the *mesh* (not the far side of the rectangle), while on a mesh arcs at
// the true network edge are clipped (-1 / !ok) and arcs at an interior
// rectangle boundary lead into halo territory owned by a neighboring shard.
func TestSubgridBoundaryEdges(t *testing.T) {
	t.Run("torus-wraps", func(t *testing.T) {
		m := MustNewTorus(2, 8)
		// Left column of the mesh: the "-x" neighbor wraps to x=7.
		g, err := m.Subgrid(0, 2, 3, 3)
		if err != nil {
			t.Fatal(err)
		}
		from := m.ID([]int{0, 3})
		to, owned, ok := g.NeighborLocal(g.LocalID(from), DirMinus(0))
		if !ok {
			t.Fatalf("torus boundary arc missing")
		}
		if want := m.ID([]int{7, 3}); to != want {
			t.Fatalf("wrap neighbor = %d, want %d", to, want)
		}
		if owned {
			t.Fatalf("wrapped neighbor reported as owned")
		}
	})
	t.Run("torus-wrap-into-self", func(t *testing.T) {
		// A full-width strip on a torus wraps into itself: the halo node is
		// owned by the same rectangle. The engine treats that as an internal
		// move, not a halo crossing.
		m := MustNewTorus(2, 8)
		g, err := m.Subgrid(0, 3, 8, 1)
		if err != nil {
			t.Fatal(err)
		}
		from := m.ID([]int{0, 3})
		to, owned, ok := g.NeighborLocal(g.LocalID(from), DirMinus(0))
		if !ok || to != m.ID([]int{7, 3}) {
			t.Fatalf("self-wrap neighbor = %d, ok %v", to, ok)
		}
		if !owned {
			t.Fatalf("self-wrap neighbor must be owned")
		}
	})
	t.Run("mesh-clips", func(t *testing.T) {
		m := MustNew(2, 8)
		// Rectangle touching the true mesh edge: edge arcs are clipped.
		g, err := m.Subgrid(0, 0, 3, 3)
		if err != nil {
			t.Fatal(err)
		}
		origin := m.ID([]int{0, 0})
		if _, _, ok := g.NeighborLocal(g.LocalID(origin), DirMinus(0)); ok {
			t.Fatalf("mesh edge arc -x not clipped")
		}
		if _, _, ok := g.NeighborLocal(g.LocalID(origin), DirMinus(1)); ok {
			t.Fatalf("mesh edge arc -y not clipped")
		}
		// Interior rectangle boundary: the arc exists and leads into the halo.
		from := m.ID([]int{2, 1})
		to, owned, ok := g.NeighborLocal(g.LocalID(from), DirPlus(0))
		if !ok || to != m.ID([]int{3, 1}) {
			t.Fatalf("interior boundary arc = %d, ok %v", to, ok)
		}
		if owned {
			t.Fatalf("halo neighbor reported as owned")
		}
	})
}

func TestSubgridErrors(t *testing.T) {
	m2 := MustNew(2, 8)
	for _, tc := range []struct{ x0, y0, w, h int }{
		{-1, 0, 2, 2}, {0, -1, 2, 2}, {0, 0, 0, 2}, {0, 0, 2, 0},
		{7, 0, 2, 2}, {0, 7, 2, 2}, {0, 0, 9, 1}, {0, 0, 1, 9},
	} {
		if _, err := m2.Subgrid(tc.x0, tc.y0, tc.w, tc.h); err == nil {
			t.Errorf("Subgrid(%d, %d, %d, %d): want error", tc.x0, tc.y0, tc.w, tc.h)
		}
	}
	m3 := MustNew(3, 4)
	if _, err := m3.Subgrid(0, 0, 2, 2); err == nil {
		t.Errorf("Subgrid on 3-dimensional mesh: want error")
	}
}

// TestSubgridStringer keeps the rendered form stable (it appears in shard
// error messages and logs).
func TestSubgridStringer(t *testing.T) {
	m := MustNew(2, 8)
	g, err := m.Subgrid(2, 0, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := g.String(), "mesh(d=2, n=8)[2,5)x[0,4)"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
