package mesh

import "testing"

// TestOverlayPassthrough: a fault-free overlay is indistinguishable from
// its base mesh through the Topology interface.
func TestOverlayPassthrough(t *testing.T) {
	for _, base := range []*Mesh{MustNew(2, 4), MustNewTorus(2, 5), MustNew(3, 3)} {
		o := NewOverlay(base)
		if o.Base() != base {
			t.Fatalf("%v: Base() mismatch", base)
		}
		for id := NodeID(0); int(id) < base.Size(); id++ {
			if got, want := o.Degree(id), base.Degree(id); got != want {
				t.Errorf("%v node %d: Degree = %d, want %d", base, id, got, want)
			}
			for d := 0; d < base.DirCount(); d++ {
				dir := Dir(d)
				if got, want := o.HasArc(id, dir), base.HasArc(id, dir); got != want {
					t.Errorf("%v node %d dir %v: HasArc = %v, want %v", base, id, dir, got, want)
				}
				gn, gok := o.Neighbor(id, dir)
				wn, wok := base.Neighbor(id, dir)
				if gn != wn || gok != wok {
					t.Errorf("%v node %d dir %v: Neighbor = (%d,%v), want (%d,%v)", base, id, dir, gn, gok, wn, wok)
				}
			}
			dst := NodeID(base.Size() - 1 - int(id))
			var b1, b2 [2 * MaxDim]Dir
			got := o.GoodDirs(id, dst, b1[:0])
			want := base.GoodDirs(id, dst, b2[:0])
			if len(got) != len(want) {
				t.Errorf("%v %d->%d: GoodDirs = %v, want %v", base, id, dst, got, want)
			}
			if o.GoodDirCount(id, dst) != base.GoodDirCount(id, dst) {
				t.Errorf("%v %d->%d: GoodDirCount mismatch", base, id, dst)
			}
		}
		if o.Version() != 0 || o.DownLinks() != 0 || o.DownNodes() != 0 {
			t.Errorf("%v: fresh overlay not clean: version=%d links=%d nodes=%d",
				base, o.Version(), o.DownLinks(), o.DownNodes())
		}
		if o.String() != base.String() {
			t.Errorf("%v: String = %q", base, o.String())
		}
	}
}

func TestOverlayLinkFailure(t *testing.T) {
	m := MustNew(2, 4)
	o := NewOverlay(m)
	from := m.ID([]int{1, 1})
	to := m.ID([]int{2, 1})
	dir := DirPlus(0)

	if !o.FailLink(from, dir) {
		t.Fatal("FailLink returned false for a live link")
	}
	if o.FailLink(from, dir) {
		t.Error("FailLink on an already-cut link reported a change")
	}
	if o.HasArc(from, dir) {
		t.Error("cut arc still present")
	}
	if o.HasArc(to, dir.Opposite()) {
		t.Error("reverse arc of a cut link still present: link failures must be bidirectional")
	}
	if got, want := o.Degree(from), m.Degree(from)-1; got != want {
		t.Errorf("Degree(from) = %d, want %d", got, want)
	}
	if got, want := o.Degree(to), m.Degree(to)-1; got != want {
		t.Errorf("Degree(to) = %d, want %d", got, want)
	}
	// The cut arc must disappear from good directions on both sides.
	if o.IsGoodDir(from, to, dir) {
		t.Error("IsGoodDir true through a cut link")
	}
	var buf [2 * MaxDim]Dir
	for _, g := range o.GoodDirs(from, m.ID([]int{3, 1}), buf[:0]) {
		if g == dir {
			t.Error("GoodDirs still lists the cut arc")
		}
	}
	if o.DownLinks() != 1 || o.LinkFailures() != 1 {
		t.Errorf("DownLinks=%d LinkFailures=%d, want 1, 1", o.DownLinks(), o.LinkFailures())
	}

	v := o.Version()
	if !o.RestoreLink(to, dir.Opposite()) { // restore via the other endpoint
		t.Fatal("RestoreLink returned false")
	}
	if o.RestoreLink(from, dir) {
		t.Error("RestoreLink on a healthy link reported a change")
	}
	if !o.HasArc(from, dir) || !o.HasArc(to, dir.Opposite()) {
		t.Error("restored link not usable in both directions")
	}
	if o.Version() == v {
		t.Error("Version did not change on restore")
	}
	if o.DownLinks() != 0 || o.LinkFailures() != 1 {
		t.Errorf("after restore: DownLinks=%d LinkFailures=%d, want 0, 1", o.DownLinks(), o.LinkFailures())
	}

	// Failing a nonexistent boundary arc is a no-op.
	if o.FailLink(m.ID([]int{0, 0}), DirMinus(0)) {
		t.Error("FailLink off the mesh edge reported a change")
	}
}

func TestOverlayNodeFailure(t *testing.T) {
	m := MustNew(2, 4)
	o := NewOverlay(m)
	down := m.ID([]int{2, 2})
	left := m.ID([]int{1, 2})

	if !o.FailNode(down) {
		t.Fatal("FailNode returned false")
	}
	if o.FailNode(down) {
		t.Error("double FailNode reported a change")
	}
	if !o.NodeDown(down) || o.DownNodes() != 1 || o.NodeFailures() != 1 {
		t.Error("node-down state wrong")
	}
	if o.Degree(down) != 0 {
		t.Errorf("Degree(down) = %d, want 0", o.Degree(down))
	}
	for d := 0; d < m.DirCount(); d++ {
		if o.HasArc(down, Dir(d)) {
			t.Errorf("outgoing arc %v of a failed node still present", Dir(d))
		}
	}
	// Neighbors lose the arc into the failed node.
	if o.HasArc(left, DirPlus(0)) {
		t.Error("arc into a failed node still present")
	}
	if got, want := o.Degree(left), m.Degree(left)-1; got != want {
		t.Errorf("Degree(neighbor) = %d, want %d", got, want)
	}
	// A good direction leading into the failed node disappears.
	if o.IsGoodDir(left, down, DirPlus(0)) {
		t.Error("IsGoodDir true into a failed node")
	}
	if o.GoodDirCount(left, down) != 0 {
		t.Errorf("GoodDirCount into a failed node = %d, want 0", o.GoodDirCount(left, down))
	}

	if !o.RestoreNode(down) {
		t.Fatal("RestoreNode returned false")
	}
	if o.RestoreNode(down) {
		t.Error("RestoreNode on a live node reported a change")
	}
	if got, want := o.Degree(down), m.Degree(down); got != want {
		t.Errorf("restored Degree = %d, want %d", got, want)
	}
}

// TestOverlayTwoNeighbor: two-hop reachability respects failed middle
// links and nodes.
func TestOverlayTwoNeighbor(t *testing.T) {
	m := MustNew(1, 5)
	o := NewOverlay(m)
	if to, ok := o.TwoNeighbor(0, DirPlus(0)); !ok || to != 2 {
		t.Fatalf("TwoNeighbor intact = (%d,%v), want (2,true)", to, ok)
	}
	o.FailLink(1, DirPlus(0))
	if _, ok := o.TwoNeighbor(0, DirPlus(0)); ok {
		t.Error("TwoNeighbor crosses a cut second link")
	}
	o.RestoreLink(1, DirPlus(0))
	o.FailNode(1)
	if _, ok := o.TwoNeighbor(0, DirPlus(0)); ok {
		t.Error("TwoNeighbor crosses a failed middle node")
	}
}

func TestOverlayReset(t *testing.T) {
	m := MustNew(2, 4)
	o := NewOverlay(m)
	o.FailLink(0, DirPlus(0))
	o.FailNode(5)
	o.Reset()
	if o.DownLinks() != 0 || o.DownNodes() != 0 {
		t.Errorf("Reset left DownLinks=%d DownNodes=%d", o.DownLinks(), o.DownNodes())
	}
	if o.LinkFailures() != 1 || o.NodeFailures() != 1 {
		t.Error("Reset must keep cumulative failure counts")
	}
	for id := NodeID(0); int(id) < m.Size(); id++ {
		if o.Degree(id) != m.Degree(id) {
			t.Fatalf("node %d degree %d after Reset, want %d", id, o.Degree(id), m.Degree(id))
		}
	}
}

// TestOverlayRestoreNodeKeepsCutLinks: RestoreNode does not resurrect
// links that were explicitly cut.
func TestOverlayRestoreNodeKeepsCutLinks(t *testing.T) {
	m := MustNew(2, 4)
	o := NewOverlay(m)
	n := m.ID([]int{1, 1})
	o.FailLink(n, DirPlus(0))
	o.FailNode(n)
	o.RestoreNode(n)
	if o.HasArc(n, DirPlus(0)) {
		t.Error("explicitly cut link came back with the node")
	}
	if !o.HasArc(n, DirPlus(1)) {
		t.Error("untouched link missing after node restore")
	}
}
