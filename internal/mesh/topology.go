package mesh

// Topology is the read-only network view the simulator and its policies
// route against. *Mesh is the intact network; *Overlay is a mesh with a
// (possibly time-varying) set of failed links and nodes. Everything above
// this package — the engine, the policies, the analysis harness — routes
// against a Topology, so the static-topology assumption lives behind a
// single interface instead of being baked into every layer.
//
// The split between geometry and connectivity is deliberate: Dist,
// GoodDirs, IsGoodDir and friends describe which moves make *progress*,
// while HasArc, Neighbor and Degree describe which moves are *possible*.
// On an Overlay the connectivity methods reflect the current failure set
// (a good direction whose link is down is not reported as good — a local
// router can see its own dead links), but Dist stays the geometric metric:
// deflection routers have no global failure map, so "closer to the
// destination" keeps its paper meaning even when the shortest surviving
// path is longer.
type Topology interface {
	// Geometry (identical on every view of the same base mesh).
	Dim() int
	Side() int
	Size() int
	Wrap() bool
	DirCount() int
	Diameter() int
	Contains(id NodeID) bool
	CheckID(id NodeID) error
	Coord(id NodeID, buf []int) []int
	CoordAxis(id NodeID, axis int) int
	ID(coord []int) NodeID
	Dist(a, b NodeID) int
	ParityClass(id NodeID) int
	SnakeRank(id NodeID) int
	String() string

	// Connectivity (filtered by the failure set on an Overlay).
	HasArc(from NodeID, dir Dir) bool
	Neighbor(from NodeID, dir Dir) (NodeID, bool)
	TwoNeighbor(from NodeID, dir Dir) (NodeID, bool)
	Degree(id NodeID) int
	GoodDirs(from, dst NodeID, buf []Dir) []Dir
	GoodDirCount(from, dst NodeID) int
	IsGoodDir(from, dst NodeID, dir Dir) bool
}

var (
	_ Topology = (*Mesh)(nil)
	_ Topology = (*Overlay)(nil)
)
