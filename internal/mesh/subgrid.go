package mesh

import "fmt"

// Subgrid is the flat-table view of one rectangular slice of a 2-dimensional
// mesh or torus: the spatial-decomposition unit of the sharded engine. It
// owns the nodes with x in [X0, X0+W) and y in [Y0, Y0+H) and precomputes,
// per owned node, the same hot tables mesh.Tables keeps globally — neighbor
// ids, degrees, cached coordinates — sized to the rectangle instead of the
// whole mesh, so P shards together cost what one global table does.
//
// The neighbor table is a ghost-boundary view: entries hold *global* node
// ids, so a boundary node's neighbor lands outside the rectangle (in a halo
// cell another shard owns) rather than being clipped to it. On a torus the
// halo wraps — the neighbor of an edge node is the node on the far side of
// the mesh — while on a mesh the boundary arcs that leave the network are
// absent (-1), exactly as on the base topology.
//
// Subgrid implements Topology with global semantics throughout: node ids,
// coordinates, distances, good directions and snake ranks are those of the
// base mesh, never rectangle-relative. A policy routing against a Subgrid
// therefore sees precisely what it would see on the whole mesh, which is
// what makes sharded runs bit-identical to single-shard ones. Owned nodes
// are served from the local tables; other nodes (a packet's destination,
// typically) fall back to the base mesh's arithmetic.
//
// Subgrids are immutable once built and safe for concurrent use.
type Subgrid struct {
	base *Mesh
	// Owned rectangle, in global coordinates.
	x0, y0, w, h int

	side     int32
	wrap     bool
	dirCount int

	// neighbor[local*dirCount+dir] is the global id of the node reached
	// along dir, or -1 when the arc leaves the mesh (never on a torus).
	neighbor []NodeID
	// degree[local] is the out-degree of the owned node.
	degree []int8
	// coord[local*2+axis] is the cached global coordinate of the owned node.
	coord []int32
}

// Subgrid returns the flat-table view of the rectangle with origin (x0, y0)
// and extent w x h on a 2-dimensional mesh or torus. The rectangle must lie
// entirely inside the mesh; degenerate 1 x k and k x 1 strips are valid.
func (m *Mesh) Subgrid(x0, y0, w, h int) (*Subgrid, error) {
	if m.dim != 2 {
		return nil, fmt.Errorf("mesh: subgrid needs a 2-dimensional mesh, have dim %d", m.dim)
	}
	if w < 1 || h < 1 {
		return nil, fmt.Errorf("mesh: subgrid extent %dx%d out of range (need >= 1x1)", w, h)
	}
	if x0 < 0 || y0 < 0 || x0+w > m.side || y0+h > m.side {
		return nil, fmt.Errorf("mesh: subgrid [%d,%d)x[%d,%d) leaves the %dx%d mesh",
			x0, x0+w, y0, y0+h, m.side, m.side)
	}
	g := &Subgrid{
		base:     m,
		x0:       x0,
		y0:       y0,
		w:        w,
		h:        h,
		side:     int32(m.side),
		wrap:     m.wrap,
		dirCount: m.DirCount(),
		neighbor: make([]NodeID, w*h*m.DirCount()),
		degree:   make([]int8, w*h),
		coord:    make([]int32, w*h*2),
	}
	for local := 0; local < w*h; local++ {
		x := x0 + local%w
		y := y0 + local/w
		node := NodeID(y*m.side + x)
		g.coord[local*2] = int32(x)
		g.coord[local*2+1] = int32(y)
		g.degree[local] = int8(m.Degree(node))
		for d := 0; d < g.dirCount; d++ {
			if to, ok := m.Neighbor(node, Dir(d)); ok {
				g.neighbor[local*g.dirCount+d] = to
			} else {
				g.neighbor[local*g.dirCount+d] = -1
			}
		}
	}
	return g, nil
}

// Base returns the mesh the subgrid was sliced from.
func (g *Subgrid) Base() *Mesh { return g.base }

// Bounds returns the owned rectangle: origin (x0, y0) and extent w x h in
// global coordinates.
func (g *Subgrid) Bounds() (x0, y0, w, h int) { return g.x0, g.y0, g.w, g.h }

// Len returns the number of owned nodes, w*h.
func (g *Subgrid) Len() int { return g.w * g.h }

// Owns reports whether the global node id lies inside the owned rectangle.
func (g *Subgrid) Owns(id NodeID) bool {
	x := int(id) % g.base.side
	y := int(id) / g.base.side
	return x >= g.x0 && x < g.x0+g.w && y >= g.y0 && y < g.y0+g.h
}

// LocalID returns the rectangle-local index of an owned global node:
// row-major within the rectangle, so local order and global id order agree
// on the owned set. The caller must ensure Owns(id).
func (g *Subgrid) LocalID(id NodeID) int {
	x := int(id) % g.base.side
	y := int(id) / g.base.side
	return (y-g.y0)*g.w + (x - g.x0)
}

// GlobalID returns the global node id of a rectangle-local index.
func (g *Subgrid) GlobalID(local int) NodeID {
	return NodeID((g.y0+local/g.w)*g.base.side + g.x0 + local%g.w)
}

// Geometry: global semantics, delegated to the base mesh where no local
// table applies.

func (g *Subgrid) Dim() int                  { return 2 }
func (g *Subgrid) Side() int                 { return g.base.side }
func (g *Subgrid) Size() int                 { return g.base.size }
func (g *Subgrid) Wrap() bool                { return g.wrap }
func (g *Subgrid) DirCount() int             { return g.dirCount }
func (g *Subgrid) Diameter() int             { return g.base.Diameter() }
func (g *Subgrid) Contains(id NodeID) bool   { return g.base.Contains(id) }
func (g *Subgrid) CheckID(id NodeID) error   { return g.base.CheckID(id) }
func (g *Subgrid) ID(coord []int) NodeID     { return g.base.ID(coord) }
func (g *Subgrid) ParityClass(id NodeID) int { return g.base.ParityClass(id) }
func (g *Subgrid) SnakeRank(id NodeID) int   { return g.base.SnakeRank(id) }

// String renders the view as e.g. "mesh(d=2, n=64)[8,16)x[0,8)".
func (g *Subgrid) String() string {
	return fmt.Sprintf("%s[%d,%d)x[%d,%d)", g.base, g.x0, g.x0+g.w, g.y0, g.y0+g.h)
}

// Coord writes the global coordinates of id into buf and returns buf[:2].
func (g *Subgrid) Coord(id NodeID, buf []int) []int {
	if buf == nil {
		buf = make([]int, 2)
	}
	if g.Owns(id) {
		l := g.LocalID(id)
		buf[0] = int(g.coord[l*2])
		buf[1] = int(g.coord[l*2+1])
		return buf[:2]
	}
	return g.base.Coord(id, buf)
}

// CoordAxis returns the global coordinate of id along the given axis.
func (g *Subgrid) CoordAxis(id NodeID, axis int) int { return g.base.CoordAxis(id, axis) }

// Dist returns the global distance between two nodes (L1 on the mesh,
// per-axis wraparound minimum on the torus).
func (g *Subgrid) Dist(a, b NodeID) int { return g.base.Dist(a, b) }

// HasArc reports whether the arc leaving `from` along dir exists on the base
// mesh — including arcs that cross the rectangle boundary into territory
// another shard owns.
func (g *Subgrid) HasArc(from NodeID, dir Dir) bool {
	if g.Owns(from) {
		return g.neighbor[g.LocalID(from)*g.dirCount+int(dir)] >= 0
	}
	return g.base.HasArc(from, dir)
}

// Neighbor returns the global node reached from `from` along dir; false if
// the arc leaves the mesh. Boundary arcs report the halo node on the other
// side (wrapping on a torus), never a clipped id.
func (g *Subgrid) Neighbor(from NodeID, dir Dir) (NodeID, bool) {
	if g.Owns(from) {
		to := g.neighbor[g.LocalID(from)*g.dirCount+int(dir)]
		if to < 0 {
			return from, false
		}
		return to, true
	}
	return g.base.Neighbor(from, dir)
}

// NeighborLocal returns, for an owned local index, the global neighbor id
// along dir (or -1 off the mesh) and whether that neighbor is itself owned.
// This is the sharded engine's boundary-egress primitive: !owned flags a
// halo crossing.
func (g *Subgrid) NeighborLocal(local int, dir Dir) (to NodeID, owned, ok bool) {
	to = g.neighbor[local*g.dirCount+int(dir)]
	if to < 0 {
		return -1, false, false
	}
	return to, g.Owns(to), true
}

// TwoNeighbor returns the 2-neighbor of `from` in direction dir.
func (g *Subgrid) TwoNeighbor(from NodeID, dir Dir) (NodeID, bool) {
	return g.base.TwoNeighbor(from, dir)
}

// Degree returns the out-degree of the node on the base mesh.
func (g *Subgrid) Degree(id NodeID) int {
	if g.Owns(id) {
		return int(g.degree[g.LocalID(id)])
	}
	return g.base.Degree(id)
}

// DegreeLocal returns the out-degree of an owned local index.
func (g *Subgrid) DegreeLocal(local int) int { return int(g.degree[local]) }

// GoodDirs appends the good directions (Definition 5) for a packet at
// `from` destined to dst, in the same order Mesh.GoodDirs produces them.
func (g *Subgrid) GoodDirs(from, dst NodeID, buf []Dir) []Dir {
	var tmp [2 * MaxDim]Dir
	n := g.GoodDirsInto(from, dst, &tmp)
	return append(buf, tmp[:n]...)
}

// GoodDirsInto writes the good directions for a packet at `from` destined to
// dst into buf and returns the count, in the same order and with the same
// torus tie handling as Tables.GoodDirsInto. `from` is served from the local
// coordinate cache when owned; dst is decomposed arithmetically (it is
// usually far outside the rectangle).
func (g *Subgrid) GoodDirsInto(from, dst NodeID, buf *[2 * MaxDim]Dir) int {
	var fx, fy int32
	if g.Owns(from) {
		l := g.LocalID(from)
		fx, fy = g.coord[l*2], g.coord[l*2+1]
	} else {
		fx = int32(int(from) % g.base.side)
		fy = int32(int(from) / g.base.side)
	}
	dx := int32(int(dst) % g.base.side)
	dy := int32(int(dst) / g.base.side)
	n := 0
	if !g.wrap {
		if fx != dx {
			if fx < dx {
				buf[n] = Dir(0)
			} else {
				buf[n] = Dir(1)
			}
			n++
		}
		if fy != dy {
			if fy < dy {
				buf[n] = Dir(2)
			} else {
				buf[n] = Dir(3)
			}
			n++
		}
		return n
	}
	for a, pair := range [2][2]int32{{fx, dx}, {fy, dy}} {
		fwd := pair[1] - pair[0]
		if fwd == 0 {
			continue
		}
		if fwd < 0 {
			fwd += g.side
		}
		switch {
		case 2*fwd < g.side:
			buf[n] = Dir(2 * a)
			n++
		case 2*fwd > g.side:
			buf[n] = Dir(2*a + 1)
			n++
		default: // exactly opposite on the ring: both ways are shortest
			buf[n] = Dir(2 * a)
			buf[n+1] = Dir(2*a + 1)
			n += 2
		}
	}
	return n
}

// GoodDirCount returns the number of good directions for a packet at `from`
// destined to dst.
func (g *Subgrid) GoodDirCount(from, dst NodeID) int {
	var buf [2 * MaxDim]Dir
	return g.GoodDirsInto(from, dst, &buf)
}

// IsGoodDir reports whether dir is a good direction for a packet at `from`
// destined to dst.
func (g *Subgrid) IsGoodDir(from, dst NodeID, dir Dir) bool {
	return g.base.IsGoodDir(from, dst, dir)
}

var _ Topology = (*Subgrid)(nil)
