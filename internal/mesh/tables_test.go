package mesh

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"
)

// checkTablesAgainstMesh exhaustively compares every table-served primitive
// against the arithmetic implementation on the base mesh.
func checkTablesAgainstMesh(t *testing.T, m *Mesh) {
	t.Helper()
	tab := m.Tables()
	if tab != m.Tables() {
		t.Fatal("Tables not cached")
	}
	var bufA, bufB [2 * MaxDim]Dir
	var cbufA, cbufB [MaxDim]int
	rng := rand.New(rand.NewSource(int64(m.size)))
	for id := 0; id < m.Size(); id++ {
		from := NodeID(id)
		if got, want := tab.Degree(from), m.Degree(from); got != want {
			t.Fatalf("%v: Degree(%d) = %d, want %d", m, from, got, want)
		}
		if got, want := tab.ParityClass(from), m.ParityClass(from); got != want {
			t.Fatalf("%v: ParityClass(%d) = %d, want %d", m, from, got, want)
		}
		if !slices.Equal(tab.Coord(from, cbufA[:]), m.Coord(from, cbufB[:])) {
			t.Fatalf("%v: Coord(%d) mismatch", m, from)
		}
		for a := 0; a < m.Dim(); a++ {
			if got, want := tab.CoordAxis(from, a), m.CoordAxis(from, a); got != want {
				t.Fatalf("%v: CoordAxis(%d, %d) = %d, want %d", m, from, a, got, want)
			}
		}
		for d := 0; d < m.DirCount(); d++ {
			dir := Dir(d)
			if got, want := tab.HasArc(from, dir), m.HasArc(from, dir); got != want {
				t.Fatalf("%v: HasArc(%d, %v) = %v, want %v", m, from, dir, got, want)
			}
			gn, gok := tab.Neighbor(from, dir)
			wn, wok := m.Neighbor(from, dir)
			if gn != wn || gok != wok {
				t.Fatalf("%v: Neighbor(%d, %v) = (%d, %v), want (%d, %v)", m, from, dir, gn, gok, wn, wok)
			}
			gn, gok = tab.TwoNeighbor(from, dir)
			wn, wok = m.TwoNeighbor(from, dir)
			if gn != wn || gok != wok {
				t.Fatalf("%v: TwoNeighbor(%d, %v) = (%d, %v), want (%d, %v)", m, from, dir, gn, gok, wn, wok)
			}
		}
		// Good-direction primitives against a sample of destinations (all of
		// them on small meshes).
		dsts := m.Size()
		for s := 0; s < 32 && s < dsts; s++ {
			dst := NodeID(s)
			if dsts > 32 {
				dst = NodeID(rng.Intn(dsts))
			}
			if got, want := tab.Dist(from, dst), m.Dist(from, dst); got != want {
				t.Fatalf("%v: Dist(%d, %d) = %d, want %d", m, from, dst, got, want)
			}
			got := tab.GoodDirs(from, dst, bufA[:0])
			want := m.GoodDirs(from, dst, bufB[:0])
			if !slices.Equal(got, want) {
				t.Fatalf("%v: GoodDirs(%d, %d) = %v, want %v", m, from, dst, got, want)
			}
			if g, w := tab.GoodDirCount(from, dst), m.GoodDirCount(from, dst); g != w {
				t.Fatalf("%v: GoodDirCount(%d, %d) = %d, want %d", m, from, dst, g, w)
			}
			for d := 0; d < m.DirCount(); d++ {
				if g, w := tab.IsGoodDir(from, dst, Dir(d)), m.IsGoodDir(from, dst, Dir(d)); g != w {
					t.Fatalf("%v: IsGoodDir(%d, %d, %v) = %v, want %v", m, from, dst, Dir(d), g, w)
				}
			}
		}
	}
}

// TestTablesMatchMeshPrimitives cross-checks the flat tables against the
// arithmetic mesh primitives on a spread of meshes and tori, including the
// even-side torus whose half-way axis offers both directions.
func TestTablesMatchMeshPrimitives(t *testing.T) {
	cases := []*Mesh{
		MustNew(1, 2), MustNew(1, 7),
		MustNew(2, 2), MustNew(2, 5), MustNew(2, 8),
		MustNew(3, 3), MustNew(3, 4),
		MustNew(4, 3),
		MustNewTorus(1, 3), MustNewTorus(1, 6),
		MustNewTorus(2, 3), MustNewTorus(2, 4), MustNewTorus(2, 7),
		MustNewTorus(3, 4), MustNewTorus(3, 5),
	}
	for _, m := range cases {
		checkTablesAgainstMesh(t, m)
	}
}

// TestTablesFuzz drives randomized (dim, side, wrap) shapes through the
// same exhaustive cross-check.
func TestTablesFuzz(t *testing.T) {
	f := func(rawDim, rawSide uint8, wrap bool) bool {
		dim := int(rawDim)%3 + 1
		side := int(rawSide)%6 + 3
		var m *Mesh
		var err error
		if wrap {
			m, err = NewTorus(dim, side)
		} else {
			m, err = New(dim, side)
		}
		if err != nil {
			return false
		}
		checkTablesAgainstMesh(t, m)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
