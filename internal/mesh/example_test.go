package mesh_test

import (
	"fmt"

	"hotpotato/internal/mesh"
)

// The paper's example below Definition 5: a packet in the five-dimensional
// mesh at (1,3,2,6,1) destined to (4,3,8,2,1) has good directions "+" in
// the first coordinate, "+" in the third and "-" in the fourth.
func ExampleMesh_GoodDirs() {
	m := mesh.MustNew(5, 9)
	from := m.ID([]int{1, 3, 2, 6, 1})
	dst := m.ID([]int{4, 3, 8, 2, 1})
	fmt.Println(m.GoodDirs(from, dst, nil))
	fmt.Println(m.Dist(from, dst))
	// Output:
	// [+x0 +x2 -x3]
	// 13
}

func ExampleMesh_TwoNeighbor() {
	m := mesh.MustNew(2, 5)
	a := m.ID([]int{2, 1})
	nb, ok := m.TwoNeighbor(a, mesh.DirMinus(0))
	fmt.Println(m.Coord(nb, nil), ok)
	// Output:
	// [0 1] true
}

func ExampleNewTorus() {
	m := mesh.MustNewTorus(2, 6)
	fmt.Println(m)
	fmt.Println(m.Dist(m.ID([]int{0, 0}), m.ID([]int{5, 0})))
	// Output:
	// torus(d=2, n=6)
	// 1
}
