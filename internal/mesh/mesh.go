// Package mesh implements the d-dimensional mesh-connected network of the
// paper (Definition 1): n^d nodes identified with the d-dimensional vectors
// over {0, ..., n-1}, with a bidirectional link between nodes at L1 distance
// one. It provides the topological primitives the rest of the system is
// built on: coordinate/id conversion, directions, neighbors, the L1 distance
// metric, good directions for a packet (Definition 5), 2-neighbors
// (Definition 4) and the parity equivalence classes induced by the
// transitive closure of the 2-neighbor relation.
//
// Coordinates in the paper run over {1, ..., n}; we use {0, ..., n-1}
// throughout, which changes nothing topologically.
package mesh

import (
	"errors"
	"fmt"
	"sync"
)

// NodeID is the linear index of a node: for coordinates (c_0, ..., c_{d-1}),
// the id is sum_a c_a * n^a.
type NodeID int32

// MaxDim is the largest supported mesh dimension. Five dimensions at any
// useful side length already exceed laptop-scale simulation sizes, and a
// fixed small bound lets hot paths use stack arrays.
const MaxDim = 8

// Mesh is an immutable description of a d-dimensional n^d mesh. The zero
// value is not usable; construct with New.
type Mesh struct {
	dim     int
	side    int
	size    int
	wrap    bool
	strides [MaxDim]int

	// Lazily built flat-array view (see Tables). Guarded by tablesOnce so
	// concurrent engines sharing one mesh build it exactly once.
	tablesOnce sync.Once
	tables     *Tables
}

// New returns the d-dimensional mesh with side length n.
func New(dim, side int) (*Mesh, error) {
	return build(dim, side, false)
}

// NewTorus returns the d-dimensional torus with side length n: the mesh
// plus wraparound arcs on every axis. The torus is the network of several
// related results the paper discusses ([FR], [BRST], [KKR]); the package's
// distance, good-direction, 2-neighbor and degree primitives all account
// for the wraparound. The side must be at least 3 (side 2 would create
// parallel double arcs between the same node pair).
func NewTorus(dim, side int) (*Mesh, error) {
	if side < 3 {
		return nil, fmt.Errorf("mesh: torus side %d out of range (need >= 3)", side)
	}
	return build(dim, side, true)
}

func build(dim, side int, wrap bool) (*Mesh, error) {
	if dim < 1 || dim > MaxDim {
		return nil, fmt.Errorf("mesh: dimension %d out of range [1, %d]", dim, MaxDim)
	}
	if side < 2 {
		return nil, fmt.Errorf("mesh: side %d out of range (need >= 2)", side)
	}
	size := 1
	m := &Mesh{dim: dim, side: side, wrap: wrap}
	for a := 0; a < dim; a++ {
		m.strides[a] = size
		if size > (1<<31-1)/side {
			return nil, fmt.Errorf("mesh: %d^%d nodes overflow node id space", side, dim)
		}
		size *= side
	}
	m.size = size
	return m, nil
}

// MustNew is New for static configurations known to be valid; it panics on
// error and is intended for tests and examples.
func MustNew(dim, side int) *Mesh {
	m, err := New(dim, side)
	if err != nil {
		panic(err)
	}
	return m
}

// MustNewTorus is NewTorus for static configurations known to be valid.
func MustNewTorus(dim, side int) *Mesh {
	m, err := NewTorus(dim, side)
	if err != nil {
		panic(err)
	}
	return m
}

// Wrap reports whether the network is a torus.
func (m *Mesh) Wrap() bool { return m.wrap }

// Dim returns the dimension d of the mesh.
func (m *Mesh) Dim() int { return m.dim }

// Side returns the side length n of the mesh.
func (m *Mesh) Side() int { return m.side }

// Size returns the number of nodes, n^d.
func (m *Mesh) Size() int { return m.size }

// DirCount returns the number of directions, 2d.
func (m *Mesh) DirCount() int { return 2 * m.dim }

// Diameter returns the diameter of the network: d*(n-1) for the mesh,
// d*floor(n/2) for the torus.
func (m *Mesh) Diameter() int {
	if m.wrap {
		return m.dim * (m.side / 2)
	}
	return m.dim * (m.side - 1)
}

// ArcCount returns the total number of directed arcs:
// 2*d*n^{d-1}*(n-1) for the mesh, 2*d*n^d for the torus.
func (m *Mesh) ArcCount() int {
	if m.wrap {
		return 2 * m.dim * m.size
	}
	return 2 * m.dim * (m.size / m.side) * (m.side - 1)
}

// Contains reports whether id is a valid node of the mesh.
func (m *Mesh) Contains(id NodeID) bool {
	return id >= 0 && int(id) < m.size
}

// Coord writes the coordinates of id into buf (which must have length >=
// dim) and returns buf[:dim]. A nil buf allocates.
func (m *Mesh) Coord(id NodeID, buf []int) []int {
	if buf == nil {
		buf = make([]int, m.dim)
	}
	v := int(id)
	for a := 0; a < m.dim; a++ {
		buf[a] = v % m.side
		v /= m.side
	}
	return buf[:m.dim]
}

// CoordAxis returns the single coordinate of id along the given axis.
func (m *Mesh) CoordAxis(id NodeID, axis int) int {
	return (int(id) / m.strides[axis]) % m.side
}

// ID returns the NodeID of the node with the given coordinates. It panics if
// the coordinate count or any coordinate is out of range.
func (m *Mesh) ID(coord []int) NodeID {
	if len(coord) != m.dim {
		panic(fmt.Sprintf("mesh: ID called with %d coordinates on a %d-dimensional mesh", len(coord), m.dim))
	}
	v := 0
	for a, c := range coord {
		if c < 0 || c >= m.side {
			panic(fmt.Sprintf("mesh: coordinate %d out of range [0, %d)", c, m.side))
		}
		v += c * m.strides[a]
	}
	return NodeID(v)
}

// HasArc reports whether the arc leaving `from` in direction dir exists,
// i.e. does not lead off the mesh. On a torus every arc exists.
func (m *Mesh) HasArc(from NodeID, dir Dir) bool {
	if m.wrap {
		return true
	}
	c := m.CoordAxis(from, dir.Axis())
	if dir.Positive() {
		return c < m.side-1
	}
	return c > 0
}

// step returns the node reached from `from` by k unit moves in direction
// dir, assuming the moves stay on the network (wrapping on a torus).
func (m *Mesh) step(from NodeID, dir Dir, k int) NodeID {
	axis := dir.Axis()
	c := m.CoordAxis(from, axis) + k*dir.Delta()
	if m.wrap {
		c = ((c % m.side) + m.side) % m.side
	}
	return from + NodeID((c-m.CoordAxis(from, axis))*m.strides[axis])
}

// Neighbor returns the node reached from `from` along direction dir. The
// second result is false if the arc would leave the mesh (never on a
// torus).
func (m *Mesh) Neighbor(from NodeID, dir Dir) (NodeID, bool) {
	if !m.HasArc(from, dir) {
		return from, false
	}
	return m.step(from, dir, 1), true
}

// TwoNeighbor returns the 2-neighbor of `from` in direction dir
// (Definition 4): the node reached by a path of two arcs both in direction
// dir. The second result is false if no such node exists.
func (m *Mesh) TwoNeighbor(from NodeID, dir Dir) (NodeID, bool) {
	if m.wrap {
		return m.step(from, dir, 2), true
	}
	c := m.CoordAxis(from, dir.Axis())
	if dir.Positive() {
		if c >= m.side-2 {
			return from, false
		}
	} else if c < 2 {
		return from, false
	}
	return from + NodeID(2*dir.Delta()*m.strides[dir.Axis()]), true
}

// Degree returns the out-degree (= in-degree) of the node: 2d on a torus;
// on a mesh, 2d minus the number of axes on which the node sits on an edge.
func (m *Mesh) Degree(id NodeID) int {
	if m.wrap {
		return 2 * m.dim
	}
	deg := 0
	v := int(id)
	for a := 0; a < m.dim; a++ {
		c := v % m.side
		v /= m.side
		if c > 0 {
			deg++
		}
		if c < m.side-1 {
			deg++
		}
	}
	return deg
}

// Dist returns the distance between two nodes: the L1 distance on the
// mesh, and the per-axis wraparound minimum on the torus.
func (m *Mesh) Dist(a, b NodeID) int {
	va, vb := int(a), int(b)
	sum := 0
	for ax := 0; ax < m.dim; ax++ {
		ca := va % m.side
		cb := vb % m.side
		va /= m.side
		vb /= m.side
		diff := ca - cb
		if diff < 0 {
			diff = -diff
		}
		if m.wrap && m.side-diff < diff {
			diff = m.side - diff
		}
		sum += diff
	}
	return sum
}

// GoodDirs appends to buf the good directions (Definition 5) for a packet
// currently at `from` with destination dst: the directions whose arc out of
// `from` enters a node closer to dst. On the mesh there is at most one good
// direction per axis (result length <= d); on the torus an axis whose
// offset is exactly n/2 contributes both of its directions (result length
// <= 2d). The length is zero iff from == dst. A good direction never leads
// off the network.
func (m *Mesh) GoodDirs(from, dst NodeID, buf []Dir) []Dir {
	vf, vd := int(from), int(dst)
	for a := 0; a < m.dim; a++ {
		cf := vf % m.side
		cd := vd % m.side
		vf /= m.side
		vd /= m.side
		if cf == cd {
			continue
		}
		if !m.wrap {
			if cf < cd {
				buf = append(buf, DirPlus(a))
			} else {
				buf = append(buf, DirMinus(a))
			}
			continue
		}
		fwd := ((cd-cf)%m.side + m.side) % m.side // steps in "+"
		switch {
		case 2*fwd < m.side:
			buf = append(buf, DirPlus(a))
		case 2*fwd > m.side:
			buf = append(buf, DirMinus(a))
		default: // exactly opposite on the ring: both ways are shortest
			buf = append(buf, DirPlus(a), DirMinus(a))
		}
	}
	return buf
}

// GoodDirCount returns the number of good directions for a packet at `from`
// destined to dst.
func (m *Mesh) GoodDirCount(from, dst NodeID) int {
	if !m.wrap {
		vf, vd := int(from), int(dst)
		cnt := 0
		for a := 0; a < m.dim; a++ {
			if vf%m.side != vd%m.side {
				cnt++
			}
			vf /= m.side
			vd /= m.side
		}
		return cnt
	}
	var buf [2 * MaxDim]Dir
	return len(m.GoodDirs(from, dst, buf[:0]))
}

// IsGoodDir reports whether dir is a good direction for a packet at `from`
// destined to dst.
func (m *Mesh) IsGoodDir(from, dst NodeID, dir Dir) bool {
	cf := m.CoordAxis(from, dir.Axis())
	cd := m.CoordAxis(dst, dir.Axis())
	if cf == cd {
		return false
	}
	if !m.wrap {
		if dir.Positive() {
			return cf < cd
		}
		return cf > cd
	}
	fwd := ((cd-cf)%m.side + m.side) % m.side
	if dir.Positive() {
		return 2*fwd <= m.side
	}
	return 2*fwd >= m.side
}

// ParityClass returns the equivalence class of the node under the transitive
// closure of the 2-neighbor relation: bit a of the result is the parity of
// coordinate a. There are 2^d classes, each isomorphic (for even n) to a
// d-dimensional mesh with (n/2)^d nodes. On a torus this matches the
// 2-neighbor closure only for even n (an odd ring is closed under step-2
// moves, merging the two parities).
func (m *Mesh) ParityClass(id NodeID) int {
	v := int(id)
	class := 0
	for a := 0; a < m.dim; a++ {
		class |= (v % m.side & 1) << a
		v /= m.side
	}
	return class
}

// SnakeRank returns the rank of the node in a "snake" (boustrophedon) order
// that visits all nodes along a Hamiltonian path of the mesh: consecutive
// ranks are adjacent nodes. Destination-order priority policies
// (Brassil-Cruz style) use this as the prespecified order on destinations.
func (m *Mesh) SnakeRank(id NodeID) int {
	// Process axes from the most significant down: the rank within each
	// hyperplane is reversed when the more significant coordinate is odd.
	// Within the hyperplane of each coordinate value, the order of the whole
	// sub-mesh is reversed when that coordinate is odd. Reversing a
	// mixed-radix rank complements all lower digits, so we track a
	// complement flag; the flag toggles on the *raw* coordinate parity
	// (complements compose through the recursion that way).
	rank := 0
	rem := int(id)
	var coords [MaxDim]int
	for a := 0; a < m.dim; a++ {
		coords[a] = rem % m.side
		rem /= m.side
	}
	comp := false
	for a := m.dim - 1; a >= 0; a-- {
		disp := coords[a]
		if comp {
			disp = m.side - 1 - disp
		}
		rank = rank*m.side + disp
		if coords[a]&1 == 1 {
			comp = !comp
		}
	}
	return rank
}

// ErrCoordRange is returned by validation helpers when a coordinate falls
// outside the mesh.
var ErrCoordRange = errors.New("mesh: coordinate out of range")

// CheckID returns an error if id is not a node of the mesh.
func (m *Mesh) CheckID(id NodeID) error {
	if !m.Contains(id) {
		return fmt.Errorf("%w: node %d not in [0, %d)", ErrCoordRange, id, m.size)
	}
	return nil
}

// String renders the network as e.g. "mesh(d=2, n=8)" or "torus(d=2, n=8)".
func (m *Mesh) String() string {
	kind := "mesh"
	if m.wrap {
		kind = "torus"
	}
	return fmt.Sprintf("%s(d=%d, n=%d)", kind, m.dim, m.side)
}
