package mesh

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name    string
		dim     int
		side    int
		wantErr bool
	}{
		{name: "minimal", dim: 1, side: 2},
		{name: "square", dim: 2, side: 8},
		{name: "cube", dim: 3, side: 5},
		{name: "max dim", dim: MaxDim, side: 2},
		{name: "zero dim", dim: 0, side: 4, wantErr: true},
		{name: "negative dim", dim: -1, side: 4, wantErr: true},
		{name: "too many dims", dim: MaxDim + 1, side: 2, wantErr: true},
		{name: "side one", dim: 2, side: 1, wantErr: true},
		{name: "side zero", dim: 2, side: 0, wantErr: true},
		{name: "overflow", dim: 8, side: 100000, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m, err := New(tt.dim, tt.side)
			if (err != nil) != tt.wantErr {
				t.Fatalf("New(%d, %d) error = %v, wantErr %v", tt.dim, tt.side, err, tt.wantErr)
			}
			if err == nil && m.Size() != pow(tt.side, tt.dim) {
				t.Errorf("Size() = %d, want %d", m.Size(), pow(tt.side, tt.dim))
			}
		})
	}
}

func pow(b, e int) int {
	r := 1
	for i := 0; i < e; i++ {
		r *= b
	}
	return r
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(0, 0) did not panic")
		}
	}()
	MustNew(0, 0)
}

func TestBasicProperties(t *testing.T) {
	m := MustNew(3, 4)
	if got, want := m.Dim(), 3; got != want {
		t.Errorf("Dim() = %d, want %d", got, want)
	}
	if got, want := m.Side(), 4; got != want {
		t.Errorf("Side() = %d, want %d", got, want)
	}
	if got, want := m.Size(), 64; got != want {
		t.Errorf("Size() = %d, want %d", got, want)
	}
	if got, want := m.DirCount(), 6; got != want {
		t.Errorf("DirCount() = %d, want %d", got, want)
	}
	if got, want := m.Diameter(), 9; got != want {
		t.Errorf("Diameter() = %d, want %d", got, want)
	}
	// 2*d*n^{d-1}*(n-1) = 2*3*16*3 = 288.
	if got, want := m.ArcCount(), 288; got != want {
		t.Errorf("ArcCount() = %d, want %d", got, want)
	}
}

func TestCoordIDRoundTrip(t *testing.T) {
	for _, cfg := range []struct{ d, n int }{{1, 5}, {2, 4}, {3, 3}, {4, 3}} {
		m := MustNew(cfg.d, cfg.n)
		buf := make([]int, cfg.d)
		for id := NodeID(0); int(id) < m.Size(); id++ {
			c := m.Coord(id, buf)
			if got := m.ID(c); got != id {
				t.Fatalf("d=%d n=%d: ID(Coord(%d)) = %d", cfg.d, cfg.n, id, got)
			}
			for a := 0; a < cfg.d; a++ {
				if m.CoordAxis(id, a) != c[a] {
					t.Fatalf("CoordAxis(%d, %d) = %d, want %d", id, a, m.CoordAxis(id, a), c[a])
				}
			}
		}
	}
}

func TestCoordNilBufAllocates(t *testing.T) {
	m := MustNew(2, 3)
	c := m.Coord(7, nil)
	if len(c) != 2 || c[0] != 1 || c[1] != 2 {
		t.Errorf("Coord(7, nil) = %v, want [1 2]", c)
	}
}

func TestIDPanicsOnBadInput(t *testing.T) {
	m := MustNew(2, 3)
	for _, coord := range [][]int{{1}, {1, 2, 3}, {-1, 0}, {0, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ID(%v) did not panic", coord)
				}
			}()
			m.ID(coord)
		}()
	}
}

func TestDirAccessors(t *testing.T) {
	tests := []struct {
		dir      Dir
		axis     int
		positive bool
		str      string
	}{
		{DirPlus(0), 0, true, "+x0"},
		{DirMinus(0), 0, false, "-x0"},
		{DirPlus(2), 2, true, "+x2"},
		{DirMinus(3), 3, false, "-x3"},
	}
	for _, tt := range tests {
		if tt.dir.Axis() != tt.axis {
			t.Errorf("%v.Axis() = %d, want %d", tt.dir, tt.dir.Axis(), tt.axis)
		}
		if tt.dir.Positive() != tt.positive {
			t.Errorf("%v.Positive() = %v, want %v", tt.dir, tt.dir.Positive(), tt.positive)
		}
		if tt.dir.String() != tt.str {
			t.Errorf("String() = %q, want %q", tt.dir.String(), tt.str)
		}
		if tt.dir.Opposite().Axis() != tt.axis || tt.dir.Opposite().Positive() == tt.positive {
			t.Errorf("%v.Opposite() = %v: wrong axis or sign", tt.dir, tt.dir.Opposite())
		}
		if tt.dir.Opposite().Opposite() != tt.dir {
			t.Errorf("double Opposite of %v = %v", tt.dir, tt.dir.Opposite().Opposite())
		}
		want := 1
		if !tt.positive {
			want = -1
		}
		if tt.dir.Delta() != want {
			t.Errorf("%v.Delta() = %d, want %d", tt.dir, tt.dir.Delta(), want)
		}
	}
	if NoDir.String() != "none" {
		t.Errorf("NoDir.String() = %q", NoDir.String())
	}
}

func TestNeighborAndHasArc(t *testing.T) {
	m := MustNew(2, 3)
	corner := m.ID([]int{0, 0})
	center := m.ID([]int{1, 1})

	if _, ok := m.Neighbor(corner, DirMinus(0)); ok {
		t.Error("corner has a -x0 neighbor")
	}
	if _, ok := m.Neighbor(corner, DirMinus(1)); ok {
		t.Error("corner has a -x1 neighbor")
	}
	if nb, ok := m.Neighbor(corner, DirPlus(0)); !ok || nb != m.ID([]int{1, 0}) {
		t.Errorf("Neighbor(corner, +x0) = %d, %v", nb, ok)
	}
	for dir := Dir(0); dir < Dir(m.DirCount()); dir++ {
		nb, ok := m.Neighbor(center, dir)
		if !ok {
			t.Errorf("center missing neighbor in %v", dir)
			continue
		}
		if m.Dist(center, nb) != 1 {
			t.Errorf("neighbor %d of center not at distance 1", nb)
		}
		if !m.HasArc(center, dir) {
			t.Errorf("HasArc(center, %v) = false with neighbor present", dir)
		}
	}
}

func TestNeighborReciprocity(t *testing.T) {
	m := MustNew(3, 4)
	for id := NodeID(0); int(id) < m.Size(); id++ {
		for dir := Dir(0); dir < Dir(m.DirCount()); dir++ {
			nb, ok := m.Neighbor(id, dir)
			if !ok {
				continue
			}
			back, ok := m.Neighbor(nb, dir.Opposite())
			if !ok || back != id {
				t.Fatalf("Neighbor(%d, %v) = %d but reverse = %d, %v", id, dir, nb, back, ok)
			}
		}
	}
}

func TestDegree(t *testing.T) {
	m := MustNew(2, 4)
	tests := []struct {
		coord []int
		want  int
	}{
		{[]int{0, 0}, 2}, // corner
		{[]int{1, 0}, 3}, // edge
		{[]int{1, 2}, 4}, // interior
		{[]int{3, 3}, 2}, // corner
	}
	for _, tt := range tests {
		if got := m.Degree(m.ID(tt.coord)); got != tt.want {
			t.Errorf("Degree(%v) = %d, want %d", tt.coord, got, tt.want)
		}
	}
	// Degree must equal the number of existing outgoing arcs.
	for id := NodeID(0); int(id) < m.Size(); id++ {
		arcs := 0
		for dir := Dir(0); dir < Dir(m.DirCount()); dir++ {
			if m.HasArc(id, dir) {
				arcs++
			}
		}
		if arcs != m.Degree(id) {
			t.Fatalf("node %d: Degree=%d but %d arcs", id, m.Degree(id), arcs)
		}
	}
}

func TestDistMetricAxioms(t *testing.T) {
	m := MustNew(3, 4)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a := NodeID(rng.Intn(m.Size()))
		b := NodeID(rng.Intn(m.Size()))
		c := NodeID(rng.Intn(m.Size()))
		if m.Dist(a, a) != 0 {
			t.Fatalf("Dist(%d,%d) != 0", a, a)
		}
		if m.Dist(a, b) != m.Dist(b, a) {
			t.Fatalf("Dist not symmetric for %d,%d", a, b)
		}
		if a != b && m.Dist(a, b) <= 0 {
			t.Fatalf("Dist(%d,%d) = %d, want positive", a, b, m.Dist(a, b))
		}
		if m.Dist(a, c) > m.Dist(a, b)+m.Dist(b, c) {
			t.Fatalf("triangle inequality violated for %d,%d,%d", a, b, c)
		}
		if m.Dist(a, b) > m.Diameter() {
			t.Fatalf("Dist(%d,%d) exceeds diameter", a, b)
		}
	}
}

func TestGoodDirs(t *testing.T) {
	m := MustNew(2, 8)
	from := m.ID([]int{3, 5})
	tests := []struct {
		dst  []int
		want []Dir
	}{
		{[]int{3, 5}, nil},
		{[]int{6, 5}, []Dir{DirPlus(0)}},
		{[]int{0, 5}, []Dir{DirMinus(0)}},
		{[]int{3, 7}, []Dir{DirPlus(1)}},
		{[]int{0, 0}, []Dir{DirMinus(0), DirMinus(1)}},
		{[]int{7, 7}, []Dir{DirPlus(0), DirPlus(1)}},
	}
	for _, tt := range tests {
		got := m.GoodDirs(from, m.ID(tt.dst), nil)
		if len(got) != len(tt.want) {
			t.Errorf("GoodDirs(->%v) = %v, want %v", tt.dst, got, tt.want)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("GoodDirs(->%v) = %v, want %v", tt.dst, got, tt.want)
				break
			}
		}
		if len(got) != m.GoodDirCount(from, m.ID(tt.dst)) {
			t.Errorf("GoodDirCount disagrees with len(GoodDirs) for dst %v", tt.dst)
		}
	}
}

// TestGoodDirsPaperExample checks the example below Definition 5: a packet at
// (1,3,2,6,1) destined to (4,3,8,2,1) in the 5-dimensional mesh has good
// directions +x0, +x2, -x3. (The paper uses 1-based coordinates; the offsets
// cancel.)
func TestGoodDirsPaperExample(t *testing.T) {
	m := MustNew(5, 9)
	from := m.ID([]int{1, 3, 2, 6, 1})
	dst := m.ID([]int{4, 3, 8, 2, 1})
	got := m.GoodDirs(from, dst, nil)
	want := []Dir{DirPlus(0), DirPlus(2), DirMinus(3)}
	if len(got) != len(want) {
		t.Fatalf("GoodDirs = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("GoodDirs = %v, want %v", got, want)
		}
	}
}

func TestGoodDirConsistency(t *testing.T) {
	m := MustNew(3, 5)
	rng := rand.New(rand.NewSource(2))
	var buf []Dir
	for i := 0; i < 3000; i++ {
		from := NodeID(rng.Intn(m.Size()))
		dst := NodeID(rng.Intn(m.Size()))
		buf = m.GoodDirs(from, dst, buf[:0])
		seen := make(map[Dir]bool, len(buf))
		for _, dir := range buf {
			seen[dir] = true
		}
		for dir := Dir(0); dir < Dir(m.DirCount()); dir++ {
			if seen[dir] != m.IsGoodDir(from, dst, dir) {
				t.Fatalf("IsGoodDir(%d->%d, %v) = %v, inconsistent with GoodDirs %v",
					from, dst, dir, m.IsGoodDir(from, dst, dir), buf)
			}
			nb, ok := m.Neighbor(from, dir)
			wantGood := ok && m.Dist(nb, dst) == m.Dist(from, dst)-1
			if seen[dir] != wantGood {
				t.Fatalf("good dir %v of %d->%d disagrees with distance semantics", dir, from, dst)
			}
		}
		// A good direction never leads off the mesh.
		for _, dir := range buf {
			if !m.HasArc(from, dir) {
				t.Fatalf("good dir %v of %d leads off the mesh", dir, from)
			}
		}
	}
}

func TestTwoNeighbor(t *testing.T) {
	m := MustNew(2, 5)
	// Paper example (shifted to 0-based): (0,1) is a 2-neighbor of (2,1) in
	// -x0; (1,2) is not a 2-neighbor of (2,1).
	a := m.ID([]int{2, 1})
	if nb, ok := m.TwoNeighbor(a, DirMinus(0)); !ok || nb != m.ID([]int{0, 1}) {
		t.Errorf("TwoNeighbor((2,1), -x0) = %d, %v", nb, ok)
	}
	got := make(map[NodeID]bool)
	for dir := Dir(0); dir < Dir(m.DirCount()); dir++ {
		if nb, ok := m.TwoNeighbor(a, dir); ok {
			got[nb] = true
		}
	}
	if got[m.ID([]int{1, 2})] {
		t.Error("(1,2) reported as a 2-neighbor of (2,1)")
	}
	want := []NodeID{m.ID([]int{0, 1}), m.ID([]int{4, 1}), m.ID([]int{2, 3})}
	for _, w := range want {
		if !got[w] {
			t.Errorf("node %d missing from 2-neighbors of (2,1); got %v", w, got)
		}
	}
}

// TestTwoNeighborSymmetric: the 2-neighbor relation is symmetric (claimed
// after Definition 4).
func TestTwoNeighborSymmetric(t *testing.T) {
	m := MustNew(3, 5)
	for id := NodeID(0); int(id) < m.Size(); id++ {
		for dir := Dir(0); dir < Dir(m.DirCount()); dir++ {
			nb, ok := m.TwoNeighbor(id, dir)
			if !ok {
				continue
			}
			back, ok := m.TwoNeighbor(nb, dir.Opposite())
			if !ok || back != id {
				t.Fatalf("TwoNeighbor(%d, %v) = %d not symmetric", id, dir, nb)
			}
		}
	}
}

// TestParityClasses: 2-neighbors share a class; there are 2^d classes, each
// of size (n/2)^d for even n.
func TestParityClasses(t *testing.T) {
	m := MustNew(3, 4)
	counts := make(map[int]int)
	for id := NodeID(0); int(id) < m.Size(); id++ {
		class := m.ParityClass(id)
		counts[class]++
		for dir := Dir(0); dir < Dir(m.DirCount()); dir++ {
			if nb, ok := m.TwoNeighbor(id, dir); ok && m.ParityClass(nb) != class {
				t.Fatalf("2-neighbors %d, %d in different parity classes", id, nb)
			}
			// 1-neighbors are always in a different class.
			if nb, ok := m.Neighbor(id, dir); ok && m.ParityClass(nb) == class {
				t.Fatalf("adjacent nodes %d, %d share a parity class", id, nb)
			}
		}
	}
	if len(counts) != 8 {
		t.Fatalf("expected 8 parity classes, got %d", len(counts))
	}
	for class, cnt := range counts {
		if cnt != 8 { // (4/2)^3
			t.Errorf("class %d has %d nodes, want 8", class, cnt)
		}
	}
}

// TestSnakeRank: the snake order is a bijection onto [0, n^d) and
// consecutive ranks are adjacent nodes (it is a Hamiltonian path).
func TestSnakeRank(t *testing.T) {
	for _, cfg := range []struct{ d, n int }{{1, 7}, {2, 5}, {2, 6}, {3, 4}} {
		m := MustNew(cfg.d, cfg.n)
		byRank := make([]NodeID, m.Size())
		seen := make([]bool, m.Size())
		for id := NodeID(0); int(id) < m.Size(); id++ {
			r := m.SnakeRank(id)
			if r < 0 || r >= m.Size() {
				t.Fatalf("d=%d n=%d: SnakeRank(%d) = %d out of range", cfg.d, cfg.n, id, r)
			}
			if seen[r] {
				t.Fatalf("d=%d n=%d: duplicate rank %d", cfg.d, cfg.n, r)
			}
			seen[r] = true
			byRank[r] = id
		}
		for r := 1; r < m.Size(); r++ {
			if m.Dist(byRank[r-1], byRank[r]) != 1 {
				t.Fatalf("d=%d n=%d: ranks %d,%d are nodes %d,%d at distance %d",
					cfg.d, cfg.n, r-1, r, byRank[r-1], byRank[r], m.Dist(byRank[r-1], byRank[r]))
			}
		}
	}
}

func TestCheckID(t *testing.T) {
	m := MustNew(2, 3)
	if err := m.CheckID(0); err != nil {
		t.Errorf("CheckID(0) = %v", err)
	}
	if err := m.CheckID(8); err != nil {
		t.Errorf("CheckID(8) = %v", err)
	}
	if err := m.CheckID(-1); err == nil {
		t.Error("CheckID(-1) = nil, want error")
	}
	if err := m.CheckID(9); err == nil {
		t.Error("CheckID(9) = nil, want error")
	}
}

func TestString(t *testing.T) {
	if got, want := MustNew(2, 8).String(), "mesh(d=2, n=8)"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// Property-based tests via testing/quick.

func TestQuickCoordRoundTrip(t *testing.T) {
	m := MustNew(4, 5)
	f := func(raw uint32) bool {
		id := NodeID(int(raw) % m.Size())
		return m.ID(m.Coord(id, nil)) == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDistEqualsGoodSteps(t *testing.T) {
	// Walking greedily along good directions reaches the destination in
	// exactly Dist steps.
	m := MustNew(3, 6)
	f := func(ra, rb uint32) bool {
		a := NodeID(int(ra) % m.Size())
		b := NodeID(int(rb) % m.Size())
		cur, steps := a, 0
		for cur != b {
			dirs := m.GoodDirs(cur, b, nil)
			if len(dirs) == 0 {
				return false
			}
			next, ok := m.Neighbor(cur, dirs[0])
			if !ok {
				return false
			}
			cur = next
			steps++
			if steps > m.Diameter() {
				return false
			}
		}
		return steps == m.Dist(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickNeighborChangesDistByOne(t *testing.T) {
	m := MustNew(2, 9)
	f := func(ra, rb uint32, rd uint8) bool {
		a := NodeID(int(ra) % m.Size())
		b := NodeID(int(rb) % m.Size())
		dir := Dir(int(rd) % m.DirCount())
		nb, ok := m.Neighbor(a, dir)
		if !ok {
			return true
		}
		diff := m.Dist(nb, b) - m.Dist(a, b)
		if diff != 1 && diff != -1 {
			return false
		}
		// The arc is good iff it decreases the distance.
		return m.IsGoodDir(a, b, dir) == (diff == -1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkDist(b *testing.B) {
	m := MustNew(3, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = m.Dist(NodeID(i%m.Size()), NodeID((i*7)%m.Size()))
	}
}

func BenchmarkGoodDirs(b *testing.B) {
	m := MustNew(3, 16)
	buf := make([]Dir, 0, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = m.GoodDirs(NodeID(i%m.Size()), NodeID((i*13)%m.Size()), buf[:0])
	}
}
