package mesh

// Overlay is a mutable failure view over an immutable Mesh: the same
// geometry with a current set of failed links and failed nodes subtracted
// from the connectivity. It implements Topology, so engines and policies
// route against it exactly as they route against the intact mesh.
//
// Links are undirected: failing the link between u and v removes both
// directed arcs, which preserves the in-degree == out-degree identity every
// hot-potato capacity argument rests on. A failed node loses all incident
// arcs (its neighbors see their degree drop accordingly).
//
// Mutation is not synchronized. The engine mutates the overlay only between
// routing phases (at the beginning of a step), while the concurrent routing
// workers only read — the same discipline as the rest of the engine state.
type Overlay struct {
	base     *Mesh
	arcDown  []bool // directed arc (from, dir) explicitly cut, indexed from*DirCount+dir
	nodeDown []bool

	downLinks int // currently failed undirected links
	downNodes int // currently failed nodes
	linkFails int // cumulative FailLink transitions applied
	nodeFails int // cumulative FailNode transitions applied
	version   uint64
}

// NewOverlay returns a fault-free overlay of the base mesh.
func NewOverlay(base *Mesh) *Overlay {
	return &Overlay{
		base:     base,
		arcDown:  make([]bool, base.Size()*base.DirCount()),
		nodeDown: make([]bool, base.Size()),
	}
}

// Base returns the underlying intact mesh.
func (o *Overlay) Base() *Mesh { return o.base }

// Version counts mutations; it changes iff the failure set changed, so
// callers can cache degraded-state work between fault transitions.
func (o *Overlay) Version() uint64 { return o.version }

// DownLinks returns the number of currently failed links.
func (o *Overlay) DownLinks() int { return o.downLinks }

// DownNodes returns the number of currently failed nodes.
func (o *Overlay) DownNodes() int { return o.downNodes }

// LinkFailures returns the cumulative number of link-failure transitions.
func (o *Overlay) LinkFailures() int { return o.linkFails }

// NodeFailures returns the cumulative number of node-failure transitions.
func (o *Overlay) NodeFailures() int { return o.nodeFails }

// NodeDown reports whether the node is currently failed.
func (o *Overlay) NodeDown(id NodeID) bool { return o.nodeDown[id] }

// LinkDown reports whether the link out of `from` in direction dir is
// explicitly cut (independent of the state of its endpoints).
func (o *Overlay) LinkDown(from NodeID, dir Dir) bool {
	return o.arcDown[int(from)*o.base.DirCount()+int(dir)]
}

// FailLink cuts the (bidirectional) link out of `from` in direction dir.
// It reports whether the state changed: false if the mesh has no such link
// or it is already cut.
func (o *Overlay) FailLink(from NodeID, dir Dir) bool {
	if !o.base.Contains(from) || dir < 0 || int(dir) >= o.base.DirCount() || !o.base.HasArc(from, dir) {
		return false
	}
	if o.LinkDown(from, dir) {
		return false
	}
	to := o.base.step(from, dir, 1)
	o.arcDown[int(from)*o.base.DirCount()+int(dir)] = true
	o.arcDown[int(to)*o.base.DirCount()+int(dir.Opposite())] = true
	o.downLinks++
	o.linkFails++
	o.version++
	return true
}

// RestoreLink undoes FailLink. It reports whether the state changed.
func (o *Overlay) RestoreLink(from NodeID, dir Dir) bool {
	if !o.base.Contains(from) || dir < 0 || int(dir) >= o.base.DirCount() || !o.base.HasArc(from, dir) {
		return false
	}
	if !o.LinkDown(from, dir) {
		return false
	}
	to := o.base.step(from, dir, 1)
	o.arcDown[int(from)*o.base.DirCount()+int(dir)] = false
	o.arcDown[int(to)*o.base.DirCount()+int(dir.Opposite())] = false
	o.downLinks--
	o.version++
	return true
}

// FailNode crashes the node: all incident arcs disappear until RestoreNode.
// It reports whether the state changed.
func (o *Overlay) FailNode(id NodeID) bool {
	if !o.base.Contains(id) || o.nodeDown[id] {
		return false
	}
	o.nodeDown[id] = true
	o.downNodes++
	o.nodeFails++
	o.version++
	return true
}

// RestoreNode reboots a failed node. Links that were explicitly cut while
// the node was down stay cut. It reports whether the state changed.
func (o *Overlay) RestoreNode(id NodeID) bool {
	if !o.base.Contains(id) || !o.nodeDown[id] {
		return false
	}
	o.nodeDown[id] = false
	o.downNodes--
	o.version++
	return true
}

// Reset restores the intact mesh (cumulative failure counts are kept).
func (o *Overlay) Reset() {
	if o.downLinks == 0 && o.downNodes == 0 {
		return
	}
	clear(o.arcDown)
	clear(o.nodeDown)
	o.downLinks = 0
	o.downNodes = 0
	o.version++
}

// Geometry: delegated to the base mesh (see the Topology comment for why
// Dist and friends deliberately ignore the failure set).

func (o *Overlay) Dim() int                          { return o.base.Dim() }
func (o *Overlay) Side() int                         { return o.base.Side() }
func (o *Overlay) Size() int                         { return o.base.Size() }
func (o *Overlay) Wrap() bool                        { return o.base.Wrap() }
func (o *Overlay) DirCount() int                     { return o.base.DirCount() }
func (o *Overlay) Diameter() int                     { return o.base.Diameter() }
func (o *Overlay) Contains(id NodeID) bool           { return o.base.Contains(id) }
func (o *Overlay) CheckID(id NodeID) error           { return o.base.CheckID(id) }
func (o *Overlay) Coord(id NodeID, buf []int) []int  { return o.base.Coord(id, buf) }
func (o *Overlay) CoordAxis(id NodeID, axis int) int { return o.base.CoordAxis(id, axis) }
func (o *Overlay) ID(coord []int) NodeID             { return o.base.ID(coord) }
func (o *Overlay) Dist(a, b NodeID) int              { return o.base.Dist(a, b) }
func (o *Overlay) ParityClass(id NodeID) int         { return o.base.ParityClass(id) }
func (o *Overlay) SnakeRank(id NodeID) int           { return o.base.SnakeRank(id) }

// Connectivity: the base mesh minus the failure set.

// HasArc reports whether the arc exists and survives the failure set: the
// base arc exists, neither endpoint is down, and the link is not cut.
func (o *Overlay) HasArc(from NodeID, dir Dir) bool {
	if o.nodeDown[from] || !o.base.HasArc(from, dir) {
		return false
	}
	if o.arcDown[int(from)*o.base.DirCount()+int(dir)] {
		return false
	}
	return !o.nodeDown[o.base.step(from, dir, 1)]
}

// Neighbor returns the node reached along dir, false if the arc is missing
// or failed.
func (o *Overlay) Neighbor(from NodeID, dir Dir) (NodeID, bool) {
	if !o.HasArc(from, dir) {
		return from, false
	}
	return o.base.step(from, dir, 1), true
}

// TwoNeighbor returns the 2-neighbor reached by two surviving arcs in
// direction dir.
func (o *Overlay) TwoNeighbor(from NodeID, dir Dir) (NodeID, bool) {
	mid, ok := o.Neighbor(from, dir)
	if !ok {
		return from, false
	}
	to, ok := o.Neighbor(mid, dir)
	if !ok {
		return from, false
	}
	return to, true
}

// Degree returns the number of surviving outgoing arcs: 0 for a failed
// node, the base degree minus failed incident links otherwise.
func (o *Overlay) Degree(id NodeID) int {
	if o.nodeDown[id] {
		return 0
	}
	if o.downLinks == 0 && o.downNodes == 0 {
		return o.base.Degree(id)
	}
	deg := 0
	for d := 0; d < o.base.DirCount(); d++ {
		if o.HasArc(id, Dir(d)) {
			deg++
		}
	}
	return deg
}

// GoodDirs returns the base mesh's good directions whose arcs survive the
// failure set. A packet all of whose geometrically good arcs are down has
// no good direction: every surviving arc deflects it, which is exactly how
// a bufferless router degrades.
func (o *Overlay) GoodDirs(from, dst NodeID, buf []Dir) []Dir {
	start := len(buf)
	buf = o.base.GoodDirs(from, dst, buf)
	if o.downLinks == 0 && o.downNodes == 0 {
		return buf
	}
	w := start
	for _, d := range buf[start:] {
		if o.HasArc(from, d) {
			buf[w] = d
			w++
		}
	}
	return buf[:w]
}

// GoodDirCount returns the number of surviving good directions.
func (o *Overlay) GoodDirCount(from, dst NodeID) int {
	if o.downLinks == 0 && o.downNodes == 0 {
		return o.base.GoodDirCount(from, dst)
	}
	var buf [2 * MaxDim]Dir
	return len(o.GoodDirs(from, dst, buf[:0]))
}

// IsGoodDir reports whether dir is a good direction whose arc survives.
func (o *Overlay) IsGoodDir(from, dst NodeID, dir Dir) bool {
	return o.base.IsGoodDir(from, dst, dir) && o.HasArc(from, dir)
}

// String renders e.g. "mesh(d=2, n=8) [3 links, 1 node down]".
func (o *Overlay) String() string {
	if o.downLinks == 0 && o.downNodes == 0 {
		return o.base.String()
	}
	return o.base.String() + " [faults]"
}
