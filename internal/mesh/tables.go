package mesh

// Tables is the precomputed flat-array view of a Mesh: the same topology
// with every hot primitive — Neighbor, HasArc, Degree, GoodDirs, IsGoodDir,
// Dist, coordinate access — turned into array lookups and subtractions
// instead of div/mod coordinate arithmetic. It implements Topology, so it
// drops into every place a *Mesh does; the simulation engine additionally
// devirtualizes to it (concrete method calls on the intact mesh's hot path)
// whenever no fault overlay is installed.
//
// Tables are immutable once built and safe for concurrent use. Build them
// with (*Mesh).Tables(), which constructs them once per mesh and caches
// them; the cost is O(size * dirs) time and memory (a few words per node),
// paid only by callers that opt in.
type Tables struct {
	base     *Mesh
	dim      int
	side     int32
	wrap     bool
	dirCount int

	// neighbor[int(from)*dirCount+int(dir)] is the node reached along dir,
	// or -1 when the arc leads off the mesh.
	neighbor []NodeID
	// degree[id] is the out-degree of the node.
	degree []int8
	// coord[int(id)*dim+axis] is the cached coordinate of the node.
	coord []int32
}

// Tables returns the flat-array view of the mesh, building it on first use.
// The result is cached on the mesh and shared by all callers.
func (m *Mesh) Tables() *Tables {
	m.tablesOnce.Do(func() { m.tables = buildTables(m) })
	return m.tables
}

func buildTables(m *Mesh) *Tables {
	t := &Tables{
		base:     m,
		dim:      m.dim,
		side:     int32(m.side),
		wrap:     m.wrap,
		dirCount: m.DirCount(),
		neighbor: make([]NodeID, m.size*m.DirCount()),
		degree:   make([]int8, m.size),
		coord:    make([]int32, m.size*m.dim),
	}
	var buf [MaxDim]int
	for id := 0; id < m.size; id++ {
		node := NodeID(id)
		for a, c := range m.Coord(node, buf[:]) {
			t.coord[id*t.dim+a] = int32(c)
		}
		t.degree[id] = int8(m.Degree(node))
		for d := 0; d < t.dirCount; d++ {
			if to, ok := m.Neighbor(node, Dir(d)); ok {
				t.neighbor[id*t.dirCount+d] = to
			} else {
				t.neighbor[id*t.dirCount+d] = -1
			}
		}
	}
	return t
}

// Base returns the mesh the tables were built from.
func (t *Tables) Base() *Mesh { return t.base }

// Geometry identical on every view: delegated to the base mesh where no
// table helps, served from the coordinate cache where one does.

func (t *Tables) Dim() int                { return t.dim }
func (t *Tables) Side() int               { return int(t.side) }
func (t *Tables) Size() int               { return t.base.size }
func (t *Tables) Wrap() bool              { return t.wrap }
func (t *Tables) DirCount() int           { return t.dirCount }
func (t *Tables) Diameter() int           { return t.base.Diameter() }
func (t *Tables) Contains(id NodeID) bool { return t.base.Contains(id) }
func (t *Tables) CheckID(id NodeID) error { return t.base.CheckID(id) }
func (t *Tables) ID(coord []int) NodeID   { return t.base.ID(coord) }
func (t *Tables) ParityClass(id NodeID) int {
	class := 0
	for a := 0; a < t.dim; a++ {
		class |= int(t.coord[int(id)*t.dim+a]&1) << a
	}
	return class
}
func (t *Tables) SnakeRank(id NodeID) int { return t.base.SnakeRank(id) }
func (t *Tables) String() string          { return t.base.String() }

// Coord writes the cached coordinates of id into buf and returns buf[:dim].
func (t *Tables) Coord(id NodeID, buf []int) []int {
	if buf == nil {
		buf = make([]int, t.dim)
	}
	c := t.coord[int(id)*t.dim : int(id)*t.dim+t.dim]
	for a, v := range c {
		buf[a] = int(v)
	}
	return buf[:t.dim]
}

// CoordAxis returns the cached coordinate of id along the given axis.
func (t *Tables) CoordAxis(id NodeID, axis int) int {
	return int(t.coord[int(id)*t.dim+axis])
}

// Dist returns the (geometric) distance between two nodes from the
// coordinate cache: L1 on the mesh, per-axis wraparound minimum on the
// torus.
func (t *Tables) Dist(a, b NodeID) int {
	ca := t.coord[int(a)*t.dim:]
	cb := t.coord[int(b)*t.dim:]
	sum := int32(0)
	for ax := 0; ax < t.dim; ax++ {
		diff := ca[ax] - cb[ax]
		if diff < 0 {
			diff = -diff
		}
		if t.wrap && t.side-diff < diff {
			diff = t.side - diff
		}
		sum += diff
	}
	return int(sum)
}

// HasArc reports whether the arc leaving `from` along dir exists.
func (t *Tables) HasArc(from NodeID, dir Dir) bool {
	return t.neighbor[int(from)*t.dirCount+int(dir)] >= 0
}

// Neighbor returns the node reached from `from` along dir; false if the arc
// leads off the mesh.
func (t *Tables) Neighbor(from NodeID, dir Dir) (NodeID, bool) {
	to := t.neighbor[int(from)*t.dirCount+int(dir)]
	if to < 0 {
		return from, false
	}
	return to, true
}

// TwoNeighbor returns the 2-neighbor of `from` in direction dir
// (Definition 4) via two table hops.
func (t *Tables) TwoNeighbor(from NodeID, dir Dir) (NodeID, bool) {
	mid := t.neighbor[int(from)*t.dirCount+int(dir)]
	if mid < 0 {
		return from, false
	}
	to := t.neighbor[int(mid)*t.dirCount+int(dir)]
	if to < 0 {
		return from, false
	}
	return to, true
}

// Degree returns the out-degree of the node.
func (t *Tables) Degree(id NodeID) int { return int(t.degree[id]) }

// GoodDirs appends the good directions (Definition 5) for a packet at
// `from` destined to dst, in the same order Mesh.GoodDirs produces them:
// by axis, "+" before "-" on a torus tie.
func (t *Tables) GoodDirs(from, dst NodeID, buf []Dir) []Dir {
	cf := t.coord[int(from)*t.dim:]
	cd := t.coord[int(dst)*t.dim:]
	if !t.wrap {
		for a := 0; a < t.dim; a++ {
			f, d := cf[a], cd[a]
			if f == d {
				continue
			}
			if f < d {
				buf = append(buf, Dir(2*a))
			} else {
				buf = append(buf, Dir(2*a+1))
			}
		}
		return buf
	}
	for a := 0; a < t.dim; a++ {
		fwd := cd[a] - cf[a]
		if fwd == 0 {
			continue
		}
		if fwd < 0 {
			fwd += t.side
		}
		switch {
		case 2*fwd < t.side:
			buf = append(buf, Dir(2*a))
		case 2*fwd > t.side:
			buf = append(buf, Dir(2*a+1))
		default: // exactly opposite on the ring: both ways are shortest
			buf = append(buf, Dir(2*a), Dir(2*a+1))
		}
	}
	return buf
}

// GoodDirsInto writes the good directions for a packet at `from` destined
// to dst into buf (which always has room: at most 2 per axis) and returns
// the count, in the same order as GoodDirs. The fixed-array form avoids the
// slice-append bookkeeping on the per-packet hot path.
func (t *Tables) GoodDirsInto(from, dst NodeID, buf *[2 * MaxDim]Dir) int {
	cf := t.coord[int(from)*t.dim:]
	cd := t.coord[int(dst)*t.dim:]
	n := 0
	if !t.wrap {
		for a := 0; a < t.dim; a++ {
			f, d := cf[a], cd[a]
			if f == d {
				continue
			}
			if f < d {
				buf[n] = Dir(2 * a)
			} else {
				buf[n] = Dir(2*a + 1)
			}
			n++
		}
		return n
	}
	for a := 0; a < t.dim; a++ {
		fwd := cd[a] - cf[a]
		if fwd == 0 {
			continue
		}
		if fwd < 0 {
			fwd += t.side
		}
		switch {
		case 2*fwd < t.side:
			buf[n] = Dir(2 * a)
			n++
		case 2*fwd > t.side:
			buf[n] = Dir(2*a + 1)
			n++
		default: // exactly opposite on the ring: both ways are shortest
			buf[n] = Dir(2 * a)
			buf[n+1] = Dir(2*a + 1)
			n += 2
		}
	}
	return n
}

// GoodDirCount returns the number of good directions for a packet at `from`
// destined to dst.
func (t *Tables) GoodDirCount(from, dst NodeID) int {
	cf := t.coord[int(from)*t.dim:]
	cd := t.coord[int(dst)*t.dim:]
	cnt := 0
	if !t.wrap {
		for a := 0; a < t.dim; a++ {
			if cf[a] != cd[a] {
				cnt++
			}
		}
		return cnt
	}
	for a := 0; a < t.dim; a++ {
		fwd := cd[a] - cf[a]
		if fwd == 0 {
			continue
		}
		if fwd < 0 {
			fwd += t.side
		}
		if 2*fwd == t.side {
			cnt += 2
		} else {
			cnt++
		}
	}
	return cnt
}

// IsGoodDir reports whether dir is a good direction for a packet at `from`
// destined to dst.
func (t *Tables) IsGoodDir(from, dst NodeID, dir Dir) bool {
	a := int(dir) >> 1
	f := t.coord[int(from)*t.dim+a]
	d := t.coord[int(dst)*t.dim+a]
	if f == d {
		return false
	}
	if !t.wrap {
		if dir&1 == 0 {
			return f < d
		}
		return f > d
	}
	fwd := d - f
	if fwd < 0 {
		fwd += t.side
	}
	if dir&1 == 0 {
		return 2*fwd <= t.side
	}
	return 2*fwd >= t.side
}

var _ Topology = (*Tables)(nil)
