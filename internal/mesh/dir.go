package mesh

import "fmt"

// Dir identifies one of the 2d arc directions of a d-dimensional mesh
// (Definition 3 in the paper). Direction 2a is "+" in coordinate a
// (increasing the a-th coordinate) and direction 2a+1 is "-" in
// coordinate a. Directions partition the arcs of the mesh: every arc
// belongs to exactly one direction.
type Dir int8

// NoDir is the sentinel for "no direction", used e.g. for the entry arc of a
// freshly injected packet.
const NoDir Dir = -1

// Delta is the coordinate change along the direction's axis: +1 for a "+"
// direction, -1 for a "-" direction.
func (d Dir) Delta() int {
	if d&1 == 0 {
		return 1
	}
	return -1
}

// Axis is the coordinate index (0-based) that the direction changes.
func (d Dir) Axis() int { return int(d) >> 1 }

// Positive reports whether the direction increases its coordinate.
func (d Dir) Positive() bool { return d&1 == 0 }

// Opposite is the antiparallel direction along the same axis.
func (d Dir) Opposite() Dir { return d ^ 1 }

// String renders the direction as e.g. "+x0" or "-x2".
func (d Dir) String() string {
	if d == NoDir {
		return "none"
	}
	sign := "+"
	if !d.Positive() {
		sign = "-"
	}
	return fmt.Sprintf("%sx%d", sign, d.Axis())
}

// DirPlus returns the "+" direction of the given axis.
func DirPlus(axis int) Dir { return Dir(2 * axis) }

// DirMinus returns the "-" direction of the given axis.
func DirMinus(axis int) Dir { return Dir(2*axis + 1) }
