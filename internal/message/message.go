// Package message layers multi-flit messages on top of the single-packet
// hot-potato engine: a message of length L is segmented into L flits
// (ordinary hot-potato packets) injected back to back at its source and
// reassembled at the destination. Message latency is the arrival of the
// LAST flit; skew is the spread between first and last arrival — the
// price of flits routing independently.
//
// This is the segmentation-and-reassembly counterpoint to the contiguous
// "worms" of [BRST] ("Fast deflection routing for packets and worms",
// cited in Section 1.1): worms keep flits contiguous in the network at the
// cost of reserving paths; independent flits keep the pure hot-potato
// model (every flit moves every step, zero buffers) at the cost of
// reassembly skew. Experiment E19 quantifies that trade as a function of
// message length and load.
package message

import (
	"fmt"
	"math/rand"

	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
)

// Message is one multi-flit transfer.
type Message struct {
	// ID identifies the message.
	ID int
	// Src and Dst are the endpoints.
	Src, Dst mesh.NodeID
	// Length is the number of flits.
	Length int

	flits []*sim.Packet
}

// Injected reports how many flits have entered the network.
func (ms *Message) Injected() int { return len(ms.flits) }

// Complete reports whether every flit has arrived.
func (ms *Message) Complete() bool {
	if len(ms.flits) < ms.Length {
		return false
	}
	for _, f := range ms.flits {
		if !f.Arrived() {
			return false
		}
	}
	return true
}

// Latency returns the arrival step of the last flit (message completion),
// or -1 if incomplete.
func (ms *Message) Latency() int {
	if !ms.Complete() {
		return -1
	}
	last := 0
	for _, f := range ms.flits {
		if f.ArrivedAt > last {
			last = f.ArrivedAt
		}
	}
	return last
}

// Skew returns the spread between the first and last flit arrival, or -1
// if incomplete. Zero skew means the flits arrived as contiguously as a
// worm would deliver them.
func (ms *Message) Skew() int {
	if !ms.Complete() {
		return -1
	}
	first, last := int(^uint(0)>>1), 0
	for _, f := range ms.flits {
		if f.ArrivedAt < first {
			first = f.ArrivedAt
		}
		if f.ArrivedAt > last {
			last = f.ArrivedAt
		}
	}
	return last - first
}

// Source injects a batch of messages flit by flit: each message emits one
// flit per step (as source capacity allows) until all its flits are in
// flight. It implements sim.Injector.
type Source struct {
	messages []*Message
	pending  []int // indices of messages with flits left to inject
}

var _ sim.Injector = (*Source)(nil)

// NewSource builds an injector for the given messages. Lengths must be
// positive and endpoints valid for the mesh the engine runs on.
func NewSource(m *mesh.Mesh, messages []*Message) (*Source, error) {
	ids := map[int]bool{}
	s := &Source{messages: messages}
	for i, ms := range messages {
		if ms == nil {
			return nil, fmt.Errorf("message: nil message")
		}
		if ms.Length < 1 {
			return nil, fmt.Errorf("message %d: length %d", ms.ID, ms.Length)
		}
		if err := m.CheckID(ms.Src); err != nil {
			return nil, fmt.Errorf("message %d source: %w", ms.ID, err)
		}
		if err := m.CheckID(ms.Dst); err != nil {
			return nil, fmt.Errorf("message %d destination: %w", ms.ID, err)
		}
		if ids[ms.ID] {
			return nil, fmt.Errorf("message: duplicate id %d", ms.ID)
		}
		ids[ms.ID] = true
		s.pending = append(s.pending, i)
	}
	return s, nil
}

// Inject implements sim.Injector: one flit per pending message per step,
// respecting the per-node injection capacity.
func (s *Source) Inject(t int, e sim.InjectorHost, rng *rand.Rand) []*sim.Packet {
	var out []*sim.Packet
	used := map[mesh.NodeID]int{}
	remaining := s.pending[:0]
	for _, mi := range s.pending {
		ms := s.messages[mi]
		if e.InjectionCapacity(ms.Src)-used[ms.Src] <= 0 {
			remaining = append(remaining, mi)
			continue // source saturated this step; retry next step
		}
		used[ms.Src]++
		flit := sim.NewPacket(e.NextPacketID(), ms.Src, ms.Dst)
		ms.flits = append(ms.flits, flit)
		out = append(out, flit)
		if len(ms.flits) < ms.Length {
			remaining = append(remaining, mi)
		}
	}
	s.pending = remaining
	return out
}

// Exhausted implements sim.Injector.
func (s *Source) Exhausted(t int) bool { return len(s.pending) == 0 }

// Stats summarizes a completed batch of messages.
type Stats struct {
	// Complete counts fully delivered messages.
	Complete int
	// MeanLatency and MaxLatency are over complete messages.
	MeanLatency float64
	MaxLatency  int
	// MeanSkew and MaxSkew measure reassembly spread.
	MeanSkew float64
	MaxSkew  int
}

// Summarize computes batch statistics.
func Summarize(messages []*Message) Stats {
	var st Stats
	for _, ms := range messages {
		if !ms.Complete() {
			continue
		}
		st.Complete++
		l, k := ms.Latency(), ms.Skew()
		st.MeanLatency += float64(l)
		st.MeanSkew += float64(k)
		if l > st.MaxLatency {
			st.MaxLatency = l
		}
		if k > st.MaxSkew {
			st.MaxSkew = k
		}
	}
	if st.Complete > 0 {
		st.MeanLatency /= float64(st.Complete)
		st.MeanSkew /= float64(st.Complete)
	}
	return st
}

// RandomBatch builds count messages with distinct random sources, uniform
// random destinations and the given flit length.
func RandomBatch(m *mesh.Mesh, count, length int, rng *rand.Rand) ([]*Message, error) {
	if count < 0 || count > m.Size() {
		return nil, fmt.Errorf("message: count %d outside [0, %d]", count, m.Size())
	}
	srcs := rng.Perm(m.Size())[:count]
	out := make([]*Message, count)
	for i, s := range srcs {
		dst := mesh.NodeID(rng.Intn(m.Size()))
		for dst == mesh.NodeID(s) {
			dst = mesh.NodeID(rng.Intn(m.Size()))
		}
		out[i] = &Message{ID: i, Src: mesh.NodeID(s), Dst: dst, Length: length}
	}
	return out, nil
}
