package message

import (
	"math/rand"
	"testing"

	"hotpotato/internal/core"
	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
)

func runBatch(t *testing.T, m *mesh.Mesh, messages []*Message, seed int64) *sim.Result {
	t.Helper()
	src, err := NewSource(m, messages)
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.New(m, core.NewRestrictedPriority(), nil, sim.Options{
		Seed:       seed,
		Validation: sim.ValidateRestricted,
		MaxSteps:   100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.SetInjector(src)
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestNewSourceValidation(t *testing.T) {
	m := mesh.MustNew(2, 6)
	cases := [][]*Message{
		{nil},
		{{ID: 0, Src: 0, Dst: 1, Length: 0}},
		{{ID: 0, Src: -1, Dst: 1, Length: 1}},
		{{ID: 0, Src: 0, Dst: 99, Length: 1}},
		{{ID: 0, Src: 0, Dst: 1, Length: 1}, {ID: 0, Src: 2, Dst: 3, Length: 1}},
	}
	for i, msgs := range cases {
		if _, err := NewSource(m, msgs); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestSingleMessageDelivery(t *testing.T) {
	m := mesh.MustNew(2, 8)
	ms := &Message{ID: 0, Src: m.ID([]int{0, 0}), Dst: m.ID([]int{5, 0}), Length: 4}
	runBatch(t, m, []*Message{ms}, 1)
	if !ms.Complete() {
		t.Fatalf("message incomplete: %d/%d flits", ms.Injected(), ms.Length)
	}
	// Flits leave one per step starting at t=0, last at t=3, each needs 5
	// hops with no contention: latency = 3 + 5 = 8, skew = 3.
	if ms.Latency() != 8 {
		t.Errorf("Latency = %d, want 8", ms.Latency())
	}
	if ms.Skew() != 3 {
		t.Errorf("Skew = %d, want 3", ms.Skew())
	}
}

func TestIncompleteAccessors(t *testing.T) {
	ms := &Message{ID: 0, Src: 0, Dst: 1, Length: 3}
	if ms.Complete() || ms.Latency() != -1 || ms.Skew() != -1 {
		t.Error("incomplete message reported complete state")
	}
}

func TestBatchDelivery(t *testing.T) {
	m := mesh.MustNew(2, 8)
	rng := rand.New(rand.NewSource(2))
	messages, err := RandomBatch(m, 20, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	res := runBatch(t, m, messages, 2)
	if res.Total != 20*6 {
		t.Fatalf("injected %d flits, want 120", res.Total)
	}
	st := Summarize(messages)
	if st.Complete != 20 {
		t.Fatalf("%d/20 complete", st.Complete)
	}
	if st.MeanLatency <= 0 || st.MaxLatency < int(st.MeanLatency) {
		t.Errorf("latency stats inconsistent: %+v", st)
	}
	// Skew cannot be negative and for L flits injected over L steps it is
	// at least L-1 minus overtaking... at least 0.
	if st.MeanSkew < 0 {
		t.Errorf("negative skew: %+v", st)
	}
}

func TestRandomBatchValidation(t *testing.T) {
	m := mesh.MustNew(2, 4)
	rng := rand.New(rand.NewSource(3))
	if _, err := RandomBatch(m, m.Size()+1, 2, rng); err == nil {
		t.Error("oversized batch accepted")
	}
	msgs, err := RandomBatch(m, 5, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[mesh.NodeID]bool{}
	for _, ms := range msgs {
		if seen[ms.Src] {
			t.Error("duplicate source")
		}
		seen[ms.Src] = true
		if ms.Src == ms.Dst {
			t.Error("self-addressed message")
		}
	}
}

// TestSourceRespectsCapacity: many messages sharing one source node inject
// without ever exceeding the node's out-degree.
func TestSourceRespectsCapacity(t *testing.T) {
	m := mesh.MustNew(2, 8)
	src := m.ID([]int{4, 4})
	var messages []*Message
	for i := 0; i < 6; i++ {
		messages = append(messages, &Message{
			ID: i, Src: src, Dst: m.ID([]int{(i * 2) % 8, 7}), Length: 3,
		})
	}
	res := runBatch(t, m, messages, 4)
	if res.Total != 18 || res.Delivered != 18 {
		t.Fatalf("flits %d delivered %d, want 18/18", res.Total, res.Delivered)
	}
	st := Summarize(messages)
	if st.Complete != 6 {
		t.Fatalf("%d/6 complete", st.Complete)
	}
}
