// Package profiling wires the conventional -cpuprofile / -memprofile flags
// into the command-line tools, so hot-path regressions in sweeps and
// experiment runs can be diagnosed with `go tool pprof` without editing
// code.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath (when non-empty) and returns a
// stop function that ends the CPU profile and writes a heap profile into
// memPath (when non-empty). Either path may be empty; with both empty the
// returned stop is a no-op. The stop function must be called exactly once,
// typically deferred right after flag parsing.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			defer f.Close()
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		return nil
	}, nil
}
