package checkpoint

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"hotpotato/internal/mesh"
	"hotpotato/internal/routing"
	"hotpotato/internal/sim"
	"hotpotato/internal/workload"
)

// midRunSnapshot builds an engine, steps it partway, and returns the
// snapshot plus the engine's state hash at the capture point.
func midRunSnapshot(t *testing.T) (*sim.Snapshot, uint64, *mesh.Mesh, sim.Options) {
	t.Helper()
	m := mesh.MustNew(2, 8)
	rng := rand.New(rand.NewSource(4))
	packets, err := workload.UniformRandom(m, 48, rng)
	if err != nil {
		t.Fatal(err)
	}
	opts := sim.Options{Seed: 4, Validation: sim.ValidateGreedy, MaxSteps: 4000, DetectLivelock: true}
	e, err := sim.New(m, routing.NewRandomGreedy(), packets, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	s, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return s, e.StateHash(), m, opts
}

// TestRoundTripFormats: both encodings reproduce the snapshot exactly and a
// restored engine lands on the snapshotted state hash.
func TestRoundTripFormats(t *testing.T) {
	snap, hash, m, opts := midRunSnapshot(t)
	for _, format := range []Format{JSON, Binary} {
		t.Run(string(rune(format)), func(t *testing.T) {
			var buf bytes.Buffer
			if err := Write(&buf, snap, format); err != nil {
				t.Fatal(err)
			}
			got, err := Read(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, snap) {
				t.Fatalf("round-trip changed the snapshot:\ngot  %+v\nwant %+v", got, snap)
			}
			e, err := sim.New(m, routing.NewRandomGreedy(), nil, opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := e.Restore(got); err != nil {
				t.Fatal(err)
			}
			if e.StateHash() != hash {
				t.Fatalf("restored hash %#x, want %#x", e.StateHash(), hash)
			}
		})
	}
}

// TestSaveLoadAtomic: Save writes through a temp file + rename; Load reads
// it back; a failed Save leaves no temp litter.
func TestSaveLoadAtomic(t *testing.T) {
	snap, _, _, _ := midRunSnapshot(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	if err := Save(path, snap, Binary); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, snap) {
		t.Fatal("Save/Load changed the snapshot")
	}
	// Overwrite with the other format; Load must sniff it.
	if err := Save(path, snap, JSON); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp litter left behind: %v", entries)
	}
}

// TestReadRejectsCorruption: garbage, truncation, flipped bytes, a future
// container version and an unknown format byte all fail with ErrBadFile.
func TestReadRejectsCorruption(t *testing.T) {
	snap, _, _, _ := midRunSnapshot(t)
	var buf bytes.Buffer
	if err := Write(&buf, snap, Binary); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	corrupt := func(mutate func(b []byte)) []byte {
		b := append([]byte(nil), good...)
		mutate(b)
		return b
	}
	cases := map[string][]byte{
		"empty":          {},
		"bad magic":      corrupt(func(b []byte) { b[0] = 'X' }),
		"future version": corrupt(func(b []byte) { b[5] = 99 }),
		"bad format":     corrupt(func(b []byte) { b[4] = 'Z' }),
		"flipped bit":    corrupt(func(b []byte) { b[len(b)-1] ^= 0x40 }),
		"truncated":      good[:len(good)-7],
		"not a file":     []byte("hello world, definitely not a checkpoint"),
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Read(bytes.NewReader(data)); !errors.Is(err, ErrBadFile) {
				t.Errorf("Read(%s) err = %v, want ErrBadFile", name, err)
			}
		})
	}
}

// TestLoadMissingFile: a missing path surfaces the os error, not a panic.
func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.ckpt")); err == nil {
		t.Fatal("Load of missing file succeeded")
	}
}
