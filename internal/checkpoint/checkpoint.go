// Package checkpoint persists checkpoint values — engine snapshots
// (sim.Snapshot) and, via the generic WriteValue/ReadValue pair, any other
// serializable run state such as the sharded engine's per-shard files — as
// versioned checkpoint files, so long runs survive crashes and signals: the
// state is captured between steps, written atomically, and restored
// bit-identically on resume (see sim.Engine.Snapshot/Restore for the parity
// contract).
//
// The container format is a fixed header — magic "HPCK", one format byte,
// a little-endian uint32 container version, a little-endian uint32 IEEE
// CRC of the payload — followed by the encoded snapshot. Two payload
// encodings exist: JSON (debuggable, diffable, the default for files
// humans may inspect) and binary (gob; smaller and faster for high-
// frequency checkpointing). Read sniffs the format from the header, so
// callers never need to know which encoding produced a file.
//
// The container version covers the envelope; the snapshot's own schema
// version rides inside the payload and is enforced by sim.Engine.Restore.
// Both are checked on load, so a checkpoint from a future build fails
// loudly instead of restoring garbage.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"hotpotato/internal/sim"
)

// Version is the container-format version written into every checkpoint.
const Version = 1

// Format selects the payload encoding.
type Format byte

const (
	// JSON encodes the snapshot as JSON: human-readable and stable across
	// Go versions, the right choice for checkpoints kept around or debugged.
	JSON Format = 'J'
	// Binary encodes the snapshot with encoding/gob: compact and fast, the
	// right choice for high-frequency periodic checkpointing.
	Binary Format = 'B'
)

var magic = [4]byte{'H', 'P', 'C', 'K'}

// ErrBadFile is returned by Read/Load for files that are not checkpoints,
// are truncated or corrupt, or come from a future container version.
var ErrBadFile = errors.New("checkpoint: not a valid checkpoint file")

// WriteValue encodes any checkpointable value into w inside the HPCK
// envelope. The envelope authenticates the container (magic, format byte,
// container version, payload CRC); any schema versioning of the value
// itself rides inside the payload and is the caller's contract — exactly
// how Read enforces sim.SnapshotVersion for engine snapshots.
func WriteValue(w io.Writer, v any, format Format) error {
	var payload bytes.Buffer
	switch format {
	case JSON:
		enc := json.NewEncoder(&payload)
		enc.SetIndent("", "  ")
		if err := enc.Encode(v); err != nil {
			return fmt.Errorf("checkpoint: encode: %w", err)
		}
	case Binary:
		if err := gob.NewEncoder(&payload).Encode(v); err != nil {
			return fmt.Errorf("checkpoint: encode: %w", err)
		}
	default:
		return fmt.Errorf("checkpoint: unknown format %q", byte(format))
	}

	var hdr [13]byte
	copy(hdr[:4], magic[:])
	hdr[4] = byte(format)
	binary.LittleEndian.PutUint32(hdr[5:9], Version)
	binary.LittleEndian.PutUint32(hdr[9:13], crc32.ChecksumIEEE(payload.Bytes()))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("checkpoint: write header: %w", err)
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("checkpoint: write payload: %w", err)
	}
	return nil
}

// ReadValue decodes a checkpoint produced by WriteValue into v (a non-nil
// pointer), sniffing the payload format from the header and verifying the
// container version and checksum.
func ReadValue(r io.Reader, v any) error {
	var hdr [13]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return fmt.Errorf("%w: short header: %v", ErrBadFile, err)
	}
	if !bytes.Equal(hdr[:4], magic[:]) {
		return fmt.Errorf("%w: bad magic %q", ErrBadFile, hdr[:4])
	}
	format := Format(hdr[4])
	if ver := binary.LittleEndian.Uint32(hdr[5:9]); ver != Version {
		return fmt.Errorf("%w: container version %d, this build reads %d", ErrBadFile, ver, Version)
	}
	payload, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("%w: read payload: %v", ErrBadFile, err)
	}
	if sum := crc32.ChecksumIEEE(payload); sum != binary.LittleEndian.Uint32(hdr[9:13]) {
		return fmt.Errorf("%w: payload checksum mismatch (corrupt or truncated)", ErrBadFile)
	}

	switch format {
	case JSON:
		if err := json.Unmarshal(payload, v); err != nil {
			return fmt.Errorf("%w: decode: %v", ErrBadFile, err)
		}
	case Binary:
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
			return fmt.Errorf("%w: decode: %v", ErrBadFile, err)
		}
	default:
		return fmt.Errorf("%w: unknown format byte %q", ErrBadFile, byte(format))
	}
	return nil
}

// SaveValue writes any checkpointable value to path atomically: the bytes
// go to a temporary file in the same directory, are fsynced, and replace
// path with a rename. A crash mid-save therefore leaves the previous
// checkpoint intact — the property periodic checkpointing exists for.
func SaveValue(path string, v any, format Format) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := WriteValue(tmp, v, format); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: sync %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: close %s: %w", tmp.Name(), err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// LoadValue reads a checkpoint file written by SaveValue into v.
func LoadValue(path string, v any) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	if err := ReadValue(f, v); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

// Write encodes the engine snapshot into w in the given format.
func Write(w io.Writer, s *sim.Snapshot, format Format) error {
	return WriteValue(w, s, format)
}

// Read decodes an engine snapshot produced by Write, additionally enforcing
// the snapshot's own schema version.
func Read(r io.Reader) (*sim.Snapshot, error) {
	s := &sim.Snapshot{}
	if err := ReadValue(r, s); err != nil {
		return nil, err
	}
	if s.Version > sim.SnapshotVersion {
		return nil, fmt.Errorf("%w: snapshot schema v%d, this build reads up to v%d", ErrBadFile, s.Version, sim.SnapshotVersion)
	}
	return s, nil
}

// Save writes the engine snapshot to path atomically (see SaveValue).
func Save(path string, s *sim.Snapshot, format Format) error {
	return SaveValue(path, s, format)
}

// Load reads a checkpoint file written by Save (either format).
func Load(path string) (*sim.Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	s, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
