// Package bound computes per-instance lower bounds on routing time, valid
// for EVERY routing algorithm on the synchronous mesh model (one packet
// per directed arc per step). They contextualize measured times: a greedy
// run that matches the instance lower bound is optimal on that instance,
// whatever the worst-case theorems say.
//
// Three classical arguments are implemented:
//
//   - Distance: no packet arrives before its source-destination distance.
//   - Destination congestion: a node with in-degree g receiving c packets
//     cannot absorb them faster than ceil(c/g) steps, and the last of them
//     must also cover its distance: max over nodes of that combination.
//   - Bisection: packets that must cross an axis cut compete for the cut's
//     directed bandwidth (n^{d-1} arcs per direction per step on the mesh).
package bound

import (
	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
)

// Distance returns the max source-destination distance of the instance.
func Distance(m *mesh.Mesh, packets []*sim.Packet) int {
	lb := 0
	for _, p := range packets {
		if d := m.Dist(p.Src, p.Dst); d > lb {
			lb = d
		}
	}
	return lb
}

// DestinationCongestion returns the strongest absorption lower bound: for
// each destination v receiving c packets through in-degree g, the last
// arrival happens no earlier than ceil(c/g), and no earlier than the
// c-th-smallest... we use the simple, always-valid form
// max_v ( ceil(c_v / g_v) ) combined with the per-destination minimum
// distance: a packet for v cannot arrive before step minDist_v, and only
// g_v packets arrive per step after that, so the bound is
// minDist_v + ceil(c_v/g_v) - 1.
func DestinationCongestion(m *mesh.Mesh, packets []*sim.Packet) int {
	type destInfo struct {
		count   int
		minDist int
	}
	infos := make(map[mesh.NodeID]*destInfo)
	for _, p := range packets {
		d := m.Dist(p.Src, p.Dst)
		if d == 0 {
			continue // born at destination, absorbs at t = 0
		}
		di := infos[p.Dst]
		if di == nil {
			di = &destInfo{minDist: d}
			infos[p.Dst] = di
		}
		di.count++
		if d < di.minDist {
			di.minDist = d
		}
	}
	lb := 0
	for v, di := range infos {
		g := m.Degree(v)
		b := di.minDist + (di.count+g-1)/g - 1
		if b > lb {
			lb = b
		}
	}
	return lb
}

// Bisection returns the strongest axis-cut bound.
//
// Mesh: for every axis a and cut position c (between coordinate c and
// c+1), a packet whose source and destination lie on opposite sides must
// traverse one of the n^{d-1} directed arcs crossing the cut in its
// direction — whatever route it takes — so the cut needs at least
// ceil(crossings / n^{d-1}) steps per direction.
//
// Torus: a separated packet may instead go around through the wraparound
// cut, and in either rotational direction, so each separated packet is
// only guaranteed to cross the *pair* {cut c, wrap cut} once, through one
// of its 4*n^{d-1} directed arcs: the bound divides by that.
func Bisection(m *mesh.Mesh, packets []*sim.Packet) int {
	bandwidth := m.Size() / m.Side() // n^{d-1} arcs per direction per cut
	lb := 0
	for a := 0; a < m.Dim(); a++ {
		crossLR := make([]int, m.Side()-1)
		crossRL := make([]int, m.Side()-1)
		for _, p := range packets {
			cs := m.CoordAxis(p.Src, a)
			cd := m.CoordAxis(p.Dst, a)
			if cs == cd {
				continue
			}
			lo, hi := cs, cd
			dirLR := true
			if lo > hi {
				lo, hi = hi, lo
				dirLR = false
			}
			for c := lo; c < hi; c++ {
				if dirLR {
					crossLR[c]++
				} else {
					crossRL[c]++
				}
			}
		}
		for c := range crossLR {
			if m.Wrap() {
				// Pair {cut c, wrap}: total separated packets over the
				// pair's full directed bandwidth.
				cross := crossLR[c] + crossRL[c]
				if b := (cross + 4*bandwidth - 1) / (4 * bandwidth); b > lb {
					lb = b
				}
				continue
			}
			for _, cross := range []int{crossLR[c], crossRL[c]} {
				if b := (cross + bandwidth - 1) / bandwidth; b > lb {
					lb = b
				}
			}
		}
	}
	return lb
}

// Instance returns the strongest of the implemented lower bounds.
func Instance(m *mesh.Mesh, packets []*sim.Packet) int {
	lb := Distance(m, packets)
	if b := DestinationCongestion(m, packets); b > lb {
		lb = b
	}
	if b := Bisection(m, packets); b > lb {
		lb = b
	}
	return lb
}
