package bound

import (
	"math/rand"
	"testing"

	"hotpotato/internal/core"
	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
	"hotpotato/internal/workload"
)

func TestDistance(t *testing.T) {
	m := mesh.MustNew(2, 8)
	packets := []*sim.Packet{
		sim.NewPacket(0, m.ID([]int{0, 0}), m.ID([]int{3, 2})),
		sim.NewPacket(1, m.ID([]int{7, 7}), m.ID([]int{0, 0})),
	}
	if got := Distance(m, packets); got != 14 {
		t.Errorf("Distance = %d, want 14", got)
	}
	if got := Distance(m, nil); got != 0 {
		t.Errorf("Distance(nil) = %d", got)
	}
}

func TestDestinationCongestion(t *testing.T) {
	m := mesh.MustNew(2, 8)
	target := m.ID([]int{4, 4}) // interior, in-degree 4
	var packets []*sim.Packet
	// 8 packets to one node, all from distance >= 2: absorption needs
	// ceil(8/4) = 2 steps starting no earlier than minDist: LB = 2 + 2 - 1.
	srcs := [][]int{{2, 4}, {6, 4}, {4, 2}, {4, 6}, {3, 3}, {5, 5}, {3, 5}, {5, 3}}
	for i, s := range srcs {
		packets = append(packets, sim.NewPacket(i, m.ID(s), target))
	}
	if got := DestinationCongestion(m, packets); got != 3 {
		t.Errorf("DestinationCongestion = %d, want 3", got)
	}
	// Corner destination: in-degree 2.
	corner := m.ID([]int{0, 0})
	packets = nil
	for i, s := range [][]int{{1, 0}, {0, 1}, {1, 1}, {2, 0}} {
		packets = append(packets, sim.NewPacket(i, m.ID(s), corner))
	}
	// minDist 1, ceil(4/2) = 2 -> 1 + 2 - 1 = 2.
	if got := DestinationCongestion(m, packets); got != 2 {
		t.Errorf("corner congestion = %d, want 2", got)
	}
	// Born-at-destination packets are ignored.
	if got := DestinationCongestion(m, []*sim.Packet{sim.NewPacket(0, corner, corner)}); got != 0 {
		t.Errorf("self packet congestion = %d", got)
	}
}

func TestBisectionMesh(t *testing.T) {
	m := mesh.MustNew(2, 4) // bandwidth per direction per cut: 4
	var packets []*sim.Packet
	// 9 packets from column 0 to column 3: every cut on axis 0 sees 9
	// left-to-right crossings -> ceil(9/4) = 3.
	id := 0
	for i := 0; i < 9; i++ {
		src := m.ID([]int{0, i % 4})
		dst := m.ID([]int{3, (i + 1) % 4})
		packets = append(packets, sim.NewPacket(id, src, dst))
		id++
	}
	if got := Bisection(m, packets); got != 3 {
		t.Errorf("Bisection = %d, want 3", got)
	}
	// Opposite-direction traffic does not share the budget.
	for i := 0; i < 4; i++ {
		packets = append(packets, sim.NewPacket(id, m.ID([]int{3, i}), m.ID([]int{0, i})))
		id++
	}
	if got := Bisection(m, packets); got != 3 {
		t.Errorf("Bisection with reverse traffic = %d, want 3", got)
	}
}

func TestBisectionTorus(t *testing.T) {
	m := mesh.MustNewTorus(2, 4)
	var packets []*sim.Packet
	// 17 packets from column 0 to column 2: separated at cuts 0 and 1;
	// pair bandwidth 4*4 = 16 -> ceil(17/16) = 2.
	for i := 0; i < 17; i++ {
		packets = append(packets, sim.NewPacket(i, m.ID([]int{0, i % 4}), m.ID([]int{2, (i + 1) % 4})))
	}
	if got := Bisection(m, packets); got != 2 {
		t.Errorf("torus Bisection = %d, want 2", got)
	}
}

func TestInstancePicksStrongest(t *testing.T) {
	m := mesh.MustNew(2, 8)
	// Single faraway packet: distance dominates.
	p := []*sim.Packet{sim.NewPacket(0, m.ID([]int{0, 0}), m.ID([]int{7, 7}))}
	if got := Instance(m, p); got != 14 {
		t.Errorf("Instance = %d, want 14", got)
	}
	// Single-target pile-up: congestion dominates.
	rng := rand.New(rand.NewSource(1))
	st, err := workload.SingleTarget(m, 40, m.ID([]int{4, 4}), rng)
	if err != nil {
		t.Fatal(err)
	}
	if got, dist := Instance(m, st), Distance(m, st); got <= dist {
		t.Errorf("Instance = %d should exceed pure distance %d on single-target", got, dist)
	}
}

// TestLowerBoundNeverExceedsMeasured: the whole point of a lower bound —
// check against real runs across assorted instances and both networks.
func TestLowerBoundNeverExceedsMeasured(t *testing.T) {
	for _, wrap := range []bool{false, true} {
		var m *mesh.Mesh
		if wrap {
			m = mesh.MustNewTorus(2, 8)
		} else {
			m = mesh.MustNew(2, 8)
		}
		for seed := int64(0); seed < 5; seed++ {
			rng := rand.New(rand.NewSource(seed))
			instances := [][]*sim.Packet{}
			if ps, err := workload.UniformRandom(m, 60, rng); err == nil {
				instances = append(instances, ps)
			}
			instances = append(instances, workload.Permutation(m, rng))
			if ps, err := workload.SingleTarget(m, 30, 27, rng); err == nil {
				instances = append(instances, ps)
			}
			for _, packets := range instances {
				lb := Instance(m, packets)
				e, err := sim.New(m, core.NewRestrictedPriority(), packets, sim.Options{
					Seed: seed, Validation: sim.ValidateGreedy,
				})
				if err != nil {
					t.Fatal(err)
				}
				res, err := e.Run()
				if err != nil {
					t.Fatal(err)
				}
				if res.Delivered == res.Total && res.Steps < lb {
					t.Fatalf("wrap=%v seed=%d: measured %d < lower bound %d", wrap, seed, res.Steps, lb)
				}
			}
		}
	}
}
