package spec

import (
	"math/rand"
	"testing"

	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
)

// TestEveryPolicyRoutes builds every registered policy and runs a small
// instance under strict validation, so a registry entry wired to the wrong
// constructor fails here rather than in a user's hands.
func TestEveryPolicyRoutes(t *testing.T) {
	m, err := mesh.New(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range PolicyNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			pol, err := NewPolicy(name)
			if err != nil {
				t.Fatal(err)
			}
			pkts, err := NewWorkload("uniform", m, 24, rand.New(rand.NewSource(7)))
			if err != nil {
				t.Fatal(err)
			}
			e, err := sim.New(m, pol, pkts, sim.Options{Seed: 7, Validation: sim.ValidateGreedy, DetectLivelock: true})
			if err != nil {
				t.Fatal(err)
			}
			res, err := e.Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.Delivered+res.Dropped+res.Absorbed == 0 && !res.Livelocked && !res.HitMaxSteps {
				t.Fatalf("policy %s: nothing happened: %+v", name, res)
			}
		})
	}
}

func TestEveryWorkloadGenerates(t *testing.T) {
	m, err := mesh.New(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range WorkloadNames() {
		pkts, err := NewWorkload(name, m, 16, rand.New(rand.NewSource(3)))
		if err != nil {
			t.Fatalf("workload %s: %v", name, err)
		}
		if len(pkts) == 0 && name != "none" {
			t.Fatalf("workload %s generated no packets", name)
		}
	}
}

func TestUnknownNames(t *testing.T) {
	if _, err := NewPolicy("nope"); err == nil {
		t.Error("NewPolicy accepted an unknown name")
	}
	if _, err := NewWorkload("nope", nil, 0, nil); err == nil {
		t.Error("NewWorkload accepted an unknown name")
	}
	if _, err := ParseValidation("nope"); err == nil {
		t.Error("ParseValidation accepted an unknown name")
	}
	if _, err := ParseFate("nope"); err == nil {
		t.Error("ParseFate accepted an unknown name")
	}
}

func TestNewFaults(t *testing.T) {
	m, err := mesh.New(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if f, err := NewFaults(m, FaultConfig{}); err != nil || f != nil {
		t.Fatalf("empty config: got model %v, err %v", f, err)
	}
	f, err := NewFaults(m, FaultConfig{Rate: 0.01, Repair: 0.1, CrashRate: 0.001, Script: "3 node-down 5\n9 node-up 5\n"})
	if err != nil {
		t.Fatal(err)
	}
	if f == nil {
		t.Fatal("composite config produced no model")
	}
	if _, err := NewFaults(m, FaultConfig{Script: "bogus line"}); err == nil {
		t.Error("bad script accepted")
	}
	if _, err := NewFaults(m, FaultConfig{Rate: -1}); err == nil {
		t.Error("negative rate accepted")
	}
}
