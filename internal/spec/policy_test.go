package spec

import (
	"reflect"
	"strings"
	"testing"
)

func TestParsePolicySpec(t *testing.T) {
	cases := []struct {
		in   string
		want PolicySpec
	}{
		{"restricted", PolicySpec{Name: "restricted"}},
		{" restricted ", PolicySpec{Name: "restricted"}},
		{"weighted:age=1", PolicySpec{Name: "weighted", Params: map[string]string{"age": "1"}}},
		{"weighted:age=1,restrict=2", PolicySpec{Name: "weighted", Params: map[string]string{"age": "1", "restrict": "2"}}},
	}
	for _, tc := range cases {
		got, err := ParsePolicySpec(tc.in)
		if err != nil {
			t.Errorf("ParsePolicySpec(%q): %v", tc.in, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParsePolicySpec(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

// TestPolicySpecErrors pins the unified error format, including the
// satellite fix: unknown key=val parameters on a non-parameterized policy
// are rejected with the "(takes no parameters)" form — never clamped,
// never ignored.
func TestPolicySpecErrors(t *testing.T) {
	cases := []struct {
		in      string
		errPart string
	}{
		{"", "empty policy name"},
		{":age=1", "empty policy name"},
		{"no-such-policy", `unknown policy "no-such-policy"`},
		{"restricted:age=1", `unknown parameter "age" (takes no parameters)`},
		{"oldest:foo=3", `unknown parameter "foo" (takes no parameters)`},
		{"weighted:bogus=1", `unknown parameter "bogus" (have: age, defl, dist, restrict)`},
		{"weighted:age=zap", `parameter "age"`},
		{"weighted:age=1e99", `parameter "age"`},
		{"weighted:age", `bad parameter "age" (want key=value)`},
	}
	for _, tc := range cases {
		_, err := NewPolicy(tc.in)
		if err == nil {
			t.Errorf("NewPolicy(%q): expected error containing %q, got nil", tc.in, tc.errPart)
			continue
		}
		if !strings.Contains(err.Error(), tc.errPart) {
			t.Errorf("NewPolicy(%q) error %q does not contain %q", tc.in, err, tc.errPart)
		}
		if !strings.HasPrefix(err.Error(), "spec: ") {
			t.Errorf("NewPolicy(%q) error %q is not in the unified 'spec: ...' format", tc.in, err)
		}
	}
}

// TestWeightedPolicyCanonicalName: every spelling of the same weights
// resolves to the same canonical policy name, so checkpoints written under
// one spelling restore under any other.
func TestWeightedPolicyCanonicalName(t *testing.T) {
	specs := []string{
		"weighted:age=1,restrict=2",
		"weighted:restrict=2,age=1",
		"weighted:age=1,restrict=2,dist=0,defl=0",
	}
	const want = "weighted:age=1,defl=0,dist=0,restrict=2"
	for _, s := range specs {
		pol, err := NewPolicy(s)
		if err != nil {
			t.Fatalf("NewPolicy(%q): %v", s, err)
		}
		if pol.Name() != want {
			t.Errorf("NewPolicy(%q).Name() = %q, want %q", s, pol.Name(), want)
		}
	}
}

func TestCheckPolicy(t *testing.T) {
	for _, good := range []string{"restricted", "weighted:age=1", "random"} {
		if err := CheckPolicy(good); err != nil {
			t.Errorf("CheckPolicy(%q): %v", good, err)
		}
	}
	for _, bad := range []string{"", "nope", "restricted:x=1", "weighted:age=bogus"} {
		if err := CheckPolicy(bad); err == nil {
			t.Errorf("CheckPolicy(%q): expected error", bad)
		}
	}
}

// TestPolicyFactoryParameterized: the factory produces independent policy
// instances for parameterized specs, and the legacy plain names keep
// working through the same path.
func TestPolicyFactoryParameterized(t *testing.T) {
	mk, err := PolicyFactory("weighted:age=1")
	if err != nil {
		t.Fatal(err)
	}
	a, b := mk(), mk()
	if a == b {
		t.Fatal("factory returned the same instance twice")
	}
	if a.Name() != b.Name() {
		t.Fatalf("instances disagree on name: %q vs %q", a.Name(), b.Name())
	}
	if _, err := PolicyFactory("weighted:age=oops"); err == nil {
		t.Fatal("factory should validate eagerly")
	}
}

// FuzzParsePolicySpec: the parser must never panic, and anything it accepts
// must render back to a string it accepts and parses identically.
func FuzzParsePolicySpec(f *testing.F) {
	seeds := []string{
		"restricted", "oldest", "weighted:age=1", "weighted:age=1,restrict=2",
		"weighted:age=-0.5,defl=0.25,dist=3,restrict=0",
		"bogus", "a:b=c", ":", "x:", "a:b", "a:b=", "a:=c", "a,b",
		"restricted:x=1", "weighted:age=1e99", "weighted:age=",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		ps, err := ParsePolicySpec(s)
		if err != nil {
			return
		}
		if err := ps.Validate(); err != nil {
			return
		}
		text := ps.String()
		back, err := ParsePolicySpec(text)
		if err != nil {
			t.Fatalf("accepted %q but rejected its rendering %q: %v", s, text, err)
		}
		if err := back.Validate(); err != nil {
			t.Fatalf("rendering %q of valid %q fails validation: %v", text, s, err)
		}
		if !reflect.DeepEqual(ps, back) {
			t.Fatalf("rendering changed the spec: %+v != %+v", back, ps)
		}
	})
}
