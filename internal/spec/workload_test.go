package spec

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"hotpotato/internal/mesh"
)

// sampleValue renders a legal value for a parameter, preferring something
// different from the default so round trips are not trivially empty.
func sampleValue(d ParamDef) string {
	switch d.Type {
	case "enum":
		return d.Enum[0]
	case "string":
		if d.Default != "" {
			return d.Default
		}
		return "x"
	default:
		if d.Default != "" {
			return d.Default
		}
		if d.Min != nil {
			if d.MinExcl {
				return "1"
			}
			return "1"
		}
		return "1"
	}
}

// TestWorkloadSpecFlagRoundTrip: every registered workload, with every
// parameter spelled out, survives String() -> ParseWorkloadSpec unchanged.
func TestWorkloadSpecFlagRoundTrip(t *testing.T) {
	for _, entry := range Catalog().Workloads {
		ws := WorkloadSpec{Name: entry.Name}
		if len(entry.Params) > 0 {
			ws.Params = map[string]string{}
			for _, d := range entry.Params {
				ws.Params[d.Name] = sampleValue(d)
			}
		}
		text := ws.String()
		back, err := ParseWorkloadSpec(text)
		if err != nil {
			t.Errorf("%s: reparse %q: %v", entry.Name, text, err)
			continue
		}
		if !reflect.DeepEqual(ws, back) {
			t.Errorf("%s: round trip %q changed: %+v != %+v", entry.Name, text, back, ws)
		}
		if err := back.Validate(); err != nil {
			t.Errorf("%s: validate after round trip: %v", entry.Name, err)
		}
	}
}

// TestArrivalSpecFlagRoundTrip: same for every arrival process, plus a
// multi-client composition.
func TestArrivalSpecFlagRoundTrip(t *testing.T) {
	var names []string
	for _, entry := range Catalog().Arrivals {
		as := ArrivalSpec{Process: entry.Name}
		if len(entry.Params) > 0 {
			as.Params = map[string]string{}
			for _, d := range entry.Params {
				as.Params[d.Name] = sampleValue(d)
			}
		}
		text := as.String()
		back, err := ParseArrivalSpec(text)
		if err != nil {
			t.Errorf("%s: reparse %q: %v", entry.Name, text, err)
			continue
		}
		if back == nil || !reflect.DeepEqual(as, *back) {
			t.Errorf("%s: round trip %q changed: %+v != %+v", entry.Name, text, back, as)
		}
		names = append(names, entry.Name)
	}
	// Composite: two clients joined by ';'.
	text := "poisson:rate=0.1,until=50;adversary:rho=2,sigma=4"
	as, err := ParseArrivalSpec(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(as.Clients) != 2 {
		t.Fatalf("composite parsed into %d clients, want 2", len(as.Clients))
	}
	back, err := ParseArrivalSpec(as.String())
	if err != nil {
		t.Fatalf("composite reparse %q: %v", as.String(), err)
	}
	if !reflect.DeepEqual(as, back) {
		t.Errorf("composite round trip changed: %+v != %+v", back, as)
	}
	if len(names) == 0 {
		t.Fatal("catalog lists no arrival processes")
	}
}

// TestWorkloadSpecJSONGolden pins the wire format: bare names stay bare
// strings (WAL compatibility), parameterized specs use the object form,
// and both parse back to the same value.
func TestWorkloadSpecJSONGolden(t *testing.T) {
	cases := []struct {
		ws   WorkloadSpec
		want string
	}{
		{WorkloadSpec{Name: "uniform"}, `"uniform"`},
		{WorkloadSpec{}, `""`},
		{WorkloadSpec{Name: "hotspot", Params: map[string]string{"frac": "0.8"}},
			`{"name":"hotspot","params":{"frac":"0.8"}}`},
		{WorkloadSpec{Name: "none", Arrivals: &ArrivalSpec{Process: "poisson", Params: map[string]string{"rate": "0.1", "until": "50"}}},
			`{"name":"none","arrivals":{"process":"poisson","params":{"rate":"0.1","until":"50"}}}`},
	}
	for _, tc := range cases {
		got, err := json.Marshal(tc.ws)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != tc.want {
			t.Errorf("marshal %+v = %s, want %s", tc.ws, got, tc.want)
		}
		var back WorkloadSpec
		if err := json.Unmarshal(got, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", got, err)
		}
		if !reflect.DeepEqual(tc.ws, back) {
			t.Errorf("JSON round trip changed: %+v != %+v", back, tc.ws)
		}
	}
	// The bare-string form accepts flag syntax, so the two entry styles
	// (flag text and JSON) land on identical specs.
	var fromString WorkloadSpec
	if err := json.Unmarshal([]byte(`"hotspot:frac=0.8"`), &fromString); err != nil {
		t.Fatal(err)
	}
	want := WorkloadSpec{Name: "hotspot", Params: map[string]string{"frac": "0.8"}}
	if !reflect.DeepEqual(fromString, want) {
		t.Errorf("flag-syntax JSON string parsed to %+v, want %+v", fromString, want)
	}
}

// TestEveryWorkloadBuildsFromSpec: BuildWorkload materializes every catalog
// entry with default parameters on a real mesh.
func TestEveryWorkloadBuildsFromSpec(t *testing.T) {
	m, err := mesh.New(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, entry := range Catalog().Workloads {
		ws := WorkloadSpec{Name: entry.Name}
		pkts, err := BuildWorkload(ws, m, 12, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Errorf("%s: %v", entry.Name, err)
			continue
		}
		if entry.Name != "none" && len(pkts) == 0 {
			t.Errorf("%s: produced no packets", entry.Name)
		}
	}
}

// TestEveryArrivalBuildsFromSpec: BuildArrivals materializes every catalog
// process with default parameters (replay needs a file, so it gets a real
// one via the required parameter).
func TestEveryArrivalBuildsFromSpec(t *testing.T) {
	m, err := mesh.New(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, entry := range Catalog().Arrivals {
		as := &ArrivalSpec{Process: entry.Name, Params: map[string]string{}}
		for _, d := range entry.Params {
			if d.Required {
				as.Params[d.Name] = sampleValue(d)
			}
		}
		if entry.Name == "replay" {
			continue // needs a trace file on disk; covered by the CLI tests
		}
		src, err := BuildArrivals(as, m)
		if err != nil {
			t.Errorf("%s: %v", entry.Name, err)
			continue
		}
		if src == nil {
			t.Errorf("%s: nil source", entry.Name)
		}
	}
	if src, err := BuildArrivals(nil, m); err != nil || src != nil {
		t.Errorf("nil spec: (%v, %v), want (nil, nil)", src, err)
	}
}

// TestSpecErrors pins the unified error-message format: one shape for
// unknown names, unknown parameters and out-of-range values, across
// workloads and arrivals.
func TestSpecErrors(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"bogus", `spec: unknown workload "bogus"`},
		{"hotspot:frac=1.5", `spec: workload "hotspot": parameter "frac": must be in [0, 1], got 1.5`},
		{"hotspot:frac=abc", `spec: workload "hotspot": parameter "frac": not a number: "abc"`},
		{"hotspot:junk=1", `spec: workload "hotspot": unknown parameter "junk"`},
		{"uniform:x=1", `spec: workload "uniform": unknown parameter "x" (takes no parameters)`},
		{"local:radius=0", `spec: workload "local": parameter "radius": must be >= 1, got 0`},
		{"full-load:per-node=0", `spec: workload "full-load": parameter "per-node": must be >= 1, got 0`},
	}
	for _, tc := range cases {
		ws, err := ParseWorkloadSpec(tc.in)
		if err == nil {
			err = ws.Validate()
		}
		if err == nil {
			t.Errorf("%q accepted", tc.in)
			continue
		}
		if !strings.HasPrefix(err.Error(), tc.want) {
			t.Errorf("%q error = %q, want prefix %q", tc.in, err, tc.want)
		}
	}
	arrCases := []struct {
		in   string
		want string
	}{
		{"bogus:rate=1", `spec: unknown arrival process "bogus"`},
		{"bernoulli:rate=2", `spec: arrivals "bernoulli": parameter "rate": must be in [0, 1], got 2`},
		{"poisson", `spec: arrivals "poisson": parameter "rate" is required`},
		{"adversary:rho=1,axis=diag", `spec: arrivals "adversary": parameter "axis": must be one of col, row, got "diag"`},
	}
	for _, tc := range arrCases {
		as, err := ParseArrivalSpec(tc.in)
		if err == nil {
			err = as.Validate()
		}
		if err == nil {
			t.Errorf("%q accepted", tc.in)
			continue
		}
		if !strings.HasPrefix(err.Error(), tc.want) {
			t.Errorf("%q error = %q, want prefix %q", tc.in, err, tc.want)
		}
	}
}

// TestSplitSpecList: commas separate specs, but commas inside a spec's
// parameter list stay attached to it.
func TestSplitSpecList(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"uniform", []string{"uniform"}},
		{"uniform,hotspot", []string{"uniform", "hotspot"}},
		{"hotspot:frac=0.8,local:radius=2", []string{"hotspot:frac=0.8", "local:radius=2"}},
		{"hotspot:frac=0.8,target=3,uniform", []string{"hotspot:frac=0.8,target=3", "uniform"}},
		{"none,hotspot:frac=0.9", []string{"none", "hotspot:frac=0.9"}},
	}
	for _, tc := range cases {
		if got := SplitSpecList(tc.in); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("SplitSpecList(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// TestCatalogComplete: the discovery surface lists everything the
// registries accept, with docs on every entry.
func TestCatalogComplete(t *testing.T) {
	c := Catalog()
	if len(c.Policies) == 0 || len(c.Workloads) == 0 || len(c.Arrivals) == 0 {
		t.Fatalf("catalog incomplete: %d policies, %d workloads, %d arrivals",
			len(c.Policies), len(c.Workloads), len(c.Arrivals))
	}
	for _, names := range [][]string{PolicyNames(), WorkloadNames(), ArrivalNames()} {
		if len(names) == 0 {
			t.Fatal("a name registry is empty")
		}
	}
	if len(c.Policies) != len(PolicyNames()) {
		t.Errorf("catalog lists %d policies, registry has %d", len(c.Policies), len(PolicyNames()))
	}
	if len(c.Workloads) != len(WorkloadNames()) {
		t.Errorf("catalog lists %d workloads, registry has %d", len(c.Workloads), len(WorkloadNames()))
	}
	for _, w := range c.Workloads {
		if w.Doc == "" {
			t.Errorf("workload %s has no doc", w.Name)
		}
		for _, p := range w.Params {
			if p.Doc == "" {
				t.Errorf("workload %s parameter %s has no doc", w.Name, p.Name)
			}
		}
	}
	for _, a := range c.Arrivals {
		if a.Doc == "" {
			t.Errorf("arrival %s has no doc", a.Name)
		}
	}
}

// FuzzParseWorkloadSpec: the parser must never panic, and anything it
// accepts must render back to a string it accepts again (idempotent
// round trip).
func FuzzParseWorkloadSpec(f *testing.F) {
	seeds := []string{
		"uniform", "hotspot:frac=0.8", "none", "full-load:per-node=2",
		"single-target:target=12", "hotspot:frac=0.8,target=1",
		"bogus", "a:b=c", ":", "x:", "a:b", "a:b=", "a:=c", "a,b",
		"hotspot:frac=0.8;poisson:rate=0.1",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		ws, err := ParseWorkloadSpec(s)
		if err != nil {
			return
		}
		text := ws.String()
		back, err := ParseWorkloadSpec(text)
		if err != nil {
			t.Fatalf("accepted %q but rejected its rendering %q: %v", s, text, err)
		}
		if !reflect.DeepEqual(ws, back) {
			t.Fatalf("rendering changed the spec: %+v != %+v", back, ws)
		}
	})
}

// FuzzParseArrivalSpec: same contract for the arrival syntax (';' joins
// clients).
func FuzzParseArrivalSpec(f *testing.F) {
	seeds := []string{
		"poisson:rate=0.1", "bernoulli:rate=0.5,until=100",
		"adversary:rho=2,sigma=4,axis=row,lane=3",
		"poisson:rate=0.1;onoff:rate=0.2", ";", "a;b", "a:b=c;d",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		as, err := ParseArrivalSpec(s)
		if err != nil || as == nil {
			return
		}
		text := as.String()
		back, err := ParseArrivalSpec(text)
		if err != nil {
			t.Fatalf("accepted %q but rejected its rendering %q: %v", s, text, err)
		}
		if !reflect.DeepEqual(as, back) {
			t.Fatalf("rendering changed the spec: %+v != %+v", back, as)
		}
	})
}
