// Package spec resolves the user-facing names of policies, workloads,
// validation levels, packet fates and fault models into the constructors
// the engine needs. It is the single registry behind every entry point —
// cmd/hotpotato, cmd/sweep and the hotpotatod job API all accept the same
// names with the same semantics, and a name added here becomes available
// everywhere at once.
package spec

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"hotpotato/internal/fault"
	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
)

// names returns the sorted keys of a registry, for error messages and docs.
func names[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// PolicyNames lists every accepted policy name, sorted.
func PolicyNames() []string { return names(policyDefs) }

// WorkloadNames lists every accepted workload name, sorted.
func WorkloadNames() []string { return names(workloadDefs) }

// CheckWorkload validates a workload spec string (bare name or
// parameterized "name:key=val,..." syntax) without generating anything, so
// callers can reject bad input before committing to a run.
func CheckWorkload(name string) error {
	ws, err := ParseWorkloadSpec(name)
	if err != nil {
		return err
	}
	return ws.Validate()
}

// NewWorkload generates the packets of a workload spec string (bare name or
// parameterized "name:key=val,..." syntax) on m. It is a thin wrapper over
// ParseWorkloadSpec + BuildWorkload; k is ignored by the workloads whose
// size is fixed by the mesh (permutation, transpose, bit-reversal,
// full-load) — front ends reject an explicit k for those (see
// WorkloadSpec.FixedSize).
func NewWorkload(name string, m *mesh.Mesh, k int, rng *rand.Rand) ([]*sim.Packet, error) {
	ws, err := ParseWorkloadSpec(name)
	if err != nil {
		return nil, err
	}
	return BuildWorkload(ws, m, k, rng)
}

// ParseValidation resolves a validation-level name.
func ParseValidation(name string) (sim.ValidationLevel, error) {
	switch name {
	case "off":
		return sim.ValidateOff, nil
	case "basic":
		return sim.ValidateBasic, nil
	case "greedy", "":
		return sim.ValidateGreedy, nil
	case "restricted":
		return sim.ValidateRestricted, nil
	default:
		return 0, fmt.Errorf("spec: unknown validation level %q (have: basic, greedy, off, restricted)", name)
	}
}

// ParseFate resolves a crash-fate name.
func ParseFate(name string) (sim.PacketFate, error) {
	switch name {
	case "drop", "":
		return sim.FateDrop, nil
	case "absorb":
		return sim.FateAbsorb, nil
	default:
		return 0, fmt.Errorf("spec: unknown fault fate %q (have: absorb, drop)", name)
	}
}

// FaultConfig describes a composite fault model by value, so it can ride
// in flags and JSON job specs alike.
type FaultConfig struct {
	// Rate is the per-link per-step failure probability (0 = no link flaps).
	Rate float64 `json:"rate,omitempty"`
	// Repair is the per-step repair probability for downed links/nodes.
	Repair float64 `json:"repair,omitempty"`
	// MaxDown caps concurrently failed links/nodes (0 = unlimited).
	MaxDown int `json:"max_down,omitempty"`
	// CrashRate is the per-node per-step crash probability (0 = no crashes).
	CrashRate float64 `json:"crash_rate,omitempty"`
	// Script holds a scripted fault schedule as text (the fault.ParseScript
	// line format: "<step> <link-down|link-up|node-down|node-up> <node> [dir]").
	Script string `json:"script,omitempty"`
	// Fate selects what happens to packets inside a crashing node: "drop"
	// (default) or "absorb".
	Fate string `json:"fate,omitempty"`
}

// Enabled reports whether the config describes any fault source at all.
func (c FaultConfig) Enabled() bool {
	return c.Rate != 0 || c.CrashRate != 0 || c.Script != ""
}

// NewFaults assembles the fault model described by the config: any
// combination of probabilistic link flaps, probabilistic node crashes and
// a scripted event schedule, composed in that order. Returns nil when no
// fault source is requested.
func NewFaults(m *mesh.Mesh, c FaultConfig) (sim.FaultModel, error) {
	var models []fault.Model
	if c.Rate != 0 { // negative rates fall through to the constructor's error
		f, err := fault.NewLinkFlaps(c.Rate, c.Repair)
		if err != nil {
			return nil, err
		}
		f.MaxDown = c.MaxDown
		models = append(models, f)
	}
	if c.CrashRate != 0 {
		f, err := fault.NewNodeCrashes(c.CrashRate, c.Repair)
		if err != nil {
			return nil, err
		}
		f.MaxDown = c.MaxDown
		models = append(models, f)
	}
	if c.Script != "" {
		sched, err := fault.ParseScript(strings.NewReader(c.Script), m)
		if err != nil {
			return nil, fmt.Errorf("fault script: %w", err)
		}
		models = append(models, sched)
	}
	switch len(models) {
	case 0:
		return nil, nil
	case 1:
		return models[0], nil
	default:
		return fault.Compose(models...), nil
	}
}
