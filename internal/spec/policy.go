package spec

import (
	"fmt"
	"strings"

	"hotpotato/internal/core"
	"hotpotato/internal/routing"
	"hotpotato/internal/sim"
)

// PolicySpec is the structured, parameterized form of a policy request,
// exactly parallel to WorkloadSpec: a bare registered name, or
// "name:key=val,..." for the parameterized families. Every entry surface
// (cmd/hotpotato, cmd/sweep, hotpotatod job specs, cmd/policylab) parses the
// same syntax through here, and parameters are validated against the
// registered schema — unknown keys and out-of-range values are rejected,
// never ignored or clamped.
type PolicySpec struct {
	// Name is the policy's registered name.
	Name string `json:"name"`
	// Params configures the policy; keys and ranges are validated against
	// the registered schema (see Catalog).
	Params map[string]string `json:"params,omitempty"`
}

// policyDef registers one routing policy: documentation, parameter schema
// and builder. Most policies take no parameters; for those, any key=val is
// an "unknown parameter (takes no parameters)" error from resolveParams.
type policyDef struct {
	Doc    string
	Params []ParamDef
	build  func(a args) (sim.Policy, error)
}

// fixed wraps a parameterless constructor as a policyDef.
func fixedPolicy(doc string, mk func() sim.Policy) policyDef {
	return policyDef{Doc: doc, build: func(args) (sim.Policy, error) { return mk(), nil }}
}

// weightDoc documents one weighted-policy weight.
func weightParam(name, doc string) ParamDef {
	return ParamDef{Name: name, Type: "float", Default: "0", Min: fp(-1000), Max: fp(1000), Doc: doc}
}

var policyDefs = map[string]policyDef{
	"restricted":        fixedPolicy("the paper's restricted priority scheme (potential-function bound)", core.NewRestrictedPriority),
	"restricted-det":    fixedPolicy("restricted priority with deterministic tie-breaks", core.NewRestrictedPriorityDeterministic),
	"restricted-bfirst": fixedPolicy("restricted priority preferring type-B packets", core.NewRestrictedPriorityTypeBFirst),
	"fewest-good":       fixedPolicy("priority to packets with fewest good directions", core.NewFewestGoodFirst),
	"random":            fixedPolicy("greedy with uniform random tie-breaks", routing.NewRandomGreedy),
	"fixed":             fixedPolicy("greedy with a fixed direction-priority order", routing.NewFixedPriority),
	"dest-order":        fixedPolicy("greedy prioritized by destination node order", routing.NewDestOrderGreedy),
	"oldest":            fixedPolicy("greedy, oldest packet first", routing.NewOldestFirst),
	"farthest":          fixedPolicy("greedy, farthest-from-destination first", routing.NewFarthestFirst),
	"nearest":           fixedPolicy("greedy, nearest-to-destination first", routing.NewNearestFirst),
	"weighted": {
		Doc: "parameterized greedy family: priority score = age*age + dist*dist + restricted*restrict + deflections*defl, highest score advances first (the policy-lab search space; all-zero weights = random greedy)",
		Params: []ParamDef{
			weightParam("age", "weight on packet age in steps"),
			weightParam("defl", "weight on the packet's deflection count"),
			weightParam("dist", "weight on distance to destination"),
			weightParam("restrict", "weight on restriction status (exactly one good direction)"),
		},
		build: func(a args) (sim.Policy, error) {
			w := routing.Weights{
				Age:      a.Float("age"),
				Dist:     a.Float("dist"),
				Restrict: a.Float("restrict"),
				Deflect:  a.Float("defl"),
			}
			// The display name is canonicalized from the resolved weights —
			// every parameter present, sorted, %g-rendered — so
			// "weighted:age=1" and "weighted:age=1,defl=0" restore the same
			// checkpoints.
			return routing.NewWeighted("", w), nil
		},
	},
}

// ParsePolicySpec parses the compact flag syntax "name[:key=val,...]". The
// result is syntax-checked only; Validate checks it against the registry.
func ParsePolicySpec(s string) (PolicySpec, error) {
	name, rest, _ := strings.Cut(strings.TrimSpace(s), ":")
	name = strings.TrimSpace(name)
	if name == "" {
		return PolicySpec{}, fmt.Errorf("spec: empty policy name in %q", s)
	}
	params, err := parseParams(fmt.Sprintf("policy %q", name), rest)
	if err != nil {
		return PolicySpec{}, err
	}
	return PolicySpec{Name: name, Params: params}, nil
}

// String renders the spec back into the flag syntax (parameters sorted).
func (ps PolicySpec) String() string { return ps.Name + renderParams(ps.Params) }

// Validate checks the spec against the registry: known name, known
// parameter keys, values of the right type and range — unknown parameters
// on a parameterless policy are an error, not a silent no-op.
func (ps PolicySpec) Validate() error {
	def, ok := policyDefs[ps.Name]
	if !ok {
		return fmt.Errorf("spec: unknown policy %q (have: %s)", ps.Name, strings.Join(PolicyNames(), ", "))
	}
	_, err := resolveParams(fmt.Sprintf("policy %q", ps.Name), def.Params, ps.Params)
	return err
}

// BuildPolicy validates the spec and constructs its policy.
func BuildPolicy(ps PolicySpec) (sim.Policy, error) {
	def, ok := policyDefs[ps.Name]
	if !ok {
		return nil, fmt.Errorf("spec: unknown policy %q (have: %s)", ps.Name, strings.Join(PolicyNames(), ", "))
	}
	a, err := resolveParams(fmt.Sprintf("policy %q", ps.Name), def.Params, ps.Params)
	if err != nil {
		return nil, err
	}
	return def.build(a)
}

// PolicyFactory returns a constructor for the policy spec string (bare name
// or "name:key=val,..."), for callers that build many independent instances
// (one per trial or per job). The spec is validated eagerly — the returned
// factory cannot fail.
func PolicyFactory(s string) (func() sim.Policy, error) {
	ps, err := ParsePolicySpec(s)
	if err != nil {
		return nil, err
	}
	def, ok := policyDefs[ps.Name]
	if !ok {
		return nil, fmt.Errorf("spec: unknown policy %q (have: %s)", ps.Name, strings.Join(PolicyNames(), ", "))
	}
	a, err := resolveParams(fmt.Sprintf("policy %q", ps.Name), def.Params, ps.Params)
	if err != nil {
		return nil, err
	}
	if _, err := def.build(a); err != nil {
		return nil, err
	}
	return func() sim.Policy {
		p, _ := def.build(a)
		return p
	}, nil
}

// NewPolicy constructs the policy named by a spec string (bare name or
// parameterized "name:key=val,..." syntax).
func NewPolicy(s string) (sim.Policy, error) {
	ps, err := ParsePolicySpec(s)
	if err != nil {
		return nil, err
	}
	return BuildPolicy(ps)
}

// CheckPolicy validates a policy spec string without constructing anything.
func CheckPolicy(s string) error {
	ps, err := ParsePolicySpec(s)
	if err != nil {
		return err
	}
	return ps.Validate()
}
