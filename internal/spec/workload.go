package spec

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"

	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
	"hotpotato/internal/traffic"
	"hotpotato/internal/workload"
)

// WorkloadSpec is the structured, parameterized form of a workload request,
// accepted uniformly by every entry surface (cmd/hotpotato and cmd/sweep
// flags, analysis sweeps, hotpotatod job specs). It marshals to a bare JSON
// string when only a name is set, so existing job files and WAL records
// keep their shape, and it parses from the compact flag syntax
//
//	name[:key=val,key=val,...]        e.g.  hotspot:frac=0.7
//
// so a bare name remains valid shorthand everywhere.
type WorkloadSpec struct {
	// Name is the workload's registered name.
	Name string `json:"name"`
	// Params overrides the workload's parameters; keys and ranges are
	// validated against the registered schema (see Catalog), never clamped.
	Params map[string]string `json:"params,omitempty"`
	// Arrivals optionally layers continuous arrival-driven traffic on top of
	// the batch workload (use workload "none" for pure arrival runs).
	Arrivals *ArrivalSpec `json:"arrivals,omitempty"`
}

// ArrivalSpec describes one arrival process — or, with Clients set, a
// composition of several (multi-tenant / multi-class traffic). The flag
// syntax joins clients with ';':
//
//	poisson:rate=0.02;adversary:rho=1,sigma=8
type ArrivalSpec struct {
	// Process is the arrival-process name ("" for a pure composition).
	Process string `json:"process,omitempty"`
	// Params configures the process; validated against its schema.
	Params map[string]string `json:"params,omitempty"`
	// Clients composes several processes into one source, generation order
	// as listed.
	Clients []ArrivalSpec `json:"clients,omitempty"`
}

// ---------------------------------------------------------------------------
// Parameter schemas

// ParamDef documents and validates one workload or arrival parameter. The
// zero Min/Max pointers mean unbounded; out-of-range values are rejected
// with an error, never clamped.
type ParamDef struct {
	Name     string   `json:"name"`
	Type     string   `json:"type"` // "int", "float", "string" or "enum"
	Default  string   `json:"default,omitempty"`
	Required bool     `json:"required,omitempty"`
	Min      *float64 `json:"min,omitempty"`
	Max      *float64 `json:"max,omitempty"`
	// MinExcl marks Min as exclusive (e.g. rate > 0).
	MinExcl bool     `json:"min_excl,omitempty"`
	Enum    []string `json:"enum,omitempty"`
	Doc     string   `json:"doc"`
}

func fp(v float64) *float64 { return &v }

// args holds a resolved (defaults filled, validated) parameter set.
type args map[string]string

func (a args) Int(name string) int {
	v, _ := strconv.Atoi(a[name])
	return v
}

func (a args) Float(name string) float64 {
	v, _ := strconv.ParseFloat(a[name], 64)
	return v
}

func (a args) Str(name string) string { return a[name] }

// checkValue validates one value against its schema; ctx is the error
// prefix, e.g. `workload "hotspot"`.
func checkValue(ctx string, d ParamDef, val string) error {
	fail := func(format string, argv ...any) error {
		return fmt.Errorf("spec: %s: parameter %q: "+format, append([]any{ctx, d.Name}, argv...)...)
	}
	var num float64
	switch d.Type {
	case "int":
		n, err := strconv.Atoi(val)
		if err != nil {
			return fail("not an integer: %q", val)
		}
		num = float64(n)
	case "float":
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fail("not a number: %q", val)
		}
		num = f
	case "enum":
		for _, e := range d.Enum {
			if val == e {
				return nil
			}
		}
		return fail("must be one of %s, got %q", strings.Join(d.Enum, ", "), val)
	default: // "string"
		return nil
	}
	switch {
	case d.Min != nil && d.Max != nil:
		lo, hi := "[", "]"
		if d.MinExcl {
			lo = "("
		}
		if num > *d.Max || num < *d.Min || (d.MinExcl && num == *d.Min) {
			return fail("must be in %s%v, %v%s, got %v", lo, *d.Min, *d.Max, hi, val)
		}
	case d.Min != nil && d.MinExcl:
		if num <= *d.Min {
			return fail("must be > %v, got %v", *d.Min, val)
		}
	case d.Min != nil:
		if num < *d.Min {
			return fail("must be >= %v, got %v", *d.Min, val)
		}
	case d.Max != nil:
		if num > *d.Max {
			return fail("must be <= %v, got %v", *d.Max, val)
		}
	}
	return nil
}

// resolveParams validates given against defs and fills defaults.
func resolveParams(ctx string, defs []ParamDef, given map[string]string) (args, error) {
	out := make(args, len(defs))
	for k, v := range given {
		var d *ParamDef
		for i := range defs {
			if defs[i].Name == k {
				d = &defs[i]
				break
			}
		}
		if d == nil {
			have := make([]string, len(defs))
			for i, pd := range defs {
				have[i] = pd.Name
			}
			if len(have) == 0 {
				return nil, fmt.Errorf("spec: %s: unknown parameter %q (takes no parameters)", ctx, k)
			}
			return nil, fmt.Errorf("spec: %s: unknown parameter %q (have: %s)", ctx, k, strings.Join(have, ", "))
		}
		if err := checkValue(ctx, *d, v); err != nil {
			return nil, err
		}
		out[k] = v
	}
	for _, d := range defs {
		if _, ok := out[d.Name]; ok {
			continue
		}
		if d.Required {
			return nil, fmt.Errorf("spec: %s: parameter %q is required", ctx, d.Name)
		}
		out[d.Name] = d.Default
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Workload registry

// workloadDef registers one batch workload: its documentation, parameter
// schema and builder.
type workloadDef struct {
	Doc string
	// FixedSize workloads derive their packet count from the mesh and
	// reject an explicit packet-count (k) request.
	FixedSize bool
	Params    []ParamDef
	build     func(m *mesh.Mesh, k int, rng *rand.Rand, a args) ([]*sim.Packet, error)
}

var workloadDefs = map[string]workloadDef{
	"none": {
		Doc: "no batch packets; the canvas for pure arrival-driven runs",
		build: func(m *mesh.Mesh, k int, rng *rand.Rand, a args) ([]*sim.Packet, error) {
			return nil, nil
		},
	},
	"uniform": {
		Doc: "k packets, uniform random sources and destinations",
		build: func(m *mesh.Mesh, k int, rng *rand.Rand, a args) ([]*sim.Packet, error) {
			return workload.UniformRandom(m, k, rng)
		},
	},
	"permutation": {
		Doc:       "one packet per node, destinations a random permutation",
		FixedSize: true,
		build: func(m *mesh.Mesh, _ int, rng *rand.Rand, a args) ([]*sim.Packet, error) {
			return workload.Permutation(m, rng), nil
		},
	},
	"partial-perm": {
		Doc: "k packets with distinct sources and distinct destinations",
		build: func(m *mesh.Mesh, k int, rng *rand.Rand, a args) ([]*sim.Packet, error) {
			return workload.PartialPermutation(m, k, rng)
		},
	},
	"transpose": {
		Doc:       "(x,y) -> (y,x) for every off-diagonal node of a 2-D mesh",
		FixedSize: true,
		build: func(m *mesh.Mesh, _ int, _ *rand.Rand, a args) ([]*sim.Packet, error) {
			return workload.Transpose(m)
		},
	},
	"bit-reversal": {
		Doc:       "index bit-reversal permutation (power-of-two sides)",
		FixedSize: true,
		build: func(m *mesh.Mesh, _ int, _ *rand.Rand, a args) ([]*sim.Packet, error) {
			return workload.BitReversal(m)
		},
	},
	"single-target": {
		Doc: "k packets from distinct origins, all to one target node",
		Params: []ParamDef{
			{Name: "target", Type: "int", Default: "-1", Min: fp(-1),
				Doc: "destination node ID; -1 selects the center node (size/2)"},
		},
		build: func(m *mesh.Mesh, k int, rng *rand.Rand, a args) ([]*sim.Packet, error) {
			target := a.Int("target")
			if target < 0 {
				target = m.Size() / 2
			}
			if target >= m.Size() {
				return nil, fmt.Errorf("spec: workload \"single-target\": parameter \"target\": node %d outside [0, %d)", target, m.Size())
			}
			return workload.SingleTarget(m, k, mesh.NodeID(target), rng)
		},
	},
	"hotspot": {
		Doc: "k uniform packets, a fraction redirected to one hot node",
		Params: []ParamDef{
			{Name: "frac", Type: "float", Default: "0.5", Min: fp(0), Max: fp(1),
				Doc: "fraction of packets redirected to the hot node"},
		},
		build: func(m *mesh.Mesh, k int, rng *rand.Rand, a args) ([]*sim.Packet, error) {
			return workload.HotSpot(m, k, a.Float("frac"), rng)
		},
	},
	"local": {
		Doc: "k packets destined within an L1 ball around each source",
		Params: []ParamDef{
			{Name: "radius", Type: "int", Default: "4", Min: fp(1),
				Doc: "L1 radius of the destination ball"},
		},
		build: func(m *mesh.Mesh, k int, rng *rand.Rand, a args) ([]*sim.Packet, error) {
			return workload.LocalRandom(m, k, a.Int("radius"), rng)
		},
	},
	"full-load": {
		Doc:       "per-node packets at every node, uniform destinations",
		FixedSize: true,
		Params: []ParamDef{
			{Name: "per-node", Type: "int", Default: "2", Min: fp(1),
				Doc: "packets injected at every node (at most the mesh dimension)"},
		},
		build: func(m *mesh.Mesh, _ int, rng *rand.Rand, a args) ([]*sim.Packet, error) {
			return workload.FullLoad(m, a.Int("per-node"), rng)
		},
	},
	"corner-rush": {
		Doc: "k packets from one corner quadrant to the opposite quadrant",
		build: func(m *mesh.Mesh, k int, rng *rand.Rand, a args) ([]*sim.Packet, error) {
			return workload.CornerRush(m, k, rng)
		},
	},
}

// ---------------------------------------------------------------------------
// Arrival registry

const (
	untilDoc = "stop generating at this step (0 = never)"
	classDoc = "traffic class tag on generated packets"
)

func untilParam() ParamDef {
	return ParamDef{Name: "until", Type: "int", Default: "0", Min: fp(0), Doc: untilDoc}
}

func classParam() ParamDef {
	return ParamDef{Name: "class", Type: "int", Default: "0", Min: fp(0), Doc: classDoc}
}

// arrivalDef registers one arrival process.
type arrivalDef struct {
	Doc    string
	Params []ParamDef
	build  func(m *mesh.Mesh, a args) (traffic.Generator, error)
}

var arrivalDefs = map[string]arrivalDef{
	"bernoulli": {
		Doc: "every node generates with probability rate each step (memoryless)",
		Params: []ParamDef{
			{Name: "rate", Type: "float", Required: true, Min: fp(0), Max: fp(1),
				Doc: "per-node per-step generation probability"},
			untilParam(), classParam(),
		},
		build: func(_ *mesh.Mesh, a args) (traffic.Generator, error) {
			g, err := traffic.NewBernoulliGen(a.Float("rate"), a.Int("until"))
			if err != nil {
				return nil, err
			}
			g.Class = a.Int("class")
			return g, nil
		},
	},
	"poisson": {
		Doc: "renewal process with exponential interarrivals per node",
		Params: []ParamDef{
			{Name: "rate", Type: "float", Required: true, Min: fp(0), MinExcl: true,
				Doc: "mean arrivals per node per step"},
			untilParam(), classParam(),
		},
		build: func(_ *mesh.Mesh, a args) (traffic.Generator, error) {
			g, err := traffic.NewPoisson(a.Float("rate"), a.Int("until"))
			if err != nil {
				return nil, err
			}
			g.Class = a.Int("class")
			return g, nil
		},
	},
	"gamma": {
		Doc: "renewal process with Gamma(shape) interarrivals (shape<1 bursty, >1 smooth)",
		Params: []ParamDef{
			{Name: "rate", Type: "float", Required: true, Min: fp(0), MinExcl: true,
				Doc: "mean arrivals per node per step"},
			{Name: "shape", Type: "float", Default: "2", Min: fp(0), MinExcl: true,
				Doc: "Gamma shape parameter"},
			untilParam(), classParam(),
		},
		build: func(_ *mesh.Mesh, a args) (traffic.Generator, error) {
			g, err := traffic.NewRenewal(traffic.KindGamma, a.Float("rate"), a.Float("shape"), a.Int("until"))
			if err != nil {
				return nil, err
			}
			g.Class = a.Int("class")
			return g, nil
		},
	},
	"weibull": {
		Doc: "renewal process with Weibull(shape) interarrivals (shape<1 heavy-tailed)",
		Params: []ParamDef{
			{Name: "rate", Type: "float", Required: true, Min: fp(0), MinExcl: true,
				Doc: "mean arrivals per node per step"},
			{Name: "shape", Type: "float", Default: "1.5", Min: fp(0), MinExcl: true,
				Doc: "Weibull shape parameter"},
			untilParam(), classParam(),
		},
		build: func(_ *mesh.Mesh, a args) (traffic.Generator, error) {
			g, err := traffic.NewRenewal(traffic.KindWeibull, a.Float("rate"), a.Float("shape"), a.Int("until"))
			if err != nil {
				return nil, err
			}
			g.Class = a.Int("class")
			return g, nil
		},
	},
	"onoff": {
		Doc: "bursty on/off client per node: Bernoulli(rate) while ON, geometric sojourns",
		Params: []ParamDef{
			{Name: "rate", Type: "float", Required: true, Min: fp(0), Max: fp(1),
				Doc: "per-node per-step generation probability while ON"},
			{Name: "on", Type: "float", Default: "16", Min: fp(1),
				Doc: "mean ON sojourn in steps"},
			{Name: "off", Type: "float", Default: "64", Min: fp(1),
				Doc: "mean OFF sojourn in steps"},
			untilParam(), classParam(),
		},
		build: func(_ *mesh.Mesh, a args) (traffic.Generator, error) {
			g, err := traffic.NewOnOff(a.Float("rate"), a.Float("on"), a.Float("off"), a.Int("until"))
			if err != nil {
				return nil, err
			}
			g.Class = a.Int("class")
			return g, nil
		},
	},
	"diurnal": {
		Doc: "sinusoidal rate envelope: rate*(1+amp*sin(2pi*(t/period+phase)))",
		Params: []ParamDef{
			{Name: "rate", Type: "float", Required: true, Min: fp(0), Max: fp(1),
				Doc: "mean per-node per-step generation probability"},
			{Name: "amp", Type: "float", Default: "0.5", Min: fp(0), Max: fp(1),
				Doc: "relative amplitude of the swing"},
			{Name: "period", Type: "int", Default: "256", Min: fp(1),
				Doc: "cycle length in steps"},
			{Name: "phase", Type: "float", Default: "0",
				Doc: "cycle offset as a fraction of the period"},
			untilParam(), classParam(),
		},
		build: func(_ *mesh.Mesh, a args) (traffic.Generator, error) {
			g, err := traffic.NewDiurnal(a.Float("rate"), a.Float("amp"), a.Int("period"), a.Int("until"))
			if err != nil {
				return nil, err
			}
			g.Phase = a.Float("phase")
			g.Class = a.Int("class")
			return g, nil
		},
	},
	"adversary": {
		Doc: "(rho,sigma)-admissible adversary targeting one maximally contended lane of a 2-D mesh",
		Params: []ParamDef{
			{Name: "rho", Type: "float", Required: true, Min: fp(0), MinExcl: true,
				Doc: "sustained injection rate, packets per step"},
			{Name: "sigma", Type: "float", Default: "8", Min: fp(0),
				Doc: "burst budget, packets"},
			{Name: "axis", Type: "enum", Default: "col", Enum: []string{"col", "row"},
				Doc: "orientation of the target lane"},
			{Name: "lane", Type: "int", Default: "-1", Min: fp(-1),
				Doc: "target lane coordinate; -1 selects the center lane"},
			untilParam(), classParam(),
		},
		build: func(m *mesh.Mesh, a args) (traffic.Generator, error) {
			if m.Dim() != 2 {
				return nil, fmt.Errorf("spec: arrivals \"adversary\": needs a 2-dimensional mesh, got %d dimensions", m.Dim())
			}
			if lane := a.Int("lane"); lane >= m.Side() {
				return nil, fmt.Errorf("spec: arrivals \"adversary\": parameter \"lane\": lane %d outside [0, %d)", lane, m.Side())
			}
			g, err := traffic.NewAdversary(a.Float("rho"), a.Float("sigma"), a.Str("axis"), a.Int("lane"), a.Int("until"))
			if err != nil {
				return nil, err
			}
			g.Class = a.Int("class")
			return g, nil
		},
	},
	"replay": {
		Doc: "replay a recorded injection trace (deterministic reproduction)",
		Params: []ParamDef{
			{Name: "file", Type: "string", Required: true,
				Doc: "path to a hotpotato-inj v1 trace file"},
		},
		build: func(m *mesh.Mesh, a args) (traffic.Generator, error) {
			f, err := os.Open(a.Str("file"))
			if err != nil {
				return nil, fmt.Errorf("spec: arrivals \"replay\": %w", err)
			}
			defer f.Close()
			events, err := traffic.ReadTrace(f, m)
			if err != nil {
				return nil, fmt.Errorf("spec: arrivals \"replay\": %w", err)
			}
			return traffic.NewReplay(events), nil
		},
	},
}

// ArrivalNames lists every accepted arrival-process name, sorted.
func ArrivalNames() []string { return names(arrivalDefs) }

// ---------------------------------------------------------------------------
// Parsing

// parseParams parses "key=val,key=val"; duplicate keys are an error.
func parseParams(ctx, s string) (map[string]string, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]string)
	for _, seg := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(seg, "=")
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		if !ok || k == "" {
			return nil, fmt.Errorf("spec: %s: bad parameter %q (want key=value)", ctx, seg)
		}
		if _, dup := out[k]; dup {
			return nil, fmt.Errorf("spec: %s: duplicate parameter %q", ctx, k)
		}
		out[k] = v
	}
	return out, nil
}

// ParseWorkloadSpec parses the compact flag syntax "name[:key=val,...]".
// The result is syntax-checked only; Validate checks it against the
// registry.
func ParseWorkloadSpec(s string) (WorkloadSpec, error) {
	name, rest, _ := strings.Cut(strings.TrimSpace(s), ":")
	name = strings.TrimSpace(name)
	if name == "" {
		return WorkloadSpec{}, fmt.Errorf("spec: empty workload name in %q", s)
	}
	params, err := parseParams(fmt.Sprintf("workload %q", name), rest)
	if err != nil {
		return WorkloadSpec{}, err
	}
	return WorkloadSpec{Name: name, Params: params}, nil
}

// ParseArrivalSpec parses "proc[:key=val,...][;proc2:...]", composing
// ';'-joined segments into one multi-client spec.
func ParseArrivalSpec(s string) (*ArrivalSpec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var clients []ArrivalSpec
	for _, seg := range strings.Split(s, ";") {
		seg = strings.TrimSpace(seg)
		if seg == "" {
			continue
		}
		proc, rest, _ := strings.Cut(seg, ":")
		proc = strings.TrimSpace(proc)
		if proc == "" {
			return nil, fmt.Errorf("spec: empty arrival-process name in %q", s)
		}
		params, err := parseParams(fmt.Sprintf("arrivals %q", proc), rest)
		if err != nil {
			return nil, err
		}
		clients = append(clients, ArrivalSpec{Process: proc, Params: params})
	}
	switch len(clients) {
	case 0:
		return nil, fmt.Errorf("spec: empty arrival spec %q", s)
	case 1:
		return &clients[0], nil
	default:
		return &ArrivalSpec{Clients: clients}, nil
	}
}

// SplitSpecList splits a comma-separated list of workload specs, keeping
// ':'-introduced parameter lists attached to their spec: in
// "uniform,hotspot:frac=0.7,k2=v2,transpose" the segment "k2=v2" is a bare
// key=value (no ':' before its '=') and so belongs to the preceding
// hotspot spec, while "transpose" starts a new one.
func SplitSpecList(s string) []string {
	var out []string
	for _, seg := range strings.Split(s, ",") {
		eq := strings.Index(seg, "=")
		colon := strings.Index(seg, ":")
		continuation := eq >= 0 && (colon < 0 || colon > eq)
		if continuation && len(out) > 0 {
			out[len(out)-1] += "," + strings.TrimSpace(seg)
			continue
		}
		if strings.TrimSpace(seg) == "" {
			continue
		}
		out = append(out, strings.TrimSpace(seg))
	}
	return out
}

func renderParams(params map[string]string) string {
	if len(params) == 0 {
		return ""
	}
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + params[k]
	}
	return ":" + strings.Join(parts, ",")
}

// String renders the spec back into the flag syntax (parameters sorted, so
// the rendering is deterministic). Arrivals are not included.
func (ws WorkloadSpec) String() string { return ws.Name + renderParams(ws.Params) }

// String renders the arrival spec in flag syntax; compositions join their
// clients with ';'.
func (as ArrivalSpec) String() string {
	if len(as.Clients) > 0 {
		parts := make([]string, len(as.Clients))
		for i, c := range as.Clients {
			parts[i] = c.String()
		}
		return strings.Join(parts, ";")
	}
	return as.Process + renderParams(as.Params)
}

// ---------------------------------------------------------------------------
// JSON: a bare string is accepted (and emitted, when nothing but the name is
// set) so legacy job specs and WAL records round-trip unchanged.

type workloadSpecJSON WorkloadSpec

// UnmarshalJSON accepts either a bare string in the flag syntax or the
// structured object form.
func (ws *WorkloadSpec) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] == '"' {
		var s string
		if err := json.Unmarshal(data, &s); err != nil {
			return err
		}
		if s == "" { // the zero spec round-trips as "" (defaults apply later)
			*ws = WorkloadSpec{}
			return nil
		}
		parsed, err := ParseWorkloadSpec(s)
		if err != nil {
			return err
		}
		*ws = parsed
		return nil
	}
	var obj workloadSpecJSON
	if err := json.Unmarshal(data, &obj); err != nil {
		return err
	}
	*ws = WorkloadSpec(obj)
	return nil
}

// MarshalJSON emits a bare string when only the name is set, keeping legacy
// WAL records and golden files byte-stable.
func (ws WorkloadSpec) MarshalJSON() ([]byte, error) {
	if len(ws.Params) == 0 && ws.Arrivals == nil {
		return json.Marshal(ws.Name)
	}
	return json.Marshal(workloadSpecJSON(ws))
}

type arrivalSpecJSON ArrivalSpec

// UnmarshalJSON accepts either the flag syntax as a bare string (';' joins
// clients) or the structured object form.
func (as *ArrivalSpec) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] == '"' {
		var s string
		if err := json.Unmarshal(data, &s); err != nil {
			return err
		}
		parsed, err := ParseArrivalSpec(s)
		if err != nil {
			return err
		}
		if parsed == nil {
			*as = ArrivalSpec{}
			return nil
		}
		*as = *parsed
		return nil
	}
	var obj arrivalSpecJSON
	if err := json.Unmarshal(data, &obj); err != nil {
		return err
	}
	*as = ArrivalSpec(obj)
	return nil
}

// ---------------------------------------------------------------------------
// Validation and building

// Validate checks the spec against the registry: known name, known
// parameter keys, values of the right type and range. Mesh-dependent
// constraints (node IDs, lane coordinates, dimensionality) are checked at
// build time.
func (ws WorkloadSpec) Validate() error {
	def, ok := workloadDefs[ws.Name]
	if !ok {
		return fmt.Errorf("spec: unknown workload %q (have: %s)", ws.Name, strings.Join(WorkloadNames(), ", "))
	}
	if _, err := resolveParams(fmt.Sprintf("workload %q", ws.Name), def.Params, ws.Params); err != nil {
		return err
	}
	if ws.Arrivals != nil {
		return ws.Arrivals.Validate()
	}
	return nil
}

// FixedSize reports whether the workload derives its packet count from the
// mesh; such workloads reject an explicit packet-count (k) request.
func (ws WorkloadSpec) FixedSize() bool { return workloadDefs[ws.Name].FixedSize }

// Validate checks the arrival spec against the registry (see
// WorkloadSpec.Validate).
func (as ArrivalSpec) Validate() error {
	if len(as.Clients) > 0 {
		if as.Process != "" {
			return fmt.Errorf("spec: arrival spec sets both process %q and clients", as.Process)
		}
		for i := range as.Clients {
			if len(as.Clients[i].Clients) > 0 {
				return fmt.Errorf("spec: arrival clients cannot nest further clients")
			}
			if err := as.Clients[i].Validate(); err != nil {
				return err
			}
		}
		return nil
	}
	def, ok := arrivalDefs[as.Process]
	if !ok {
		return fmt.Errorf("spec: unknown arrival process %q (have: %s)", as.Process, strings.Join(ArrivalNames(), ", "))
	}
	_, err := resolveParams(fmt.Sprintf("arrivals %q", as.Process), def.Params, as.Params)
	return err
}

// Bounded reports whether every arrival client stops generating on its
// own: its process is inherently finite (replay) or its until parameter is
// positive. Callers that must terminate (job servers) can demand Bounded
// or an explicit step budget.
func (as ArrivalSpec) Bounded() bool {
	clients := as.Clients
	if len(clients) == 0 {
		clients = []ArrivalSpec{as}
	}
	for _, c := range clients {
		if c.Process == "replay" {
			continue
		}
		u, err := strconv.Atoi(c.Params["until"])
		if err != nil || u <= 0 {
			return false
		}
	}
	return true
}

// BuildWorkload validates the spec and generates its batch packets on m.
// For fixed-size workloads k is ignored (front ends reject explicit k
// requests; see FixedSize).
func BuildWorkload(ws WorkloadSpec, m *mesh.Mesh, k int, rng *rand.Rand) ([]*sim.Packet, error) {
	def, ok := workloadDefs[ws.Name]
	if !ok {
		return nil, fmt.Errorf("spec: unknown workload %q (have: %s)", ws.Name, strings.Join(WorkloadNames(), ", "))
	}
	a, err := resolveParams(fmt.Sprintf("workload %q", ws.Name), def.Params, ws.Params)
	if err != nil {
		return nil, err
	}
	return def.build(m, k, rng, a)
}

// BuildArrivals validates the arrival spec and assembles its generators —
// one per client, in listed order — into a checkpointable injection source
// for m. A nil spec yields a nil source.
func BuildArrivals(as *ArrivalSpec, m *mesh.Mesh) (*traffic.Source, error) {
	if as == nil {
		return nil, nil
	}
	if err := as.Validate(); err != nil {
		return nil, err
	}
	clients := as.Clients
	if len(clients) == 0 {
		clients = []ArrivalSpec{*as}
	}
	gens := make([]traffic.Generator, len(clients))
	for i, c := range clients {
		def := arrivalDefs[c.Process]
		a, err := resolveParams(fmt.Sprintf("arrivals %q", c.Process), def.Params, c.Params)
		if err != nil {
			return nil, err
		}
		g, err := def.build(m, a)
		if err != nil {
			return nil, err
		}
		gens[i] = g
	}
	return traffic.NewSource(gens...)
}

// ---------------------------------------------------------------------------
// Discovery catalog

// CatalogEntry documents one registered name for the discovery surfaces
// (hotpotato -list-workloads, hotpotatod GET /v1/spec).
type CatalogEntry struct {
	Name      string     `json:"name"`
	Doc       string     `json:"doc"`
	FixedSize bool       `json:"fixed_size,omitempty"`
	Params    []ParamDef `json:"params,omitempty"`
}

// CatalogInfo is the full discovery document: every accepted policy,
// workload and arrival-process name with parameter schemas and defaults.
type CatalogInfo struct {
	Policies   []CatalogEntry `json:"policies"`
	Workloads  []CatalogEntry `json:"workloads"`
	Arrivals   []CatalogEntry `json:"arrivals"`
	Validation []string       `json:"validation"`
	Fates      []string       `json:"fates"`
}

// Catalog returns the discovery document, all sections sorted by name.
func Catalog() CatalogInfo {
	var c CatalogInfo
	for _, name := range PolicyNames() {
		d := policyDefs[name]
		c.Policies = append(c.Policies, CatalogEntry{Name: name, Doc: d.Doc, Params: d.Params})
	}
	for _, name := range WorkloadNames() {
		d := workloadDefs[name]
		c.Workloads = append(c.Workloads, CatalogEntry{Name: name, Doc: d.Doc, FixedSize: d.FixedSize, Params: d.Params})
	}
	for _, name := range ArrivalNames() {
		d := arrivalDefs[name]
		c.Arrivals = append(c.Arrivals, CatalogEntry{Name: name, Doc: d.Doc, Params: d.Params})
	}
	c.Validation = []string{"off", "basic", "greedy", "restricted"}
	c.Fates = []string{"drop", "absorb"}
	return c
}
