// Package workload generates batch routing problems for the d-dimensional
// mesh: the many-to-many instances the paper analyzes, the permutations its
// related work targets, and the adversarial instances used to stress bounds.
//
// All generators respect the paper's injection constraint (Section 2): no
// node is the origin of more packets than its out-degree. Generators are
// deterministic given the caller-supplied RNG.
package workload

import (
	"fmt"
	"math/rand"

	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
)

// UniformRandom places k packets on uniformly random origins (respecting
// the per-node origin capacity) with independent uniformly random
// destinations. This is the generic many-to-many instance of the paper's
// main theorems.
func UniformRandom(m *mesh.Mesh, k int, rng *rand.Rand) ([]*sim.Packet, error) {
	capTotal := 0
	for id := mesh.NodeID(0); int(id) < m.Size(); id++ {
		capTotal += m.Degree(id)
	}
	if k < 0 || k > capTotal {
		return nil, fmt.Errorf("workload: k=%d outside [0, %d] for %v", k, capTotal, m)
	}
	used := make([]int, m.Size())
	packets := make([]*sim.Packet, 0, k)
	for len(packets) < k {
		src := mesh.NodeID(rng.Intn(m.Size()))
		if used[src] >= m.Degree(src) {
			continue
		}
		used[src]++
		dst := mesh.NodeID(rng.Intn(m.Size()))
		packets = append(packets, sim.NewPacket(len(packets), src, dst))
	}
	return packets, nil
}

// Permutation returns a full random permutation instance: every node is the
// origin of exactly one packet and the destination of exactly one packet.
func Permutation(m *mesh.Mesh, rng *rand.Rand) []*sim.Packet {
	perm := rng.Perm(m.Size())
	packets := make([]*sim.Packet, m.Size())
	for i, j := range perm {
		packets[i] = sim.NewPacket(i, mesh.NodeID(i), mesh.NodeID(j))
	}
	return packets
}

// PartialPermutation returns k packets with distinct random origins and
// distinct random destinations (each node is the origin of at most one
// packet and the destination of at most one packet).
func PartialPermutation(m *mesh.Mesh, k int, rng *rand.Rand) ([]*sim.Packet, error) {
	if k < 0 || k > m.Size() {
		return nil, fmt.Errorf("workload: k=%d outside [0, %d] for %v", k, m.Size(), m)
	}
	srcs := rng.Perm(m.Size())[:k]
	dsts := rng.Perm(m.Size())[:k]
	packets := make([]*sim.Packet, k)
	for i := range packets {
		packets[i] = sim.NewPacket(i, mesh.NodeID(srcs[i]), mesh.NodeID(dsts[i]))
	}
	return packets, nil
}

// Transpose returns the transpose permutation on a 2-dimensional mesh:
// (x, y) sends to (y, x). A classic structured stress case: all traffic
// crosses the main diagonal.
func Transpose(m *mesh.Mesh) ([]*sim.Packet, error) {
	if m.Dim() != 2 {
		return nil, fmt.Errorf("workload: transpose needs a 2-dimensional mesh, got %v", m)
	}
	packets := make([]*sim.Packet, 0, m.Size())
	coord := make([]int, 2)
	for id := mesh.NodeID(0); int(id) < m.Size(); id++ {
		c := m.Coord(id, coord)
		dst := m.ID([]int{c[1], c[0]})
		packets = append(packets, sim.NewPacket(int(id), id, dst))
	}
	return packets, nil
}

// BitReversal returns the bit-reversal permutation on a 2-dimensional mesh
// whose side is a power of two: each coordinate is replaced by its
// bit-reversed value. Another classic worst case for dimension-ordered
// routers.
func BitReversal(m *mesh.Mesh) ([]*sim.Packet, error) {
	if m.Dim() != 2 {
		return nil, fmt.Errorf("workload: bit reversal needs a 2-dimensional mesh, got %v", m)
	}
	bits := 0
	for 1<<bits < m.Side() {
		bits++
	}
	if 1<<bits != m.Side() {
		return nil, fmt.Errorf("workload: bit reversal needs a power-of-two side, got %d", m.Side())
	}
	rev := func(x int) int {
		r := 0
		for i := 0; i < bits; i++ {
			r = r<<1 | (x>>i)&1
		}
		return r
	}
	packets := make([]*sim.Packet, 0, m.Size())
	coord := make([]int, 2)
	for id := mesh.NodeID(0); int(id) < m.Size(); id++ {
		c := m.Coord(id, coord)
		dst := m.ID([]int{rev(c[0]), rev(c[1])})
		packets = append(packets, sim.NewPacket(int(id), id, dst))
	}
	return packets, nil
}

// SingleTarget returns k packets from distinct random origins, all destined
// to the same target node (the single-target problem of [BTS] and [BNS];
// the trivial lower bound is d_max + k - 1 arrivals cannot beat the target
// in-degree bottleneck).
func SingleTarget(m *mesh.Mesh, k int, target mesh.NodeID, rng *rand.Rand) ([]*sim.Packet, error) {
	if err := m.CheckID(target); err != nil {
		return nil, err
	}
	if k < 0 || k > m.Size() {
		return nil, fmt.Errorf("workload: k=%d outside [0, %d] for %v", k, m.Size(), m)
	}
	srcs := rng.Perm(m.Size())[:k]
	packets := make([]*sim.Packet, k)
	for i, s := range srcs {
		packets[i] = sim.NewPacket(i, mesh.NodeID(s), target)
	}
	return packets, nil
}

// HotSpot returns k packets from random origins where a hotFrac fraction
// target a single random hot node and the rest are uniform. Models the
// hot-spot traffic of shared-resource workloads.
func HotSpot(m *mesh.Mesh, k int, hotFrac float64, rng *rand.Rand) ([]*sim.Packet, error) {
	if hotFrac < 0 || hotFrac > 1 {
		return nil, fmt.Errorf("workload: hotFrac=%v outside [0, 1]", hotFrac)
	}
	packets, err := UniformRandom(m, k, rng)
	if err != nil {
		return nil, err
	}
	hot := mesh.NodeID(rng.Intn(m.Size()))
	for _, p := range packets {
		if rng.Float64() < hotFrac {
			p.Dst = hot
		}
	}
	return packets, nil
}

// LocalRandom returns k packets with uniformly random origins whose
// destinations are uniform among the nodes within L1 distance radius of the
// origin (bounding d_max). Exercises the small-distance regime discussed in
// Section 6 and the [BTS]/[Fe]/[BRS] bounds 2(k-1)+d_max.
func LocalRandom(m *mesh.Mesh, k, radius int, rng *rand.Rand) ([]*sim.Packet, error) {
	if radius < 1 {
		return nil, fmt.Errorf("workload: radius=%d must be positive", radius)
	}
	packets, err := UniformRandom(m, k, rng)
	if err != nil {
		return nil, err
	}
	coord := make([]int, m.Dim())
	for _, p := range packets {
		// Rejection-sample a destination within the L1 ball. The ball
		// around any node contains at least its radius-step axis
		// neighborhood, so this terminates quickly for radius << n*d.
		for {
			m.Coord(p.Src, coord)
			budget := radius
			for a := 0; a < m.Dim(); a++ {
				delta := rng.Intn(2*budget+1) - budget
				c := coord[a] + delta
				if c < 0 {
					c = 0
				}
				if c >= m.Side() {
					c = m.Side() - 1
				}
				budget -= abs(c - coord[a])
				coord[a] = c
			}
			dst := m.ID(coord)
			if m.Dist(p.Src, dst) <= radius {
				p.Dst = dst
				break
			}
		}
	}
	return packets, nil
}

// FullLoad returns perNode packets at every node (uniform random
// destinations), the maximum-load regime of the paper's final remark in
// Section 4 (perNode = 4 on interior 2-D nodes is the full 2d load).
// perNode must not exceed the minimum node degree, d.
func FullLoad(m *mesh.Mesh, perNode int, rng *rand.Rand) ([]*sim.Packet, error) {
	if perNode < 1 || perNode > m.Dim() {
		return nil, fmt.Errorf("workload: perNode=%d outside [1, %d] (corner out-degree)", perNode, m.Dim())
	}
	packets := make([]*sim.Packet, 0, m.Size()*perNode)
	for id := mesh.NodeID(0); int(id) < m.Size(); id++ {
		for j := 0; j < perNode; j++ {
			dst := mesh.NodeID(rng.Intn(m.Size()))
			packets = append(packets, sim.NewPacket(len(packets), id, dst))
		}
	}
	return packets, nil
}

// FullPermutation returns a random permutation instance like Permutation;
// it exists for symmetry with the paper's remark (k = n^d, one packet per
// node) and simply delegates.
func FullPermutation(m *mesh.Mesh, rng *rand.Rand) []*sim.Packet {
	return Permutation(m, rng)
}

// CornerRush returns k packets originating in one corner quadrant of a 2-D
// mesh, all destined to the opposite corner node's quadrant, concentrating
// congestion diagonally. An adversarial instance for greedy routers.
func CornerRush(m *mesh.Mesh, k int, rng *rand.Rand) ([]*sim.Packet, error) {
	if m.Dim() != 2 {
		return nil, fmt.Errorf("workload: corner rush needs a 2-dimensional mesh, got %v", m)
	}
	half := m.Side() / 2
	if half < 1 {
		return nil, fmt.Errorf("workload: mesh side %d too small", m.Side())
	}
	quadCap := 0
	for x := 0; x < half; x++ {
		for y := 0; y < half; y++ {
			quadCap += m.Degree(m.ID([]int{x, y}))
		}
	}
	if k < 0 || k > quadCap {
		return nil, fmt.Errorf("workload: k=%d outside [0, %d] for corner rush on %v", k, quadCap, m)
	}
	used := make(map[mesh.NodeID]int)
	packets := make([]*sim.Packet, 0, k)
	for len(packets) < k {
		src := m.ID([]int{rng.Intn(half), rng.Intn(half)})
		if used[src] >= m.Degree(src) {
			continue
		}
		used[src]++
		dst := m.ID([]int{m.Side() - 1 - rng.Intn(half), m.Side() - 1 - rng.Intn(half)})
		packets = append(packets, sim.NewPacket(len(packets), src, dst))
	}
	return packets, nil
}

// MaxDistance returns the largest source-to-destination distance of the
// instance (the d_max of the [BTS]-style bounds).
func MaxDistance(m *mesh.Mesh, packets []*sim.Packet) int {
	dmax := 0
	for _, p := range packets {
		if d := m.Dist(p.Src, p.Dst); d > dmax {
			dmax = d
		}
	}
	return dmax
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
