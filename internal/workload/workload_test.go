package workload

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
)

// checkInstance validates the universal instance invariants: unique IDs,
// packets at their sources, origin capacity respected.
func checkInstance(t *testing.T, m *mesh.Mesh, packets []*sim.Packet) {
	t.Helper()
	ids := make(map[int]bool)
	origins := make(map[mesh.NodeID]int)
	for _, p := range packets {
		if ids[p.ID] {
			t.Fatalf("duplicate packet id %d", p.ID)
		}
		ids[p.ID] = true
		if p.Node != p.Src {
			t.Fatalf("packet %d not at its source", p.ID)
		}
		if err := m.CheckID(p.Src); err != nil {
			t.Fatal(err)
		}
		if err := m.CheckID(p.Dst); err != nil {
			t.Fatal(err)
		}
		origins[p.Src]++
	}
	for node, cnt := range origins {
		if cnt > m.Degree(node) {
			t.Fatalf("node %d originates %d packets, out-degree %d", node, cnt, m.Degree(node))
		}
	}
}

func TestUniformRandom(t *testing.T) {
	m := mesh.MustNew(2, 8)
	rng := rand.New(rand.NewSource(1))
	packets, err := UniformRandom(m, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(packets) != 100 {
		t.Fatalf("got %d packets", len(packets))
	}
	checkInstance(t, m, packets)

	if _, err := UniformRandom(m, -1, rng); err == nil {
		t.Error("negative k accepted")
	}
	if _, err := UniformRandom(m, 1<<20, rng); err == nil {
		t.Error("k beyond total capacity accepted")
	}
	// k equal to total origin capacity is feasible.
	capTotal := 0
	for id := mesh.NodeID(0); int(id) < m.Size(); id++ {
		capTotal += m.Degree(id)
	}
	packets, err = UniformRandom(m, capTotal, rng)
	if err != nil {
		t.Fatal(err)
	}
	checkInstance(t, m, packets)
}

func TestPermutation(t *testing.T) {
	m := mesh.MustNew(2, 6)
	rng := rand.New(rand.NewSource(2))
	packets := Permutation(m, rng)
	if len(packets) != m.Size() {
		t.Fatalf("got %d packets", len(packets))
	}
	checkInstance(t, m, packets)
	srcs := make(map[mesh.NodeID]bool)
	dsts := make(map[mesh.NodeID]bool)
	for _, p := range packets {
		srcs[p.Src] = true
		dsts[p.Dst] = true
	}
	if len(srcs) != m.Size() || len(dsts) != m.Size() {
		t.Errorf("not a permutation: %d srcs, %d dsts", len(srcs), len(dsts))
	}
	if len(FullPermutation(m, rng)) != m.Size() {
		t.Error("FullPermutation size wrong")
	}
}

func TestPartialPermutation(t *testing.T) {
	m := mesh.MustNew(2, 6)
	rng := rand.New(rand.NewSource(3))
	packets, err := PartialPermutation(m, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	checkInstance(t, m, packets)
	srcs := make(map[mesh.NodeID]bool)
	dsts := make(map[mesh.NodeID]bool)
	for _, p := range packets {
		if srcs[p.Src] || dsts[p.Dst] {
			t.Fatal("sources or destinations not distinct")
		}
		srcs[p.Src] = true
		dsts[p.Dst] = true
	}
	if _, err := PartialPermutation(m, m.Size()+1, rng); err == nil {
		t.Error("oversized partial permutation accepted")
	}
}

func TestTranspose(t *testing.T) {
	m := mesh.MustNew(2, 5)
	packets, err := Transpose(m)
	if err != nil {
		t.Fatal(err)
	}
	checkInstance(t, m, packets)
	for _, p := range packets {
		if m.CoordAxis(p.Src, 0) != m.CoordAxis(p.Dst, 1) ||
			m.CoordAxis(p.Src, 1) != m.CoordAxis(p.Dst, 0) {
			t.Fatalf("packet %d not transposed", p.ID)
		}
	}
	if _, err := Transpose(mesh.MustNew(3, 4)); err == nil {
		t.Error("3-D transpose accepted")
	}
}

func TestBitReversal(t *testing.T) {
	m := mesh.MustNew(2, 8)
	packets, err := BitReversal(m)
	if err != nil {
		t.Fatal(err)
	}
	checkInstance(t, m, packets)
	// (1,0) -> (4,0) under 3-bit reversal.
	for _, p := range packets {
		if p.Src == m.ID([]int{1, 0}) && p.Dst != m.ID([]int{4, 0}) {
			t.Errorf("bit reversal of (1,0) wrong: %d", p.Dst)
		}
	}
	if _, err := BitReversal(mesh.MustNew(2, 6)); err == nil {
		t.Error("non-power-of-two side accepted")
	}
	if _, err := BitReversal(mesh.MustNew(3, 4)); err == nil {
		t.Error("3-D bit reversal accepted")
	}
}

func TestSingleTarget(t *testing.T) {
	m := mesh.MustNew(2, 8)
	rng := rand.New(rand.NewSource(4))
	target := m.ID([]int{3, 3})
	packets, err := SingleTarget(m, 20, target, rng)
	if err != nil {
		t.Fatal(err)
	}
	checkInstance(t, m, packets)
	srcs := map[mesh.NodeID]bool{}
	for _, p := range packets {
		if p.Dst != target {
			t.Fatalf("packet %d has destination %d", p.ID, p.Dst)
		}
		if srcs[p.Src] {
			t.Fatal("duplicate source")
		}
		srcs[p.Src] = true
	}
	if _, err := SingleTarget(m, 5, -1, rng); err == nil {
		t.Error("bad target accepted")
	}
	if _, err := SingleTarget(m, m.Size()+1, target, rng); err == nil {
		t.Error("oversized k accepted")
	}
}

func TestHotSpot(t *testing.T) {
	m := mesh.MustNew(2, 8)
	rng := rand.New(rand.NewSource(5))
	packets, err := HotSpot(m, 200, 0.7, rng)
	if err != nil {
		t.Fatal(err)
	}
	checkInstance(t, m, packets)
	counts := map[mesh.NodeID]int{}
	for _, p := range packets {
		counts[p.Dst]++
	}
	maxCnt := 0
	for _, c := range counts {
		if c > maxCnt {
			maxCnt = c
		}
	}
	if maxCnt < 100 {
		t.Errorf("hot node received only %d of 200 packets at 70%% heat", maxCnt)
	}
	if _, err := HotSpot(m, 10, 1.5, rng); err == nil {
		t.Error("hotFrac > 1 accepted")
	}
	if _, err := HotSpot(m, 10, -0.1, rng); err == nil {
		t.Error("hotFrac < 0 accepted")
	}
}

func TestLocalRandom(t *testing.T) {
	m := mesh.MustNew(2, 12)
	rng := rand.New(rand.NewSource(6))
	const radius = 3
	packets, err := LocalRandom(m, 150, radius, rng)
	if err != nil {
		t.Fatal(err)
	}
	checkInstance(t, m, packets)
	if got := MaxDistance(m, packets); got > radius {
		t.Errorf("MaxDistance = %d > radius %d", got, radius)
	}
	if _, err := LocalRandom(m, 10, 0, rng); err == nil {
		t.Error("zero radius accepted")
	}
}

func TestFullLoad(t *testing.T) {
	m := mesh.MustNew(2, 6)
	rng := rand.New(rand.NewSource(7))
	packets, err := FullLoad(m, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(packets) != 2*m.Size() {
		t.Fatalf("got %d packets", len(packets))
	}
	checkInstance(t, m, packets)
	if _, err := FullLoad(m, 3, rng); err == nil {
		t.Error("perNode above corner capacity accepted")
	}
	if _, err := FullLoad(m, 0, rng); err == nil {
		t.Error("perNode 0 accepted")
	}
}

func TestCornerRush(t *testing.T) {
	m := mesh.MustNew(2, 8)
	rng := rand.New(rand.NewSource(8))
	packets, err := CornerRush(m, 30, rng)
	if err != nil {
		t.Fatal(err)
	}
	checkInstance(t, m, packets)
	half := m.Side() / 2
	for _, p := range packets {
		if m.CoordAxis(p.Src, 0) >= half || m.CoordAxis(p.Src, 1) >= half {
			t.Fatalf("source %d outside origin quadrant", p.Src)
		}
		if m.CoordAxis(p.Dst, 0) < half || m.CoordAxis(p.Dst, 1) < half {
			t.Fatalf("destination %d outside target quadrant", p.Dst)
		}
	}
	if _, err := CornerRush(mesh.MustNew(3, 4), 5, rng); err == nil {
		t.Error("3-D corner rush accepted")
	}
	if _, err := CornerRush(m, 1<<20, rng); err == nil {
		t.Error("oversized corner rush accepted")
	}
}

func TestMaxDistance(t *testing.T) {
	m := mesh.MustNew(2, 8)
	packets := []*sim.Packet{
		sim.NewPacket(0, m.ID([]int{0, 0}), m.ID([]int{3, 0})),
		sim.NewPacket(1, m.ID([]int{0, 0}), m.ID([]int{7, 7})),
	}
	if got := MaxDistance(m, packets); got != 14 {
		t.Errorf("MaxDistance = %d, want 14", got)
	}
	if got := MaxDistance(m, nil); got != 0 {
		t.Errorf("MaxDistance(nil) = %d", got)
	}
}

// TestQuickGeneratorsRespectCapacity fuzzes generator parameters against the
// origin-capacity invariant.
func TestQuickGeneratorsRespectCapacity(t *testing.T) {
	m := mesh.MustNew(2, 6)
	f := func(seed int64, rawK uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(rawK) % 80
		packets, err := UniformRandom(m, k, rng)
		if err != nil || len(packets) != k {
			return false
		}
		origins := map[mesh.NodeID]int{}
		for _, p := range packets {
			origins[p.Src]++
			if origins[p.Src] > m.Degree(p.Src) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestGeneratorsAreDeterministic: the same seed yields the same instance.
func TestGeneratorsAreDeterministic(t *testing.T) {
	m := mesh.MustNew(2, 8)
	gen := func() []*sim.Packet {
		rng := rand.New(rand.NewSource(99))
		ps, err := HotSpot(m, 50, 0.4, rng)
		if err != nil {
			t.Fatal(err)
		}
		return ps
	}
	a, b := gen(), gen()
	for i := range a {
		if a[i].Src != b[i].Src || a[i].Dst != b[i].Dst {
			t.Fatalf("instance differs at packet %d", i)
		}
	}
}
