// Package trace records hot-potato runs move by move, serializes them to a
// compact line-based text format, and re-verifies them independently of
// the engine: the verifier replays the moves against the raw model rules
// (hot-potato compliance, one packet per arc, greediness) with none of the
// engine's code in the loop. A recorded trace therefore serves as an
// exchangeable witness that a run was legal, as a regression artifact, and
// as an oracle that would catch a hypothetical engine bug.
package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"

	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
)

// PacketSpec identifies one packet of the traced instance.
type PacketSpec struct {
	ID  int
	Src mesh.NodeID
	Dst mesh.NodeID
}

// MoveSpec is one packet movement: the packet took the arc in direction
// Dir out of its current node.
type MoveSpec struct {
	PacketID int
	Dir      mesh.Dir
}

// Trace is a fully recorded run.
type Trace struct {
	// Dim and Side describe the network; Wrap marks a torus.
	Dim, Side int
	Wrap      bool
	// Packets lists the instance (including packets born at their
	// destinations, which never move).
	Packets []PacketSpec
	// Steps holds the moves of each step, in order.
	Steps [][]MoveSpec
}

// Recorder captures an engine run. Register it as an observer before the
// first step; packets injected later (dynamic traffic) are picked up
// automatically at their first move.
type Recorder struct {
	trace *Trace
	known map[int]bool
}

var _ sim.Observer = (*Recorder)(nil)

// NewRecorder builds a recorder for the given instance.
func NewRecorder(m *mesh.Mesh, packets []*sim.Packet) *Recorder {
	r := &Recorder{
		trace: &Trace{Dim: m.Dim(), Side: m.Side(), Wrap: m.Wrap()},
		known: make(map[int]bool, len(packets)),
	}
	for _, p := range packets {
		r.trace.Packets = append(r.trace.Packets, PacketSpec{ID: p.ID, Src: p.Src, Dst: p.Dst})
		r.known[p.ID] = true
	}
	return r
}

// OnStep implements sim.Observer.
func (r *Recorder) OnStep(rec *sim.StepRecord) {
	moves := make([]MoveSpec, 0, len(rec.Moves))
	for i := range rec.Moves {
		mv := &rec.Moves[i]
		p := mv.Packet
		if !r.known[p.ID] {
			r.known[p.ID] = true
			r.trace.Packets = append(r.trace.Packets, PacketSpec{ID: p.ID, Src: p.Src, Dst: p.Dst})
		}
		moves = append(moves, MoveSpec{PacketID: p.ID, Dir: mv.Dir})
	}
	r.trace.Steps = append(r.trace.Steps, moves)
}

// Trace returns the recorded trace (valid after the run completes).
func (r *Recorder) Trace() *Trace { return r.trace }

// header is the format magic line.
const header = "hotpotato-trace v1"

// Write serializes the trace.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, header)
	kind := "mesh"
	if t.Wrap {
		kind = "torus"
	}
	fmt.Fprintf(bw, "%s %d %d\n", kind, t.Dim, t.Side)
	fmt.Fprintf(bw, "packets %d\n", len(t.Packets))
	for _, p := range t.Packets {
		fmt.Fprintf(bw, "p %d %d %d\n", p.ID, p.Src, p.Dst)
	}
	fmt.Fprintf(bw, "steps %d\n", len(t.Steps))
	for i, step := range t.Steps {
		fmt.Fprintf(bw, "s %d %d\n", i, len(step))
		for _, mv := range step {
			fmt.Fprintf(bw, "m %d %d\n", mv.PacketID, mv.Dir)
		}
	}
	return bw.Flush()
}

// ErrFormat is returned for malformed trace input.
var ErrFormat = errors.New("trace: malformed input")

// Read parses a serialized trace.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewScanner(r)
	br.Buffer(make([]byte, 1<<16), 1<<24)
	next := func() (string, error) {
		if !br.Scan() {
			if err := br.Err(); err != nil {
				return "", err
			}
			return "", fmt.Errorf("%w: unexpected end of input", ErrFormat)
		}
		return br.Text(), nil
	}
	line, err := next()
	if err != nil {
		return nil, err
	}
	if line != header {
		return nil, fmt.Errorf("%w: bad header %q", ErrFormat, line)
	}
	t := &Trace{}
	if line, err = next(); err != nil {
		return nil, err
	}
	var kind string
	if _, err := fmt.Sscanf(line, "%s %d %d", &kind, &t.Dim, &t.Side); err != nil || (kind != "mesh" && kind != "torus") {
		return nil, fmt.Errorf("%w: %q", ErrFormat, line)
	}
	t.Wrap = kind == "torus"
	var np int
	if line, err = next(); err != nil {
		return nil, err
	}
	if _, err := fmt.Sscanf(line, "packets %d", &np); err != nil {
		return nil, fmt.Errorf("%w: %q", ErrFormat, line)
	}
	for i := 0; i < np; i++ {
		if line, err = next(); err != nil {
			return nil, err
		}
		var p PacketSpec
		if _, err := fmt.Sscanf(line, "p %d %d %d", &p.ID, &p.Src, &p.Dst); err != nil {
			return nil, fmt.Errorf("%w: %q", ErrFormat, line)
		}
		t.Packets = append(t.Packets, p)
	}
	var ns int
	if line, err = next(); err != nil {
		return nil, err
	}
	if _, err := fmt.Sscanf(line, "steps %d", &ns); err != nil {
		return nil, fmt.Errorf("%w: %q", ErrFormat, line)
	}
	for s := 0; s < ns; s++ {
		var idx, nm int
		if line, err = next(); err != nil {
			return nil, err
		}
		if _, err := fmt.Sscanf(line, "s %d %d", &idx, &nm); err != nil {
			return nil, fmt.Errorf("%w: %q", ErrFormat, line)
		}
		if idx != s {
			return nil, fmt.Errorf("%w: step %d labeled %d", ErrFormat, s, idx)
		}
		step := make([]MoveSpec, 0, nm)
		for j := 0; j < nm; j++ {
			if line, err = next(); err != nil {
				return nil, err
			}
			var mv MoveSpec
			var dir int
			if _, err := fmt.Sscanf(line, "m %d %d", &mv.PacketID, &dir); err != nil {
				return nil, fmt.Errorf("%w: %q", ErrFormat, line)
			}
			mv.Dir = mesh.Dir(dir)
			step = append(step, mv)
		}
		t.Steps = append(t.Steps, step)
	}
	return t, nil
}

// ReplayResult is the verifier's summary.
type ReplayResult struct {
	// Steps is the arrival time of the last packet.
	Steps int
	// Delivered counts packets that reached their destination.
	Delivered int
	// Deflections counts moves away from destinations.
	Deflections int
}

// Verify replays the trace against the model rules and returns the
// summary. checkGreedy additionally enforces Definition 6 at every step.
// The verifier is deliberately independent of the sim engine.
func (t *Trace) Verify(checkGreedy bool) (*ReplayResult, error) {
	var m *mesh.Mesh
	var err error
	if t.Wrap {
		m, err = mesh.NewTorus(t.Dim, t.Side)
	} else {
		m, err = mesh.New(t.Dim, t.Side)
	}
	if err != nil {
		return nil, err
	}
	pos := make(map[int]mesh.NodeID, len(t.Packets))
	dst := make(map[int]mesh.NodeID, len(t.Packets))
	arrived := make(map[int]bool, len(t.Packets))
	res := &ReplayResult{}
	for _, p := range t.Packets {
		if _, dup := pos[p.ID]; dup {
			return nil, fmt.Errorf("trace: duplicate packet %d", p.ID)
		}
		if err := m.CheckID(p.Src); err != nil {
			return nil, err
		}
		if err := m.CheckID(p.Dst); err != nil {
			return nil, err
		}
		pos[p.ID] = p.Src
		dst[p.ID] = p.Dst
		if p.Src == p.Dst {
			arrived[p.ID] = true
			res.Delivered++
		}
	}

	// injectedAt: packets appear in the trace only from their first moving
	// step (dynamic traffic); a packet is "live" from the first step it
	// moves. Hot-potato compliance is therefore checked as: once a packet
	// has moved, it must move every step until arrival.
	started := make(map[int]bool, len(t.Packets))

	for s, step := range t.Steps {
		usedArc := make(map[int64]bool, len(step))
		movedNow := make(map[int]bool, len(step))
		for _, mv := range step {
			node, ok := pos[mv.PacketID]
			if !ok {
				return nil, fmt.Errorf("trace: step %d moves unknown packet %d", s, mv.PacketID)
			}
			if arrived[mv.PacketID] {
				return nil, fmt.Errorf("trace: step %d moves arrived packet %d", s, mv.PacketID)
			}
			if mv.Dir < 0 || int(mv.Dir) >= m.DirCount() {
				return nil, fmt.Errorf("trace: step %d packet %d bad direction %d", s, mv.PacketID, mv.Dir)
			}
			if _, ok := m.Neighbor(node, mv.Dir); !ok {
				return nil, fmt.Errorf("trace: step %d packet %d moves off the mesh", s, mv.PacketID)
			}
			arcKey := int64(node)*int64(m.DirCount()) + int64(mv.Dir)
			if usedArc[arcKey] {
				return nil, fmt.Errorf("trace: step %d arc (%d,%v) used twice", s, node, mv.Dir)
			}
			usedArc[arcKey] = true
			movedNow[mv.PacketID] = true
		}
		// Hot-potato compliance: every previously started, unarrived
		// packet must move.
		for id := range started {
			if !arrived[id] && !movedNow[id] {
				return nil, fmt.Errorf("trace: step %d packet %d held in place (hot-potato violation)", s, id)
			}
		}
		if checkGreedy {
			if err := t.checkGreedyStep(m, s, step, pos, dst); err != nil {
				return nil, err
			}
		}
		// Apply moves.
		for _, mv := range step {
			started[mv.PacketID] = true
			from := pos[mv.PacketID]
			to, _ := m.Neighbor(from, mv.Dir)
			if !m.IsGoodDir(from, dst[mv.PacketID], mv.Dir) {
				res.Deflections++
			}
			pos[mv.PacketID] = to
			if to == dst[mv.PacketID] {
				arrived[mv.PacketID] = true
				res.Delivered++
				res.Steps = s + 1
			}
		}
	}
	return res, nil
}

// checkGreedyStep verifies Definition 6 for one step: group moves by
// source node; any deflected packet must have all its good arcs used by
// advancing packets from the same node.
func (t *Trace) checkGreedyStep(m *mesh.Mesh, s int, step []MoveSpec, pos, dst map[int]mesh.NodeID) error {
	// arcAdvancing[node*2d+dir] = some packet advanced via that arc.
	advancing := make(map[int64]bool, len(step))
	for _, mv := range step {
		from := pos[mv.PacketID]
		if m.IsGoodDir(from, dst[mv.PacketID], mv.Dir) {
			advancing[int64(from)*int64(m.DirCount())+int64(mv.Dir)] = true
		}
	}
	var buf [2 * mesh.MaxDim]mesh.Dir
	for _, mv := range step {
		from := pos[mv.PacketID]
		if m.IsGoodDir(from, dst[mv.PacketID], mv.Dir) {
			continue
		}
		for _, g := range m.GoodDirs(from, dst[mv.PacketID], buf[:0]) {
			if !advancing[int64(from)*int64(m.DirCount())+int64(g)] {
				return fmt.Errorf("trace: step %d packet %d deflected with good arc %v unused by advancing packets (Definition 6)",
					s, mv.PacketID, g)
			}
		}
	}
	return nil
}
