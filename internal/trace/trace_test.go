package trace

import (
	"math/rand"
	"os"
	"strings"
	"testing"

	"hotpotato/internal/core"
	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
	"hotpotato/internal/workload"
)

// record runs a restricted-priority instance with a recorder attached.
func record(t *testing.T, m *mesh.Mesh, packets []*sim.Packet, seed int64) (*Trace, *sim.Result) {
	t.Helper()
	e, err := sim.New(m, core.NewRestrictedPriority(), packets, sim.Options{
		Seed:       seed,
		Validation: sim.ValidateRestricted,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRecorder(m, packets)
	e.AddObserver(r)
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return r.Trace(), res
}

func TestRecordVerifyRoundTrip(t *testing.T) {
	m := mesh.MustNew(2, 8)
	rng := rand.New(rand.NewSource(1))
	packets, err := workload.UniformRandom(m, 60, rng)
	if err != nil {
		t.Fatal(err)
	}
	tr, res := record(t, m, packets, 1)

	// The independent verifier must agree with the engine, including the
	// greediness check.
	rep, err := tr.Verify(true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Steps != res.Steps {
		t.Errorf("verifier steps %d, engine %d", rep.Steps, res.Steps)
	}
	if rep.Delivered != res.Delivered {
		t.Errorf("verifier delivered %d, engine %d", rep.Delivered, res.Delivered)
	}
	if int64(rep.Deflections) != res.TotalDeflections {
		t.Errorf("verifier deflections %d, engine %d", rep.Deflections, res.TotalDeflections)
	}

	// Serialize and parse back; the replay must be identical.
	var sb strings.Builder
	if err := tr.Write(&sb); err != nil {
		t.Fatal(err)
	}
	parsed, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := parsed.Verify(true)
	if err != nil {
		t.Fatal(err)
	}
	if *rep2 != *rep {
		t.Errorf("parsed replay %+v differs from original %+v", rep2, rep)
	}
}

func TestVerifyCatchesTampering(t *testing.T) {
	m := mesh.MustNew(2, 6)
	rng := rand.New(rand.NewSource(2))
	packets, err := workload.UniformRandom(m, 30, rng)
	if err != nil {
		t.Fatal(err)
	}
	base, _ := record(t, m, packets, 2)

	clone := func() *Trace {
		var sb strings.Builder
		if err := base.Write(&sb); err != nil {
			t.Fatal(err)
		}
		c, err := Read(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	t.Run("dropped move", func(t *testing.T) {
		c := clone()
		// Removing one move from a middle step strands a live packet.
		for s := range c.Steps {
			if len(c.Steps[s]) > 1 && s < len(c.Steps)-1 {
				c.Steps[s] = c.Steps[s][1:]
				break
			}
		}
		if _, err := c.Verify(false); err == nil {
			t.Error("dropped move not caught")
		}
	})

	t.Run("duplicated arc", func(t *testing.T) {
		c := clone()
		for s := range c.Steps {
			if len(c.Steps[s]) > 1 {
				a, b := c.Steps[s][0], c.Steps[s][1]
				// Force b onto a's arc only if they share a node; otherwise
				// just corrupt b's direction to a's and expect some error.
				b.Dir = a.Dir
				b.PacketID = a.PacketID
				c.Steps[s][1] = b
				break
			}
		}
		if _, err := c.Verify(false); err == nil {
			t.Error("duplicate move not caught")
		}
	})

	t.Run("unknown packet", func(t *testing.T) {
		c := clone()
		c.Steps[0] = append(c.Steps[0], MoveSpec{PacketID: 99999, Dir: 0})
		if _, err := c.Verify(false); err == nil {
			t.Error("unknown packet not caught")
		}
	})

	t.Run("bad direction", func(t *testing.T) {
		c := clone()
		c.Steps[0][0].Dir = 99
		if _, err := c.Verify(false); err == nil {
			t.Error("bad direction not caught")
		}
	})

	t.Run("duplicate packet spec", func(t *testing.T) {
		c := clone()
		c.Packets = append(c.Packets, c.Packets[0])
		if _, err := c.Verify(false); err == nil {
			t.Error("duplicate packet spec not caught")
		}
	})
}

// TestVerifyCatchesNonGreedyTrace: a hand-built trace that deflects a
// packet while its good arc is free fails the greedy check but passes the
// basic one.
func TestVerifyCatchesNonGreedyTrace(t *testing.T) {
	m := mesh.MustNew(2, 4)
	tr := &Trace{
		Dim:  2,
		Side: 4,
		Packets: []PacketSpec{
			{ID: 0, Src: m.ID([]int{1, 1}), Dst: m.ID([]int{3, 1})},
		},
		Steps: [][]MoveSpec{
			{{PacketID: 0, Dir: mesh.DirMinus(0)}}, // deflected for no reason
			{{PacketID: 0, Dir: mesh.DirPlus(0)}},
			{{PacketID: 0, Dir: mesh.DirPlus(0)}},
			{{PacketID: 0, Dir: mesh.DirPlus(0)}},
		},
	}
	if _, err := tr.Verify(false); err != nil {
		t.Fatalf("basic verify failed: %v", err)
	}
	if _, err := tr.Verify(true); err == nil {
		t.Error("non-greedy trace passed the greedy check")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not a trace\n",
		"hotpotato-trace v1\nmesh x y\n",
		"hotpotato-trace v1\nmesh 2 4\npackets 1\n",
		"hotpotato-trace v1\nmesh 2 4\npackets 0\nsteps 1\ns 5 0\n",
	}
	for i, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// TestRecorderWithDynamicTraffic: packets that appear mid-run (injection)
// are captured at their first move and verify cleanly.
func TestRecorderWithDynamicTraffic(t *testing.T) {
	m := mesh.MustNew(2, 6)
	e, err := sim.New(m, core.NewRestrictedPriority(), nil, sim.Options{
		Seed:       3,
		Validation: sim.ValidateRestricted,
		MaxSteps:   500,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRecorder(m, nil)
	e.AddObserver(r)
	e.SetInjector(&testInjector{until: 20})
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	rep, err := r.Trace().Verify(true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered != res.Delivered {
		t.Errorf("verifier delivered %d, engine %d", rep.Delivered, res.Delivered)
	}
}

type testInjector struct{ until int }

func (ti *testInjector) Inject(t int, e sim.InjectorHost, rng *rand.Rand) []*sim.Packet {
	if t >= ti.until || t%3 != 0 {
		return nil
	}
	src := mesh.NodeID(rng.Intn(e.Mesh().Size()))
	if e.InjectionCapacity(src) == 0 {
		return nil
	}
	dst := mesh.NodeID(rng.Intn(e.Mesh().Size()))
	if dst == src {
		// A self-addressed packet is absorbed at injection time without ever
		// moving, so it can never appear in a move-based trace; keep the
		// workload within the format's scope.
		return nil
	}
	return []*sim.Packet{sim.NewPacket(e.NextPacketID(), src, dst)}
}

func (ti *testInjector) Exhausted(t int) bool { return t >= ti.until }

// TestGoldenTrace pins the on-disk format: the checked-in fixture must
// parse and verify with exactly the recorded totals. If the format
// changes, regenerate testdata/golden.trace with:
//
//	go run ./cmd/hotpotato -n 6 -k 12 -seed 7 -policy restricted-det \
//	    -validate restricted -trace-out internal/trace/testdata/golden.trace
func TestGoldenTrace(t *testing.T) {
	f, err := os.Open("testdata/golden.trace")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Dim != 2 || tr.Side != 6 || tr.Wrap || len(tr.Packets) != 12 {
		t.Fatalf("golden header wrong: %+v", tr)
	}
	rep, err := tr.Verify(true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Steps != 7 || rep.Delivered != 12 || rep.Deflections != 1 {
		t.Errorf("golden replay = %+v, want steps=7 delivered=12 deflections=1", rep)
	}
}
