package fault

import (
	"fmt"
	"math/rand"

	"hotpotato/internal/mesh"
)

// LinkFlaps is a memoryless link-failure process: at every step each up
// link fails with probability FailRate and each cut link recovers with
// probability RepairRate. Links are enumerated in a fixed order (node id,
// then positive axis direction — each undirected link exactly once on both
// meshes and tori), so the sequence is fully determined by the RNG stream.
//
// The expected steady-state fraction of down links is
// FailRate / (FailRate + RepairRate); MaxDown additionally caps the number
// of concurrently down links, which is the knob experiments use to
// guarantee the network keeps spare capacity.
type LinkFlaps struct {
	// FailRate is the per-step failure probability of an up link.
	FailRate float64
	// RepairRate is the per-step recovery probability of a down link.
	RepairRate float64
	// MaxDown caps concurrently down links; 0 means no cap.
	MaxDown int
}

// NewLinkFlaps validates the rates and returns the process.
func NewLinkFlaps(failRate, repairRate float64) (*LinkFlaps, error) {
	if failRate < 0 || failRate > 1 || repairRate < 0 || repairRate > 1 {
		return nil, fmt.Errorf("fault: rates must be in [0,1], got fail=%g repair=%g", failRate, repairRate)
	}
	return &LinkFlaps{FailRate: failRate, RepairRate: repairRate}, nil
}

// Advance implements Model.
func (f *LinkFlaps) Advance(t int, o *mesh.Overlay, rng *rand.Rand) {
	if f.FailRate == 0 && o.DownLinks() == 0 {
		return
	}
	base := o.Base()
	size := base.Size()
	for id := 0; id < size; id++ {
		node := mesh.NodeID(id)
		for axis := 0; axis < base.Dim(); axis++ {
			dir := mesh.DirPlus(axis)
			if !base.HasArc(node, dir) {
				continue
			}
			if o.LinkDown(node, dir) {
				if rng.Float64() < f.RepairRate {
					o.RestoreLink(node, dir)
				}
			} else if rng.Float64() < f.FailRate {
				if f.MaxDown <= 0 || o.DownLinks() < f.MaxDown {
					o.FailLink(node, dir)
				}
			}
		}
	}
}

// NodeCrashes is a memoryless node-failure process: at every step each up
// node crashes with probability CrashRate and each down node reboots with
// probability RepairRate (a RepairRate of 0 makes crashes permanent).
// Nodes are visited in id order, so the sequence is fully determined by
// the RNG stream.
type NodeCrashes struct {
	// CrashRate is the per-step crash probability of an up node.
	CrashRate float64
	// RepairRate is the per-step reboot probability of a down node.
	RepairRate float64
	// MaxDown caps concurrently down nodes; 0 means no cap.
	MaxDown int
}

// NewNodeCrashes validates the rates and returns the process.
func NewNodeCrashes(crashRate, repairRate float64) (*NodeCrashes, error) {
	if crashRate < 0 || crashRate > 1 || repairRate < 0 || repairRate > 1 {
		return nil, fmt.Errorf("fault: rates must be in [0,1], got crash=%g repair=%g", crashRate, repairRate)
	}
	return &NodeCrashes{CrashRate: crashRate, RepairRate: repairRate}, nil
}

// Advance implements Model.
func (f *NodeCrashes) Advance(t int, o *mesh.Overlay, rng *rand.Rand) {
	if f.CrashRate == 0 && o.DownNodes() == 0 {
		return
	}
	size := o.Base().Size()
	for id := 0; id < size; id++ {
		node := mesh.NodeID(id)
		if o.NodeDown(node) {
			if rng.Float64() < f.RepairRate {
				o.RestoreNode(node)
			}
		} else if rng.Float64() < f.CrashRate {
			if f.MaxDown <= 0 || o.DownNodes() < f.MaxDown {
				o.FailNode(node)
			}
		}
	}
}
