// Package fault provides deterministic, seed-reproducible fault models for
// the simulator: scripted link/node failure schedules and memoryless
// flap/crash processes, in the spirit of the dynamic and adversarial
// injection settings of the grid-routing line of work (Even-Medina-
// Patt-Shamir; Even-Medina). Deflection routing is the classic answer to
// faulty networks precisely because routers are bufferless and stateless;
// these models let the engine exercise that claim.
//
// A model mutates a mesh.Overlay at the beginning of each step. The engine
// owns when Advance is called and with which RNG (a dedicated stream
// derived from the engine seed, untouched by routing), so a (seed, model)
// pair always reproduces the same fault sequence — independent of the
// policy, the worker count, and the traffic.
//
// Models are stateful (schedules keep a cursor, processes keep no state but
// draw from the RNG): construct a fresh model per run.
package fault

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"slices"
	"strconv"
	"strings"

	"hotpotato/internal/mesh"
)

// Model is a fault process: Advance applies the failure transitions for
// step t to the overlay. It must be deterministic given its own state and
// the RNG stream, and must only be called with non-decreasing t.
//
// The interface is structurally identical to sim.FaultModel, so every
// model in this package plugs into sim.Engine.SetFaults directly (package
// sim deliberately does not import this package).
type Model interface {
	Advance(t int, o *mesh.Overlay, rng *rand.Rand)
}

// Kind enumerates scripted fault event types.
type Kind int

const (
	// LinkDown cuts the bidirectional link (Node, Dir).
	LinkDown Kind = iota
	// LinkUp restores the link (Node, Dir).
	LinkUp
	// NodeDown crashes Node.
	NodeDown
	// NodeUp reboots Node.
	NodeUp
)

// String renders the kind in the script syntax.
func (k Kind) String() string {
	switch k {
	case LinkDown:
		return "link-down"
	case LinkUp:
		return "link-up"
	case NodeDown:
		return "node-down"
	case NodeUp:
		return "node-up"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one scripted fault transition.
type Event struct {
	// Time is the step at the beginning of which the event fires.
	Time int
	// Kind is the transition type.
	Kind Kind
	// Node is the crashed/rebooted node, or the near endpoint of the link.
	Node mesh.NodeID
	// Dir identifies the link for LinkDown/LinkUp; ignored for node events.
	Dir mesh.Dir
}

// Schedule replays a fixed list of events: every event with Time <= t is
// applied by Advance(t), in time order (ties in input order). A Schedule
// is single-use per run; Reset rewinds it.
type Schedule struct {
	events []Event
	cursor int
}

// NewSchedule builds a schedule from events in any order.
func NewSchedule(events ...Event) *Schedule {
	s := &Schedule{events: append([]Event(nil), events...)}
	slices.SortStableFunc(s.events, func(a, b Event) int { return a.Time - b.Time })
	return s
}

// Events returns the schedule's events in firing order.
func (s *Schedule) Events() []Event { return s.events }

// Reset rewinds the schedule for a fresh run.
func (s *Schedule) Reset() { s.cursor = 0 }

// Advance implements Model.
func (s *Schedule) Advance(t int, o *mesh.Overlay, rng *rand.Rand) {
	for s.cursor < len(s.events) && s.events[s.cursor].Time <= t {
		ev := s.events[s.cursor]
		s.cursor++
		switch ev.Kind {
		case LinkDown:
			o.FailLink(ev.Node, ev.Dir)
		case LinkUp:
			o.RestoreLink(ev.Node, ev.Dir)
		case NodeDown:
			o.FailNode(ev.Node)
		case NodeUp:
			o.RestoreNode(ev.Node)
		}
	}
}

// Compose chains several models into one; each step they advance in the
// given order against the same overlay and shared RNG stream.
func Compose(models ...Model) Model {
	flat := make(multi, 0, len(models))
	for _, m := range models {
		if m != nil {
			flat = append(flat, m)
		}
	}
	return flat
}

type multi []Model

// Advance implements Model.
func (ms multi) Advance(t int, o *mesh.Overlay, rng *rand.Rand) {
	for _, m := range ms {
		m.Advance(t, o, rng)
	}
}

// ParseScript reads a fault script: one event per line,
//
//	<step> <op> <node> [dir]
//
// where <op> is link-down, link-up, node-down or node-up, <node> is either
// a node id or comma-separated coordinates ("3,4"), and <dir> (link events
// only) is +/- followed by an axis: x, y, z, w or the axis index ("+x",
// "-1"). Blank lines and lines starting with '#' are ignored.
//
//	# cut the +x link out of (3,4) at step 10, restore it at step 50
//	10 link-down 3,4 +x
//	50 link-up 3,4 +x
//	30 node-down 5,5
func ParseScript(r io.Reader, m *mesh.Mesh) (*Schedule, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			return nil, fmt.Errorf("fault: line %d: want \"<step> <op> <node> [dir]\", got %q", lineNo, line)
		}
		t, err := strconv.Atoi(fields[0])
		if err != nil || t < 0 {
			return nil, fmt.Errorf("fault: line %d: bad step %q", lineNo, fields[0])
		}
		var kind Kind
		switch fields[1] {
		case "link-down":
			kind = LinkDown
		case "link-up":
			kind = LinkUp
		case "node-down":
			kind = NodeDown
		case "node-up":
			kind = NodeUp
		default:
			return nil, fmt.Errorf("fault: line %d: unknown op %q", lineNo, fields[1])
		}
		node, err := parseNode(fields[2], m)
		if err != nil {
			return nil, fmt.Errorf("fault: line %d: %v", lineNo, err)
		}
		ev := Event{Time: t, Kind: kind, Node: node, Dir: mesh.NoDir}
		if kind == LinkDown || kind == LinkUp {
			if len(fields) < 4 {
				return nil, fmt.Errorf("fault: line %d: %s needs a direction", lineNo, kind)
			}
			dir, err := ParseDir(fields[3], m.Dim())
			if err != nil {
				return nil, fmt.Errorf("fault: line %d: %v", lineNo, err)
			}
			ev.Dir = dir
		} else if len(fields) > 3 {
			return nil, fmt.Errorf("fault: line %d: %s takes no direction", lineNo, kind)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fault: reading script: %w", err)
	}
	return NewSchedule(events...), nil
}

// parseNode accepts a plain node id or comma-separated coordinates.
func parseNode(s string, m *mesh.Mesh) (mesh.NodeID, error) {
	parts := strings.Split(s, ",")
	if len(parts) == 1 {
		id, err := strconv.Atoi(s)
		if err != nil {
			return 0, fmt.Errorf("bad node %q", s)
		}
		if err := m.CheckID(mesh.NodeID(id)); err != nil {
			return 0, err
		}
		return mesh.NodeID(id), nil
	}
	if len(parts) != m.Dim() {
		return 0, fmt.Errorf("node %q has %d coordinates, mesh is %d-dimensional", s, len(parts), m.Dim())
	}
	coord := make([]int, len(parts))
	for i, p := range parts {
		c, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || c < 0 || c >= m.Side() {
			return 0, fmt.Errorf("bad coordinate %q in node %q", p, s)
		}
		coord[i] = c
	}
	return m.ID(coord), nil
}

// ParseDir parses a direction token: '+' or '-' followed by an axis named
// x/y/z/w or given as its index.
func ParseDir(s string, dim int) (mesh.Dir, error) {
	if len(s) < 2 || (s[0] != '+' && s[0] != '-') {
		return mesh.NoDir, fmt.Errorf("bad direction %q (want e.g. +x or -1)", s)
	}
	axis := -1
	switch rest := s[1:]; rest {
	case "x":
		axis = 0
	case "y":
		axis = 1
	case "z":
		axis = 2
	case "w":
		axis = 3
	default:
		a, err := strconv.Atoi(rest)
		if err != nil {
			return mesh.NoDir, fmt.Errorf("bad direction %q (want e.g. +x or -1)", s)
		}
		axis = a
	}
	if axis < 0 || axis >= dim {
		return mesh.NoDir, fmt.Errorf("direction %q axis out of range for dimension %d", s, dim)
	}
	if s[0] == '+' {
		return mesh.DirPlus(axis), nil
	}
	return mesh.DirMinus(axis), nil
}
