package fault

import (
	"math/rand"
	"strings"
	"testing"

	"hotpotato/internal/mesh"
)

func TestScheduleAppliesInTimeOrder(t *testing.T) {
	m := mesh.MustNew(2, 4)
	o := mesh.NewOverlay(m)
	n := m.ID([]int{1, 1})
	s := NewSchedule(
		Event{Time: 5, Kind: LinkUp, Node: n, Dir: mesh.DirPlus(0)},
		Event{Time: 0, Kind: LinkDown, Node: n, Dir: mesh.DirPlus(0)},
		Event{Time: 3, Kind: NodeDown, Node: 0},
	)

	s.Advance(0, o, nil)
	if o.HasArc(n, mesh.DirPlus(0)) {
		t.Error("t=0 event not applied")
	}
	if o.NodeDown(0) {
		t.Error("t=3 event applied early")
	}
	s.Advance(1, o, nil)
	s.Advance(2, o, nil)
	if o.NodeDown(0) {
		t.Error("t=3 event applied at t=2")
	}
	// A jump past several event times applies all of them (catch-up).
	s.Advance(7, o, nil)
	if !o.NodeDown(0) {
		t.Error("t=3 event missing after catch-up")
	}
	if !o.HasArc(n, mesh.DirPlus(0)) {
		t.Error("t=5 restore missing after catch-up")
	}

	// After a rewind, a fresh catch-up replays everything: the link ends up
	// restored (t=5 event) and the node ends up down (t=3 event).
	s.Reset()
	o.Reset()
	s.Advance(10, o, nil)
	if !o.HasArc(n, mesh.DirPlus(0)) || !o.NodeDown(0) {
		t.Error("Reset did not rewind the schedule")
	}
}

func TestParseScript(t *testing.T) {
	m := mesh.MustNew(2, 8)
	script := `
# cut a link, crash a node, restore both
10 link-down 3,4 +x
50 link-up 3,4 +x
30 node-down 5,5
60 node-up 5,5
5 link-down 12 -y
`
	s, err := ParseScript(strings.NewReader(script), m)
	if err != nil {
		t.Fatal(err)
	}
	evs := s.Events()
	if len(evs) != 5 {
		t.Fatalf("parsed %d events, want 5", len(evs))
	}
	// Sorted by time.
	for i := 1; i < len(evs); i++ {
		if evs[i-1].Time > evs[i].Time {
			t.Fatalf("events not time-sorted: %v", evs)
		}
	}
	if evs[0] != (Event{Time: 5, Kind: LinkDown, Node: 12, Dir: mesh.DirMinus(1)}) {
		t.Errorf("first event = %+v", evs[0])
	}
	if want := (Event{Time: 10, Kind: LinkDown, Node: m.ID([]int{3, 4}), Dir: mesh.DirPlus(0)}); evs[1] != want {
		t.Errorf("second event = %+v, want %+v", evs[1], want)
	}
	if evs[2].Kind != NodeDown || evs[2].Dir != mesh.NoDir {
		t.Errorf("node event = %+v", evs[2])
	}

	for _, bad := range []string{
		"x link-down 0 +x",  // bad step
		"1 melt-down 0",     // bad op
		"1 link-down 0",     // missing dir
		"1 link-down 0 +q",  // bad dir
		"1 link-down 0 +3",  // axis out of range for d=2
		"1 node-down 0 +x",  // node event with dir
		"1 node-down 9,9,9", // wrong coordinate count
		"1 node-down 99999", // id off the mesh
		"1 link-down",       // too few fields
		"1 node-down 8,1",   // coordinate out of range
	} {
		if _, err := ParseScript(strings.NewReader(bad), m); err == nil {
			t.Errorf("ParseScript(%q) accepted invalid input", bad)
		}
	}
}

func TestParseDir(t *testing.T) {
	cases := []struct {
		in   string
		dim  int
		want mesh.Dir
		ok   bool
	}{
		{"+x", 2, mesh.DirPlus(0), true},
		{"-y", 2, mesh.DirMinus(1), true},
		{"+1", 2, mesh.DirPlus(1), true},
		{"-0", 3, mesh.DirMinus(0), true},
		{"+z", 3, mesh.DirPlus(2), true},
		{"+w", 4, mesh.DirPlus(3), true},
		{"+z", 2, mesh.NoDir, false},
		{"x", 2, mesh.NoDir, false},
		{"", 2, mesh.NoDir, false},
		{"+", 2, mesh.NoDir, false},
	}
	for _, c := range cases {
		got, err := ParseDir(c.in, c.dim)
		if (err == nil) != c.ok || (c.ok && got != c.want) {
			t.Errorf("ParseDir(%q, %d) = (%v, %v), want (%v, ok=%v)", c.in, c.dim, got, err, c.want, c.ok)
		}
	}
}

// TestLinkFlapsDeterministic: the same RNG seed reproduces the exact same
// failure trajectory.
func TestLinkFlapsDeterministic(t *testing.T) {
	m := mesh.MustNew(2, 8)
	trajectory := func(seed int64) []int {
		f, err := NewLinkFlaps(0.01, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		o := mesh.NewOverlay(m)
		rng := rand.New(rand.NewSource(seed))
		var down []int
		for step := 0; step < 200; step++ {
			f.Advance(step, o, rng)
			down = append(down, o.DownLinks())
		}
		return down
	}
	a, b := trajectory(7), trajectory(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("step %d: %d vs %d down links for the same seed", i, a[i], b[i])
		}
	}
	c := trajectory(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical 200-step trajectories (suspicious)")
	}
	// Something actually failed and recovered along the way.
	peak := 0
	for _, d := range a {
		if d > peak {
			peak = d
		}
	}
	if peak == 0 {
		t.Error("no link ever failed at rate 0.01 over 200 steps")
	}
}

func TestLinkFlapsMaxDown(t *testing.T) {
	m := mesh.MustNew(2, 6)
	f := &LinkFlaps{FailRate: 0.5, RepairRate: 0, MaxDown: 3}
	o := mesh.NewOverlay(m)
	rng := rand.New(rand.NewSource(1))
	for step := 0; step < 50; step++ {
		f.Advance(step, o, rng)
		if o.DownLinks() > 3 {
			t.Fatalf("step %d: %d links down, cap is 3", step, o.DownLinks())
		}
	}
	if o.DownLinks() != 3 {
		t.Errorf("cap never reached: %d down", o.DownLinks())
	}
}

func TestNodeCrashes(t *testing.T) {
	m := mesh.MustNew(2, 6)
	f, err := NewNodeCrashes(0.05, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.MaxDown = 4
	o := mesh.NewOverlay(m)
	rng := rand.New(rand.NewSource(3))
	for step := 0; step < 100; step++ {
		f.Advance(step, o, rng)
		if o.DownNodes() > 4 {
			t.Fatalf("step %d: %d nodes down, cap is 4", step, o.DownNodes())
		}
	}
	if o.DownNodes() == 0 {
		t.Error("no node ever crashed at rate 0.05 over 100 steps")
	}
	// With RepairRate 0 crashes are permanent: cumulative == current.
	if o.NodeFailures() != o.DownNodes() {
		t.Errorf("permanent crashes: cumulative %d != current %d", o.NodeFailures(), o.DownNodes())
	}
}

func TestNewModelValidation(t *testing.T) {
	if _, err := NewLinkFlaps(-0.1, 0.5); err == nil {
		t.Error("negative fail rate accepted")
	}
	if _, err := NewLinkFlaps(0.1, 1.5); err == nil {
		t.Error("repair rate > 1 accepted")
	}
	if _, err := NewNodeCrashes(2, 0); err == nil {
		t.Error("crash rate > 1 accepted")
	}
}

// TestCompose: chained models all advance; nil members are dropped.
func TestCompose(t *testing.T) {
	m := mesh.MustNew(2, 4)
	o := mesh.NewOverlay(m)
	s1 := NewSchedule(Event{Time: 0, Kind: NodeDown, Node: 1})
	s2 := NewSchedule(Event{Time: 0, Kind: NodeDown, Node: 2})
	c := Compose(s1, nil, s2)
	c.Advance(0, o, rand.New(rand.NewSource(1)))
	if !o.NodeDown(1) || !o.NodeDown(2) {
		t.Error("composed models did not all advance")
	}
}
