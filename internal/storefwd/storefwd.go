// Package storefwd implements the classical store-and-forward router the
// paper contrasts hot-potato routing with (Section 1; [AS], [Ma] run the
// same comparison for optical and Manhattan-street networks): packets wait
// in per-link FIFO output queues instead of being deflected, and follow
// fixed minimal dimension-order routes.
//
// The router is synchronous like the hot-potato engine: in each step, at
// most one packet traverses each directed arc (the head of its output
// queue, if the downstream queue has room). Dimension-order routing on a
// mesh with this credit scheme is deadlock-free, so with unbounded buffers
// the router is a congestion-optimal-ish baseline, and with small buffer
// caps it quantifies exactly how much storage hot-potato routing saves.
//
// It reuses sim.Packet so the same workload generators drive both engines;
// Deflections stays 0 here, and waiting time shows up as Delay - Hops.
package storefwd

import (
	"fmt"

	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
)

// Options configures the store-and-forward router.
type Options struct {
	// BufferCap is the capacity of each output queue in packets;
	// 0 means unbounded.
	BufferCap int
	// MaxSteps bounds the simulation (0 = sim.DefaultMaxSteps).
	MaxSteps int
}

// Result summarizes a completed run.
type Result struct {
	// Steps is the arrival time of the last packet.
	Steps int
	// Delivered and Total count packets.
	Delivered, Total int
	// HitMaxSteps reports the step budget ran out first.
	HitMaxSteps bool
	// MaxQueue is the largest single output-queue occupancy observed.
	MaxQueue int
	// MaxNodeBuffered is the largest total number of packets buffered in
	// one node at once — the per-node memory a real switch would need.
	MaxNodeBuffered int
	// TotalWaits counts packet-steps spent waiting in queues (not moving).
	TotalWaits int64
	// TotalHops counts arc traversals (equals the sum of shortest-path
	// distances: routes are minimal).
	TotalHops int64
}

// queue is one output FIFO.
type queue struct {
	packets []*sim.Packet
}

func (q *queue) push(p *sim.Packet) { q.packets = append(q.packets, p) }
func (q *queue) head() *sim.Packet {
	if len(q.packets) == 0 {
		return nil
	}
	return q.packets[0]
}
func (q *queue) pop() *sim.Packet {
	p := q.packets[0]
	copy(q.packets, q.packets[1:])
	q.packets = q.packets[:len(q.packets)-1]
	return p
}

// Engine is a synchronous store-and-forward mesh router with
// dimension-order routing.
type Engine struct {
	mesh    *mesh.Mesh
	opts    Options
	packets []*sim.Packet
	queues  []queue // node*2d + dir
	time    int
	live    int

	lastArrival     int
	maxQueue        int
	maxNodeBuffered int
	totalWaits      int64
	totalHops       int64
}

// New builds the router and enqueues all packets at their sources.
// The origin-capacity constraint of the hot-potato model does not apply
// here (queues absorb any initial burst), so any instance is accepted.
func New(m *mesh.Mesh, packets []*sim.Packet, opts Options) (*Engine, error) {
	if m == nil {
		return nil, fmt.Errorf("storefwd: nil mesh")
	}
	if opts.BufferCap < 0 {
		return nil, fmt.Errorf("storefwd: negative buffer capacity %d", opts.BufferCap)
	}
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = sim.DefaultMaxSteps
	}
	e := &Engine{
		mesh:    m,
		opts:    opts,
		packets: packets,
		queues:  make([]queue, m.Size()*m.DirCount()),
	}
	ids := make(map[int]bool, len(packets))
	for _, p := range packets {
		if p == nil {
			return nil, fmt.Errorf("storefwd: nil packet")
		}
		if err := m.CheckID(p.Src); err != nil {
			return nil, fmt.Errorf("storefwd: packet %d source: %w", p.ID, err)
		}
		if err := m.CheckID(p.Dst); err != nil {
			return nil, fmt.Errorf("storefwd: packet %d destination: %w", p.ID, err)
		}
		if ids[p.ID] {
			return nil, fmt.Errorf("storefwd: duplicate packet id %d", p.ID)
		}
		ids[p.ID] = true
		p.Node = p.Src
		if p.Src == p.Dst {
			p.ArrivedAt = 0
			continue
		}
		p.ArrivedAt = -1
		e.enqueue(p)
		e.live++
	}
	// Initial bursts may exceed a bounded cap; that is legal (the cap
	// constrains in-flight forwarding, sources are assumed to hold their
	// own injection queues), but it counts toward occupancy statistics.
	e.observeOccupancy()
	return e, nil
}

// nextDir returns the dimension-order (lowest differing axis first) output
// direction for a packet at node toward dst.
func (e *Engine) nextDir(node, dst mesh.NodeID) mesh.Dir {
	for a := 0; a < e.mesh.Dim(); a++ {
		c, cd := e.mesh.CoordAxis(node, a), e.mesh.CoordAxis(dst, a)
		if c < cd {
			return mesh.DirPlus(a)
		}
		if c > cd {
			return mesh.DirMinus(a)
		}
	}
	return mesh.NoDir
}

func (e *Engine) enqueue(p *sim.Packet) {
	dir := e.nextDir(p.Node, p.Dst)
	e.queues[int(p.Node)*e.mesh.DirCount()+int(dir)].push(p)
}

func (e *Engine) observeOccupancy() {
	dirs := e.mesh.DirCount()
	for node := 0; node < e.mesh.Size(); node++ {
		total := 0
		for d := 0; d < dirs; d++ {
			l := len(e.queues[node*dirs+d].packets)
			total += l
			if l > e.maxQueue {
				e.maxQueue = l
			}
		}
		if total > e.maxNodeBuffered {
			e.maxNodeBuffered = total
		}
	}
}

// Time returns the current step.
func (e *Engine) Time() int { return e.time }

// Live returns the number of undelivered packets.
func (e *Engine) Live() int { return e.live }

// Done reports whether all packets arrived.
func (e *Engine) Done() bool { return e.live == 0 }

// Step advances one synchronous step: every queue head whose downstream
// queue has room (judged by occupancy at the beginning of the step)
// traverses its arc.
func (e *Engine) Step() {
	dirs := e.mesh.DirCount()

	// Phase 1: decide departures from start-of-step occupancies.
	type move struct {
		p    *sim.Packet
		to   mesh.NodeID
		qIdx int
	}
	var moves []move
	for node := 0; node < e.mesh.Size(); node++ {
		for d := 0; d < dirs; d++ {
			qIdx := node*dirs + d
			p := e.queues[qIdx].head()
			if p == nil {
				continue
			}
			dir := mesh.Dir(d)
			to, ok := e.mesh.Neighbor(mesh.NodeID(node), dir)
			if !ok {
				// Dimension-order routing never aims off the mesh; this
				// would be an internal bug.
				panic(fmt.Sprintf("storefwd: queue (%d,%v) aims off the mesh", node, dir))
			}
			if to != p.Dst && e.opts.BufferCap > 0 {
				nd := e.nextDir(to, p.Dst)
				downstream := int(to)*dirs + int(nd)
				if len(e.queues[downstream].packets) >= e.opts.BufferCap {
					continue // blocked: wait in place
				}
			}
			moves = append(moves, move{p: p, to: to, qIdx: qIdx})
		}
	}

	// Waiting statistics: every live packet that does not move this step
	// waits one step.
	e.totalWaits += int64(e.live - len(moves))

	// Phase 2: apply all departures simultaneously.
	e.time++
	for _, mv := range moves {
		e.queues[mv.qIdx].pop()
		mv.p.Node = mv.to
		mv.p.Hops++
		e.totalHops++
		if mv.to == mv.p.Dst {
			mv.p.ArrivedAt = e.time
			e.lastArrival = e.time
			e.live--
			continue
		}
		e.enqueue(mv.p)
	}
	e.observeOccupancy()
}

// Run steps until completion or the step budget is exhausted.
func (e *Engine) Run() (*Result, error) {
	for e.live > 0 && e.time < e.opts.MaxSteps {
		e.Step()
	}
	return &Result{
		Steps:           e.lastArrival,
		Delivered:       len(e.packets) - e.live,
		Total:           len(e.packets),
		HitMaxSteps:     e.live > 0,
		MaxQueue:        e.maxQueue,
		MaxNodeBuffered: e.maxNodeBuffered,
		TotalWaits:      e.totalWaits,
		TotalHops:       e.totalHops,
	}, nil
}
