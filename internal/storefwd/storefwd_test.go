package storefwd

import (
	"math/rand"
	"testing"

	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
	"hotpotato/internal/workload"
)

func TestSinglePacketShortestPath(t *testing.T) {
	m := mesh.MustNew(2, 8)
	src, dst := m.ID([]int{1, 2}), m.ID([]int{6, 7})
	p := sim.NewPacket(0, src, dst)
	e, err := New(m, []*sim.Packet{p}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := m.Dist(src, dst)
	if res.Steps != want || p.Hops != want || res.TotalWaits != 0 {
		t.Errorf("steps=%d hops=%d waits=%d, want %d, %d, 0", res.Steps, p.Hops, res.TotalWaits, want, want)
	}
}

func TestDimensionOrderRoute(t *testing.T) {
	m := mesh.MustNew(3, 5)
	src := m.ID([]int{4, 2, 0})
	dst := m.ID([]int{1, 2, 3})
	p := sim.NewPacket(0, src, dst)
	e, err := New(m, []*sim.Packet{p}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// First moves must fix axis 0 (three -x0 steps), then axis 2.
	e.Step()
	if got := m.CoordAxis(p.Node, 0); got != 3 {
		t.Errorf("after one step x0 = %d, want 3", got)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != m.Dist(src, dst) {
		t.Errorf("steps = %d, want %d", res.Steps, m.Dist(src, dst))
	}
}

func TestValidation(t *testing.T) {
	m := mesh.MustNew(2, 4)
	if _, err := New(nil, nil, Options{}); err == nil {
		t.Error("nil mesh accepted")
	}
	if _, err := New(m, []*sim.Packet{nil}, Options{}); err == nil {
		t.Error("nil packet accepted")
	}
	if _, err := New(m, nil, Options{BufferCap: -1}); err == nil {
		t.Error("negative cap accepted")
	}
	if _, err := New(m, []*sim.Packet{sim.NewPacket(0, -1, 2)}, Options{}); err == nil {
		t.Error("bad source accepted")
	}
	if _, err := New(m, []*sim.Packet{sim.NewPacket(0, 1, 99)}, Options{}); err == nil {
		t.Error("bad destination accepted")
	}
	if _, err := New(m, []*sim.Packet{sim.NewPacket(3, 0, 1), sim.NewPacket(3, 1, 2)}, Options{}); err == nil {
		t.Error("duplicate id accepted")
	}
}

func TestSelfAddressedAbsorbed(t *testing.T) {
	m := mesh.MustNew(2, 4)
	p := sim.NewPacket(0, 5, 5)
	e, err := New(m, []*sim.Packet{p}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !e.Done() || p.ArrivedAt != 0 {
		t.Errorf("self-addressed packet not absorbed: %+v", p)
	}
}

// TestUnboundedDeliversEverything: permutations and hotspots complete, all
// routes are minimal, and queue stats are sane.
func TestUnboundedDeliversEverything(t *testing.T) {
	m := mesh.MustNew(2, 8)
	rng := rand.New(rand.NewSource(1))
	for name, packets := range map[string][]*sim.Packet{
		"permutation": workload.Permutation(m, rng),
	} {
		e, err := New(m, packets, Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Delivered != res.Total {
			t.Fatalf("%s: %d/%d delivered", name, res.Delivered, res.Total)
		}
		var wantHops int64
		for _, p := range packets {
			wantHops += int64(m.Dist(p.Src, p.Dst))
			if p.Hops != m.Dist(p.Src, p.Dst) {
				t.Fatalf("%s: packet %d took %d hops for distance %d", name, p.ID, p.Hops, m.Dist(p.Src, p.Dst))
			}
		}
		if res.TotalHops != wantHops {
			t.Errorf("%s: total hops %d, want %d", name, res.TotalHops, wantHops)
		}
		if res.MaxQueue < 1 || res.MaxNodeBuffered < res.MaxQueue {
			t.Errorf("%s: queue stats inconsistent: %+v", name, res)
		}
	}
}

// TestBoundedBuffersStillDeliver: with cap 1 the router is slower but must
// still complete (dimension-order + credit flow control is deadlock-free).
func TestBoundedBuffersStillDeliver(t *testing.T) {
	m := mesh.MustNew(2, 8)
	rng := rand.New(rand.NewSource(2))
	packets, err := workload.HotSpot(m, 100, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	unboundedSteps := 0
	for _, cap := range []int{0, 4, 1} {
		fresh := make([]*sim.Packet, len(packets))
		for i, p := range packets {
			fresh[i] = sim.NewPacket(p.ID, p.Src, p.Dst)
		}
		e, err := New(m, fresh, Options{BufferCap: cap, MaxSteps: 100000})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Delivered != res.Total {
			t.Fatalf("cap=%d: %d/%d delivered (%+v)", cap, res.Delivered, res.Total, res)
		}
		if cap == 0 {
			unboundedSteps = res.Steps
		} else if res.Steps < unboundedSteps {
			t.Errorf("cap=%d finished in %d steps, faster than unbounded %d", cap, res.Steps, unboundedSteps)
		}
	}
}

// TestWaitsAccounting: two packets forced through the same arc: one waits
// exactly one step.
func TestWaitsAccounting(t *testing.T) {
	m := mesh.MustNew(1, 4)
	// Both packets start at node 1 and go to node 3: same output queue.
	p0 := sim.NewPacket(0, 1, 3)
	p1 := sim.NewPacket(1, 1, 3)
	e, err := New(m, []*sim.Packet{p0, p1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 3 { // first packet 2 steps, second waits 1 then 2 more
		t.Errorf("steps = %d, want 3", res.Steps)
	}
	if res.TotalWaits != 1 {
		t.Errorf("waits = %d, want 1", res.TotalWaits)
	}
	if res.MaxQueue != 2 {
		t.Errorf("max queue = %d, want 2", res.MaxQueue)
	}
}

// TestHeadOfLineBlocking: a blocked head delays a packet behind it even if
// that packet's own downstream is free (FIFO semantics).
func TestHeadOfLineBlocking(t *testing.T) {
	m := mesh.MustNew(1, 5)
	// cap=1. q0: node1->+x. p0 at node 1 going to 4; p1 behind it going to 2.
	// A wall of packets occupies node 2's +x queue so p0 blocks; p1 must
	// wait behind p0 even though node 2 is p1's destination.
	wall := sim.NewPacket(9, 2, 4)
	p0 := sim.NewPacket(0, 1, 4)
	p1 := sim.NewPacket(1, 1, 2)
	e, err := New(m, []*sim.Packet{wall, p0, p1}, Options{BufferCap: 1, MaxSteps: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Step 1: wall moves 2->3, p0 blocked? wall occupies queue(2,+x) at
	// start, so p0 waits; p1 waits behind p0.
	e.Step()
	if p0.Node != 1 || p1.Node != 1 {
		t.Fatalf("expected head-of-line blocking at step 1: p0 at %d, p1 at %d", p0.Node, p1.Node)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 3 {
		t.Fatalf("only %d delivered", res.Delivered)
	}
}

// TestMaxStepsBudget: an undeliverable amount of time is bounded.
func TestMaxStepsBudget(t *testing.T) {
	m := mesh.MustNew(2, 6)
	rng := rand.New(rand.NewSource(3))
	packets := workload.Permutation(m, rng)
	e, err := New(m, packets, Options{MaxSteps: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.HitMaxSteps {
		t.Error("expected HitMaxSteps on a 2-step budget")
	}
}

func TestAccessors(t *testing.T) {
	m := mesh.MustNew(2, 4)
	p := sim.NewPacket(0, 0, 15)
	e, err := New(m, []*sim.Packet{p}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Time() != 0 || e.Live() != 1 || e.Done() {
		t.Errorf("initial accessors wrong: t=%d live=%d done=%v", e.Time(), e.Live(), e.Done())
	}
	e.Step()
	if e.Time() != 1 {
		t.Errorf("Time after step = %d", e.Time())
	}
}
