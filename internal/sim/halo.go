package sim

import (
	"fmt"
	"math/rand"

	"hotpotato/internal/mesh"
	"hotpotato/internal/rng"
)

// This file is the engine's sharding surface: the pieces of the stepping
// machinery a spatially-decomposed runner (internal/shard) must share with
// the single-engine path so that a sharded run is bit-identical to a
// single-shard one. Everything here is a re-export or refactoring of logic
// the engine already executes — NodeSeed is the parallel path's tie-break
// derivation, NodeRouter is routeNode against an arbitrary topology view,
// and the ConfigHash fold is the livelock detector's hash — so the two
// paths cannot drift apart.

// NodeSeed derives the tie-break RNG seed for routing one node in one step.
// It is the exact derivation the engine's parallel path uses (per (seed,
// step, node), independent of worker count and of how nodes are partitioned
// across goroutines), which is what makes randomized-policy outcomes
// identical across shard geometries: the stream a node's packets draw from
// depends only on the global seed, the step and the node's global id.
func NodeSeed(seed int64, t int, node mesh.NodeID) int64 {
	return rng.Mix(seed, int64(t), int64(node))
}

// ConfigHashSeed is the initial value of the configuration-hash fold.
const ConfigHashSeed = uint64(0x9e3779b97f4a7c15)

// ConfigHashPacket folds one live packet into a running configuration hash:
// its identity, position, entry arc and history flags. Folding every live
// packet in queue order over the globally-sorted active nodes, starting from
// ConfigHashSeed, yields exactly Engine.StateHash — the fold is chained
// (non-commutative), so the visit order is part of the contract.
func ConfigHashPacket(h uint64, p *Packet) uint64 {
	id, pos := ConfigHashPacketWords(p)
	return ConfigHashFold(h, id, pos)
}

// ConfigHashPacketWords returns the two words ConfigHashPacket folds for a
// packet: its identity and its position word (node, entry arc, history
// flags). The position word carries the packet's global node in its high 32
// bits, so a holder of the words alone can still order them by mesh row —
// which is how a distributed coordinator re-folds per-shard word streams
// into the global chained hash without shipping whole packets.
func ConfigHashPacketWords(p *Packet) (idWord, posWord uint64) {
	flags := uint64(p.EnteredVia) + 1
	if p.AdvancedPrev {
		flags |= 1 << 8
	}
	if p.RestrictedPrev {
		flags |= 1 << 9
	}
	flags |= uint64(p.GoodPrev) << 10
	return uint64(p.ID), uint64(p.Node)<<32 | flags
}

// ConfigHashFold chains one packet's word pair into a running configuration
// hash. ConfigHashPacket(h, p) == ConfigHashFold(h, ConfigHashPacketWords(p)).
func ConfigHashFold(h, idWord, posWord uint64) uint64 {
	return mix64(mix64(h, idWord), posWord)
}

// CapturePacket copies every observable field of a packet into its
// serializable form.
func CapturePacket(p *Packet) PacketState {
	return PacketState{
		ID: p.ID, Src: p.Src, Dst: p.Dst, Node: p.Node,
		EnteredVia: p.EnteredVia, InjectedAt: p.InjectedAt, Class: p.Class,
		ArrivedAt: p.ArrivedAt, DroppedAt: p.DroppedAt, Cause: p.Cause,
		Hops: p.Hops, Deflections: p.Deflections,
		AdvancedPrev: p.AdvancedPrev, RestrictedPrev: p.RestrictedPrev,
		GoodPrev: p.GoodPrev,
	}
}

// Packet materializes the captured state back into a live Packet.
func (ps *PacketState) Packet() *Packet {
	return &Packet{
		ID: ps.ID, Src: ps.Src, Dst: ps.Dst, Node: ps.Node,
		EnteredVia: ps.EnteredVia, InjectedAt: ps.InjectedAt, Class: ps.Class,
		ArrivedAt: ps.ArrivedAt, DroppedAt: ps.DroppedAt, Cause: ps.Cause,
		Hops: ps.Hops, Deflections: ps.Deflections,
		AdvancedPrev: ps.AdvancedPrev, RestrictedPrev: ps.RestrictedPrev,
		GoodPrev: ps.GoodPrev,
	}
}

// goodDirser is the devirtualized good-direction fast path shared by
// *mesh.Tables and *mesh.Subgrid: fill a fixed buffer instead of appending
// through the Topology interface.
type goodDirser interface {
	GoodDirsInto(from, dst mesh.NodeID, buf *[2 * mesh.MaxDim]mesh.Dir) int
}

// NodeRouter routes single nodes against an arbitrary topology view — for
// the sharded engine, a *mesh.Subgrid whose connectivity reaches into halo
// territory owned by neighboring shards. It reproduces the engine's
// routeNode exactly: the same PacketInfo precomputation, the same policy
// invocation with panic isolation, the same validation levels, and the same
// Move records — so moves produced by P shard routers are indistinguishable
// from the single engine's, including the boundary-crossing ones the shard
// runner diverts into its halo exchange.
//
// A NodeRouter is single-goroutine state (one exists per shard); the policy
// handed to it must be that shard's own instance or clone.
type NodeRouter struct {
	topo       mesh.Topology
	gd         goodDirser // non-nil when topo provides the fast path
	policy     Policy
	seed       int64
	validation ValidationLevel

	ns       NodeState
	out      []mesh.Dir
	dirOwner []int
	src      rng.SplitMix64
	rnd      *rand.Rand

	// MaxNodeLoad and Reroutes accumulate across RouteNode calls; the shard
	// runner drains them into its global counters at step barriers.
	MaxNodeLoad int
	Reroutes    int64
}

// NewNodeRouter returns a router over the given topology view. Tie-break
// randomness is derived per node via NodeSeed(seed, t, node).
func NewNodeRouter(topo mesh.Topology, policy Policy, seed int64, validation ValidationLevel) *NodeRouter {
	r := &NodeRouter{
		topo:       topo,
		policy:     policy,
		seed:       seed,
		validation: validation,
		out:        make([]mesh.Dir, 0, topo.DirCount()),
		dirOwner:   make([]int, topo.DirCount()),
	}
	if gd, ok := topo.(goodDirser); ok {
		r.gd = gd
	}
	r.ns.Mesh = topo
	r.ns.infos = make([]PacketInfo, 0, topo.DirCount())
	r.rnd = rand.New(&r.src)
	return r
}

// RouteNode routes one node's packets at step t, writing exactly len(pkts)
// moves into dst (which must have length len(pkts)). Node ids — including
// Move.To for boundary-crossing moves — are global.
func (r *NodeRouter) RouteNode(node mesh.NodeID, t int, pkts []*Packet, dst []Move) error {
	if len(pkts) > r.MaxNodeLoad {
		r.MaxNodeLoad = len(pkts)
	}
	ns := &r.ns
	ns.Node = node
	ns.Time = t
	ns.Packets = pkts
	if cap(ns.infos) < len(pkts) {
		ns.infos = make([]PacketInfo, len(pkts))
	} else {
		ns.infos = ns.infos[:len(pkts)]
	}
	for i, p := range pkts {
		pi := &ns.infos[i]
		if r.gd != nil {
			pi.GoodCount = r.gd.GoodDirsInto(p.Node, p.Dst, &pi.goodBuf)
		} else {
			pi.GoodCount = len(r.topo.GoodDirs(p.Node, p.Dst, pi.goodBuf[:0]))
		}
		if pi.GoodCount == 0 {
			r.Reroutes++
		}
		pi.Restricted = pi.GoodCount == 1
		pi.TypeA = pi.Restricted && p.RestrictedPrev && p.AdvancedPrev
	}

	r.out = r.out[:len(pkts)]
	for i := range r.out {
		r.out[i] = mesh.NoDir
	}
	r.src.Seed(NodeSeed(r.seed, t, node))
	if err := r.routePolicy(); err != nil {
		return fmt.Errorf("step %d node %d: %w", t, node, err)
	}

	dirCount := r.topo.DirCount()
	if r.validation > ValidateOff {
		for i := range r.dirOwner {
			r.dirOwner[i] = -1
		}
		for i, dir := range r.out {
			p := pkts[i]
			if dir < 0 || int(dir) >= dirCount {
				return fmt.Errorf("%w: step %d node %d packet %d (dir %d)",
					ErrUnassigned, t, node, p.ID, dir)
			}
			if !r.topo.HasArc(node, dir) {
				return fmt.Errorf("%w: step %d node %d packet %d via %v",
					ErrOffMesh, t, node, p.ID, dir)
			}
			if prev := r.dirOwner[dir]; prev >= 0 {
				return fmt.Errorf("%w: step %d node %d packets %d and %d both via %v",
					ErrLinkConflict, t, node, pkts[prev].ID, p.ID, dir)
			}
			r.dirOwner[dir] = i
		}
		if err := validateGreedy(ns, r.out, r.dirOwner, r.validation); err != nil {
			return err
		}
	}
	for i, p := range pkts {
		dir := r.out[i]
		var to mesh.NodeID
		ok := dir >= 0 && int(dir) < dirCount
		if ok {
			to, ok = r.topo.Neighbor(node, dir)
		}
		if !ok {
			return fmt.Errorf("%w: step %d node %d packet %d via %v", ErrOffMesh, t, node, p.ID, dir)
		}
		pi := ns.Info(i)
		adv := goodContains(pi, dir)
		dst[i] = Move{
			Packet:        p,
			From:          node,
			To:            to,
			Dir:           dir,
			Advanced:      adv,
			GoodCount:     pi.GoodCount,
			WasRestricted: pi.Restricted,
			WasTypeA:      pi.TypeA,
			ArrivedNow:    to == p.Dst,
		}
	}
	return nil
}

// routePolicy invokes the policy with panic isolation, mirroring
// routeScratch.routePolicy.
func (r *NodeRouter) routePolicy() (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("%w: policy %s: %v", ErrPolicyPanic, r.policy.Name(), rec)
		}
	}()
	r.policy.Route(&r.ns, r.out, r.rnd)
	return nil
}
