package sim

import (
	"math/rand"
	"testing"

	"hotpotato/internal/mesh"
)

// checkActiveInvariants asserts everything the routing loop assumes about
// the engine's active-node bookkeeping: the list is strictly increasing
// (sorted, duplicate-free — the order that makes worker sharding and the
// state hash deterministic), it agrees exactly with the activeMark bitmap,
// a node is marked iff its queue is non-empty, and the queues hold exactly
// the live packets.
func checkActiveInvariants(t *testing.T, e *Engine) {
	t.Helper()
	for i := 1; i < len(e.active); i++ {
		if e.active[i-1] >= e.active[i] {
			t.Fatalf("step %d: active list not strictly increasing at %d: %v",
				e.time, i, e.active)
		}
	}
	inList := make(map[mesh.NodeID]bool, len(e.active))
	for _, n := range e.active {
		inList[n] = true
	}
	queued := 0
	for n := range e.byNode {
		id := mesh.NodeID(n)
		if e.activeMark[n] != inList[id] {
			t.Fatalf("step %d: node %d mark=%v but in active list=%v",
				e.time, n, e.activeMark[n], inList[id])
		}
		if occupied := len(e.byNode[n]) > 0; occupied != e.activeMark[n] {
			t.Fatalf("step %d: node %d holds %d packets but mark=%v",
				e.time, n, len(e.byNode[n]), e.activeMark[n])
		}
		queued += len(e.byNode[n])
	}
	if queued != e.live {
		t.Fatalf("step %d: %d packets queued, %d live", e.time, queued, e.live)
	}
}

// stepAllChecked steps the engine to completion, checking the invariants
// between every step.
func stepAllChecked(t *testing.T, e *Engine, maxSteps int) {
	t.Helper()
	checkActiveInvariants(t, e)
	for e.live > 0 && e.time < maxSteps {
		if err := e.Step(); err != nil {
			t.Fatalf("step %d: %v", e.time, err)
		}
		checkActiveInvariants(t, e)
	}
	if e.live > 0 {
		t.Fatalf("run did not finish within %d steps", maxSteps)
	}
}

// TestSortActiveDenseAllNodes drives the dense rebuild path: every node of
// the mesh starts occupied (active covers the whole bitmap), so sortActive
// takes its comparison-free ordered-scan branch on every step until the
// network thins out — at which point the same run also crosses over into
// the sparse slices.Sort branch.
func TestSortActiveDenseAllNodes(t *testing.T) {
	m := mesh.MustNewTorus(2, 6)
	rng := rand.New(rand.NewSource(4))
	var pkts []*Packet
	for n := 0; n < m.Size(); n++ {
		for j := 0; j < 2; j++ {
			pkts = append(pkts, NewPacket(len(pkts), mesh.NodeID(n), mesh.NodeID(rng.Intn(m.Size()))))
		}
	}
	e, err := New(m, firstGoodPolicy(), pkts, Options{Validation: ValidateBasic, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(e.active) != m.Size() {
		t.Fatalf("initially active nodes = %d, want all %d", len(e.active), m.Size())
	}
	stepAllChecked(t, e, 4000)
}

// TestSortActiveSingleNode pins the len<=1 early return: one packet, one
// active node throughout — the list must stay consistent without ever
// needing a sort.
func TestSortActiveSingleNode(t *testing.T) {
	m := mesh.MustNew(2, 8)
	p := NewPacket(0, m.ID([]int{0, 0}), m.ID([]int{7, 7}))
	e, err := New(m, firstGoodPolicy(), []*Packet{p}, Options{Validation: ValidateBasic})
	if err != nil {
		t.Fatal(err)
	}
	for e.live > 0 {
		if got := len(e.active); got != 1 {
			t.Fatalf("step %d: %d active nodes, want exactly 1", e.time, got)
		}
		checkActiveInvariants(t, e)
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	checkActiveInvariants(t, e)
}

// TestSortActiveSparse keeps the active set far below the dense-rebuild
// threshold (len(active)*4 < nodes) so every re-sort goes through the
// slices.Sort fallback, with move application scrambling the append order
// each step.
func TestSortActiveSparse(t *testing.T) {
	m := mesh.MustNewTorus(2, 16)
	pkts := []*Packet{
		NewPacket(0, m.ID([]int{15, 3}), m.ID([]int{2, 9})),
		NewPacket(1, m.ID([]int{0, 12}), m.ID([]int{8, 1})),
		NewPacket(2, m.ID([]int{7, 7}), m.ID([]int{15, 0})),
		NewPacket(3, m.ID([]int{3, 15}), m.ID([]int{3, 2})),
		NewPacket(4, m.ID([]int{12, 0}), m.ID([]int{1, 14})),
	}
	e, err := New(m, firstGoodPolicy(), pkts, Options{Validation: ValidateBasic, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(e.active)*4 >= len(e.activeMark) {
		t.Fatalf("test premise broken: %d active of %d nodes is not sparse", len(e.active), m.Size())
	}
	stepAllChecked(t, e, 4000)
}

// burstInjector injects a burst of packets at scattered nodes every step
// until step last, always within the per-node injection capacity.
type burstInjector struct {
	last int
	per  int
}

func (b *burstInjector) Exhausted(t int) bool { return t > b.last }

func (b *burstInjector) Inject(t int, e InjectorHost, rng *rand.Rand) []*Packet {
	if t > b.last {
		return nil
	}
	m := e.Mesh()
	var out []*Packet
	mine := make(map[mesh.NodeID]int) // this call's own picks count against capacity
	id := e.NextPacketID()
	for i := 0; i < b.per; i++ {
		node := mesh.NodeID(rng.Intn(m.Size()))
		if e.InjectionCapacity(node)-mine[node] <= 0 {
			continue // skip full nodes; capacity is rechecked fresh each step
		}
		mine[node]++
		out = append(out, NewPacket(id, node, mesh.NodeID(rng.Intn(m.Size()))))
		id++
	}
	return out
}

// TestSortActiveAfterInjection checks the re-sort at the injection site:
// each step begins by pushing packets onto arbitrary — possibly previously
// inactive — nodes, and the active list must be back in strict order before
// routing.
func TestSortActiveAfterInjection(t *testing.T) {
	m := mesh.MustNewTorus(2, 8)
	e, err := New(m, firstGoodPolicy(), nil, Options{Validation: ValidateBasic, Seed: 2, MaxSteps: 4000})
	if err != nil {
		t.Fatal(err)
	}
	e.SetInjector(&burstInjector{last: 30, per: 6})
	checkActiveInvariants(t, e)
	for e.time < 4000 {
		if err := e.Step(); err != nil {
			t.Fatalf("step %d: %v", e.time, err)
		}
		checkActiveInvariants(t, e)
		if e.time > 30 && e.live == 0 {
			break
		}
	}
	if e.live != 0 {
		t.Fatalf("injected traffic never drained: %d live at step %d", e.live, e.time)
	}
	if e.nextID == 0 {
		t.Fatal("injector never injected")
	}
}
