package sim

import (
	"math/rand"
	"slices"
	"testing"

	"hotpotato/internal/mesh"
)

// noFaultModel installs a failure overlay that never fails anything. It
// exists to force the engine off the devirtualized table fast path and onto
// the mesh.Topology interface path while keeping the routed topology
// semantically identical — the two paths must then produce bit-identical
// runs.
type noFaultModel struct{}

func (noFaultModel) Advance(t int, o *mesh.Overlay, rng *rand.Rand) {}

// moveRec is the comparable projection of a Move used to assert that two
// runs took exactly the same per-step move sequence.
type moveRec struct {
	t        int
	id       int
	from, to mesh.NodeID
	dir      mesh.Dir
	adv      bool
}

// recordRun executes a full run and returns the result plus the flattened
// move log.
func recordRun(t *testing.T, m *mesh.Mesh, policy Policy, packets []*Packet, opts Options, interfacePath bool) (Result, []moveRec) {
	t.Helper()
	e, err := New(m, policy, packets, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if interfacePath {
		e.SetFaults(noFaultModel{}, FateDrop)
		if e.fast != nil {
			t.Fatal("fault overlay did not disable the fast path")
		}
	}
	var log []moveRec
	e.AddObserver(ObserverFunc(func(rec *StepRecord) {
		for i := range rec.Moves {
			mv := &rec.Moves[i]
			log = append(log, moveRec{
				t:    rec.Time,
				id:   mv.Packet.ID,
				from: mv.From,
				to:   mv.To,
				dir:  mv.Dir,
				adv:  mv.Advanced,
			})
		}
	}))
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return *res, log
}

// parityPackets builds a deterministic instance: k packets at distinct-ish
// sources (respecting out-degree capacity) with random destinations.
func parityPackets(m *mesh.Mesh, k int, seed int64) []*Packet {
	rng := rand.New(rand.NewSource(seed))
	used := make(map[mesh.NodeID]int)
	var packets []*Packet
	for i := 0; len(packets) < k && i < 4*k; i++ {
		src := mesh.NodeID(rng.Intn(m.Size()))
		if used[src] >= m.Degree(src) {
			continue
		}
		used[src]++
		packets = append(packets, NewPacket(len(packets), src, mesh.NodeID(rng.Intn(m.Size()))))
	}
	return packets
}

func clonePackets(packets []*Packet) []*Packet {
	out := make([]*Packet, len(packets))
	for i, p := range packets {
		out[i] = NewPacket(p.ID, p.Src, p.Dst)
	}
	return out
}

// TestFastPathParity runs identical (mesh, policy, seed, workload) problems
// through the devirtualized fast path, the interface path (forced by a
// never-failing fault overlay), and — for the deterministic policy — the
// serial and Workers>1 paths, asserting bit-identical Results and per-step
// move sequences. Torus shapes are included: their wrap-split good sets are
// where the table layer is easiest to get wrong.
func TestFastPathParity(t *testing.T) {
	meshes := []*mesh.Mesh{
		mesh.MustNew(1, 9),
		mesh.MustNew(2, 8),
		mesh.MustNew(3, 4),
		mesh.MustNewTorus(2, 6),
		mesh.MustNewTorus(2, 7),
		mesh.MustNewTorus(3, 4),
	}
	for _, m := range meshes {
		for _, seed := range []int64{1, 42} {
			packets := parityPackets(m, m.Size()/2+1, seed)
			opts := Options{Seed: seed, Validation: ValidateBasic, MaxSteps: 2000}

			// Deterministic policy: every path must agree exactly.
			pol := func() Policy { return cloneableFirstGood{firstGoodPolicy()} }
			resFast, logFast := recordRun(t, m, pol(), clonePackets(packets), opts, false)
			resIface, logIface := recordRun(t, m, pol(), clonePackets(packets), opts, true)
			if resFast != resIface || !slices.Equal(logFast, logIface) {
				t.Errorf("%v seed %d: interface path diverged from fast path (fast %+v, iface %+v)",
					m, seed, resFast, resIface)
			}
			for _, workers := range []int{2, 4} {
				po := opts
				po.Workers = workers
				resPar, logPar := recordRun(t, m, pol(), clonePackets(packets), po, false)
				if resFast != resPar || !slices.Equal(logFast, logPar) {
					t.Errorf("%v seed %d: workers=%d diverged from serial (serial %+v, parallel %+v)",
						m, seed, workers, resFast, resPar)
				}
			}

			// Randomized policy: the fast and interface paths share the
			// serial rng stream, so they too must agree bit-for-bit; the
			// parallel path derives per-(seed, step, node) streams, so it
			// must be independent of the worker count.
			resFastR, logFastR := recordRun(t, m, shuffledPolicy(), clonePackets(packets), opts, false)
			resIfaceR, logIfaceR := recordRun(t, m, shuffledPolicy(), clonePackets(packets), opts, true)
			if resFastR != resIfaceR || !slices.Equal(logFastR, logIfaceR) {
				t.Errorf("%v seed %d: randomized interface path diverged from fast path", m, seed)
			}
			po2, po4 := opts, opts
			po2.Workers, po4.Workers = 2, 4
			res2, log2 := recordRun(t, m, shuffledPolicy(), clonePackets(packets), po2, false)
			res4, log4 := recordRun(t, m, shuffledPolicy(), clonePackets(packets), po4, false)
			if res2 != res4 || !slices.Equal(log2, log4) {
				t.Errorf("%v seed %d: randomized parallel run depends on worker count", m, seed)
			}
		}
	}
}

// TestFastPathParityRepeatable re-runs one configuration twice per path to
// catch scratch-reuse bugs that only corrupt a second run through the same
// engine-shaped allocations.
func TestFastPathParityRepeatable(t *testing.T) {
	m := mesh.MustNewTorus(2, 8)
	packets := parityPackets(m, m.Size(), 7)
	opts := Options{Seed: 7, Validation: ValidateBasic, MaxSteps: 2000, Workers: 3}
	res1, log1 := recordRun(t, m, cloneableFirstGood{firstGoodPolicy()}, clonePackets(packets), opts, false)
	res2, log2 := recordRun(t, m, cloneableFirstGood{firstGoodPolicy()}, clonePackets(packets), opts, false)
	if res1 != res2 || !slices.Equal(log1, log2) {
		t.Errorf("repeat run diverged: %+v vs %+v", res1, res2)
	}
}

// soakInjector keeps every node saturated with fresh traffic.
type soakInjector struct{ stop int }

func (si *soakInjector) Inject(t int, e InjectorHost, rng *rand.Rand) []*Packet {
	if t >= si.stop {
		return nil
	}
	var out []*Packet
	size := e.Mesh().Size()
	for id := 0; id < size; id++ {
		node := mesh.NodeID(id)
		for c := e.InjectionCapacity(node); c > 0; c-- {
			dst := mesh.NodeID(rng.Intn(size))
			out = append(out, NewPacket(e.NextPacketID(), node, dst))
		}
	}
	return out
}

func (si *soakInjector) Exhausted(t int) bool { return t >= si.stop }

// TestIDsMemorySteadyState soaks the engine with continuous saturating
// injection and asserts the used-ID record stays proportional to the
// packets in flight — not to the total ever injected, which grows without
// bound on long runs. This is the regression test for the old map[int]bool
// that only ever grew.
func TestIDsMemorySteadyState(t *testing.T) {
	const steps = 3000
	m := mesh.MustNew(2, 4)
	e, err := New(m, leanGreedyPolicy{}, nil, Options{Seed: 11, Validation: ValidateGreedy, MaxSteps: steps + 500})
	if err != nil {
		t.Fatal(err)
	}
	e.SetInjector(&soakInjector{stop: steps})
	maxIDs := 0
	for !e.Done() || e.Time() < steps {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
		if len(e.ids) != e.Live() {
			t.Fatalf("step %d: ids holds %d entries, %d packets live", e.Time(), len(e.ids), e.Live())
		}
		if len(e.ids) > maxIDs {
			maxIDs = len(e.ids)
		}
		if e.Time() > steps+400 {
			t.Fatalf("soak did not drain: %d live at step %d", e.Live(), e.Time())
		}
	}
	// The network can never hold more packets than arcs, regardless of how
	// many were injected over the whole run.
	if maxIDs > m.ArcCount() {
		t.Errorf("ids peaked at %d entries, above the %d-arc capacity", maxIDs, m.ArcCount())
	}
	if e.nextID < 10*m.ArcCount() {
		t.Fatalf("soak too weak to be meaningful: only %d ids ever issued", e.nextID)
	}
}

// leanGreedyPolicy is an allocation-free deterministic test policy: first
// free good arc, then first free arc, tracked in a fixed array.
type leanGreedyPolicy struct{}

func (leanGreedyPolicy) Name() string        { return "test-lean-greedy" }
func (leanGreedyPolicy) Deterministic() bool { return true }
func (leanGreedyPolicy) Route(ns *NodeState, out []mesh.Dir, rng *rand.Rand) {
	var taken [2 * mesh.MaxDim]bool
	for i := range ns.Packets {
		for _, g := range ns.Info(i).Good() {
			if !taken[g] {
				out[i] = g
				taken[g] = true
				break
			}
		}
	}
	dirCount := ns.Mesh.DirCount()
	for i := range ns.Packets {
		if out[i] != mesh.NoDir {
			continue
		}
		for d := 0; d < dirCount; d++ {
			if !taken[d] && ns.HasArc(mesh.Dir(d)) {
				out[i] = mesh.Dir(d)
				taken[d] = true
				break
			}
		}
	}
}

// TestStepSteadyStateAllocs asserts the tentpole claim directly: once an
// engine is constructed, stepping it allocates nothing.
func TestStepSteadyStateAllocs(t *testing.T) {
	m := mesh.MustNew(2, 16)
	packets := parityPackets(m, 2*m.Size(), 3)
	e, err := New(m, leanGreedyPolicy{}, packets, Options{Seed: 3, Validation: ValidateGreedy})
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(40, func() {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Step allocates %.1f times per call, want 0", allocs)
	}
}
