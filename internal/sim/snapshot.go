package sim

import (
	"errors"
	"fmt"

	"hotpotato/internal/mesh"
)

// SnapshotVersion is the schema version of the Snapshot structure. Codecs
// (internal/checkpoint) persist it and refuse snapshots from a future
// schema; bump it whenever a field is added, removed or reinterpreted.
const SnapshotVersion = 1

// ErrBadSnapshot is returned by Restore when a snapshot cannot be applied
// to the target engine: schema mismatch, configuration mismatch (different
// mesh, policy, seed, fault or injector setup), or internal inconsistency.
var ErrBadSnapshot = errors.New("sim: snapshot does not match the engine")

// PacketState is the serializable state of one Packet (every field the
// engine or a policy can observe).
type PacketState struct {
	ID             int         `json:"id"`
	Src            mesh.NodeID `json:"src"`
	Dst            mesh.NodeID `json:"dst"`
	Node           mesh.NodeID `json:"node"`
	EnteredVia     mesh.Dir    `json:"entered_via"`
	InjectedAt     int         `json:"injected_at"`
	Class          int         `json:"class,omitempty"`
	ArrivedAt      int         `json:"arrived_at"`
	DroppedAt      int         `json:"dropped_at"`
	Cause          DropCause   `json:"cause,omitempty"`
	Hops           int         `json:"hops"`
	Deflections    int         `json:"deflections"`
	AdvancedPrev   bool        `json:"advanced_prev,omitempty"`
	RestrictedPrev bool        `json:"restricted_prev,omitempty"`
	GoodPrev       int         `json:"good_prev,omitempty"`
}

// QueueState records the packets held by one node, in queue order. Queue
// order is routing-relevant (it is the order policies see packets in), so
// it is captured explicitly instead of being re-derived.
type QueueState struct {
	Node mesh.NodeID `json:"node"`
	// Packets indexes into Snapshot.Packets.
	Packets []int `json:"packets"`
}

// SeenState is one entry of the livelock detector's configuration-hash
// memory.
type SeenState struct {
	Hash uint64 `json:"hash"`
	Time int    `json:"time"`
}

// Snapshot is the complete between-steps state of an Engine, sufficient to
// continue the run bit-identically in a fresh engine built with the same
// mesh, policy and options (see Restore for the exact contract). The fault
// overlay is not serialized arc-by-arc: the snapshot records the fault
// clock (Time) and a digest, and Restore replays the deterministic fault
// stream to reconstruct the overlay, the model's internal cursor and the
// fault RNG in one pass.
type Snapshot struct {
	Version int `json:"version"`

	// Configuration guard: Restore refuses a target engine that differs.
	MeshDim    int             `json:"mesh_dim"`
	MeshSide   int             `json:"mesh_side"`
	MeshWrap   bool            `json:"mesh_wrap"`
	PolicyName string          `json:"policy"`
	Seed       int64           `json:"seed"`
	MaxSteps   int             `json:"max_steps"`
	Validation ValidationLevel `json:"validation"`
	Workers    int             `json:"workers"`
	DetectLive bool            `json:"detect_livelock"`

	// Clock and identity watermarks.
	Time        int    `json:"time"`
	LastArrival int    `json:"last_arrival"`
	NextID      int    `json:"next_id"`
	SerialRNG   uint64 `json:"serial_rng"`

	// Livelock detector state.
	Livelocked bool        `json:"livelocked,omitempty"`
	Seen       []SeenState `json:"seen,omitempty"`

	// Cumulative accounting.
	TotalDeflections   int64 `json:"total_deflections"`
	TotalHops          int64 `json:"total_hops"`
	MaxNodeLoad        int   `json:"max_node_load"`
	Reroutes           int64 `json:"reroutes,omitempty"`
	Dropped            int   `json:"dropped,omitempty"`
	Absorbed           int   `json:"absorbed,omitempty"`
	DroppedCrash       int   `json:"dropped_crash,omitempty"`
	DroppedUnreachable int   `json:"dropped_unreachable,omitempty"`
	DroppedStranded    int   `json:"dropped_stranded,omitempty"`
	DroppedInject      int   `json:"dropped_inject,omitempty"`

	// Packets in engine order, and the live queues in active-node order.
	Packets []PacketState `json:"packets"`
	Queues  []QueueState  `json:"queues"`

	// Injector state: present iff an injector was installed. The engine RNG
	// covers stateless injectors exactly; injectors with internal state
	// (source backlogs) participate via the CheckpointableInjector interface
	// and their opaque bytes ride along here.
	HasInjector   bool   `json:"has_injector,omitempty"`
	InjectorState []byte `json:"injector_state,omitempty"`

	// Fault-overlay clock: Restore replays the model's Advance stream for
	// steps [0, Time) and verifies the digest, so the overlay itself needs
	// no serialization.
	HasFaults     bool       `json:"has_faults,omitempty"`
	Fate          PacketFate `json:"fate,omitempty"`
	OverlayDigest uint64     `json:"overlay_digest,omitempty"`
	LinkFailures  int        `json:"link_failures,omitempty"`
	NodeFailures  int        `json:"node_failures,omitempty"`
}

// CheckpointableInjector is implemented by injectors that carry internal
// state beyond the engine RNG (e.g. per-node source backlogs). Snapshot
// captures the bytes and Restore hands them back, so checkpoint/resume is
// exact for such sources too. Injectors without internal state need not
// implement it.
type CheckpointableInjector interface {
	Injector
	// SnapshotState serializes the injector's internal state.
	SnapshotState() ([]byte, error)
	// RestoreState reinstates state captured by SnapshotState.
	RestoreState(data []byte) error
}

// StateHash returns the engine's configuration hash: a digest of every live
// packet's identity, position, entry arc and history flags in queue order.
// It is the livelock detector's hash, exposed so callers can assert that
// two engines are in bit-identical routing states (checkpoint parity
// tests, resume verification). Valid between steps.
func (e *Engine) StateHash() uint64 { return e.stateHash() }

// Snapshot captures the complete between-steps state of the engine. It must
// not be called while a Step is in flight; the engine is unchanged. The
// returned snapshot shares no memory with the engine.
func (e *Engine) Snapshot() (*Snapshot, error) {
	s := &Snapshot{
		Version:    SnapshotVersion,
		MeshDim:    e.mesh.Dim(),
		MeshSide:   e.mesh.Side(),
		MeshWrap:   e.mesh.Wrap(),
		PolicyName: e.policy.Name(),
		Seed:       e.opts.Seed,
		MaxSteps:   e.opts.MaxSteps,
		Validation: e.opts.Validation,
		Workers:    e.opts.Workers,
		DetectLive: e.opts.DetectLivelock,

		Time:        e.time,
		LastArrival: e.lastArrival,
		NextID:      e.nextID,
		SerialRNG:   e.src.State(),

		Livelocked: e.livelock,

		TotalDeflections:   e.totalDeflections,
		TotalHops:          e.totalHops,
		MaxNodeLoad:        e.maxNodeLoad,
		Reroutes:           e.reroutes,
		Dropped:            e.dropped,
		Absorbed:           e.absorbed,
		DroppedCrash:       e.dropCrash,
		DroppedUnreachable: e.dropUnreachable,
		DroppedStranded:    e.dropStranded,
		DroppedInject:      e.dropInject,
	}

	idx := make(map[int]int, len(e.packets))
	s.Packets = make([]PacketState, len(e.packets))
	for i, p := range e.packets {
		idx[p.ID] = i
		s.Packets[i] = CapturePacket(p)
	}
	s.Queues = make([]QueueState, 0, len(e.active))
	for _, node := range e.active {
		q := QueueState{Node: node, Packets: make([]int, len(e.byNode[node]))}
		for i, p := range e.byNode[node] {
			q.Packets[i] = idx[p.ID]
		}
		s.Queues = append(s.Queues, q)
	}

	if e.seen != nil {
		s.Seen = make([]SeenState, 0, len(e.seen))
		for h, t := range e.seen {
			s.Seen = append(s.Seen, SeenState{Hash: h, Time: t})
		}
	}

	if e.injector != nil {
		s.HasInjector = true
		if ci, ok := e.injector.(CheckpointableInjector); ok {
			data, err := ci.SnapshotState()
			if err != nil {
				return nil, fmt.Errorf("sim: snapshot injector state: %w", err)
			}
			s.InjectorState = data
		}
	}

	if e.faults != nil {
		s.HasFaults = true
		s.Fate = e.fate
		s.OverlayDigest = overlayDigest(e.overlay)
		s.LinkFailures = e.overlay.LinkFailures()
		s.NodeFailures = e.overlay.NodeFailures()
	}
	return s, nil
}

// Restore reinstates a snapshot into the engine. The engine must be freshly
// constructed — New with the same mesh geometry, a policy of the same name,
// identical Options (seed above all), zero packets and no steps taken —
// and any fault model or injector must already be installed, exactly as on
// the snapshotted engine (a *fresh* instance of the same deterministic
// fault model: Restore replays its Advance stream to rebuild the overlay
// and verifies the result against the snapshot digest). After Restore the
// run continues bit-identically to the engine the snapshot was taken from.
//
// The only tolerated configuration difference is the worker count when the
// policy is deterministic (every routing path then produces identical
// moves). For randomized policies the serial and parallel paths sample
// tie-breaks differently, so Restore requires the same serial/parallel mode.
func (e *Engine) Restore(s *Snapshot) error {
	if s.Version != SnapshotVersion {
		return fmt.Errorf("%w: snapshot schema v%d, engine supports v%d", ErrBadSnapshot, s.Version, SnapshotVersion)
	}
	if e.time != 0 || len(e.packets) != 0 || e.live != 0 {
		return fmt.Errorf("%w: target engine is not fresh (time=%d, %d packets)", ErrBadSnapshot, e.time, len(e.packets))
	}
	if e.mesh.Dim() != s.MeshDim || e.mesh.Side() != s.MeshSide || e.mesh.Wrap() != s.MeshWrap {
		return fmt.Errorf("%w: mesh %v vs snapshot (d=%d, n=%d, wrap=%v)",
			ErrBadSnapshot, e.mesh, s.MeshDim, s.MeshSide, s.MeshWrap)
	}
	if e.policy.Name() != s.PolicyName {
		return fmt.Errorf("%w: policy %q vs snapshot %q", ErrBadSnapshot, e.policy.Name(), s.PolicyName)
	}
	if e.opts.Seed != s.Seed {
		return fmt.Errorf("%w: seed %d vs snapshot %d", ErrBadSnapshot, e.opts.Seed, s.Seed)
	}
	if e.opts.MaxSteps != s.MaxSteps || e.opts.Validation != s.Validation || e.opts.DetectLivelock != s.DetectLive {
		return fmt.Errorf("%w: options differ (max_steps %d vs %d, validation %d vs %d, detect_livelock %v vs %v)",
			ErrBadSnapshot, e.opts.MaxSteps, s.MaxSteps, e.opts.Validation, s.Validation,
			e.opts.DetectLivelock, s.DetectLive)
	}
	if !e.policy.Deterministic() && (e.opts.Workers > 1) != (s.Workers > 1) {
		return fmt.Errorf("%w: randomized policy cannot move between serial and parallel modes (workers %d vs snapshot %d)",
			ErrBadSnapshot, e.opts.Workers, s.Workers)
	}
	if (e.faults != nil) != s.HasFaults {
		return fmt.Errorf("%w: fault model installed=%v, snapshot has_faults=%v", ErrBadSnapshot, e.faults != nil, s.HasFaults)
	}
	if s.HasFaults && e.fate != s.Fate {
		return fmt.Errorf("%w: packet fate %v vs snapshot %v", ErrBadSnapshot, e.fate, s.Fate)
	}
	if (e.injector != nil) != s.HasInjector {
		return fmt.Errorf("%w: injector installed=%v, snapshot has_injector=%v", ErrBadSnapshot, e.injector != nil, s.HasInjector)
	}

	// Rebuild the packet population and the per-node queues.
	packets := make([]*Packet, len(s.Packets))
	live := 0
	for i := range s.Packets {
		ps := &s.Packets[i]
		if err := e.mesh.CheckID(ps.Src); err != nil {
			return fmt.Errorf("%w: packet %d source: %v", ErrBadSnapshot, ps.ID, err)
		}
		if err := e.mesh.CheckID(ps.Dst); err != nil {
			return fmt.Errorf("%w: packet %d destination: %v", ErrBadSnapshot, ps.ID, err)
		}
		packets[i] = ps.Packet()
		if !packets[i].Arrived() && !packets[i].Dropped() {
			live++
		}
	}
	enqueued := 0
	for _, q := range s.Queues {
		if err := e.mesh.CheckID(q.Node); err != nil {
			return fmt.Errorf("%w: queue node %d: %v", ErrBadSnapshot, q.Node, err)
		}
		if len(e.byNode[q.Node])+len(q.Packets) > e.mesh.Degree(q.Node) {
			return fmt.Errorf("%w: node %d queue exceeds out-degree %d", ErrBadSnapshot, q.Node, e.mesh.Degree(q.Node))
		}
		for _, pi := range q.Packets {
			if pi < 0 || pi >= len(packets) {
				return fmt.Errorf("%w: queue of node %d references packet index %d of %d", ErrBadSnapshot, q.Node, pi, len(packets))
			}
			p := packets[pi]
			if p.Arrived() || p.Dropped() || p.Node != q.Node {
				return fmt.Errorf("%w: packet %d queued at node %d but not live there", ErrBadSnapshot, p.ID, q.Node)
			}
			e.enqueue(p)
			enqueued++
		}
	}
	if enqueued != live {
		return fmt.Errorf("%w: %d live packets but %d queued", ErrBadSnapshot, live, enqueued)
	}
	e.packets = packets
	e.live = live
	e.sortActive()

	e.ids = make(map[int]struct{}, live)
	for _, p := range packets {
		if !p.Arrived() && !p.Dropped() {
			e.ids[p.ID] = struct{}{}
		}
		if p.ID >= s.NextID {
			return fmt.Errorf("%w: packet id %d at or above watermark %d", ErrBadSnapshot, p.ID, s.NextID)
		}
	}
	e.nextID = s.NextID
	e.time = s.Time
	e.lastArrival = s.LastArrival
	e.src.SetState(s.SerialRNG)

	e.livelock = s.Livelocked
	if e.livelockable {
		e.seen = make(map[uint64]int, len(s.Seen))
		for _, entry := range s.Seen {
			e.seen[entry.Hash] = entry.Time
		}
	}

	e.totalDeflections = s.TotalDeflections
	e.totalHops = s.TotalHops
	e.maxNodeLoad = s.MaxNodeLoad
	e.reroutes = s.Reroutes
	e.dropped = s.Dropped
	e.absorbed = s.Absorbed
	e.dropCrash = s.DroppedCrash
	e.dropUnreachable = s.DroppedUnreachable
	e.dropStranded = s.DroppedStranded
	e.dropInject = s.DroppedInject

	if s.HasInjector && len(s.InjectorState) > 0 {
		ci, ok := e.injector.(CheckpointableInjector)
		if !ok {
			return fmt.Errorf("%w: snapshot carries injector state but injector %T cannot restore it", ErrBadSnapshot, e.injector)
		}
		if err := ci.RestoreState(s.InjectorState); err != nil {
			return fmt.Errorf("sim: restore injector state: %w", err)
		}
	}

	if s.HasFaults {
		// Replay the fault clock: the model contract (deterministic given its
		// state and the dedicated RNG stream) means advancing a fresh model
		// through steps [0, Time) reproduces the overlay, the cumulative
		// failure counters, the model's own cursor AND the fault RNG position
		// in one pass — nothing about the overlay needs serializing.
		for t := 0; t < s.Time; t++ {
			e.faults.Advance(t, e.overlay, e.faultRng)
		}
		e.faultVersion = e.overlay.Version()
		if got := overlayDigest(e.overlay); got != s.OverlayDigest {
			return fmt.Errorf("%w: fault replay diverged (overlay digest %#x, snapshot %#x; %d/%d link/node failures vs %d/%d) — the installed model must be a fresh instance of the snapshotted one",
				ErrBadSnapshot, got, s.OverlayDigest,
				e.overlay.LinkFailures(), e.overlay.NodeFailures(), s.LinkFailures, s.NodeFailures)
		}
	}
	return nil
}

// overlayDigest hashes the full failure state of an overlay: every arc's
// up/down bit, every node's up/down bit, and the cumulative transition
// counters. Two overlays with equal digests are (collision probability
// aside) in identical failure states with identical histories.
func overlayDigest(o *mesh.Overlay) uint64 {
	h := uint64(0x517cc1b727220a95)
	base := o.Base()
	dirs := base.DirCount()
	var word uint64
	bits := 0
	fold := func(b bool) {
		word <<= 1
		if b {
			word |= 1
		}
		if bits++; bits == 64 {
			h = mix64(h, word)
			word, bits = 0, 0
		}
	}
	for id := 0; id < base.Size(); id++ {
		fold(o.NodeDown(mesh.NodeID(id)))
		for d := 0; d < dirs; d++ {
			fold(o.LinkDown(mesh.NodeID(id), mesh.Dir(d)))
		}
	}
	h = mix64(h, word<<(64-bits)|uint64(bits))
	h = mix64(h, uint64(o.DownLinks())<<32|uint64(o.DownNodes()))
	h = mix64(h, uint64(o.LinkFailures())<<32|uint64(o.NodeFailures()))
	return h
}
