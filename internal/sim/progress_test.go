package sim

import (
	"math/rand"
	"testing"

	"hotpotato/internal/mesh"
)

func TestProgressSampler(t *testing.T) {
	m, err := mesh.New(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	// A uniform-random batch, built inline (the workload package sits above
	// sim in the import graph).
	rnd := rand.New(rand.NewSource(5))
	var pkts []*Packet
	for id := 0; id < 48; id++ {
		// One packet per source node, so no origin exceeds its out-degree.
		pkts = append(pkts, NewPacket(id, mesh.NodeID(id), mesh.NodeID(rnd.Intn(m.Size()))))
	}
	e, err := New(m, firstGoodPolicy(), pkts, Options{Seed: 5, Validation: ValidateBasic})
	if err != nil {
		t.Fatal(err)
	}
	var samples []Progress
	e.AddObserver(NewProgressSampler(e, 3, func(p Progress) { samples = append(samples, p) }))
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("no progress samples for a multi-step run")
	}
	for i, p := range samples {
		if p.Total != res.Total {
			t.Errorf("sample %d: total %d, want %d", i, p.Total, res.Total)
		}
		if p.Delivered+p.Live+p.Dropped+p.Absorbed != p.Total {
			t.Errorf("sample %d: ledger does not balance: %+v", i, p)
		}
		if i > 0 {
			prev := samples[i-1]
			if p.Time != prev.Time+3 {
				t.Errorf("sample %d: time %d, want %d (every 3 steps)", i, p.Time, prev.Time+3)
			}
			if p.Delivered < prev.Delivered || p.TotalHops < prev.TotalHops {
				t.Errorf("sample %d: counters went backwards: %+v -> %+v", i, prev, p)
			}
		}
	}
	// The closing snapshot agrees with the result.
	final := e.Progress()
	if final.Delivered != res.Delivered || final.Live != 0 {
		t.Errorf("final progress %+v disagrees with result %+v", final, res)
	}
	if final.TotalHops != res.TotalHops || final.TotalDeflections != res.TotalDeflections {
		t.Errorf("final counters %+v disagree with result %+v", final, res)
	}
}
