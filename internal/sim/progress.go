package sim

// Progress is a cheap point-in-time summary of a running engine: the
// counters the engine already maintains, copied without touching per-packet
// state. It is what long-running frontends (cmd/hotpotatod's NDJSON job
// streams in particular) emit as per-epoch progress, so it is JSON-tagged.
type Progress struct {
	// Time is the current step index.
	Time int `json:"time"`
	// Live is the number of packets still in the network.
	Live int `json:"live"`
	// Delivered is the number of packets that reached their destinations.
	Delivered int `json:"delivered"`
	// Dropped and Absorbed count packets removed undelivered by fault
	// degradation (see Result for the split).
	Dropped  int `json:"dropped"`
	Absorbed int `json:"absorbed"`
	// Total is the number of packets injected so far (batch instances: the
	// whole problem).
	Total int `json:"total"`
	// TotalHops and TotalDeflections are the cumulative movement counters.
	TotalHops        int64 `json:"total_hops"`
	TotalDeflections int64 `json:"total_deflections"`
	// MaxNodeLoad is the largest per-node packet count observed so far.
	MaxNodeLoad int `json:"max_node_load"`
}

// Progress returns the engine's current progress counters. It is valid
// between steps (i.e. from observers and between Step calls) and costs a
// handful of loads, so sampling it every step is fine.
func (e *Engine) Progress() Progress {
	return Progress{
		Time:             e.time,
		Live:             e.live,
		Delivered:        len(e.packets) - e.live - e.dropped - e.absorbed,
		Dropped:          e.dropped,
		Absorbed:         e.absorbed,
		Total:            len(e.packets),
		TotalHops:        e.totalHops,
		TotalDeflections: e.totalDeflections,
		MaxNodeLoad:      e.maxNodeLoad,
	}
}

// ProgressSampler is an Observer that reports engine progress every Every
// steps (an "epoch"). Sampled times are strictly increasing; the final
// step of a run is only reported if it falls on the epoch boundary, so
// frontends that need a closing record should emit Engine.Progress()
// themselves after Run returns.
type ProgressSampler struct {
	engine *Engine
	every  int
	fn     func(Progress)
	since  int
}

// NewProgressSampler returns a sampler invoking fn with e.Progress() after
// every `every`-th step. every < 1 is treated as 1 (every step).
func NewProgressSampler(e *Engine, every int, fn func(Progress)) *ProgressSampler {
	if every < 1 {
		every = 1
	}
	return &ProgressSampler{engine: e, every: every, fn: fn}
}

// OnStep implements Observer.
func (s *ProgressSampler) OnStep(*StepRecord) {
	s.since++
	if s.since >= s.every {
		s.since = 0
		s.fn(s.engine.Progress())
	}
}
