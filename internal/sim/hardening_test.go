package sim

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"hotpotato/internal/mesh"
)

// panicPolicy panics inside Route once the trigger node is reached.
type panicPolicy struct {
	trigger mesh.NodeID
}

func (p panicPolicy) Name() string        { return "test-panic" }
func (p panicPolicy) Deterministic() bool { return true }
func (p panicPolicy) Clone() Policy       { return p }
func (p panicPolicy) Route(ns *NodeState, out []mesh.Dir, rng *rand.Rand) {
	if ns.Node == p.trigger {
		panic("boom")
	}
	for i := range ns.Packets {
		out[i] = ns.Info(i).Good()[0]
	}
}

// TestPolicyPanicSurfacesAsError: a panicking policy must not crash the
// process; Step returns ErrPolicyPanic instead.
func TestPolicyPanicSurfacesAsError(t *testing.T) {
	m := mesh.MustNew(2, 6)
	src := m.ID([]int{1, 1})
	e, err := New(m, panicPolicy{trigger: src}, []*Packet{NewPacket(0, src, m.ID([]int{4, 4}))}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	err = e.Step()
	if !errors.Is(err, ErrPolicyPanic) {
		t.Fatalf("Step err = %v, want ErrPolicyPanic", err)
	}
}

// TestPolicyPanicSurfacesAsErrorParallel: same through the worker pool —
// the panic must neither kill the process nor deadlock WaitGroup peers.
func TestPolicyPanicSurfacesAsErrorParallel(t *testing.T) {
	m := mesh.MustNew(2, 8)
	packets := parallelInstance(t, m, 17)
	e, err := New(m, panicPolicy{trigger: packets[0].Src}, packets, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	err = e.Step()
	if !errors.Is(err, ErrPolicyPanic) {
		t.Fatalf("parallel Step err = %v, want ErrPolicyPanic", err)
	}
}

// TestMaxWallTime: a run that would spin to a huge step budget stops at the
// wall-clock deadline and reports it.
func TestMaxWallTime(t *testing.T) {
	m := mesh.MustNew(1, 4)
	// The swap fixture loops forever; without livelock detection only the
	// budget stops it — here the wall clock is the budget.
	pol := &testPolicy{
		name: "test-swap",
		det:  true,
		route: func(ns *NodeState, out []mesh.Dir, rng *rand.Rand) {
			for i, p := range ns.Packets {
				if p.Node == 1 {
					out[i] = mesh.DirPlus(0)
				} else {
					out[i] = mesh.DirMinus(0)
				}
			}
		},
	}
	e, err := New(m, pol, []*Packet{NewPacket(0, 1, 0), NewPacket(1, 2, 3)}, Options{
		MaxSteps:    1 << 30,
		MaxWallTime: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.DeadlineExceeded {
		t.Fatalf("DeadlineExceeded not set: %+v", res)
	}
	if res.HitMaxSteps || res.Livelocked {
		t.Errorf("wrong termination cause: %+v", res)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Errorf("run took %v despite a 30ms wall budget", took)
	}
}

// TestMaxWallTimeNotSetOnFastRun: a run that finishes before the deadline
// must not report it.
func TestMaxWallTimeNotSetOnFastRun(t *testing.T) {
	m := mesh.MustNew(2, 4)
	e, err := New(m, firstGoodPolicy(), []*Packet{NewPacket(0, 0, 5)}, Options{
		MaxWallTime: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineExceeded || res.Delivered != 1 {
		t.Fatalf("unexpected result %+v", res)
	}
}

// overflowInjector ignores InjectionCapacity and floods one node.
type overflowInjector struct{ node mesh.NodeID }

func (o overflowInjector) Inject(t int, e InjectorHost, rng *rand.Rand) []*Packet {
	if t > 0 {
		return nil
	}
	var ps []*Packet
	for i := 0; i <= e.Mesh().Degree(o.node); i++ {
		dst := mesh.NodeID(0)
		if o.node == dst {
			dst = 1
		}
		ps = append(ps, NewPacket(e.NextPacketID(), o.node, dst))
	}
	return ps
}
func (overflowInjector) Exhausted(t int) bool { return t > 0 }

// TestInjectorOverCapacityRejected: exceeding the intact mesh's out-degree
// is an injector bug and a hard error (distinct from fault-reduced capacity,
// which drops gracefully — see TestFaultReducedCapacityInjectionDrops).
func TestInjectorOverCapacityRejected(t *testing.T) {
	m := mesh.MustNew(2, 4)
	e, err := New(m, firstGoodPolicy(), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e.SetInjector(overflowInjector{node: m.ID([]int{1, 1})})
	_, err = e.Run()
	if !errors.Is(err, ErrBadInjection) {
		t.Fatalf("over-capacity injection: err = %v, want ErrBadInjection", err)
	}
}

// nilInjector returns a nil packet among valid ones.
type nilInjector struct{}

func (nilInjector) Inject(t int, e InjectorHost, rng *rand.Rand) []*Packet {
	if t > 0 {
		return nil
	}
	return []*Packet{NewPacket(e.NextPacketID(), 0, 5), nil}
}
func (nilInjector) Exhausted(t int) bool { return t > 0 }

// TestInjectorNilPacketRejected: nil packets from an injector are a hard
// error, not a crash later in the step.
func TestInjectorNilPacketRejected(t *testing.T) {
	m := mesh.MustNew(2, 4)
	e, err := New(m, firstGoodPolicy(), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e.SetInjector(nilInjector{})
	_, err = e.Run()
	if !errors.Is(err, ErrBadInjection) {
		t.Fatalf("nil injected packet: err = %v, want ErrBadInjection", err)
	}
}

// noopInjector never injects and never exhausts.
type noopInjector struct{}

func (noopInjector) Inject(t int, e InjectorHost, rng *rand.Rand) []*Packet { return nil }
func (noopInjector) Exhausted(t int) bool                                   { return false }

// TestSetInjectorDisablesLivelockDetection: with an injector installed the
// configuration is not closed, so the detector must stay quiet even for a
// deterministic policy in a genuine loop.
func TestSetInjectorDisablesLivelockDetection(t *testing.T) {
	m := mesh.MustNew(1, 4)
	pol := &testPolicy{
		name: "test-swap",
		det:  true,
		route: func(ns *NodeState, out []mesh.Dir, rng *rand.Rand) {
			for i, p := range ns.Packets {
				if p.Node == 1 {
					out[i] = mesh.DirPlus(0)
				} else {
					out[i] = mesh.DirMinus(0)
				}
			}
		},
	}
	e, err := New(m, pol, []*Packet{NewPacket(0, 1, 0), NewPacket(1, 2, 3)}, Options{
		Validation:     ValidateBasic,
		DetectLivelock: true,
		MaxSteps:       300,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.SetInjector(noopInjector{})
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Livelocked {
		t.Error("livelock reported with an injector installed")
	}
	if !res.HitMaxSteps {
		t.Errorf("expected HitMaxSteps: %+v", res)
	}
}
