package sim

import (
	"fmt"

	"hotpotato/internal/mesh"
)

// Packet is one routed message. The engine owns all mutable fields after the
// packet is handed to New; policies must treat packets as read-only.
//
// Per the paper's model (Section 2), routing decisions may depend on the
// destination and the entry arc of a packet but never on its source; Src is
// carried only for accounting.
type Packet struct {
	// ID is a caller-assigned unique identifier.
	ID int
	// Src is the origin node (where the packet is injected at time 0).
	Src mesh.NodeID
	// Dst is the destination node.
	Dst mesh.NodeID

	// Node is the node currently holding the packet.
	Node mesh.NodeID
	// EnteredVia is the direction of the arc through which the packet
	// entered Node, or mesh.NoDir right after injection.
	EnteredVia mesh.Dir
	// InjectedAt is the step at which the packet entered the network:
	// 0 for batch instances, the injection step for dynamic traffic.
	// Age-based policies may use it (locally trackable information).
	InjectedAt int
	// Class is an application-assigned traffic class (larger = more
	// important); it rides in the packet header, so policies may use it.
	// Zero by default.
	Class int
	// ArrivedAt is the step at which the packet reached Dst, or -1.
	ArrivedAt int
	// DroppedAt is the step at which the engine removed the packet
	// undelivered (fault degradation), or -1. Use Dropped() to test: tests
	// that build packets as struct literals leave this zero-valued, and
	// Cause is the authoritative flag.
	DroppedAt int
	// Cause records why the packet was removed undelivered; DropNone while
	// the packet is live or after delivery.
	Cause DropCause
	// Hops is the number of arcs traversed so far.
	Hops int
	// Deflections is the number of steps in which the packet moved away
	// from its destination.
	Deflections int

	// AdvancedPrev reports whether the packet advanced (got closer to its
	// destination) in the previous step. False right after injection.
	AdvancedPrev bool
	// RestrictedPrev reports whether the packet was restricted (had exactly
	// one good direction) at the beginning of the previous step. False
	// right after injection.
	RestrictedPrev bool
	// GoodPrev is the packet's good-direction count at the beginning of the
	// previous step, or 0 right after injection.
	GoodPrev int
}

// NewPacket returns a packet ready for injection at src.
func NewPacket(id int, src, dst mesh.NodeID) *Packet {
	return &Packet{ID: id, Src: src, Dst: dst, Node: src, EnteredVia: mesh.NoDir, ArrivedAt: -1, DroppedAt: -1}
}

// Arrived reports whether the packet has reached its destination and left
// the network.
func (p *Packet) Arrived() bool { return p.ArrivedAt >= 0 }

// Dropped reports whether the engine removed the packet undelivered
// (crash, unreachable destination, stranding, or refused injection).
func (p *Packet) Dropped() bool { return p.Cause != DropNone }

// Delay returns the number of steps the packet spent in the network, or -1
// if it has not arrived yet.
func (p *Packet) Delay() int {
	if !p.Arrived() {
		return -1
	}
	return p.ArrivedAt - p.InjectedAt
}

// String renders a compact human-readable description.
func (p *Packet) String() string {
	status := fmt.Sprintf("at %d", p.Node)
	if p.Arrived() {
		status = fmt.Sprintf("arrived t=%d", p.ArrivedAt)
	} else if p.Dropped() {
		status = fmt.Sprintf("dropped t=%d (%s)", p.DroppedAt, p.Cause)
	}
	return fmt.Sprintf("packet %d (%d->%d, %s)", p.ID, p.Src, p.Dst, status)
}
