// Package sim implements the synchronous hot-potato routing model of the
// paper (Section 2): packets originate at time 0, every node forwards every
// packet it holds on a distinct outgoing arc in every step (no buffering),
// and at most one packet traverses each directed arc per step.
//
// The engine is policy-agnostic: a Policy supplies the uniform local
// decision rule, and the engine enforces (optionally, per validation level)
// the model constraints, the greediness condition of Definition 6 and the
// restricted-preference condition of Definition 18. It also detects
// livelock for deterministic policies by configuration hashing.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"slices"
	"sync/atomic"
	"time"

	"hotpotato/internal/mesh"
	"hotpotato/internal/rng"
)

// ValidationLevel selects how strictly the engine checks policy output.
type ValidationLevel int

const (
	// ValidateOff performs no per-step checking (fastest).
	ValidateOff ValidationLevel = iota
	// ValidateBasic checks model legality every step: every packet assigned a
	// distinct, existing outgoing arc.
	ValidateBasic
	// ValidateGreedy additionally checks Definition 6: a deflected packet
	// must have every good arc used by an advancing packet.
	ValidateGreedy
	// ValidateRestricted additionally checks Definition 18: a restricted
	// packet is never deflected by a non-restricted packet.
	ValidateRestricted
)

// Sentinel errors for validation failures. Step/Run wrap them with context.
var (
	// ErrUnassigned is returned when a policy leaves a packet without an
	// outgoing arc (violating the hot-potato constraint).
	ErrUnassigned = errors.New("sim: packet not assigned an outgoing arc")
	// ErrOffMesh is returned when a policy routes a packet off the mesh.
	ErrOffMesh = errors.New("sim: packet routed off the mesh")
	// ErrLinkConflict is returned when two packets are assigned the same
	// outgoing arc.
	ErrLinkConflict = errors.New("sim: two packets assigned the same arc")
	// ErrNotGreedy is returned when a deflection violates Definition 6.
	ErrNotGreedy = errors.New("sim: deflection violates greediness (Definition 6)")
	// ErrNotRestrictedPreferring is returned when a non-restricted packet
	// deflects a restricted one, violating Definition 18.
	ErrNotRestrictedPreferring = errors.New("sim: non-restricted packet deflected a restricted one (Definition 18)")
	// ErrBadInjection is returned by New for ill-formed initial
	// configurations.
	ErrBadInjection = errors.New("sim: invalid initial configuration")
	// ErrPolicyPanic is returned by Step/Run when a policy's Route panics.
	// The panic is recovered (also inside worker goroutines) and surfaced
	// as an error so a buggy policy cannot crash a sweep.
	ErrPolicyPanic = errors.New("sim: policy panicked")
)

// DefaultMaxSteps is the step budget used when Options.MaxSteps is zero.
const DefaultMaxSteps = 1 << 20

// InjectorHost is the engine surface an Injector sees: the geometry, the
// per-node injection room and the fresh-ID source. Both the single engine
// (*Engine) and the sharded engine (shard.Engine) implement it, so one
// injector drives either — and because the sharded engine seeds its
// injection RNG exactly like the single engine's serial stream, a
// deterministic injector produces bit-identical traffic on both.
type InjectorHost interface {
	// Mesh returns the intact base mesh (geometric ground truth).
	Mesh() *mesh.Mesh
	// InjectionCapacity returns how many packets can still be injected at
	// the node this step without exceeding its out-degree.
	InjectionCapacity(node mesh.NodeID) int
	// NextPacketID returns a fresh packet ID, unique within the engine.
	NextPacketID() int
}

// Injector supplies packets to inject at the beginning of each step,
// turning the batch engine into a continuous-traffic simulator (the
// steady-state regime of the deflection-network studies the paper cites:
// [GG], [Ma], [ZA]). Implementations must respect the model's injection
// constraint: after injection, no node may hold more packets than its
// out-degree — use InjectorHost.InjectionCapacity to learn the per-node
// room. Returned packets must sit at their sources with fresh IDs at or
// above the engine's ID watermark — every ID ever accepted stays below the
// watermark, so any monotonically increasing scheme works and NextPacketID
// always satisfies the contract. IDs below the watermark are rejected as
// reused.
type Injector interface {
	// Inject returns the packets entering the network at step t. The rng
	// is the engine's deterministic source.
	Inject(t int, host InjectorHost, rng *rand.Rand) []*Packet
	// Exhausted reports that the source will never inject again (e.g. its
	// generation window closed and its backlog drained); Run then stops as
	// soon as the network empties. A source that never exhausts runs to
	// the step budget.
	Exhausted(t int) bool
}

// Options configures an Engine.
type Options struct {
	// MaxSteps bounds the simulation length; 0 means DefaultMaxSteps.
	MaxSteps int
	// Seed seeds the engine's deterministic RNG (used by randomized
	// policies for tie-breaking).
	Seed int64
	// Validation selects per-step checking of policy output.
	Validation ValidationLevel
	// DetectLivelock enables configuration hashing to detect repeated
	// states. It only takes effect for deterministic policies (a repeated
	// state under a randomized policy does not imply a loop).
	DetectLivelock bool
	// Workers > 1 routes the nodes of each step concurrently on that many
	// goroutines. The policy must implement ClonablePolicy (each worker
	// gets its own scratch). Tie-break randomness is then derived per
	// (seed, step, node), so results are deterministic for a given seed
	// and independent of the worker count — but they differ from the
	// serial path's shared-stream sampling (both are equally valid members
	// of the same policy; deterministic policies produce identical results
	// on every path).
	Workers int
	// MaxWallTime bounds the wall-clock duration of Run; 0 means no limit.
	// It is unified with any RunContext deadline into a single stop flag
	// checked between steps: the step in flight finishes and the cutoff is
	// reported in Result.DeadlineExceeded. A wall-clock bound is inherently
	// not reproducible across machines; use MaxSteps for deterministic
	// budgets and this as the safety valve around them.
	MaxWallTime time.Duration
}

// ClonablePolicy is implemented by policies whose per-engine scratch state
// can be duplicated for concurrent use by Options.Workers.
type ClonablePolicy interface {
	Policy
	// Clone returns a policy with identical behavior and fresh scratch.
	Clone() Policy
}

// Result summarizes a completed Run.
type Result struct {
	// Steps is the routing time: the step at which the last packet reached
	// its destination (0 if every packet originated at its destination).
	Steps int
	// Delivered is the number of packets that reached their destinations.
	Delivered int
	// Total is the number of packets in the problem.
	Total int
	// Livelocked reports that a configuration repeated under a
	// deterministic policy, so the run would loop forever.
	Livelocked bool
	// HitMaxSteps reports that the step budget was exhausted first.
	HitMaxSteps bool
	// TotalDeflections counts packet-steps moving away from destinations.
	TotalDeflections int64
	// TotalHops counts all packet movements.
	TotalHops int64
	// MaxNodeLoad is the largest number of packets observed in one node at
	// the beginning of a step.
	MaxNodeLoad int

	// Dropped is the number of packets removed undelivered by fault
	// degradation (all causes; always Delivered + Dropped + Absorbed +
	// live-at-exit == Total).
	Dropped int
	// Absorbed is the number of crash victims terminated at their crashing
	// node under FateAbsorb (counted separately from drops).
	Absorbed int
	// DroppedCrash counts drops of packets caught in a crashing node
	// (FateDrop only; under FateAbsorb they count in Absorbed instead).
	DroppedCrash int
	// DroppedUnreachable counts drops of packets whose destination was down
	// when the failure set changed.
	DroppedUnreachable int
	// DroppedStranded counts drops of packets shed because a node's
	// surviving out-degree fell below its load.
	DroppedStranded int
	// DroppedInject counts injected packets refused gracefully because the
	// failure set left no room for them.
	DroppedInject int
	// LinkFailures and NodeFailures are the cumulative fault transitions
	// applied over the run (0 without a fault model).
	LinkFailures int
	NodeFailures int
	// Reroutes counts packet-steps in which a packet had no surviving good
	// arc (all its geometrically good arcs were down), so every available
	// move was a forced, fault-induced deflection.
	Reroutes int64
	// DeadlineExceeded reports that Options.MaxWallTime or the RunContext
	// deadline (whichever fired first) cut the run short.
	DeadlineExceeded bool
}

// Engine runs one routing problem under one policy.
type Engine struct {
	mesh    *mesh.Mesh
	topo    mesh.Topology // routing view: flat mesh tables, or overlay under faults
	fast    *mesh.Tables  // non-nil iff topo is the intact mesh's table view
	policy  Policy
	packets []*Packet
	opts    Options
	// rng is the serial tie-break and injection stream, backed by an inline
	// SplitMix64 source: seeding is one store instead of the ~5 KB state
	// expansion of the default Go source, which dominated engine
	// construction in sweeps that build thousands of engines.
	rng *rand.Rand
	src rng.SplitMix64

	time        int
	live        int
	lastArrival int
	byNode      [][]*Packet
	active      []mesh.NodeID
	activeMark  []bool
	observers   []Observer

	// conflictObs is the opt-in conflict tap (SetConflictObserver); confRec
	// is its engine-owned scratch record, reused across emissions so the
	// traced hot path stays allocation-free once warm. Nil observer = one
	// predicted branch per step, nothing else.
	conflictObs ConflictObserver
	confRec     ConflictRecord

	livelock     bool
	livelockable bool
	seen         map[uint64]int
	injector     Injector
	// ids holds the IDs of the outstanding (live) packets only; finalized
	// IDs are covered by the nextID watermark (every ID ever accepted is
	// below it), so memory stays proportional to the packets in flight, not
	// to the total injected over a long run.
	ids    map[int]struct{}
	nextID int

	// Fault state (nil/zero without SetFaults).
	faults       FaultModel
	overlay      *mesh.Overlay
	faultRng     *rand.Rand
	faultVersion uint64
	fate         PacketFate

	totalDeflections int64
	totalHops        int64
	maxNodeLoad      int
	reroutes         int64

	dropped         int
	absorbed        int
	dropCrash       int
	dropUnreachable int
	dropStranded    int
	dropInject      int

	deadlineExceeded bool

	// Reusable routing scratch: one for the serial path, one per pool
	// worker when Options.Workers > 1.
	scratch *routeScratch
	workers []*routeScratch
	pool    *workerPool
	// moves is the per-step move buffer, written in place in active-node
	// order (the parallel path writes each node's segment at moveOff).
	moves   []Move
	moveOff []int
}

// New validates the initial configuration and returns an engine positioned
// at time 0. Packets whose source equals their destination are absorbed
// immediately (ArrivedAt = 0). The engine takes ownership of the packets.
//
// The initial configuration must satisfy the paper's many-to-many model: no
// node is the origin of more packets than its out-degree.
func New(m *mesh.Mesh, policy Policy, packets []*Packet, opts Options) (*Engine, error) {
	if m == nil {
		return nil, fmt.Errorf("%w: nil mesh", ErrBadInjection)
	}
	if policy == nil {
		return nil, fmt.Errorf("%w: nil policy", ErrBadInjection)
	}
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = DefaultMaxSteps
	}
	tab := m.Tables()
	e := &Engine{
		mesh:         m,
		topo:         tab,
		fast:         tab,
		policy:       policy,
		packets:      packets,
		opts:         opts,
		byNode:       make([][]*Packet, m.Size()),
		activeMark:   make([]bool, m.Size()),
		livelockable: opts.DetectLivelock && policy.Deterministic(),
	}
	e.src.Seed(rng.Mix(opts.Seed))
	e.rng = rand.New(&e.src)
	// One contiguous backing array for all per-node queues: a node never
	// holds more packets than its out-degree, so slicing each queue to its
	// degree's capacity makes enqueue allocation-free for the whole run.
	queueBacking := make([]*Packet, m.ArcCount())
	off := 0
	for id := range e.byNode {
		deg := tab.Degree(mesh.NodeID(id))
		e.byNode[id] = queueBacking[off : off : off+deg]
		off += deg
	}
	if e.livelockable {
		e.seen = make(map[uint64]int)
	}
	e.scratch = e.newScratch(policy)
	if opts.Workers > 1 {
		cp, ok := policy.(ClonablePolicy)
		if !ok {
			return nil, fmt.Errorf("%w: policy %s does not implement ClonablePolicy (required by Workers=%d)",
				ErrBadInjection, policy.Name(), opts.Workers)
		}
		for w := 0; w < opts.Workers; w++ {
			e.workers = append(e.workers, e.newScratch(cp.Clone()))
		}
	}

	e.ids = make(map[int]struct{}, len(packets))
	for _, p := range packets {
		if p == nil {
			return nil, fmt.Errorf("%w: nil packet", ErrBadInjection)
		}
		if err := m.CheckID(p.Src); err != nil {
			return nil, fmt.Errorf("%w: packet %d source: %v", ErrBadInjection, p.ID, err)
		}
		if err := m.CheckID(p.Dst); err != nil {
			return nil, fmt.Errorf("%w: packet %d destination: %v", ErrBadInjection, p.ID, err)
		}
		if p.Node != p.Src {
			return nil, fmt.Errorf("%w: packet %d not at its source", ErrBadInjection, p.ID)
		}
		if _, dup := e.ids[p.ID]; dup {
			return nil, fmt.Errorf("%w: duplicate packet id %d", ErrBadInjection, p.ID)
		}
		e.ids[p.ID] = struct{}{}
		if p.ID >= e.nextID {
			e.nextID = p.ID + 1
		}
		p.Cause = DropNone
		p.DroppedAt = -1
		if p.Src == p.Dst {
			p.ArrivedAt = 0
			delete(e.ids, p.ID) // finalized immediately; the watermark covers it
			continue
		}
		p.ArrivedAt = -1
		e.enqueue(p)
		e.live++
	}
	for _, node := range e.active {
		if deg := m.Degree(node); len(e.byNode[node]) > deg {
			return nil, fmt.Errorf("%w: node %d originates %d packets, out-degree %d",
				ErrBadInjection, node, len(e.byNode[node]), deg)
		}
	}
	e.moves = make([]Move, 0, e.live)
	e.sortActive()
	if opts.Workers > 1 {
		e.pool = newWorkerPool(e.workers)
		// Stop the pool goroutines when the engine is garbage collected, so
		// sweeps that build thousands of engines and never call Close do not
		// leak them. Workers hold no reference back to the engine between
		// steps, so collection is not prevented.
		runtime.SetFinalizer(e, (*Engine).Close)
	}
	return e, nil
}

// Close releases the engine's worker pool goroutines (a no-op for serial
// engines, and safe to call more than once). It is called automatically by
// a finalizer when the engine is collected, so calling it is optional; it
// just makes the release deterministic. The engine must not be stepped
// after Close.
func (e *Engine) Close() {
	if e.pool != nil {
		e.pool.close()
	}
}

func (e *Engine) enqueue(p *Packet) {
	if len(e.byNode[p.Node]) == 0 && !e.activeMark[p.Node] {
		e.activeMark[p.Node] = true
		e.active = append(e.active, p.Node)
	}
	e.byNode[p.Node] = append(e.byNode[p.Node], p)
}

// sortActive restores the sorted order of the active list after a step's
// move application (or after injection) perturbed it. For dense active sets
// the list is rebuilt by a single ordered scan of the activeMark bitmap —
// an int-keyed counting pass with no comparisons at all; sparse sets fall
// back to slices.Sort. Both paths are allocation-free.
func (e *Engine) sortActive() {
	a := e.active
	if len(a) <= 1 {
		return
	}
	if len(a)*4 >= len(e.activeMark) {
		a = a[:0]
		for id, mark := range e.activeMark {
			if mark {
				a = append(a, mesh.NodeID(id))
			}
		}
		e.active = a
		return
	}
	slices.Sort(a)
}

// AddObserver registers an observer to run after every step.
func (e *Engine) AddObserver(o Observer) { e.observers = append(e.observers, o) }

// SetInjector installs a continuous traffic source. Injection happens at
// the beginning of every step, before routing. Installing an injector
// disables livelock detection (the configuration is no longer closed).
func (e *Engine) SetInjector(inj Injector) {
	e.injector = inj
	e.livelockable = false
}

// InjectionCapacity returns how many packets can still be injected at the
// node this step without exceeding its out-degree — the surviving
// out-degree when a fault model is installed, so injectors automatically
// respect reduced capacity. The value reflects the engine state when
// called: an Injector returning several packets for the same node in one
// Inject call must count its own earlier picks against the capacity
// itself.
func (e *Engine) InjectionCapacity(node mesh.NodeID) int {
	c := e.topo.Degree(node) - len(e.byNode[node])
	if c < 0 {
		return 0
	}
	return c
}

// NextPacketID returns a fresh packet ID, unique within this engine, for
// injectors to use.
func (e *Engine) NextPacketID() int {
	id := e.nextID
	e.nextID++
	return id
}

// inject runs the installed injector and validates its output. Injector
// bugs — nil packets, off-mesh endpoints, reused IDs, exceeding the intact
// mesh's capacity — are hard errors; packets the current failure set leaves
// no room for (source or destination down, surviving degree already full)
// are refused gracefully with cause DropInject.
func (e *Engine) inject() error {
	// Freshness floor: the watermark before the injector ran. IDs the
	// injector drew from NextPacketID during this call sit between floor and
	// the advanced e.nextID and are fresh by construction.
	floor := e.nextID
	newPackets := e.injector.Inject(e.time, e, e.rng)
	for _, p := range newPackets {
		if p == nil {
			return fmt.Errorf("%w: injector returned nil packet at step %d", ErrBadInjection, e.time)
		}
		if err := e.mesh.CheckID(p.Src); err != nil {
			return fmt.Errorf("%w: injected packet %d source: %v", ErrBadInjection, p.ID, err)
		}
		if err := e.mesh.CheckID(p.Dst); err != nil {
			return fmt.Errorf("%w: injected packet %d destination: %v", ErrBadInjection, p.ID, err)
		}
		if p.Node != p.Src {
			return fmt.Errorf("%w: injected packet %d not at its source", ErrBadInjection, p.ID)
		}
		// Freshness is enforced with the ID watermark: every ID accepted
		// before this batch is below floor, and the floor then climbs past
		// each accepted packet, so reused IDs and duplicates within the
		// batch are rejected while anything monotone (NextPacketID in
		// particular) passes. This keeps the used-ID record O(1) instead of
		// growing with every injection.
		if p.ID < floor {
			return fmt.Errorf("%w: injected packet reuses id %d (or breaks the increasing-id contract, watermark %d) at step %d",
				ErrBadInjection, p.ID, floor, e.time)
		}
		floor = p.ID + 1
		if p.ID >= e.nextID {
			e.nextID = p.ID + 1
		}
		e.packets = append(e.packets, p)
		p.InjectedAt = e.time
		p.Cause = DropNone
		p.DroppedAt = -1
		if p.Src == p.Dst {
			p.ArrivedAt = e.time
			continue
		}
		p.ArrivedAt = -1
		if e.overlay != nil && (e.overlay.NodeDown(p.Src) || e.overlay.NodeDown(p.Dst)) {
			e.markDropped(p, DropInject)
			continue
		}
		if len(e.byNode[p.Src]) >= e.topo.Degree(p.Src) {
			if len(e.byNode[p.Src]) >= e.mesh.Degree(p.Src) {
				return fmt.Errorf("%w: step %d node %d injection exceeds out-degree %d",
					ErrBadInjection, e.time, p.Src, e.mesh.Degree(p.Src))
			}
			// There would be room on the intact mesh: the injector is fine,
			// the failure set ate the capacity.
			e.markDropped(p, DropInject)
			continue
		}
		e.ids[p.ID] = struct{}{}
		e.enqueue(p)
		e.live++
	}
	if len(newPackets) > 0 {
		e.sortActive()
	}
	return nil
}

// Mesh returns the intact base mesh. Under an installed fault model the
// engine routes against Topology() instead; Mesh stays the geometric
// ground truth (sizes, distances, coordinates).
func (e *Engine) Mesh() *mesh.Mesh { return e.mesh }

// Policy returns the routing policy.
func (e *Engine) Policy() Policy { return e.policy }

// Packets returns all packets of the problem (live and arrived). Callers
// must not mutate them.
func (e *Engine) Packets() []*Packet { return e.packets }

// PacketsAt returns the packets currently at the given node. The slice is
// engine-owned and valid until the next Step.
func (e *Engine) PacketsAt(node mesh.NodeID) []*Packet { return e.byNode[node] }

// Time returns the current step index.
func (e *Engine) Time() int { return e.time }

// Live returns the number of packets still in the network.
func (e *Engine) Live() int { return e.live }

// Done reports whether every packet has arrived.
func (e *Engine) Done() bool { return e.live == 0 }

// Livelocked reports whether a repeated configuration was detected.
func (e *Engine) Livelocked() bool { return e.livelock }

// routeScratch is the per-worker routing state: one exists for the serial
// path, and one per pool goroutine in the parallel path.
type routeScratch struct {
	ns          NodeState
	out         []mesh.Dir
	dirOwner    []int
	policy      Policy
	src         rng.SplitMix64
	rnd         *rand.Rand
	maxNodeLoad int
	reroutes    int64 // per-step count, drained by Step/routeParallel
}

func (e *Engine) newScratch(policy Policy) *routeScratch {
	sc := &routeScratch{
		out:      make([]mesh.Dir, 0, e.mesh.DirCount()),
		dirOwner: make([]int, e.mesh.DirCount()),
		policy:   policy,
	}
	sc.ns.Mesh = e.topo
	sc.ns.infos = make([]PacketInfo, 0, e.mesh.DirCount())
	sc.rnd = rand.New(&sc.src)
	return sc
}

// fillInfo computes PacketInfo for every packet of the scratch node state.
// Good directions come from the routing topology, so under faults they are
// the surviving good arcs; a live packet with GoodCount == 0 (possible only
// when faults cut every geometrically good arc) is a forced reroute.
// The infos are filled in place (never copied through a stack temporary):
// passing a fresh PacketInfo's buffer to an interface call makes it escape,
// which used to be the engine's dominant allocation.
func (sc *routeScratch) fillInfo(topo mesh.Topology, fast *mesh.Tables) {
	ns := &sc.ns
	if cap(ns.infos) < len(ns.Packets) {
		ns.infos = make([]PacketInfo, len(ns.Packets))
	} else {
		ns.infos = ns.infos[:len(ns.Packets)]
	}
	for i, p := range ns.Packets {
		pi := &ns.infos[i]
		if fast != nil {
			pi.GoodCount = fast.GoodDirsInto(p.Node, p.Dst, &pi.goodBuf)
		} else {
			pi.GoodCount = len(topo.GoodDirs(p.Node, p.Dst, pi.goodBuf[:0]))
		}
		if pi.GoodCount == 0 {
			sc.reroutes++
		}
		pi.Restricted = pi.GoodCount == 1
		pi.TypeA = pi.Restricted && p.RestrictedPrev && p.AdvancedPrev
	}
}

// routePolicy invokes the policy with panic isolation: a panicking Route
// surfaces as an ErrPolicyPanic instead of tearing down the process (or, in
// the parallel path, deadlocking a worker pool).
func (sc *routeScratch) routePolicy(rnd *rand.Rand) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: policy %s: %v", ErrPolicyPanic, sc.policy.Name(), r)
		}
	}()
	sc.policy.Route(&sc.ns, sc.out, rnd)
	return nil
}

// goodContains reports whether dir belongs to the packet's (surviving) good
// set. fillInfo already computed the set, so a scan of its at-most-2·dim
// entries replaces a coordinate-arithmetic IsGoodDir call on the hot path —
// and under faults it automatically means "surviving good arc".
func goodContains(pi *PacketInfo, dir mesh.Dir) bool {
	for _, g := range pi.Good() {
		if g == dir {
			return true
		}
	}
	return false
}

// validate checks the assignment for the scratch node state according to
// the configured validation level. dirOwner is rebuilt as a side effect.
func (e *Engine) validate(sc *routeScratch) error {
	ns := &sc.ns
	out := sc.out
	fast := e.fast
	dirCount := e.mesh.DirCount()
	for i := range sc.dirOwner {
		sc.dirOwner[i] = -1
	}
	for i, dir := range out {
		p := ns.Packets[i]
		if dir < 0 || int(dir) >= dirCount {
			return fmt.Errorf("%w: step %d node %d packet %d (dir %d)",
				ErrUnassigned, ns.Time, ns.Node, p.ID, dir)
		}
		var hasArc bool
		if fast != nil {
			hasArc = fast.HasArc(ns.Node, dir)
		} else {
			hasArc = e.topo.HasArc(ns.Node, dir)
		}
		if !hasArc {
			return fmt.Errorf("%w: step %d node %d packet %d via %v",
				ErrOffMesh, ns.Time, ns.Node, p.ID, dir)
		}
		if prev := sc.dirOwner[dir]; prev >= 0 {
			return fmt.Errorf("%w: step %d node %d packets %d and %d both via %v",
				ErrLinkConflict, ns.Time, ns.Node, ns.Packets[prev].ID, p.ID, dir)
		}
		sc.dirOwner[dir] = i
	}
	return validateGreedy(ns, out, sc.dirOwner, e.opts.Validation)
}

// validateGreedy checks the greediness condition of Definition 6 and (at
// ValidateRestricted) the restricted-preference condition of Definition 18
// for one node's assignment. dirOwner must map each direction to the index
// of the packet using it (-1 when free). Shared by the engine's validate and
// the sharded path's NodeRouter so the two enforce identical semantics.
func validateGreedy(ns *NodeState, out []mesh.Dir, dirOwner []int, level ValidationLevel) error {
	if level < ValidateGreedy {
		return nil
	}
	for i, dir := range out {
		pi := ns.Info(i)
		if goodContains(pi, dir) {
			continue // advancing
		}
		// Packet i is deflected: every (surviving) good arc must carry an
		// advancing packet (Definition 6), and if packet i is restricted,
		// that advancing packet must itself be restricted (Definition 18).
		for _, g := range pi.Good() {
			j := dirOwner[g]
			if j < 0 || !goodContains(ns.Info(j), g) {
				return fmt.Errorf("%w: step %d node %d packet %d deflected with free good arc %v",
					ErrNotGreedy, ns.Time, ns.Node, ns.Packets[i].ID, g)
			}
			if level >= ValidateRestricted && pi.Restricted && !ns.Info(j).Restricted {
				return fmt.Errorf("%w: step %d node %d packet %d deflected by non-restricted packet %d",
					ErrNotRestrictedPreferring, ns.Time, ns.Node, ns.Packets[i].ID, ns.Packets[j].ID)
			}
		}
	}
	return nil
}

// routeNode routes one node's packets, writing exactly len(dst) ==
// len(byNode[node]) moves into dst (the node's segment of the engine's move
// buffer) using the given RNG.
func (e *Engine) routeNode(sc *routeScratch, node mesh.NodeID, t int, rnd *rand.Rand, dst []Move) error {
	pkts := e.byNode[node]
	if len(pkts) > sc.maxNodeLoad {
		sc.maxNodeLoad = len(pkts)
	}
	sc.ns.Node = node
	sc.ns.Time = t
	sc.ns.Packets = pkts
	sc.fillInfo(e.topo, e.fast)

	sc.out = sc.out[:len(pkts)]
	for i := range sc.out {
		sc.out[i] = mesh.NoDir
	}
	if err := sc.routePolicy(rnd); err != nil {
		return fmt.Errorf("step %d node %d: %w", t, node, err)
	}

	if e.opts.Validation > ValidateOff {
		if err := e.validate(sc); err != nil {
			return err
		}
	}
	fast := e.fast
	dirCount := e.mesh.DirCount()
	for i, p := range pkts {
		dir := sc.out[i]
		var to mesh.NodeID
		ok := dir >= 0 && int(dir) < dirCount
		if ok {
			if fast != nil {
				to, ok = fast.Neighbor(node, dir)
			} else {
				to, ok = e.topo.Neighbor(node, dir)
			}
		}
		if !ok {
			// Unvalidated policies can still not corrupt the engine (nor
			// route through an arc the failure set removed).
			return fmt.Errorf("%w: step %d node %d packet %d via %v", ErrOffMesh, t, node, p.ID, dir)
		}
		pi := sc.ns.Info(i)
		adv := goodContains(pi, dir)
		dst[i] = Move{
			Packet:        p,
			From:          node,
			To:            to,
			Dir:           dir,
			Advanced:      adv,
			GoodCount:     pi.GoodCount,
			WasRestricted: pi.Restricted,
			WasTypeA:      pi.TypeA,
			ArrivedNow:    to == p.Dst,
		}
	}
	return nil
}

// routeParallel routes the active nodes on the persistent worker pool.
// Workers claim chunks of the (sorted) active list from a shared atomic
// cursor, so a heavy node no longer serializes a static partition; each
// node's moves land in its precomputed segment of e.moves, which keeps the
// per-node grouping and global node order the observers and the move
// application rely on. Each node's tie-break RNG is derived from
// (seed, step, node), making the outcome independent of the partition and
// of the worker count.
func (e *Engine) routeParallel(t int) error {
	n := len(e.active)
	if cap(e.moveOff) < n+1 {
		e.moveOff = make([]int, n+1)
	}
	e.moveOff = e.moveOff[:n+1]
	total := 0
	for i, node := range e.active {
		e.moveOff[i] = total
		total += len(e.byNode[node])
	}
	e.moveOff[n] = total
	if cap(e.moves) < total {
		e.moves = make([]Move, total)
	}
	e.moves = e.moves[:total]
	for _, sc := range e.workers {
		sc.reroutes = 0
	}
	if err := e.pool.route(e, t); err != nil {
		return err
	}
	for _, sc := range e.workers {
		if sc.maxNodeLoad > e.maxNodeLoad {
			e.maxNodeLoad = sc.maxNodeLoad
		}
		e.reroutes += sc.reroutes
	}
	return nil
}

// Step advances the simulation by one synchronous step. It returns an error
// only on validation failure; termination conditions (done, livelock, step
// budget) are reported by Run.
func (e *Engine) Step() error {
	t := e.time
	// Fault transitions happen first (single-threaded, own RNG stream), so
	// injection and routing always see a settled failure set and the fault
	// sequence is identical on the serial and parallel paths.
	if e.faults != nil {
		e.applyFaults()
	}
	if e.injector != nil {
		if err := e.inject(); err != nil {
			return err
		}
	}
	// Route every active node. Active nodes are kept sorted so that runs
	// are reproducible for a given seed.
	if len(e.workers) > 0 && len(e.active) > 1 {
		if err := e.routeParallel(t); err != nil {
			return err
		}
	} else {
		// Every live packet sits in exactly one active node's queue, so the
		// step produces exactly e.live moves; the buffer is reused across
		// steps and only reallocated when injection outgrows it.
		total := e.live
		if cap(e.moves) < total {
			e.moves = make([]Move, total)
		}
		e.moves = e.moves[:total]
		sc := e.scratch
		sc.reroutes = 0
		base := 0
		for _, node := range e.active {
			n := len(e.byNode[node])
			// A parallel engine that falls through here (one active node)
			// must still draw from the per-(seed, step, node) stream, so
			// that Workers > 1 means per-node streams always — the property
			// the sharded engine's parity contract is built on.
			rnd := e.rng
			if len(e.workers) > 0 {
				sc.src.Seed(NodeSeed(e.opts.Seed, t, node))
				rnd = sc.rnd
			}
			if err := e.routeNode(sc, node, t, rnd, e.moves[base:base+n]); err != nil {
				return err
			}
			base += n
		}
		if sc.maxNodeLoad > e.maxNodeLoad {
			e.maxNodeLoad = sc.maxNodeLoad
		}
		e.reroutes += sc.reroutes
	}

	// Apply all moves simultaneously.
	for _, node := range e.active {
		e.byNode[node] = e.byNode[node][:0]
		e.activeMark[node] = false
	}
	e.active = e.active[:0]
	e.time = t + 1
	for i := range e.moves {
		mv := &e.moves[i]
		p := mv.Packet
		p.GoodPrev = mv.GoodCount
		p.RestrictedPrev = mv.WasRestricted
		p.AdvancedPrev = mv.Advanced
		p.Node = mv.To
		p.EnteredVia = mv.Dir
		p.Hops++
		e.totalHops++
		if !mv.Advanced {
			p.Deflections++
			e.totalDeflections++
		}
		if mv.ArrivedNow {
			p.ArrivedAt = e.time
			e.lastArrival = e.time
			e.live--
			delete(e.ids, p.ID) // finalized; the nextID watermark covers it
		} else {
			e.enqueue(p)
		}
	}
	e.sortActive()

	if e.conflictObs != nil {
		e.emitConflicts(t)
	}

	if len(e.observers) > 0 {
		rec := StepRecord{Time: t, Moves: e.moves}
		for _, o := range e.observers {
			o.OnStep(&rec)
		}
	}

	if e.livelockable && e.live > 0 {
		h := e.stateHash()
		if _, dup := e.seen[h]; dup {
			e.livelock = true
		} else {
			e.seen[h] = e.time
		}
	}
	return nil
}

// mix64 folds v into the running hash h with the SplitMix64 finalizer, a
// full-avalanche bijection: one multiply-xorshift round per word instead of
// the old byte-at-a-time FNV writes.
func mix64(h, v uint64) uint64 {
	h ^= v
	h += 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}

// stateHash digests the full routing-relevant configuration: for each live
// packet its identity, position, entry arc and history flags, visited in
// queue order over the (sorted) active nodes. Two equal configurations under
// a deterministic policy evolve identically, so a repeated hash marks a
// livelock (up to the negligible 64-bit collision probability, documented in
// the Options). Only the live packets are walked — finalized ones can never
// differ between two occurrences of the same live configuration, because a
// deterministic run never resurrects them — so the per-step cost tracks the
// packets in flight, not the total ever injected.
func (e *Engine) stateHash() uint64 {
	h := ConfigHashSeed
	for _, node := range e.active {
		for _, p := range e.byNode[node] {
			h = ConfigHashPacket(h, p)
		}
	}
	return h
}

// runnable reports whether the run has work left: packets in flight or an
// injector still producing, no livelock, and step budget remaining.
func (e *Engine) runnable() bool {
	return (e.live > 0 || (e.injector != nil && !e.injector.Exhausted(e.time))) &&
		!e.livelock && e.time < e.opts.MaxSteps
}

// Run steps the engine until every packet arrives (or is removed by fault
// degradation), a livelock is detected, the step budget is exhausted, or
// the wall-clock deadline passes, and returns the summary.
func (e *Engine) Run() (*Result, error) { return e.RunContext(context.Background()) }

// RunContext is Run with cancellation and deadline control. The ctx
// deadline and Options.MaxWallTime are unified into one stop signal
// (whichever fires first), checked with a single atomic load per step
// instead of a time.Now() call, so the two mechanisms can never disagree:
// either way the step in flight finishes and the summary reports
// DeadlineExceeded with a nil error, exactly like MaxWallTime always has.
//
// Cancellation (ctx.Done with context.Canceled) also finishes the step in
// flight, but returns the partial summary alongside ctx.Err() so callers
// can tell an interrupted run from an exhausted one. The engine stays
// valid either way: callers may Snapshot it or resume stepping.
func (e *Engine) RunContext(ctx context.Context) (*Result, error) {
	return e.RunCheckpointed(ctx, 0, nil)
}

// RunCheckpointed is RunContext with periodic state capture: when every > 0
// and save is non-nil, save receives a fresh Snapshot after each `every`
// completed steps, and — regardless of `every` — once more when the run is
// stopped early by cancellation or deadline with unsaved progress, so a
// resumed run loses nothing. A save error aborts the run.
func (e *Engine) RunCheckpointed(ctx context.Context, every int, save func(*Snapshot) error) (*Result, error) {
	// One atomic flag carries every stop source. MaxWallTime arms a timer
	// (no goroutine while waiting); a cancellable ctx gets a watcher
	// goroutine released on return. The hot loop pays one atomic load per
	// step for both.
	var stop atomic.Bool
	if e.opts.MaxWallTime > 0 {
		timer := time.AfterFunc(e.opts.MaxWallTime, func() { stop.Store(true) })
		defer timer.Stop()
	}
	if done := ctx.Done(); done != nil {
		quit := make(chan struct{})
		defer close(quit)
		go func() {
			select {
			case <-done:
				stop.Store(true)
			case <-quit:
			}
		}()
	}

	sinceSave := 0
	for e.runnable() && !stop.Load() {
		if err := e.Step(); err != nil {
			return nil, err
		}
		sinceSave++
		if every > 0 && save != nil && sinceSave >= every {
			if err := e.saveSnapshot(save); err != nil {
				return nil, err
			}
			sinceSave = 0
		}
	}

	var runErr error
	if e.runnable() { // stopped early: resolve the cause
		if err := ctx.Err(); errors.Is(err, context.Canceled) {
			runErr = err
		} else {
			// Our MaxWallTime timer or the ctx deadline — unified.
			e.deadlineExceeded = true
		}
		if save != nil && sinceSave > 0 {
			if err := e.saveSnapshot(save); err != nil {
				return nil, err
			}
		}
	}
	return e.result(), runErr
}

// saveSnapshot captures the engine state and hands it to the callback.
func (e *Engine) saveSnapshot(save func(*Snapshot) error) error {
	s, err := e.Snapshot()
	if err != nil {
		return err
	}
	if err := save(s); err != nil {
		return fmt.Errorf("sim: checkpoint save: %w", err)
	}
	return nil
}

func (e *Engine) result() *Result {
	r := &Result{
		Steps:            e.lastArrival,
		Delivered:        len(e.packets) - e.live - e.dropped - e.absorbed,
		Total:            len(e.packets),
		Livelocked:       e.livelock,
		HitMaxSteps:      e.live > 0 && !e.livelock && !e.deadlineExceeded && e.time >= e.opts.MaxSteps,
		TotalDeflections: e.totalDeflections,
		TotalHops:        e.totalHops,
		MaxNodeLoad:      e.maxNodeLoad,

		Dropped:            e.dropped,
		Absorbed:           e.absorbed,
		DroppedCrash:       e.dropCrash,
		DroppedUnreachable: e.dropUnreachable,
		DroppedStranded:    e.dropStranded,
		DroppedInject:      e.dropInject,
		Reroutes:           e.reroutes,
		DeadlineExceeded:   e.deadlineExceeded,
	}
	if e.overlay != nil {
		r.LinkFailures = e.overlay.LinkFailures()
		r.NodeFailures = e.overlay.NodeFailures()
	}
	return r
}
