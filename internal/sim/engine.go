// Package sim implements the synchronous hot-potato routing model of the
// paper (Section 2): packets originate at time 0, every node forwards every
// packet it holds on a distinct outgoing arc in every step (no buffering),
// and at most one packet traverses each directed arc per step.
//
// The engine is policy-agnostic: a Policy supplies the uniform local
// decision rule, and the engine enforces (optionally, per validation level)
// the model constraints, the greediness condition of Definition 6 and the
// restricted-preference condition of Definition 18. It also detects
// livelock for deterministic policies by configuration hashing.
package sim

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"
	"time"

	"hotpotato/internal/mesh"
	"hotpotato/internal/rng"
)

// ValidationLevel selects how strictly the engine checks policy output.
type ValidationLevel int

const (
	// ValidateOff performs no per-step checking (fastest).
	ValidateOff ValidationLevel = iota
	// ValidateBasic checks model legality every step: every packet assigned a
	// distinct, existing outgoing arc.
	ValidateBasic
	// ValidateGreedy additionally checks Definition 6: a deflected packet
	// must have every good arc used by an advancing packet.
	ValidateGreedy
	// ValidateRestricted additionally checks Definition 18: a restricted
	// packet is never deflected by a non-restricted packet.
	ValidateRestricted
)

// Sentinel errors for validation failures. Step/Run wrap them with context.
var (
	// ErrUnassigned is returned when a policy leaves a packet without an
	// outgoing arc (violating the hot-potato constraint).
	ErrUnassigned = errors.New("sim: packet not assigned an outgoing arc")
	// ErrOffMesh is returned when a policy routes a packet off the mesh.
	ErrOffMesh = errors.New("sim: packet routed off the mesh")
	// ErrLinkConflict is returned when two packets are assigned the same
	// outgoing arc.
	ErrLinkConflict = errors.New("sim: two packets assigned the same arc")
	// ErrNotGreedy is returned when a deflection violates Definition 6.
	ErrNotGreedy = errors.New("sim: deflection violates greediness (Definition 6)")
	// ErrNotRestrictedPreferring is returned when a non-restricted packet
	// deflects a restricted one, violating Definition 18.
	ErrNotRestrictedPreferring = errors.New("sim: non-restricted packet deflected a restricted one (Definition 18)")
	// ErrBadInjection is returned by New for ill-formed initial
	// configurations.
	ErrBadInjection = errors.New("sim: invalid initial configuration")
	// ErrPolicyPanic is returned by Step/Run when a policy's Route panics.
	// The panic is recovered (also inside worker goroutines) and surfaced
	// as an error so a buggy policy cannot crash a sweep.
	ErrPolicyPanic = errors.New("sim: policy panicked")
)

// DefaultMaxSteps is the step budget used when Options.MaxSteps is zero.
const DefaultMaxSteps = 1 << 20

// Injector supplies packets to inject at the beginning of each step,
// turning the batch engine into a continuous-traffic simulator (the
// steady-state regime of the deflection-network studies the paper cites:
// [GG], [Ma], [ZA]). Implementations must respect the model's injection
// constraint: after injection, no node may hold more packets than its
// out-degree — use Engine.InjectionCapacity to learn the per-node room.
// Returned packets must sit at their sources with fresh unique IDs.
type Injector interface {
	// Inject returns the packets entering the network at step t. The rng
	// is the engine's deterministic source.
	Inject(t int, e *Engine, rng *rand.Rand) []*Packet
	// Exhausted reports that the source will never inject again (e.g. its
	// generation window closed and its backlog drained); Run then stops as
	// soon as the network empties. A source that never exhausts runs to
	// the step budget.
	Exhausted(t int) bool
}

// Options configures an Engine.
type Options struct {
	// MaxSteps bounds the simulation length; 0 means DefaultMaxSteps.
	MaxSteps int
	// Seed seeds the engine's deterministic RNG (used by randomized
	// policies for tie-breaking).
	Seed int64
	// Validation selects per-step checking of policy output.
	Validation ValidationLevel
	// DetectLivelock enables configuration hashing to detect repeated
	// states. It only takes effect for deterministic policies (a repeated
	// state under a randomized policy does not imply a loop).
	DetectLivelock bool
	// Workers > 1 routes the nodes of each step concurrently on that many
	// goroutines. The policy must implement ClonablePolicy (each worker
	// gets its own scratch). Tie-break randomness is then derived per
	// (seed, step, node), so results are deterministic for a given seed
	// and independent of the worker count — but they differ from the
	// serial path's shared-stream sampling (both are equally valid members
	// of the same policy; deterministic policies produce identical results
	// on every path).
	Workers int
	// MaxWallTime bounds the wall-clock duration of Run; 0 means no limit.
	// Run checks the deadline between steps, finishes the step in flight,
	// and reports the cutoff in Result.DeadlineExceeded. A wall-clock bound
	// is inherently not reproducible across machines; use MaxSteps for
	// deterministic budgets and this as the safety valve around them.
	MaxWallTime time.Duration
}

// ClonablePolicy is implemented by policies whose per-engine scratch state
// can be duplicated for concurrent use by Options.Workers.
type ClonablePolicy interface {
	Policy
	// Clone returns a policy with identical behavior and fresh scratch.
	Clone() Policy
}

// Result summarizes a completed Run.
type Result struct {
	// Steps is the routing time: the step at which the last packet reached
	// its destination (0 if every packet originated at its destination).
	Steps int
	// Delivered is the number of packets that reached their destinations.
	Delivered int
	// Total is the number of packets in the problem.
	Total int
	// Livelocked reports that a configuration repeated under a
	// deterministic policy, so the run would loop forever.
	Livelocked bool
	// HitMaxSteps reports that the step budget was exhausted first.
	HitMaxSteps bool
	// TotalDeflections counts packet-steps moving away from destinations.
	TotalDeflections int64
	// TotalHops counts all packet movements.
	TotalHops int64
	// MaxNodeLoad is the largest number of packets observed in one node at
	// the beginning of a step.
	MaxNodeLoad int

	// Dropped is the number of packets removed undelivered by fault
	// degradation (all causes; always Delivered + Dropped + Absorbed +
	// live-at-exit == Total).
	Dropped int
	// Absorbed is the number of crash victims terminated at their crashing
	// node under FateAbsorb (counted separately from drops).
	Absorbed int
	// DroppedCrash counts drops of packets caught in a crashing node
	// (FateDrop only; under FateAbsorb they count in Absorbed instead).
	DroppedCrash int
	// DroppedUnreachable counts drops of packets whose destination was down
	// when the failure set changed.
	DroppedUnreachable int
	// DroppedStranded counts drops of packets shed because a node's
	// surviving out-degree fell below its load.
	DroppedStranded int
	// DroppedInject counts injected packets refused gracefully because the
	// failure set left no room for them.
	DroppedInject int
	// LinkFailures and NodeFailures are the cumulative fault transitions
	// applied over the run (0 without a fault model).
	LinkFailures int
	NodeFailures int
	// Reroutes counts packet-steps in which a packet had no surviving good
	// arc (all its geometrically good arcs were down), so every available
	// move was a forced, fault-induced deflection.
	Reroutes int64
	// DeadlineExceeded reports that Options.MaxWallTime cut the run short.
	DeadlineExceeded bool
}

// Engine runs one routing problem under one policy.
type Engine struct {
	mesh    *mesh.Mesh
	topo    mesh.Topology // routing view: mesh, or overlay under faults
	policy  Policy
	packets []*Packet
	opts    Options
	rng     *rand.Rand

	time        int
	live        int
	lastArrival int
	byNode      [][]*Packet
	active      []mesh.NodeID
	activeMark  []bool
	observers   []Observer

	livelock     bool
	livelockable bool
	seen         map[uint64]int
	injector     Injector
	ids          map[int]bool
	nextID       int

	// Fault state (nil/zero without SetFaults).
	faults       FaultModel
	overlay      *mesh.Overlay
	faultRng     *rand.Rand
	faultVersion uint64
	fate         PacketFate

	totalDeflections int64
	totalHops        int64
	maxNodeLoad      int
	reroutes         int64

	dropped         int
	absorbed        int
	dropCrash       int
	dropUnreachable int
	dropStranded    int
	dropInject      int

	deadlineExceeded bool

	// Reusable routing scratch: one for the serial path, one per goroutine
	// when Options.Workers > 1.
	scratch *routeScratch
	workers []*routeScratch
	moves   []Move
}

// New validates the initial configuration and returns an engine positioned
// at time 0. Packets whose source equals their destination are absorbed
// immediately (ArrivedAt = 0). The engine takes ownership of the packets.
//
// The initial configuration must satisfy the paper's many-to-many model: no
// node is the origin of more packets than its out-degree.
func New(m *mesh.Mesh, policy Policy, packets []*Packet, opts Options) (*Engine, error) {
	if m == nil {
		return nil, fmt.Errorf("%w: nil mesh", ErrBadInjection)
	}
	if policy == nil {
		return nil, fmt.Errorf("%w: nil policy", ErrBadInjection)
	}
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = DefaultMaxSteps
	}
	e := &Engine{
		mesh:         m,
		topo:         m,
		policy:       policy,
		packets:      packets,
		opts:         opts,
		rng:          rand.New(rand.NewSource(opts.Seed)),
		byNode:       make([][]*Packet, m.Size()),
		activeMark:   make([]bool, m.Size()),
		livelockable: opts.DetectLivelock && policy.Deterministic(),
	}
	if e.livelockable {
		e.seen = make(map[uint64]int)
	}
	e.scratch = e.newScratch(policy)
	if opts.Workers > 1 {
		cp, ok := policy.(ClonablePolicy)
		if !ok {
			return nil, fmt.Errorf("%w: policy %s does not implement ClonablePolicy (required by Workers=%d)",
				ErrBadInjection, policy.Name(), opts.Workers)
		}
		for w := 0; w < opts.Workers; w++ {
			e.workers = append(e.workers, e.newScratch(cp.Clone()))
		}
	}

	e.ids = make(map[int]bool, len(packets))
	for _, p := range packets {
		if p == nil {
			return nil, fmt.Errorf("%w: nil packet", ErrBadInjection)
		}
		if err := m.CheckID(p.Src); err != nil {
			return nil, fmt.Errorf("%w: packet %d source: %v", ErrBadInjection, p.ID, err)
		}
		if err := m.CheckID(p.Dst); err != nil {
			return nil, fmt.Errorf("%w: packet %d destination: %v", ErrBadInjection, p.ID, err)
		}
		if p.Node != p.Src {
			return nil, fmt.Errorf("%w: packet %d not at its source", ErrBadInjection, p.ID)
		}
		if e.ids[p.ID] {
			return nil, fmt.Errorf("%w: duplicate packet id %d", ErrBadInjection, p.ID)
		}
		e.ids[p.ID] = true
		if p.ID >= e.nextID {
			e.nextID = p.ID + 1
		}
		p.Cause = DropNone
		p.DroppedAt = -1
		if p.Src == p.Dst {
			p.ArrivedAt = 0
			continue
		}
		p.ArrivedAt = -1
		e.enqueue(p)
		e.live++
	}
	for _, node := range e.active {
		if deg := m.Degree(node); len(e.byNode[node]) > deg {
			return nil, fmt.Errorf("%w: node %d originates %d packets, out-degree %d",
				ErrBadInjection, node, len(e.byNode[node]), deg)
		}
	}
	sortNodes(e.active)
	return e, nil
}

func (e *Engine) enqueue(p *Packet) {
	if len(e.byNode[p.Node]) == 0 && !e.activeMark[p.Node] {
		e.activeMark[p.Node] = true
		e.active = append(e.active, p.Node)
	}
	e.byNode[p.Node] = append(e.byNode[p.Node], p)
}

func sortNodes(nodes []mesh.NodeID) {
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
}

// AddObserver registers an observer to run after every step.
func (e *Engine) AddObserver(o Observer) { e.observers = append(e.observers, o) }

// SetInjector installs a continuous traffic source. Injection happens at
// the beginning of every step, before routing. Installing an injector
// disables livelock detection (the configuration is no longer closed).
func (e *Engine) SetInjector(inj Injector) {
	e.injector = inj
	e.livelockable = false
}

// InjectionCapacity returns how many packets can still be injected at the
// node this step without exceeding its out-degree — the surviving
// out-degree when a fault model is installed, so injectors automatically
// respect reduced capacity. The value reflects the engine state when
// called: an Injector returning several packets for the same node in one
// Inject call must count its own earlier picks against the capacity
// itself.
func (e *Engine) InjectionCapacity(node mesh.NodeID) int {
	c := e.topo.Degree(node) - len(e.byNode[node])
	if c < 0 {
		return 0
	}
	return c
}

// NextPacketID returns a fresh packet ID, unique within this engine, for
// injectors to use.
func (e *Engine) NextPacketID() int {
	id := e.nextID
	e.nextID++
	return id
}

// inject runs the installed injector and validates its output. Injector
// bugs — nil packets, off-mesh endpoints, reused IDs, exceeding the intact
// mesh's capacity — are hard errors; packets the current failure set leaves
// no room for (source or destination down, surviving degree already full)
// are refused gracefully with cause DropInject.
func (e *Engine) inject() error {
	newPackets := e.injector.Inject(e.time, e, e.rng)
	for _, p := range newPackets {
		if p == nil {
			return fmt.Errorf("%w: injector returned nil packet at step %d", ErrBadInjection, e.time)
		}
		if err := e.mesh.CheckID(p.Src); err != nil {
			return fmt.Errorf("%w: injected packet %d source: %v", ErrBadInjection, p.ID, err)
		}
		if err := e.mesh.CheckID(p.Dst); err != nil {
			return fmt.Errorf("%w: injected packet %d destination: %v", ErrBadInjection, p.ID, err)
		}
		if p.Node != p.Src {
			return fmt.Errorf("%w: injected packet %d not at its source", ErrBadInjection, p.ID)
		}
		if e.ids[p.ID] {
			return fmt.Errorf("%w: injected packet reuses id %d at step %d", ErrBadInjection, p.ID, e.time)
		}
		e.ids[p.ID] = true
		if p.ID >= e.nextID {
			e.nextID = p.ID + 1
		}
		e.packets = append(e.packets, p)
		p.InjectedAt = e.time
		p.Cause = DropNone
		p.DroppedAt = -1
		if p.Src == p.Dst {
			p.ArrivedAt = e.time
			continue
		}
		p.ArrivedAt = -1
		if e.overlay != nil && (e.overlay.NodeDown(p.Src) || e.overlay.NodeDown(p.Dst)) {
			e.markDropped(p, DropInject)
			continue
		}
		if len(e.byNode[p.Src]) >= e.topo.Degree(p.Src) {
			if len(e.byNode[p.Src]) >= e.mesh.Degree(p.Src) {
				return fmt.Errorf("%w: step %d node %d injection exceeds out-degree %d",
					ErrBadInjection, e.time, p.Src, e.mesh.Degree(p.Src))
			}
			// There would be room on the intact mesh: the injector is fine,
			// the failure set ate the capacity.
			e.markDropped(p, DropInject)
			continue
		}
		e.enqueue(p)
		e.live++
	}
	if len(newPackets) > 0 {
		sortNodes(e.active)
	}
	return nil
}

// Mesh returns the intact base mesh. Under an installed fault model the
// engine routes against Topology() instead; Mesh stays the geometric
// ground truth (sizes, distances, coordinates).
func (e *Engine) Mesh() *mesh.Mesh { return e.mesh }

// Policy returns the routing policy.
func (e *Engine) Policy() Policy { return e.policy }

// Packets returns all packets of the problem (live and arrived). Callers
// must not mutate them.
func (e *Engine) Packets() []*Packet { return e.packets }

// PacketsAt returns the packets currently at the given node. The slice is
// engine-owned and valid until the next Step.
func (e *Engine) PacketsAt(node mesh.NodeID) []*Packet { return e.byNode[node] }

// Time returns the current step index.
func (e *Engine) Time() int { return e.time }

// Live returns the number of packets still in the network.
func (e *Engine) Live() int { return e.live }

// Done reports whether every packet has arrived.
func (e *Engine) Done() bool { return e.live == 0 }

// Livelocked reports whether a repeated configuration was detected.
func (e *Engine) Livelocked() bool { return e.livelock }

// routeScratch is the per-worker routing state: one exists for the serial
// path, and one per goroutine in the parallel path.
type routeScratch struct {
	ns          NodeState
	out         []mesh.Dir
	dirOwner    []int
	moves       []Move
	policy      Policy
	src         rng.SplitMix64
	rnd         *rand.Rand
	maxNodeLoad int
	reroutes    int64 // per-step count, drained by Step/routeParallel
}

func (e *Engine) newScratch(policy Policy) *routeScratch {
	sc := &routeScratch{
		out:      make([]mesh.Dir, 0, e.mesh.DirCount()),
		dirOwner: make([]int, e.mesh.DirCount()),
		policy:   policy,
	}
	sc.ns.Mesh = e.topo
	sc.ns.infos = make([]PacketInfo, 0, e.mesh.DirCount())
	sc.rnd = rand.New(&sc.src)
	return sc
}

// fillInfo computes PacketInfo for every packet of the scratch node state.
// Good directions come from the routing topology, so under faults they are
// the surviving good arcs; a live packet with GoodCount == 0 (possible only
// when faults cut every geometrically good arc) is a forced reroute.
func (sc *routeScratch) fillInfo(topo mesh.Topology) {
	ns := &sc.ns
	ns.infos = ns.infos[:0]
	for _, p := range ns.Packets {
		var pi PacketInfo
		dirs := topo.GoodDirs(p.Node, p.Dst, pi.goodBuf[:0])
		pi.GoodCount = len(dirs)
		if pi.GoodCount == 0 {
			sc.reroutes++
		}
		pi.Restricted = pi.GoodCount == 1
		pi.TypeA = pi.Restricted && p.RestrictedPrev && p.AdvancedPrev
		ns.infos = append(ns.infos, pi)
	}
}

// routePolicy invokes the policy with panic isolation: a panicking Route
// surfaces as an ErrPolicyPanic instead of tearing down the process (or, in
// the parallel path, deadlocking a worker pool).
func (sc *routeScratch) routePolicy(rnd *rand.Rand) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: policy %s: %v", ErrPolicyPanic, sc.policy.Name(), r)
		}
	}()
	sc.policy.Route(&sc.ns, sc.out, rnd)
	return nil
}

// validate checks the assignment for the scratch node state according to
// the configured validation level. dirOwner is rebuilt as a side effect.
func (e *Engine) validate(sc *routeScratch) error {
	ns := &sc.ns
	out := sc.out
	for i := range sc.dirOwner {
		sc.dirOwner[i] = -1
	}
	for i, dir := range out {
		p := ns.Packets[i]
		if dir < 0 || int(dir) >= e.topo.DirCount() {
			return fmt.Errorf("%w: step %d node %d packet %d (dir %d)",
				ErrUnassigned, ns.Time, ns.Node, p.ID, dir)
		}
		if !e.topo.HasArc(ns.Node, dir) {
			return fmt.Errorf("%w: step %d node %d packet %d via %v",
				ErrOffMesh, ns.Time, ns.Node, p.ID, dir)
		}
		if prev := sc.dirOwner[dir]; prev >= 0 {
			return fmt.Errorf("%w: step %d node %d packets %d and %d both via %v",
				ErrLinkConflict, ns.Time, ns.Node, ns.Packets[prev].ID, p.ID, dir)
		}
		sc.dirOwner[dir] = i
	}
	if e.opts.Validation < ValidateGreedy {
		return nil
	}
	for i, dir := range out {
		pi := ns.Info(i)
		if e.topo.IsGoodDir(ns.Packets[i].Node, ns.Packets[i].Dst, dir) {
			continue // advancing
		}
		// Packet i is deflected: every (surviving) good arc must carry an
		// advancing packet (Definition 6), and if packet i is restricted,
		// that advancing packet must itself be restricted (Definition 18).
		for _, g := range pi.Good() {
			j := sc.dirOwner[g]
			if j < 0 || !e.topo.IsGoodDir(ns.Packets[j].Node, ns.Packets[j].Dst, g) {
				return fmt.Errorf("%w: step %d node %d packet %d deflected with free good arc %v",
					ErrNotGreedy, ns.Time, ns.Node, ns.Packets[i].ID, g)
			}
			if e.opts.Validation >= ValidateRestricted && pi.Restricted && !ns.Info(j).Restricted {
				return fmt.Errorf("%w: step %d node %d packet %d deflected by non-restricted packet %d",
					ErrNotRestrictedPreferring, ns.Time, ns.Node, ns.Packets[i].ID, ns.Packets[j].ID)
			}
		}
	}
	return nil
}

// routeNode routes one node's packets into sc.moves using the given RNG.
func (e *Engine) routeNode(sc *routeScratch, node mesh.NodeID, t int, rnd *rand.Rand) error {
	pkts := e.byNode[node]
	if len(pkts) > sc.maxNodeLoad {
		sc.maxNodeLoad = len(pkts)
	}
	sc.ns.Node = node
	sc.ns.Time = t
	sc.ns.Packets = pkts
	sc.fillInfo(e.topo)

	sc.out = sc.out[:len(pkts)]
	for i := range sc.out {
		sc.out[i] = mesh.NoDir
	}
	if err := sc.routePolicy(rnd); err != nil {
		return fmt.Errorf("step %d node %d: %w", t, node, err)
	}

	if e.opts.Validation > ValidateOff {
		if err := e.validate(sc); err != nil {
			return err
		}
	}
	for i, p := range pkts {
		dir := sc.out[i]
		to, ok := e.topo.Neighbor(node, dir)
		if !ok {
			// Unvalidated policies can still not corrupt the engine (nor
			// route through an arc the failure set removed).
			return fmt.Errorf("%w: step %d node %d packet %d via %v", ErrOffMesh, t, node, p.ID, dir)
		}
		pi := sc.ns.Info(i)
		adv := e.topo.IsGoodDir(node, p.Dst, dir)
		sc.moves = append(sc.moves, Move{
			Packet:        p,
			From:          node,
			To:            to,
			Dir:           dir,
			Advanced:      adv,
			GoodCount:     pi.GoodCount,
			WasRestricted: pi.Restricted,
			WasTypeA:      pi.TypeA,
			ArrivedNow:    to == p.Dst,
		})
	}
	return nil
}

// routeParallel routes the active nodes across the worker scratches.
// Chunks are contiguous ranges of the (sorted) active list, so the
// concatenated moves keep the per-node grouping and global node order the
// observers rely on. Each node's tie-break RNG is derived from
// (seed, step, node), making the outcome independent of the partition.
func (e *Engine) routeParallel(t int) error {
	nw := len(e.workers)
	chunk := (len(e.active) + nw - 1) / nw
	var wg sync.WaitGroup
	errs := make([]error, nw)
	for w := 0; w < nw; w++ {
		lo := w * chunk
		if lo >= len(e.active) {
			e.workers[w].moves = e.workers[w].moves[:0]
			e.workers[w].reroutes = 0
			continue
		}
		hi := lo + chunk
		if hi > len(e.active) {
			hi = len(e.active)
		}
		wg.Add(1)
		go func(w int, nodes []mesh.NodeID) {
			defer wg.Done()
			// Backstop for panics outside the policy call (routePolicy
			// already recovers those): a panicking worker must not kill the
			// process while the others run.
			defer func() {
				if r := recover(); r != nil {
					errs[w] = fmt.Errorf("sim: worker %d panicked at step %d: %v", w, t, r)
				}
			}()
			sc := e.workers[w]
			sc.moves = sc.moves[:0]
			sc.reroutes = 0
			for _, node := range nodes {
				sc.src.Seed(rng.Mix(e.opts.Seed, int64(t), int64(node)))
				if err := e.routeNode(sc, node, t, sc.rnd); err != nil {
					errs[w] = err
					return
				}
			}
		}(w, e.active[lo:hi])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	e.moves = e.moves[:0]
	for _, sc := range e.workers {
		e.moves = append(e.moves, sc.moves...)
		if sc.maxNodeLoad > e.maxNodeLoad {
			e.maxNodeLoad = sc.maxNodeLoad
		}
		e.reroutes += sc.reroutes
	}
	return nil
}

// Step advances the simulation by one synchronous step. It returns an error
// only on validation failure; termination conditions (done, livelock, step
// budget) are reported by Run.
func (e *Engine) Step() error {
	t := e.time
	// Fault transitions happen first (single-threaded, own RNG stream), so
	// injection and routing always see a settled failure set and the fault
	// sequence is identical on the serial and parallel paths.
	if e.faults != nil {
		e.applyFaults()
	}
	if e.injector != nil {
		if err := e.inject(); err != nil {
			return err
		}
	}
	// Route every active node. Active nodes are kept sorted so that runs
	// are reproducible for a given seed.
	if len(e.workers) > 0 && len(e.active) > 1 {
		if err := e.routeParallel(t); err != nil {
			return err
		}
	} else {
		sc := e.scratch
		sc.moves = sc.moves[:0]
		sc.reroutes = 0
		for _, node := range e.active {
			if err := e.routeNode(sc, node, t, e.rng); err != nil {
				return err
			}
		}
		e.moves = sc.moves
		if sc.maxNodeLoad > e.maxNodeLoad {
			e.maxNodeLoad = sc.maxNodeLoad
		}
		e.reroutes += sc.reroutes
	}

	// Apply all moves simultaneously.
	for _, node := range e.active {
		e.byNode[node] = e.byNode[node][:0]
		e.activeMark[node] = false
	}
	e.active = e.active[:0]
	e.time = t + 1
	for i := range e.moves {
		mv := &e.moves[i]
		p := mv.Packet
		p.GoodPrev = mv.GoodCount
		p.RestrictedPrev = mv.WasRestricted
		p.AdvancedPrev = mv.Advanced
		p.Node = mv.To
		p.EnteredVia = mv.Dir
		p.Hops++
		e.totalHops++
		if !mv.Advanced {
			p.Deflections++
			e.totalDeflections++
		}
		if mv.ArrivedNow {
			p.ArrivedAt = e.time
			e.lastArrival = e.time
			e.live--
		} else {
			e.enqueue(p)
		}
	}
	sortNodes(e.active)

	rec := StepRecord{Time: t, Moves: e.moves}
	for _, o := range e.observers {
		o.OnStep(&rec)
	}

	if e.livelockable && e.live > 0 {
		h := e.stateHash()
		if _, dup := e.seen[h]; dup {
			e.livelock = true
		} else {
			e.seen[h] = e.time
		}
	}
	return nil
}

// stateHash digests the full routing-relevant configuration: for each live
// packet its position, entry arc and history flags. Two equal configurations
// under a deterministic policy evolve identically, so a repeated hash marks
// a livelock (up to the negligible 64-bit collision probability, documented
// in the Options).
func (e *Engine) stateHash() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v int) {
		buf[0] = byte(v)
		buf[1] = byte(v >> 8)
		buf[2] = byte(v >> 16)
		buf[3] = byte(v >> 24)
		_, _ = h.Write(buf[:4])
	}
	for _, p := range e.packets {
		if p.Arrived() || p.Dropped() {
			put(-1)
			continue
		}
		put(int(p.Node))
		flags := int(p.EnteredVia) + 1
		if p.AdvancedPrev {
			flags |= 1 << 8
		}
		if p.RestrictedPrev {
			flags |= 1 << 9
		}
		flags |= p.GoodPrev << 10
		put(flags)
	}
	return h.Sum64()
}

// Run steps the engine until every packet arrives (or is removed by fault
// degradation), a livelock is detected, the step budget is exhausted, or
// the wall-clock deadline passes, and returns the summary.
func (e *Engine) Run() (*Result, error) {
	var deadline time.Time
	if e.opts.MaxWallTime > 0 {
		deadline = time.Now().Add(e.opts.MaxWallTime)
	}
	for (e.live > 0 || (e.injector != nil && !e.injector.Exhausted(e.time))) &&
		!e.livelock && e.time < e.opts.MaxSteps {
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			e.deadlineExceeded = true
			break
		}
		if err := e.Step(); err != nil {
			return nil, err
		}
	}
	return e.result(), nil
}

func (e *Engine) result() *Result {
	r := &Result{
		Steps:            e.lastArrival,
		Delivered:        len(e.packets) - e.live - e.dropped - e.absorbed,
		Total:            len(e.packets),
		Livelocked:       e.livelock,
		HitMaxSteps:      e.live > 0 && !e.livelock && !e.deadlineExceeded && e.time >= e.opts.MaxSteps,
		TotalDeflections: e.totalDeflections,
		TotalHops:        e.totalHops,
		MaxNodeLoad:      e.maxNodeLoad,

		Dropped:            e.dropped,
		Absorbed:           e.absorbed,
		DroppedCrash:       e.dropCrash,
		DroppedUnreachable: e.dropUnreachable,
		DroppedStranded:    e.dropStranded,
		DroppedInject:      e.dropInject,
		Reroutes:           e.reroutes,
		DeadlineExceeded:   e.deadlineExceeded,
	}
	if e.overlay != nil {
		r.LinkFailures = e.overlay.LinkFailures()
		r.NodeFailures = e.overlay.NodeFailures()
	}
	return r
}
