package sim

import (
	"math/rand"

	"hotpotato/internal/mesh"
	"hotpotato/internal/rng"
)

// FaultModel mutates the engine's failure overlay at the beginning of each
// step, before injection and routing. Advance must be deterministic given
// its own state and the RNG stream and is only called with non-decreasing t.
//
// The interface is structurally identical to fault.Model, so every model in
// internal/fault plugs in directly (package sim does not import package
// fault; the dependency points the other way only at the call sites that
// wire the two together).
type FaultModel interface {
	Advance(t int, o *mesh.Overlay, rng *rand.Rand)
}

// PacketFate selects what happens to the packets sitting in a node when it
// crashes.
type PacketFate int

const (
	// FateDrop discards crash victims; they count as Dropped (cause
	// DropCrash). This models a router losing its in-flight buffers.
	FateDrop PacketFate = iota
	// FateAbsorb terminates crash victims at the crashed node; they count as
	// Absorbed, separate from drops. This models hosts that consume whatever
	// the dying router held (the optimistic accounting bound).
	FateAbsorb
)

// String renders the fate.
func (f PacketFate) String() string {
	switch f {
	case FateDrop:
		return "drop"
	case FateAbsorb:
		return "absorb"
	}
	return "PacketFate(?)"
}

// DropCause records why the engine removed a packet from the network
// without delivering it.
type DropCause int

const (
	// DropNone marks a packet that is live, delivered, or not yet injected.
	DropNone DropCause = iota
	// DropCrash marks a packet that sat in a node when it crashed.
	DropCrash
	// DropUnreachable marks a packet whose destination was down when the
	// failure set changed.
	DropUnreachable
	// DropStranded marks a packet shed because its node's surviving
	// out-degree fell below its load (the hot-potato constraint would be
	// unsatisfiable otherwise).
	DropStranded
	// DropInject marks an injected packet refused gracefully because the
	// failure set left no room for it (source or destination down, or the
	// source's surviving degree already full).
	DropInject
)

// String renders the cause.
func (c DropCause) String() string {
	switch c {
	case DropNone:
		return "none"
	case DropCrash:
		return "crash"
	case DropUnreachable:
		return "unreachable"
	case DropStranded:
		return "stranded"
	case DropInject:
		return "inject"
	}
	return "DropCause(?)"
}

// faultStreamSalt separates the fault RNG stream from every routing and
// tie-breaking stream derived from the same engine seed.
const faultStreamSalt int64 = 0x0fa171

// SetFaults overlays the mesh with a mutable failure view and installs a
// fault model that is advanced at the beginning of every step (before
// injection and routing). fate selects what happens to packets caught in a
// crashing node; packets stranded by lost capacity or cut off from a downed
// destination are always dropped, with per-cause accounting in the Result.
//
// The model draws from a dedicated RNG stream derived from Options.Seed, so
// a (seed, model) pair reproduces the same fault sequence regardless of the
// policy, the worker count, and the traffic. Routing itself sees the
// overlay through the Topology interface: HasArc, Degree and GoodDirs
// reflect the surviving arcs, while distances stay geometric (a bufferless
// router has no global failure map to recompute routes with).
//
// Installing faults disables livelock detection: the configuration is no
// longer closed, so a repeated packet state does not imply a loop. Call
// before the first Step; the engine does not support swapping models
// mid-run.
func (e *Engine) SetFaults(model FaultModel, fate PacketFate) {
	e.faults = model
	e.fate = fate
	e.overlay = mesh.NewOverlay(e.mesh)
	e.topo = e.overlay
	e.fast = nil // faults installed: every lookup must see the overlay
	e.faultVersion = e.overlay.Version()
	e.faultRng = rand.New(rand.NewSource(rng.Mix(e.opts.Seed, faultStreamSalt)))
	e.livelockable = false
	e.scratch.ns.Mesh = e.topo
	for _, sc := range e.workers {
		sc.ns.Mesh = e.topo
	}
}

// Topology returns the view the engine routes against: the base mesh, or
// the failure overlay once SetFaults is installed.
func (e *Engine) Topology() mesh.Topology { return e.topo }

// Overlay returns the failure overlay, or nil when no fault model is
// installed. Callers must not mutate it while the engine runs.
func (e *Engine) Overlay() *mesh.Overlay { return e.overlay }

// applyFaults advances the fault model and, when the failure set changed,
// runs the degradation pass that restores the engine invariants.
func (e *Engine) applyFaults() {
	e.faults.Advance(e.time, e.overlay, e.faultRng)
	if v := e.overlay.Version(); v != e.faultVersion {
		e.faultVersion = v
		e.degrade()
	}
}

// markDropped records the removal of an undelivered packet and updates the
// per-cause counters. Callers adjust e.live themselves (injection drops
// were never live).
func (e *Engine) markDropped(p *Packet, cause DropCause) {
	p.DroppedAt = e.time
	p.Cause = cause
	delete(e.ids, p.ID) // finalized; the nextID watermark covers it
	if cause == DropCrash && e.fate == FateAbsorb {
		e.absorbed++
		return
	}
	e.dropped++
	switch cause {
	case DropCrash:
		e.dropCrash++
	case DropUnreachable:
		e.dropUnreachable++
	case DropStranded:
		e.dropStranded++
	case DropInject:
		e.dropInject++
	}
}

// degrade walks the occupied nodes and removes every packet the new failure
// set makes unroutable, so that routing always starts from a legal
// configuration (every node's load at most its surviving out-degree, no
// packet in or destined to a down node):
//
//   - packets in a crashed node suffer the configured PacketFate;
//   - packets whose destination is down are dropped (DropUnreachable) — a
//     pessimistic choice under transient crash models, but it keeps the
//     delivery accounting exact instead of letting orphans wander to the
//     step budget;
//   - excess packets beyond the surviving out-degree are shed from the top
//     of the node's queue (DropStranded), deterministically.
//
// Between failure transitions the invariants are self-preserving: link
// failures are bidirectional, so every node's in-degree equals its
// out-degree and a legal step cannot overfill a node; arcs into down nodes
// are gone, so no packet can enter one.
func (e *Engine) degrade() {
	keep := e.active[:0]
	for _, node := range e.active {
		pkts := e.byNode[node]
		if e.overlay.NodeDown(node) {
			for _, p := range pkts {
				e.markDropped(p, DropCrash)
				e.live--
			}
			e.byNode[node] = pkts[:0]
			e.activeMark[node] = false
			continue
		}
		w := 0
		for _, p := range pkts {
			if e.overlay.NodeDown(p.Dst) {
				e.markDropped(p, DropUnreachable)
				e.live--
				continue
			}
			pkts[w] = p
			w++
		}
		pkts = pkts[:w]
		if deg := e.overlay.Degree(node); len(pkts) > deg {
			for _, p := range pkts[deg:] {
				e.markDropped(p, DropStranded)
				e.live--
			}
			pkts = pkts[:deg]
		}
		e.byNode[node] = pkts
		if len(pkts) == 0 {
			e.activeMark[node] = false
			continue
		}
		keep = append(keep, node)
	}
	e.active = keep
}
