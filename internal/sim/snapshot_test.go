package sim

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"slices"
	"testing"
	"time"

	"hotpotato/internal/mesh"
)

// flapModel is a deterministic-given-rng link flap process used to exercise
// the overlay code path and the fault-clock replay in Restore.
type flapModel struct {
	rate, repair float64
}

func (f flapModel) Advance(t int, o *mesh.Overlay, rng *rand.Rand) {
	base := o.Base()
	for id := 0; id < base.Size(); id++ {
		for d := 0; d < base.DirCount(); d++ {
			node, dir := mesh.NodeID(id), mesh.Dir(d)
			if !base.HasArc(node, dir) {
				continue
			}
			if o.LinkDown(node, dir) {
				if rng.Float64() < f.repair {
					o.RestoreLink(node, dir)
				}
			} else if rng.Float64() < f.rate {
				o.FailLink(node, dir)
			}
		}
	}
}

// snapshotCase is one engine configuration whose mid-run snapshot must
// resume bit-identically.
type snapshotCase struct {
	name    string
	policy  func() Policy
	opts    Options
	faults  func() FaultModel
	breakAt int
}

func snapshotCases() []snapshotCase {
	return []snapshotCase{
		{name: "fast-path-serial-deterministic",
			policy: func() Policy { return cloneableFirstGood{firstGoodPolicy()} },
			opts:   Options{Seed: 5, Validation: ValidateBasic, MaxSteps: 2000, DetectLivelock: true}, breakAt: 7},
		{name: "fast-path-serial-randomized",
			policy: shuffledPolicy,
			opts:   Options{Seed: 5, Validation: ValidateBasic, MaxSteps: 2000}, breakAt: 9},
		{name: "fast-path-workers",
			policy: func() Policy { return cloneableFirstGood{firstGoodPolicy()} },
			opts:   Options{Seed: 5, Validation: ValidateBasic, MaxSteps: 2000, Workers: 3}, breakAt: 8},
		{name: "fault-overlay-serial",
			policy: func() Policy { return cloneableFirstGood{firstGoodPolicy()} },
			opts:   Options{Seed: 11, Validation: ValidateBasic, MaxSteps: 2000},
			faults: func() FaultModel { return flapModel{rate: 0.01, repair: 0.3} }, breakAt: 11},
		{name: "fault-overlay-workers",
			policy: func() Policy { return cloneableFirstGood{firstGoodPolicy()} },
			opts:   Options{Seed: 11, Validation: ValidateBasic, MaxSteps: 2000, Workers: 4},
			faults: func() FaultModel { return flapModel{rate: 0.01, repair: 0.3} }, breakAt: 13},
	}
}

// runToEnd drives the engine to completion recording per-step moves.
func runToEnd(t *testing.T, e *Engine) (Result, []moveRec) {
	t.Helper()
	var log []moveRec
	e.AddObserver(ObserverFunc(func(rec *StepRecord) {
		for i := range rec.Moves {
			mv := &rec.Moves[i]
			log = append(log, moveRec{t: rec.Time, id: mv.Packet.ID, from: mv.From, to: mv.To, dir: mv.Dir, adv: mv.Advanced})
		}
	}))
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return *res, log
}

// TestSnapshotResumeParity is the core checkpoint guarantee: run K steps,
// snapshot, restore into a fresh engine, and the remaining run is
// bit-identical — same per-step moves, same final Result, same state hash —
// on the table fast path, the fault-overlay path, and with Workers > 1.
func TestSnapshotResumeParity(t *testing.T) {
	m := mesh.MustNew(2, 8)
	for _, tc := range snapshotCases() {
		t.Run(tc.name, func(t *testing.T) {
			packets := parityPackets(m, m.Size(), 3)

			// Reference: one uninterrupted run.
			ref, err := New(m, tc.policy(), clonePackets(packets), tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			defer ref.Close()
			if tc.faults != nil {
				ref.SetFaults(tc.faults(), FateDrop)
			}
			refRes, refLog := runToEnd(t, ref)

			// Interrupted run: step to breakAt, snapshot, abandon.
			a, err := New(m, tc.policy(), clonePackets(packets), tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			defer a.Close()
			if tc.faults != nil {
				a.SetFaults(tc.faults(), FateDrop)
			}
			for i := 0; i < tc.breakAt && !a.Done(); i++ {
				if err := a.Step(); err != nil {
					t.Fatal(err)
				}
			}
			hashAt := a.StateHash()
			snap, err := a.Snapshot()
			if err != nil {
				t.Fatal(err)
			}

			// The snapshot must survive serialization (the JSON leg of the
			// codec round-trips through the same marshaling).
			buf, err := json.Marshal(snap)
			if err != nil {
				t.Fatal(err)
			}
			var snap2 Snapshot
			if err := json.Unmarshal(buf, &snap2); err != nil {
				t.Fatal(err)
			}

			// Resume into a fresh engine.
			b, err := New(m, tc.policy(), nil, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			defer b.Close()
			if tc.faults != nil {
				b.SetFaults(tc.faults(), FateDrop)
			}
			if err := b.Restore(&snap2); err != nil {
				t.Fatal(err)
			}
			if got := b.StateHash(); got != hashAt {
				t.Fatalf("restored state hash %#x != snapshotted %#x", got, hashAt)
			}
			if b.Time() != a.Time() || b.Live() != a.Live() {
				t.Fatalf("restored clock/live (%d, %d) != source (%d, %d)", b.Time(), b.Live(), a.Time(), a.Live())
			}
			bRes, bLog := runToEnd(t, b)

			if bRes != refRes {
				t.Errorf("resumed result diverged:\nresumed %+v\nref     %+v", bRes, refRes)
			}
			// The resumed move log must equal the reference's tail.
			tail := refLog[:0:0]
			for _, mv := range refLog {
				if mv.t >= snap.Time {
					tail = append(tail, mv)
				}
			}
			if !slices.Equal(bLog, tail) {
				t.Errorf("resumed move log diverged from reference tail (%d vs %d moves)", len(bLog), len(tail))
			}
			if bh, rh := b.StateHash(), ref.StateHash(); bh != rh {
				t.Errorf("final state hash %#x != reference %#x", bh, rh)
			}
		})
	}
}

// TestSnapshotRestoreRejectsMismatch: Restore must refuse engines whose
// configuration differs from the snapshot's instead of silently diverging.
func TestSnapshotRestoreRejectsMismatch(t *testing.T) {
	m := mesh.MustNew(2, 6)
	mk := func(pol Policy, opts Options) *Engine {
		e, err := New(m, pol, nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	opts := Options{Seed: 3, Validation: ValidateBasic}
	srcFull, err := New(m, firstGoodPolicy(), parityPackets(m, 8, 1), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := srcFull.Step(); err != nil {
		t.Fatal(err)
	}
	snap, err := srcFull.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		target *Engine
		mutate func(s Snapshot) Snapshot
	}{
		{"wrong seed", mk(firstGoodPolicy(), Options{Seed: 99, Validation: ValidateBasic}), nil},
		{"wrong policy", mk(&testPolicy{name: "test-other", det: true}, opts), nil},
		{"wrong mesh", func() *Engine {
			e, err := New(mesh.MustNew(2, 8), firstGoodPolicy(), nil, opts)
			if err != nil {
				t.Fatal(err)
			}
			return e
		}(), nil},
		{"missing fault model", mk(firstGoodPolicy(), opts), func(s Snapshot) Snapshot { s.HasFaults = true; return s }},
		{"future schema", mk(firstGoodPolicy(), opts), func(s Snapshot) Snapshot { s.Version = SnapshotVersion + 1; return s }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := *snap
			if tc.mutate != nil {
				s = tc.mutate(s)
			}
			if err := tc.target.Restore(&s); !errors.Is(err, ErrBadSnapshot) {
				t.Errorf("Restore err = %v, want ErrBadSnapshot", err)
			}
		})
	}

	t.Run("non-fresh engine", func(t *testing.T) {
		e, err := New(m, firstGoodPolicy(), parityPackets(m, 4, 2), opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
		if err := e.Restore(snap); !errors.Is(err, ErrBadSnapshot) {
			t.Errorf("Restore into stepped engine err = %v, want ErrBadSnapshot", err)
		}
	})
}

// statefulInjector injects one packet per step from an internal countdown —
// state the engine RNG does not cover, so checkpointing it requires the
// CheckpointableInjector interface.
type statefulInjector struct {
	remaining int
	dst       mesh.NodeID
}

func (si *statefulInjector) Inject(t int, e InjectorHost, rng *rand.Rand) []*Packet {
	if si.remaining <= 0 {
		return nil
	}
	node := mesh.NodeID(si.remaining % e.Mesh().Size())
	if node == si.dst || e.InjectionCapacity(node) == 0 {
		si.remaining--
		return nil
	}
	si.remaining--
	return []*Packet{NewPacket(e.NextPacketID(), node, si.dst)}
}
func (si *statefulInjector) Exhausted(t int) bool { return si.remaining <= 0 }
func (si *statefulInjector) SnapshotState() ([]byte, error) {
	return json.Marshal(si.remaining)
}
func (si *statefulInjector) RestoreState(data []byte) error {
	return json.Unmarshal(data, &si.remaining)
}

// TestSnapshotInjectorState: an injector with internal state round-trips
// through the snapshot and the resumed run matches the uninterrupted one.
func TestSnapshotInjectorState(t *testing.T) {
	m := mesh.MustNew(2, 5)
	opts := Options{Seed: 21, Validation: ValidateBasic, MaxSteps: 4000}
	dst := m.ID([]int{2, 2})

	runRef := func() (Result, []moveRec) {
		e, err := New(m, cloneableFirstGood{firstGoodPolicy()}, nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		e.SetInjector(&statefulInjector{remaining: 40, dst: dst})
		return runToEnd(t, e)
	}
	refRes, refLog := runRef()

	a, err := New(m, cloneableFirstGood{firstGoodPolicy()}, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	a.SetInjector(&statefulInjector{remaining: 40, dst: dst})
	for i := 0; i < 12; i++ {
		if err := a.Step(); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !snap.HasInjector || len(snap.InjectorState) == 0 {
		t.Fatalf("injector state not captured: %+v", snap)
	}

	b, err := New(m, cloneableFirstGood{firstGoodPolicy()}, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	b.SetInjector(&statefulInjector{remaining: 40, dst: dst}) // fresh; Restore rewinds it
	if err := b.Restore(snap); err != nil {
		t.Fatal(err)
	}
	bRes, bLog := runToEnd(t, b)
	if bRes != refRes {
		t.Errorf("resumed continuous run diverged:\nresumed %+v\nref     %+v", bRes, refRes)
	}
	tail := refLog[:0:0]
	for _, mv := range refLog {
		if mv.t >= snap.Time {
			tail = append(tail, mv)
		}
	}
	if !slices.Equal(bLog, tail) {
		t.Errorf("resumed move log diverged (%d vs %d moves)", len(bLog), len(tail))
	}
}

// swapForeverEngine builds a two-packet fixture that never terminates.
func swapForeverEngine(t *testing.T, opts Options) *Engine {
	t.Helper()
	m := mesh.MustNew(1, 4)
	pol := &testPolicy{
		name: "test-swap",
		det:  true,
		route: func(ns *NodeState, out []mesh.Dir, rng *rand.Rand) {
			for i, p := range ns.Packets {
				if p.Node == 1 {
					out[i] = mesh.DirPlus(0)
				} else {
					out[i] = mesh.DirMinus(0)
				}
			}
		},
	}
	e, err := New(m, pol, []*Packet{NewPacket(0, 1, 0), NewPacket(1, 2, 3)}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestRunContextCancel: cancelling the context stops the run after the step
// in flight, returns the partial summary with context.Canceled, and leaves
// the engine usable for Snapshot.
func TestRunContextCancel(t *testing.T) {
	e := swapForeverEngine(t, Options{MaxSteps: 1 << 30})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := e.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext err = %v, want context.Canceled", err)
	}
	if res == nil || res.DeadlineExceeded || res.HitMaxSteps || res.Livelocked {
		t.Fatalf("partial result misreported: %+v", res)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Errorf("cancellation took %v", took)
	}
	if _, err := e.Snapshot(); err != nil {
		t.Errorf("engine not snapshotable after cancel: %v", err)
	}
}

// TestRunContextDeadline: a ctx deadline behaves exactly like MaxWallTime —
// DeadlineExceeded set, nil error — so the two mechanisms agree.
func TestRunContextDeadline(t *testing.T) {
	e := swapForeverEngine(t, Options{MaxSteps: 1 << 30})
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	res, err := e.RunContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !res.DeadlineExceeded {
		t.Fatalf("ctx deadline did not set DeadlineExceeded: %+v", res)
	}
	if res.HitMaxSteps || res.Livelocked {
		t.Errorf("wrong termination cause: %+v", res)
	}
}

// TestRunCheckpointed: the save callback fires every N steps and once more
// on an early stop with unsaved progress.
func TestRunCheckpointed(t *testing.T) {
	e := swapForeverEngine(t, Options{MaxSteps: 100})
	var snaps []*Snapshot
	res, err := e.RunCheckpointed(context.Background(), 30, func(s *Snapshot) error {
		snaps = append(snaps, s)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.HitMaxSteps {
		t.Fatalf("expected step-budget exhaustion: %+v", res)
	}
	if len(snaps) != 3 {
		t.Fatalf("save called %d times over 100 steps with every=30, want 3", len(snaps))
	}
	for i, s := range snaps {
		if want := 30 * (i + 1); s.Time != want {
			t.Errorf("snapshot %d at step %d, want %d", i, s.Time, want)
		}
	}

	// Early cancellation with progress since the last periodic save → one
	// final save at the stop point.
	e2 := swapForeverEngine(t, Options{MaxSteps: 1 << 30})
	ctx, cancel := context.WithCancel(context.Background())
	var last *Snapshot
	count := 0
	_, err = e2.RunCheckpointed(ctx, 1000, func(s *Snapshot) error {
		last = s
		count++
		cancel() // first save (or the exit save) also triggers the stop
		return nil
	})
	// The run is cancelled by the save callback itself; either the periodic
	// save at step 1000 or — since cancel comes from within — the exit save.
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if last == nil || last.Time == 0 {
		t.Fatalf("no usable checkpoint captured on cancellation (count=%d)", count)
	}
}
