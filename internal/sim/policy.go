package sim

import (
	"math/rand"

	"hotpotato/internal/mesh"
)

// PacketInfo is the engine-precomputed routing information for one packet in
// a node: its good directions (Definition 5) and its restricted-type
// classification (Section 4.1).
type PacketInfo struct {
	goodBuf [2 * mesh.MaxDim]mesh.Dir
	// GoodCount is the number of good directions (1..d for live packets).
	GoodCount int
	// Restricted reports whether the packet has exactly one good direction.
	Restricted bool
	// TypeA reports whether the packet is a restricted packet of type A:
	// it is restricted now, was restricted at the beginning of the previous
	// step, and advanced in that step. Restricted packets that are not type
	// A are type B. Meaningless when Restricted is false.
	TypeA bool
}

// Good returns the packet's good directions, ordered by axis. The slice
// aliases engine-owned scratch memory valid only during the Route call.
// Policies may reorder it in place (e.g., to randomize arc preference) but
// must not change the set of directions it holds.
func (pi *PacketInfo) Good() []mesh.Dir { return pi.goodBuf[:pi.GoodCount] }

// NodeState is the local view a policy gets of one node in one step: exactly
// the information the paper's model allows a node to use (the packets that
// are currently in it, with their destinations, entry arcs and locally
// trackable history flags).
type NodeState struct {
	// Mesh is the network topology the node routes against. Without faults
	// this is the *mesh.Mesh itself; with a fault model installed it is the
	// failure overlay, whose connectivity methods (HasArc, Degree, GoodDirs)
	// reflect the surviving arcs while geometry (Dist, coordinates) stays
	// that of the intact mesh — a bufferless router knows its live ports but
	// has no global failure map.
	Mesh mesh.Topology
	// Node is the node being routed.
	Node mesh.NodeID
	// Time is the current step index.
	Time int
	// Packets are the packets to route this step. None of them is at its
	// destination. Policies must not mutate the packets.
	Packets []*Packet

	infos []PacketInfo
}

// Info returns the precomputed routing information for Packets[i].
func (ns *NodeState) Info(i int) *PacketInfo { return &ns.infos[i] }

// HasArc reports whether the node has an outgoing arc in direction dir.
func (ns *NodeState) HasArc(dir mesh.Dir) bool { return ns.Mesh.HasArc(ns.Node, dir) }

// Degree returns the node's out-degree.
func (ns *NodeState) Degree() int { return ns.Mesh.Degree(ns.Node) }

// Policy is a hot-potato routing algorithm: a single uniform local decision
// rule applied at every node in every step (Section 2). Route must assign a
// distinct existing outgoing arc direction to every packet by filling
// out[i] for each ns.Packets[i]; the hot-potato constraint means no packet
// may be left unassigned. The engine validates assignments according to its
// configured validation level.
//
// rng is a deterministic per-engine source that randomized policies may use
// for tie-breaking; deterministic policies must ignore it (and should report
// Deterministic() == true so that livelock detection is sound).
type Policy interface {
	// Name identifies the policy in results and tables.
	Name() string
	// Route assigns an outgoing direction to every packet of the node.
	Route(ns *NodeState, out []mesh.Dir, rng *rand.Rand)
	// Deterministic reports whether Route is a pure function of the node
	// state (it never consults rng). The engine's livelock detector only
	// fires for deterministic policies.
	Deterministic() bool
}
