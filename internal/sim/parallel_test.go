package sim

import (
	"math/rand"
	"testing"

	"hotpotato/internal/mesh"
)

// cloneableFirstGood wraps the deterministic test policy with Clone so the
// parallel path accepts it.
type cloneableFirstGood struct{ Policy }

func (c cloneableFirstGood) Clone() Policy { return cloneableFirstGood{firstGoodPolicy()} }

func parallelInstance(t *testing.T, m *mesh.Mesh, seed int64) []*Packet {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var packets []*Packet
	cnt := map[mesh.NodeID]int{}
	for i := 0; i < 80; i++ {
		src := mesh.NodeID(rng.Intn(m.Size()))
		if cnt[src] >= m.Degree(src) {
			continue
		}
		cnt[src]++
		packets = append(packets, NewPacket(i, src, mesh.NodeID(rng.Intn(m.Size()))))
	}
	return packets
}

// TestParallelWorkersIdenticalForDeterministicPolicy: a deterministic
// policy must produce bit-identical runs for every worker count.
func TestParallelWorkersIdenticalForDeterministicPolicy(t *testing.T) {
	m := mesh.MustNew(2, 10)
	type outcome struct {
		steps int
		defl  int64
		hops  int64
	}
	run := func(workers int) outcome {
		packets := parallelInstance(t, m, 11)
		e, err := New(m, cloneableFirstGood{firstGoodPolicy()}, packets, Options{
			Seed:       3,
			Validation: ValidateBasic,
			MaxSteps:   5000,
			Workers:    workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Delivered != res.Total {
			t.Fatalf("workers=%d: %d/%d delivered", workers, res.Delivered, res.Total)
		}
		return outcome{res.Steps, res.TotalDeflections, res.TotalHops}
	}
	base := run(0)
	for _, w := range []int{2, 3, 7} {
		if got := run(w); got != base {
			t.Errorf("workers=%d: %+v != serial %+v", w, got, base)
		}
	}
}

// TestParallelWorkerCountIndependence: with a RANDOMIZED policy, results
// depend only on the seed, not on the worker count (per-node RNG
// derivation), as long as workers > 1.
func TestParallelWorkerCountIndependence(t *testing.T) {
	m := mesh.MustNew(2, 10)
	run := func(workers int, seed int64) (int, int64) {
		packets := parallelInstance(t, m, 21)
		e, err := New(m, shuffledPolicy(), packets, Options{
			Seed:       seed,
			Validation: ValidateBasic,
			MaxSteps:   5000,
			Workers:    workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Delivered != res.Total {
			t.Fatalf("workers=%d: %d/%d delivered", workers, res.Delivered, res.Total)
		}
		return res.Steps, res.TotalDeflections
	}
	s2, d2 := run(2, 9)
	for _, w := range []int{3, 5, 8} {
		if s, d := run(w, 9); s != s2 || d != d2 {
			t.Errorf("workers=%d: (%d,%d) != workers=2 (%d,%d)", w, s, d, s2, d2)
		}
	}
	// Different seeds give different runs (sanity that the RNG matters).
	s9, d9 := run(2, 10)
	if s9 == s2 && d9 == d2 {
		t.Log("note: different seeds coincided; acceptable but unusual")
	}
}

// shuffledPolicy is a randomized clonable test policy: random assignment of
// packets to free arcs.
type shuffledTest struct{}

func (shuffledTest) Name() string        { return "test-shuffled" }
func (shuffledTest) Deterministic() bool { return false }
func (shuffledTest) Clone() Policy       { return shuffledTest{} }
func (shuffledTest) Route(ns *NodeState, out []mesh.Dir, rng *rand.Rand) {
	var free []mesh.Dir
	for dir := mesh.Dir(0); int(dir) < ns.Mesh.DirCount(); dir++ {
		if ns.HasArc(dir) {
			free = append(free, dir)
		}
	}
	rng.Shuffle(len(free), func(i, j int) { free[i], free[j] = free[j], free[i] })
	for i := range out {
		out[i] = free[i]
	}
}

func shuffledPolicy() Policy { return shuffledTest{} }

// TestParallelRequiresClonablePolicy: Workers > 1 with a non-clonable
// policy is rejected at construction.
func TestParallelRequiresClonablePolicy(t *testing.T) {
	m := mesh.MustNew(2, 6)
	_, err := New(m, firstGoodPolicy(), nil, Options{Workers: 4})
	if err == nil {
		t.Fatal("non-clonable policy accepted with Workers=4")
	}
}

// TestParallelValidationStillFires: a validation failure inside a worker
// surfaces as the step error.
func TestParallelValidationStillFires(t *testing.T) {
	m := mesh.MustNew(2, 6)
	packets := parallelInstance(t, m, 31)
	e, err := New(m, badParallelPolicy{}, packets, Options{
		Validation: ValidateBasic,
		Workers:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Step(); err == nil {
		t.Fatal("worker validation failure not surfaced")
	}
}

type badParallelPolicy struct{}

func (badParallelPolicy) Name() string        { return "test-bad-parallel" }
func (badParallelPolicy) Deterministic() bool { return true }
func (badParallelPolicy) Clone() Policy       { return badParallelPolicy{} }
func (badParallelPolicy) Route(ns *NodeState, out []mesh.Dir, rng *rand.Rand) {
	// Leaves packets unassigned: ValidateBasic must reject.
}
