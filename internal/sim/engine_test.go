package sim

import (
	"errors"
	"math/rand"
	"testing"

	"hotpotato/internal/mesh"
)

// testPolicy is a configurable policy for engine tests.
type testPolicy struct {
	name  string
	det   bool
	route func(ns *NodeState, out []mesh.Dir, rng *rand.Rand)
}

func (p *testPolicy) Name() string        { return p.name }
func (p *testPolicy) Deterministic() bool { return p.det }
func (p *testPolicy) Route(ns *NodeState, out []mesh.Dir, rng *rand.Rand) {
	p.route(ns, out, rng)
}

// firstGoodPolicy advances each packet along its first good direction if
// that arc is free, otherwise assigns any free arc. It is greedy only by
// accident, so tests use ValidateBasic with it.
func firstGoodPolicy() Policy {
	return &testPolicy{
		name: "test-first-good",
		det:  true,
		route: func(ns *NodeState, out []mesh.Dir, rng *rand.Rand) {
			taken := make(map[mesh.Dir]bool)
			for i := range ns.Packets {
				for _, g := range ns.Info(i).Good() {
					if !taken[g] {
						out[i] = g
						taken[g] = true
						break
					}
				}
			}
			for i := range ns.Packets {
				if out[i] != mesh.NoDir {
					continue
				}
				for dir := mesh.Dir(0); int(dir) < ns.Mesh.DirCount(); dir++ {
					if !taken[dir] && ns.HasArc(dir) {
						out[i] = dir
						taken[dir] = true
						break
					}
				}
			}
		},
	}
}

func TestSinglePacketWalksShortestPath(t *testing.T) {
	m := mesh.MustNew(2, 8)
	src := m.ID([]int{1, 2})
	dst := m.ID([]int{6, 7})
	p := NewPacket(0, src, dst)
	e, err := New(m, firstGoodPolicy(), []*Packet{p}, Options{Validation: ValidateBasic})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := m.Dist(src, dst)
	if res.Steps != want {
		t.Errorf("Steps = %d, want %d", res.Steps, want)
	}
	if res.Delivered != 1 || res.TotalDeflections != 0 {
		t.Errorf("Delivered=%d Deflections=%d, want 1, 0", res.Delivered, res.TotalDeflections)
	}
	if !p.Arrived() || p.ArrivedAt != want || p.Hops != want {
		t.Errorf("packet state %+v, want arrival at %d", p, want)
	}
	if p.Delay() != want {
		t.Errorf("Delay() = %d, want %d", p.Delay(), want)
	}
}

func TestPacketAtDestinationAbsorbedImmediately(t *testing.T) {
	m := mesh.MustNew(2, 4)
	p := NewPacket(0, 5, 5)
	e, err := New(m, firstGoodPolicy(), []*Packet{p}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Arrived() || p.ArrivedAt != 0 {
		t.Errorf("packet not absorbed at t=0: %+v", p)
	}
	if !e.Done() {
		t.Error("engine not done with all packets at destinations")
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 0 || res.Delivered != 1 {
		t.Errorf("result %+v, want Steps=0 Delivered=1", res)
	}
}

func TestInjectionValidation(t *testing.T) {
	m := mesh.MustNew(2, 4)
	mk := func(ps ...*Packet) error {
		_, err := New(m, firstGoodPolicy(), ps, Options{})
		return err
	}
	corner := m.ID([]int{0, 0})

	tests := []struct {
		name string
		err  error
	}{
		{"nil packet", mk(nil)},
		{"bad source", mk(&Packet{ID: 0, Src: -1, Dst: 1, Node: -1, ArrivedAt: -1})},
		{"bad destination", mk(&Packet{ID: 0, Src: 1, Dst: 99, Node: 1, ArrivedAt: -1})},
		{"not at source", mk(&Packet{ID: 0, Src: 1, Dst: 2, Node: 3, ArrivedAt: -1})},
		{"duplicate id", mk(NewPacket(7, 0, 5), NewPacket(7, 1, 5))},
		{"over capacity", mk(NewPacket(0, corner, 5), NewPacket(1, corner, 6), NewPacket(2, corner, 7))},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if !errors.Is(tt.err, ErrBadInjection) {
				t.Errorf("error = %v, want ErrBadInjection", tt.err)
			}
		})
	}
	if err := mk(NewPacket(0, corner, 5), NewPacket(1, corner, 6)); err != nil {
		t.Errorf("corner with 2 packets (its out-degree) rejected: %v", err)
	}
	if _, err := New(nil, firstGoodPolicy(), nil, Options{}); !errors.Is(err, ErrBadInjection) {
		t.Errorf("nil mesh error = %v", err)
	}
	if _, err := New(m, nil, nil, Options{}); !errors.Is(err, ErrBadInjection) {
		t.Errorf("nil policy error = %v", err)
	}
}

// badPolicy builds policies that emit a specific illegal assignment.
func badPolicy(route func(ns *NodeState, out []mesh.Dir, rng *rand.Rand)) Policy {
	return &testPolicy{name: "test-bad", det: true, route: route}
}

func TestValidationCatchesIllegalAssignments(t *testing.T) {
	m := mesh.MustNew(2, 4)

	t.Run("unassigned packet", func(t *testing.T) {
		p := NewPacket(0, m.ID([]int{1, 1}), m.ID([]int{3, 3}))
		pol := badPolicy(func(ns *NodeState, out []mesh.Dir, rng *rand.Rand) {})
		e, err := New(m, pol, []*Packet{p}, Options{Validation: ValidateBasic})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Step(); !errors.Is(err, ErrUnassigned) {
			t.Errorf("Step() = %v, want ErrUnassigned", err)
		}
	})

	t.Run("off mesh", func(t *testing.T) {
		p := NewPacket(0, m.ID([]int{0, 0}), m.ID([]int{3, 3}))
		pol := badPolicy(func(ns *NodeState, out []mesh.Dir, rng *rand.Rand) {
			out[0] = mesh.DirMinus(0)
		})
		e, err := New(m, pol, []*Packet{p}, Options{Validation: ValidateBasic})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Step(); !errors.Is(err, ErrOffMesh) {
			t.Errorf("Step() = %v, want ErrOffMesh", err)
		}
	})

	t.Run("off mesh uncaught by validation still fails", func(t *testing.T) {
		p := NewPacket(0, m.ID([]int{0, 0}), m.ID([]int{3, 3}))
		pol := badPolicy(func(ns *NodeState, out []mesh.Dir, rng *rand.Rand) {
			out[0] = mesh.DirMinus(0)
		})
		e, err := New(m, pol, []*Packet{p}, Options{Validation: ValidateOff})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Step(); !errors.Is(err, ErrOffMesh) {
			t.Errorf("Step() = %v, want ErrOffMesh even unvalidated", err)
		}
	})

	t.Run("link conflict", func(t *testing.T) {
		src := m.ID([]int{1, 1})
		p0 := NewPacket(0, src, m.ID([]int{3, 1}))
		p1 := NewPacket(1, src, m.ID([]int{3, 2}))
		pol := badPolicy(func(ns *NodeState, out []mesh.Dir, rng *rand.Rand) {
			for i := range out {
				out[i] = mesh.DirPlus(0)
			}
		})
		e, err := New(m, pol, []*Packet{p0, p1}, Options{Validation: ValidateBasic})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Step(); !errors.Is(err, ErrLinkConflict) {
			t.Errorf("Step() = %v, want ErrLinkConflict", err)
		}
	})

	t.Run("non greedy", func(t *testing.T) {
		// A single packet deflected while its good arcs are free.
		p := NewPacket(0, m.ID([]int{1, 1}), m.ID([]int{3, 1}))
		pol := badPolicy(func(ns *NodeState, out []mesh.Dir, rng *rand.Rand) {
			out[0] = mesh.DirMinus(0) // away from destination
		})
		e, err := New(m, pol, []*Packet{p}, Options{Validation: ValidateGreedy})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Step(); !errors.Is(err, ErrNotGreedy) {
			t.Errorf("Step() = %v, want ErrNotGreedy", err)
		}
	})

	t.Run("greedy deflection passes greedy validation", func(t *testing.T) {
		// Two packets, one good arc each, same arc: one must be deflected,
		// and that is legal.
		src := m.ID([]int{1, 1})
		dst := m.ID([]int{3, 1})
		p0 := NewPacket(0, src, dst)
		p1 := NewPacket(1, src, dst)
		pol := badPolicy(func(ns *NodeState, out []mesh.Dir, rng *rand.Rand) {
			out[0] = mesh.DirPlus(0)
			out[1] = mesh.DirMinus(0)
		})
		e, err := New(m, pol, []*Packet{p0, p1}, Options{Validation: ValidateGreedy})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Step(); err != nil {
			t.Errorf("Step() = %v, want nil", err)
		}
	})

	t.Run("restricted deflected by non-restricted", func(t *testing.T) {
		// p0 is restricted (one good dir +x0); p1 has two good dirs and
		// takes p0's arc while p0 is deflected: Definition 18 violation.
		src := m.ID([]int{1, 1})
		p0 := NewPacket(0, src, m.ID([]int{3, 1}))
		p1 := NewPacket(1, src, m.ID([]int{3, 3}))
		pol := badPolicy(func(ns *NodeState, out []mesh.Dir, rng *rand.Rand) {
			out[0] = mesh.DirMinus(0)
			out[1] = mesh.DirPlus(0)
		})
		e, err := New(m, pol, []*Packet{p0, p1}, Options{Validation: ValidateRestricted})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Step(); !errors.Is(err, ErrNotRestrictedPreferring) {
			t.Errorf("Step() = %v, want ErrNotRestrictedPreferring", err)
		}
		// The same assignment passes at ValidateGreedy level.
		p0, p1 = NewPacket(0, src, m.ID([]int{3, 1})), NewPacket(1, src, m.ID([]int{3, 3}))
		e, err = New(m, pol, []*Packet{p0, p1}, Options{Validation: ValidateGreedy})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Step(); err != nil {
			t.Errorf("Step() at ValidateGreedy = %v, want nil", err)
		}
	})
}

// TestConservation runs a busy random instance and checks that no packet is
// ever lost or duplicated and per-arc capacity holds.
func TestConservation(t *testing.T) {
	m := mesh.MustNew(2, 6)
	rng := rand.New(rand.NewSource(42))
	var packets []*Packet
	for i := 0; i < 40; i++ {
		src := mesh.NodeID(rng.Intn(m.Size()))
		dst := mesh.NodeID(rng.Intn(m.Size()))
		packets = append(packets, NewPacket(i, src, dst))
	}
	// Deduplicate over-capacity origins.
	cnt := map[mesh.NodeID]int{}
	ok := packets[:0]
	for _, p := range packets {
		if cnt[p.Src] < m.Degree(p.Src) {
			cnt[p.Src]++
			ok = append(ok, p)
		}
	}
	packets = ok

	e, err := New(m, firstGoodPolicy(), packets, Options{Validation: ValidateBasic, MaxSteps: 500})
	if err != nil {
		t.Fatal(err)
	}
	seenArcs := make(map[[2]int32]bool)
	e.AddObserver(ObserverFunc(func(rec *StepRecord) {
		clear(seenArcs)
		live := 0
		for _, mv := range rec.Moves {
			key := [2]int32{int32(mv.From), int32(mv.Dir)}
			if seenArcs[key] {
				t.Errorf("step %d: arc (%d, %v) used twice", rec.Time, mv.From, mv.Dir)
			}
			seenArcs[key] = true
			live++
			if got, want := mv.Advanced, e.Mesh().Dist(mv.To, mv.Packet.Dst) < e.Mesh().Dist(mv.From, mv.Packet.Dst); got != want {
				t.Errorf("step %d: Advanced=%v inconsistent with distances", rec.Time, got)
			}
		}
		// Every live packet moves every step (hot-potato constraint).
		want := 0
		for _, p := range e.Packets() {
			if !p.Arrived() || p.ArrivedAt > rec.Time {
				want++
			}
		}
		if live != want {
			t.Errorf("step %d: %d moves for %d live packets", rec.Time, live, want)
		}
	}))
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered+e.Live() != res.Total {
		t.Errorf("conservation: delivered %d + live %d != total %d", res.Delivered, e.Live(), res.Total)
	}
	for _, p := range packets {
		if p.Arrived() && p.Node != p.Dst {
			t.Errorf("packet %d marked arrived away from destination", p.ID)
		}
	}
}

// TestLivelockDetection: two packets that want each other's current node
// under a deterministic "always swap" policy bounce forever; the detector
// must fire.
func TestLivelockDetection(t *testing.T) {
	m := mesh.MustNew(1, 4)
	// In a path of 4 nodes, packets at nodes 1 and 2 destined to nodes 0
	// and 3 respectively, but the policy sends each one the wrong way
	// whenever both are present... Instead craft a genuinely looping pair:
	// both packets always deflected in a fixed 2-cycle by a malicious
	// (non-greedy) policy that swaps them between nodes 1 and 2.
	p0 := NewPacket(0, 1, 0)
	p1 := NewPacket(1, 2, 3)
	pol := &testPolicy{
		name: "test-swap",
		det:  true,
		route: func(ns *NodeState, out []mesh.Dir, rng *rand.Rand) {
			for i, p := range ns.Packets {
				if p.Node == 1 {
					out[i] = mesh.DirPlus(0)
				} else {
					out[i] = mesh.DirMinus(0)
				}
			}
		},
	}
	e, err := New(m, pol, []*Packet{p0, p1}, Options{
		Validation:     ValidateBasic,
		DetectLivelock: true,
		MaxSteps:       10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Livelocked {
		t.Fatalf("livelock not detected: %+v", res)
	}
	if res.Delivered != 0 || res.HitMaxSteps {
		t.Errorf("unexpected result %+v", res)
	}
	if e.Time() > 100 {
		t.Errorf("livelock detected only after %d steps", e.Time())
	}
}

// TestLivelockDetectionIgnoredForRandomizedPolicies: the detector must not
// fire for a policy that reports Deterministic() == false, even if states
// repeat.
func TestLivelockDetectionIgnoredForRandomizedPolicies(t *testing.T) {
	m := mesh.MustNew(1, 4)
	p0 := NewPacket(0, 1, 0)
	p1 := NewPacket(1, 2, 3)
	pol := &testPolicy{
		name: "test-swap-nondet",
		det:  false,
		route: func(ns *NodeState, out []mesh.Dir, rng *rand.Rand) {
			for i, p := range ns.Packets {
				if p.Node == 1 {
					out[i] = mesh.DirPlus(0)
				} else {
					out[i] = mesh.DirMinus(0)
				}
			}
		},
	}
	e, err := New(m, pol, []*Packet{p0, p1}, Options{
		Validation:     ValidateBasic,
		DetectLivelock: true,
		MaxSteps:       200,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Livelocked {
		t.Error("livelock reported for a randomized policy")
	}
	if !res.HitMaxSteps {
		t.Error("expected HitMaxSteps")
	}
}

func TestDeterministicReproducibility(t *testing.T) {
	m := mesh.MustNew(2, 8)
	run := func() (int, int64) {
		rng := rand.New(rand.NewSource(7))
		var packets []*Packet
		cnt := map[mesh.NodeID]int{}
		for i := 0; i < 50; i++ {
			src := mesh.NodeID(rng.Intn(m.Size()))
			if cnt[src] >= m.Degree(src) {
				continue
			}
			cnt[src]++
			packets = append(packets, NewPacket(i, src, mesh.NodeID(rng.Intn(m.Size()))))
		}
		e, err := New(m, firstGoodPolicy(), packets, Options{Seed: 99, Validation: ValidateBasic, MaxSteps: 1000})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Steps, res.TotalDeflections
	}
	s1, d1 := run()
	s2, d2 := run()
	if s1 != s2 || d1 != d2 {
		t.Errorf("non-reproducible runs: (%d,%d) vs (%d,%d)", s1, d1, s2, d2)
	}
}

func TestPacketString(t *testing.T) {
	p := NewPacket(3, 1, 2)
	if got := p.String(); got != "packet 3 (1->2, at 1)" {
		t.Errorf("String() = %q", got)
	}
	p.ArrivedAt = 5
	if got := p.String(); got != "packet 3 (1->2, arrived t=5)" {
		t.Errorf("String() = %q", got)
	}
	if p.Delay() != 5 {
		t.Errorf("Delay() = %d", p.Delay())
	}
}

func TestMaxStepsDefault(t *testing.T) {
	m := mesh.MustNew(2, 4)
	e, err := New(m, firstGoodPolicy(), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e.opts.MaxSteps != DefaultMaxSteps {
		t.Errorf("MaxSteps default = %d", e.opts.MaxSteps)
	}
}

func TestEngineAccessors(t *testing.T) {
	m := mesh.MustNew(2, 4)
	pol := firstGoodPolicy()
	p := NewPacket(0, 1, 14)
	e, err := New(m, pol, []*Packet{p}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Mesh() != m || e.Policy() != pol {
		t.Error("accessors returned wrong objects")
	}
	if len(e.Packets()) != 1 || e.Live() != 1 || e.Done() || e.Livelocked() {
		t.Error("initial engine state wrong")
	}
	if got := e.PacketsAt(1); len(got) != 1 || got[0] != p {
		t.Errorf("PacketsAt(1) = %v", got)
	}
	if got := e.PacketsAt(2); len(got) != 0 {
		t.Errorf("PacketsAt(2) = %v", got)
	}
}
