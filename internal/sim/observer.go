package sim

import "hotpotato/internal/mesh"

// Move records the routing of one packet during one step.
type Move struct {
	// Packet is the moved packet (its fields reflect the post-move state by
	// the time observers run).
	Packet *Packet
	// From is the node the packet was routed out of.
	From mesh.NodeID
	// To is the node the packet entered.
	To mesh.NodeID
	// Dir is the arc direction taken.
	Dir mesh.Dir
	// Advanced reports whether the move decreased the packet's distance to
	// its destination; !Advanced means the packet was deflected.
	Advanced bool
	// GoodCount is the number of good directions the packet had at From.
	GoodCount int
	// WasRestricted reports GoodCount == 1.
	WasRestricted bool
	// WasTypeA reports whether the packet was a restricted type-A packet at
	// From (see PacketInfo.TypeA).
	WasTypeA bool
	// ArrivedNow reports whether the packet reached its destination with
	// this move.
	ArrivedNow bool
}

// StepRecord describes one complete synchronous step: the movement of every
// live packet from the configuration at Time to the configuration at
// Time+1. Moves are grouped by source node: all moves out of one node are
// contiguous.
type StepRecord struct {
	// Time is the index t of the step; moves transform the configuration at
	// the beginning of step t into the one at the beginning of step t+1.
	Time int
	// Moves lists every packet movement of the step, grouped by From.
	Moves []Move
}

// Observer receives a record after every engine step. The record and its
// moves are only valid during the call; observers that need them later must
// copy. Observers run in registration order.
type Observer interface {
	OnStep(rec *StepRecord)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(rec *StepRecord)

// OnStep implements Observer.
func (f ObserverFunc) OnStep(rec *StepRecord) { f(rec) }
