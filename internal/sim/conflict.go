package sim

import "hotpotato/internal/mesh"

// ConflictPacket is one contender's view of a routing conflict: the features
// the priority rule could have used (age, distance, restriction status,
// deflection history) plus the outcome the engine actually issued.
type ConflictPacket struct {
	// ID is the packet's engine-assigned identity.
	ID int `json:"id"`
	// Dst is the packet's destination node.
	Dst mesh.NodeID `json:"dst"`
	// QueuePos is the packet's position in the node's queue at routing time —
	// the order the policy saw the contenders in. The policy's internal rank
	// values are not engine-visible (rank functions are closures), so traces
	// record the decision features and the induced outcome instead.
	QueuePos int `json:"pos"`
	// Age is the packet's age in steps at decision time (Time - InjectedAt).
	Age int `json:"age"`
	// Dist is the packet's distance to its destination before the move.
	Dist int `json:"dist"`
	// GoodCount is the number of good (distance-decreasing) directions the
	// packet had at the node.
	GoodCount int `json:"good"`
	// Restricted reports GoodCount == 1 (Definition 18).
	Restricted bool `json:"restricted,omitempty"`
	// TypeA reports whether the packet was a restricted type-A packet.
	TypeA bool `json:"type_a,omitempty"`
	// Deflections is the packet's deflection count before this conflict.
	Deflections int `json:"defl"`
	// Class is the packet's priority class (used by the class policy).
	Class int `json:"class,omitempty"`
	// Dir is the arc the engine issued to the packet.
	Dir mesh.Dir `json:"dir"`
	// Advanced reports whether the issued arc decreased the packet's
	// distance; the winners of the conflict advanced, the losers deflected.
	Advanced bool `json:"advanced"`
	// ArrivedNow reports whether the issued arc delivered the packet.
	ArrivedNow bool `json:"arrived,omitempty"`
}

// ConflictRecord describes one routing conflict: a node whose queue held two
// or more packets and whose routing deflected at least one of them. The
// record and its Contenders slice are engine-owned scratch, valid only
// during the OnConflict call; observers that keep records must copy.
type ConflictRecord struct {
	// Time is the step index t of the conflict (the configuration at t was
	// routed into the configuration at t+1).
	Time int `json:"t"`
	// Node is the node the conflict happened at.
	Node mesh.NodeID `json:"node"`
	// Winners counts the contenders that advanced.
	Winners int `json:"winners"`
	// Deflected counts the contenders that were deflected (≥ 1 by
	// construction).
	Deflected int `json:"deflected"`
	// DistBefore and DistAfter are the node's contribution to the global
	// distance potential (sum over contenders of distance-to-destination)
	// before and after the move — the per-conflict slice of the potential
	// trajectory the paper's Property 8 argues about.
	DistBefore int `json:"dist_before"`
	DistAfter  int `json:"dist_after"`
	// Contenders lists every packet routed out of the node this step, in
	// queue order.
	Contenders []ConflictPacket `json:"packets"`
}

// ConflictObserver receives a record for every routing conflict: every node
// whose queue held ≥ 2 packets and whose routing deflected ≥ 1 of them.
// Nodes that route all their packets forward are not conflicts — nothing was
// contended — and produce no record. The hook is opt-in and free when unset:
// with a nil observer the engine's hot path pays one predicted branch per
// step and allocates nothing (bench-gated, see BenchmarkConflictTraceOverhead).
type ConflictObserver interface {
	OnConflict(rec *ConflictRecord)
}

// ConflictObserverFunc adapts a function to the ConflictObserver interface.
type ConflictObserverFunc func(rec *ConflictRecord)

// OnConflict implements ConflictObserver.
func (f ConflictObserverFunc) OnConflict(rec *ConflictRecord) { f(rec) }

// SetConflictObserver installs (or, with nil, removes) the engine's conflict
// observer. Unlike AddObserver there is exactly one slot: conflict tracing
// is a diagnostic tap, and a single fan-out observer can multiplex.
func (e *Engine) SetConflictObserver(o ConflictObserver) { e.conflictObs = o }

// emitConflicts walks the step's move buffer — grouped contiguously by
// source node, in sorted node order — and emits one ConflictRecord per node
// group with ≥ 2 contenders and ≥ 1 deflection. Called after move
// application, so Packet fields reflect post-move state; the pre-move
// features recorded here are reconstructed from the Move (GoodCount,
// WasRestricted, Advanced) and the packet's immutable fields.
func (e *Engine) emitConflicts(t int) {
	moves := e.moves
	for i := 0; i < len(moves); {
		j := i + 1
		for j < len(moves) && moves[j].From == moves[i].From {
			j++
		}
		if j-i >= 2 {
			deflected := 0
			for k := i; k < j; k++ {
				if !moves[k].Advanced {
					deflected++
				}
			}
			if deflected > 0 {
				e.fillConflict(t, moves[i:j], deflected)
				e.conflictObs.OnConflict(&e.confRec)
			}
		}
		i = j
	}
}

// fillConflict populates the engine-owned scratch record from one node's
// move group. The Contenders backing array is reused across conflicts, so
// steady-state tracing allocates nothing in the engine itself.
func (e *Engine) fillConflict(t int, group []Move, deflected int) {
	rec := &e.confRec
	if cap(rec.Contenders) < len(group) {
		rec.Contenders = make([]ConflictPacket, len(group))
	}
	rec.Contenders = rec.Contenders[:len(group)]
	rec.Time = t
	rec.Node = group[0].From
	rec.Winners = len(group) - deflected
	rec.Deflected = deflected
	rec.DistBefore = 0
	rec.DistAfter = 0
	for k := range group {
		mv := &group[k]
		p := mv.Packet
		before := e.mesh.Dist(mv.From, p.Dst)
		after := e.mesh.Dist(mv.To, p.Dst)
		defl := p.Deflections
		if !mv.Advanced {
			defl-- // p.Deflections already includes this step's deflection
		}
		rec.Contenders[k] = ConflictPacket{
			ID:          p.ID,
			Dst:         p.Dst,
			QueuePos:    k,
			Age:         t - p.InjectedAt,
			Dist:        before,
			GoodCount:   mv.GoodCount,
			Restricted:  mv.WasRestricted,
			TypeA:       mv.WasTypeA,
			Deflections: defl,
			Class:       p.Class,
			Dir:         mv.Dir,
			Advanced:    mv.Advanced,
			ArrivedNow:  mv.ArrivedNow,
		}
		rec.DistBefore += before
		rec.DistAfter += after
	}
}
