package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// workerPool is the persistent goroutine pool behind routeParallel. The
// goroutines are created once in New and live for the engine's lifetime;
// each step they claim contiguous chunks of the sorted active list from a
// shared atomic cursor, so a heavy node delays only the chunks behind it on
// one worker instead of serializing a static partition. Results are written
// into per-node segments of the engine's move buffer (precomputed prefix
// offsets), which makes the output independent of which worker routed which
// node.
//
// The pool deliberately holds no reference to the engine between steps: the
// engine is passed through the jobs channel per step and dropped when the
// step's work is done, so an abandoned engine can be collected and its
// finalizer can close the pool.
type workerPool struct {
	jobs      chan *Engine
	wg        sync.WaitGroup
	cursor    atomic.Int64
	stepT     int
	chunk     int
	errs      []error
	closeOnce sync.Once
}

func newWorkerPool(scratches []*routeScratch) *workerPool {
	pl := &workerPool{
		jobs: make(chan *Engine, len(scratches)),
		errs: make([]error, len(scratches)),
	}
	for w := range scratches {
		go pl.worker(w, scratches[w])
	}
	return pl
}

func (pl *workerPool) worker(w int, sc *routeScratch) {
	for e := range pl.jobs {
		pl.runWorker(e, w, sc)
		pl.wg.Done()
	}
}

// runWorker drains chunks of the active list for one step. It exists as a
// separate function so its deferred recover arms per step: a panicking
// worker must not kill the process (or deadlock the pool) while the others
// run.
func (pl *workerPool) runWorker(e *Engine, w int, sc *routeScratch) {
	defer func() {
		if r := recover(); r != nil {
			pl.errs[w] = fmt.Errorf("sim: worker %d panicked at step %d: %v", w, pl.stepT, r)
		}
	}()
	n := int64(len(e.active))
	t := pl.stepT
	for {
		lo := pl.cursor.Add(int64(pl.chunk)) - int64(pl.chunk)
		if lo >= n {
			return
		}
		hi := min(lo+int64(pl.chunk), n)
		for i := lo; i < hi; i++ {
			node := e.active[i]
			sc.src.Seed(NodeSeed(e.opts.Seed, t, node))
			dst := e.moves[e.moveOff[i]:e.moveOff[i+1]]
			if err := e.routeNode(sc, node, t, sc.rnd, dst); err != nil {
				pl.errs[w] = err
				return
			}
		}
	}
}

// route runs one step's routing across the pool and returns the first error
// (in worker order) if any worker failed.
func (pl *workerPool) route(e *Engine, t int) error {
	nw := cap(pl.jobs)
	pl.stepT = t
	// Chunks several times smaller than a static share keep workers busy
	// when node costs are skewed, without contending on the cursor per node.
	pl.chunk = max(1, len(e.active)/(nw*4))
	pl.cursor.Store(0)
	for i := range pl.errs {
		pl.errs[i] = nil
	}
	pl.wg.Add(nw)
	for i := 0; i < nw; i++ {
		pl.jobs <- e
	}
	pl.wg.Wait()
	for _, err := range pl.errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// close shuts the pool's goroutines down. Idempotent.
func (pl *workerPool) close() {
	pl.closeOnce.Do(func() { close(pl.jobs) })
}
