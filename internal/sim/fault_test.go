package sim

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"hotpotato/internal/fault"
	"hotpotato/internal/mesh"
)

// randGreedyTest is a randomized greedy test policy: packets take free good
// arcs in random priority order, the rest deflect onto random leftover
// arcs. Single-pass first-fit is Definition-6 greedy (an arc left free at
// the end was free when every deflected packet scanned its good arcs), and
// randomization keeps it livelock-free in practice.
type randGreedyTest struct{}

func (randGreedyTest) Name() string        { return "test-rand-greedy" }
func (randGreedyTest) Deterministic() bool { return false }
func (randGreedyTest) Clone() Policy       { return randGreedyTest{} }
func (randGreedyTest) Route(ns *NodeState, out []mesh.Dir, rng *rand.Rand) {
	taken := make(map[mesh.Dir]bool)
	for _, i := range rng.Perm(len(ns.Packets)) {
		g := ns.Info(i).Good()
		rng.Shuffle(len(g), func(x, y int) { g[x], g[y] = g[y], g[x] })
		for _, d := range g {
			if !taken[d] {
				taken[d] = true
				out[i] = d
				break
			}
		}
	}
	var free []mesh.Dir
	for d := mesh.Dir(0); int(d) < ns.Mesh.DirCount(); d++ {
		if !taken[d] && ns.HasArc(d) {
			free = append(free, d)
		}
	}
	rng.Shuffle(len(free), func(x, y int) { free[x], free[y] = free[y], free[x] })
	next := 0
	for i := range out {
		if out[i] == mesh.NoDir {
			out[i] = free[next]
			next++
		}
	}
}

// faultInstance builds a batch with at most one packet per source node, so
// any failure set that keeps every node's degree >= 1 leaves spare
// capacity at t=0.
func faultInstance(m *mesh.Mesh, n int, seed int64) []*Packet {
	r := rand.New(rand.NewSource(seed))
	used := make(map[mesh.NodeID]bool)
	var ps []*Packet
	for len(ps) < n {
		src := mesh.NodeID(r.Intn(m.Size()))
		if used[src] {
			continue
		}
		used[src] = true
		dst := mesh.NodeID(r.Intn(m.Size()))
		for dst == src {
			dst = mesh.NodeID(r.Intn(m.Size()))
		}
		ps = append(ps, NewPacket(len(ps), src, dst))
	}
	return ps
}

// TestFaultLinkCutsSpareCapacityDelivers: interior link cuts that leave
// every node a surviving arc and at most one packet per source must not
// cost a single packet — greedy routing reroutes around the holes.
func TestFaultLinkCutsSpareCapacityDelivers(t *testing.T) {
	m := mesh.MustNew(2, 8)
	sched := fault.NewSchedule(
		fault.Event{Time: 0, Kind: fault.LinkDown, Node: m.ID([]int{2, 2}), Dir: mesh.DirPlus(0)},
		fault.Event{Time: 0, Kind: fault.LinkDown, Node: m.ID([]int{3, 3}), Dir: mesh.DirPlus(1)},
		fault.Event{Time: 0, Kind: fault.LinkDown, Node: m.ID([]int{4, 4}), Dir: mesh.DirPlus(0)},
		fault.Event{Time: 30, Kind: fault.LinkUp, Node: m.ID([]int{2, 2}), Dir: mesh.DirPlus(0)},
	)
	e, err := New(m, randGreedyTest{}, faultInstance(m, 40, 5), Options{
		Seed:       9,
		Validation: ValidateGreedy,
		MaxSteps:   20000,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.SetFaults(sched, FateDrop)
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != res.Total || res.Dropped != 0 || res.Absorbed != 0 {
		t.Fatalf("delivered %d/%d, dropped %d, absorbed %d — want full delivery",
			res.Delivered, res.Total, res.Dropped, res.Absorbed)
	}
	if res.HitMaxSteps || res.Livelocked {
		t.Fatalf("run did not finish cleanly: %+v", res)
	}
	if res.LinkFailures != 3 || res.NodeFailures != 0 {
		t.Errorf("LinkFailures=%d NodeFailures=%d, want 3, 0", res.LinkFailures, res.NodeFailures)
	}
}

// TestFaultCrashFate: packets caught in a crashing node follow the
// configured fate; packets destined to it are dropped as unreachable.
func TestFaultCrashFate(t *testing.T) {
	m := mesh.MustNew(2, 4)
	x := m.ID([]int{1, 1})
	mk := func() []*Packet {
		return []*Packet{
			NewPacket(0, x, m.ID([]int{3, 3})),
			NewPacket(1, x, m.ID([]int{0, 3})),
			NewPacket(2, m.ID([]int{3, 3}), x),
			NewPacket(3, m.ID([]int{0, 0}), m.ID([]int{0, 3})),
		}
	}
	for _, tc := range []struct {
		fate                     PacketFate
		crash, absorbed, dropped int
	}{
		{FateDrop, 2, 0, 3},
		{FateAbsorb, 0, 2, 1},
	} {
		e, err := New(m, randGreedyTest{}, mk(), Options{Seed: 1, Validation: ValidateBasic, MaxSteps: 1000})
		if err != nil {
			t.Fatal(err)
		}
		e.SetFaults(fault.NewSchedule(fault.Event{Time: 0, Kind: fault.NodeDown, Node: x}), tc.fate)
		res, err := e.Run()
		if err != nil {
			t.Fatalf("fate=%v: %v", tc.fate, err)
		}
		if res.DroppedCrash != tc.crash || res.Absorbed != tc.absorbed || res.Dropped != tc.dropped {
			t.Errorf("fate=%v: crash=%d absorbed=%d dropped=%d, want %d, %d, %d",
				tc.fate, res.DroppedCrash, res.Absorbed, res.Dropped, tc.crash, tc.absorbed, tc.dropped)
		}
		if res.DroppedUnreachable != 1 {
			t.Errorf("fate=%v: DroppedUnreachable=%d, want 1", tc.fate, res.DroppedUnreachable)
		}
		if res.Delivered != 1 {
			t.Errorf("fate=%v: Delivered=%d, want 1 (packet 3 only)", tc.fate, res.Delivered)
		}
		if res.Delivered+res.Dropped+res.Absorbed != res.Total {
			t.Errorf("fate=%v: accounting broken: %+v", tc.fate, res)
		}
		pkts := e.Packets()
		if !pkts[0].Dropped() || pkts[0].Cause != DropCrash || pkts[0].DroppedAt != 0 {
			t.Errorf("fate=%v: packet 0 state %+v, want crash drop at t=0", tc.fate, pkts[0])
		}
		if pkts[2].Cause != DropUnreachable {
			t.Errorf("fate=%v: packet 2 cause %v, want unreachable", tc.fate, pkts[2].Cause)
		}
	}
}

// TestFaultStrandedSheds: a node whose surviving out-degree falls below its
// load sheds the excess deterministically instead of violating the
// hot-potato constraint (or panicking in the assigner).
func TestFaultStrandedSheds(t *testing.T) {
	m := mesh.MustNew(2, 4)
	c := m.ID([]int{1, 1}) // interior: degree 4
	corners := [][]int{{0, 0}, {3, 0}, {0, 3}, {3, 3}}
	var ps []*Packet
	for i, co := range corners {
		ps = append(ps, NewPacket(i, c, m.ID(co)))
	}
	e, err := New(m, randGreedyTest{}, ps, Options{Seed: 2, Validation: ValidateBasic, MaxSteps: 1000})
	if err != nil {
		t.Fatal(err)
	}
	e.SetFaults(fault.NewSchedule(
		fault.Event{Time: 0, Kind: fault.LinkDown, Node: c, Dir: mesh.DirPlus(0)},
		fault.Event{Time: 0, Kind: fault.LinkDown, Node: c, Dir: mesh.DirPlus(1)},
	), FateDrop)
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.DroppedStranded != 2 || res.Dropped != 2 {
		t.Fatalf("DroppedStranded=%d Dropped=%d, want 2, 2", res.DroppedStranded, res.Dropped)
	}
	if res.Delivered != 2 || res.Delivered+res.Dropped != res.Total {
		t.Fatalf("Delivered=%d of %d with 2 drops: %+v", res.Delivered, res.Total, res)
	}
	// Excess is shed from the top of the queue: the last-enqueued packets.
	if ps[2].Cause != DropStranded || ps[3].Cause != DropStranded {
		t.Errorf("wrong victims: causes %v %v %v %v", ps[0].Cause, ps[1].Cause, ps[2].Cause, ps[3].Cause)
	}
}

// TestFaultCrashAccountingInvariant: under a probabilistic crash process
// the engine never errors and every packet is exactly one of delivered,
// dropped, absorbed, or still live at the budget.
func TestFaultCrashAccountingInvariant(t *testing.T) {
	m := mesh.MustNew(2, 6)
	crashes, err := fault.NewNodeCrashes(0.01, 0)
	if err != nil {
		t.Fatal(err)
	}
	crashes.MaxDown = 5
	e, err := New(m, randGreedyTest{}, faultInstance(m, 20, 3), Options{
		Seed:       4,
		Validation: ValidateBasic,
		MaxSteps:   3000,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.SetFaults(crashes, FateDrop)
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered+res.Dropped+res.Absorbed+e.Live() != res.Total {
		t.Fatalf("accounting broken: %+v with %d live", res, e.Live())
	}
	if got := res.DroppedCrash + res.DroppedUnreachable + res.DroppedStranded + res.DroppedInject; got != res.Dropped {
		t.Fatalf("per-cause drops sum to %d, Dropped=%d", got, res.Dropped)
	}
	if res.NodeFailures == 0 {
		t.Error("no node ever crashed at rate 0.01 (suspicious fixture)")
	}
	var arrived, droppedPkts int
	for _, p := range e.Packets() {
		switch {
		case p.Arrived() && p.Dropped():
			t.Fatalf("packet %v both arrived and dropped", p)
		case p.Arrived():
			arrived++
		case p.Dropped():
			droppedPkts++
		}
	}
	if arrived != res.Delivered || droppedPkts != res.Dropped+res.Absorbed {
		t.Fatalf("packet states (%d arrived, %d dropped) disagree with result %+v", arrived, droppedPkts, res)
	}
}

// TestFaultSerialParallelAgree: with a deterministic policy the serial and
// parallel paths must produce bit-identical results under faults — the
// fault stream is advanced single-threaded from its own RNG.
func TestFaultSerialParallelAgree(t *testing.T) {
	m := mesh.MustNew(2, 8)
	run := func(workers int) *Result {
		flaps, err := fault.NewLinkFlaps(0.002, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		crashes, err := fault.NewNodeCrashes(0.0005, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		e, err := New(m, cloneableFirstGood{firstGoodPolicy()}, faultInstance(m, 30, 7), Options{
			Seed:       11,
			Validation: ValidateBasic,
			MaxSteps:   2000,
			Workers:    workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		e.SetFaults(fault.Compose(flaps, crashes), FateAbsorb)
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(0)
	for _, w := range []int{2, 5} {
		if got := run(w); !reflect.DeepEqual(got, serial) {
			t.Errorf("workers=%d: %+v != serial %+v", w, got, serial)
		}
	}
}

// TestFaultSequenceIndependentOfRouting: the fault sequence depends only on
// (seed, model) — identical across worker counts even when the randomized
// routing itself differs between the serial and parallel paths.
func TestFaultSequenceIndependentOfRouting(t *testing.T) {
	m := mesh.MustNew(2, 6)
	countFailures := func(workers int) (int, int) {
		flaps, err := fault.NewLinkFlaps(0.01, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		e, err := New(m, shuffledPolicy().(ClonablePolicy), faultInstance(m, 15, 2), Options{
			Seed:     13,
			MaxSteps: 1 << 20,
			Workers:  workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		e.SetFaults(flaps, FateDrop)
		for i := 0; i < 100; i++ {
			if err := e.Step(); err != nil {
				t.Fatal(err)
			}
		}
		return e.Overlay().LinkFailures(), e.Overlay().NodeFailures()
	}
	l0, n0 := countFailures(0)
	l4, n4 := countFailures(4)
	if l0 != l4 || n0 != n4 {
		t.Errorf("fault sequence depends on worker count: serial (%d,%d) vs parallel (%d,%d)", l0, n0, l4, n4)
	}
	if l0 == 0 {
		t.Error("no link ever flapped in 100 steps at rate 0.01 (suspicious fixture)")
	}
}

// TestFaultReproducible: the same seed reproduces the identical Result,
// faults included.
func TestFaultReproducible(t *testing.T) {
	m := mesh.MustNew(2, 6)
	run := func() *Result {
		flaps, err := fault.NewLinkFlaps(0.005, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		crashes, err := fault.NewNodeCrashes(0.001, 0)
		if err != nil {
			t.Fatal(err)
		}
		crashes.MaxDown = 3
		e, err := New(m, randGreedyTest{}, faultInstance(m, 18, 6), Options{
			Seed:       21,
			Validation: ValidateBasic,
			MaxSteps:   4000,
		})
		if err != nil {
			t.Fatal(err)
		}
		e.SetFaults(fault.Compose(flaps, crashes), FateDrop)
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different results:\n%+v\n%+v", a, b)
	}
}

// scriptInjector injects a fixed set of packets at given steps.
type scriptInjector struct {
	at   map[int][]*Packet
	last int
}

func (s *scriptInjector) Inject(t int, e InjectorHost, rng *rand.Rand) []*Packet { return s.at[t] }
func (s *scriptInjector) Exhausted(t int) bool                                   { return t > s.last }

// TestFaultInjectionDrops: injecting at a down source or toward a down
// destination is refused gracefully (DropInject), not an error; injection
// capacity reflects the surviving degree.
func TestFaultInjectionDrops(t *testing.T) {
	m := mesh.MustNew(2, 4)
	a := m.ID([]int{1, 1})
	b := m.ID([]int{3, 3})
	c := m.ID([]int{0, 3})
	inj := &scriptInjector{
		at: map[int][]*Packet{1: {
			NewPacket(100, a, c), // source down
			NewPacket(101, b, a), // destination down
			NewPacket(102, b, c), // fine
		}},
		last: 1,
	}
	e, err := New(m, randGreedyTest{}, nil, Options{Seed: 3, Validation: ValidateBasic, MaxSteps: 1000})
	if err != nil {
		t.Fatal(err)
	}
	e.SetFaults(fault.NewSchedule(fault.Event{Time: 0, Kind: fault.NodeDown, Node: a}), FateDrop)
	e.SetInjector(inj)
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.DroppedInject != 2 || res.Dropped != 2 {
		t.Fatalf("DroppedInject=%d Dropped=%d, want 2, 2", res.DroppedInject, res.Dropped)
	}
	if res.Delivered != 1 || res.Total != 3 {
		t.Fatalf("Delivered=%d Total=%d, want 1 of 3: %+v", res.Delivered, res.Total, res)
	}
	// Capacity at a crashed node is zero; elsewhere it is the surviving
	// degree minus the load.
	if got := e.InjectionCapacity(a); got != 0 {
		t.Errorf("InjectionCapacity(down node) = %d, want 0", got)
	}
}

// TestFaultReducedCapacityInjectionDrops: an injector that legally fills a
// node's intact degree gets the surplus refused (not errored) when link
// cuts shrink the degree underneath it.
func TestFaultReducedCapacityInjectionDrops(t *testing.T) {
	m := mesh.MustNew(2, 4)
	c := m.ID([]int{1, 1}) // degree 4, cut down to 2
	inj := &scriptInjector{
		at: map[int][]*Packet{1: {
			NewPacket(200, c, m.ID([]int{0, 0})),
			NewPacket(201, c, m.ID([]int{3, 0})),
			NewPacket(202, c, m.ID([]int{0, 3})), // exceeds surviving degree 2
		}},
		last: 1,
	}
	e, err := New(m, randGreedyTest{}, nil, Options{Seed: 5, Validation: ValidateBasic, MaxSteps: 1000})
	if err != nil {
		t.Fatal(err)
	}
	e.SetFaults(fault.NewSchedule(
		fault.Event{Time: 0, Kind: fault.LinkDown, Node: c, Dir: mesh.DirPlus(0)},
		fault.Event{Time: 0, Kind: fault.LinkDown, Node: c, Dir: mesh.DirMinus(0)},
	), FateDrop)
	e.SetInjector(inj)
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.DroppedInject != 1 || res.Delivered != 2 {
		t.Fatalf("DroppedInject=%d Delivered=%d, want 1, 2: %+v", res.DroppedInject, res.Delivered, res)
	}
}

// TestFaultsDisableLivelockDetection: a topology that mutates mid-run makes
// configuration hashing unsound, so SetFaults must turn the detector off —
// the swap fixture then runs to the step budget instead of "detecting" a
// loop.
func TestFaultsDisableLivelockDetection(t *testing.T) {
	m := mesh.MustNew(1, 4)
	p0 := NewPacket(0, 1, 0)
	p1 := NewPacket(1, 2, 3)
	pol := &testPolicy{
		name: "test-swap",
		det:  true,
		route: func(ns *NodeState, out []mesh.Dir, rng *rand.Rand) {
			for i, p := range ns.Packets {
				if p.Node == 1 {
					out[i] = mesh.DirPlus(0)
				} else {
					out[i] = mesh.DirMinus(0)
				}
			}
		},
	}
	e, err := New(m, pol, []*Packet{p0, p1}, Options{
		Validation:     ValidateBasic,
		DetectLivelock: true,
		MaxSteps:       300,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.SetFaults(fault.NewSchedule(), FateDrop)
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Livelocked {
		t.Error("livelock reported with a fault model installed")
	}
	if !res.HitMaxSteps {
		t.Errorf("expected HitMaxSteps: %+v", res)
	}
}

// TestFaultInjectorDuplicateIDRejected: reusing a packet ID is an injector
// bug and must stay a hard error, faults or not.
func TestFaultInjectorDuplicateIDRejected(t *testing.T) {
	m := mesh.MustNew(2, 4)
	inj := &scriptInjector{
		at: map[int][]*Packet{
			0: {NewPacket(7, 0, 5)},
			1: {NewPacket(7, 1, 5)},
		},
		last: 1,
	}
	e, err := New(m, randGreedyTest{}, nil, Options{Validation: ValidateBasic, MaxSteps: 100})
	if err != nil {
		t.Fatal(err)
	}
	e.SetInjector(inj)
	_, err = e.Run()
	if !errors.Is(err, ErrBadInjection) {
		t.Fatalf("duplicate injected ID: err = %v, want ErrBadInjection", err)
	}
}
