package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hotpotato/internal/mesh"
)

// chaoticPolicy is a legal but completely arbitrary policy: it assigns
// packets to free arcs in a random order with random choices, ignoring
// destinations. It exercises every engine path that does not require
// greediness.
type chaoticPolicy struct{}

func (chaoticPolicy) Name() string        { return "test-chaotic" }
func (chaoticPolicy) Deterministic() bool { return false }
func (chaoticPolicy) Route(ns *NodeState, out []mesh.Dir, rng *rand.Rand) {
	var free []mesh.Dir
	for dir := mesh.Dir(0); int(dir) < ns.Mesh.DirCount(); dir++ {
		if ns.HasArc(dir) {
			free = append(free, dir)
		}
	}
	rng.Shuffle(len(free), func(i, j int) { free[i], free[j] = free[j], free[i] })
	for i := range out {
		out[i] = free[i]
	}
}

// TestFuzzEngineInvariants drives random instances under the chaotic
// policy and checks the model invariants the engine must maintain no
// matter what a (legal) policy does.
func TestFuzzEngineInvariants(t *testing.T) {
	f := func(seed int64, rawDim, rawSide, rawK uint8) bool {
		dim := int(rawDim)%3 + 1
		side := int(rawSide)%5 + 2
		m, err := mesh.New(dim, side)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		k := int(rawK) % (m.Size() + 1)
		var packets []*Packet
		used := map[mesh.NodeID]int{}
		for i := 0; i < k; i++ {
			src := mesh.NodeID(rng.Intn(m.Size()))
			if used[src] >= m.Degree(src) {
				continue
			}
			used[src]++
			packets = append(packets, NewPacket(i, src, mesh.NodeID(rng.Intn(m.Size()))))
		}
		e, err := New(m, chaoticPolicy{}, packets, Options{
			Seed:       seed,
			Validation: ValidateBasic,
			MaxSteps:   400,
		})
		if err != nil {
			return false
		}
		// Per-step invariants via observer.
		ok := true
		e.AddObserver(ObserverFunc(func(rec *StepRecord) {
			arcs := map[[2]int32]bool{}
			for _, mv := range rec.Moves {
				key := [2]int32{int32(mv.From), int32(mv.Dir)}
				if arcs[key] {
					ok = false
				}
				arcs[key] = true
				if m.Dist(mv.From, mv.To) != 1 {
					ok = false
				}
			}
		}))
		res, err := e.Run()
		if err != nil || !ok {
			return false
		}
		// Conservation: every packet is either arrived at its destination
		// or still in the network at a valid node.
		live := 0
		for _, p := range e.Packets() {
			if p.Arrived() {
				if p.Node != p.Dst {
					return false
				}
			} else {
				live++
				if !m.Contains(p.Node) {
					return false
				}
			}
		}
		return res.Delivered+live == res.Total
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestFuzzInjectorInvariants mixes dynamic injection into the fuzz: the
// engine must keep per-node occupancy within degree bounds at routing time.
type fuzzInjector struct{ left int }

func (fi *fuzzInjector) Inject(t int, e InjectorHost, rng *rand.Rand) []*Packet {
	if fi.left <= 0 {
		return nil
	}
	var out []*Packet
	usedNow := map[mesh.NodeID]int{}
	for i := 0; i < 2 && fi.left > 0; i++ {
		src := mesh.NodeID(rng.Intn(e.Mesh().Size()))
		// InjectionCapacity does not see this call's earlier picks, so
		// count them ourselves (see the Injector contract).
		if e.InjectionCapacity(src)-usedNow[src] <= 0 {
			continue
		}
		usedNow[src]++
		fi.left--
		out = append(out, NewPacket(e.NextPacketID(), src, mesh.NodeID(rng.Intn(e.Mesh().Size()))))
	}
	return out
}

func (fi *fuzzInjector) Exhausted(t int) bool { return fi.left <= 0 }

func TestFuzzInjectorInvariants(t *testing.T) {
	f := func(seed int64, rawSide uint8) bool {
		side := int(rawSide)%5 + 3
		m, err := mesh.New(2, side)
		if err != nil {
			return false
		}
		e, err := New(m, chaoticPolicy{}, nil, Options{
			Seed:       seed,
			Validation: ValidateBasic,
			MaxSteps:   500,
		})
		if err != nil {
			return false
		}
		e.SetInjector(&fuzzInjector{left: 30})
		occupancyOK := true
		e.AddObserver(ObserverFunc(func(rec *StepRecord) {
			perNode := map[mesh.NodeID]int{}
			for _, mv := range rec.Moves {
				perNode[mv.From]++
			}
			for node, cnt := range perNode {
				if cnt > m.Degree(node) {
					occupancyOK = false
				}
			}
		}))
		res, err := e.Run()
		if err != nil {
			return false
		}
		return occupancyOK && res.Total <= 30
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestInjectionValidationErrors: misbehaving injectors are rejected.
func TestInjectionValidationErrors(t *testing.T) {
	m := mesh.MustNew(2, 4)

	mk := func(inj Injector) error {
		e, err := New(m, firstGoodPolicy(), nil, Options{Validation: ValidateBasic, MaxSteps: 4})
		if err != nil {
			t.Fatal(err)
		}
		e.SetInjector(inj)
		_, err = e.Run()
		return err
	}

	if err := mk(badInjector(func(e InjectorHost) []*Packet {
		return []*Packet{nil}
	})); err == nil {
		t.Error("nil injected packet accepted")
	}
	if err := mk(badInjector(func(e InjectorHost) []*Packet {
		return []*Packet{NewPacket(e.NextPacketID(), -1, 3)}
	})); err == nil {
		t.Error("bad source accepted")
	}
	if err := mk(badInjector(func(e InjectorHost) []*Packet {
		p := NewPacket(e.NextPacketID(), 1, 3)
		p.Node = 2
		return []*Packet{p}
	})); err == nil {
		t.Error("displaced packet accepted")
	}
	if err := mk(badInjector(func(e InjectorHost) []*Packet {
		// Overfill a corner (degree 2) with 3 packets.
		corner := m.ID([]int{0, 0})
		return []*Packet{
			NewPacket(e.NextPacketID(), corner, 5),
			NewPacket(e.NextPacketID(), corner, 6),
			NewPacket(e.NextPacketID(), corner, 7),
		}
	})); err == nil {
		t.Error("overfilled node accepted")
	}
}

type badInjector func(e InjectorHost) []*Packet

func (b badInjector) Inject(t int, e InjectorHost, rng *rand.Rand) []*Packet {
	if t == 0 {
		return b(e)
	}
	return nil
}
func (b badInjector) Exhausted(t int) bool { return t > 0 }
