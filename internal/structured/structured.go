// Package structured implements the kind of *structured* hot-potato
// routing the paper's introduction argues against: algorithms that enforce
// "good behavior" by sending packets along prespecified detours, gaining
// worst-case guarantees at the cost of ignoring the actual instance.
//
// The comparator here is a Valiant-style two-phase scheme adapted to the
// hot-potato constraint: every packet first travels greedily to a randomly
// chosen intermediate node (phase 1), and only then greedily to its real
// destination (phase 2). Randomized interchange smooths worst-case
// congestion — the classical argument — but a packet that originates next
// to its destination is still dragged across the network, which is exactly
// the paper's "overstructuring" critique (Section 1): the algorithm is not
// sensitive to the instance's locality or to the total load.
//
// The policy is a legal hot-potato algorithm (every packet moves every
// step) but deliberately NOT greedy with respect to real destinations; run
// it under sim.ValidateBasic.
package structured

import (
	"math/rand"

	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
)

// twoPhase routes packets via random intermediate destinations.
//
// Note one model interaction: the engine absorbs a packet the moment it
// stands on its *real* destination, so a phase-1 packet that happens to
// pass through its destination is delivered opportunistically. This only
// softens the detour cost; the overstructuring effect remains dominant.
type twoPhase struct {
	intermediate map[int]mesh.NodeID // packet ID -> phase-1 target; deleted on phase 2
}

var _ sim.Policy = (*twoPhase)(nil)

// NewTwoPhase returns the Valiant-style two-phase hot-potato policy.
// Conceptually the intermediate destination rides in the packet header;
// the implementation keeps it keyed by packet ID (assigned lazily from the
// engine RNG on first sight, so runs stay deterministic under a seed).
func NewTwoPhase() sim.Policy {
	return &twoPhase{intermediate: make(map[int]mesh.NodeID)}
}

// Name implements sim.Policy.
func (p *twoPhase) Name() string { return "structured-two-phase" }

// Deterministic implements sim.Policy: intermediate targets come from the
// engine RNG.
func (p *twoPhase) Deterministic() bool { return false }

// target returns the node the packet currently steers toward: its
// intermediate target during phase 1, its real destination afterwards.
func (p *twoPhase) target(ns *sim.NodeState, pk *sim.Packet, rng *rand.Rand) mesh.NodeID {
	if mid, ok := p.intermediate[pk.ID]; ok {
		if pk.Node != mid {
			return mid
		}
		// Phase 1 complete.
		delete(p.intermediate, pk.ID)
		return pk.Dst
	}
	if pk.Hops == 0 && pk.Node != pk.Dst {
		// First sight: draw the intermediate target.
		mid := mesh.NodeID(rng.Intn(ns.Mesh.Size()))
		if mid != pk.Node {
			p.intermediate[pk.ID] = mid
			return mid
		}
	}
	return pk.Dst
}

// Route implements sim.Policy: greedy priority matching toward the current
// (virtual) targets.
func (p *twoPhase) Route(ns *sim.NodeState, out []mesh.Dir, rng *rand.Rand) {
	// Compute per-packet virtual targets, then assign arcs with the same
	// machinery as the greedy policies, but against virtual good sets.
	targets := make([]mesh.NodeID, len(ns.Packets))
	for i, pk := range ns.Packets {
		targets[i] = p.target(ns, pk, rng)
	}

	// Local maximum matching toward virtual targets (hand-rolled because
	// routing.Assigner matches against real-destination good sets).
	dirCount := ns.Mesh.DirCount()
	owner := make([]int, dirCount)
	for d := range owner {
		owner[d] = -1
	}
	assigned := make([]mesh.Dir, len(ns.Packets))
	for i := range assigned {
		assigned[i] = mesh.NoDir
	}
	var goodBuf [2 * mesh.MaxDim]mesh.Dir
	var visited [2 * mesh.MaxDim]bool
	var augment func(i int) bool
	augment = func(i int) bool {
		for _, g := range ns.Mesh.GoodDirs(ns.Packets[i].Node, targets[i], goodBuf[:0]) {
			if targets[i] == ns.Packets[i].Node {
				break
			}
			if visited[g] {
				continue
			}
			visited[g] = true
			j := owner[g]
			if j < 0 || augment(j) {
				owner[g] = i
				assigned[i] = g
				return true
			}
		}
		return false
	}
	idx := rng.Perm(len(ns.Packets))
	for _, i := range idx {
		for d := 0; d < dirCount; d++ {
			visited[d] = false
		}
		augment(i)
	}
	// Deflections onto leftover arcs.
	var free []mesh.Dir
	for d := 0; d < dirCount; d++ {
		dir := mesh.Dir(d)
		if owner[d] < 0 && ns.HasArc(dir) {
			free = append(free, dir)
		}
	}
	rng.Shuffle(len(free), func(x, y int) { free[x], free[y] = free[y], free[x] })
	next := 0
	for i := range assigned {
		if assigned[i] == mesh.NoDir {
			assigned[i] = free[next]
			next++
		}
	}
	copy(out, assigned)
}
