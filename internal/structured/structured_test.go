package structured

import (
	"math/rand"
	"testing"

	"hotpotato/internal/core"
	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
	"hotpotato/internal/workload"
)

func runPolicy(t *testing.T, m *mesh.Mesh, pol sim.Policy, packets []*sim.Packet, seed int64) *sim.Result {
	t.Helper()
	e, err := sim.New(m, pol, packets, sim.Options{
		Seed:       seed,
		Validation: sim.ValidateBasic,
		MaxSteps:   100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTwoPhaseDelivers(t *testing.T) {
	m := mesh.MustNew(2, 8)
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		packets := workload.Permutation(m, rng)
		res := runPolicy(t, m, NewTwoPhase(), packets, seed)
		if res.Delivered != res.Total {
			t.Fatalf("seed %d: %d/%d delivered (%+v)", seed, res.Delivered, res.Total, res)
		}
	}
}

func TestTwoPhaseIsHotPotatoLegal(t *testing.T) {
	m := mesh.MustNew(2, 6)
	rng := rand.New(rand.NewSource(1))
	packets, err := workload.UniformRandom(m, 40, rng)
	if err != nil {
		t.Fatal(err)
	}
	// ValidateBasic (inside runPolicy) already asserts every packet gets a
	// distinct existing arc every step; reaching completion is the test.
	res := runPolicy(t, m, NewTwoPhase(), packets, 1)
	if res.Delivered != res.Total {
		t.Fatalf("%d/%d delivered", res.Delivered, res.Total)
	}
}

// TestOverstructuring reproduces the paper's introductory critique: on
// traffic where every destination is at distance <= 2, the greedy class
// finishes in a handful of steps while the structured scheme drags packets
// across the mesh.
func TestOverstructuring(t *testing.T) {
	m := mesh.MustNew(2, 12)
	const radius = 2
	mk := func(seed int64) []*sim.Packet {
		rng := rand.New(rand.NewSource(seed))
		packets, err := workload.LocalRandom(m, 60, radius, rng)
		if err != nil {
			t.Fatal(err)
		}
		return packets
	}
	var greedySum, structuredSum int
	for seed := int64(0); seed < 3; seed++ {
		greedySum += runPolicy(t, m, core.NewRestrictedPriority(), mk(seed), seed).Steps
		structuredSum += runPolicy(t, m, NewTwoPhase(), mk(seed), seed).Steps
	}
	if structuredSum <= 2*greedySum {
		t.Errorf("structured %d vs greedy %d total steps: expected a large detour penalty", structuredSum, greedySum)
	}
	if greedySum > 3*radius*3 {
		t.Errorf("greedy took %d total steps on radius-%d traffic", greedySum, radius)
	}
}

// TestTwoPhaseName covers metadata.
func TestTwoPhaseName(t *testing.T) {
	pol := NewTwoPhase()
	if pol.Name() != "structured-two-phase" {
		t.Errorf("Name() = %q", pol.Name())
	}
	if pol.Deterministic() {
		t.Error("two-phase claims determinism")
	}
}

// TestTwoPhaseSelfAddressed: packets already at their destination are
// absorbed before the policy ever sees them.
func TestTwoPhaseSelfAddressed(t *testing.T) {
	m := mesh.MustNew(2, 6)
	p := sim.NewPacket(0, 7, 7)
	res := runPolicy(t, m, NewTwoPhase(), []*sim.Packet{p}, 1)
	if res.Steps != 0 || res.Delivered != 1 {
		t.Errorf("self-addressed result %+v", res)
	}
}
