package core

import (
	"math/rand"
	"testing"

	"hotpotato/internal/mesh"
	"hotpotato/internal/routing"
	"hotpotato/internal/sim"
	"hotpotato/internal/workload"
)

// TestRankLessEquivalence rebuilds each of this package's rank-based
// policies as the semantically equivalent less-based routing.NewCustom
// policy (less(i, j) = rank(i) < rank(j)) and runs the two in lockstep on
// identical workloads and seeds: the per-step engine state hashes must
// match exactly. The rank path and the less path of the routing matcher
// consume the policy RNG identically, so any divergence is a real
// priority-relation difference, not a tie-break artifact.
func TestRankLessEquivalence(t *testing.T) {
	cases := []struct {
		rankBased func() sim.Policy
		rank      func(ns *sim.NodeState, i int) int
	}{
		{
			rankBased: NewRestrictedPriority,
			rank:      func(ns *sim.NodeState, i int) int { return restrictedRank(ns, i, true) },
		},
		{
			rankBased: NewRestrictedPriorityTypeBFirst,
			rank:      func(ns *sim.NodeState, i int) int { return restrictedRank(ns, i, false) },
		},
		{
			rankBased: func() sim.Policy { return NewFewestGoodFirst() },
			rank: func(ns *sim.NodeState, i int) int {
				r := 2 * ns.Info(i).GoodCount
				if !ns.Packets[i].AdvancedPrev {
					r++
				}
				return r
			},
		},
	}
	m := mesh.MustNew(2, 8)
	for _, tc := range cases {
		pol := tc.rankBased()
		t.Run(pol.Name(), func(t *testing.T) {
			rank := tc.rank
			lessBased := func() sim.Policy {
				return routing.NewCustom(pol.Name()+"-less",
					func(ns *sim.NodeState, i, j int) bool { return rank(ns, i) < rank(ns, j) },
					true, routing.DeflectRandom)
			}
			for seed := int64(0); seed < 3; seed++ {
				rng := rand.New(rand.NewSource(seed))
				packets, err := workload.UniformRandom(m, 60, rng)
				if err != nil {
					t.Fatal(err)
				}
				opts := sim.Options{Seed: seed + 100, Validation: sim.ValidateGreedy, MaxSteps: 200000}
				a, err := sim.New(m, tc.rankBased(), clonePkts(packets), opts)
				if err != nil {
					t.Fatal(err)
				}
				b, err := sim.New(m, lessBased(), clonePkts(packets), opts)
				if err != nil {
					t.Fatal(err)
				}
				for !a.Done() && !a.Livelocked() {
					if err := a.Step(); err != nil {
						t.Fatal(err)
					}
					if err := b.Step(); err != nil {
						t.Fatal(err)
					}
					if ha, hb := a.StateHash(), b.StateHash(); ha != hb {
						t.Fatalf("seed %d: state hash diverged at step %d: %#x vs %#x", seed, a.Time(), ha, hb)
					}
				}
				if b.Done() != a.Done() {
					t.Fatalf("seed %d: termination diverged", seed)
				}
			}
		})
	}
}

func clonePkts(pkts []*sim.Packet) []*sim.Packet {
	out := make([]*sim.Packet, len(pkts))
	for i, p := range pkts {
		c := *p
		out[i] = &c
	}
	return out
}
