package core

import (
	"fmt"
	"math"

	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
)

// Tracker maintains the paper's potential function over a running engine
// and checks, at every step, every local and global inequality the analysis
// rests on. Register it with sim.Engine.AddObserver before the first step.
//
// The per-packet potential is phi_p(t) = dist_p(t) + C_p(t) with the spare
// potential C_p following the exact rules of Section 4.2 (Figure 6):
//
//  1. C_p(0) = 2n.
//  2. If after step t the packet is not restricted, or is restricted of
//     type B, C_p = 2n.
//  3. If after step t the packet is restricted of type A:
//     (a) if p deflected no type-A packet in step t, C_p drops by 2;
//     (b) if p deflected the type-A packet q, p inherits C_q - 2 and q
//     resets to 2n (the "switch").
//  4. Arrived packets have C_p = 0.
//
// The same rules are applied verbatim in any dimension (restricted packets
// are those with exactly one good direction). For d = 2 this is exactly the
// paper's function and every check must pass for any algorithm preferring
// restricted packets; for d >= 3 the paper omits the (thesis-only) exact
// construction, so violation counts are reported as measurements rather
// than asserted (see DESIGN.md).
type Tracker struct {
	mesh     *mesh.Mesh
	packets  []*sim.Packet
	spare0   int
	burn     int
	burnAll  bool
	m        int // a priori bound M on phi_p
	distOnly bool

	c   map[*sim.Packet]int
	phi int64 // current global potential

	phiHist []int64 // Phi(0), Phi(1), ...
	fHist   []int
	series  []StepStats
	record  bool

	load    []int32
	touched []mesh.NodeID

	v          Violations
	minPhi     int
	minC       int
	selfCheckN int
}

// StepStats is the per-step time series the tracker records.
type StepStats struct {
	// Time is the step index t the stats describe (configuration at the
	// beginning of step t, transitions during it).
	Time int
	// PhiBefore and PhiAfter are Phi(t) and Phi(t+1).
	PhiBefore, PhiAfter int64
	// Good and Bad are G(t) and B(t): packets in good/bad nodes
	// (Definition 9; a node is bad if it holds more than d packets).
	Good, Bad int
	// BadNodes is the number of bad nodes.
	BadNodes int
	// SurfaceArcs is F(t), the number of surface arcs (Definition 11).
	SurfaceArcs int
	// Advanced and Deflected count packet moves of each kind.
	Advanced, Deflected int
}

// Violations aggregates every inequality breach observed. All fields stay
// zero for Section-4 class algorithms on 2-dimensional meshes.
type Violations struct {
	// Property8 counts node-steps where the potential loss of a node fell
	// short of Property 8 (>= l for l <= d packets, >= 2d-l otherwise).
	Property8 int
	// Corollary10 counts steps with Phi(t+1) > Phi(t) - G(t).
	Corollary10 int
	// Lemma12 counts steps with Phi(t+2) > Phi(t) - F(t).
	Lemma12 int
	// Lemma14 counts steps with F(t) < (2d)^{1/d} * B(t)^{(d-1)/d}.
	Lemma14 int
	// Lemma15 counts steps with
	// Phi(t) - Phi(t+2) < (2d)^{1/d} * (Phi(t)/2M)^{(d-1)/d}.
	Lemma15 int
	// PhiRange counts packet-steps with phi_p outside [0, M].
	PhiRange int
	// PhiZeroLive counts packet-steps where a live packet had phi_p = 0.
	PhiZeroLive int
	// TypeADeflector counts deflections of a type-A packet whose deflector
	// was itself type A, contradicting the property claimed in Section 4.1
	// (the deflector of a type-A packet must be type B).
	TypeADeflector int
	// SwitchAmbiguous counts deflected type-A packets that shared their
	// good arc with another deflected type-A packet in the same node (the
	// paper argues this cannot happen; the switch is applied to the first).
	SwitchAmbiguous int
	// Conservation counts self-check failures of the incremental Phi
	// bookkeeping against a from-scratch recomputation (an implementation
	// invariant, not a paper claim; always expected to be zero).
	Conservation int
}

// Any reports whether any violation was observed.
func (v Violations) Any() bool {
	return v.Property8+v.Corollary10+v.Lemma12+v.Lemma14+v.Lemma15+
		v.PhiRange+v.PhiZeroLive+v.TypeADeflector+v.SwitchAmbiguous+v.Conservation > 0
}

// String summarizes the nonzero counters.
func (v Violations) String() string {
	if !v.Any() {
		return "no violations"
	}
	return fmt.Sprintf("property8=%d cor10=%d lemma12=%d lemma14=%d lemma15=%d phiRange=%d phiZeroLive=%d typeADeflector=%d switchAmbiguous=%d conservation=%d",
		v.Property8, v.Corollary10, v.Lemma12, v.Lemma14, v.Lemma15,
		v.PhiRange, v.PhiZeroLive, v.TypeADeflector, v.SwitchAmbiguous, v.Conservation)
}

// TrackerOptions configures a Tracker.
type TrackerOptions struct {
	// RecordSeries keeps the full per-step StepStats series in memory.
	RecordSeries bool
	// SelfCheckEvery recomputes Phi from scratch every that many steps and
	// counts mismatches as Conservation violations. 0 disables.
	SelfCheckEvery int
	// DistanceOnly ablates the spare potential: phi_p = dist_p, C_p = 0.
	// This naive potential does NOT satisfy Property 8 (a deflection gains
	// distance with nothing to pay for it) — the tracker then *measures*
	// the failures, demonstrating why the paper's Figure-6 spare-potential
	// construction is needed.
	DistanceOnly bool
	// Spare0 overrides the initial/reset spare potential (default 2n, the
	// paper's value). Used by the Section-5 reconstruction experiments.
	Spare0 int
	// Burn overrides the spare units a type-A packet throws per advancing
	// step (default 2, the paper's value).
	Burn int
	// BurnAll switches to the class-based d-dimensional variant sketched
	// in Section 5: EVERY advancing packet burns Burn spare units (not
	// only restricted type-A ones), and every deflected packet resets to
	// Spare0. The restricted switch rule is disabled in this mode (the
	// thesis construction replaces it with a compensation scheme the paper
	// does not spell out).
	BurnAll bool
}

// NewTracker builds a tracker for the given problem. It must see every step
// of the engine from the start (register it before stepping).
func NewTracker(m *mesh.Mesh, packets []*sim.Packet, opts TrackerOptions) *Tracker {
	spare0 := 2 * m.Side()
	if opts.Spare0 > 0 {
		spare0 = opts.Spare0
	}
	if opts.DistanceOnly {
		spare0 = 0
	}
	burn := 2
	if opts.Burn > 0 {
		burn = opts.Burn
	}
	tr := &Tracker{
		mesh:       m,
		packets:    packets,
		spare0:     spare0,
		burn:       burn,
		burnAll:    opts.BurnAll,
		m:          spare0 + m.Diameter(),
		distOnly:   opts.DistanceOnly,
		c:          make(map[*sim.Packet]int, len(packets)),
		load:       make([]int32, m.Size()),
		record:     opts.RecordSeries,
		selfCheckN: opts.SelfCheckEvery,
		minPhi:     math.MaxInt,
		minC:       math.MaxInt,
	}
	for _, p := range packets {
		if p.Arrived() {
			tr.c[p] = 0
			continue
		}
		tr.c[p] = tr.spare0
		tr.phi += int64(m.Dist(p.Node, p.Dst) + tr.spare0)
	}
	tr.phiHist = append(tr.phiHist, tr.phi)
	return tr
}

// M returns the a priori bound on the potential of a single packet
// (4n in two dimensions).
func (tr *Tracker) M() int { return tr.m }

// Phi returns the current global potential.
func (tr *Tracker) Phi() int64 { return tr.phi }

// Phi0 returns the initial potential Phi(0).
func (tr *Tracker) Phi0() int64 { return tr.phiHist[0] }

// PhiHistory returns Phi(0), Phi(1), ..., one entry per completed step plus
// the initial value.
func (tr *Tracker) PhiHistory() []int64 { return tr.phiHist }

// Series returns the recorded per-step statistics (empty unless
// RecordSeries was set).
func (tr *Tracker) Series() []StepStats { return tr.series }

// Violations returns the accumulated violation counters.
func (tr *Tracker) Violations() Violations { return tr.v }

// MinPhi returns the smallest per-packet potential observed on a live
// packet (math.MaxInt if no step ran).
func (tr *Tracker) MinPhi() int { return tr.minPhi }

// MinSpare returns the smallest spare potential C_p observed on a live
// packet (math.MaxInt if no step ran).
func (tr *Tracker) MinSpare() int { return tr.minC }

// OnStep implements sim.Observer.
func (tr *Tracker) OnStep(rec *sim.StepRecord) {
	d := tr.mesh.Dim()
	stats := StepStats{Time: rec.Time, PhiBefore: tr.phi}

	// Pass 1: node loads at the beginning of the step, for B(t), G(t) and
	// the surface-arc count F(t).
	for i := range rec.Moves {
		node := rec.Moves[i].From
		if tr.load[node] == 0 {
			tr.touched = append(tr.touched, node)
		}
		tr.load[node]++
	}
	for _, node := range tr.touched {
		l := int(tr.load[node])
		if l > d {
			stats.Bad += l
			stats.BadNodes++
		} else {
			stats.Good += l
		}
	}
	stats.SurfaceArcs = tr.countSurfaceArcs(d)

	// Pass 2: apply the Figure-6 potential rules group by group (moves out
	// of one node are contiguous) and check Property 8 per node.
	for lo := 0; lo < len(rec.Moves); {
		hi := lo + 1
		for hi < len(rec.Moves) && rec.Moves[hi].From == rec.Moves[lo].From {
			hi++
		}
		tr.applyNode(rec.Moves[lo:hi], &stats)
		lo = hi
	}

	// Global checks.
	stats.PhiAfter = tr.phi
	tr.phiHist = append(tr.phiHist, tr.phi)
	tr.fHist = append(tr.fHist, stats.SurfaceArcs)
	t := rec.Time
	if tr.phiHist[t+1] > tr.phiHist[t]-int64(stats.Good) {
		tr.v.Corollary10++
	}
	if t >= 1 {
		// Check Lemma 12 and Lemma 15 for step t-1, now that Phi(t+1) is
		// known.
		phiT, phiT2 := tr.phiHist[t-1], tr.phiHist[t+1]
		if phiT2 > phiT-int64(tr.fHist[t-1]) {
			tr.v.Lemma12++
		}
		want := math.Pow(2*float64(d), 1/float64(d)) *
			math.Pow(float64(phiT)/(2*float64(tr.m)), float64(d-1)/float64(d))
		if float64(phiT-phiT2)+1e-9 < want {
			tr.v.Lemma15++
		}
	}
	if stats.Bad > 0 {
		want := math.Pow(2*float64(d), 1/float64(d)) *
			math.Pow(float64(stats.Bad), float64(d-1)/float64(d))
		if float64(stats.SurfaceArcs)+1e-9 < want {
			tr.v.Lemma14++
		}
	}

	// Reset load scratch.
	for _, node := range tr.touched {
		tr.load[node] = 0
	}
	tr.touched = tr.touched[:0]

	if tr.record {
		for i := range rec.Moves {
			if rec.Moves[i].Advanced {
				stats.Advanced++
			} else {
				stats.Deflected++
			}
		}
		tr.series = append(tr.series, stats)
	}
	if tr.selfCheckN > 0 && (t+1)%tr.selfCheckN == 0 {
		tr.selfCheck()
	}
}

// countSurfaceArcs computes F(t) per Definition 11: arcs out of bad nodes
// whose 2-neighbor in that direction is good or absent (arcs leading out of
// the mesh from a bad node count too).
func (tr *Tracker) countSurfaceArcs(d int) int {
	f := 0
	for _, node := range tr.touched {
		if int(tr.load[node]) <= d {
			continue
		}
		for dir := mesh.Dir(0); dir < mesh.Dir(2*d); dir++ {
			n2, ok := tr.mesh.TwoNeighbor(node, dir)
			if !ok || int(tr.load[n2]) <= d {
				f++
			}
		}
	}
	return f
}

// applyNode processes the moves out of one node: computes the new spare
// potentials, accumulates the global potential change, and checks
// Property 8 for the node.
func (tr *Tracker) applyNode(group []sim.Move, stats *StepStats) {
	d := tr.mesh.Dim()
	node := group[0].From

	// Identify deflected type-A packets and index them by their unique good
	// arc so the switch rule can attribute them to their deflector. Type-A
	// packets are restricted, so the good arc is unique; two deflected
	// type-A packets sharing an arc is impossible per the paper (counted if
	// observed).
	var switchC [2 * mesh.MaxDim]int
	var switchSet [2 * mesh.MaxDim]bool
	for i := range group {
		mv := &group[i]
		if mv.Advanced || !mv.WasTypeA {
			continue
		}
		var buf [2 * mesh.MaxDim]mesh.Dir
		good := tr.mesh.GoodDirs(mv.From, mv.Packet.Dst, buf[:0])
		if len(good) != 1 {
			continue // defensive: WasTypeA implies restricted
		}
		g := good[0]
		if switchSet[g] {
			tr.v.SwitchAmbiguous++
			continue
		}
		switchSet[g] = true
		switchC[g] = tr.c[mv.Packet]
	}

	var before, after int64
	for i := range group {
		mv := &group[i]
		p := mv.Packet
		cBefore := tr.c[p]
		before += int64(tr.mesh.Dist(mv.From, p.Dst) + cBefore)

		var cAfter, phiAfter int
		switch {
		case mv.ArrivedNow:
			cAfter = 0
			phiAfter = 0
		case tr.distOnly:
			cAfter = 0
			phiAfter = tr.mesh.Dist(mv.To, p.Dst)
			if phiAfter < tr.minPhi {
				tr.minPhi = phiAfter
			}
		case tr.burnAll:
			// Class-based Section-5 variant: every advancing packet burns,
			// every deflected packet resets.
			if mv.Advanced {
				cAfter = cBefore - tr.burn
			} else {
				cAfter = tr.spare0
			}
			phiAfter = tr.mesh.Dist(mv.To, p.Dst) + cAfter
			if phiAfter < tr.minPhi {
				tr.minPhi = phiAfter
			}
			if cAfter < tr.minC {
				tr.minC = cAfter
			}
			if phiAfter < 0 || phiAfter > tr.m {
				tr.v.PhiRange++
			}
			if phiAfter == 0 {
				tr.v.PhiZeroLive++
			}
		default:
			distAfter := tr.mesh.Dist(mv.To, p.Dst)
			restrictedAfter := tr.mesh.GoodDirCount(mv.To, p.Dst) == 1
			typeAAfter := restrictedAfter && mv.WasRestricted && mv.Advanced
			if typeAAfter {
				if mv.Advanced && switchSet[mv.Dir] {
					// Rule 3(b): p advanced through the unique good arc of
					// a deflected type-A packet q; p inherits q's countdown.
					cAfter = switchC[mv.Dir] - tr.burn
					if mv.WasTypeA {
						// The deflector of a type-A packet must be type B
						// (Section 4.1, property 2).
						tr.v.TypeADeflector++
					}
				} else {
					cAfter = cBefore - tr.burn
				}
			} else {
				cAfter = tr.spare0
			}
			phiAfter = distAfter + cAfter
			if phiAfter < tr.minPhi {
				tr.minPhi = phiAfter
			}
			if cAfter < tr.minC {
				tr.minC = cAfter
			}
			if phiAfter < 0 || phiAfter > tr.m {
				tr.v.PhiRange++
			}
			if phiAfter == 0 {
				tr.v.PhiZeroLive++
			}
		}
		tr.c[p] = cAfter
		after += int64(phiAfter)
	}

	loss := before - after
	l := len(group)
	var need int64
	if l <= d {
		need = int64(l)
	} else {
		need = int64(2*d - l)
	}
	if loss < need {
		tr.v.Property8++
	}
	_ = node
	tr.phi -= loss
}

// selfCheck recomputes Phi from per-packet state and compares with the
// incrementally maintained value.
func (tr *Tracker) selfCheck() {
	var phi int64
	for _, p := range tr.packets {
		if p.Arrived() {
			continue
		}
		phi += int64(tr.mesh.Dist(p.Node, p.Dst) + tr.c[p])
	}
	if phi != tr.phi {
		tr.v.Conservation++
		tr.phi = phi // resynchronize so one bug is counted once per check
	}
}
