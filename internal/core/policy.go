// Package core implements the paper's primary contribution: the class of
// greedy hot-potato routing algorithms that prefer restricted packets
// (Section 4), its d-dimensional generalization (Section 5), and the
// potential-function machinery of Sections 3-4 — the exact per-packet
// potential of Figure 6 and per-step checkers for Property 8,
// Corollary 10, Lemma 12, Lemma 14 and Lemma 15.
package core

import (
	"hotpotato/internal/routing"
	"hotpotato/internal/sim"
)

// restrictedRank orders packets for the Section-4 class: restricted packets
// before non-restricted ones (Definition 18), and, within restricted,
// type A before type B by default, so that a type-A packet is never
// deflected and its spare-potential countdown is never interrupted.
func restrictedRank(ns *sim.NodeState, i int, typeAFirst bool) int {
	pi := ns.Info(i)
	switch {
	case pi.Restricted && pi.TypeA == typeAFirst:
		return 0
	case pi.Restricted:
		return 1
	default:
		return 2
	}
}

// NewRestrictedPriority returns the paper's Section-4 policy for the
// two-dimensional mesh (it is well defined and greedy in any dimension): a
// greedy policy that prefers restricted packets, with type-A restricted
// packets served first, random tie-breaking and random deflections.
// Theorem 20 bounds its routing time on the n x n mesh by 8*sqrt(2)*n*sqrt(k).
func NewRestrictedPriority() sim.Policy {
	return routing.NewCustomRank("restricted-priority",
		func(ns *sim.NodeState, i int) int { return restrictedRank(ns, i, true) },
		true, routing.DeflectRandom)
}

// NewRestrictedPriorityDeterministic returns a fully deterministic member
// of the Section-4 class: ties are broken by packet ID and deflections are
// first-fit. Theorem 20 applies to the entire class, so even this
// determinized variant must terminate within the bound — no livelock is
// possible, which makes it a sharp end-to-end test of both the theorem and
// this implementation.
func NewRestrictedPriorityDeterministic() sim.Policy {
	return routing.NewCustom("restricted-priority-det",
		func(ns *sim.NodeState, i, j int) bool {
			ri, rj := restrictedRank(ns, i, true), restrictedRank(ns, j, true)
			if ri != rj {
				return ri < rj
			}
			return ns.Packets[i].ID < ns.Packets[j].ID
		},
		false, routing.DeflectFirstFit)
}

// NewRestrictedPriorityTypeBFirst returns the Section-4 class member that
// serves type-B restricted packets before type-A ones. It still prefers
// restricted packets (Definition 18 holds), but unlike the default variant
// it routinely deflects type-A packets, exercising the spare-potential
// switch rule (case 3(b) of the potential definition, Figure 6).
func NewRestrictedPriorityTypeBFirst() sim.Policy {
	return routing.NewCustomRank("restricted-priority-bfirst",
		func(ns *sim.NodeState, i int) int { return restrictedRank(ns, i, false) },
		true, routing.DeflectRandom)
}

// NewFewestGoodFirst returns the Section-5 d-dimensional policy class
// member: packets with fewer good directions get priority (generalizing
// restricted-first), packets that advanced in the previous step ("type A"
// of their class) are preferred within a class, and the number of advancing
// packets is maximized at every node (the extra requirement Section 5 adds
// to make the d-dimensional analysis go through; the priority-ordered
// augmenting matching in package routing guarantees it).
func NewFewestGoodFirst() sim.Policy {
	return routing.NewCustomRank("fewest-good-first",
		func(ns *sim.NodeState, i int) int {
			// Rank by good count, and within a class prefer packets that
			// advanced in the previous step (the d-dimensional "type A").
			r := 2 * ns.Info(i).GoodCount
			if !ns.Packets[i].AdvancedPrev {
				r++
			}
			return r
		},
		true, routing.DeflectRandom)
}
