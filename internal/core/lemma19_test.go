package core

import (
	"fmt"
	"testing"

	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
)

// TestLemma19Exhaustive verifies Lemma 19 / Property 8 at the node level
// EXHAUSTIVELY, independent of any concrete policy: for every realizable
// configuration of up to four packets in an interior node of a 2-D mesh
// (each packet characterized by its good-direction set and, if restricted,
// its type A/B), and for EVERY outgoing-arc assignment that satisfies the
// hot-potato constraint, Definition 6 (greediness) and Definition 18
// (restricted preference), the node loses at least l potential units when
// l <= 2 and at least 4 - l units otherwise.
//
// Configurations are realized as two-step synthetic traces: step 0 brings
// each packet into the center node through a distinct in-arc with exactly
// the history flags (advanced/restricted in the previous step) that its
// kind requires — in particular, type-A packets arrive advancing along
// their unique good direction, which also shows why two type-A packets can
// never share a good direction (they would need the same in-arc). Step 1
// is the assignment under test, applied to a fresh tracker each time.
//
// The node's potential loss is independent of how far a type-A countdown
// has progressed (an advancing type-A packet loses 3 whatever its C, and
// the deflection switch makes the deflected/deflector pair lose exactly 2),
// so verifying one C value per shape covers all of them.
func TestLemma19Exhaustive(t *testing.T) {
	m := mesh.MustNew(2, 9)
	center := m.ID([]int{4, 4})

	// Packet kinds: restricted (4 directions x type A/B) + non-restricted
	// (4 good-set pairs, one direction per axis).
	type kind struct {
		name  string
		good  []mesh.Dir
		typeA bool
	}
	var kinds []kind
	for a := 0; a < 2; a++ {
		for _, dir := range []mesh.Dir{mesh.DirPlus(a), mesh.DirMinus(a)} {
			kinds = append(kinds,
				kind{fmt.Sprintf("A%v", dir), []mesh.Dir{dir}, true},
				kind{fmt.Sprintf("B%v", dir), []mesh.Dir{dir}, false},
			)
		}
	}
	for _, d0 := range []mesh.Dir{mesh.DirPlus(0), mesh.DirMinus(0)} {
		for _, d1 := range []mesh.Dir{mesh.DirPlus(1), mesh.DirMinus(1)} {
			kinds = append(kinds, kind{fmt.Sprintf("N%v%v", d0, d1), []mesh.Dir{d0, d1}, false})
		}
	}

	// dstFor returns a destination placing the packet at distance 2 per
	// good axis from the center (so step-1 moves never arrive).
	dstFor := func(k kind) mesh.NodeID {
		id := center
		for _, g := range k.good {
			n1, _ := m.Neighbor(id, g)
			n2, _ := m.Neighbor(n1, g)
			id = n2
		}
		return id
	}

	// entryOptions lists the legal in-arcs (as the direction of travel into
	// the center) realizing the kind's history flags.
	entryOptions := func(k kind) []mesh.Dir {
		if k.typeA {
			// Must arrive advancing along its unique good direction.
			return []mesh.Dir{k.good[0]}
		}
		if len(k.good) == 1 {
			// Type B: anything EXCEPT advancing along the good direction
			// (that would make it type A).
			var opts []mesh.Dir
			for d := mesh.Dir(0); d < 4; d++ {
				if d != k.good[0] {
					opts = append(opts, d)
				}
			}
			return opts
		}
		// Non-restricted: any in-arc.
		return []mesh.Dir{0, 1, 2, 3}
	}

	// Enumerate multisets of kinds of size 1..4 (combinations with
	// repetition, at most one type-A kind per direction by construction of
	// the kind list — repetitions of the same type-A kind are skipped
	// because they would need the same in-arc).
	var cfgCount, assignCount int
	var packetsBuf [4]kind

	var enumerate func(start, depth, size int)
	checkConfig := func(cfg []kind) {
		// Match packets to distinct in-arcs (backtracking).
		entries := make([]mesh.Dir, len(cfg))
		var usedIn [4]bool
		var matched bool
		var match func(i int) bool
		match = func(i int) bool {
			if i == len(cfg) {
				return true
			}
			for _, e := range entryOptions(cfg[i]) {
				if usedIn[e] {
					continue
				}
				usedIn[e] = true
				entries[i] = e
				if match(i + 1) {
					return true
				}
				usedIn[e] = false
			}
			return false
		}
		matched = match(0)
		if !matched {
			return // unrealizable (e.g. two type-A packets on one line)
		}
		cfgCount++

		// Build the step-0 moves bringing every packet into the center.
		mkPackets := func() ([]*sim.Packet, []sim.Move) {
			var packets []*sim.Packet
			var moves []sim.Move
			for i, k := range cfg {
				src, _ := m.Neighbor(center, entries[i].Opposite())
				p := sim.NewPacket(i, src, dstFor(k))
				packets = append(packets, p)
				moves = append(moves, synthMove(m, p, src, entries[i], false, false))
			}
			return packets, moves
		}

		// Sanity: after step 0 the classification matches the kind.
		{
			packets, step0 := mkPackets()
			tr := NewTracker(m, packets, TrackerOptions{})
			rec0 := sim.StepRecord{Time: 0, Moves: step0}
			tr.OnStep(&rec0)
			for i, k := range cfg {
				p := packets[i]
				good := m.GoodDirCount(center, p.Dst)
				if good != len(k.good) {
					t.Fatalf("config %v: packet %d good count %d, want %d", cfg, i, good, len(k.good))
				}
				wasRestr := m.GoodDirCount(step0[i].From, p.Dst) == 1
				isTypeA := good == 1 && wasRestr && step0[i].Advanced
				if isTypeA != k.typeA {
					t.Fatalf("config %v: packet %d typeA=%v, want %v", cfg, i, isTypeA, k.typeA)
				}
			}
		}

		// Enumerate all injective out-assignments for step 1 and test the
		// legal ones.
		dirs := []mesh.Dir{0, 1, 2, 3}
		var usedOut [4]bool
		assign := make([]mesh.Dir, len(cfg))
		var rec func(i int)
		rec = func(i int) {
			if i < len(cfg) {
				for _, d := range dirs {
					if usedOut[d] {
						continue
					}
					usedOut[d] = true
					assign[i] = d
					rec(i + 1)
					usedOut[d] = false
				}
				return
			}
			// Legality: Definition 6 and Definition 18 at this node.
			advViaDir := map[mesh.Dir]int{}
			for j, k := range cfg {
				if isGoodOf(k.good, assign[j]) {
					advViaDir[assign[j]] = j + 1 // 1-based
				}
			}
			for j, k := range cfg {
				if isGoodOf(k.good, assign[j]) {
					continue // advancing
				}
				for _, g := range k.good {
					u := advViaDir[g]
					if u == 0 {
						return // not greedy: free good arc
					}
					if len(k.good) == 1 && len(cfg[u-1].good) != 1 {
						return // Definition 18: non-restricted deflects restricted
					}
				}
			}
			assignCount++

			// Replay both steps on a fresh tracker; Property 8 is checked
			// inside OnStep for every node.
			packets, step0 := mkPackets()
			tr := NewTracker(m, packets, TrackerOptions{})
			rec0 := sim.StepRecord{Time: 0, Moves: step0}
			tr.OnStep(&rec0)
			// The setup step itself is not a class-legal step (it teleports
			// history into place), so only violations added by the step
			// under test count.
			before := tr.Violations().Property8
			var step1 []sim.Move
			for j, p := range packets {
				wasRestricted := len(cfg[j].good) == 1
				step1 = append(step1, synthMove(m, p, center, assign[j], wasRestricted, cfg[j].typeA))
			}
			rec1 := sim.StepRecord{Time: 1, Moves: step1}
			tr.OnStep(&rec1)
			if v := tr.Violations(); v.Property8 > before {
				t.Fatalf("Property 8 violated for config %v assignment %v: %s", cfg, assign[:len(cfg)], v.String())
			}
		}
		rec(0)
	}

	enumerate = func(start, depth, size int) {
		if depth == size {
			checkConfig(packetsBuf[:size])
			return
		}
		for ki := start; ki < len(kinds); ki++ {
			packetsBuf[depth] = kinds[ki]
			enumerate(ki, depth+1, size)
		}
	}
	for size := 1; size <= 4; size++ {
		enumerate(0, 0, size)
	}

	if cfgCount < 1000 || assignCount < 4000 {
		t.Fatalf("exhaustiveness check: only %d configs, %d legal assignments enumerated", cfgCount, assignCount)
	}
	t.Logf("verified Property 8 on %d node configurations, %d legal assignments", cfgCount, assignCount)
}

func isGoodOf(good []mesh.Dir, d mesh.Dir) bool {
	for _, g := range good {
		if g == d {
			return true
		}
	}
	return false
}
