package core

import (
	"testing"

	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
)

// synthMove builds a Move for a hand-constructed step record. The packet's
// fields are set to the pre-move state the tracker expects to read.
func synthMove(m *mesh.Mesh, p *sim.Packet, from mesh.NodeID, dir mesh.Dir, wasRestricted, wasTypeA bool) sim.Move {
	to, ok := m.Neighbor(from, dir)
	if !ok {
		panic("synthMove: off mesh")
	}
	good := m.GoodDirCount(from, p.Dst)
	return sim.Move{
		Packet:        p,
		From:          from,
		To:            to,
		Dir:           dir,
		Advanced:      m.IsGoodDir(from, p.Dst, dir),
		GoodCount:     good,
		WasRestricted: good == 1,
		WasTypeA:      wasTypeA,
		ArrivedNow:    to == p.Dst,
	}
}

// TestTrackerSyntheticAdvance: one non-restricted packet advancing loses
// exactly one unit (distance only; spare stays 2n).
func TestTrackerSyntheticAdvance(t *testing.T) {
	m := mesh.MustNew(2, 8)
	p := sim.NewPacket(0, m.ID([]int{1, 1}), m.ID([]int{4, 4}))
	tr := NewTracker(m, []*sim.Packet{p}, TrackerOptions{})
	if tr.Phi0() != int64(6+16) {
		t.Fatalf("Phi0 = %d, want 22", tr.Phi0())
	}
	mv := synthMove(m, p, p.Node, mesh.DirPlus(0), false, false)
	rec := sim.StepRecord{Time: 0, Moves: []sim.Move{mv}}
	tr.OnStep(&rec)
	if tr.Phi() != 21 {
		t.Errorf("Phi after advance = %d, want 21", tr.Phi())
	}
	if v := tr.Violations(); v.Any() {
		t.Errorf("violations: %s", v.String())
	}
}

// TestTrackerSyntheticDeflectionCompensated: a node with one advancing
// type-A restricted packet (burns 3: 1 distance + 2 spare) and one
// deflected non-restricted packet (+1) nets a loss of 2 = l; Property 8
// holds exactly.
func TestTrackerSyntheticDeflectionCompensated(t *testing.T) {
	m := mesh.MustNew(2, 8)
	node := m.ID([]int{3, 3})
	// a: restricted toward +x0 (same row as destination), type A.
	a := sim.NewPacket(0, node, m.ID([]int{6, 3}))
	a.RestrictedPrev, a.AdvancedPrev = true, true
	// b: two good dirs (+x0, +x1); its +x0 is taken by a; b is deflected
	// to -x1 even though +x1 is free — this violates Definition 6, but the
	// tracker is not the validator; Property 8 must still hold for the
	// node loss computation as long as potentials are accounted.
	b := sim.NewPacket(1, node, m.ID([]int{6, 6}))
	b.Node = node
	tr := NewTracker(m, []*sim.Packet{a, b}, TrackerOptions{})
	phi0 := tr.Phi0() // a: 3+16=19, b: 6+16=22 -> 41
	if phi0 != 41 {
		t.Fatalf("Phi0 = %d, want 41", phi0)
	}
	rec := sim.StepRecord{Time: 0, Moves: []sim.Move{
		synthMove(m, a, node, mesh.DirPlus(0), true, true),
		synthMove(m, b, node, mesh.DirMinus(1), false, false),
	}}
	tr.OnStep(&rec)
	// a: dist 2, type A after -> C = 14, phi 16 (was 19, -3).
	// b: dist 7, C = 16, phi 23 (was 22, +1).
	if tr.Phi() != 39 {
		t.Errorf("Phi = %d, want 39", tr.Phi())
	}
	if v := tr.Violations(); v.Property8 != 0 {
		t.Errorf("Property8 violations = %d, want 0 (loss exactly 2 for l=2)", v.Property8)
	}
}

// TestTrackerSyntheticProperty8Violation: two deflected packets and one
// plain (non-type-A) advancing packet lose 1 - 2 = -1 < l... a crafted
// illegal step must be flagged.
func TestTrackerSyntheticProperty8Violation(t *testing.T) {
	m := mesh.MustNew(2, 8)
	node := m.ID([]int{3, 3})
	dst := m.ID([]int{6, 6})
	// Three packets with the same far destination; only one advances, two
	// deflected, and the advancing one is NOT restricted (no spare burn):
	// node loss = 1 - 2 = -1 < 3 (l = 3 > d=2 requires >= 2d - l = 1).
	a := sim.NewPacket(0, node, dst)
	b := sim.NewPacket(1, node, dst)
	c := sim.NewPacket(2, node, dst)
	tr := NewTracker(m, []*sim.Packet{a, b, c}, TrackerOptions{})
	rec := sim.StepRecord{Time: 0, Moves: []sim.Move{
		synthMove(m, a, node, mesh.DirPlus(0), false, false),  // advances
		synthMove(m, b, node, mesh.DirMinus(0), false, false), // deflected
		synthMove(m, c, node, mesh.DirMinus(1), false, false), // deflected
	}}
	tr.OnStep(&rec)
	if v := tr.Violations(); v.Property8 != 1 {
		t.Errorf("Property8 violations = %d, want 1 (loss -1 < 1)", v.Property8)
	}
}

// TestTrackerSyntheticArrival: arrival zeroes the packet's entire
// potential.
func TestTrackerSyntheticArrival(t *testing.T) {
	m := mesh.MustNew(2, 8)
	p := sim.NewPacket(0, m.ID([]int{3, 3}), m.ID([]int{4, 3}))
	tr := NewTracker(m, []*sim.Packet{p}, TrackerOptions{})
	if tr.Phi0() != 17 {
		t.Fatalf("Phi0 = %d, want 17", tr.Phi0())
	}
	rec := sim.StepRecord{Time: 0, Moves: []sim.Move{
		synthMove(m, p, p.Node, mesh.DirPlus(0), true, false),
	}}
	tr.OnStep(&rec)
	if tr.Phi() != 0 {
		t.Errorf("Phi after arrival = %d, want 0", tr.Phi())
	}
	if v := tr.Violations(); v.Any() {
		t.Errorf("violations: %s", v.String())
	}
}

// TestTrackerSurfaceArcsSynthetic: craft a bad node in the middle and at
// the edge and check F(t) against Definition 11 by hand.
func TestTrackerSurfaceArcsSynthetic(t *testing.T) {
	m := mesh.MustNew(2, 8)
	center := m.ID([]int{4, 4})
	dst := m.ID([]int{7, 7})
	// Three packets in one interior node: bad (l > d = 2). All its four
	// 2-neighbors are empty (good), so F = 4.
	var moves []sim.Move
	var packets []*sim.Packet
	dirs := []mesh.Dir{mesh.DirPlus(0), mesh.DirPlus(1), mesh.DirMinus(0)}
	for i := 0; i < 3; i++ {
		p := sim.NewPacket(i, center, dst)
		packets = append(packets, p)
		moves = append(moves, synthMove(m, p, center, dirs[i], false, false))
	}
	tr := NewTracker(m, packets, TrackerOptions{RecordSeries: true})
	rec := sim.StepRecord{Time: 0, Moves: moves}
	tr.OnStep(&rec)
	s := tr.Series()[0]
	if s.BadNodes != 1 || s.Bad != 3 || s.Good != 0 {
		t.Fatalf("bad accounting: %+v", s)
	}
	if s.SurfaceArcs != 4 {
		t.Errorf("F(t) = %d, want 4", s.SurfaceArcs)
	}

	// Corner node (0,0): its 2-neighbors exist only in +x0 and +x1; the
	// two directions pointing off the mesh are surface arcs too: F = 4.
	corner := m.ID([]int{0, 0})
	var cmoves []sim.Move
	var cpackets []*sim.Packet
	cdirs := []mesh.Dir{mesh.DirPlus(0), mesh.DirPlus(1)}
	for i := 0; i < 2; i++ {
		p := sim.NewPacket(i, corner, dst)
		cpackets = append(cpackets, p)
		cmoves = append(cmoves, synthMove(m, p, corner, cdirs[i], false, false))
	}
	// Third packet to make the corner bad (l = 3 > 2). Corner degree is 2,
	// so a real engine could never hold 3 there; the tracker is pure
	// accounting, which is exactly what we want to probe. Route it via
	// +x0? taken. Use a synthetic duplicate-arc move: the tracker does not
	// police arc capacity (the engine does), so reuse +x0.
	p3 := sim.NewPacket(2, corner, dst)
	cpackets = append(cpackets, p3)
	cmoves = append(cmoves, synthMove(m, p3, corner, mesh.DirPlus(0), false, false))
	tr2 := NewTracker(m, cpackets, TrackerOptions{RecordSeries: true})
	rec2 := sim.StepRecord{Time: 0, Moves: cmoves}
	tr2.OnStep(&rec2)
	s2 := tr2.Series()[0]
	if s2.SurfaceArcs != 4 {
		t.Errorf("corner F(t) = %d, want 4 (2 off-mesh + 2 empty 2-neighbors)", s2.SurfaceArcs)
	}
}

// TestTrackerAdjacentBadNodesShareNoSurface: two bad nodes that are
// 2-neighbors shield each other on the connecting direction.
func TestTrackerAdjacentBadNodesShareNoSurface(t *testing.T) {
	m := mesh.MustNew(2, 8)
	a := m.ID([]int{2, 2})
	b := m.ID([]int{4, 2}) // 2-neighbor of a in +x0
	dst := m.ID([]int{7, 7})
	var moves []sim.Move
	var packets []*sim.Packet
	id := 0
	for _, node := range []mesh.NodeID{a, b} {
		for i, dir := range []mesh.Dir{mesh.DirPlus(0), mesh.DirPlus(1), mesh.DirMinus(0)} {
			_ = i
			p := sim.NewPacket(id, node, dst)
			id++
			packets = append(packets, p)
			moves = append(moves, synthMove(m, p, node, dir, false, false))
		}
	}
	tr := NewTracker(m, packets, TrackerOptions{RecordSeries: true})
	rec := sim.StepRecord{Time: 0, Moves: moves}
	tr.OnStep(&rec)
	s := tr.Series()[0]
	if s.BadNodes != 2 {
		t.Fatalf("BadNodes = %d", s.BadNodes)
	}
	// Each bad node has 4 directions; the one pointing at the other bad
	// node is not a surface arc: 2 * (4 - 1) = 6.
	if s.SurfaceArcs != 6 {
		t.Errorf("F(t) = %d, want 6", s.SurfaceArcs)
	}
}
