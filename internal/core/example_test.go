package core_test

import (
	"fmt"
	"math/rand"

	"hotpotato/internal/analysis"
	"hotpotato/internal/core"
	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
	"hotpotato/internal/workload"
)

// The full pipeline: build a mesh, generate a workload, route it with the
// paper's restricted-priority greedy algorithm under strict validation,
// and check every potential-function invariant live.
func Example() {
	m := mesh.MustNew(2, 8)
	rng := rand.New(rand.NewSource(1))
	packets, err := workload.UniformRandom(m, 32, rng)
	if err != nil {
		panic(err)
	}

	engine, err := sim.New(m, core.NewRestrictedPriority(), packets, sim.Options{
		Seed:       1,
		Validation: sim.ValidateRestricted, // Definitions 6 and 18, every step
	})
	if err != nil {
		panic(err)
	}
	tracker := core.NewTracker(m, packets, core.TrackerOptions{})
	engine.AddObserver(tracker)

	result, err := engine.Run()
	if err != nil {
		panic(err)
	}

	bound := analysis.Theorem20Bound(m.Side(), result.Total)
	fmt.Printf("delivered %d/%d\n", result.Delivered, result.Total)
	fmt.Printf("within Theorem 20 bound: %v\n", float64(result.Steps) <= bound)
	fmt.Printf("invariants: %s\n", tracker.Violations())
	fmt.Printf("final potential: %d\n", tracker.Phi())
	// Output:
	// delivered 32/32
	// within Theorem 20 bound: true
	// invariants: no violations
	// final potential: 0
}
