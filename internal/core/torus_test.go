package core

import (
	"math"
	"math/rand"
	"testing"

	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
	"hotpotato/internal/workload"
)

// TestRestrictedPriorityOnTorus: the Section-4 policies remain legal
// (greedy + restricted-preferring) on the torus and deliver everything.
// The potential-function theory targets the mesh, so only the geometric
// Lemma 14 and the tracker's own bookkeeping are asserted here; the other
// counters are measurements.
func TestRestrictedPriorityOnTorus(t *testing.T) {
	m := mesh.MustNewTorus(2, 8)
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		packets, err := workload.UniformRandom(m, 100, rng)
		if err != nil {
			t.Fatal(err)
		}
		res, tr := run(t, m, NewRestrictedPriority(), packets, sim.ValidateRestricted, seed)
		if res.Delivered != res.Total {
			t.Fatalf("seed %d: %d/%d delivered", seed, res.Delivered, res.Total)
		}
		v := tr.Violations()
		if v.Conservation > 0 {
			t.Errorf("seed %d: tracker bookkeeping drifted", seed)
		}
		if v.Lemma14 > 0 {
			t.Errorf("seed %d: Lemma 14 violated on torus (geometry must hold: toroidal volumes also obey Claim 13)", seed)
		}
	}
}

// TestTorusPacketsNeverDeflectOffShortestRegion: on a torus a "wrap-split"
// packet (axis offset exactly n/2) has two good directions on that axis;
// check the engine's restricted classification follows GoodDirCount.
func TestTorusGoodCountClassification(t *testing.T) {
	m := mesh.MustNewTorus(2, 8)
	// Offset (4, 0): exactly opposite on axis 0 => 2 good dirs, not
	// restricted even though only one axis differs.
	p := sim.NewPacket(0, m.ID([]int{0, 0}), m.ID([]int{4, 0}))
	e, err := sim.New(m, NewRestrictedPriority(), []*sim.Packet{p}, sim.Options{
		Seed: 1, Validation: sim.ValidateRestricted,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 4 {
		t.Errorf("wrap-split packet took %d steps, want 4", res.Steps)
	}
}

// TestTorusFasterThanMesh: identical instances route at least as fast on
// the torus in expectation (distances only shrink).
func TestTorusFasterThanMesh(t *testing.T) {
	const n = 8
	mm := mesh.MustNew(2, n)
	mt := mesh.MustNewTorus(2, n)
	var sumMesh, sumTorus float64
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		perm := rng.Perm(mm.Size())
		mk := func() []*sim.Packet {
			ps := make([]*sim.Packet, len(perm))
			for i, d := range perm {
				ps[i] = sim.NewPacket(i, mesh.NodeID(i), mesh.NodeID(d))
			}
			return ps
		}
		resMesh, _ := run(t, mm, NewRestrictedPriority(), mk(), sim.ValidateRestricted, seed)
		resTorus, _ := run(t, mt, NewRestrictedPriority(), mk(), sim.ValidateRestricted, seed)
		sumMesh += float64(resMesh.Steps)
		sumTorus += float64(resTorus.Steps)
	}
	if sumTorus >= sumMesh {
		t.Errorf("torus mean steps %.1f not below mesh %.1f", sumTorus/5, sumMesh/5)
	}
}

// TestTheorem20StyleBoundOnTorus: Theorem 17's generic machinery would give
// a bound with M = 2n + diam on any network where Property 8 holds; on the
// torus we simply check the (mesh) Theorem 20 value is still respected —
// the torus is strictly better connected, so exceeding it would be
// astonishing.
func TestTheorem20StyleBoundOnTorus(t *testing.T) {
	m := mesh.MustNewTorus(2, 10)
	rng := rand.New(rand.NewSource(7))
	packets, err := workload.UniformRandom(m, 200, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := run(t, m, NewRestrictedPriority(), packets, sim.ValidateRestricted, 7)
	bound := 8 * math.Sqrt2 * 10 * math.Sqrt(200)
	if float64(res.Steps) > bound {
		t.Errorf("torus run %d steps exceeds mesh bound %.0f", res.Steps, bound)
	}
}
