package core

import (
	"fmt"
	"testing"

	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
)

// TestBurn4PotentialExhaustive3D settles the E18 question at the node
// level, and the answer is NEGATIVE: on the 3-dimensional mesh, the
// restricted-based Figure-6 rules with burn = 2(d-1) = 4 — which produced
// zero violations on E18's traffic — do NOT satisfy Property 8 for the
// whole class. The exhaustive sweep finds counterexamples, the smallest
// being three packets sharing the good set {+x0, +x1}: a class-legal
// assignment advances two of them and deflects the third (Definition 6
// holds — both good arcs carry advancing packets), so the node loses only
// 2 < l = 3, and no restricted packet is present to burn spare potential.
//
// The test therefore asserts three facts:
//  1. counterexamples exist (E18's clean burn-4 column was traffic luck,
//     not node-level validity);
//  2. the canonical counterexample above violates;
//  3. every violating configuration contains a non-restricted packet —
//     the restricted-only subspace is clean, so what d >= 3 genuinely
//     needs is spare-burning for NON-restricted classes too, which is
//     exactly the "compensate for all the packets it may deflect"
//     complexity the paper defers to the thesis.
//
// Enumeration: all multisets of up to 3 packets over the full 32-kind
// space (restricted x type A/B, 2-good, 3-good), plus all multisets of 4
// restricted packets (the contention-heavy l > d shape). Entry arcs and
// histories are realized as in TestLemma19Exhaustive.
func TestBurn4PotentialExhaustive3D(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive 3-D sweep skipped in -short mode")
	}
	m := mesh.MustNew(3, 9)
	center := m.ID([]int{4, 4, 4})
	d := 3
	dirCount := 2 * d

	type kind struct {
		name  string
		good  []mesh.Dir
		typeA bool
	}
	var kinds []kind
	// Restricted kinds: 6 directions x {A, B}.
	for dir := mesh.Dir(0); int(dir) < dirCount; dir++ {
		kinds = append(kinds,
			kind{fmt.Sprintf("A%v", dir), []mesh.Dir{dir}, true},
			kind{fmt.Sprintf("B%v", dir), []mesh.Dir{dir}, false},
		)
	}
	// 2-good kinds: one direction on each of two distinct axes.
	for a0 := 0; a0 < d; a0++ {
		for a1 := a0 + 1; a1 < d; a1++ {
			for _, d0 := range []mesh.Dir{mesh.DirPlus(a0), mesh.DirMinus(a0)} {
				for _, d1 := range []mesh.Dir{mesh.DirPlus(a1), mesh.DirMinus(a1)} {
					kinds = append(kinds, kind{fmt.Sprintf("G%v%v", d0, d1), []mesh.Dir{d0, d1}, false})
				}
			}
		}
	}
	restrictedKinds := 2 * dirCount
	// 3-good kinds: one direction per axis.
	for _, d0 := range []mesh.Dir{mesh.DirPlus(0), mesh.DirMinus(0)} {
		for _, d1 := range []mesh.Dir{mesh.DirPlus(1), mesh.DirMinus(1)} {
			for _, d2 := range []mesh.Dir{mesh.DirPlus(2), mesh.DirMinus(2)} {
				kinds = append(kinds, kind{fmt.Sprintf("T%v%v%v", d0, d1, d2), []mesh.Dir{d0, d1, d2}, false})
			}
		}
	}

	dstFor := func(k kind) mesh.NodeID {
		id := center
		for _, g := range k.good {
			n1, _ := m.Neighbor(id, g)
			n2, _ := m.Neighbor(n1, g)
			id = n2
		}
		return id
	}
	entryOptions := func(k kind) []mesh.Dir {
		if k.typeA {
			return []mesh.Dir{k.good[0]}
		}
		if len(k.good) == 1 {
			var opts []mesh.Dir
			for dir := mesh.Dir(0); int(dir) < dirCount; dir++ {
				if dir != k.good[0] {
					opts = append(opts, dir)
				}
			}
			return opts
		}
		opts := make([]mesh.Dir, dirCount)
		for i := range opts {
			opts[i] = mesh.Dir(i)
		}
		return opts
	}

	trOpts := TrackerOptions{Burn: 4, Spare0: 4 * m.Side()}

	var cfgCount, assignCount, violations, violationsWithOnlyRestricted int
	var canonicalHit bool
	isCanonical := func(cfg []kind) bool {
		if len(cfg) != 3 {
			return false
		}
		for _, k := range cfg {
			if len(k.good) != 2 || k.good[0] != mesh.DirPlus(0) || k.good[1] != mesh.DirPlus(1) {
				return false
			}
		}
		return true
	}
	checkConfig := func(cfg []kind) {
		entries := make([]mesh.Dir, len(cfg))
		var usedIn [2 * mesh.MaxDim]bool
		var match func(i int) bool
		match = func(i int) bool {
			if i == len(cfg) {
				return true
			}
			for _, e := range entryOptions(cfg[i]) {
				if usedIn[e] {
					continue
				}
				usedIn[e] = true
				entries[i] = e
				if match(i + 1) {
					return true
				}
				usedIn[e] = false
			}
			return false
		}
		if !match(0) {
			return
		}
		cfgCount++

		mkSetup := func() ([]*sim.Packet, []sim.Move) {
			var packets []*sim.Packet
			var moves []sim.Move
			for i, k := range cfg {
				src, _ := m.Neighbor(center, entries[i].Opposite())
				p := sim.NewPacket(i, src, dstFor(k))
				packets = append(packets, p)
				moves = append(moves, synthMove(m, p, src, entries[i], false, false))
			}
			return packets, moves
		}

		// Enumerate injective out-assignments and test the class-legal
		// ones.
		var usedOut [2 * mesh.MaxDim]bool
		assign := make([]mesh.Dir, len(cfg))
		var rec func(i int)
		rec = func(i int) {
			if i < len(cfg) {
				for dir := mesh.Dir(0); int(dir) < dirCount; dir++ {
					if usedOut[dir] {
						continue
					}
					usedOut[dir] = true
					assign[i] = dir
					rec(i + 1)
					usedOut[dir] = false
				}
				return
			}
			advViaDir := map[mesh.Dir]int{}
			for j, k := range cfg {
				if isGoodOf(k.good, assign[j]) {
					advViaDir[assign[j]] = j + 1
				}
			}
			for j, k := range cfg {
				if isGoodOf(k.good, assign[j]) {
					continue
				}
				for _, g := range k.good {
					u := advViaDir[g]
					if u == 0 {
						return // Definition 6 violated
					}
					if len(k.good) == 1 && len(cfg[u-1].good) != 1 {
						return // Definition 18 violated
					}
				}
			}
			assignCount++

			packets, step0 := mkSetup()
			tr := NewTracker(m, packets, trOpts)
			rec0 := sim.StepRecord{Time: 0, Moves: step0}
			tr.OnStep(&rec0)
			before := tr.Violations().Property8
			var step1 []sim.Move
			for j, p := range packets {
				wasRestricted := len(cfg[j].good) == 1
				step1 = append(step1, synthMove(m, p, center, assign[j], wasRestricted, cfg[j].typeA))
			}
			rec1 := sim.StepRecord{Time: 1, Moves: step1}
			tr.OnStep(&rec1)
			if v := tr.Violations(); v.Property8 > before {
				violations++
				if isCanonical(cfg) {
					canonicalHit = true
				}
				onlyRestricted := true
				for _, k := range cfg {
					if len(k.good) != 1 {
						onlyRestricted = false
					}
				}
				if onlyRestricted {
					violationsWithOnlyRestricted++
				}
			}
		}
		rec(0)
	}

	var buf [4]kind
	var enumerate func(start, depth, size, limit int)
	enumerate = func(start, depth, size, limit int) {
		if depth == size {
			checkConfig(buf[:size])
			return
		}
		for ki := start; ki < limit; ki++ {
			buf[depth] = kinds[ki]
			enumerate(ki, depth+1, size, limit)
		}
	}
	// All kinds for multisets of size 1..3.
	for size := 1; size <= 3; size++ {
		enumerate(0, 0, size, len(kinds))
	}
	// Restricted-only multisets of size 4 (l > d: the 2d - l regime with
	// maximal contention).
	enumerate(0, 0, 4, restrictedKinds)

	if cfgCount < 5000 {
		t.Fatalf("exhaustiveness check: only %d configs enumerated", cfgCount)
	}
	if violations == 0 {
		t.Fatal("expected counterexamples to the burn-4 conjecture; found none")
	}
	if !canonicalHit {
		t.Error("the canonical 3x{+x0,+x1} counterexample did not violate")
	}
	if violationsWithOnlyRestricted > 0 {
		t.Errorf("%d violations in the restricted-only subspace (expected clean)", violationsWithOnlyRestricted)
	}
	t.Logf("3-D sweep: %d configs, %d legal assignments, %d Property-8 violations (all involving non-restricted packets)",
		cfgCount, assignCount, violations)
}
