package core

import (
	"math"
	"math/rand"
	"testing"

	"hotpotato/internal/mesh"
	"hotpotato/internal/routing"
	"hotpotato/internal/sim"
	"hotpotato/internal/workload"
)

func run(t *testing.T, m *mesh.Mesh, pol sim.Policy, packets []*sim.Packet, lvl sim.ValidationLevel, seed int64) (*sim.Result, *Tracker) {
	t.Helper()
	e, err := sim.New(m, pol, packets, sim.Options{
		Seed:       seed,
		Validation: lvl,
		MaxSteps:   500000,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracker(m, packets, TrackerOptions{RecordSeries: true, SelfCheckEvery: 16})
	e.AddObserver(tr)
	res, err := e.Run()
	if err != nil {
		t.Fatalf("policy %s: %v", pol.Name(), err)
	}
	return res, tr
}

// TestSinglePacketTrace hand-checks the potential of one restricted packet
// walking straight home on an 8x8 mesh: phi = dist + C with C burning 2 per
// type-A step.
func TestSinglePacketTrace(t *testing.T) {
	m := mesh.MustNew(2, 8)
	p := sim.NewPacket(0, m.ID([]int{0, 2}), m.ID([]int{5, 2}))
	res, tr := run(t, m, NewRestrictedPriorityDeterministic(), []*sim.Packet{p}, sim.ValidateRestricted, 0)
	if res.Steps != 5 {
		t.Fatalf("Steps = %d, want 5", res.Steps)
	}
	want := []int64{21, 18, 15, 12, 9, 0}
	got := tr.PhiHistory()
	if len(got) != len(want) {
		t.Fatalf("PhiHistory = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PhiHistory = %v, want %v", got, want)
		}
	}
	if v := tr.Violations(); v.Any() {
		t.Errorf("violations: %s", v.String())
	}
}

// TestSwitchRuleTrace hand-checks the full Figure-6 rules, including the
// spare-potential switch (rule 3(b)), on a crafted three-packet scenario
// where a type-B restricted packet deflects a type-A one under the
// B-first member of the Section-4 class.
//
// Packets on the 8x8 mesh: q = (1,4)->(6,4), p = (2,3)->(6,4),
// b = (2,3)->(6,3). At t=1 node (2,4) holds type-A q and type-B p with the
// same unique good arc +x0; the B-first policy advances p, deflecting q,
// and p inherits q's countdown (C = 14-2 = 12 instead of the 14 rule 3(a)
// would give). The expected potential sequence distinguishes the two rules.
func TestSwitchRuleTrace(t *testing.T) {
	m := mesh.MustNew(2, 8)
	q := sim.NewPacket(0, m.ID([]int{1, 4}), m.ID([]int{6, 4}))
	p := sim.NewPacket(1, m.ID([]int{2, 3}), m.ID([]int{6, 4}))
	b := sim.NewPacket(2, m.ID([]int{2, 3}), m.ID([]int{6, 3}))
	// Deterministic B-first variant so the trace is exact.
	pol := routing.NewCustom("restricted-bfirst-det",
		func(ns *sim.NodeState, i, j int) bool {
			return restrictedRank(ns, i, false) < restrictedRank(ns, j, false)
		},
		false, routing.DeflectFirstFit)

	res, tr := run(t, m, pol, []*sim.Packet{q, p, b}, sim.ValidateRestricted, 0)
	if res.Steps != 7 {
		t.Fatalf("Steps = %d, want 7", res.Steps)
	}
	want := []int64{62, 55, 50, 41, 24, 12, 9, 0}
	got := tr.PhiHistory()
	if len(got) != len(want) {
		t.Fatalf("PhiHistory = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PhiHistory[%d] = %d, want %d (full: %v)", i, got[i], want[i], got)
		}
	}
	if q.Deflections != 1 || p.Deflections != 0 || b.Deflections != 0 {
		t.Errorf("deflections q=%d p=%d b=%d, want 1,0,0", q.Deflections, p.Deflections, b.Deflections)
	}
	if v := tr.Violations(); v.Any() {
		t.Errorf("violations: %s", v.String())
	}
}

// TestRestrictedPriorityPassesStrictValidation: every Section-4 variant
// satisfies Definitions 6 and 18 at every node of every step.
func TestRestrictedPriorityPassesStrictValidation(t *testing.T) {
	m := mesh.MustNew(2, 10)
	variants := []func() sim.Policy{
		NewRestrictedPriority,
		NewRestrictedPriorityDeterministic,
		NewRestrictedPriorityTypeBFirst,
	}
	for _, mk := range variants {
		pol := mk()
		t.Run(pol.Name(), func(t *testing.T) {
			for seed := int64(0); seed < 4; seed++ {
				rng := rand.New(rand.NewSource(seed))
				packets, err := workload.UniformRandom(m, 120, rng)
				if err != nil {
					t.Fatal(err)
				}
				res, _ := run(t, m, mk(), packets, sim.ValidateRestricted, seed)
				if res.Delivered != res.Total {
					t.Fatalf("seed %d: %d/%d delivered (%+v)", seed, res.Delivered, res.Total, res)
				}
			}
		})
	}
}

// theorem20 returns the Theorem-20 bound 8*sqrt(2)*n*sqrt(k).
func theorem20(n, k int) float64 {
	return 8 * math.Sqrt2 * float64(n) * math.Sqrt(float64(k))
}

// TestTrackerNoViolations2D is the empirical heart of the reproduction:
// for the default (type-A-first) Section-4 policies, every potential
// inequality of Sections 3-4 must hold at every node and every step, on a
// spread of workloads.
func TestTrackerNoViolations2D(t *testing.T) {
	m := mesh.MustNew(2, 10)
	rng := rand.New(rand.NewSource(3))
	workloads := map[string][]*sim.Packet{}
	if ps, err := workload.UniformRandom(m, 150, rng); err == nil {
		workloads["uniform"] = ps
	} else {
		t.Fatal(err)
	}
	workloads["permutation"] = workload.Permutation(m, rng)
	if ps, err := workload.HotSpot(m, 80, 0.5, rng); err == nil {
		workloads["hotspot"] = ps
	} else {
		t.Fatal(err)
	}
	if ps, err := workload.SingleTarget(m, 40, m.ID([]int{5, 5}), rng); err == nil {
		workloads["single-target"] = ps
	} else {
		t.Fatal(err)
	}
	if ps, err := workload.CornerRush(m, 40, rng); err == nil {
		workloads["corner-rush"] = ps
	} else {
		t.Fatal(err)
	}
	if ps, err := workload.Transpose(m); err == nil {
		workloads["transpose"] = ps
	} else {
		t.Fatal(err)
	}

	for name, packets := range workloads {
		for _, mk := range []func() sim.Policy{NewRestrictedPriority, NewRestrictedPriorityDeterministic} {
			pol := mk()
			t.Run(name+"/"+pol.Name(), func(t *testing.T) {
				// Fresh copies: the engine mutates packets.
				fresh := make([]*sim.Packet, len(packets))
				for i, p := range packets {
					fresh[i] = sim.NewPacket(p.ID, p.Src, p.Dst)
				}
				res, tr := run(t, m, pol, fresh, sim.ValidateRestricted, 17)
				if res.Delivered != res.Total {
					t.Fatalf("%d/%d delivered (%+v)", res.Delivered, res.Total, res)
				}
				if v := tr.Violations(); v.Any() {
					t.Errorf("violations: %s", v.String())
				}
				if tr.Phi() != 0 {
					t.Errorf("final Phi = %d, want 0", tr.Phi())
				}
				// Phi is monotone nonincreasing (Corollary 10).
				hist := tr.PhiHistory()
				for i := 1; i < len(hist); i++ {
					if hist[i] > hist[i-1] {
						t.Fatalf("Phi increased at step %d: %d -> %d", i-1, hist[i-1], hist[i])
					}
				}
				// Theorem 20: the routing time respects the bound.
				if float64(res.Steps) > theorem20(m.Side(), res.Total) {
					t.Errorf("Steps = %d exceeds Theorem 20 bound %.0f", res.Steps, theorem20(m.Side(), res.Total))
				}
				// MinSpare must stay positive: a type-A countdown never
				// reaches zero before arrival (C >= 2*dist + 2 invariant).
				if tr.MinSpare() <= 0 {
					t.Errorf("MinSpare = %d, want positive", tr.MinSpare())
				}
			})
		}
	}
}

// TestTypeBFirstStructuralInvariants: the B-first variant is a legal member
// of the class, so the node-local inequalities (Property 8 and everything
// derived from it) must still hold; the per-packet range claims are
// reported by the tracker and must also hold on these inputs.
func TestTypeBFirstStructuralInvariants(t *testing.T) {
	m := mesh.MustNew(2, 10)
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		packets, err := workload.UniformRandom(m, 150, rng)
		if err != nil {
			t.Fatal(err)
		}
		res, tr := run(t, m, NewRestrictedPriorityTypeBFirst(), packets, sim.ValidateRestricted, seed)
		if res.Delivered != res.Total {
			t.Fatalf("%d/%d delivered", res.Delivered, res.Total)
		}
		v := tr.Violations()
		if v.Property8+v.Corollary10+v.Lemma12+v.Lemma14+v.Lemma15+v.Conservation > 0 {
			t.Errorf("seed %d: structural violations: %s", seed, v.String())
		}
	}
}

// TestTheorem20AcrossSizes sweeps mesh sizes and packet counts.
func TestTheorem20AcrossSizes(t *testing.T) {
	for _, cfg := range []struct{ n, k int }{{4, 8}, {8, 32}, {12, 100}, {16, 256}} {
		m := mesh.MustNew(2, cfg.n)
		rng := rand.New(rand.NewSource(int64(cfg.n)))
		packets, err := workload.UniformRandom(m, cfg.k, rng)
		if err != nil {
			t.Fatal(err)
		}
		res, tr := run(t, m, NewRestrictedPriority(), packets, sim.ValidateRestricted, int64(cfg.k))
		if res.Delivered != res.Total {
			t.Fatalf("n=%d k=%d: %d/%d delivered", cfg.n, cfg.k, res.Delivered, res.Total)
		}
		if bound := theorem20(cfg.n, cfg.k); float64(res.Steps) > bound {
			t.Errorf("n=%d k=%d: Steps=%d > bound %.0f", cfg.n, cfg.k, res.Steps, bound)
		}
		if v := tr.Violations(); v.Any() {
			t.Errorf("n=%d k=%d: %s", cfg.n, cfg.k, v.String())
		}
	}
}

// TestFewestGoodFirstDDim: the Section-5 policy is greedy in d dimensions
// and finishes within the Section-5 bound. The potential tracker's 2-D
// rules are reconstructions for d >= 3 (see DESIGN.md), so only the
// always-true geometric Lemma 14 is asserted here.
func TestFewestGoodFirstDDim(t *testing.T) {
	for _, cfg := range []struct{ d, n, k int }{{3, 5, 100}, {4, 3, 80}} {
		m := mesh.MustNew(cfg.d, cfg.n)
		rng := rand.New(rand.NewSource(9))
		packets, err := workload.UniformRandom(m, cfg.k, rng)
		if err != nil {
			t.Fatal(err)
		}
		res, tr := run(t, m, NewFewestGoodFirst(), packets, sim.ValidateGreedy, 9)
		if res.Delivered != res.Total {
			t.Fatalf("d=%d: %d/%d delivered", cfg.d, res.Delivered, res.Total)
		}
		// Section-5 bound: 4^{d+1-1/d} * d^{1-1/d} * k^{1/d} * n^{d-1}.
		d, n, k := float64(cfg.d), float64(cfg.n), float64(res.Total)
		bound := math.Pow(4, d+1-1/d) * math.Pow(d, 1-1/d) * math.Pow(k, 1/d) * math.Pow(n, d-1)
		if float64(res.Steps) > bound {
			t.Errorf("d=%d: Steps=%d > Section-5 bound %.0f", cfg.d, res.Steps, bound)
		}
		if v := tr.Violations(); v.Lemma14 > 0 {
			t.Errorf("d=%d: Lemma 14 violated %d times (geometry must always hold)", cfg.d, v.Lemma14)
		}
		if v := tr.Violations(); v.Conservation > 0 {
			t.Errorf("d=%d: tracker bookkeeping drifted", cfg.d)
		}
	}
}

// TestRestrictedPriorityOnLine: d=1 degenerate case still works (every
// packet is restricted on a line).
func TestRestrictedPriorityOnLine(t *testing.T) {
	m := mesh.MustNew(1, 16)
	rng := rand.New(rand.NewSource(4))
	packets, err := workload.UniformRandom(m, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := run(t, m, NewRestrictedPriority(), packets, sim.ValidateRestricted, 4)
	if res.Delivered != res.Total {
		t.Fatalf("%d/%d delivered", res.Delivered, res.Total)
	}
}

// TestViolationsString covers the reporting helpers.
func TestViolationsString(t *testing.T) {
	var v Violations
	if v.Any() || v.String() != "no violations" {
		t.Errorf("zero Violations: Any=%v String=%q", v.Any(), v.String())
	}
	v.Property8 = 2
	if !v.Any() {
		t.Error("Any() = false with Property8 > 0")
	}
	if v.String() == "no violations" {
		t.Error("String() hides violations")
	}
}

// TestTrackerSeries: the recorded series is internally consistent.
func TestTrackerSeries(t *testing.T) {
	m := mesh.MustNew(2, 8)
	rng := rand.New(rand.NewSource(6))
	packets, err := workload.UniformRandom(m, 60, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, tr := run(t, m, NewRestrictedPriority(), packets, sim.ValidateRestricted, 6)
	series := tr.Series()
	if len(series) == 0 {
		t.Fatal("no series recorded")
	}
	if len(series) < res.Steps {
		t.Fatalf("series has %d entries for %d steps", len(series), res.Steps)
	}
	for i, s := range series {
		if s.Time != i {
			t.Fatalf("series[%d].Time = %d", i, s.Time)
		}
		if s.PhiAfter > s.PhiBefore {
			t.Fatalf("step %d: Phi increased", i)
		}
		if s.Good < 0 || s.Bad < 0 || s.SurfaceArcs < 0 {
			t.Fatalf("step %d: negative counters %+v", i, s)
		}
		if s.Advanced+s.Deflected == 0 && s.PhiBefore > 0 {
			t.Fatalf("step %d: no moves with positive potential", i)
		}
		if s.Bad > 0 && s.SurfaceArcs == 0 {
			t.Fatalf("step %d: bad nodes but no surface arcs", i)
		}
	}
}

// TestRestrictedPriorityParallelWorkers: the shipped policies are
// clonable, so the engine's parallel path accepts them; the run stays
// class-legal (full validation) and deterministic for a fixed seed.
func TestRestrictedPriorityParallelWorkers(t *testing.T) {
	m := mesh.MustNew(2, 12)
	runW := func(workers int) (int, int64) {
		rng := rand.New(rand.NewSource(77))
		packets, err := workload.UniformRandom(m, 150, rng)
		if err != nil {
			t.Fatal(err)
		}
		e, err := sim.New(m, NewRestrictedPriority(), packets, sim.Options{
			Seed:       77,
			Validation: sim.ValidateRestricted,
			Workers:    workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		tr := NewTracker(m, packets, TrackerOptions{SelfCheckEvery: 16})
		e.AddObserver(tr)
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Delivered != res.Total {
			t.Fatalf("workers=%d: %d/%d delivered", workers, res.Delivered, res.Total)
		}
		if v := tr.Violations(); v.Any() {
			t.Fatalf("workers=%d: %s", workers, v.String())
		}
		return res.Steps, res.TotalDeflections
	}
	s3, d3 := runW(3)
	s5, d5 := runW(5)
	if s3 != s5 || d3 != d5 {
		t.Errorf("worker-count dependence: (%d,%d) vs (%d,%d)", s3, d3, s5, d5)
	}
	// Deterministic class member: parallel equals serial exactly.
	det := func(workers int) (int, int64) {
		rng := rand.New(rand.NewSource(78))
		packets, err := workload.UniformRandom(m, 150, rng)
		if err != nil {
			t.Fatal(err)
		}
		e, err := sim.New(m, NewRestrictedPriorityDeterministic(), packets, sim.Options{
			Seed:       78,
			Validation: sim.ValidateRestricted,
			Workers:    workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Steps, res.TotalDeflections
	}
	s0, d0 := det(0)
	s4, d4 := det(4)
	if s0 != s4 || d0 != d4 {
		t.Errorf("deterministic parallel != serial: (%d,%d) vs (%d,%d)", s4, d4, s0, d0)
	}
}
