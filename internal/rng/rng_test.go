package rng

import (
	"math/rand"
	"testing"
)

func TestSplitMix64Deterministic(t *testing.T) {
	var a, b SplitMix64
	a.Seed(42)
	b.Seed(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed, different streams")
		}
	}
	a.Seed(42)
	first := a.Uint64()
	a.Seed(42)
	if a.Uint64() != first {
		t.Fatal("reseed does not reset the stream")
	}
}

func TestSplitMix64DistinctSeeds(t *testing.T) {
	var a, b SplitMix64
	a.Seed(1)
	b.Seed(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between distinct seeds", same)
	}
}

func TestWorksAsRandSource(t *testing.T) {
	src := &SplitMix64{}
	src.Seed(7)
	r := rand.New(src)
	counts := make([]int, 4)
	for i := 0; i < 4000; i++ {
		counts[r.Intn(4)]++
	}
	for v, c := range counts {
		if c < 800 || c > 1200 {
			t.Errorf("value %d drawn %d/4000 times: badly skewed", v, c)
		}
	}
	if src.Int63() < 0 {
		t.Error("Int63 returned negative")
	}
}

func TestMix(t *testing.T) {
	if Mix(1, 2, 3) == Mix(1, 2, 4) {
		t.Error("Mix collision on small change")
	}
	if Mix(1, 2, 3) == Mix(3, 2, 1) {
		t.Error("Mix is order-insensitive")
	}
	if Mix(5) != Mix(5) {
		t.Error("Mix not deterministic")
	}
	// Consecutive inputs spread across the space: low bits should differ.
	seen := map[int64]bool{}
	for i := int64(0); i < 1000; i++ {
		seen[Mix(i)&0xff] = true
	}
	if len(seen) < 200 {
		t.Errorf("low bits poorly spread: %d distinct of 256", len(seen))
	}
}
