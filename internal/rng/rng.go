// Package rng provides a tiny, cheaply reseedable PRNG (SplitMix64) used
// by the engine's parallel routing path: each (step, node) pair derives an
// independent stream from the engine seed, so tie-breaking is deterministic
// for a given seed AND independent of how nodes are partitioned among
// worker goroutines.
package rng

// SplitMix64 implements math/rand.Source64. The zero value is usable (it
// behaves as if seeded with 0); Seed is a single assignment, so reseeding
// per node-step costs nothing, unlike the stdlib's default source.
type SplitMix64 struct {
	state uint64
}

// Seed implements rand.Source.
func (s *SplitMix64) Seed(seed int64) { s.state = uint64(seed) }

// Uint64 implements rand.Source64 (Sebastiano Vigna's splitmix64).
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 implements rand.Source.
func (s *SplitMix64) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// State returns the generator's full internal state. Together with SetState
// it makes the stream checkpointable: the state is one word, so capturing
// and restoring it is exact and costs nothing.
func (s *SplitMix64) State() uint64 { return s.state }

// SetState restores a state previously returned by State; the subsequent
// output sequence continues exactly where the captured stream left off.
func (s *SplitMix64) SetState(state uint64) { s.state = state }

// Mix folds several values into one well-spread 64-bit seed (splitmix64
// finalizer over a running combination).
func Mix(values ...int64) int64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range values {
		h ^= uint64(v)
		h += 0x9e3779b97f4a7c15
		h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
		h = (h ^ (h >> 27)) * 0x94d049bb133111eb
		h ^= h >> 31
	}
	return int64(h)
}
