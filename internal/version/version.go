// Package version derives a build identification string from the
// information the Go toolchain embeds into every binary, so all commands
// can answer -version without a linker-flag build step: module version
// when built from a tagged module, VCS revision and dirty flag when built
// from a checkout, and the Go toolchain version either way.
package version

import (
	"fmt"
	"runtime/debug"
	"strings"
)

// String returns a one-line build description for the named command, e.g.
//
//	hotpotatod (devel) rev 1a2b3c4d (dirty) go1.24.0
//
// Binaries built without module/VCS metadata (go test binaries, plain
// `go run` of a file) degrade to whatever pieces are available.
func String(cmd string) string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return cmd + " (build info unavailable)"
	}
	return buildString(cmd, info)
}

// buildString renders the version line from explicit build info (split out
// so tests can exercise the formatting without controlling the toolchain).
func buildString(cmd string, info *debug.BuildInfo) string {
	var b strings.Builder
	b.WriteString(cmd)
	ver := info.Main.Version
	if ver == "" {
		ver = "(devel)"
	}
	fmt.Fprintf(&b, " %s", ver)
	var rev string
	dirty := false
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		fmt.Fprintf(&b, " rev %s", rev)
		if dirty {
			b.WriteString(" (dirty)")
		}
	}
	if info.GoVersion != "" {
		fmt.Fprintf(&b, " %s", info.GoVersion)
	}
	return b.String()
}
