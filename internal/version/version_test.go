package version

import (
	"runtime/debug"
	"strings"
	"testing"
)

func TestStringHasCommandName(t *testing.T) {
	s := String("mycmd")
	if !strings.HasPrefix(s, "mycmd") {
		t.Fatalf("String() = %q, want prefix %q", s, "mycmd")
	}
}

func TestBuildString(t *testing.T) {
	info := &debug.BuildInfo{
		GoVersion: "go1.24.0",
		Main:      debug.Module{Version: "v1.2.3"},
		Settings: []debug.BuildSetting{
			{Key: "vcs.revision", Value: "0123456789abcdef0123"},
			{Key: "vcs.modified", Value: "true"},
		},
	}
	got := buildString("hotpotatod", info)
	want := "hotpotatod v1.2.3 rev 0123456789ab (dirty) go1.24.0"
	if got != want {
		t.Fatalf("buildString = %q, want %q", got, want)
	}
}

func TestBuildStringDevel(t *testing.T) {
	info := &debug.BuildInfo{GoVersion: "go1.24.0"}
	got := buildString("sweep", info)
	if want := "sweep (devel) go1.24.0"; got != want {
		t.Fatalf("buildString = %q, want %q", got, want)
	}
}
