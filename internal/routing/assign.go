// Package routing provides the node-local assignment machinery shared by
// all greedy hot-potato policies, plus a family of baseline greedy policies.
//
// Every policy here (and in package core) is built on the same mechanism: a
// maximum matching between the packets of a node and their good arcs,
// computed with augmenting paths while processing packets in a
// policy-specific priority order. This construction gives the two
// structural guarantees the paper's definitions ask for:
//
//   - Definition 6 (greediness): the matching is maximum, so an unmatched
//     (deflected) packet can have no free good arc, and every leftover arc
//     handed to deflected packets is bad for all of them.
//   - Definition 18 (preferring restricted packets): a restricted packet
//     has a single good arc, so an augmenting path can never reroute it;
//     if restricted packets are processed first, their good arcs are owned
//     by restricted packets before any non-restricted packet is considered,
//     and can never be taken over later.
//
// Additionally, running augmentation for every packet yields a maximum-
// cardinality matching (Kuhn's algorithm), i.e. the "maximize the number of
// advancing packets" requirement of Section 5.
package routing

import (
	"math/rand"

	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
)

// DeflectRule selects how deflected packets are spread over the leftover
// arcs. Every leftover arc is bad for every deflected packet (see package
// comment), so the choice never affects compliance, only tie-breaking
// dynamics.
type DeflectRule int

const (
	// DeflectRandom assigns deflected packets to leftover arcs uniformly at
	// random. Randomized deflection is the standard way to break the
	// symmetric configurations that cause livelock.
	DeflectRandom DeflectRule = iota
	// DeflectFirstFit deterministically assigns deflected packets (in node
	// order) to leftover arcs in ascending direction order. Useful for
	// reproducible traces and for demonstrating livelock.
	DeflectFirstFit
)

// Assigner computes Definition-6-compliant assignments for one node. It is
// reusable scratch; policies embed one. Not safe for concurrent use.
type Assigner struct {
	dirOwner [2 * mesh.MaxDim]int
	visited  [2 * mesh.MaxDim]bool
	free     [2 * mesh.MaxDim]mesh.Dir
}

// augment tries to find an augmenting path that matches packet i to one of
// its good arcs, possibly rerouting already-matched packets to alternative
// good arcs.
func (a *Assigner) augment(ns *sim.NodeState, i int, out []mesh.Dir) bool {
	for _, g := range ns.Info(i).Good() {
		if a.visited[g] {
			continue
		}
		a.visited[g] = true
		j := a.dirOwner[g]
		if j < 0 || a.augment(ns, j, out) {
			a.dirOwner[g] = i
			out[i] = g
			return true
		}
	}
	return false
}

// Assign fills out with a complete assignment for the node: a maximum
// matching of packets to good arcs computed in the given priority order
// (order lists packet indices, highest priority first), then deflected
// packets distributed over the remaining arcs per the deflect rule.
func (a *Assigner) Assign(ns *sim.NodeState, out []mesh.Dir, order []int, deflect DeflectRule, rng *rand.Rand) {
	dirCount := ns.Mesh.DirCount()
	for d := 0; d < dirCount; d++ {
		a.dirOwner[d] = -1
	}
	for i := range out {
		out[i] = mesh.NoDir
	}
	for _, i := range order {
		for d := 0; d < dirCount; d++ {
			a.visited[d] = false
		}
		a.augment(ns, i, out)
	}

	// Collect leftover arcs (existing and unmatched).
	nfree := 0
	for d := 0; d < dirCount; d++ {
		dir := mesh.Dir(d)
		if a.dirOwner[d] < 0 && ns.HasArc(dir) {
			a.free[nfree] = dir
			nfree++
		}
	}
	if deflect == DeflectRandom && nfree > 1 {
		rng.Shuffle(nfree, func(x, y int) {
			a.free[x], a.free[y] = a.free[y], a.free[x]
		})
	}
	next := 0
	for i := range out {
		if out[i] != mesh.NoDir {
			continue
		}
		// next < nfree always holds: a node never carries more packets
		// than its degree (enforced at injection and preserved by the
		// one-packet-per-arc invariant).
		out[i] = a.free[next]
		next++
	}
}

// AssignSinglePass fills out like Assign but without augmenting paths: each
// packet, in priority order, takes the first free good arc or is deflected.
// The result still satisfies Definition 6 (a taken arc was taken by a
// packet advancing through it) and, with restricted packets first,
// Definition 18 — but it does not maximize the number of advancing packets,
// which is exactly what the augmenting version adds. Kept as the ablation
// baseline for the matching machinery (see experiment E15).
func (a *Assigner) AssignSinglePass(ns *sim.NodeState, out []mesh.Dir, order []int, deflect DeflectRule, rng *rand.Rand) {
	dirCount := ns.Mesh.DirCount()
	for d := 0; d < dirCount; d++ {
		a.dirOwner[d] = -1
	}
	for i := range out {
		out[i] = mesh.NoDir
	}
	for _, i := range order {
		for _, g := range ns.Info(i).Good() {
			if a.dirOwner[g] < 0 {
				a.dirOwner[g] = i
				out[i] = g
				break
			}
		}
	}
	nfree := 0
	for d := 0; d < dirCount; d++ {
		dir := mesh.Dir(d)
		if a.dirOwner[d] < 0 && ns.HasArc(dir) {
			a.free[nfree] = dir
			nfree++
		}
	}
	if deflect == DeflectRandom && nfree > 1 {
		rng.Shuffle(nfree, func(x, y int) {
			a.free[x], a.free[y] = a.free[y], a.free[x]
		})
	}
	next := 0
	for i := range out {
		if out[i] != mesh.NoDir {
			continue
		}
		out[i] = a.free[next]
		next++
	}
}

// OrderBuf is a reusable priority-order buffer for policies.
type OrderBuf struct {
	order []int
}

// Reset returns the buffer resized to n, filled with 0..n-1.
func (b *OrderBuf) Reset(n int) []int {
	if cap(b.order) < n {
		b.order = make([]int, n)
	}
	b.order = b.order[:n]
	for i := range b.order {
		b.order[i] = i
	}
	return b.order
}
