package routing

import (
	"math/rand"
	"testing"

	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
	"hotpotato/internal/workload"
)

// runUnder runs packets under pol with the given validation level and
// returns the result, failing the test on any error.
func runUnder(t *testing.T, m *mesh.Mesh, pol sim.Policy, packets []*sim.Packet, lvl sim.ValidationLevel, seed int64) *sim.Result {
	t.Helper()
	e, err := sim.New(m, pol, packets, sim.Options{
		Seed:       seed,
		Validation: lvl,
		MaxSteps:   200000,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatalf("policy %s: %v", pol.Name(), err)
	}
	return res
}

// TestPoliciesAreGreedy runs every baseline policy on assorted workloads
// under ValidateGreedy: a single Definition-6 violation aborts the run.
func TestPoliciesAreGreedy(t *testing.T) {
	m := mesh.MustNew(2, 8)
	policies := []func() sim.Policy{
		NewRandomGreedy,
		NewFixedPriority,
		NewDestOrderGreedy,
		NewFarthestFirst,
		NewNearestFirst,
	}
	for _, mk := range policies {
		pol := mk()
		t.Run(pol.Name(), func(t *testing.T) {
			for seed := int64(0); seed < 3; seed++ {
				rng := rand.New(rand.NewSource(seed))
				packets, err := workload.UniformRandom(m, 60, rng)
				if err != nil {
					t.Fatal(err)
				}
				res := runUnder(t, m, mk(), packets, sim.ValidateGreedy, seed)
				if res.Livelocked {
					continue // deterministic policies may livelock; that is legal
				}
				if res.Delivered != res.Total && !res.HitMaxSteps {
					t.Errorf("seed %d: %d/%d delivered", seed, res.Delivered, res.Total)
				}
			}
		})
	}
}

// TestPoliciesDeliverPermutation: randomized greedy policies must complete
// a full permutation on a small mesh.
func TestPoliciesDeliverPermutation(t *testing.T) {
	m := mesh.MustNew(2, 6)
	for _, mk := range []func() sim.Policy{NewRandomGreedy, NewDestOrderGreedy, NewFarthestFirst, NewNearestFirst} {
		pol := mk()
		t.Run(pol.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			packets := workload.Permutation(m, rng)
			res := runUnder(t, m, pol, packets, sim.ValidateGreedy, 11)
			if res.Delivered != res.Total {
				t.Fatalf("%d/%d delivered: %+v", res.Delivered, res.Total, res)
			}
		})
	}
}

// TestPoliciesDDim: the baselines remain legal greedy policies on 3- and
// 4-dimensional meshes.
func TestPoliciesDDim(t *testing.T) {
	for _, cfg := range []struct{ d, n, k int }{{3, 4, 50}, {4, 3, 60}} {
		m := mesh.MustNew(cfg.d, cfg.n)
		rng := rand.New(rand.NewSource(5))
		packets, err := workload.UniformRandom(m, cfg.k, rng)
		if err != nil {
			t.Fatal(err)
		}
		res := runUnder(t, m, NewRandomGreedy(), packets, sim.ValidateGreedy, 5)
		if res.Delivered != res.Total {
			t.Fatalf("d=%d: %d/%d delivered", cfg.d, res.Delivered, res.Total)
		}
	}
}

func TestDeterministicFlag(t *testing.T) {
	if NewRandomGreedy().Deterministic() {
		t.Error("random greedy claims determinism")
	}
	if !NewFixedPriority().Deterministic() {
		t.Error("fixed priority not deterministic")
	}
	if NewCustom("x", nil, true, DeflectFirstFit).Deterministic() {
		t.Error("shuffled custom policy claims determinism")
	}
	if NewCustom("x", nil, false, DeflectRandom).Deterministic() {
		t.Error("random-deflect custom policy claims determinism")
	}
	if !NewCustom("x", nil, false, DeflectFirstFit).Deterministic() {
		t.Error("deterministic custom policy not flagged")
	}
}

func TestPolicyNames(t *testing.T) {
	tests := []struct {
		pol  sim.Policy
		want string
	}{
		{NewRandomGreedy(), "greedy-random"},
		{NewFixedPriority(), "greedy-fixed"},
		{NewDestOrderGreedy(), "greedy-dest-order"},
		{NewFarthestFirst(), "greedy-farthest-first"},
		{NewNearestFirst(), "greedy-nearest-first"},
	}
	for _, tt := range tests {
		if tt.pol.Name() != tt.want {
			t.Errorf("Name() = %q, want %q", tt.pol.Name(), tt.want)
		}
	}
}

// buildNodeState constructs a NodeState for direct Assigner tests by
// running a one-node engine step under a capture policy.
func captureNodeState(t *testing.T, m *mesh.Mesh, packets []*sim.Packet, f func(ns *sim.NodeState, out []mesh.Dir, rng *rand.Rand)) {
	t.Helper()
	cap := &capturePolicy{f: f}
	e, err := sim.New(m, cap, packets, sim.Options{Validation: sim.ValidateBasic})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Step(); err != nil {
		t.Fatal(err)
	}
}

type capturePolicy struct {
	f func(ns *sim.NodeState, out []mesh.Dir, rng *rand.Rand)
}

func (c *capturePolicy) Name() string        { return "capture" }
func (c *capturePolicy) Deterministic() bool { return true }
func (c *capturePolicy) Route(ns *sim.NodeState, out []mesh.Dir, rng *rand.Rand) {
	c.f(ns, out, rng)
}

// TestAssignMaximumMatching: in a node where a clever matching advances all
// packets but a naive first-come assignment would not, the assigner must
// advance everyone.
func TestAssignMaximumMatching(t *testing.T) {
	m := mesh.MustNew(2, 5)
	center := m.ID([]int{2, 2})
	// p0 can advance via +x0 or +x1; p1 only via +x0. Priority order p0
	// first: p0 takes +x0 first, then augmentation must reroute p0 to +x1
	// so p1 advances too.
	p0 := sim.NewPacket(0, center, m.ID([]int{4, 4}))
	p1 := sim.NewPacket(1, center, m.ID([]int{4, 2}))
	captureNodeState(t, m, []*sim.Packet{p0, p1}, func(ns *sim.NodeState, out []mesh.Dir, rng *rand.Rand) {
		var a Assigner
		var b OrderBuf
		a.Assign(ns, out, b.Reset(len(ns.Packets)), DeflectFirstFit, rng)
		advanced := 0
		for i := range out {
			if ns.Mesh.IsGoodDir(ns.Node, ns.Packets[i].Dst, out[i]) {
				advanced++
			}
		}
		if advanced != 2 {
			t.Errorf("maximum matching advanced %d of 2 packets (out=%v)", advanced, out)
		}
	})
}

// TestAssignFullNode: a node holding packets equal to its degree must
// assign all of them distinct arcs.
func TestAssignFullNode(t *testing.T) {
	m := mesh.MustNew(2, 5)
	center := m.ID([]int{2, 2})
	dst := m.ID([]int{4, 2})
	var packets []*sim.Packet
	for i := 0; i < 4; i++ {
		packets = append(packets, sim.NewPacket(i, center, dst))
	}
	captureNodeState(t, m, packets, func(ns *sim.NodeState, out []mesh.Dir, rng *rand.Rand) {
		var a Assigner
		var b OrderBuf
		a.Assign(ns, out, b.Reset(len(ns.Packets)), DeflectFirstFit, rng)
		seen := map[mesh.Dir]bool{}
		advanced := 0
		for i := range out {
			if out[i] == mesh.NoDir || seen[out[i]] {
				t.Fatalf("bad assignment %v", out)
			}
			seen[out[i]] = true
			if ns.Mesh.IsGoodDir(ns.Node, ns.Packets[i].Dst, out[i]) {
				advanced++
			}
		}
		if advanced != 1 {
			t.Errorf("advanced = %d, want 1 (single shared good arc)", advanced)
		}
	})
}

// TestAssignPriorityRespected: with two packets contending for one arc, the
// higher-priority one advances.
func TestAssignPriorityRespected(t *testing.T) {
	m := mesh.MustNew(2, 5)
	center := m.ID([]int{2, 2})
	dst := m.ID([]int{4, 2})
	p0 := sim.NewPacket(0, center, dst)
	p1 := sim.NewPacket(1, center, dst)
	for _, first := range []int{0, 1} {
		first := first
		captureNodeState(t, m, []*sim.Packet{
			sim.NewPacket(p0.ID, p0.Src, p0.Dst),
			sim.NewPacket(p1.ID, p1.Src, p1.Dst),
		}, func(ns *sim.NodeState, out []mesh.Dir, rng *rand.Rand) {
			var a Assigner
			order := []int{first, 1 - first}
			a.Assign(ns, out, order, DeflectFirstFit, rng)
			if !ns.Mesh.IsGoodDir(ns.Node, ns.Packets[first].Dst, out[first]) {
				t.Errorf("priority packet %d deflected (out=%v)", first, out)
			}
			if ns.Mesh.IsGoodDir(ns.Node, ns.Packets[1-first].Dst, out[1-first]) {
				t.Errorf("low-priority packet advanced on a contended arc")
			}
		})
	}
}

func TestOrderBufReuse(t *testing.T) {
	var b OrderBuf
	o1 := b.Reset(3)
	if len(o1) != 3 || o1[0] != 0 || o1[2] != 2 {
		t.Fatalf("Reset(3) = %v", o1)
	}
	o1[0] = 99
	o2 := b.Reset(5)
	if len(o2) != 5 || o2[0] != 0 || o2[4] != 4 {
		t.Fatalf("Reset(5) = %v", o2)
	}
	o3 := b.Reset(2)
	if len(o3) != 2 || o3[0] != 0 || o3[1] != 1 {
		t.Fatalf("Reset(2) = %v", o3)
	}
}
