package routing

import (
	"math/rand"
	"testing"

	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
	"hotpotato/internal/workload"
)

// TestAssignSinglePassNoAugment: in the configuration where maximum
// matching advances both packets, single-pass advances only the first.
func TestAssignSinglePassNoAugment(t *testing.T) {
	m := mesh.MustNew(2, 5)
	center := m.ID([]int{2, 2})
	p0 := sim.NewPacket(0, center, m.ID([]int{4, 4})) // good: +x0, +x1
	p1 := sim.NewPacket(1, center, m.ID([]int{4, 2})) // good: +x0 only
	captureNodeState(t, m, []*sim.Packet{p0, p1}, func(ns *sim.NodeState, out []mesh.Dir, rng *rand.Rand) {
		var a Assigner
		var b OrderBuf
		a.AssignSinglePass(ns, out, b.Reset(len(ns.Packets)), DeflectFirstFit, rng)
		advanced := 0
		for i := range out {
			if ns.Mesh.IsGoodDir(ns.Node, ns.Packets[i].Dst, out[i]) {
				advanced++
			}
		}
		// p0 (first in order) grabs +x0; p1 has no alternative: deflected.
		if advanced != 1 {
			t.Errorf("single-pass advanced %d, want 1 (out=%v)", advanced, out)
		}
		// Still Definition-6 compliant: p1's only good arc is used by the
		// advancing p0.
		if !ns.Mesh.IsGoodDir(ns.Node, ns.Packets[0].Dst, out[0]) {
			t.Errorf("first packet not advancing: %v", out)
		}
	})
}

// TestSinglePassPolicyIsGreedy: the single-pass policy passes the engine's
// Definition-6 validation on busy instances and delivers everything.
func TestSinglePassPolicyIsGreedy(t *testing.T) {
	m := mesh.MustNew(2, 8)
	pol := NewCustomSinglePass("single-pass-test", nil, true, DeflectRandom)
	if pol.Deterministic() {
		t.Error("shuffled single-pass claims determinism")
	}
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		packets, err := workload.FullLoad(m, 2, rng)
		if err != nil {
			t.Fatal(err)
		}
		res := runUnder(t, m, NewCustomSinglePass("single-pass-test", nil, true, DeflectRandom),
			packets, sim.ValidateGreedy, seed)
		if res.Delivered != res.Total {
			t.Fatalf("seed %d: %d/%d delivered", seed, res.Delivered, res.Total)
		}
	}
}

// TestOldestFirstDynamic: under dynamic traffic the oldest-first policy is
// legal greedy and prioritizes by injection time.
func TestOldestFirstDynamic(t *testing.T) {
	m := mesh.MustNew(2, 8)
	pol := NewOldestFirst()
	if pol.Name() != "greedy-oldest-first" || pol.Deterministic() {
		t.Errorf("metadata wrong: %s/%v", pol.Name(), pol.Deterministic())
	}
	e, err := sim.New(m, pol, nil, sim.Options{
		Seed:       5,
		Validation: sim.ValidateGreedy,
		MaxSteps:   2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.SetInjector(&burstInjector{bursts: 10})
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != res.Total || res.Total == 0 {
		t.Fatalf("%d/%d delivered", res.Delivered, res.Total)
	}
	// Age is recorded for later injections.
	sawLate := false
	for _, p := range e.Packets() {
		if p.InjectedAt > 0 {
			sawLate = true
		}
	}
	if !sawLate {
		t.Error("no packet has a positive injection time")
	}
}

type burstInjector struct{ bursts int }

func (bi *burstInjector) Inject(t int, e sim.InjectorHost, rng *rand.Rand) []*sim.Packet {
	if bi.bursts <= 0 || t%5 != 0 {
		return nil
	}
	bi.bursts--
	var out []*sim.Packet
	used := map[mesh.NodeID]int{}
	for i := 0; i < 6; i++ {
		src := mesh.NodeID(rng.Intn(e.Mesh().Size()))
		if e.InjectionCapacity(src)-used[src] <= 0 {
			continue
		}
		used[src]++
		out = append(out, sim.NewPacket(e.NextPacketID(), src, mesh.NodeID(rng.Intn(e.Mesh().Size()))))
	}
	return out
}

func (bi *burstInjector) Exhausted(t int) bool { return bi.bursts <= 0 }
