package routing

import (
	"math/rand"
	"testing"

	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
	"hotpotato/internal/workload"
)

// lessVariant rebuilds a rank-based matchingPolicy as the semantically
// equivalent less-based one: less(i, j) = rank(i) < rank(j). The two code
// paths consume the policy RNG identically (only the shuffle draws), so a
// run under the variant must be bit-identical to a run under the original.
func lessVariant(t *testing.T, pol sim.Policy) sim.Policy {
	t.Helper()
	mp, ok := pol.(*matchingPolicy)
	if !ok {
		t.Fatalf("policy %s is not a matchingPolicy", pol.Name())
	}
	if mp.rank == nil {
		t.Fatalf("policy %s has no rank function", pol.Name())
	}
	rank := mp.rank
	c := mp.Clone().(*matchingPolicy)
	c.rank = nil
	c.less = func(ns *sim.NodeState, i, j int) bool { return rank(ns, i) < rank(ns, j) }
	return c
}

// stepLockstep runs two engines in lockstep and compares their state hashes
// after every step, failing on the first divergence.
func stepLockstep(t *testing.T, a, b *sim.Engine) {
	t.Helper()
	for !a.Done() && !a.Livelocked() {
		if err := a.Step(); err != nil {
			t.Fatal(err)
		}
		if err := b.Step(); err != nil {
			t.Fatal(err)
		}
		if ha, hb := a.StateHash(), b.StateHash(); ha != hb {
			t.Fatalf("state hash diverged at step %d: %#x vs %#x", a.Time(), ha, hb)
		}
	}
	if b.Done() != a.Done() || b.Livelocked() != a.Livelocked() {
		t.Fatalf("termination diverged: done %v/%v livelocked %v/%v",
			a.Done(), b.Done(), a.Livelocked(), b.Livelocked())
	}
}

// TestRankLessEquivalence runs every shipped rank-based policy against its
// less-based reconstruction on identical workloads and identical seeds: the
// executions must match step for step. This pins the optimization contract
// of the rank path (NewCustomRank): it is a faster evaluation order for the
// same priority relation, never a different relation.
func TestRankLessEquivalence(t *testing.T) {
	m := mesh.MustNew(2, 8)
	policies := []func() sim.Policy{
		NewFixedPriority,
		NewDestOrderGreedy,
		NewOldestFirst,
		NewFarthestFirst,
		NewNearestFirst,
		func() sim.Policy { return NewWeighted("", Weights{Age: 1, Restrict: 2}) },
		func() sim.Policy { return NewWeighted("", Weights{Age: 0.5, Dist: -1, Deflect: 0.25}) },
	}
	for _, mk := range policies {
		pol := mk()
		t.Run(pol.Name(), func(t *testing.T) {
			for seed := int64(0); seed < 3; seed++ {
				rng := rand.New(rand.NewSource(seed))
				packets, err := workload.UniformRandom(m, 60, rng)
				if err != nil {
					t.Fatal(err)
				}
				opts := sim.Options{Seed: seed + 100, Validation: sim.ValidateGreedy, MaxSteps: 200000}
				a, err := sim.New(m, mk(), clonePackets(packets), opts)
				if err != nil {
					t.Fatal(err)
				}
				b, err := sim.New(m, lessVariant(t, mk()), clonePackets(packets), opts)
				if err != nil {
					t.Fatal(err)
				}
				stepLockstep(t, a, b)
			}
		})
	}
}

// clonePackets deep-copies a workload so two engines cannot share state.
func clonePackets(pkts []*sim.Packet) []*sim.Packet {
	out := make([]*sim.Packet, len(pkts))
	for i, p := range pkts {
		c := *p
		out[i] = &c
	}
	return out
}
