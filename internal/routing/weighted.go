package routing

import (
	"fmt"
	"math"

	"hotpotato/internal/sim"
)

// Weights parameterizes the weighted greedy policy family searched by
// internal/policylab/search: a packet's priority score is the weighted sum
// of the decision features every conflict record captures (age,
// distance-to-target, restriction status, deflection count). Higher score
// advances first; all-zero weights degenerate to random priority.
type Weights struct {
	// Age weights the packet's age in steps (Time - InjectedAt). Positive
	// favors older packets (the oldest-first rule is Age=1, rest 0).
	Age float64
	// Dist weights the packet's distance to its destination. Positive favors
	// farther packets (farthest-first is Dist=1), negative favors nearer.
	Dist float64
	// Restrict weights restriction status (1 if the packet has exactly one
	// good direction, else 0). A large positive value approximates the
	// paper's restricted-priority rule.
	Restrict float64
	// Deflect weights the packet's deflection count. Positive compensates
	// packets that already lost conflicts.
	Deflect float64
}

// weightScale converts float weights to integer rank arithmetic: ranks are
// fixed-point with 10 fractional bits, computed once per packet per node
// (see rankFunc). Weights are quantized at construction, so two Weights
// within 1/2048 of each other are the same policy.
const weightScale = 1024

// String renders the weights in the spec parameter syntax (sorted keys),
// matching what internal/spec produces for "weighted:...".
func (w Weights) String() string {
	return fmt.Sprintf("age=%g,defl=%g,dist=%g,restrict=%g", w.Age, w.Deflect, w.Dist, w.Restrict)
}

// NewWeighted returns the weighted-priority greedy policy for w. name is the
// policy's display name (used in snapshots to pair checkpoints with the
// policy that wrote them); the empty string defaults to
// "weighted:<params>". Ties — exact score equality after fixed-point
// quantization — are broken uniformly at random, and deflected packets take
// uniformly random leftover arcs, exactly like the other randomized greedy
// policies, so the all-zero family member is NewRandomGreedy in disguise.
func NewWeighted(name string, w Weights) sim.Policy {
	if name == "" {
		name = "weighted:" + w.String()
	}
	wAge := int(math.Round(w.Age * weightScale))
	wDist := int(math.Round(w.Dist * weightScale))
	wRestrict := int(math.Round(w.Restrict * weightScale))
	wDeflect := int(math.Round(w.Deflect * weightScale))
	return &matchingPolicy{
		name:    name,
		shuffle: true,
		rank: func(ns *sim.NodeState, i int) int {
			p := ns.Packets[i]
			score := wAge * (ns.Time - p.InjectedAt)
			score += wDist * ns.Mesh.Dist(p.Node, p.Dst)
			if ns.Info(i).Restricted {
				score += wRestrict
			}
			score += wDeflect * p.Deflections
			return -score // lower rank advances first; higher score wins
		},
		deflect: DeflectRandom,
	}
}
