package routing

import (
	"math/rand"
	"slices"

	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
)

// lessFunc orders packet indices within a node state; i before j means i has
// higher priority for advancing. A nil lessFunc keeps the incoming order.
type lessFunc func(ns *sim.NodeState, i, j int) bool

// rankFunc assigns a priority rank to a packet index; lower ranks advance
// first. Equivalent to less(i, j) = rank(i) < rank(j), but evaluated once
// per packet instead of twice per comparison.
type rankFunc func(ns *sim.NodeState, i int) int

// matchingPolicy is the common shape of all priority-matching policies.
type matchingPolicy struct {
	name          string
	deterministic bool
	shuffle       bool // randomize order before sorting (random tie-break)
	singlePass    bool // skip augmentation (ablation variant)
	less          lessFunc
	rank          rankFunc // non-nil takes precedence over less
	deflect       DeflectRule

	assigner Assigner
	buf      OrderBuf
	keys     [2 * mesh.MaxDim]int
}

var _ sim.Policy = (*matchingPolicy)(nil)
var _ sim.ClonablePolicy = (*matchingPolicy)(nil)

// Name implements sim.Policy.
func (p *matchingPolicy) Name() string { return p.name }

// Clone implements sim.ClonablePolicy: identical configuration, fresh
// scratch, so clones can route concurrently (the less functions used by
// the shipped policies are stateless).
func (p *matchingPolicy) Clone() sim.Policy {
	return &matchingPolicy{
		name:          p.name,
		deterministic: p.deterministic,
		shuffle:       p.shuffle,
		singlePass:    p.singlePass,
		less:          p.less,
		rank:          p.rank,
		deflect:       p.deflect,
	}
}

// Deterministic implements sim.Policy.
func (p *matchingPolicy) Deterministic() bool { return p.deterministic }

// Route implements sim.Policy.
func (p *matchingPolicy) Route(ns *sim.NodeState, out []mesh.Dir, rng *rand.Rand) {
	if len(ns.Packets) == 1 {
		// The dominant case under light and moderate load: a lone packet
		// needs no priority order and no matching — advance along a
		// (uniformly random, when shuffling) good arc, or deflect onto a
		// (uniformly random) surviving arc. The choice has the same
		// distribution the full machinery produces.
		p.routeSingle(ns, out, rng)
		return
	}
	order := p.buf.Reset(len(ns.Packets))
	if p.shuffle {
		if len(order) > 1 {
			rng.Shuffle(len(order), func(x, y int) {
				order[x], order[y] = order[y], order[x]
			})
		}
		// Also randomize each packet's good-arc preference. With a fixed
		// axis order the matching is deterministic for a lone packet, which
		// matters under link failures: a packet whose only good arc at its
		// current node is down gets deflected to a neighbor, and from there
		// a fixed preference walks it straight back — a two-node loop no
		// amount of priority shuffling breaks. A random good arc lets it
		// round the failed link instead.
		for i := range ns.Packets {
			g := ns.Info(i).Good()
			if len(g) > 1 {
				rng.Shuffle(len(g), func(x, y int) { g[x], g[y] = g[y], g[x] })
			}
		}
	}
	if p.rank != nil {
		// Evaluate the rank once per packet and insertion-sort the (tiny —
		// at most the node degree) order stably by it.
		keys := p.keys[:len(order)]
		for x, i := range order {
			keys[x] = p.rank(ns, i)
		}
		for x := 1; x < len(order); x++ {
			ox, kx := order[x], keys[x]
			y := x - 1
			for y >= 0 && keys[y] > kx {
				order[y+1], keys[y+1] = order[y], keys[y]
				y--
			}
			order[y+1], keys[y+1] = ox, kx
		}
	} else if p.less != nil {
		// slices.SortStableFunc avoids the reflection-based swapper that
		// sort.SliceStable allocates on every node of every step.
		slices.SortStableFunc(order, func(x, y int) int {
			switch {
			case p.less(ns, x, y):
				return -1
			case p.less(ns, y, x):
				return 1
			default:
				return 0
			}
		})
	}
	if p.singlePass {
		p.assigner.AssignSinglePass(ns, out, order, p.deflect, rng)
		return
	}
	p.assigner.Assign(ns, out, order, p.deflect, rng)
}

// routeSingle routes a node holding exactly one packet.
func (p *matchingPolicy) routeSingle(ns *sim.NodeState, out []mesh.Dir, rng *rand.Rand) {
	g := ns.Info(0).Good()
	if n := len(g); n > 0 {
		if p.shuffle && n > 1 {
			out[0] = g[rng.Intn(n)]
		} else {
			out[0] = g[0]
		}
		return
	}
	// No surviving good arc: a forced deflection over the existing arcs.
	a := &p.assigner
	dirCount := ns.Mesh.DirCount()
	nfree := 0
	for d := 0; d < dirCount; d++ {
		if ns.HasArc(mesh.Dir(d)) {
			a.free[nfree] = mesh.Dir(d)
			nfree++
		}
	}
	if nfree == 0 {
		return // impossible in a legal configuration; the engine reports it
	}
	if p.deflect == DeflectRandom && nfree > 1 {
		out[0] = a.free[rng.Intn(nfree)]
	} else {
		out[0] = a.free[0]
	}
}

// NewRandomGreedy returns the unstructured greedy baseline: every step each
// node advances a maximum number of packets with uniformly random priority
// among them, and deflects the rest onto uniformly random leftover arcs.
// This is the "pure greed" policy the paper warns may livelock when
// tie-breaking is deterministic; randomization makes livelock vanish in
// practice but admits no known time bound.
func NewRandomGreedy() sim.Policy {
	return &matchingPolicy{
		name:    "greedy-random",
		shuffle: true,
		deflect: DeflectRandom,
	}
}

// NewFixedPriority returns a fully deterministic greedy policy: packets are
// prioritized by ascending ID and deflected packets take leftover arcs in
// ascending direction order. With every tie broken the same way every step,
// symmetric configurations can repeat forever: this is the package's
// livelock demonstration policy (see Section 1.2 of the paper, citing
// [NS1] and [Haj], on how easily pure greed livelocks).
func NewFixedPriority() sim.Policy {
	return &matchingPolicy{
		name:          "greedy-fixed",
		deterministic: true,
		rank:          func(ns *sim.NodeState, i int) int { return ns.Packets[i].ID },
		deflect:       DeflectFirstFit,
	}
}

// NewDestOrderGreedy returns a Brassil-Cruz-style greedy policy [BC]: a
// prespecified order on destinations (the snake rank of the destination
// node) determines priority, lower rank first, ties broken randomly.
func NewDestOrderGreedy() sim.Policy {
	return &matchingPolicy{
		name:    "greedy-dest-order",
		shuffle: true,
		rank: func(ns *sim.NodeState, i int) int {
			return ns.Mesh.SnakeRank(ns.Packets[i].Dst)
		},
		deflect: DeflectRandom,
	}
}

// NewOldestFirst returns an age-priority greedy policy: packets injected
// earlier advance first (ties random). Age priority is the classic
// starvation-avoidance rule for continuous deflection traffic (the
// "distance/age priorities" of [ZA]); on batch instances, where every
// packet is injected at time 0, it degenerates to random priority.
func NewOldestFirst() sim.Policy {
	return &matchingPolicy{
		name:    "greedy-oldest-first",
		shuffle: true,
		rank: func(ns *sim.NodeState, i int) int {
			return ns.Packets[i].InjectedAt
		},
		deflect: DeflectRandom,
	}
}

// NewClassPriority returns a strict-priority greedy policy for traffic
// classes: higher Class advances first, ties broken by age then randomly
// (the "distance age priorities" direction of [ZA] applied to QoS
// classes). Still a legal greedy policy: priorities only pick who wins a
// contended arc.
func NewClassPriority() sim.Policy {
	return &matchingPolicy{
		name:    "greedy-class-priority",
		shuffle: true,
		less: func(ns *sim.NodeState, i, j int) bool {
			pi, pj := ns.Packets[i], ns.Packets[j]
			if pi.Class != pj.Class {
				return pi.Class > pj.Class
			}
			return pi.InjectedAt < pj.InjectedAt
		},
		deflect: DeflectRandom,
	}
}

// NewFarthestFirst returns a greedy policy that advances the packets
// farthest from their destinations first (ties random). A natural
// longest-job-first heuristic for makespan.
func NewFarthestFirst() sim.Policy {
	return &matchingPolicy{
		name:    "greedy-farthest-first",
		shuffle: true,
		rank: func(ns *sim.NodeState, i int) int {
			return -ns.Mesh.Dist(ns.Packets[i].Node, ns.Packets[i].Dst)
		},
		deflect: DeflectRandom,
	}
}

// NewNearestFirst returns a greedy policy that advances the packets closest
// to their destinations first (ties random), evacuating almost-home packets
// quickly at the cost of letting distant packets starve.
func NewNearestFirst() sim.Policy {
	return &matchingPolicy{
		name:    "greedy-nearest-first",
		shuffle: true,
		rank: func(ns *sim.NodeState, i int) int {
			return ns.Mesh.Dist(ns.Packets[i].Node, ns.Packets[i].Dst)
		},
		deflect: DeflectRandom,
	}
}

// NewCustom builds a priority-matching greedy policy from a custom order.
// less may be nil (incoming order); shuffle adds a random tie-break pass.
// The result is a valid greedy policy for any choice of parameters.
func NewCustom(name string, less func(ns *sim.NodeState, i, j int) bool, shuffle bool, deflect DeflectRule) sim.Policy {
	return &matchingPolicy{
		name:          name,
		deterministic: !shuffle && deflect != DeflectRandom,
		shuffle:       shuffle,
		less:          less,
		deflect:       deflect,
	}
}

// NewCustomRank builds a priority-matching greedy policy from an integer
// rank on packets: lower ranks advance first, ties keep the (optionally
// shuffled) incoming order. Semantically identical to NewCustom with
// less(i, j) = rank(i) < rank(j), but the rank is evaluated once per packet
// instead of twice per comparison, which matters on the simulation hot
// path.
func NewCustomRank(name string, rank func(ns *sim.NodeState, i int) int, shuffle bool, deflect DeflectRule) sim.Policy {
	return &matchingPolicy{
		name:          name,
		deterministic: !shuffle && deflect != DeflectRandom,
		shuffle:       shuffle,
		rank:          rank,
		deflect:       deflect,
	}
}

// NewCustomSinglePass is NewCustom without augmenting-path matching: each
// packet takes the first free good arc in priority order. Still greedy
// (Definition 6) but it does not maximize the number of advancing packets;
// exists as the ablation baseline for the matching machinery.
func NewCustomSinglePass(name string, less func(ns *sim.NodeState, i, j int) bool, shuffle bool, deflect DeflectRule) sim.Policy {
	return &matchingPolicy{
		name:          name,
		deterministic: !shuffle && deflect != DeflectRandom,
		shuffle:       shuffle,
		singlePass:    true,
		less:          less,
		deflect:       deflect,
	}
}
