package routing

import (
	"math/rand"
	"slices"

	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
)

// lessFunc orders packet indices within a node state; i before j means i has
// higher priority for advancing. A nil lessFunc keeps the incoming order.
type lessFunc func(ns *sim.NodeState, i, j int) bool

// matchingPolicy is the common shape of all priority-matching policies.
type matchingPolicy struct {
	name          string
	deterministic bool
	shuffle       bool // randomize order before sorting (random tie-break)
	singlePass    bool // skip augmentation (ablation variant)
	less          lessFunc
	deflect       DeflectRule

	assigner Assigner
	buf      OrderBuf
}

var _ sim.Policy = (*matchingPolicy)(nil)
var _ sim.ClonablePolicy = (*matchingPolicy)(nil)

// Name implements sim.Policy.
func (p *matchingPolicy) Name() string { return p.name }

// Clone implements sim.ClonablePolicy: identical configuration, fresh
// scratch, so clones can route concurrently (the less functions used by
// the shipped policies are stateless).
func (p *matchingPolicy) Clone() sim.Policy {
	return &matchingPolicy{
		name:          p.name,
		deterministic: p.deterministic,
		shuffle:       p.shuffle,
		singlePass:    p.singlePass,
		less:          p.less,
		deflect:       p.deflect,
	}
}

// Deterministic implements sim.Policy.
func (p *matchingPolicy) Deterministic() bool { return p.deterministic }

// Route implements sim.Policy.
func (p *matchingPolicy) Route(ns *sim.NodeState, out []mesh.Dir, rng *rand.Rand) {
	order := p.buf.Reset(len(ns.Packets))
	if p.shuffle {
		if len(order) > 1 {
			rng.Shuffle(len(order), func(x, y int) {
				order[x], order[y] = order[y], order[x]
			})
		}
		// Also randomize each packet's good-arc preference. With a fixed
		// axis order the matching is deterministic for a lone packet, which
		// matters under link failures: a packet whose only good arc at its
		// current node is down gets deflected to a neighbor, and from there
		// a fixed preference walks it straight back — a two-node loop no
		// amount of priority shuffling breaks. A random good arc lets it
		// round the failed link instead.
		for i := range ns.Packets {
			g := ns.Info(i).Good()
			if len(g) > 1 {
				rng.Shuffle(len(g), func(x, y int) { g[x], g[y] = g[y], g[x] })
			}
		}
	}
	if p.less != nil {
		// slices.SortStableFunc avoids the reflection-based swapper that
		// sort.SliceStable allocates on every node of every step.
		slices.SortStableFunc(order, func(x, y int) int {
			switch {
			case p.less(ns, x, y):
				return -1
			case p.less(ns, y, x):
				return 1
			default:
				return 0
			}
		})
	}
	if p.singlePass {
		p.assigner.AssignSinglePass(ns, out, order, p.deflect, rng)
		return
	}
	p.assigner.Assign(ns, out, order, p.deflect, rng)
}

// NewRandomGreedy returns the unstructured greedy baseline: every step each
// node advances a maximum number of packets with uniformly random priority
// among them, and deflects the rest onto uniformly random leftover arcs.
// This is the "pure greed" policy the paper warns may livelock when
// tie-breaking is deterministic; randomization makes livelock vanish in
// practice but admits no known time bound.
func NewRandomGreedy() sim.Policy {
	return &matchingPolicy{
		name:    "greedy-random",
		shuffle: true,
		deflect: DeflectRandom,
	}
}

// NewFixedPriority returns a fully deterministic greedy policy: packets are
// prioritized by ascending ID and deflected packets take leftover arcs in
// ascending direction order. With every tie broken the same way every step,
// symmetric configurations can repeat forever: this is the package's
// livelock demonstration policy (see Section 1.2 of the paper, citing
// [NS1] and [Haj], on how easily pure greed livelocks).
func NewFixedPriority() sim.Policy {
	return &matchingPolicy{
		name:          "greedy-fixed",
		deterministic: true,
		less:          func(ns *sim.NodeState, i, j int) bool { return ns.Packets[i].ID < ns.Packets[j].ID },
		deflect:       DeflectFirstFit,
	}
}

// NewDestOrderGreedy returns a Brassil-Cruz-style greedy policy [BC]: a
// prespecified order on destinations (the snake rank of the destination
// node) determines priority, lower rank first, ties broken randomly.
func NewDestOrderGreedy() sim.Policy {
	return &matchingPolicy{
		name:    "greedy-dest-order",
		shuffle: true,
		less: func(ns *sim.NodeState, i, j int) bool {
			return ns.Mesh.SnakeRank(ns.Packets[i].Dst) < ns.Mesh.SnakeRank(ns.Packets[j].Dst)
		},
		deflect: DeflectRandom,
	}
}

// NewOldestFirst returns an age-priority greedy policy: packets injected
// earlier advance first (ties random). Age priority is the classic
// starvation-avoidance rule for continuous deflection traffic (the
// "distance/age priorities" of [ZA]); on batch instances, where every
// packet is injected at time 0, it degenerates to random priority.
func NewOldestFirst() sim.Policy {
	return &matchingPolicy{
		name:    "greedy-oldest-first",
		shuffle: true,
		less: func(ns *sim.NodeState, i, j int) bool {
			return ns.Packets[i].InjectedAt < ns.Packets[j].InjectedAt
		},
		deflect: DeflectRandom,
	}
}

// NewClassPriority returns a strict-priority greedy policy for traffic
// classes: higher Class advances first, ties broken by age then randomly
// (the "distance age priorities" direction of [ZA] applied to QoS
// classes). Still a legal greedy policy: priorities only pick who wins a
// contended arc.
func NewClassPriority() sim.Policy {
	return &matchingPolicy{
		name:    "greedy-class-priority",
		shuffle: true,
		less: func(ns *sim.NodeState, i, j int) bool {
			pi, pj := ns.Packets[i], ns.Packets[j]
			if pi.Class != pj.Class {
				return pi.Class > pj.Class
			}
			return pi.InjectedAt < pj.InjectedAt
		},
		deflect: DeflectRandom,
	}
}

// NewFarthestFirst returns a greedy policy that advances the packets
// farthest from their destinations first (ties random). A natural
// longest-job-first heuristic for makespan.
func NewFarthestFirst() sim.Policy {
	return &matchingPolicy{
		name:    "greedy-farthest-first",
		shuffle: true,
		less: func(ns *sim.NodeState, i, j int) bool {
			di := ns.Mesh.Dist(ns.Packets[i].Node, ns.Packets[i].Dst)
			dj := ns.Mesh.Dist(ns.Packets[j].Node, ns.Packets[j].Dst)
			return di > dj
		},
		deflect: DeflectRandom,
	}
}

// NewNearestFirst returns a greedy policy that advances the packets closest
// to their destinations first (ties random), evacuating almost-home packets
// quickly at the cost of letting distant packets starve.
func NewNearestFirst() sim.Policy {
	return &matchingPolicy{
		name:    "greedy-nearest-first",
		shuffle: true,
		less: func(ns *sim.NodeState, i, j int) bool {
			di := ns.Mesh.Dist(ns.Packets[i].Node, ns.Packets[i].Dst)
			dj := ns.Mesh.Dist(ns.Packets[j].Node, ns.Packets[j].Dst)
			return di < dj
		},
		deflect: DeflectRandom,
	}
}

// NewCustom builds a priority-matching greedy policy from a custom order.
// less may be nil (incoming order); shuffle adds a random tie-break pass.
// The result is a valid greedy policy for any choice of parameters.
func NewCustom(name string, less func(ns *sim.NodeState, i, j int) bool, shuffle bool, deflect DeflectRule) sim.Policy {
	return &matchingPolicy{
		name:          name,
		deterministic: !shuffle && deflect != DeflectRandom,
		shuffle:       shuffle,
		less:          less,
		deflect:       deflect,
	}
}

// NewCustomSinglePass is NewCustom without augmenting-path matching: each
// packet takes the first free good arc in priority order. Still greedy
// (Definition 6) but it does not maximize the number of advancing packets;
// exists as the ablation baseline for the matching machinery.
func NewCustomSinglePass(name string, less func(ns *sim.NodeState, i, j int) bool, shuffle bool, deflect DeflectRule) sim.Policy {
	return &matchingPolicy{
		name:          name,
		deterministic: !shuffle && deflect != DeflectRandom,
		shuffle:       shuffle,
		singlePass:    true,
		less:          less,
		deflect:       deflect,
	}
}
