package analysis

import (
	"fmt"
	"math/rand"

	"hotpotato/internal/core"
	"hotpotato/internal/mesh"
	"hotpotato/internal/shard"
	"hotpotato/internal/sim"
)

// TrialSpec describes one repeatable simulation trial.
type TrialSpec struct {
	// Mesh is the network.
	Mesh *mesh.Mesh
	// NewPolicy constructs a fresh policy (policies carry scratch state and
	// are not shared between engines).
	NewPolicy func() sim.Policy
	// NewWorkload generates the packets for a trial from the trial RNG.
	NewWorkload func(rng *rand.Rand) ([]*sim.Packet, error)
	// Seed seeds both workload generation and engine tie-breaking.
	Seed int64
	// Track attaches a potential tracker.
	Track bool
	// Validation is the engine validation level (default ValidateGreedy).
	Validation sim.ValidationLevel
	// MaxSteps caps the run (default sim.DefaultMaxSteps).
	MaxSteps int
	// DetectLivelock enables the engine's livelock detector.
	DetectLivelock bool
	// Workers routes nodes concurrently inside the engine (see
	// sim.Options.Workers); the policy must be clonable.
	Workers int
	// Shards, when non-empty, runs the trial on the sharded engine with
	// this PxQ spatial decomposition (2-D meshes only; bit-identical to the
	// single engine, see internal/shard). Mutually exclusive with Workers,
	// Track and NewFaults.
	Shards string
	// NewFaults constructs a fresh fault model for the trial (models are
	// stateful, so each engine needs its own). Nil runs on the intact mesh.
	NewFaults func() sim.FaultModel
	// FaultFate selects what a node crash does to the packets inside
	// (drop vs absorb); only consulted when NewFaults is set.
	FaultFate sim.PacketFate
	// NewInjector constructs a fresh arrival-driven packet source for the
	// trial (sources are stateful, so each engine needs its own); built for
	// example by spec.BuildArrivals. Nil runs the batch workload alone.
	// Mutually exclusive with Track (the tracker reconstructs runs from the
	// initial batch).
	NewInjector func() (sim.Injector, error)
}

// TrialResult is the outcome of one trial.
type TrialResult struct {
	// Result is the engine summary.
	Result *sim.Result
	// Packets are the routed packets (post-run state).
	Packets []*sim.Packet
	// DMax is the largest source-destination distance of the instance.
	DMax int
	// Violations holds the tracker counters (zero value if Track was off).
	Violations core.Violations
	// Phi0 is the initial potential (0 if Track was off).
	Phi0 int64
	// MinSpare is the smallest live spare potential seen (0 if Track off).
	MinSpare int
	// MinPhi is the smallest live packet potential seen (0 if Track off).
	MinPhi int
	// Tracker is the attached tracker, or nil.
	Tracker *core.Tracker
}

// RunTrial executes one trial.
func RunTrial(spec TrialSpec) (*TrialResult, error) {
	if spec.Mesh == nil || spec.NewPolicy == nil || spec.NewWorkload == nil {
		return nil, fmt.Errorf("analysis: trial spec missing mesh, policy or workload")
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	packets, err := spec.NewWorkload(rng)
	if err != nil {
		return nil, fmt.Errorf("analysis: workload: %w", err)
	}
	validation := spec.Validation
	if validation == sim.ValidateOff {
		validation = sim.ValidateGreedy
	}
	if spec.Shards != "" {
		return runShardedTrial(spec, packets, validation)
	}
	e, err := sim.New(spec.Mesh, spec.NewPolicy(), packets, sim.Options{
		Seed:           spec.Seed + 1,
		Validation:     validation,
		MaxSteps:       spec.MaxSteps,
		DetectLivelock: spec.DetectLivelock,
		Workers:        spec.Workers,
	})
	if err != nil {
		return nil, err
	}
	if spec.NewFaults != nil {
		e.SetFaults(spec.NewFaults(), spec.FaultFate)
	}
	if spec.NewInjector != nil {
		if spec.Track {
			return nil, fmt.Errorf("analysis: trials cannot combine NewInjector with Track (the tracker reconstructs runs from the initial batch)")
		}
		inj, err := spec.NewInjector()
		if err != nil {
			return nil, fmt.Errorf("analysis: injector: %w", err)
		}
		e.SetInjector(inj)
	}
	tr := &TrialResult{Packets: packets}
	var tracker *core.Tracker
	if spec.Track {
		tracker = core.NewTracker(spec.Mesh, packets, core.TrackerOptions{SelfCheckEvery: 64})
		e.AddObserver(tracker)
	}
	res, err := e.Run()
	if err != nil {
		return nil, err
	}
	tr.Result = res
	for _, p := range packets {
		if d := spec.Mesh.Dist(p.Src, p.Dst); d > tr.DMax {
			tr.DMax = d
		}
	}
	if tracker != nil {
		tr.Violations = tracker.Violations()
		tr.Phi0 = tracker.Phi0()
		tr.MinSpare = tracker.MinSpare()
		tr.MinPhi = tracker.MinPhi()
		tr.Tracker = tracker
	}
	return tr, nil
}

// runShardedTrial is RunTrial's sharded-engine path: same seeds, same
// summary, computed by the spatially-decomposed engine. The outcome is
// bit-identical to the single engine's (internal/shard's parity contract),
// so sharded sweep cells are directly comparable to unsharded ones.
func runShardedTrial(spec TrialSpec, packets []*sim.Packet, validation sim.ValidationLevel) (*TrialResult, error) {
	switch {
	case spec.Track:
		return nil, fmt.Errorf("analysis: sharded trials cannot attach the potential tracker (observers see one engine's move stream)")
	case spec.NewFaults != nil:
		return nil, fmt.Errorf("analysis: sharded trials do not support fault injection")
	case spec.Workers != 0:
		return nil, fmt.Errorf("analysis: Shards and Workers are alternative parallelization schemes; pick one")
	}
	grid, err := shard.ParseGrid(spec.Shards)
	if err != nil {
		return nil, err
	}
	e, err := shard.New(spec.Mesh, spec.NewPolicy(), packets, shard.Options{
		Grid:           grid,
		Seed:           spec.Seed + 1,
		Validation:     validation,
		MaxSteps:       spec.MaxSteps,
		DetectLivelock: spec.DetectLivelock,
	})
	if err != nil {
		return nil, err
	}
	defer e.Close()
	if spec.NewInjector != nil {
		inj, err := spec.NewInjector()
		if err != nil {
			return nil, fmt.Errorf("analysis: injector: %w", err)
		}
		e.SetInjector(inj)
	}
	res, err := e.Run()
	if err != nil {
		return nil, err
	}
	tr := &TrialResult{Packets: packets, Result: res}
	for _, p := range packets {
		if d := spec.Mesh.Dist(p.Src, p.Dst); d > tr.DMax {
			tr.DMax = d
		}
	}
	return tr, nil
}

// RunTrials executes the spec for seeds seedBase..seedBase+trials-1 and
// returns all results.
func RunTrials(spec TrialSpec, trials int, seedBase int64) ([]*TrialResult, error) {
	out := make([]*TrialResult, 0, trials)
	for i := 0; i < trials; i++ {
		spec.Seed = seedBase + int64(i)
		res, err := RunTrial(spec)
		if err != nil {
			return nil, fmt.Errorf("analysis: trial %d: %w", i, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// Steps extracts the routing times of a result set.
func Steps(results []*TrialResult) []int {
	out := make([]int, len(results))
	for i, r := range results {
		out[i] = r.Result.Steps
	}
	return out
}

// MaxSteps returns the largest routing time of a result set.
func MaxSteps(results []*TrialResult) int {
	maxv := 0
	for _, r := range results {
		if r.Result.Steps > maxv {
			maxv = r.Result.Steps
		}
	}
	return maxv
}

// TotalViolations sums all tracker violation counters of a result set.
func TotalViolations(results []*TrialResult) core.Violations {
	var v core.Violations
	for _, r := range results {
		v.Property8 += r.Violations.Property8
		v.Corollary10 += r.Violations.Corollary10
		v.Lemma12 += r.Violations.Lemma12
		v.Lemma14 += r.Violations.Lemma14
		v.Lemma15 += r.Violations.Lemma15
		v.PhiRange += r.Violations.PhiRange
		v.PhiZeroLive += r.Violations.PhiZeroLive
		v.TypeADeflector += r.Violations.TypeADeflector
		v.SwitchAmbiguous += r.Violations.SwitchAmbiguous
		v.Conservation += r.Violations.Conservation
	}
	return v
}

// AllDelivered reports whether every trial delivered every packet.
func AllDelivered(results []*TrialResult) bool {
	for _, r := range results {
		if r.Result.Delivered != r.Result.Total {
			return false
		}
	}
	return true
}
