package analysis

import (
	"fmt"
	"runtime"
	"sync"
)

// RunTrialsParallel executes the spec for seeds seedBase..seedBase+trials-1
// across up to `workers` goroutines (0 = GOMAXPROCS) and returns the
// results in seed order. Each trial builds its own policy, engine and
// tracker, so trials share nothing; results are bit-identical to
// RunTrials with the same seeds regardless of the worker count.
func RunTrialsParallel(spec TrialSpec, trials int, seedBase int64, workers int) ([]*TrialResult, error) {
	if trials <= 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials {
		workers = trials
	}

	results := make([]*TrialResult, trials)
	errs := make([]error, trials)
	var wg sync.WaitGroup
	next := make(chan int)

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				s := spec
				s.Seed = seedBase + int64(i)
				res, err := RunTrial(s)
				results[i] = res
				errs[i] = err
			}
		}()
	}
	for i := 0; i < trials; i++ {
		next <- i
	}
	close(next)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("analysis: trial %d: %w", i, err)
		}
	}
	return results, nil
}
